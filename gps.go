// Package gps is the public API of the Graph Priority Sampling library, a
// reproduction of "On Sampling from Massive Graph Streams" (Ahmed, Duffield,
// Willke, Rossi; VLDB 2017).
//
// GPS maintains a fixed-size, weight-sensitive sample of a graph edge stream
// in one pass. Arriving edges are assigned priorities w(k)/u(k), where the
// weight w(k) = W(k,K̂) may depend on the topology of the current sample
// (e.g. how many sampled triangles the edge completes) and u(k) is uniform
// on (0,1]; the reservoir keeps the m highest-priority edges. Conditional on
// the threshold z* (the (m+1)-st highest priority seen), each retained edge
// has Horvitz-Thompson inclusion probability min{1, w(k)/z*}, and products
// of the resulting edge estimators are unbiased for subgraph indicators —
// the Martingale argument that underpins every estimator here.
//
// # Sampling
//
// Create a Sampler (or an InStream, which wraps one) and feed it edges:
//
//	s, _ := gps.NewSampler(gps.Config{Capacity: 100_000, Weight: gps.TriangleWeight, Seed: 1})
//	for _, e := range edges {
//		s.Process(e)
//	}
//
// Buffered ingestion can use Sampler.ProcessBatch, which is exactly
// equivalent to per-edge Process; high-rate streams should use the
// sharded Parallel sampler, which partitions the stream across
// per-goroutine reservoirs and merges them on demand:
//
//	p, _ := gps.NewParallel(gps.Config{Capacity: 100_000, Seed: 1}, 8)
//	p.ProcessBatch(edges)
//	merged, _ := p.Merge() // a *Sampler over everything fed so far
//	p.Close()
//
// # Estimation
//
// Post-stream estimation (Algorithm 2) answers retrospective queries from
// the sample at any time:
//
//	est := gps.EstimatePost(s)
//	fmt.Println(est.Triangles, est.TriangleInterval())
//
// In-stream estimation (Algorithm 3) maintains running estimates with lower
// variance while sampling:
//
//	in, _ := gps.NewInStream(gps.Config{Capacity: 100_000, Weight: gps.TriangleWeight})
//	for _, e := range edges {
//		in.Process(e)
//	}
//	fmt.Println(in.Estimates().Triangles)
//
// Arbitrary subgraphs can be estimated through Sampler.SubgraphEstimate and
// friends; triangle and wedge counting are the built-in special cases.
//
// # Temporal sampling
//
// Activity streams are temporal: recent edges matter more. Config.Decay
// enables forward-decay sampling — each edge's weight is boosted by
// exp(λ·(t−L)) for its event time t (edge timestamps, or arrival order on
// untimed streams), so the reservoir concentrates on recent structure
// while ranks stay comparable forever (no rescans, and shards still
// merge). EstimatePost and InStream then target the *decayed* counts at
// the stream's event horizon: every motif weighted by 2^{-(age of its
// oldest edge)/half-life}.
//
//	s, _ := gps.NewSampler(gps.Config{Capacity: 100_000, Decay: gps.Decay{HalfLife: 3600}})
//
// # Durability
//
// The whole sampling data plane serializes to GPSC checkpoint documents
// and restores bit-identically: a restored sampler (ReadCheckpoint),
// in-stream estimator (ReadInStreamCheckpoint) or sharded engine
// (ReadParallelCheckpoint) fed the remaining stream reproduces the
// uninterrupted run exactly — reservoir, RNG state, threshold, counters
// and estimator accumulators all survive.
//
//	var buf bytes.Buffer
//	_ = s.WriteCheckpoint(&buf, "triangle")
//	restored, _ := gps.ReadCheckpoint(&buf, nil)
//
// cmd/gps-serve persists and restores checkpoints automatically
// (-checkpoint-dir, -checkpoint-every, -restore), and cmd/gps-sample can
// resume an interrupted run (-checkpoint-out, -restore).
//
// The examples/ directory contains runnable programs, and internal/
// experiments regenerates every table and figure of the paper's evaluation.
package gps

import (
	"io"

	"gps/internal/core"
	"gps/internal/engine"
	"gps/internal/graph"
	"gps/internal/stats"
	"gps/internal/stream"
)

// NodeID identifies a vertex (32-bit).
type NodeID = graph.NodeID

// Edge is a canonical undirected edge (U < V).
type Edge = graph.Edge

// NewEdge returns the canonical undirected edge {a,b}; it panics if a == b.
func NewEdge(a, b NodeID) Edge { return graph.NewEdge(a, b) }

// NewEdgeAt is NewEdge carrying an event timestamp (0 means untimed).
func NewEdgeAt(a, b NodeID, ts uint64) Edge { return graph.NewEdgeAt(a, b, ts) }

// Decay configures forward-decay (time-decayed) sampling: a half-life in
// event-time units and an optional explicit landmark. The zero value
// disables decay. See Config.Decay and the core package notes for the
// estimator semantics (decayed counts at the stream's event horizon).
type Decay = core.Decay

// Config parameterizes a Sampler: reservoir capacity m, weight function
// W(k,K̂) (nil means uniform weights) and RNG seed.
type Config = core.Config

// Sampler implements Algorithm 1, GPS(m).
type Sampler = core.Sampler

// Reservoir is the sampled subgraph K̂, exposed to weight functions and for
// topology queries.
type Reservoir = core.Reservoir

// WeightFunc computes the sampling weight W(k,K̂) of an arriving edge.
type WeightFunc = core.WeightFunc

// Estimates holds unbiased count and variance estimates; see the methods on
// core.Estimates for clustering coefficients and confidence intervals.
type Estimates = core.Estimates

// InStream couples a Sampler with Algorithm 3's snapshot estimation.
type InStream = core.InStream

// Interval is a two-sided 95% confidence interval.
type Interval = stats.Interval

// NewSampler returns a GPS sampler for the given configuration.
func NewSampler(cfg Config) (*Sampler, error) { return core.NewSampler(cfg) }

// Parallel is a sharded GPS sampler: the stream is hash-partitioned across
// per-goroutine reservoirs and merged on demand (see NewParallel).
type Parallel = engine.Parallel

// NewParallel returns a sharded sampler with the given shard count
// (shards <= 0 means GOMAXPROCS). Feed it via Process/ProcessBatch — all
// methods are safe for concurrent use — call Merge for a sequential Sampler
// over everything fed so far (or Snapshot for the same result with a much
// shorter ingestion stall: shards are cloned under the lock and merged
// outside it), and Close when done.
//
// For stream-independent weights (UniformWeight) the merged sample is
// distributed exactly as a sequential GPS(m) sample of the whole stream —
// priority sampling is mergeable. For topology-dependent weights
// (TriangleWeight, AdjacencyWeight) each shard scores arrivals against its
// own partial reservoir, so the weight targeting is approximate while the
// Horvitz-Thompson normalization stays valid. Stateful weight functions
// (NewAdaptiveTriangleWeight) must not be used here: shards share the
// function and call it concurrently.
func NewParallel(cfg Config, shards int) (*Parallel, error) { return engine.NewParallel(cfg, shards) }

// MergeSamplers combines reservoirs of samplers that processed disjoint
// substreams into one sampler over the union stream: the cfg.Capacity
// highest priorities survive and the threshold becomes the largest
// priority excluded anywhere. It is the merge primitive behind
// Parallel.Merge, exported for custom partitioning schemes (e.g. merging
// samples taken on different machines).
func MergeSamplers(samplers []*Sampler, cfg Config) (*Sampler, error) {
	return core.Merge(samplers, cfg)
}

// NewInStream returns an in-stream estimator with a fresh sampler.
func NewInStream(cfg Config) (*InStream, error) { return core.NewInStream(cfg) }

// ReadCheckpoint restores a Sampler from a GPSC checkpoint document
// written by Sampler.WriteCheckpoint. The reservoir, RNG state, threshold
// and counters come back bit for bit: fed the remaining stream, the
// restored sampler evolves exactly like the original would have. resolve
// maps the recorded weight name back to a function (nil means
// ResolveWeight); it must return the function the checkpointed sampler
// ran.
func ReadCheckpoint(r io.Reader, resolve func(string) (WeightFunc, error)) (*Sampler, error) {
	return core.ReadCheckpoint(r, resolve)
}

// ReadInStreamCheckpoint restores an in-stream estimator (sampler plus
// Algorithm 3 accumulators) from a GPSC document written by
// InStream.WriteCheckpoint, also returning the recorded stream binding —
// compare it against the stream about to be replayed before resuming.
func ReadInStreamCheckpoint(r io.Reader, resolve func(string) (WeightFunc, error)) (*InStream, string, error) {
	return core.ReadInStreamCheckpoint(r, resolve)
}

// ReadParallelCheckpoint restores a sharded sampler from a GPSC engine
// document written by Parallel.WriteCheckpoint, returning the engine and
// the weight name the checkpoint records. Every shard reservoir and RNG
// state is restored bit for bit, so the engine resumes exactly where the
// original stopped.
func ReadParallelCheckpoint(r io.Reader, resolve func(string) (WeightFunc, error)) (*Parallel, string, error) {
	return engine.ReadParallelCheckpoint(r, resolve)
}

// ResolveWeight maps a checkpoint's recorded weight name to the built-in
// weight function of that name ("", "uniform", "triangle", "adjacency").
func ResolveWeight(name string) (WeightFunc, error) { return core.ResolveWeight(name) }

// EstimatePost runs Algorithm 2 over the sampler's current reservoir.
func EstimatePost(s *Sampler) Estimates { return core.EstimatePost(s) }

// Built-in weight functions (§3.2, §3.5, §4 of the paper).
var (
	// UniformWeight reduces GPS to plain uniform reservoir sampling.
	UniformWeight WeightFunc = core.UniformWeight
	// TriangleWeight is the paper's triangle-focused weight 9·|△̂(k)|+1.
	TriangleWeight WeightFunc = core.TriangleWeight
	// AdjacencyWeight weights an edge by its sampled adjacencies plus 1.
	AdjacencyWeight WeightFunc = core.AdjacencyWeight
)

// NewTriangleWeight returns W(k,K̂) = coef·|△̂(k)| + base.
func NewTriangleWeight(coef, base float64) WeightFunc {
	return core.NewTriangleWeight(coef, base)
}

// NewAdjacencyWeight returns W(k,K̂) = coef·(deg(u)+deg(v)) + base.
func NewAdjacencyWeight(coef, base float64) WeightFunc {
	return core.NewAdjacencyWeight(coef, base)
}

// NewAdaptiveTriangleWeight returns a stateful triangle weight whose
// coefficient adapts to the stream's observed triangle-completion rate —
// the paper's §8 "adaptive-weight sampling" future work. Each returned
// function must be used by exactly one Sampler.
func NewAdaptiveTriangleWeight(targetShare float64) WeightFunc {
	return core.NewAdaptiveTriangleWeight(targetShare)
}

// EstimateCliques4Post returns the unbiased 4-clique count estimate from the
// sampler's reservoir — the "cliques" case of the paper's generic subgraph
// framework.
func EstimateCliques4Post(s *Sampler) float64 { return core.EstimateCliques4Post(s) }

// EstimateStars3Post returns the unbiased 3-star (claw) count estimate
// Σ_v C(deg v, 3) — the "stars" case of the framework (wedges are 2-stars).
func EstimateStars3Post(s *Sampler) float64 { return core.EstimateStars3Post(s) }

// LocalTriangles maps nodes to per-node triangle count estimates.
type LocalTriangles = core.LocalTriangles

// EstimateLocalPost computes per-node triangle estimates from the sampler's
// current reservoir.
func EstimateLocalPost(s *Sampler) LocalTriangles { return core.EstimateLocalPost(s) }

// InStreamLocal couples a sampler with in-stream per-node triangle
// estimation.
type InStreamLocal = core.InStreamLocal

// NewInStreamLocal returns an in-stream local triangle estimator.
func NewInStreamLocal(cfg Config) (*InStreamLocal, error) { return core.NewInStreamLocal(cfg) }

// CombineWeights returns the positively-weighted sum of weight functions.
func CombineWeights(coefs []float64, fns []WeightFunc) WeightFunc {
	return core.CombineWeights(coefs, fns)
}

// Stream is a source of edge arrivals.
type Stream = stream.Stream

// FromEdges streams an in-memory edge slice in order.
func FromEdges(edges []Edge) Stream { return stream.FromEdges(edges) }

// Permute streams a seeded pseudo-random permutation of edges — the paper's
// stream model for static graphs.
func Permute(edges []Edge, seed uint64) Stream { return stream.Permute(edges, seed) }

// Simplify wraps a stream, dropping duplicate edges.
func Simplify(in Stream) Stream { return stream.Simplify(in) }

// Drive feeds every edge of s to fn.
func Drive(s Stream, fn func(Edge)) { stream.Drive(s, fn) }

// ReadStats reports what a reader skipped while decoding a stream; both
// formats share one self-loop policy (skip, count, keep positions aligned).
type ReadStats = stream.ReadStats

// ReadEdgeList parses a whitespace-separated "u v" (or timestamped
// "u v ts") edge list with '#'/'%' comments, skipping and counting self
// loops under the shared reader policy.
func ReadEdgeList(r io.Reader) ([]Edge, error) { return stream.ReadEdgeList(r) }

// WriteEdgeList writes edges in the format accepted by ReadEdgeList
// (three columns for edges carrying timestamps).
func WriteEdgeList(w io.Writer, edges []Edge) error { return stream.WriteEdgeList(w, edges) }

// ReadBinary decodes the compact GPSB binary edge framing (varint records;
// v2 adds delta-encoded event timestamps): the wire format of the live
// sampling service and of gps-gen -format binary. Malformed input returns
// an error, never panics; self loops are skipped and counted.
func ReadBinary(r io.Reader) ([]Edge, error) { return stream.ReadBinary(r) }

// WriteBinary writes edges in the binary framing accepted by ReadBinary,
// as v2 when any edge carries a timestamp and byte-identical v1 otherwise.
func WriteBinary(w io.Writer, edges []Edge) error { return stream.WriteBinary(w, edges) }

// ReadEdges reads a complete edge stream in either supported format,
// sniffing the binary magic and falling back to the text edge list.
func ReadEdges(r io.Reader) ([]Edge, error) { return stream.ReadEdges(r) }

// ReadEdgesStats is ReadEdges also reporting what was skipped.
func ReadEdgesStats(r io.Reader) ([]Edge, ReadStats, error) { return stream.ReadEdgesStats(r) }

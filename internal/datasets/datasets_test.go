package datasets

import "testing"

func TestRegistryComplete(t *testing.T) {
	lists := [][]string{Table1(), Figure1(), Figure2(), Table2(), Table3(), Figure3()}
	for _, list := range lists {
		for _, name := range list {
			if _, err := Get(name); err != nil {
				t.Errorf("experiment references unregistered dataset %q", name)
			}
		}
	}
	if len(Table1()) != 11 {
		t.Errorf("Table1 has %d graphs, want 11", len(Table1()))
	}
	if len(Figure1()) != 12 || len(Figure2()) != 12 {
		t.Errorf("Figure lists sized %d/%d, want 12/12", len(Figure1()), len(Figure2()))
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("no-such-graph"); err == nil {
		t.Fatal("unknown dataset did not error")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != len(registry) {
		t.Fatalf("Names() returned %d, registry has %d", len(names), len(registry))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted at %d", i)
		}
	}
}

func TestDatasetsDeterministicAndSimple(t *testing.T) {
	// Exercise a representative subset at Small scale.
	for _, name := range []string{"com-amazon", "cit-Patents", "infra-roadNet-CA", "soc-youtube-snap"} {
		d, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		a := d.Edges(Small)
		b := d.Edges(Small)
		if len(a) == 0 {
			t.Fatalf("%s: empty dataset", name)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic size", name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic at edge %d", name, i)
			}
		}
		seen := map[uint64]bool{}
		for _, e := range a {
			if e.U == e.V || !e.Canonical() || seen[e.Key()] {
				t.Fatalf("%s: invalid edge %v", name, e)
			}
			seen[e.Key()] = true
		}
	}
}

func TestSmallProfileSizes(t *testing.T) {
	// Small-profile datasets must stay in the tens-to-hundreds-of-
	// thousands of edges band: big enough to be meaningful, small enough
	// for bench-time ground truth.
	for _, name := range Names() {
		d, _ := Get(name)
		m := len(d.Edges(Small))
		if m < 30000 || m > 400000 {
			t.Errorf("%s: Small profile has %d edges, outside [30K,400K]", name, m)
		}
	}
}

func TestTruthCachedAndSane(t *testing.T) {
	c1, err := Truth("com-amazon", Small)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Truth("com-amazon", Small)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("cached truth differs")
	}
	if c1.Triangles <= 0 || c1.Wedges <= 0 {
		t.Fatalf("com-amazon truth implausible: %+v", c1)
	}
	cc := c1.GlobalClustering()
	if cc < 0.2 { // Watts-Strogatz at beta=0.05 is strongly clustered
		t.Fatalf("com-amazon clustering %v too low", cc)
	}
	if _, err := Truth("nope", Small); err == nil {
		t.Fatal("unknown dataset truth did not error")
	}
}

func TestKindProfilesDiffer(t *testing.T) {
	// The road network must be triangle-poor relative to the clustered
	// graphs — that contrast is what Table 2/3 exercise.
	road, err := Truth("infra-roadNet-CA", Small)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Truth("socfb-Penn94", Small)
	if err != nil {
		t.Fatal(err)
	}
	if road.GlobalClustering() >= fb.GlobalClustering() {
		t.Fatalf("road clustering %v not below facebook %v",
			road.GlobalClustering(), fb.GlobalClustering())
	}
}

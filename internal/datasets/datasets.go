// Package datasets maps every graph named in the paper's evaluation
// (Tables 1-3, Figures 1-3) to a deterministic synthetic stand-in.
//
// The paper uses real graphs from networkrepository.com with up to 265M
// edges; those are unavailable offline, so each is replaced by a generator
// configured to the same *type profile* — degree skew and clustering level —
// scaled to laptop size so that exact ground truth is cheap. The experiment
// harness reports the same quantities the paper reports against these
// stand-ins; DESIGN.md §4 records the substitution rationale.
//
// Every dataset is a pure function of its name and profile: repeated calls
// return identical edge lists, so experiments are reproducible end to end.
package datasets

import (
	"fmt"
	"sort"
	"sync"

	"gps/internal/exact"
	"gps/internal/gen"
	"gps/internal/graph"
)

// Profile selects the dataset scale.
type Profile int

const (
	// Small is the test/benchmark scale (roughly 50K-250K edges per
	// graph): large enough for the estimators' asymptotics to show,
	// small enough that every table regenerates in seconds.
	Small Profile = iota
	// Full is the CLI scale (roughly 8× Small) for slower, closer-to-
	// paper runs via cmd/gps-bench -profile full.
	Full
)

// String implements fmt.Stringer.
func (p Profile) String() string {
	if p == Full {
		return "full"
	}
	return "small"
}

// Dataset is a named synthetic stand-in for one of the paper's graphs.
type Dataset struct {
	// Name matches the graph name used in the paper's tables.
	Name string
	// Kind is the domain type (social, web, tech, collaboration, ...).
	Kind string
	// Notes documents the generator standing in for the real graph.
	Notes string

	build func(p Profile) []graph.Edge
}

// Edges generates the dataset's edge list for the given profile.
func (d Dataset) Edges(p Profile) []graph.Edge { return d.build(p) }

// scaled returns n for Small and 8n for Full.
func scaled(p Profile, n int) int {
	if p == Full {
		return 8 * n
	}
	return n
}

// rmatScale returns s for Small and s+3 for Full (8× nodes).
func rmatScale(p Profile, s int) int {
	if p == Full {
		return s + 3
	}
	return s
}

var registry = map[string]Dataset{}

func register(d Dataset) {
	if _, dup := registry[d.Name]; dup {
		panic("datasets: duplicate name " + d.Name)
	}
	registry[d.Name] = d
}

func init() {
	// Collaboration: very high clustering with heavy-tailed degrees.
	register(Dataset{
		Name: "ca-hollywood-2009", Kind: "collaboration",
		Notes: "Holme-Kim n=12K k=10 p=0.9 (dense actor collaboration: heavy tail + very high clustering)",
		build: func(p Profile) []graph.Edge {
			return gen.HolmeKim(scaled(p, 12000), 10, 0.9, 0x51)
		},
	})
	// Co-purchase: near-constant low degree, high clustering.
	register(Dataset{
		Name: "com-amazon", Kind: "co-purchase",
		Notes: "Watts-Strogatz n=30K k=6 beta=0.05 (lattice-like co-purchase: high clustering, narrow degrees)",
		build: func(p Profile) []graph.Edge {
			return gen.WattsStrogatz(scaled(p, 30000), 6, 0.05, 0xa1)
		},
	})
	// Social media: heavy-tailed, moderate clustering.
	register(Dataset{
		Name: "higgs-social-network", Kind: "social-media",
		Notes: "R-MAT scale=14 ef=8 a=0.57 (Twitter-interaction-like skew)",
		build: func(p Profile) []graph.Edge {
			return gen.RMAT(rmatScale(p, 14), 8, 0.57, 0.19, 0.19, 0xb1)
		},
	})
	register(Dataset{
		Name: "soc-flickr", Kind: "social-media",
		Notes: "R-MAT scale=14 ef=7 a=0.57",
		build: func(p Profile) []graph.Edge {
			return gen.RMAT(rmatScale(p, 14), 7, 0.57, 0.19, 0.19, 0xb2)
		},
	})
	register(Dataset{
		Name: "soc-livejournal", Kind: "social",
		Notes: "R-MAT scale=14 ef=9 a=0.55",
		build: func(p Profile) []graph.Edge {
			return gen.RMAT(rmatScale(p, 14), 9, 0.55, 0.19, 0.19, 0xb3)
		},
	})
	register(Dataset{
		Name: "soc-orkut", Kind: "social",
		Notes: "R-MAT scale=14 ef=12 a=0.55 (denser social graph)",
		build: func(p Profile) []graph.Edge {
			return gen.RMAT(rmatScale(p, 14), 12, 0.55, 0.19, 0.19, 0xb4)
		},
	})
	register(Dataset{
		Name: "soc-twitter-2010", Kind: "social-media",
		Notes: "R-MAT scale=15 ef=8 a=0.6 (largest stand-in; strongest skew)",
		build: func(p Profile) []graph.Edge {
			return gen.RMAT(rmatScale(p, 15), 8, 0.60, 0.19, 0.19, 0xb5)
		},
	})
	register(Dataset{
		Name: "soc-youtube-snap", Kind: "social-media",
		Notes: "R-MAT scale=14 ef=5 a=0.57",
		build: func(p Profile) []graph.Edge {
			return gen.RMAT(rmatScale(p, 14), 5, 0.57, 0.19, 0.19, 0xb6)
		},
	})
	// Facebook friendship networks: heavy tail with high clustering.
	register(Dataset{
		Name: "socfb-Penn94", Kind: "facebook",
		Notes: "Holme-Kim n=8K k=12 p=0.5",
		build: func(p Profile) []graph.Edge {
			return gen.HolmeKim(scaled(p, 8000), 12, 0.5, 0xc1)
		},
	})
	register(Dataset{
		Name: "socfb-Texas84", Kind: "facebook",
		Notes: "Holme-Kim n=9K k=12 p=0.4",
		build: func(p Profile) []graph.Edge {
			return gen.HolmeKim(scaled(p, 9000), 12, 0.4, 0xc2)
		},
	})
	register(Dataset{
		Name: "socfb-Indiana69", Kind: "facebook",
		Notes: "Holme-Kim n=9K k=11 p=0.5",
		build: func(p Profile) []graph.Edge {
			return gen.HolmeKim(scaled(p, 9000), 11, 0.5, 0xc3)
		},
	})
	register(Dataset{
		Name: "socfb-UF21", Kind: "facebook",
		Notes: "Holme-Kim n=10K k=10 p=0.45",
		build: func(p Profile) []graph.Edge {
			return gen.HolmeKim(scaled(p, 10000), 10, 0.45, 0xc4)
		},
	})
	// Technological: strong skew, low-moderate clustering.
	register(Dataset{
		Name: "tech-as-skitter", Kind: "technological",
		Notes: "R-MAT scale=14 ef=7 a=0.65 (AS-topology-like strong skew)",
		build: func(p Profile) []graph.Edge {
			return gen.RMAT(rmatScale(p, 14), 7, 0.65, 0.15, 0.15, 0xd1)
		},
	})
	// Web: skew plus high local clustering.
	register(Dataset{
		Name: "web-google", Kind: "web",
		Notes: "Holme-Kim n=15K k=6 p=0.7 (web host graph: clustered, heavy tail)",
		build: func(p Profile) []graph.Edge {
			return gen.HolmeKim(scaled(p, 15000), 6, 0.7, 0xe1)
		},
	})
	register(Dataset{
		Name: "web-BerkStan", Kind: "web",
		Notes: "Holme-Kim n=14K k=7 p=0.8",
		build: func(p Profile) []graph.Edge {
			return gen.HolmeKim(scaled(p, 14000), 7, 0.8, 0xe2)
		},
	})
	// Citation: heavy tail, low clustering.
	register(Dataset{
		Name: "cit-Patents", Kind: "citation",
		Notes: "Barabasi-Albert n=25K k=5 (preferential attachment without triad closure)",
		build: func(p Profile) []graph.Edge {
			return gen.BarabasiAlbert(scaled(p, 25000), 5, 0xf1)
		},
	})
	// Road: near-planar, degree ≈ 2-3, almost no triangles.
	register(Dataset{
		Name: "infra-roadNet-CA", Kind: "road",
		Notes: "perturbed grid 260x260 keep=0.75 diag=0.03 (near-planar, triangle-poor)",
		build: func(p Profile) []graph.Edge {
			side := 260
			if p == Full {
				side = 740 // ≈8× nodes
			}
			return gen.RoadGrid(side, side, 0.75, 0.03, 0xf2)
		},
	})
}

// Get returns the dataset registered under name.
func Get(name string) (Dataset, error) {
	d, ok := registry[name]
	if !ok {
		return Dataset{}, fmt.Errorf("datasets: unknown dataset %q", name)
	}
	return d, nil
}

// Names returns all registered dataset names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Table1 lists the 11 graphs of the paper's Table 1.
func Table1() []string {
	return []string{
		"ca-hollywood-2009", "com-amazon", "higgs-social-network",
		"soc-livejournal", "soc-orkut", "soc-twitter-2010",
		"soc-youtube-snap", "socfb-Penn94", "socfb-Texas84",
		"tech-as-skitter", "web-google",
	}
}

// Figure1 lists the 12 graphs of the paper's Figure 1 scatter.
func Figure1() []string {
	return []string{
		"ca-hollywood-2009", "com-amazon", "higgs-social-network",
		"soc-flickr", "soc-youtube-snap", "socfb-Indiana69",
		"socfb-Penn94", "socfb-Texas84", "socfb-UF21",
		"tech-as-skitter", "web-BerkStan", "web-google",
	}
}

// Figure2 lists the 12 graphs of the paper's Figure 2 convergence panels.
func Figure2() []string {
	return []string{
		"socfb-Texas84", "socfb-Penn94", "soc-twitter-2010",
		"soc-youtube-snap", "soc-orkut", "soc-livejournal",
		"higgs-social-network", "cit-Patents", "web-BerkStan",
		"com-amazon", "tech-as-skitter", "web-google",
	}
}

// Table2 lists the graphs of the paper's baseline comparison (Table 2).
func Table2() []string {
	return []string{"cit-Patents", "higgs-social-network", "infra-roadNet-CA"}
}

// Table3 lists the graphs of the paper's tracking comparison (Table 3).
func Table3() []string {
	return []string{
		"ca-hollywood-2009", "tech-as-skitter",
		"infra-roadNet-CA", "soc-youtube-snap",
	}
}

// Figure3 lists the graphs of the paper's real-time tracking plots.
func Figure3() []string {
	return []string{"soc-orkut", "tech-as-skitter"}
}

// GroundTruth holds the exact statistics of a dataset at a profile.
type GroundTruth struct {
	Counts exact.Counts
}

var truthCache sync.Map // map[string]exact.Counts keyed by name/profile

// Truth returns (and caches) the exact counts of the dataset. Generating
// ground truth is the most expensive part of the harness; the cache makes
// repeated experiments over the same dataset cheap within one process.
func Truth(name string, p Profile) (exact.Counts, error) {
	key := name + "/" + p.String()
	if v, ok := truthCache.Load(key); ok {
		return v.(exact.Counts), nil
	}
	d, err := Get(name)
	if err != nil {
		return exact.Counts{}, err
	}
	c := exact.Count(graph.BuildStatic(d.Edges(p)))
	truthCache.Store(key, c)
	return c, nil
}

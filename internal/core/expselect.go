//go:build !gps_exactexp

package core

// decayExp is e^x as evaluated on every forward-decay path: the admission
// boost, the slot-indexed decay tables, and the in-stream per-motif decay
// factors. The default build uses the table/polynomial fast path; building
// with -tags gps_exactexp swaps in math.Exp so the twin test suites can
// certify that every decay-dependent statistic is insensitive to the
// fast path's ≤2-ulp rounding differences.
func decayExp(x float64) float64 { return fastExp(x) }

// decayExpExact reports which implementation decayExp resolves to, for
// tests and bench reports that record the build flavor.
const decayExpExact = false

package core

import "gps/internal/graph"

// This file retains the lookup-based estimation path that predates the
// slot-indexed fast path: identical enumeration and summation order, but
// every enumerated neighbor and triangle edge resolves its stored weight
// through the reservoir's open-addressing hash index (Reservoir.entry)
// instead of the adjacency slot runs. It exists for two reasons: the
// equality tests pin the fast path against it bit for bit, and
// gps-bench -exp perf measures the speedup it was replaced for.

// EstimatePostLookup is the hash-lookup reference implementation of
// EstimatePost. For any sampler state and fixed GOMAXPROCS it returns a
// result bit-identical to EstimatePost, at the cost of one hash probe per
// enumerated neighbor and per triangle membership test.
func EstimatePostLookup(s *Sampler) Estimates {
	n := s.res.Len()
	workers := estimateWorkers(n)
	parts := make([]partial, workers)
	parallelFor(n, workers, func(w, lo, hi int) {
		var local partial
		for i := lo; i < hi; i++ {
			local.add(s.estimateEdgeLookup(s.res.heap.At(i).Edge))
		}
		parts[w] = local
	})
	return reduceEstimates(parts, n, s.arrivals)
}

// estimateEdgeLookup is estimateEdge resolving probabilities through the
// hash index. The loop structure mirrors the pre-slot-path implementation.
func (s *Sampler) estimateEdgeLookup(k graph.Edge) edgeTotals {
	var t edgeTotals
	q := 1.0
	if ent := s.res.entry(k); ent != nil {
		q = s.probForWeight(ent.Weight)
	}
	invQ := 1 / q

	v1, v2 := k.U, k.V
	if s.res.Degree(v1) > s.res.Degree(v2) {
		v1, v2 = v2, v1
	}

	var cTriPairs float64
	var cWPairs float64
	var aK, bK, dK float64
	var subWedge float64

	s.res.Neighbors(v1, func(v3 graph.NodeID) bool {
		if v3 == v2 {
			return true
		}
		q1 := s.mustProb(v1, v3)
		if e2 := s.res.entry(graph.NewEdge(v2, v3)); e2 != nil {
			q2 := s.probForWeight(e2.Weight)
			inv12 := 1 / (q1 * q2)
			invAll := invQ * inv12
			t.nTri += invAll
			t.vTri += invAll * (invAll - 1)
			t.cTri += cTriPairs * inv12
			cTriPairs += inv12
			aK += inv12
			dK += inv12 * (1/q1 + 1/q2)
			subWedge += invAll * (inv12 - 1)
		}
		invW := invQ / q1
		t.nW += invW
		t.vW += invW * (invW - 1)
		t.cW += cWPairs / q1
		cWPairs += 1 / q1
		bK += 1 / q1
		return true
	})
	s.res.Neighbors(v2, func(v3 graph.NodeID) bool {
		if v3 == v1 {
			return true
		}
		q2 := s.mustProb(v2, v3)
		invW := invQ / q2
		t.nW += invW
		t.vW += invW * (invW - 1)
		t.cW += cWPairs / q2
		cWPairs += 1 / q2
		bK += 1 / q2
		return true
	})

	scale := 2 * invQ * (invQ - 1)
	t.cTri *= scale
	t.cW *= scale
	t.covTW = invQ*(invQ-1)*(aK*bK-dK) + subWedge
	return t
}

// mustProb returns the inclusion probability of the sampled edge {a,b} via
// the hash index. The reference scans only present pairs that are edges of
// the reservoir adjacency, so a missing heap entry means the reservoir
// invariants are broken and panicking early is the right failure mode.
func (s *Sampler) mustProb(a, b graph.NodeID) float64 {
	ent := s.res.entry(graph.NewEdge(a, b))
	if ent == nil {
		panic("core: adjacency lists edge " + graph.NewEdge(a, b).String() + " missing from heap")
	}
	return s.probForWeight(ent.Weight)
}

package core

import (
	"bytes"
	"testing"

	"gps/internal/graph"
)

// checkpointBytes serializes s and fails the test on error.
func checkpointBytes(t *testing.T, s *Sampler, weightName string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf, weightName); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// restoreSampler decodes a checkpoint and fails the test on error.
func restoreSampler(t *testing.T, doc []byte) *Sampler {
	t.Helper()
	s, err := ReadCheckpoint(bytes.NewReader(doc), nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCheckpointRestoreBitIdentical is the tentpole property: a restored
// sampler must evolve exactly like the original from the checkpoint point
// onward — same reservoir fingerprint after the identical suffix, and the
// same bits from every estimator.
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	edges := cloneTestStream(300, 4000, 0x5A)
	for _, tc := range []struct {
		name   string
		weight WeightFunc
	}{{"uniform", nil}, {"triangle", TriangleWeight}, {"adjacency", AdjacencyWeight}} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSampler(Config{Capacity: 250, Weight: tc.weight, Seed: 0xFACE})
			if err != nil {
				t.Fatal(err)
			}
			processAll(t, s, edges[:2000])
			restored := restoreSampler(t, checkpointBytes(t, s, tc.name))
			requireSameSampler(t, s, restored)
			if got, want := fingerprint(restored), fingerprint(s); got != want {
				t.Fatalf("fingerprint after restore: %#x, want %#x", got, want)
			}
			if restored.Duplicates() != s.Duplicates() || restored.Processed() != s.Processed() {
				t.Fatal("stream position not restored")
			}

			// Every estimator must produce the same bits on the restored
			// state, which pins dense-id and heap iteration order, not just
			// the edge set.
			if a, b := EstimatePost(s), EstimatePost(restored); a != b {
				t.Fatalf("EstimatePost differs: %+v vs %+v", a, b)
			}
			if a, b := EstimateCliques4Post(s), EstimateCliques4Post(restored); a != b {
				t.Fatalf("EstimateCliques4Post differs: %v vs %v", a, b)
			}
			if a, b := EstimateStars3Post(s), EstimateStars3Post(restored); a != b {
				t.Fatalf("EstimateStars3Post differs: %v vs %v", a, b)
			}

			// ... and keep evolving identically through the rest of the
			// stream (same RNG draws, same weights, same evictions).
			processAll(t, s, edges[2000:])
			processAll(t, restored, edges[2000:])
			requireSameSampler(t, s, restored)
			if got, want := fingerprint(restored), fingerprint(s); got != want {
				t.Fatalf("fingerprint after suffix: %#x, want %#x", got, want)
			}
			if a, b := EstimatePost(s), EstimatePost(restored); a != b {
				t.Fatalf("EstimatePost after suffix differs: %+v vs %+v", a, b)
			}
			checkSlotConsistency(t, restored.res)
		})
	}
}

// TestCheckpointByteIdempotent: checkpoint → restore → checkpoint must
// reproduce the document byte for byte, i.e. the encoding is a function of
// live state only (freed arena slots and dense ids are normalized).
func TestCheckpointByteIdempotent(t *testing.T) {
	edges := cloneTestStream(200, 3000, 0x7B)
	s, err := NewSampler(Config{Capacity: 120, Weight: TriangleWeight, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	processAll(t, s, edges)
	doc := checkpointBytes(t, s, "triangle")
	again := checkpointBytes(t, restoreSampler(t, doc), "triangle")
	if !bytes.Equal(doc, again) {
		t.Fatalf("re-checkpoint differs: %d vs %d bytes", len(doc), len(again))
	}
}

// TestInStreamCheckpointRestore verifies the in-stream estimator round
// trip: accumulators and per-edge covariances survive, and both forks
// produce identical estimates after the identical suffix.
func TestInStreamCheckpointRestore(t *testing.T) {
	edges := cloneTestStream(250, 3500, 0x91)
	est, err := NewInStream(Config{Capacity: 200, Weight: TriangleWeight, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges[:1700] {
		est.Process(e)
	}
	var buf bytes.Buffer
	if err := est.WriteCheckpoint(&buf, "triangle", "stream-A@1700"); err != nil {
		t.Fatal(err)
	}
	restored, binding, err := ReadInStreamCheckpoint(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if binding != "stream-A@1700" {
		t.Fatalf("stream binding %q did not round-trip", binding)
	}
	if est.Estimates() != restored.Estimates() {
		t.Fatalf("estimates differ after restore: %+v vs %+v", est.Estimates(), restored.Estimates())
	}
	for _, e := range edges[1700:] {
		est.Process(e)
		restored.Process(e)
	}
	if est.Estimates() != restored.Estimates() {
		t.Fatalf("estimates differ after suffix: %+v vs %+v", est.Estimates(), restored.Estimates())
	}
	requireSameSampler(t, est.Sampler(), restored.Sampler())
}

// TestCheckpointEmptySampler: a sampler that has seen nothing must survive
// the round trip too.
func TestCheckpointEmptySampler(t *testing.T) {
	s, err := NewSampler(Config{Capacity: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	restored := restoreSampler(t, checkpointBytes(t, s, ""))
	requireSameSampler(t, s, restored)
	e := graph.NewEdge(1, 2)
	if s.Process(e) != restored.Process(e) {
		t.Fatal("first arrivals diverge")
	}
	requireSameSampler(t, s, restored)
}

// TestCheckpointWeightResolution pins the weight-name contract: unknown
// and adaptive names fail, a custom resolver is honored, and kind bytes
// are enforced.
func TestCheckpointWeightResolution(t *testing.T) {
	s, err := NewSampler(Config{Capacity: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(bytes.NewReader(checkpointBytes(t, s, "no-such-weight")), nil); err == nil {
		t.Fatal("unknown weight name accepted")
	}
	if _, err := ReadCheckpoint(bytes.NewReader(checkpointBytes(t, s, "adaptive")), nil); err == nil {
		t.Fatal("adaptive weight accepted")
	}
	called := ""
	custom := func(name string) (WeightFunc, error) {
		called = name
		return TriangleWeight, nil
	}
	if _, err := ReadCheckpoint(bytes.NewReader(checkpointBytes(t, s, "mine")), custom); err != nil {
		t.Fatal(err)
	}
	if called != "mine" {
		t.Fatalf("resolver saw %q", called)
	}
	// A sampler document is not an in-stream document and vice versa.
	if _, _, err := ReadInStreamCheckpoint(bytes.NewReader(checkpointBytes(t, s, "")), nil); err == nil {
		t.Fatal("sampler document accepted as in-stream")
	}
}

package core

import (
	"errors"
	"fmt"
	"sort"

	"gps/internal/obs"
	"gps/internal/order"
)

// Merge combines the reservoirs of samplers that each processed a disjoint
// substream into a single sampler over the union stream, using priority
// sampling's mergeability: every edge's priority r(k) = w(k)/u(k) is a
// function of the edge and its own uniform draw, so the m highest-priority
// edges of the union of the shard reservoirs are exactly the m
// highest-priority edges of the whole stream, and the merged threshold is
// the largest priority excluded anywhere — the maximum of the shard
// thresholds and of the priorities dropped by the merge itself.
//
// This identity is exact when weights are stream-independent (UniformWeight,
// or any W(k) that ignores the reservoir argument). For topology-dependent
// weights such as TriangleWeight each shard evaluates W(k,K̂_p) against its
// own partial reservoir, so the merged sample is an approximation whose
// weights reflect per-shard topology; see the engine package for the
// semantics discussion.
//
// The input samplers must hold disjoint edge sets (guaranteed when the
// stream was hash-partitioned by edge identity). If an edge nonetheless
// appears in several reservoirs, the highest-priority copy wins and the
// others are treated as excluded mass. The merged sampler has capacity
// cfg.Capacity, carries summed arrival/duplicate counts, and is a fully
// functional sampler: it can keep processing edges or feed any estimator.
func Merge(samplers []*Sampler, cfg Config) (*Sampler, error) {
	if len(samplers) == 0 {
		return nil, errors.New("core: Merge requires at least one sampler")
	}
	m, err := NewSampler(cfg)
	if err != nil {
		return nil, err
	}

	// Forward decay merges only between samplers that agree on the decay
	// function and landmark: priorities are comparable across shards exactly
	// when every boost used the same g. The merged horizon is the max.
	for _, s := range samplers {
		if s.decay != cfg.Decay {
			return nil, fmt.Errorf("core: Merge decay config %+v disagrees with sampler's %+v", cfg.Decay, s.decay)
		}
		if s.landmarkSet {
			if !m.landmarkSet {
				m.landmark, m.landmarkSet = s.landmark, true
			} else if m.landmark != s.landmark {
				return nil, fmt.Errorf("core: Merge landmark disagreement: %d vs %d (shards must share the decay landmark)",
					m.landmark, s.landmark)
			}
		}
		if s.lastTS > m.lastTS {
			m.lastTS = s.lastTS
		}
	}

	total := 0
	for _, s := range samplers {
		total += s.res.Len()
		if s.zstar > m.zstar {
			m.zstar = s.zstar
		}
		m.arrivals += s.arrivals
		m.duplicates += s.duplicates
		m.delApplied += s.delApplied
		m.delUnsampled += s.delUnsampled
		m.accepts += s.accepts
		m.evicts += s.evicts
	}
	entries := make([]order.Entry, 0, total)
	for _, s := range samplers {
		for i := 0; i < s.res.Len(); i++ {
			entries = append(entries, *s.res.heap.At(i))
		}
	}
	// Highest priority first; ties broken by edge key so the merge is a
	// deterministic function of the shard reservoirs.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Priority != entries[j].Priority {
			return entries[i].Priority > entries[j].Priority
		}
		return entries[i].Edge.Key() < entries[j].Edge.Key()
	})

	for _, ent := range entries {
		if m.res.Len() < cfg.Capacity && !m.res.Contains(ent.Edge) {
			m.res.insert(ent)
			continue
		}
		// Excluded from the merged sample: its priority joins the
		// threshold competition, exactly as if it had been evicted — and it
		// counts as an eviction, keeping accepts-evicts equal to the fill.
		if obs.Enabled {
			m.evicts++
		}
		if ent.Priority > m.zstar {
			m.zstar = ent.Priority
		}
	}
	return m, nil
}

package core

import (
	"math"
	"testing"

	"gps/internal/randx"
)

// ulpsApart returns the distance in ulps between two finite positive
// float64s (the ordered-bits trick: finite positives order like their bit
// patterns).
func ulpsApart(a, b float64) uint64 {
	ba, bb := math.Float64bits(a), math.Float64bits(b)
	if ba > bb {
		return ba - bb
	}
	return bb - ba
}

// checkFastExp asserts fastExp(x) is within maxULP ulps of math.Exp(x),
// reporting the worst offender through the returned pointer.
func checkFastExp(t *testing.T, x float64, maxULP uint64, worst *uint64, worstX *float64) {
	t.Helper()
	got, want := fastExp(x), math.Exp(x)
	d := ulpsApart(got, want)
	if d > *worst {
		*worst, *worstX = d, x
	}
	if d > maxULP {
		rel := math.Abs(got-want) / want
		t.Fatalf("fastExp(%v) = %v, math.Exp = %v: %d ulps apart (rel %.3e)", x, got, want, d, rel)
	}
}

// TestFastExpSweep pins the fast path's accuracy: ≤ 3 ulps from math.Exp
// (≈ 6.7e-16 relative; libm itself carries up to 1 ulp, so ≤ ~2 ulps of
// that budget is the fast path's own) across dense sweeps of the full
// fast-path domain, the near-zero region the decay factors live in, and
// the reduction boundaries k·ln2/256 where the polynomial argument peaks.
func TestFastExpSweep(t *testing.T) {
	const maxULP = 3
	var worst uint64
	var worstX float64

	// Full-domain uniform sweep, 4M points across [-700, 700].
	const n = 1 << 22
	for i := 0; i <= n; i++ {
		x := -700 + 1400*float64(i)/n
		checkFastExp(t, x, maxULP, &worst, &worstX)
	}
	// Dense near-zero sweep: λ(t-L) for in-window edges is O(1) or smaller.
	for i := -200000; i <= 200000; i++ {
		checkFastExp(t, float64(i)*1e-4, maxULP, &worst, &worstX)
	}
	// Reduction boundaries: arguments landing exactly between table nodes.
	for k := -129000; k <= 129000; k += 17 {
		x := (float64(k) + 0.5) * math.Ln2 / 128
		if x < -700 || x > 700 {
			continue
		}
		checkFastExp(t, x, maxULP, &worst, &worstX)
	}
	// Random log-uniform magnitudes, both signs.
	rng := randx.New(0xFA57E49)
	for i := 0; i < 1<<20; i++ {
		mag := math.Exp(rng.Uniform01()*13 - 6.5) // e^-6.5 .. e^6.5
		x := mag
		if rng.Uint64()&1 == 0 {
			x = -mag
		}
		checkFastExp(t, x, maxULP, &worst, &worstX)
	}
	t.Logf("worst case: %d ulps at x=%v", worst, worstX)
}

// TestFastExpExactValues pins the identities the sampler depends on:
// fastExp(0) must be exactly 1 (the undecayed-equivalence tests feed
// constant-time streams whose boost must be the multiplicative identity),
// and the fallback region must agree with math.Exp bit for bit, including
// overflow to +Inf (the DecayOverflowError trigger), underflow to 0, and
// NaN/Inf propagation.
func TestFastExpExactValues(t *testing.T) {
	if got := fastExp(0); got != 1 {
		t.Fatalf("fastExp(0) = %v, want exactly 1", got)
	}
	for _, x := range []float64{701, -701, 710, -746, 1000, -1000, 1e300, -1e300,
		math.Inf(1), math.Inf(-1), math.MaxFloat64} {
		got, want := fastExp(x), math.Exp(x)
		if got != want {
			t.Fatalf("fastExp(%v) = %v, want math.Exp's %v", x, got, want)
		}
	}
	if got := fastExp(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("fastExp(NaN) = %v, want NaN", got)
	}
	// Domain boundary: both endpoints take the fast path and stay finite,
	// positive and normal.
	for _, x := range []float64{700, -700, 699.999999, -699.999999} {
		got := fastExp(x)
		if math.IsInf(got, 0) || got <= 0 || got < math.SmallestNonzeroFloat64*1e16 {
			t.Fatalf("fastExp(%v) = %v out of normal range", x, got)
		}
	}
}

// TestDecayExpFlavor documents which implementation this build runs; the CI
// matrix runs the core suite under both flavors, and the decay statistical
// suites (NRMSE, crash-equivalence, undecayed-equivalence) pass under each.
func TestDecayExpFlavor(t *testing.T) {
	if decayExpExact {
		t.Log("decayExp = math.Exp (gps_exactexp build)")
	} else {
		t.Log("decayExp = fastExp (default build)")
	}
}

func BenchmarkMathExp(b *testing.B) {
	x := -0.5
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += math.Exp(x)
		x = -sink / float64(b.N) // data-dependent, defeats hoisting
	}
	_ = sink
}

func BenchmarkFastExp(b *testing.B) {
	x := -0.5
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += fastExp(x)
		x = -sink / float64(b.N)
	}
	_ = sink
}

package core

import (
	"runtime"
	"sync"

	"gps/internal/graph"
)

// LocalTriangles holds per-node triangle count estimates N̂_v(△): for each
// node, the estimated number of triangles containing it. Local triangle
// counts drive spam/anomaly detection and role discovery — the application
// setting of the MASCOT line of work (§7) — and fall out of the same
// Horvitz-Thompson machinery as the global count: each triangle estimator
// Ŝ_τ contributes once to each of its three corners, so Σ_v N̂_v(△) =
// 3·N̂(△) holds identically.
type LocalTriangles map[graph.NodeID]float64

// Total returns Σ_v N̂_v(△) = 3·N̂(△).
func (lt LocalTriangles) Total() float64 {
	total := 0.0
	for _, v := range lt {
		total += v
	}
	return total
}

// EstimateLocalPost computes per-node triangle estimates from the current
// reservoir (the local analogue of EstimatePost). Each sampled edge
// enumerates the triangles it participates in, exactly as in Algorithm 2;
// a triangle enumerated at one of its three edges credits Ŝ_τ/3 to each
// corner, so after the full scan every corner has accumulated Ŝ_τ.
func EstimateLocalPost(s *Sampler) LocalTriangles {
	n := s.res.Len()
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	parts := make([]LocalTriangles, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			local := make(LocalTriangles)
			for i := lo; i < hi; i++ {
				s.localEdge(s.res.heap.At(i).Edge, local)
			}
			parts[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	out := make(LocalTriangles)
	for _, part := range parts {
		for v, c := range part {
			out[v] += c
		}
	}
	return out
}

// localEdge accumulates the corner contributions of the triangles at edge k.
func (s *Sampler) localEdge(k graph.Edge, acc LocalTriangles) {
	ent := s.res.entry(k)
	if ent == nil {
		return
	}
	invQ := 1 / s.probForWeight(ent.Weight)
	v1, v2 := k.U, k.V
	if s.res.Degree(v1) > s.res.Degree(v2) {
		v1, v2 = v2, v1
	}
	s.res.Neighbors(v1, func(v3 graph.NodeID) bool {
		if v3 == v2 {
			return true
		}
		e2 := s.res.entry(graph.NewEdge(v2, v3))
		if e2 == nil {
			return true
		}
		q1 := s.mustProb(v1, v3)
		q2 := s.probForWeight(e2.Weight)
		share := invQ / (q1 * q2) / 3
		acc[v1] += share
		acc[v2] += share
		acc[v3] += share
		return true
	})
}

// InStreamLocal couples a GPS sampler with in-stream per-node triangle
// estimation: when edge k3 arrives and completes triangles against the
// reservoir, each triangle's snapshot estimate 1/(q1·q2) is credited to its
// three corners (the local version of Theorem 6; each snapshot is counted
// exactly once, at the arrival of the triangle's last edge).
//
// InStreamLocal is not safe for concurrent use.
type InStreamLocal struct {
	s      *Sampler
	counts LocalTriangles
}

// NewInStreamLocal returns an in-stream local triangle estimator with a
// fresh GPS sampler.
func NewInStreamLocal(cfg Config) (*InStreamLocal, error) {
	s, err := NewSampler(cfg)
	if err != nil {
		return nil, err
	}
	return &InStreamLocal{s: s, counts: make(LocalTriangles)}, nil
}

// Sampler exposes the underlying sampler.
func (t *InStreamLocal) Sampler() *Sampler { return t.s }

// Process handles one edge arrival: local snapshots first, then the GPS
// sampling step.
func (t *InStreamLocal) Process(e graph.Edge) bool {
	if t.s.res.Contains(e) {
		t.s.duplicates++
		return true
	}
	res := t.s.res
	res.CommonNeighbors(e.U, e.V, func(v3 graph.NodeID) bool {
		q1 := t.s.mustProb(e.U, v3)
		q2 := t.s.mustProb(e.V, v3)
		share := 1 / (q1 * q2)
		t.counts[e.U] += share
		t.counts[e.V] += share
		t.counts[v3] += share
		return true
	})
	return t.s.Process(e)
}

// Counts returns the running per-node estimates. The map is live; callers
// that need a stable snapshot must copy it.
func (t *InStreamLocal) Counts() LocalTriangles { return t.counts }

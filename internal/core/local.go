package core

import "gps/internal/graph"

// LocalTriangles holds per-node triangle count estimates N̂_v(△): for each
// node, the estimated number of triangles containing it. Local triangle
// counts drive spam/anomaly detection and role discovery — the application
// setting of the MASCOT line of work (§7) — and fall out of the same
// Horvitz-Thompson machinery as the global count: each triangle estimator
// Ŝ_τ contributes once to each of its three corners, so Σ_v N̂_v(△) =
// 3·N̂(△) holds identically.
type LocalTriangles map[graph.NodeID]float64

// Total returns Σ_v N̂_v(△) = 3·N̂(△).
func (lt LocalTriangles) Total() float64 {
	total := 0.0
	for _, v := range lt {
		total += v
	}
	return total
}

// EstimateLocalPost computes per-node triangle estimates from the current
// reservoir (the local analogue of EstimatePost). Each sampled edge
// enumerates the triangles it participates in, exactly as in Algorithm 2;
// a triangle enumerated at one of its three edges credits Ŝ_τ/3 to each
// corner, so after the full scan every corner has accumulated Ŝ_τ. Like
// EstimatePost it runs on the slot-indexed fast path: probabilities come
// from the slot table and triangle detection is the two-pointer merge over
// slot runs.
func EstimateLocalPost(s *Sampler) LocalTriangles {
	n := s.res.Len()
	probs := s.slotProbs()
	workers := estimateWorkers(n)
	parts := make([]LocalTriangles, workers)
	parallelFor(n, workers, func(w, lo, hi int) {
		local := make(LocalTriangles)
		for i := lo; i < hi; i++ {
			s.localEdge(s.res.heap.SlotAt(i), probs, local)
		}
		parts[w] = local
	})
	out := make(LocalTriangles)
	for _, part := range parts {
		for v, c := range part {
			out[v] += c
		}
	}
	return out
}

// localEdge accumulates the corner contributions of the triangles at the
// sampled edge stored at the given heap slot.
func (s *Sampler) localEdge(slot int32, probs []float64, acc LocalTriangles) {
	k := s.res.entryAt(slot).Edge
	invQ := 1 / probs[slot]
	v1, v2 := k.U, k.V
	n1, s1 := s.res.neighborRun(v1)
	n2, s2 := s.res.neighborRun(v2)
	if len(n1) > len(n2) {
		v1, v2 = v2, v1
		n1, s1, n2, s2 = n2, s2, n1, s1
	}
	j := 0
	for i, v3 := range n1 {
		if v3 == v2 {
			continue
		}
		for j < len(n2) && n2[j] < v3 {
			j++
		}
		if j >= len(n2) || n2[j] != v3 {
			continue
		}
		q1 := probs[s1[i]]
		q2 := probs[s2[j]]
		share := invQ / (q1 * q2) / 3
		acc[v1] += share
		acc[v2] += share
		acc[v3] += share
	}
}

// InStreamLocal couples a GPS sampler with in-stream per-node triangle
// estimation: when edge k3 arrives and completes triangles against the
// reservoir, each triangle's snapshot estimate 1/(q1·q2) is credited to its
// three corners (the local version of Theorem 6; each snapshot is counted
// exactly once, at the arrival of the triangle's last edge).
//
// InStreamLocal is not safe for concurrent use.
type InStreamLocal struct {
	s      *Sampler
	counts LocalTriangles
}

// NewInStreamLocal returns an in-stream local triangle estimator with a
// fresh GPS sampler.
func NewInStreamLocal(cfg Config) (*InStreamLocal, error) {
	s, err := NewSampler(cfg)
	if err != nil {
		return nil, err
	}
	return &InStreamLocal{s: s, counts: make(LocalTriangles)}, nil
}

// Sampler exposes the underlying sampler.
func (t *InStreamLocal) Sampler() *Sampler { return t.s }

// Process handles one edge arrival: local snapshots first, then the GPS
// sampling step.
func (t *InStreamLocal) Process(e graph.Edge) bool {
	if t.s.res.Contains(e) {
		t.s.duplicates++
		return true
	}
	res := t.s.res
	res.commonNeighborsWithSlots(e.U, e.V, func(v3 graph.NodeID, su, sv int32) bool {
		q1 := t.s.probForWeight(res.entryAt(su).Weight)
		q2 := t.s.probForWeight(res.entryAt(sv).Weight)
		share := 1 / (q1 * q2)
		t.counts[e.U] += share
		t.counts[e.V] += share
		t.counts[v3] += share
		return true
	})
	return t.s.Process(e)
}

// Counts returns the running per-node estimates. The map is live; callers
// that need a stable snapshot must copy it.
func (t *InStreamLocal) Counts() LocalTriangles { return t.counts }

package core

import (
	"bytes"
	"testing"

	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/randx"
)

// checkSlotConsistency asserts the tentpole invariant of the slot-indexed
// estimation path: the adjacency's per-neighbor slot runs and the heap's
// key table describe exactly the same edge→slot mapping, in both
// directions, at all times.
func checkSlotConsistency(t *testing.T, r *Reservoir) {
	t.Helper()
	// Heap → adjacency: every sampled edge's slot run entry names its slot.
	for i := 0; i < r.heap.Len(); i++ {
		slot := r.heap.SlotAt(i)
		e := r.heap.BySlot(slot).Edge
		if got := r.adj.SlotOf(e); got != slot {
			t.Fatalf("adjacency slot of %v = %d, heap says %d", e, got, slot)
		}
	}
	// Adjacency → heap: every run entry points at a live heap entry for
	// exactly the edge the run describes, in both endpoint runs.
	edges := 0
	for id := 0; id < r.adj.DenseLen(); id++ {
		v, nbrs, slots := r.adj.RunAt(id)
		if len(nbrs) != len(slots) {
			t.Fatalf("node %v: %d neighbors but %d slots", v, len(nbrs), len(slots))
		}
		for j, u := range nbrs {
			e := graph.NewEdge(v, u)
			ent := r.heap.BySlot(slots[j])
			if ent.Edge != e {
				t.Fatalf("slot %d of run %v lists edge %v, arena holds %v", slots[j], v, e, ent.Edge)
			}
			if got := r.entry(e); got == nil {
				t.Fatalf("adjacency lists %v but key table does not", e)
			} else if got != ent {
				t.Fatalf("slot %d and key table disagree on the entry of %v", slots[j], e)
			}
			edges++
		}
	}
	if edges != 2*r.heap.Len() {
		t.Fatalf("adjacency lists %d half-edges, heap holds %d edges", edges, r.heap.Len())
	}
}

// TestSlotChurnConsistency drives a tight reservoir through heavy
// insert/evict churn — slot recycling in the heap arena, dense-id recycling
// in the adjacency — and checks the slot runs never drift from the key
// table. Weights cover the uniform fast path and both topology-dependent
// weights, and one randomized arrival order per weight.
func TestSlotChurnConsistency(t *testing.T) {
	edges := gen.HolmeKim(500, 5, 0.5, 0xC4)
	for _, tc := range []struct {
		name   string
		weight WeightFunc
	}{{"uniform", nil}, {"triangle", TriangleWeight}, {"adjacency", AdjacencyWeight}} {
		t.Run(tc.name, func(t *testing.T) {
			rng := randx.New(0x5107 ^ uint64(len(tc.name)))
			perm := append([]graph.Edge(nil), edges...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			// Capacity far below the stream length forces an eviction for
			// almost every insertion once warm.
			s, err := NewSampler(Config{Capacity: 120, Weight: tc.weight, Seed: 0xBEEF})
			if err != nil {
				t.Fatal(err)
			}
			for i, e := range perm {
				s.Process(e)
				if i%97 == 0 || i == len(perm)-1 {
					checkSlotConsistency(t, s.res)
				}
			}
			checkSlotConsistency(t, s.res)
			// The clone (and a clone refreshed into recycled backing) must
			// carry the identical slot mapping.
			c := s.Clone()
			checkSlotConsistency(t, c.res)
			recycled := s.CloneReusing(c)
			checkSlotConsistency(t, recycled.res)

			// Durability under the same churn: the checkpoint must restore
			// to a reservoir whose slot runs and key table still agree, and
			// re-checkpointing the restored sampler must reproduce the file
			// byte for byte — the encoding is a function of live state only,
			// not of the garbage left in freed arena slots and dense ids by
			// the evict/recycle traffic.
			doc := checkpointBytes(t, s, tc.name)
			restored := restoreSampler(t, doc)
			checkSlotConsistency(t, restored.res)
			requireSameSampler(t, s, restored)
			if !bytes.Equal(doc, checkpointBytes(t, restored, tc.name)) {
				t.Fatal("checkpoint of restored sampler differs byte-wise")
			}
		})
	}
}

// TestCloneReusingBitIdentical verifies CloneReusing produces a sampler
// indistinguishable from Clone: same reservoir fingerprint, and the same
// evolution when both forks consume the same suffix.
func TestCloneReusingBitIdentical(t *testing.T) {
	edges := cloneTestStream(300, 3000, 0x77)
	s, err := NewSampler(Config{Capacity: 150, Weight: TriangleWeight, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	processAll(t, s, edges[:1500])

	plain := s.Clone()
	// A retired clone from an unrelated earlier state donates its arrays.
	donorSrc, err := NewSampler(Config{Capacity: 150, Weight: TriangleWeight, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	processAll(t, donorSrc, edges[:700])
	reused := s.CloneReusing(donorSrc.Clone())

	requireSameSampler(t, plain, reused)
	if EstimatePost(plain) != EstimatePost(reused) {
		t.Fatal("estimates differ between Clone and CloneReusing")
	}
	processAll(t, plain, edges[1500:])
	processAll(t, reused, edges[1500:])
	requireSameSampler(t, plain, reused)
	checkSlotConsistency(t, reused.res)
}

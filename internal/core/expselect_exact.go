//go:build gps_exactexp

package core

import "math"

// decayExp under the gps_exactexp build tag: the exact libm path. See
// expselect.go for the default fast path and fastexp.go for the algorithm.
func decayExp(x float64) float64 { return math.Exp(x) }

const decayExpExact = true

package core

import (
	"gps/internal/graph"
	"gps/internal/order"
)

// Reservoir is the sampled subgraph K̂: the priority heap of retained edges
// plus a dynamic adjacency index over their endpoints. Weight functions and
// estimators query it for the topology of the sampled graph (Γ̂(v),
// |Γ̂(v1)∩Γ̂(v2)|, stored edge weights); only the Sampler mutates it.
type Reservoir struct {
	heap *order.Heap
	adj  *graph.Adjacency
}

func newReservoir(capacity int) *Reservoir {
	return &Reservoir{
		heap: order.NewHeap(capacity),
		adj:  graph.NewAdjacency(),
	}
}

// Len returns the number of sampled edges |K̂|.
func (r *Reservoir) Len() int { return r.heap.Len() }

// NumNodes returns the number of distinct endpoints |V̂| of sampled edges.
func (r *Reservoir) NumNodes() int { return r.adj.NumNodes() }

// Contains reports whether edge e is currently sampled.
func (r *Reservoir) Contains(e graph.Edge) bool { return r.heap.Contains(e.Key()) }

// MinPriority returns the lowest priority among sampled edges — the
// eviction candidate's priority, which the sampler's fast path compares
// against arriving priorities. It panics on an empty reservoir.
func (r *Reservoir) MinPriority() float64 { return r.heap.MinPriority() }

// Weight returns the sampling weight w(k) stored for edge e at its arrival,
// with ok=false when e is not sampled.
func (r *Reservoir) Weight(e graph.Edge) (w float64, ok bool) {
	ent := r.heap.Get(e.Key())
	if ent == nil {
		return 0, false
	}
	return ent.Weight, true
}

// Degree returns deg_K̂(v), the degree of v in the sampled subgraph.
func (r *Reservoir) Degree(v graph.NodeID) int { return r.adj.Degree(v) }

// Neighbors calls fn for each sampled neighbor of v until fn returns false.
func (r *Reservoir) Neighbors(v graph.NodeID, fn func(graph.NodeID) bool) {
	r.adj.Neighbors(v, fn)
}

// CommonNeighbors calls fn for each node adjacent to both u and v in the
// sampled subgraph, iterating the smaller neighborhood.
func (r *Reservoir) CommonNeighbors(u, v graph.NodeID, fn func(graph.NodeID) bool) {
	r.adj.CommonNeighbors(u, v, fn)
}

// CountCommonNeighbors returns |Γ̂(u) ∩ Γ̂(v)|: the number of triangles the
// edge {u,v} completes (or would complete) in the sampled subgraph. This is
// the quantity the paper's triangle-focused weight function is built from.
func (r *Reservoir) CountCommonNeighbors(u, v graph.NodeID) int {
	return r.adj.CountCommonNeighbors(u, v)
}

// ForEachEdge calls fn for each sampled edge until fn returns false.
func (r *Reservoir) ForEachEdge(fn func(graph.Edge) bool) {
	r.adj.ForEachEdge(fn)
}

// Edges returns a snapshot slice of the sampled edges in unspecified order.
func (r *Reservoir) Edges() []graph.Edge {
	out := make([]graph.Edge, 0, r.Len())
	for i := 0; i < r.heap.Len(); i++ {
		out = append(out, r.heap.At(i).Edge)
	}
	return out
}

// clone returns a deep copy of the reservoir: heap and adjacency index are
// duplicated so the copy and the original evolve independently.
func (r *Reservoir) clone() *Reservoir { return r.cloneInto(nil) }

// cloneInto is clone writing over dst, reusing dst's backing arrays; dst
// must be a retired reservoir no longer referenced anywhere (nil allocates).
func (r *Reservoir) cloneInto(dst *Reservoir) *Reservoir {
	if dst == nil {
		dst = &Reservoir{}
	}
	dst.heap = r.heap.CloneInto(dst.heap)
	dst.adj = r.adj.CloneInto(dst.adj)
	return dst
}

// entry returns the heap record of edge e, or nil when not sampled. The
// pointer is invalidated by the next insert/evict. It is the hash-probing
// lookup the slot-indexed estimation path exists to avoid; live uses are
// the public Weight/Contains queries and the lookup-based reference
// estimators the equality tests pin the fast path against.
func (r *Reservoir) entry(e graph.Edge) *order.Entry { return r.heap.Get(e.Key()) }

// entryAt returns the heap record stored at an arena slot obtained from a
// neighbor run; same invalidation rule as entry.
func (r *Reservoir) entryAt(slot int32) *order.Entry { return r.heap.BySlot(slot) }

// slotOf resolves edge e to its heap arena slot via the adjacency slot
// runs (-1 when e is not sampled) — an intern lookup plus a binary search,
// no probe of the per-edge hash table.
func (r *Reservoir) slotOf(e graph.Edge) int32 { return r.adj.SlotOf(e) }

// neighborRun exposes v's sorted sampled neighbors and the heap slots of
// the corresponding edges. Read-only; invalidated by the next insert/evict.
func (r *Reservoir) neighborRun(v graph.NodeID) ([]graph.NodeID, []int32) {
	return r.adj.NeighborRun(v)
}

// commonNeighborsWithSlots enumerates Γ̂(u)∩Γ̂(v) in ascending order,
// yielding each common neighbor with the heap slots of {u,w} and {v,w}.
func (r *Reservoir) commonNeighborsWithSlots(u, v graph.NodeID, fn func(w graph.NodeID, su, sv int32) bool) {
	r.adj.CommonNeighborsWithSlots(u, v, fn)
}

func (r *Reservoir) insert(ent order.Entry) {
	slot := r.heap.Push(ent)
	r.adj.AddWithSlot(ent.Edge, slot)
}

// remove deletes the sampled edge e from an arbitrary heap position and
// drops it from the adjacency index — the turnstile-deletion primitive.
// ok=false when e is not sampled (the reservoir is untouched).
func (r *Reservoir) remove(e graph.Edge) (order.Entry, bool) {
	ent, ok := r.heap.Remove(e.Key())
	if !ok {
		return order.Entry{}, false
	}
	r.adj.Remove(ent.Edge)
	return ent, true
}

func (r *Reservoir) evictMin() order.Entry {
	ent := r.heap.PopMin()
	r.adj.Remove(ent.Edge)
	return ent
}

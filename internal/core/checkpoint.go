package core

import (
	"fmt"
	"io"

	"gps/internal/checkpoint"
	"gps/internal/graph"
	"gps/internal/order"
	"gps/internal/randx"
)

// GPSC sampler payload (checkpoint.KindSampler). The serialized state is
// exactly what future sampling decisions and estimator summation orders
// depend on, laid out so a restored sampler evolves bit-identically to the
// original from the checkpoint point onward:
//
//	uvarint  capacity (m)
//	uvarint  arrivals
//	uvarint  duplicates
//	f64      threshold z*
//	4 × u64  RNG state (xoshiro256++)
//	string   weight name (caller-interpreted; see ResolveWeight)
//	v2 only: f64 half-life, uvarint configured landmark,
//	         u8 landmark-set, uvarint landmark, uvarint horizon (lastTS)
//	heap     uvarint arenaLen
//	         arenaLen × { u32 U, u32 V, [v2 or v3-timed: uvarint eventTS,]
//	                      f64 weight, f64 priority,
//	                      f64 triCov, f64 wedgeCov }   (freed slots zeroed)
//	         uvarint freedLen,  freedLen × uvarint slot
//	         uvarint heapLen,   heapLen  × uvarint slot (heap order)
//	adjacency
//	         uvarint denseLen
//	         denseLen × { u32 node, uvarint runLen,
//	                      runLen × { u32 neighbor, uvarint slot+1 } }
//	         uvarint freedIDs,  freedIDs × uvarint id
//
// Version gating: a sampler running forward decay writes a GPSC version-2
// document carrying the decay block and per-entry event timestamps; an
// undecayed sampler writes version 1, byte-identical to earlier releases.
// Decoders accept both — a version-1 document restores as undecayed — and
// reject a version-2 document without a positive half-life, so every state
// has exactly one serialized form and re-encoding is idempotent.
//
// A sampler whose state the v1/v2 layouts cannot carry writes a GPSC
// version-3 document: after the weight name, a feature-flags uvarint (bit 0
// = decay block present, bit 1 = deletion counters present, bit 2 = timed
// entries without decay), then — when bit 1 is set — the delApplied and
// delUnsampled counters as uvarints, then the decay block (when bit 0 is
// set) and the common layout above. Bit 2 marks an undecayed sampler whose
// reservoir holds event-timed edges (turnstile windows trim by stored event
// time, so dropping TS would silently break restored window queries); it
// adds the per-entry eventTS field exactly as version 2 does. Version 3 is
// emitted only when the deletion counters are non-zero or a timed entry is
// resident, so runs that never see either keep their v1/v2 bytes, and a v3
// document with nothing a v2 could not carry is rejected — one serialized
// form per state.
//
// The in-stream payload (KindInStream) appends a stream-binding string —
// an opaque, caller-interpreted description of the stream being resumed
// (file identity, ordering flags), which the restoring caller compares
// against the stream it is about to replay — followed by the five
// estimator accumulators (Ñ(△), Ṽ(△), Ñ(Λ), Ṽ(Λ), Ṽ(△,Λ)) as f64s, and in
// version 2 the decayed-arrival total (f64, landmark units).
//
// Freed heap slots and freed dense ids are serialized as zeroes, so the
// document is a function of live state only and checkpoint → restore →
// checkpoint reproduces the file byte for byte.

// WriteCheckpoint serializes the sampler's complete data plane as a GPSC
// sampler document. weightName records which weight function the sampler
// was running (the function itself cannot be serialized); ReadCheckpoint
// hands the name to its resolver, and restore is only bit-identical when
// the resolver returns the same function. Stateful weights (the adaptive
// triangle weight) carry state outside the sampler and cannot be made
// durable; callers must reject them before checkpointing.
func (s *Sampler) WriteCheckpoint(w io.Writer, weightName string) error {
	cw := checkpoint.NewWriterVersion(w, checkpoint.KindSampler, s.ckptVersion())
	s.encodePayload(cw, weightName)
	return cw.Finish()
}

// ckptVersion selects the GPSC version the sampler's state requires:
// version 3 when turnstile-deletion counters must survive (the stream
// position would otherwise shift under resume) or when an undecayed
// reservoir holds event-timed edges (window trimming reads stored event
// times, so they must round-trip), version 2 for the forward-decay block,
// version 1 for the undecayed insert-only layout of earlier releases.
func (s *Sampler) ckptVersion() byte {
	if s.delApplied+s.delUnsampled > 0 {
		return checkpoint.Version3
	}
	if s.lambda > 0 {
		return checkpoint.Version2
	}
	if s.timedEntries() {
		return checkpoint.Version3
	}
	return checkpoint.Version
}

// timedEntries reports whether any resident edge carries an event time.
// Freed arena slots are zeroed, so scanning the heap view covers exactly
// the live entries.
func (s *Sampler) timedEntries() bool {
	for i := 0; i < s.res.heap.Len(); i++ {
		if s.res.heap.At(i).Edge.TS != 0 {
			return true
		}
	}
	return false
}

// Version-3 turnstile feature flags.
const (
	ckptFlagDecay     = 1 << 0
	ckptFlagDeletions = 1 << 1
	ckptFlagTimed     = 1 << 2
)

func (s *Sampler) encodePayload(cw *checkpoint.Writer, weightName string) {
	decayed := s.lambda > 0
	cw.Uvarint(uint64(s.capacity))
	cw.Uvarint(s.arrivals)
	cw.Uvarint(s.duplicates)
	cw.F64(s.zstar)
	for _, word := range s.rng.State() {
		cw.U64(word)
	}
	cw.String(weightName)
	timed := false
	if s.ckptVersion() == checkpoint.Version3 {
		var flags uint64
		if decayed {
			flags |= ckptFlagDecay
		}
		if s.delApplied+s.delUnsampled > 0 {
			flags |= ckptFlagDeletions
		}
		// The decay block already carries per-entry event times; the timed
		// flag covers the undecayed case only, keeping one form per state.
		timed = !decayed && s.timedEntries()
		if timed {
			flags |= ckptFlagTimed
		}
		cw.Uvarint(flags)
		if flags&ckptFlagDeletions != 0 {
			cw.Uvarint(s.delApplied)
			cw.Uvarint(s.delUnsampled)
		}
	}
	if decayed {
		cw.F64(s.decay.HalfLife)
		cw.Uvarint(s.decay.Landmark)
		if s.landmarkSet {
			cw.Uvarint(1)
		} else {
			cw.Uvarint(0)
		}
		cw.Uvarint(s.landmark)
		cw.Uvarint(s.lastTS)
	}

	arena, freed, heapOrder := s.res.heap.ExportState()
	isFreedSlot := make([]bool, len(arena))
	for _, slot := range freed {
		isFreedSlot[slot] = true
	}
	cw.Uvarint(uint64(len(arena)))
	for slot := range arena {
		ent := &arena[slot]
		if isFreedSlot[slot] {
			ent = &order.Entry{} // normalize: freed slots hold eviction garbage
		}
		cw.U32(uint32(ent.Edge.U))
		cw.U32(uint32(ent.Edge.V))
		if decayed || timed {
			cw.Uvarint(ent.Edge.TS)
		}
		cw.F64(ent.Weight)
		cw.F64(ent.Priority)
		cw.F64(ent.TriCov)
		cw.F64(ent.WedgeCov)
	}
	cw.Uvarint(uint64(len(freed)))
	for _, slot := range freed {
		cw.Uvarint(uint64(slot))
	}
	cw.Uvarint(uint64(len(heapOrder)))
	for _, slot := range heapOrder {
		cw.Uvarint(uint64(slot))
	}

	nodes, freedIDs, nbrs, slots := s.res.adj.ExportDense()
	isFreedID := make([]bool, len(nodes))
	for _, id := range freedIDs {
		isFreedID[id] = true
	}
	cw.Uvarint(uint64(len(nodes)))
	for id := range nodes {
		node := nodes[id]
		if isFreedID[id] {
			node = 0 // normalize: freed ids hold the released node's stale id
		}
		cw.U32(uint32(node))
		cw.Uvarint(uint64(len(nbrs[id])))
		for j, u := range nbrs[id] {
			cw.U32(uint32(u))
			cw.Uvarint(uint64(slots[id][j]) + 1) // -1 (no slot) encodes as 0
		}
	}
	cw.Uvarint(uint64(len(freedIDs)))
	for _, id := range freedIDs {
		cw.Uvarint(uint64(id))
	}
}

// ReadCheckpoint restores a sampler from a GPSC sampler document. The
// resolver maps the recorded weight name back to a function; nil means
// ResolveWeight (the built-in pure weights). The decoder is strict: any
// structural damage — truncation, checksum mismatch, slot runs that
// disagree with the heap, a heap that is not a heap — yields an error,
// never a panic, and no allocation is sized by an untrusted length.
func ReadCheckpoint(r io.Reader, resolve func(string) (WeightFunc, error)) (*Sampler, error) {
	cr := checkpoint.NewReader(r)
	if err := cr.ExpectKind(checkpoint.KindSampler); err != nil {
		return nil, err
	}
	s, err := decodePayload(cr, resolve)
	if err != nil {
		return nil, err
	}
	if err := cr.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}

const maxInt32 = (1 << 31) - 1

func decodePayload(cr *checkpoint.Reader, resolve func(string) (WeightFunc, error)) (*Sampler, error) {
	if resolve == nil {
		resolve = ResolveWeight
	}
	capacity := cr.Count("capacity", maxInt32)
	arrivals := cr.Uvarint()
	duplicates := cr.Uvarint()
	zstar := cr.FiniteF64("threshold")
	var state [4]uint64
	for i := range state {
		state[i] = cr.U64()
	}
	weightName := cr.String()
	if err := cr.Err(); err != nil {
		return nil, err
	}
	if capacity < 1 {
		return nil, fmt.Errorf("core: checkpoint capacity %d is not positive", capacity)
	}
	if zstar < 0 {
		return nil, fmt.Errorf("core: checkpoint threshold %v is negative", zstar)
	}
	rng, err := randx.FromState(state)
	if err != nil {
		return nil, err
	}
	weight, err := resolve(weightName)
	if err != nil {
		return nil, err
	}

	// Version-gated forward-decay block: a v1 document restores as
	// undecayed; a v2 document must carry a valid decay state (one
	// serialized form per state keeps re-encoding idempotent).
	var (
		decay        Decay
		landmarkSet  bool
		landmark     uint64
		lastTS       uint64
		delApplied   uint64
		delUnsampled uint64
	)
	decayed := cr.Version() == checkpoint.Version2
	timed := false
	if cr.Version() == checkpoint.Version3 {
		// Turnstile block: feature flags, then the deletion counters when
		// present. A v3 document that carries nothing a v2 could not is
		// rejected so every state keeps exactly one serialized form.
		flags := cr.Uvarint()
		if err := cr.Err(); err != nil {
			return nil, err
		}
		if flags&^uint64(ckptFlagDecay|ckptFlagDeletions|ckptFlagTimed) != 0 {
			return nil, fmt.Errorf("core: version-3 checkpoint carries unknown feature flags %#x", flags)
		}
		if flags&(ckptFlagDeletions|ckptFlagTimed) == 0 {
			return nil, fmt.Errorf("core: version-3 checkpoint without deletion counters or timed entries would not need version 3")
		}
		if flags&ckptFlagDeletions != 0 {
			delApplied = cr.Uvarint()
			delUnsampled = cr.Uvarint()
			if err := cr.Err(); err != nil {
				return nil, err
			}
			if delApplied+delUnsampled == 0 {
				return nil, fmt.Errorf("core: version-3 checkpoint deletion flag without deletion counters")
			}
		}
		decayed = flags&ckptFlagDecay != 0
		timed = flags&ckptFlagTimed != 0
		if decayed && timed {
			return nil, fmt.Errorf("core: version-3 checkpoint timed flag is redundant under decay")
		}
	}
	if decayed {
		decay.HalfLife = cr.FiniteF64("decay half-life")
		decay.Landmark = cr.Uvarint()
		flag := cr.Uvarint()
		landmark = cr.Uvarint()
		lastTS = cr.Uvarint()
		if err := cr.Err(); err != nil {
			return nil, err
		}
		if decay.HalfLife <= 0 {
			return nil, fmt.Errorf("core: version-2 checkpoint half-life %v is not positive", decay.HalfLife)
		}
		switch flag {
		case 0:
			if arrivals > 0 {
				return nil, fmt.Errorf("core: checkpoint has %d arrivals but no decay landmark", arrivals)
			}
		case 1:
			landmarkSet = true
		default:
			return nil, fmt.Errorf("core: checkpoint landmark flag %d is not boolean", flag)
		}
	}

	arenaLen := cr.Count("arena", maxInt32)
	arena := make([]order.Entry, 0, min(arenaLen, 1<<14))
	sawTS := false
	for i := 0; i < arenaLen; i++ {
		var ent order.Entry
		ent.Edge.U = graph.NodeID(cr.U32())
		ent.Edge.V = graph.NodeID(cr.U32())
		if decayed || timed {
			ent.Edge.TS = cr.Uvarint()
			if decayed && cr.Err() == nil && ent.Edge.TS > lastTS {
				return nil, fmt.Errorf("core: checkpoint entry %d event time %d is beyond the horizon %d",
					i, ent.Edge.TS, lastTS)
			}
			sawTS = sawTS || ent.Edge.TS != 0
		}
		ent.Weight = cr.F64()
		ent.Priority = cr.F64()
		ent.TriCov = cr.F64()
		ent.WedgeCov = cr.F64()
		if cr.Err() != nil {
			return nil, cr.Err()
		}
		arena = append(arena, ent)
	}
	if timed && !sawTS {
		return nil, fmt.Errorf("core: version-3 checkpoint timed flag without any timed entry")
	}
	readSlots := func(what string, max int) []int32 {
		n := cr.Count(what, uint64(max))
		out := make([]int32, 0, min(n, 1<<14))
		for i := 0; i < n && cr.Err() == nil; i++ {
			v := cr.Uvarint()
			if v > maxInt32 {
				return nil
			}
			out = append(out, int32(v))
		}
		return out
	}
	freedSlots := readSlots("free list", arenaLen)
	heapOrder := readSlots("heap", arenaLen)
	if err := cr.Err(); err != nil {
		return nil, err
	}
	if freedSlots == nil || heapOrder == nil {
		return nil, fmt.Errorf("core: checkpoint slot id exceeds int32")
	}
	if len(heapOrder) > capacity {
		return nil, fmt.Errorf("core: checkpoint holds %d edges, above capacity %d", len(heapOrder), capacity)
	}
	heap, err := order.RestoreHeap(arena, freedSlots, heapOrder)
	if err != nil {
		return nil, err
	}

	denseLen := cr.Count("dense table", maxInt32)
	nodes := make([]graph.NodeID, 0, min(denseLen, 1<<14))
	nbrs := make([][]graph.NodeID, 0, min(denseLen, 1<<14))
	slotRuns := make([][]int32, 0, min(denseLen, 1<<14))
	for id := 0; id < denseLen; id++ {
		node := graph.NodeID(cr.U32())
		runLen := cr.Count("neighbor run", maxInt32)
		var run []graph.NodeID
		var sl []int32
		for j := 0; j < runLen && cr.Err() == nil; j++ {
			run = append(run, graph.NodeID(cr.U32()))
			v := cr.Uvarint() // slot+1, so 0 decodes to the no-slot marker -1
			if v > maxInt32+1 {
				return nil, fmt.Errorf("core: checkpoint slot annotation exceeds int32")
			}
			sl = append(sl, int32(int64(v)-1))
		}
		if cr.Err() != nil {
			return nil, cr.Err()
		}
		nodes = append(nodes, node)
		nbrs = append(nbrs, run)
		slotRuns = append(slotRuns, sl)
	}
	freedIDs := readSlots("freed dense ids", denseLen)
	if err := cr.Err(); err != nil {
		return nil, err
	}
	if freedIDs == nil {
		return nil, fmt.Errorf("core: checkpoint dense id exceeds int32")
	}
	adj, err := graph.RestoreAdjacency(nodes, freedIDs, nbrs, slotRuns)
	if err != nil {
		return nil, err
	}

	// Cross-validate the two structures: the adjacency must index exactly
	// the sampled edge set, every slot run entry naming the heap arena slot
	// of its edge. Together with the per-structure validation this makes
	// every later estimator array access provably in-bounds.
	if adj.NumEdges() != heap.Len() {
		return nil, fmt.Errorf("core: checkpoint adjacency holds %d edges, heap holds %d",
			adj.NumEdges(), heap.Len())
	}
	for i := 0; i < heap.Len(); i++ {
		slot := heap.SlotAt(i)
		e := heap.BySlot(slot).Edge
		if got := adj.SlotOf(e); got != slot {
			return nil, fmt.Errorf("core: checkpoint slot runs disagree with heap for edge %v (%d vs %d)",
				e, got, slot)
		}
	}

	w, uniform := normalizeWeight(weight)
	return &Sampler{
		capacity:     capacity,
		weight:       w,
		uniform:      uniform,
		rng:          rng,
		res:          &Reservoir{heap: heap, adj: adj},
		zstar:        zstar,
		arrivals:     arrivals,
		duplicates:   duplicates,
		delApplied:   delApplied,
		delUnsampled: delUnsampled,
		decay:        decay,
		lambda:       decay.lambda(),
		landmark:     landmark,
		landmarkSet:  landmarkSet,
		lastTS:       lastTS,
	}, nil
}

// WriteCheckpoint serializes the in-stream estimator: its sampler payload,
// a stream binding, and the five running totals of Algorithm 3. The
// per-edge covariance accumulators C̃_k already live in the heap entries,
// so the sampler payload carries them. streamBinding is an opaque string
// describing the stream being consumed (source identity, ordering flags);
// a resuming caller gets it back from ReadInStreamCheckpoint and must
// refuse to replay a stream with a different binding — skipping the
// checkpointed prefix of a *differently ordered* stream would silently
// produce estimates over a stream the checkpoint was never taken from.
func (t *InStream) WriteCheckpoint(w io.Writer, weightName, streamBinding string) error {
	cw := checkpoint.NewWriterVersion(w, checkpoint.KindInStream, t.s.ckptVersion())
	t.s.encodePayload(cw, weightName)
	cw.String(streamBinding)
	cw.F64(t.nTri)
	cw.F64(t.vTri)
	cw.F64(t.nW)
	cw.F64(t.vW)
	cw.F64(t.covTW)
	if t.s.lambda > 0 {
		cw.F64(t.decayedArrivals)
	}
	return cw.Finish()
}

// ReadInStreamCheckpoint restores an in-stream estimator from a GPSC
// in-stream document, under the same strictness contract as
// ReadCheckpoint, returning the stream binding recorded at write time.
func ReadInStreamCheckpoint(r io.Reader, resolve func(string) (WeightFunc, error)) (*InStream, string, error) {
	cr := checkpoint.NewReader(r)
	if err := cr.ExpectKind(checkpoint.KindInStream); err != nil {
		return nil, "", err
	}
	s, err := decodePayload(cr, resolve)
	if err != nil {
		return nil, "", err
	}
	binding := cr.String()
	t := &InStream{
		s: s,
		// The restored weight resolves to the same function the original
		// ran, so the fused-TriangleWeight classification survives restarts.
		fuseTri: fusesTriangleWeight(s.weight),
		nTri:    cr.FiniteF64("triangle total"),
		vTri:    cr.FiniteF64("triangle variance total"),
		nW:      cr.FiniteF64("wedge total"),
		vW:      cr.FiniteF64("wedge variance total"),
		covTW:   cr.FiniteF64("triangle-wedge covariance total"),
	}
	if s.lambda > 0 {
		t.decayedArrivals = cr.FiniteF64("decayed arrival total")
	}
	if err := cr.Finish(); err != nil {
		return nil, "", err
	}
	return t, binding, nil
}

// ResolveWeight maps a checkpoint's recorded weight name back to the
// corresponding built-in pure weight function: "" and "uniform" to nil
// (the uniform fast path), "triangle" to TriangleWeight, "adjacency" to
// AdjacencyWeight. Any other name errors — in particular "adaptive", whose
// state lives outside the sampler and cannot survive a checkpoint. Callers
// with custom weights pass their own resolver to ReadCheckpoint instead.
func ResolveWeight(name string) (WeightFunc, error) {
	switch name {
	case "", "uniform":
		return nil, nil
	case "triangle":
		return TriangleWeight, nil
	case "adjacency":
		return AdjacencyWeight, nil
	case "adaptive":
		return nil, fmt.Errorf("core: the stateful adaptive weight cannot be restored from a checkpoint")
	}
	return nil, fmt.Errorf("core: unknown checkpoint weight %q (want uniform, triangle or adjacency)", name)
}

package core

import "gps/internal/graph"

// SubgraphEstimate returns the Horvitz-Thompson estimate Ŝ_J of the subset
// indicator S_J for the subgraph with the given edge set J (Theorem 2):
// the product of 1/q(k) over k ∈ J when every edge of J is currently
// sampled, and 0 otherwise. Duplicate edges in the argument are ignored —
// J is a set.
//
// Summing SubgraphEstimate over a family of subgraphs yields an unbiased
// estimate of how many members of the family have fully arrived; this is the
// general-purpose "retrospective query" interface of the paper, of which
// triangle and wedge counting are special cases.
//
// Each edge resolves through the adjacency slot runs (intern lookup plus
// binary search) rather than the reservoir's hash index; query sets are
// small, so no slot-indexed table is built.
func (s *Sampler) SubgraphEstimate(edges ...graph.Edge) float64 {
	prod := 1.0
	for i, e := range edges {
		if containsBefore(edges, i, e) {
			continue
		}
		slot := s.res.slotOf(e)
		if slot < 0 {
			return 0
		}
		prod /= s.probForWeight(s.res.entryAt(slot).Weight)
	}
	return prod
}

// SubgraphVariance returns the unbiased variance estimator
// Ŝ_J(Ŝ_J − 1) of Var(Ŝ_J) (Theorem 3(iii)).
func (s *Sampler) SubgraphVariance(edges ...graph.Edge) float64 {
	sj := s.SubgraphEstimate(edges...)
	return sj * (sj - 1)
}

// SubgraphCovariance returns the unbiased covariance estimator of
// Cov(Ŝ_J1, Ŝ_J2) from Eq. 7 / Theorem 3:
//
//	Ĉ_{J1,J2} = Ŝ_{J1∪J2}·(Ŝ_{J1∩J2} − 1)
//
// It is zero whenever the subgraphs are edge-disjoint or either estimate is
// zero, and non-negative otherwise (Theorem 3(ii): GPS edge estimators are
// non-negatively correlated).
func (s *Sampler) SubgraphCovariance(j1, j2 []graph.Edge) float64 {
	inter := intersectEdges(j1, j2)
	if len(inter) == 0 {
		return 0
	}
	union := unionEdges(j1, j2)
	su := s.SubgraphEstimate(union...)
	if su == 0 {
		return 0
	}
	si := s.SubgraphEstimate(inter...)
	return su * (si - 1)
}

func containsBefore(edges []graph.Edge, i int, e graph.Edge) bool {
	for _, prev := range edges[:i] {
		if prev == e {
			return true
		}
	}
	return false
}

func intersectEdges(a, b []graph.Edge) []graph.Edge {
	var out []graph.Edge
	for i, e := range a {
		if containsBefore(a, i, e) {
			continue
		}
		for _, f := range b {
			if e == f {
				out = append(out, e)
				break
			}
		}
	}
	return out
}

func unionEdges(a, b []graph.Edge) []graph.Edge {
	out := make([]graph.Edge, 0, len(a)+len(b))
	for i, e := range a {
		if !containsBefore(a, i, e) {
			out = append(out, e)
		}
	}
	for _, f := range b {
		dup := false
		for _, e := range out {
			if e == f {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, f)
		}
	}
	return out
}

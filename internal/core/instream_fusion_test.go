package core

import (
	"math"
	"testing"
)

// TestInStreamTriangleFusionBitIdentical pins the fused-TriangleWeight
// path: an InStream running the built-in TriangleWeight (which reuses the
// estimate pass's common-neighbor count as the sampling weight) must be
// bit-identical — reservoir fingerprint, threshold, and every running
// estimate — to one running NewTriangleWeight(9, 1), a closure computing
// the same 9·|△̂(k)|+1 through the generic weight-function path. Checked
// continuously through the stream, with and without forward decay.
func TestInStreamTriangleFusionBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name  string
		decay Decay
	}{
		{"undecayed", Decay{}},
		{"decayed", Decay{HalfLife: 3000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			edges := goldenStream()
			fused, err := NewInStream(Config{Capacity: 700, Weight: TriangleWeight, Seed: 0x5F, Decay: tc.decay})
			if err != nil {
				t.Fatal(err)
			}
			generic, err := NewInStream(Config{Capacity: 700, Weight: NewTriangleWeight(9, 1), Seed: 0x5F, Decay: tc.decay})
			if err != nil {
				t.Fatal(err)
			}
			if !fused.fuseTri {
				t.Fatal("TriangleWeight estimator did not take the fused path")
			}
			if generic.fuseTri {
				t.Fatal("NewTriangleWeight closure must not take the fused path")
			}
			for i, e := range edges {
				inF := fused.Process(e)
				inG := generic.Process(e)
				if inF != inG {
					t.Fatalf("edge %d: fused sampled=%v, generic sampled=%v", i, inF, inG)
				}
				if i%500 == 0 || i == len(edges)-1 {
					ef, eg := fused.Estimates(), generic.Estimates()
					if ef != eg {
						t.Fatalf("edge %d: fused estimates %+v != generic %+v", i, ef, eg)
					}
				}
			}
			if fp, gp := fingerprint(fused.Sampler()), fingerprint(generic.Sampler()); fp != gp {
				t.Fatalf("final sampler fingerprints differ: fused %#x, generic %#x", fp, gp)
			}
			if fz, gz := fused.Sampler().Threshold(), generic.Sampler().Threshold(); math.Float64bits(fz) != math.Float64bits(gz) {
				t.Fatalf("thresholds differ: %v vs %v", fz, gz)
			}
		})
	}
}

// TestInStreamFusedSlotChurn runs the fused estimator at tiny capacity so
// every arrival lands on heavily-reused heap slots — the regime where a
// stale cached probability or count would corrupt the accumulators.
func TestInStreamFusedSlotChurn(t *testing.T) {
	in, err := NewInStream(Config{Capacity: 12, Weight: TriangleWeight, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Heavy slot churn (capacity 12): every arrival probes reused slots.
	for _, e := range goldenStream()[:4000] {
		in.Process(e)
	}
	est := in.Estimates()
	if math.IsNaN(est.Triangles) || math.IsNaN(est.VarTriangles) || est.Triangles < 0 {
		t.Fatalf("degenerate estimates after slot churn: %+v", est)
	}
}

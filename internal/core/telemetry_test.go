package core

import (
	"testing"

	"gps/internal/graph"
	"gps/internal/obs"
)

// TestAcceptEvictInvariant checks the estimator self-telemetry invariant
// the serve layer's fill gauge relies on: accepts - evicts equals the
// reservoir fill at every point in the stream, and the counters survive
// Clone and Merge. Under gps_noobs the counters are compiled out and must
// stay zero.
func TestAcceptEvictInvariant(t *testing.T) {
	s, err := NewSampler(Config{Capacity: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		s.Process(graph.Edge{U: graph.NodeID(i), V: graph.NodeID(i + 1)})
		if !obs.Enabled {
			continue
		}
		if fill := s.Accepts() - s.Evicts(); fill != uint64(s.Reservoir().Len()) {
			t.Fatalf("after %d arrivals: accepts %d - evicts %d = %d, reservoir holds %d",
				i+1, s.Accepts(), s.Evicts(), fill, s.Reservoir().Len())
		}
	}
	if !obs.Enabled {
		if s.Accepts() != 0 || s.Evicts() != 0 {
			t.Fatalf("gps_noobs build must not maintain accepts/evicts, got %d/%d", s.Accepts(), s.Evicts())
		}
		return
	}
	if s.Accepts() <= uint64(s.Capacity()) {
		t.Fatalf("accepts = %d over a 1000-edge stream, want more than capacity %d", s.Accepts(), s.Capacity())
	}

	c := s.Clone()
	if c.Accepts() != s.Accepts() || c.Evicts() != s.Evicts() {
		t.Fatal("Clone must carry the telemetry counters")
	}

	// Disjoint shards merged: counts sum, and the merge's own exclusions
	// count as evictions, preserving the fill invariant on the result.
	a, _ := NewSampler(Config{Capacity: 8, Seed: 1})
	b, _ := NewSampler(Config{Capacity: 8, Seed: 2})
	for i := uint64(0); i < 400; i += 2 {
		a.Process(graph.Edge{U: graph.NodeID(i), V: graph.NodeID(i + 1)})
		b.Process(graph.Edge{U: graph.NodeID(i + 1000), V: graph.NodeID(i + 1001)})
	}
	m, err := Merge([]*Sampler{a, b}, Config{Capacity: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Accepts() != a.Accepts()+b.Accepts() {
		t.Fatalf("merged accepts %d, want %d", m.Accepts(), a.Accepts()+b.Accepts())
	}
	if fill := m.Accepts() - m.Evicts(); fill != uint64(m.Reservoir().Len()) {
		t.Fatalf("merged fill invariant: accepts %d - evicts %d != reservoir %d",
			m.Accepts(), m.Evicts(), m.Reservoir().Len())
	}
}

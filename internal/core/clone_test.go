package core

import (
	"sort"
	"testing"

	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/stream"
)

func cloneTestStream(n, m int, seed uint64) []graph.Edge {
	return stream.Collect(stream.Permute(gen.ErdosRenyi(n, m, seed), seed^0xC10E))
}

// samplerFingerprint reduces a sampler to a comparable value: sorted sampled
// edge keys with their stored weights and priorities, plus threshold and
// counters.
func samplerFingerprint(s *Sampler) (keys []uint64, ws, ps []float64, z float64, arrivals uint64) {
	res := s.Reservoir()
	for _, e := range res.Edges() {
		keys = append(keys, e.Key())
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		ent := res.entry(graph.EdgeFromKey(k))
		ws = append(ws, ent.Weight)
		ps = append(ps, ent.Priority)
	}
	return keys, ws, ps, s.Threshold(), s.Arrivals()
}

func requireSameSampler(t *testing.T, a, b *Sampler) {
	t.Helper()
	ka, wa, pa, za, aa := samplerFingerprint(a)
	kb, wb, pb, zb, ab := samplerFingerprint(b)
	if za != zb || aa != ab || len(ka) != len(kb) {
		t.Fatalf("samplers diverge: z %v vs %v, arrivals %d vs %d, len %d vs %d",
			za, zb, aa, ab, len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] || wa[i] != wb[i] || pa[i] != pb[i] {
			t.Fatalf("samplers diverge at sampled edge %d: (%v,%v,%v) vs (%v,%v,%v)",
				i, ka[i], wa[i], pa[i], kb[i], wb[i], pb[i])
		}
	}
}

// TestCloneIndependent verifies that mutating the original after Clone leaves
// the clone untouched — reservoir, adjacency, threshold and counters are all
// deep-copied.
func TestCloneIndependent(t *testing.T) {
	edges := cloneTestStream(300, 3000, 0x11)
	for _, weight := range []WeightFunc{nil, TriangleWeight} {
		s, err := NewSampler(Config{Capacity: 200, Weight: weight, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		processAll(t, s, edges[:1500])
		c := s.Clone()
		requireSameSampler(t, s, c)
		frozen := EstimatePost(c)

		processAll(t, s, edges[1500:])
		// The clone must still be exactly the mid-stream state.
		if c.Arrivals() != 1500 {
			t.Fatalf("clone arrivals changed to %d", c.Arrivals())
		}
		again := EstimatePost(c)
		if again != frozen {
			t.Fatalf("clone estimates changed after original kept processing: %+v vs %+v", again, frozen)
		}
		if s.Arrivals() != uint64(len(edges)) {
			t.Fatalf("original arrivals = %d, want %d", s.Arrivals(), len(edges))
		}
	}
}

// TestCloneForksDeterministically verifies that a clone is a perfect fork:
// fed the identical suffix, clone and original produce bit-identical
// reservoirs (same RNG draws, same weights, same evictions).
func TestCloneForksDeterministically(t *testing.T) {
	edges := cloneTestStream(300, 3000, 0x22)
	for _, weight := range []WeightFunc{nil, TriangleWeight, AdjacencyWeight} {
		s, err := NewSampler(Config{Capacity: 150, Weight: weight, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		processAll(t, s, edges[:1000])
		c := s.Clone()
		processAll(t, s, edges[1000:])
		processAll(t, c, edges[1000:])
		requireSameSampler(t, s, c)
		if EstimatePost(s) != EstimatePost(c) {
			t.Fatal("forked samplers disagree on estimates after identical suffix")
		}
	}
}

// TestCloneAdjacencyIndependent drives the cloned reservoir's adjacency
// structure through inserts and evictions and checks topology queries agree
// with a from-scratch replay, guarding the shared-backing neighbor copy in
// graph.Adjacency.Clone.
func TestCloneAdjacencyIndependent(t *testing.T) {
	edges := cloneTestStream(120, 1200, 0x33)
	s, err := NewSampler(Config{Capacity: 80, Weight: TriangleWeight, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	processAll(t, s, edges[:600])
	c := s.Clone()
	processAll(t, c, edges[600:])

	replay, err := NewSampler(Config{Capacity: 80, Weight: TriangleWeight, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	processAll(t, replay, edges)
	requireSameSampler(t, c, replay)
	if c.Reservoir().NumNodes() != replay.Reservoir().NumNodes() {
		t.Fatalf("node counts diverge: %d vs %d", c.Reservoir().NumNodes(), replay.Reservoir().NumNodes())
	}
	replay.Reservoir().ForEachEdge(func(e graph.Edge) bool {
		if got, want := c.Reservoir().CountCommonNeighbors(e.U, e.V), replay.Reservoir().CountCommonNeighbors(e.U, e.V); got != want {
			t.Fatalf("common neighbors of %v diverge: %d vs %d", e, got, want)
		}
		return true
	})
}

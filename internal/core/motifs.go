package core

import "gps/internal/graph"

// This file extends post-stream estimation beyond triangles and wedges to
// the other motif families the paper's introduction names ("triangles,
// cliques, stars", §1). Both estimators are direct applications of
// Theorem 2: sum the Horvitz-Thompson product Ŝ_J over every member of the
// family found inside the sample. Like EstimatePost they run on the
// slot-indexed fast path (slot-table probabilities, merge-based membership
// tests) over the parallelFor scaffold.

// EstimateCliques4Post returns the unbiased estimate of the number of
// 4-cliques whose edges have all arrived. Each 4-clique found in the
// reservoir contributes the product of its six edges' inverse inclusion
// probabilities; the enumeration anchors each clique at the edge joining its
// two smallest vertices, so every clique is counted exactly once.
//
// Estimator variance grows with the sixth power of the inverse probabilities,
// so 4-clique estimation wants denser samples than triangle counting (see
// examples/retrospective). For per-clique uncertainty, feed the edge sets to
// Sampler.SubgraphVariance / SubgraphCovariance.
func EstimateCliques4Post(s *Sampler) float64 {
	n := s.res.Len()
	probs := s.slotProbs()
	workers := estimateWorkers(n)
	totals := make([]float64, workers)
	parallelFor(n, workers, func(w, lo, hi int) {
		total := 0.0
		for i := lo; i < hi; i++ {
			total += s.cliques4At(s.res.heap.SlotAt(i), probs)
		}
		totals[w] = total
	})
	total := 0.0
	for _, t := range totals {
		total += t
	}
	return total
}

// cliques4At sums Ŝ over the 4-cliques anchored at the edge k = (u,v)
// (u < v) stored at the given heap slot: pairs of common neighbors w < x,
// both greater than v, joined by a sampled edge. Candidates arrive in
// ascending order with the slots of their two rim edges, so the pair loop's
// membership test (w,x) is a monotone merge of w's neighbor run against the
// remaining candidates — no hash probes anywhere.
func (s *Sampler) cliques4At(slot int32, probs []float64) float64 {
	k := s.res.entryAt(slot).Edge
	u, v := k.U, k.V // canonical: u < v
	invQ := 1 / probs[slot]
	type cand struct {
		node graph.NodeID
		inv  float64 // (q(u,w)·q(v,w))⁻¹
	}
	var cands []cand
	s.res.commonNeighborsWithSlots(u, v, func(w graph.NodeID, su, sv int32) bool {
		if w > v {
			cands = append(cands, cand{node: w, inv: 1 / (probs[su] * probs[sv])})
		}
		return true
	})
	if len(cands) < 2 {
		return 0
	}
	total := 0.0
	for i := 0; i < len(cands); i++ {
		w := cands[i].node
		invW := cands[i].inv
		nw, sw := s.res.neighborRun(w)
		jw := 0
		for j := i + 1; j < len(cands); j++ {
			x := cands[j].node
			for jw < len(nw) && nw[jw] < x {
				jw++
			}
			if jw >= len(nw) || nw[jw] != x {
				continue
			}
			total += invQ * invW * cands[j].inv / probs[sw[jw]]
		}
	}
	return total
}

// EstimateStars3Post returns the unbiased estimate of the number of 3-stars
// (claws): Σ_v C(deg(v), 3). For each sampled node the estimator needs the
// third elementary symmetric polynomial e3 of the inverse probabilities of
// its incident edges — every unordered triple of edges at v is a 3-star with
// estimator Ŝ = Π 1/q — which Newton's identity evaluates from power sums
// in O(deg(v)):
//
//	e3 = (p1³ − 3·p1·p2 + 2·p3) / 6,  p_r = Σ_j (1/q_j)^r
//
// Wedges are the k=2 case of the same family (e2 = (p1²−p2)/2); this
// estimator extends the paper's framework one motif further. The scan runs
// over the adjacency's dense-id space in parallel chunks; each node's
// incident probabilities are slot-run array reads.
func EstimateStars3Post(s *Sampler) float64 {
	n := s.res.adj.DenseLen()
	probs := s.slotProbs()
	workers := estimateWorkers(n)
	totals := make([]float64, workers)
	parallelFor(n, workers, func(w, lo, hi int) {
		total := 0.0
		for id := lo; id < hi; id++ {
			_, _, slots := s.res.adj.RunAt(id)
			if len(slots) == 0 {
				continue // freed dense id
			}
			var p1, p2, p3 float64
			for _, sl := range slots {
				inv := 1 / probs[sl]
				p1 += inv
				inv2 := inv * inv
				p2 += inv2
				p3 += inv2 * inv
			}
			total += (p1*p1*p1 - 3*p1*p2 + 2*p3) / 6
		}
		totals[w] = total
	})
	total := 0.0
	for _, t := range totals {
		total += t
	}
	return total
}

// adjNodes iterates the sampled nodes (helper for motif estimator tests).
func (r *Reservoir) adjNodes(fn func(graph.NodeID) bool) {
	r.adj.ForEachNode(fn)
}

package core

import (
	"runtime"
	"sync"

	"gps/internal/graph"
)

// This file extends post-stream estimation beyond triangles and wedges to
// the other motif families the paper's introduction names ("triangles,
// cliques, stars", §1). Both estimators are direct applications of
// Theorem 2: sum the Horvitz-Thompson product Ŝ_J over every member of the
// family found inside the sample.

// EstimateCliques4Post returns the unbiased estimate of the number of
// 4-cliques whose edges have all arrived. Each 4-clique found in the
// reservoir contributes the product of its six edges' inverse inclusion
// probabilities; the enumeration anchors each clique at the edge joining its
// two smallest vertices, so every clique is counted exactly once.
//
// Estimator variance grows with the sixth power of the inverse probabilities,
// so 4-clique estimation wants denser samples than triangle counting (see
// examples/retrospective). For per-clique uncertainty, feed the edge sets to
// Sampler.SubgraphVariance / SubgraphCovariance.
func EstimateCliques4Post(s *Sampler) float64 {
	n := s.res.Len()
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	totals := make([]float64, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			total := 0.0
			for i := lo; i < hi; i++ {
				total += s.cliques4At(s.res.heap.At(i).Edge)
			}
			totals[w] = total
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0.0
	for _, t := range totals {
		total += t
	}
	return total
}

// cliques4At sums Ŝ over the 4-cliques anchored at edge k = (u,v) with
// u < v: pairs of common neighbors w < x, both greater than v, joined by a
// sampled edge.
func (s *Sampler) cliques4At(k graph.Edge) float64 {
	u, v := k.U, k.V // canonical: u < v
	invQ := 1 / s.mustProb(u, v)
	var candidates []graph.NodeID
	s.res.CommonNeighbors(u, v, func(w graph.NodeID) bool {
		if w > v {
			candidates = append(candidates, w)
		}
		return true
	})
	if len(candidates) < 2 {
		return 0
	}
	total := 0.0
	for i := 0; i < len(candidates); i++ {
		w := candidates[i]
		invW := 1 / (s.mustProb(u, w) * s.mustProb(v, w))
		for j := i + 1; j < len(candidates); j++ {
			x := candidates[j]
			ent := s.res.entry(graph.NewEdge(w, x))
			if ent == nil {
				continue
			}
			invX := 1 / (s.mustProb(u, x) * s.mustProb(v, x))
			total += invQ * invW * invX / s.probForWeight(ent.Weight)
		}
	}
	return total
}

// EstimateStars3Post returns the unbiased estimate of the number of 3-stars
// (claws): Σ_v C(deg(v), 3). For each sampled node the estimator needs the
// third elementary symmetric polynomial e3 of the inverse probabilities of
// its incident edges — every unordered triple of edges at v is a 3-star with
// estimator Ŝ = Π 1/q — which Newton's identity evaluates from power sums
// in O(deg(v)):
//
//	e3 = (p1³ − 3·p1·p2 + 2·p3) / 6,  p_r = Σ_j (1/q_j)^r
//
// Wedges are the k=2 case of the same family (e2 = (p1²−p2)/2); this
// estimator extends the paper's framework one motif further.
func EstimateStars3Post(s *Sampler) float64 {
	total := 0.0
	s.res.adjNodes(func(v graph.NodeID) bool {
		var p1, p2, p3 float64
		s.res.Neighbors(v, func(u graph.NodeID) bool {
			inv := 1 / s.mustProb(v, u)
			p1 += inv
			inv2 := inv * inv
			p2 += inv2
			p3 += inv2 * inv
			return true
		})
		total += (p1*p1*p1 - 3*p1*p2 + 2*p3) / 6
		return true
	})
	return total
}

// adjNodes iterates the sampled nodes (helper for motif estimators).
func (r *Reservoir) adjNodes(fn func(graph.NodeID) bool) {
	r.adj.ForEachNode(fn)
}

package core

import (
	"math"
	"testing"

	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/stats"
	"gps/internal/stream"
)

// exactCliques4 counts 4-cliques by enumeration over a static graph.
func exactCliques4(edges []graph.Edge) int64 {
	g := graph.BuildStatic(edges)
	var count int64
	for v := 0; v < g.NumNodes(); v++ {
		nv := g.Neighbors(graph.NodeID(v))
		for i := 0; i < len(nv); i++ {
			if nv[i] <= graph.NodeID(v) {
				continue
			}
			for j := i + 1; j < len(nv); j++ {
				if !g.HasEdge(nv[i], nv[j]) {
					continue
				}
				for k := j + 1; k < len(nv); k++ {
					if g.HasEdge(nv[i], nv[k]) && g.HasEdge(nv[j], nv[k]) {
						count++
					}
				}
			}
		}
	}
	return count
}

// exactStars3 counts 3-stars: Σ_v C(deg(v), 3).
func exactStars3(edges []graph.Edge) int64 {
	g := graph.BuildStatic(edges)
	var count int64
	for v := 0; v < g.NumNodes(); v++ {
		d := g.Degree(graph.NodeID(v))
		count += d * (d - 1) * (d - 2) / 6
	}
	return count
}

func kClique(n int) []graph.Edge {
	var es []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			es = append(es, graph.NewEdge(graph.NodeID(i), graph.NodeID(j)))
		}
	}
	return es
}

func TestMotifsExactOnCliques(t *testing.T) {
	// K6: C(6,4)=15 4-cliques, Σ C(5,3)=6·10=60 3-stars.
	edges := kClique(6)
	s, _ := NewSampler(Config{Capacity: len(edges), Seed: 1, Weight: TriangleWeight})
	stream.Drive(stream.Permute(edges, 2), func(e graph.Edge) { s.Process(e) })
	if got := EstimateCliques4Post(s); math.Abs(got-15) > 1e-9 {
		t.Fatalf("K6 4-cliques = %v, want 15", got)
	}
	if got := EstimateStars3Post(s); math.Abs(got-60) > 1e-9 {
		t.Fatalf("K6 3-stars = %v, want 60", got)
	}
}

func TestMotifsExactWhenReservoirHoldsEverything(t *testing.T) {
	edges := smallTestGraph()
	s, _ := NewSampler(Config{Capacity: len(edges) + 1, Seed: 3, Weight: TriangleWeight})
	stream.Drive(stream.Permute(edges, 4), func(e graph.Edge) { s.Process(e) })
	wantC := float64(exactCliques4(edges))
	wantS := float64(exactStars3(edges))
	if got := EstimateCliques4Post(s); math.Abs(got-wantC) > 1e-9*(wantC+1) {
		t.Fatalf("4-cliques = %v, want %v", got, wantC)
	}
	if got := EstimateStars3Post(s); math.Abs(got-wantS) > 1e-6*(wantS+1) {
		t.Fatalf("3-stars = %v, want %v", got, wantS)
	}
}

func TestStars3MatchesBruteForceTripleSum(t *testing.T) {
	// Newton-identity evaluation must equal the brute-force sum over edge
	// triples at each node, on a partial sample.
	edges := smallTestGraph()
	s, _ := NewSampler(Config{Capacity: 70, Seed: 5, Weight: AdjacencyWeight})
	stream.Drive(stream.Permute(edges, 6), func(e graph.Edge) { s.Process(e) })

	brute := 0.0
	s.Reservoir().adjNodes(func(v graph.NodeID) bool {
		var invs []float64
		s.Reservoir().Neighbors(v, func(u graph.NodeID) bool {
			q, _ := s.InclusionProb(graph.NewEdge(v, u))
			invs = append(invs, 1/q)
			return true
		})
		for i := 0; i < len(invs); i++ {
			for j := i + 1; j < len(invs); j++ {
				for k := j + 1; k < len(invs); k++ {
					brute += invs[i] * invs[j] * invs[k]
				}
			}
		}
		return true
	})
	got := EstimateStars3Post(s)
	if math.Abs(got-brute) > 1e-6*(brute+1) {
		t.Fatalf("Newton %v vs brute %v", got, brute)
	}
}

func TestMotifsUnbiasedMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo test skipped in -short mode")
	}
	// Dense small graph so 4-cliques exist and probabilities stay sane.
	edges := gen.HolmeKim(50, 6, 0.9, 21)
	wantC := float64(exactCliques4(edges))
	wantS := float64(exactStars3(edges))
	if wantC < 5 {
		t.Fatalf("test graph too sparse: %v 4-cliques", wantC)
	}
	var wc, ws stats.Welford
	const trials = 2500
	for i := 0; i < trials; i++ {
		seed := uint64(9100 + i)
		s, _ := NewSampler(Config{Capacity: 2 * len(edges) / 3, Seed: seed, Weight: TriangleWeight})
		stream.Drive(stream.Permute(edges, seed^0x77), func(e graph.Edge) { s.Process(e) })
		wc.Add(EstimateCliques4Post(s))
		ws.Add(EstimateStars3Post(s))
	}
	if diff := math.Abs(wc.Mean() - wantC); diff > 5*wc.StdErr()+1e-9 {
		t.Errorf("4-cliques: mean %v vs truth %v (stderr %v)", wc.Mean(), wantC, wc.StdErr())
	}
	if diff := math.Abs(ws.Mean() - wantS); diff > 5*ws.StdErr()+1e-9 {
		t.Errorf("3-stars: mean %v vs truth %v (stderr %v)", ws.Mean(), wantS, ws.StdErr())
	}
}

func TestMotifsEmptyAndTriangleFree(t *testing.T) {
	s, _ := NewSampler(Config{Capacity: 10, Seed: 7})
	if EstimateCliques4Post(s) != 0 || EstimateStars3Post(s) != 0 {
		t.Fatal("empty sampler gave nonzero motif estimates")
	}
	// A path has no 4-cliques and no 3-stars.
	for i := 0; i < 5; i++ {
		s.Process(graph.NewEdge(graph.NodeID(i), graph.NodeID(i+1)))
	}
	if EstimateCliques4Post(s) != 0 {
		t.Fatal("path gave 4-cliques")
	}
	if EstimateStars3Post(s) != 0 {
		t.Fatal("path gave 3-stars")
	}
}

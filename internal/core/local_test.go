package core

import (
	"math"
	"testing"

	"gps/internal/exact"
	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/stats"
	"gps/internal/stream"
)

// exactLocalTriangles counts triangles per node by enumeration.
func exactLocalTriangles(edges []graph.Edge) map[graph.NodeID]int64 {
	out := map[graph.NodeID]int64{}
	for _, tr := range triangleList(edges) {
		nodes := map[graph.NodeID]bool{}
		for _, e := range tr {
			nodes[e.U] = true
			nodes[e.V] = true
		}
		for v := range nodes {
			out[v]++
		}
	}
	return out
}

func TestLocalExactWhenReservoirHoldsEverything(t *testing.T) {
	edges := smallTestGraph()
	want := exactLocalTriangles(edges)

	s, _ := NewSampler(Config{Capacity: len(edges) + 1, Seed: 1, Weight: TriangleWeight})
	stream.Drive(stream.Permute(edges, 2), func(e graph.Edge) { s.Process(e) })
	got := EstimateLocalPost(s)
	for v, exactCount := range want {
		if math.Abs(got[v]-float64(exactCount)) > 1e-9 {
			t.Fatalf("post node %d: %v, want %d", v, got[v], exactCount)
		}
	}

	in, _ := NewInStreamLocal(Config{Capacity: len(edges) + 1, Seed: 1, Weight: TriangleWeight})
	stream.Drive(stream.Permute(edges, 2), func(e graph.Edge) { in.Process(e) })
	for v, exactCount := range want {
		if math.Abs(in.Counts()[v]-float64(exactCount)) > 1e-9 {
			t.Fatalf("in-stream node %d: %v, want %d", v, in.Counts()[v], exactCount)
		}
	}
}

func TestLocalTotalIsThriceGlobal(t *testing.T) {
	edges := smallTestGraph()
	s, _ := NewSampler(Config{Capacity: 60, Seed: 3, Weight: TriangleWeight})
	stream.Drive(stream.Permute(edges, 4), func(e graph.Edge) { s.Process(e) })
	local := EstimateLocalPost(s)
	global := EstimatePost(s)
	if math.Abs(local.Total()-3*global.Triangles) > 1e-6*(global.Triangles+1) {
		t.Fatalf("local total %v != 3×global %v", local.Total(), 3*global.Triangles)
	}
}

func TestLocalInStreamUnbiasedMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo test skipped in -short mode")
	}
	edges := smallTestGraph()
	want := exactLocalTriangles(edges)
	truthTotal := float64(exact.Count(graph.BuildStatic(edges)).Triangles)

	// Track the per-node estimate of the most triangle-heavy node plus
	// the global sum.
	var heavy graph.NodeID
	var best int64
	for v, c := range want {
		if c > best {
			best, heavy = c, v
		}
	}
	const trials = 2000
	var nodeW, totalW stats.Welford
	for i := 0; i < trials; i++ {
		seed := uint64(4400 + i)
		in, _ := NewInStreamLocal(Config{Capacity: 60, Seed: seed, Weight: TriangleWeight})
		stream.Drive(stream.Permute(edges, seed^0x1234), func(e graph.Edge) { in.Process(e) })
		nodeW.Add(in.Counts()[heavy])
		totalW.Add(in.Counts().Total())
	}
	if diff := math.Abs(nodeW.Mean() - float64(best)); diff > 5*nodeW.StdErr()+1e-9 {
		t.Errorf("node %d: mean %v vs truth %d (stderr %v)", heavy, nodeW.Mean(), best, nodeW.StdErr())
	}
	if diff := math.Abs(totalW.Mean() - 3*truthTotal); diff > 5*totalW.StdErr()+1e-9 {
		t.Errorf("total: mean %v vs truth %v (stderr %v)", totalW.Mean(), 3*truthTotal, totalW.StdErr())
	}
}

func TestLocalRanksHubs(t *testing.T) {
	// On a clustered graph, per-node estimates at 30% sampling should
	// place the true top node within the estimated top handful.
	edges := gen.HolmeKim(150, 4, 0.8, 9)
	want := exactLocalTriangles(edges)
	var heavy graph.NodeID
	var best int64
	for v, c := range want {
		if c > best {
			best, heavy = c, v
		}
	}
	in, _ := NewInStreamLocal(Config{Capacity: len(edges) / 3, Seed: 10, Weight: TriangleWeight})
	stream.Drive(stream.Permute(edges, 11), func(e graph.Edge) { in.Process(e) })
	rank := 0
	heavyEst := in.Counts()[heavy]
	for _, c := range in.Counts() {
		if c > heavyEst {
			rank++
		}
	}
	if rank > 5 {
		t.Errorf("true top node ranked %d by estimates", rank+1)
	}
}

func TestInStreamLocalDuplicates(t *testing.T) {
	in, _ := NewInStreamLocal(Config{Capacity: 8, Seed: 1})
	e := graph.NewEdge(0, 1)
	in.Process(e)
	in.Process(e)
	if in.Sampler().Duplicates() != 1 {
		t.Fatalf("Duplicates = %d", in.Sampler().Duplicates())
	}
}

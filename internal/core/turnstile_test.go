package core

import (
	"bytes"
	"testing"

	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/randx"
)

// TestDeletionSemantics pins the turnstile contract of Sampler.Process on a
// deletion record: deterministic removal (no RNG draw, no threshold
// change), exact counter accounting, and unchanged inclusion probabilities
// for the surviving edges.
func TestDeletionSemantics(t *testing.T) {
	edges := cloneTestStream(200, 2500, 0x31)
	s, err := NewSampler(Config{Capacity: 100, Weight: TriangleWeight, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	processAll(t, s, edges)

	sampled := s.Reservoir().Edges()
	if len(sampled) == 0 {
		t.Fatal("no sampled edges to delete")
	}
	victim := sampled[len(sampled)/2]
	zBefore := s.Threshold()
	arrivalsBefore := s.Arrivals()
	processedBefore := s.Processed()

	// Record the survivors' inclusion probabilities before the deletion.
	qBefore := map[uint64]float64{}
	for _, e := range sampled {
		q, ok := s.InclusionProb(e)
		if !ok {
			t.Fatalf("sampled edge %v has no inclusion probability", e)
		}
		qBefore[e.Key()] = q
	}

	// Resident deletion: removed, counted as applied.
	if s.Process(victim.AsDeletion()) {
		t.Fatal("deletion record reported as sampled")
	}
	if s.Reservoir().Contains(victim) {
		t.Fatal("deleted edge still resident")
	}
	applied, unsampled := s.Deletions()
	if applied != 1 || unsampled != 0 {
		t.Fatalf("Deletions() = %d/%d, want 1/0", applied, unsampled)
	}

	// Unsampled deletion: vacuous, counted separately. An edge id far
	// outside the generated range is never resident.
	s.Process(graph.NewEdge(1<<30, 1<<30+1).AsDeletion())
	applied, unsampled = s.Deletions()
	if applied != 1 || unsampled != 1 {
		t.Fatalf("Deletions() = %d/%d, want 1/1", applied, unsampled)
	}

	// Deterministic: no arrival counted, no threshold movement, and both
	// deletion records advance the stream position.
	if s.Arrivals() != arrivalsBefore {
		t.Fatalf("deletion bumped arrivals: %d -> %d", arrivalsBefore, s.Arrivals())
	}
	if s.Threshold() != zBefore {
		t.Fatalf("deletion moved threshold: %v -> %v", zBefore, s.Threshold())
	}
	if got, want := s.Processed(), processedBefore+2; got != want {
		t.Fatalf("Processed = %d, want %d (both deletion records count)", got, want)
	}

	// Survivors keep their original q(k): z* reflects evictions actually
	// performed, which deletion does not revisit.
	for _, e := range s.Reservoir().Edges() {
		q, ok := s.InclusionProb(e)
		if !ok {
			t.Fatalf("surviving edge %v lost its inclusion probability", e)
		}
		if q != qBefore[e.Key()] {
			t.Fatalf("surviving edge %v changed q: %v -> %v", e, qBefore[e.Key()], q)
		}
	}
	checkSlotConsistency(t, s.res)
}

// TestDeletionConsumesNoRandomness: a run with vacuous deletions
// interleaved must stay bit-identical to the run without them — deletions
// are deterministic, so they may not advance the RNG or perturb any
// sampling decision.
func TestDeletionConsumesNoRandomness(t *testing.T) {
	edges := cloneTestStream(150, 2000, 0x64)
	mk := func() *Sampler {
		s, err := NewSampler(Config{Capacity: 80, Weight: TriangleWeight, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	plain, noisy := mk(), mk()
	absent := graph.NewEdge(1<<30, 1<<30+1)
	for i, e := range edges {
		plain.Process(e)
		noisy.Process(e)
		if i%7 == 3 {
			noisy.Process(absent.AsDeletion()) // vacuous: must be a no-op
		}
	}
	if fingerprint(plain) != fingerprint(noisy) {
		t.Fatal("vacuous deletions perturbed the sampling run")
	}
	if plain.Threshold() != noisy.Threshold() {
		t.Fatal("vacuous deletions moved the threshold")
	}
	if EstimatePost(plain) != EstimatePost(noisy) {
		t.Fatal("vacuous deletions changed the estimates")
	}
}

// TestDeletionExactWhenSaturated: with capacity above the stream size no
// edge is ever evicted (z* = 0, every q = 1), so the HT estimator is the
// exact count — and after deletions it must equal the exact count of the
// surviving graph. This pins the estimator correction: deleted edges
// contribute nothing, survivors still count at their original q.
func TestDeletionExactWhenSaturated(t *testing.T) {
	edges := gen.HolmeKim(60, 4, 0.5, 0xD1)
	s, err := NewSampler(Config{Capacity: len(edges) + 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	processAll(t, s, edges)

	rng := randx.New(0x2F)
	deleted := map[uint64]bool{}
	for i := 0; i < len(edges)/3; i++ {
		victim := edges[rng.Intn(len(edges))]
		if deleted[victim.Key()] {
			continue
		}
		deleted[victim.Key()] = true
		s.Process(victim.AsDeletion())
	}

	var survivors []graph.Edge
	for _, e := range edges {
		if !deleted[e.Key()] {
			survivors = append(survivors, e)
		}
	}
	got := EstimatePost(s)
	want := naiveCounts(survivors)
	if got.Triangles != float64(want.tri) || got.Wedges != float64(want.wedges) {
		t.Fatalf("saturated estimates after deletions = (%v, %v), exact = (%d, %d)",
			got.Triangles, got.Wedges, want.tri, want.wedges)
	}
}

// naiveCounts counts triangles and wedges of an edge set by brute force.
func naiveCounts(edges []graph.Edge) (c struct{ tri, wedges int64 }) {
	adj := map[graph.NodeID]map[graph.NodeID]bool{}
	add := func(a, b graph.NodeID) {
		if adj[a] == nil {
			adj[a] = map[graph.NodeID]bool{}
		}
		adj[a][b] = true
	}
	for _, e := range edges {
		add(e.U, e.V)
		add(e.V, e.U)
	}
	for _, e := range edges {
		for w := range adj[e.U] {
			if w != e.V && adj[e.V][w] {
				c.tri++
			}
		}
	}
	c.tri /= 3 // each triangle is found once per edge
	for _, nbrs := range adj {
		n := int64(len(nbrs))
		c.wedges += n * (n - 1) / 2
	}
	return c
}

// TestTurnstileChurnConsistency drives a tight reservoir through heavy
// interleaved insert/delete churn and checks the slot-indexed structures
// never drift: slot runs, key table and adjacency agree after every burst,
// clones carry the same mapping, and the (v3) checkpoint round-trips both
// bit-identically and byte-idempotently.
func TestTurnstileChurnConsistency(t *testing.T) {
	edges := gen.HolmeKim(400, 5, 0.5, 0xE7)
	for _, tc := range []struct {
		name   string
		weight WeightFunc
	}{{"uniform", nil}, {"triangle", TriangleWeight}} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSampler(Config{Capacity: 100, Weight: tc.weight, Seed: 0xABC})
			if err != nil {
				t.Fatal(err)
			}
			rng := randx.New(0x77E ^ uint64(len(tc.name)))
			for i, e := range edges {
				s.Process(e)
				switch {
				case i%3 == 2:
					// Delete a random resident edge: heap arbitrary-position
					// removal plus adjacency unlink.
					if sampled := s.Reservoir().Edges(); len(sampled) > 0 {
						s.Process(sampled[rng.Intn(len(sampled))].AsDeletion())
					}
				case i%5 == 1:
					// Delete a random stream edge (usually unsampled).
					s.Process(edges[rng.Intn(i+1)].AsDeletion())
				}
				if i%89 == 0 || i == len(edges)-1 {
					checkSlotConsistency(t, s.res)
				}
			}
			applied, unsampled := s.Deletions()
			if applied == 0 || unsampled == 0 {
				t.Fatalf("churn exercised no deletions: applied=%d unsampled=%d", applied, unsampled)
			}
			checkSlotConsistency(t, s.Clone().res)

			// Durability: deletions force the v3 document; restore must be
			// bit-identical (counters included) and re-encode byte-identically.
			doc := checkpointBytes(t, s, tc.name)
			restored := restoreSampler(t, doc)
			checkSlotConsistency(t, restored.res)
			requireSameSampler(t, s, restored)
			ra, ru := restored.Deletions()
			if ra != applied || ru != unsampled {
				t.Fatalf("restored Deletions() = %d/%d, want %d/%d", ra, ru, applied, unsampled)
			}
			if !bytes.Equal(doc, checkpointBytes(t, restored, tc.name)) {
				t.Fatal("checkpoint of restored turnstile sampler differs byte-wise")
			}

			// Both forks keep evolving identically through a turnstile suffix.
			suffix := gen.HolmeKim(100, 4, 0.4, 0xF00)
			for i, e := range suffix {
				s.Process(e)
				restored.Process(e)
				if i%4 == 1 {
					s.Process(suffix[i/2].AsDeletion())
					restored.Process(suffix[i/2].AsDeletion())
				}
			}
			requireSameSampler(t, s, restored)
			if fingerprint(s) != fingerprint(restored) {
				t.Fatal("turnstile forks diverged after restore")
			}
		})
	}
}

// TestCheckpointVersionByContent: the checkpoint version is chosen by
// state, not by build — a sampler that never saw a deletion writes the
// same pre-turnstile document bytes as before v3 existed, and only applied
// or vacuous deletions promote the document to version 3.
func TestCheckpointVersionByContent(t *testing.T) {
	edges := cloneTestStream(120, 1500, 0x4C)
	s, err := NewSampler(Config{Capacity: 64, Weight: TriangleWeight, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	processAll(t, s, edges)
	doc := checkpointBytes(t, s, "triangle")
	if doc[4] >= 3 {
		t.Fatalf("deletion-free sampler wrote version %d, want the pre-turnstile version", doc[4])
	}

	// One vacuous deletion is already observable state (Processed moves),
	// so it must surface in the document version.
	s.Process(graph.NewEdge(1<<30, 1<<30+1).AsDeletion())
	doc = checkpointBytes(t, s, "triangle")
	if doc[4] != 3 {
		t.Fatalf("turnstile sampler wrote version %d, want 3", doc[4])
	}
	restored := restoreSampler(t, doc)
	requireSameSampler(t, s, restored)
	if !bytes.Equal(doc, checkpointBytes(t, restored, "triangle")) {
		t.Fatal("v3 document not byte-idempotent")
	}
}

// TestMergeCarriesDeletionCounters: merging shard samplers sums the
// turnstile counters like every other stream statistic, so engine-level
// Processed() stays exact across shards.
func TestMergeCarriesDeletionCounters(t *testing.T) {
	edges := cloneTestStream(150, 1200, 0x9D)
	var shards []*Sampler
	var wantApplied, wantUnsampled uint64
	for p := 0; p < 3; p++ {
		s, err := NewSampler(Config{Capacity: 40, Seed: uint64(p) + 1})
		if err != nil {
			t.Fatal(err)
		}
		for i := p; i < len(edges); i += 3 {
			s.Process(edges[i])
			if i%9 == p {
				s.Process(edges[i].AsDeletion())
			}
		}
		a, u := s.Deletions()
		wantApplied += a
		wantUnsampled += u
		shards = append(shards, s)
	}
	if wantApplied+wantUnsampled == 0 {
		t.Fatal("shards exercised no deletions")
	}
	merged, err := Merge(shards, Config{Capacity: 40, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	a, u := merged.Deletions()
	if a != wantApplied || u != wantUnsampled {
		t.Fatalf("merged Deletions() = %d/%d, want %d/%d", a, u, wantApplied, wantUnsampled)
	}
}

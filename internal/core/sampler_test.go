package core

import (
	"testing"

	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/stream"
)

func processAll(t *testing.T, s *Sampler, edges []graph.Edge) {
	t.Helper()
	for _, e := range edges {
		s.Process(e)
	}
}

func TestNewSamplerValidation(t *testing.T) {
	if _, err := NewSampler(Config{Capacity: 0}); err == nil {
		t.Fatal("Capacity 0 accepted")
	}
	if _, err := NewSampler(Config{Capacity: -5}); err == nil {
		t.Fatal("negative capacity accepted")
	}
	s, err := NewSampler(Config{Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Capacity() != 1 {
		t.Fatalf("Capacity() = %d", s.Capacity())
	}
}

func TestReservoirNeverExceedsCapacity(t *testing.T) {
	const m = 50
	s, err := NewSampler(Config{Capacity: m, Seed: 1, Weight: TriangleWeight})
	if err != nil {
		t.Fatal(err)
	}
	edges := gen.ErdosRenyi(200, 600, 2)
	for i, e := range edges {
		s.Process(e)
		if s.Reservoir().Len() > m {
			t.Fatalf("after edge %d: reservoir %d > m=%d", i, s.Reservoir().Len(), m)
		}
		if i+1 <= m && s.Reservoir().Len() != i+1 {
			t.Fatalf("warm-up: after %d edges reservoir has %d", i+1, s.Reservoir().Len())
		}
	}
	if s.Reservoir().Len() != m {
		t.Fatalf("final reservoir %d", s.Reservoir().Len())
	}
	if s.Arrivals() != uint64(len(edges)) {
		t.Fatalf("Arrivals = %d", s.Arrivals())
	}
}

func TestThresholdMonotoneAndZeroBeforeOverflow(t *testing.T) {
	const m = 64
	s, _ := NewSampler(Config{Capacity: m, Seed: 3})
	edges := gen.ErdosRenyi(100, 300, 4)
	prev := 0.0
	for i, e := range edges {
		s.Process(e)
		z := s.Threshold()
		if i < m && z != 0 {
			t.Fatalf("threshold %v before overflow", z)
		}
		if z < prev {
			t.Fatalf("threshold decreased: %v -> %v", prev, z)
		}
		prev = z
	}
	if s.Threshold() <= 0 {
		t.Fatal("threshold still zero after overflow")
	}
}

func TestInclusionProbabilitiesInUnitInterval(t *testing.T) {
	s, _ := NewSampler(Config{Capacity: 40, Seed: 5, Weight: TriangleWeight})
	edges := gen.HolmeKim(100, 3, 0.6, 6)
	processAll(t, s, edges)
	n := 0
	s.Reservoir().ForEachEdge(func(e graph.Edge) bool {
		q, ok := s.InclusionProb(e)
		if !ok {
			t.Fatalf("sampled edge %v has no probability", e)
		}
		if q <= 0 || q > 1 {
			t.Fatalf("q(%v) = %v", e, q)
		}
		n++
		return true
	})
	if n != s.Reservoir().Len() {
		t.Fatalf("iterated %d edges, reservoir has %d", n, s.Reservoir().Len())
	}
	if _, ok := s.InclusionProb(graph.NewEdge(4000, 4001)); ok {
		t.Fatal("unsampled edge reported a probability")
	}
}

func TestDuplicateArrivalsIgnored(t *testing.T) {
	s, _ := NewSampler(Config{Capacity: 10, Seed: 7})
	e := graph.NewEdge(1, 2)
	s.Process(e)
	s.Process(e)
	s.Process(e)
	if s.Arrivals() != 1 {
		t.Fatalf("Arrivals = %d, want 1", s.Arrivals())
	}
	if s.Duplicates() != 2 {
		t.Fatalf("Duplicates = %d, want 2", s.Duplicates())
	}
	if s.Reservoir().Len() != 1 {
		t.Fatalf("reservoir %d", s.Reservoir().Len())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	edges := gen.RMAT(10, 6, 0.57, 0.19, 0.19, 8)
	run := func() []graph.Edge {
		s, _ := NewSampler(Config{Capacity: 100, Seed: 42, Weight: TriangleWeight})
		stream.Drive(stream.Permute(edges, 9), func(e graph.Edge) { s.Process(e) })
		return s.Reservoir().Edges()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	got := map[graph.Edge]bool{}
	for _, e := range a {
		got[e] = true
	}
	for _, e := range b {
		if !got[e] {
			t.Fatalf("runs sampled different edges: %v", e)
		}
	}
}

func TestAdjacencyMatchesHeap(t *testing.T) {
	s, _ := NewSampler(Config{Capacity: 64, Seed: 11, Weight: AdjacencyWeight})
	edges := gen.BarabasiAlbert(300, 3, 12)
	processAll(t, s, edges)
	res := s.Reservoir()
	// Every adjacency edge must be in the heap and vice versa.
	count := 0
	res.ForEachEdge(func(e graph.Edge) bool {
		if _, ok := res.Weight(e); !ok {
			t.Fatalf("adjacency edge %v missing from heap", e)
		}
		count++
		return true
	})
	if count != res.Len() {
		t.Fatalf("adjacency has %d edges, heap %d", count, res.Len())
	}
	for _, e := range res.Edges() {
		if !res.Contains(e) {
			t.Fatalf("heap edge %v missing from Contains", e)
		}
	}
}

func TestInvalidWeightPanics(t *testing.T) {
	s, _ := NewSampler(Config{
		Capacity: 4,
		Weight:   func(graph.Edge, *Reservoir) float64 { return 0 },
	})
	defer func() {
		if recover() == nil {
			t.Fatal("zero weight did not panic")
		}
	}()
	s.Process(graph.NewEdge(0, 1))
}

func TestUniformWeightIsDefault(t *testing.T) {
	a, _ := NewSampler(Config{Capacity: 20, Seed: 13})
	b, _ := NewSampler(Config{Capacity: 20, Seed: 13, Weight: UniformWeight})
	edges := gen.ErdosRenyi(80, 200, 14)
	for _, e := range edges {
		a.Process(e)
		b.Process(e)
	}
	ae, be := a.Reservoir().Edges(), b.Reservoir().Edges()
	got := map[graph.Edge]bool{}
	for _, e := range ae {
		got[e] = true
	}
	for _, e := range be {
		if !got[e] {
			t.Fatal("nil Weight differs from UniformWeight")
		}
	}
}

func TestWeightFunctions(t *testing.T) {
	s, _ := NewSampler(Config{Capacity: 10, Seed: 1})
	// Build a sampled triangle 0-1-2 by hand.
	s.Process(graph.NewEdge(0, 1))
	s.Process(graph.NewEdge(1, 2))
	s.Process(graph.NewEdge(0, 2))
	r := s.Reservoir()
	// Edge (0,3) closes nothing.
	if w := TriangleWeight(graph.NewEdge(0, 3), r); w != 1 {
		t.Fatalf("TriangleWeight no-triangle = %v", w)
	}
	// A new edge (1,2) would close one triangle via node 0... it already
	// exists, but the weight function only counts common neighbors.
	if w := TriangleWeight(graph.NewEdge(1, 2), r); w != 9+1 {
		t.Fatalf("TriangleWeight one-triangle = %v", w)
	}
	if w := AdjacencyWeight(graph.NewEdge(0, 3), r); w != 2+0+1 {
		t.Fatalf("AdjacencyWeight = %v", w)
	}
	custom := NewTriangleWeight(5, 2)
	if w := custom(graph.NewEdge(1, 2), r); w != 5+2 {
		t.Fatalf("NewTriangleWeight = %v", w)
	}
	comb := CombineWeights([]float64{1, 2}, []WeightFunc{UniformWeight, UniformWeight})
	if w := comb(graph.NewEdge(0, 3), r); w != 3 {
		t.Fatalf("CombineWeights = %v", w)
	}
}

func TestWeightConstructorsPanic(t *testing.T) {
	cases := []func(){
		func() { NewTriangleWeight(1, 0) },
		func() { NewTriangleWeight(-1, 1) },
		func() { NewAdjacencyWeight(1, -1) },
		func() { CombineWeights(nil, nil) },
		func() { CombineWeights([]float64{-1}, []WeightFunc{UniformWeight}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

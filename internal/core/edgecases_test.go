package core

import (
	"math"
	"sync"
	"testing"

	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/stream"
)

func TestEstimatePostEmptySampler(t *testing.T) {
	s, _ := NewSampler(Config{Capacity: 10, Seed: 1})
	est := EstimatePost(s)
	if est.Triangles != 0 || est.Wedges != 0 || est.VarTriangles != 0 {
		t.Fatalf("empty sampler estimates: %+v", est)
	}
	if est.GlobalClustering() != 0 {
		t.Fatal("empty clustering != 0")
	}
	if local := EstimateLocalPost(s); len(local) != 0 {
		t.Fatalf("empty local estimates: %v", local)
	}
}

func TestCapacityOne(t *testing.T) {
	s, _ := NewSampler(Config{Capacity: 1, Seed: 2, Weight: TriangleWeight})
	edges := gen.ErdosRenyi(50, 120, 3)
	for _, e := range edges {
		s.Process(e)
		if s.Reservoir().Len() > 1 {
			t.Fatal("reservoir exceeded capacity 1")
		}
	}
	// A single edge can hold neither triangles nor wedges.
	est := EstimatePost(s)
	if est.Triangles != 0 || est.Wedges != 0 {
		t.Fatalf("m=1 estimates: %+v", est)
	}
}

func TestStarGraphWedgesOnly(t *testing.T) {
	// A star has wedges but no triangles; the estimators must see that.
	var edges []graph.Edge
	const leaves = 40
	for i := 1; i <= leaves; i++ {
		edges = append(edges, graph.NewEdge(0, graph.NodeID(i)))
	}
	in, _ := NewInStream(Config{Capacity: 20, Seed: 4, Weight: AdjacencyWeight})
	stream.Drive(stream.Permute(edges, 5), func(e graph.Edge) { in.Process(e) })
	est := in.Estimates()
	if est.Triangles != 0 || est.VarTriangles != 0 {
		t.Fatalf("star produced triangle estimates: %+v", est)
	}
	if est.Wedges <= 0 {
		t.Fatal("star produced no wedge estimate")
	}
	want := float64(leaves * (leaves - 1) / 2)
	if math.Abs(est.Wedges-want)/want > 0.6 {
		t.Fatalf("star wedges %v, want ≈%v", est.Wedges, want)
	}
}

func TestTriangleOnlyGraph(t *testing.T) {
	// A disjoint union of triangles: clustering coefficient exactly 1.
	var edges []graph.Edge
	for i := 0; i < 30; i++ {
		a, b, c := graph.NodeID(3*i), graph.NodeID(3*i+1), graph.NodeID(3*i+2)
		edges = append(edges, graph.NewEdge(a, b), graph.NewEdge(b, c), graph.NewEdge(a, c))
	}
	in, _ := NewInStream(Config{Capacity: len(edges), Seed: 6, Weight: TriangleWeight})
	stream.Drive(stream.Permute(edges, 7), func(e graph.Edge) { in.Process(e) })
	est := in.Estimates()
	if est.Triangles != 30 || est.Wedges != 90 {
		t.Fatalf("triangle soup: %+v", est)
	}
	if cc := est.GlobalClustering(); cc != 1 {
		t.Fatalf("clustering %v, want 1", cc)
	}
}

func TestEstimatePostConcurrentReaders(t *testing.T) {
	// EstimatePost only reads the reservoir; concurrent estimation over a
	// quiescent sampler must be safe (run with -race to verify).
	edges := smallTestGraph()
	s, _ := NewSampler(Config{Capacity: 80, Seed: 8, Weight: TriangleWeight})
	stream.Drive(stream.Permute(edges, 9), func(e graph.Edge) { s.Process(e) })
	var wg sync.WaitGroup
	results := make([]Estimates, 4)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = EstimatePost(s)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if math.Abs(results[i].Triangles-results[0].Triangles) > 1e-9 {
			t.Fatal("concurrent estimates disagree")
		}
	}
}

func TestThresholdConditionalProbabilityLaw(t *testing.T) {
	// Spot-check GPSNormalize: every sampled edge must satisfy
	// r(k) > z*  (it survived) and q(k) = min{1, w(k)/z*}.
	edges := gen.HolmeKim(200, 4, 0.5, 10)
	s, _ := NewSampler(Config{Capacity: 50, Seed: 11, Weight: TriangleWeight})
	stream.Drive(stream.Permute(edges, 12), func(e graph.Edge) { s.Process(e) })
	z := s.Threshold()
	if z <= 0 {
		t.Fatal("no threshold after overflow")
	}
	s.Reservoir().ForEachEdge(func(e graph.Edge) bool {
		w, _ := s.Reservoir().Weight(e)
		q, _ := s.InclusionProb(e)
		want := w / z
		if want > 1 {
			want = 1
		}
		if math.Abs(q-want) > 1e-12 {
			t.Fatalf("q(%v) = %v, want %v", e, q, want)
		}
		return true
	})
}

func TestInStreamEstimatesMonotoneArrivals(t *testing.T) {
	// Count estimates are sums of non-negative snapshots, so they must be
	// non-decreasing in stream time.
	edges := smallTestGraph()
	in, _ := NewInStream(Config{Capacity: 40, Seed: 13, Weight: TriangleWeight})
	prevTri, prevW := 0.0, 0.0
	for _, e := range stream.Collect(stream.Permute(edges, 14)) {
		in.Process(e)
		est := in.Estimates()
		if est.Triangles < prevTri || est.Wedges < prevW {
			t.Fatalf("estimates decreased: %v->%v / %v->%v",
				prevTri, est.Triangles, prevW, est.Wedges)
		}
		prevTri, prevW = est.Triangles, est.Wedges
	}
}

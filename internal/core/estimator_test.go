package core

import (
	"math"
	"testing"

	"gps/internal/exact"
	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/stats"
	"gps/internal/stream"
)

// triangleList enumerates every triangle of the graph as its three edges.
func triangleList(edges []graph.Edge) [][3]graph.Edge {
	g := graph.BuildStatic(edges)
	var out [][3]graph.Edge
	for v := 0; v < g.NumNodes(); v++ {
		nv := g.Neighbors(graph.NodeID(v))
		for i := 0; i < len(nv); i++ {
			u := nv[i]
			if u <= graph.NodeID(v) {
				continue
			}
			for j := i + 1; j < len(nv); j++ {
				w := nv[j]
				if w <= graph.NodeID(v) || !g.HasEdge(u, w) {
					continue
				}
				// v < u < w by construction of sorted neighbor slices.
				out = append(out, [3]graph.Edge{
					graph.NewEdge(graph.NodeID(v), u),
					graph.NewEdge(graph.NodeID(v), w),
					graph.NewEdge(u, w),
				})
			}
		}
	}
	return out
}

// wedgeList enumerates every wedge of the graph as its two edges.
func wedgeList(edges []graph.Edge) [][2]graph.Edge {
	g := graph.BuildStatic(edges)
	var out [][2]graph.Edge
	for v := 0; v < g.NumNodes(); v++ {
		nv := g.Neighbors(graph.NodeID(v))
		for i := 0; i < len(nv); i++ {
			for j := i + 1; j < len(nv); j++ {
				out = append(out, [2]graph.Edge{
					graph.NewEdge(graph.NodeID(v), nv[i]),
					graph.NewEdge(graph.NodeID(v), nv[j]),
				})
			}
		}
	}
	return out
}

// smallTestGraph is a deterministic clustered graph small enough for
// brute-force pair sums: ~150 edges, dozens of triangles.
func smallTestGraph() []graph.Edge {
	return gen.HolmeKim(60, 3, 0.7, 77)
}

func TestExactWhenReservoirHoldsEverything(t *testing.T) {
	edges := smallTestGraph()
	truth := exact.Count(graph.BuildStatic(edges))

	s, _ := NewSampler(Config{Capacity: len(edges) + 10, Seed: 1, Weight: TriangleWeight})
	stream.Drive(stream.Permute(edges, 2), func(e graph.Edge) { s.Process(e) })
	if s.Threshold() != 0 {
		t.Fatalf("threshold %v with oversized reservoir", s.Threshold())
	}
	est := EstimatePost(s)
	if est.Triangles != float64(truth.Triangles) {
		t.Fatalf("post triangles = %v, want %d", est.Triangles, truth.Triangles)
	}
	if est.Wedges != float64(truth.Wedges) {
		t.Fatalf("post wedges = %v, want %d", est.Wedges, truth.Wedges)
	}
	if est.VarTriangles != 0 || est.VarWedges != 0 || est.CovTriangleWedge != 0 {
		t.Fatalf("variance nonzero with q=1: %+v", est)
	}
	if cc := est.GlobalClustering(); math.Abs(cc-truth.GlobalClustering()) > 1e-12 {
		t.Fatalf("clustering = %v, want %v", cc, truth.GlobalClustering())
	}

	in, _ := NewInStream(Config{Capacity: len(edges) + 10, Seed: 1, Weight: TriangleWeight})
	stream.Drive(stream.Permute(edges, 2), func(e graph.Edge) { in.Process(e) })
	ie := in.Estimates()
	if ie.Triangles != float64(truth.Triangles) || ie.Wedges != float64(truth.Wedges) {
		t.Fatalf("in-stream exact: %+v want T=%d W=%d", ie, truth.Triangles, truth.Wedges)
	}
	if ie.VarTriangles != 0 || ie.VarWedges != 0 || ie.CovTriangleWedge != 0 {
		t.Fatalf("in-stream variance nonzero with q=1: %+v", ie)
	}
}

// TestPostMatchesSubgraphBruteForce checks that the localized Algorithm 2
// scan agrees with the definitional estimators of Theorems 2-3 evaluated by
// brute force over every triangle, wedge, and intersecting pair.
func TestPostMatchesSubgraphBruteForce(t *testing.T) {
	edges := smallTestGraph()
	tris := triangleList(edges)
	wedges := wedgeList(edges)

	s, _ := NewSampler(Config{Capacity: 70, Seed: 3, Weight: TriangleWeight})
	stream.Drive(stream.Permute(edges, 4), func(e graph.Edge) { s.Process(e) })
	est := EstimatePost(s)

	relEq := func(name string, got, want float64) {
		t.Helper()
		tol := 1e-9 * (math.Abs(want) + 1)
		if math.Abs(got-want) > tol {
			t.Fatalf("%s: algorithm=%v brute=%v", name, got, want)
		}
	}

	// Counts: N̂ = Σ_J Ŝ_J.
	var wantTri float64
	triHat := make([]float64, len(tris))
	for i, tr := range tris {
		triHat[i] = s.SubgraphEstimate(tr[0], tr[1], tr[2])
		wantTri += triHat[i]
	}
	relEq("triangle count", est.Triangles, wantTri)

	var wantW float64
	wHat := make([]float64, len(wedges))
	for i, wd := range wedges {
		wHat[i] = s.SubgraphEstimate(wd[0], wd[1])
		wantW += wHat[i]
	}
	relEq("wedge count", est.Wedges, wantW)

	// Variances: Eq. 9/10 = Σ Ŝ(Ŝ-1) + 2 Σ_{J<J'} Ĉ.
	var wantVT float64
	for i, tr := range tris {
		wantVT += triHat[i] * (triHat[i] - 1)
		for j := i + 1; j < len(tris); j++ {
			wantVT += 2 * s.SubgraphCovariance(tr[:], tris[j][:])
		}
	}
	relEq("triangle variance", est.VarTriangles, wantVT)

	var wantVW float64
	for i, wd := range wedges {
		wantVW += wHat[i] * (wHat[i] - 1)
		for j := i + 1; j < len(wedges); j++ {
			wantVW += 2 * s.SubgraphCovariance(wd[:], wedges[j][:])
		}
	}
	relEq("wedge variance", est.VarWedges, wantVW)

	// Triangle-wedge covariance: Eq. 12 = Σ_{τ,λ: τ∩λ≠∅} Ŝ_{τ∪λ}(Ŝ_{τ∩λ}-1).
	var wantCov float64
	for _, tr := range tris {
		for _, wd := range wedges {
			wantCov += s.SubgraphCovariance(tr[:], wd[:])
		}
	}
	relEq("tri-wedge covariance", est.CovTriangleWedge, wantCov)
}

func TestSubgraphEstimateBasics(t *testing.T) {
	edges := smallTestGraph()
	s, _ := NewSampler(Config{Capacity: 70, Seed: 5, Weight: TriangleWeight})
	stream.Drive(stream.Permute(edges, 6), func(e graph.Edge) { s.Process(e) })

	sampled := s.Reservoir().Edges()
	// Ŝ_J ∈ {0} ∪ [1, ∞): probabilities are ≤ 1.
	for _, e := range sampled {
		v := s.SubgraphEstimate(e)
		if v < 1 {
			t.Fatalf("Ŝ_{%v} = %v < 1", e, v)
		}
		// Duplicates in the argument are ignored.
		if dup := s.SubgraphEstimate(e, e); dup != v {
			t.Fatalf("duplicate edge changed estimate: %v vs %v", dup, v)
		}
		if varEst := s.SubgraphVariance(e); varEst < 0 {
			t.Fatalf("variance estimator negative: %v", varEst)
		}
	}
	if v := s.SubgraphEstimate(graph.NewEdge(5000, 5001)); v != 0 {
		t.Fatalf("unsampled subgraph estimate = %v", v)
	}
	// Disjoint subgraphs have zero covariance estimate.
	if len(sampled) >= 4 {
		a := []graph.Edge{sampled[0]}
		var b []graph.Edge
		for _, e := range sampled[1:] {
			if !e.Adjacent(sampled[0]) && e != sampled[0] {
				b = []graph.Edge{e}
				break
			}
		}
		if b != nil {
			if c := s.SubgraphCovariance(a, b); c != 0 {
				t.Fatalf("disjoint covariance = %v", c)
			}
		}
		if c := s.SubgraphCovariance(a, a); c < 0 {
			t.Fatalf("self covariance = %v < 0", c)
		}
	}
}

func TestInStreamSharesSampleWithPost(t *testing.T) {
	edges := smallTestGraph()
	in, _ := NewInStream(Config{Capacity: 50, Seed: 9, Weight: TriangleWeight})
	stream.Drive(stream.Permute(edges, 10), func(e graph.Edge) { in.Process(e) })

	solo, _ := NewSampler(Config{Capacity: 50, Seed: 9, Weight: TriangleWeight})
	stream.Drive(stream.Permute(edges, 10), func(e graph.Edge) { solo.Process(e) })

	a := in.Sampler().Reservoir().Edges()
	b := solo.Reservoir().Edges()
	if len(a) != len(b) {
		t.Fatalf("sample sizes differ: %d vs %d", len(a), len(b))
	}
	set := map[graph.Edge]bool{}
	for _, e := range a {
		set[e] = true
	}
	for _, e := range b {
		if !set[e] {
			t.Fatalf("samples differ at %v", e)
		}
	}
	if in.Sampler().Threshold() != solo.Threshold() {
		t.Fatal("thresholds differ")
	}
	// Post-stream estimates over the two identical samples agree.
	pa, pb := EstimatePost(in.Sampler()), EstimatePost(solo)
	if math.Abs(pa.Triangles-pb.Triangles) > 1e-9*(pb.Triangles+1) {
		t.Fatalf("post estimates differ: %v vs %v", pa.Triangles, pb.Triangles)
	}
}

// mcResult captures one Monte-Carlo replication.
type mcResult struct {
	post Estimates
	in   Estimates
}

func runMC(t *testing.T, edges []graph.Edge, m int, trials int, weight WeightFunc) []mcResult {
	t.Helper()
	out := make([]mcResult, trials)
	for i := 0; i < trials; i++ {
		seed := uint64(1000 + i)
		in, err := NewInStream(Config{Capacity: m, Seed: seed, Weight: weight})
		if err != nil {
			t.Fatal(err)
		}
		stream.Drive(stream.Permute(edges, seed^0xabcdef), func(e graph.Edge) { in.Process(e) })
		out[i] = mcResult{post: EstimatePost(in.Sampler()), in: in.Estimates()}
	}
	return out
}

// TestUnbiasednessMonteCarlo verifies E[N̂] = N for triangles and wedges
// under both estimation frameworks (Theorems 2, 4, 6), and that the variance
// and covariance estimators are unbiased for the empirical variance and
// covariance of the count estimators (Theorems 3, 5, 7).
func TestUnbiasednessMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo test skipped in -short mode")
	}
	edges := smallTestGraph()
	truth := exact.Count(graph.BuildStatic(edges))
	const m = 60
	const trials = 3000
	results := runMC(t, edges, m, trials, TriangleWeight)

	var postTri, postW, inTri, inW stats.Welford
	var postVT, postVW, inVT, inVW stats.Welford
	var postCovEst, inCovEst stats.Welford
	var postTriW, inTriW stats.Covariance
	for _, r := range results {
		postTri.Add(r.post.Triangles)
		postW.Add(r.post.Wedges)
		inTri.Add(r.in.Triangles)
		inW.Add(r.in.Wedges)
		postVT.Add(r.post.VarTriangles)
		postVW.Add(r.post.VarWedges)
		inVT.Add(r.in.VarTriangles)
		inVW.Add(r.in.VarWedges)
		postCovEst.Add(r.post.CovTriangleWedge)
		inCovEst.Add(r.in.CovTriangleWedge)
		postTriW.Add(r.post.Triangles, r.post.Wedges)
		inTriW.Add(r.in.Triangles, r.in.Wedges)
	}

	checkMean := func(name string, w *stats.Welford, want float64) {
		t.Helper()
		if diff := math.Abs(w.Mean() - want); diff > 5*w.StdErr()+1e-9 {
			t.Errorf("%s: mean %v vs truth %v (stderr %v)", name, w.Mean(), want, w.StdErr())
		}
	}
	checkMean("post triangles", &postTri, float64(truth.Triangles))
	checkMean("post wedges", &postW, float64(truth.Wedges))
	checkMean("in-stream triangles", &inTri, float64(truth.Triangles))
	checkMean("in-stream wedges", &inW, float64(truth.Wedges))

	// Variance estimators: E[V̂] should match the empirical variance of
	// the count estimator. The sampling distribution of a variance is
	// heavy-tailed, so allow 20% relative slack.
	checkVar := func(name string, meanVar *stats.Welford, empirical float64) {
		t.Helper()
		if empirical <= 0 {
			return
		}
		rel := math.Abs(meanVar.Mean()-empirical) / empirical
		if rel > 0.20 {
			t.Errorf("%s: E[V̂]=%v vs empirical Var=%v (rel %.2f)", name, meanVar.Mean(), empirical, rel)
		}
	}
	checkVar("post Var(triangles)", &postVT, postTri.Variance())
	checkVar("post Var(wedges)", &postVW, postW.Variance())
	checkVar("in-stream Var(triangles)", &inVT, inTri.Variance())
	checkVar("in-stream Var(wedges)", &inVW, inW.Variance())

	// Covariance estimator vs empirical covariance of (N̂△, N̂Λ).
	checkCov := func(name string, est *stats.Welford, empirical float64) {
		t.Helper()
		scale := math.Max(math.Abs(empirical), 1)
		if math.Abs(est.Mean()-empirical)/scale > 0.35 {
			t.Errorf("%s: E[Ĉ]=%v vs empirical Cov=%v", name, est.Mean(), empirical)
		}
	}
	checkCov("post Cov(T,W)", &postCovEst, postTriW.Value())
	checkCov("in-stream Cov(T,W)", &inCovEst, inTriW.Value())

	// The headline claim: in-stream estimation has lower variance than
	// post-stream estimation over the same samples.
	if inTri.Variance() >= postTri.Variance() {
		t.Errorf("in-stream triangle variance %v not below post-stream %v",
			inTri.Variance(), postTri.Variance())
	}
}

// TestConfidenceIntervalCoverage verifies that the 95% intervals built from
// the variance estimators actually cover the truth at roughly the nominal
// rate (Table 1 LB/UB columns).
func TestConfidenceIntervalCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo test skipped in -short mode")
	}
	edges := smallTestGraph()
	truth := exact.Count(graph.BuildStatic(edges))
	results := runMC(t, edges, 60, 600, TriangleWeight)

	hitTri, hitW := 0, 0
	for _, r := range results {
		if r.in.TriangleInterval().Contains(float64(truth.Triangles)) {
			hitTri++
		}
		if r.in.WedgeInterval().Contains(float64(truth.Wedges)) {
			hitW++
		}
	}
	n := float64(len(results))
	if rate := float64(hitTri) / n; rate < 0.85 {
		t.Errorf("triangle CI coverage %.3f < 0.85", rate)
	}
	if rate := float64(hitW) / n; rate < 0.85 {
		t.Errorf("wedge CI coverage %.3f < 0.85", rate)
	}
}

// TestTriangleWeightBeatsUniform is the §3.5 ablation: weighting edge
// sampling by completed triangles minimizes the variance of the
// Horvitz-Thompson (post-stream) triangle estimator relative to uniform
// weights. The effect concentrates in post-stream estimation — in-stream
// snapshots freeze early, pre-threshold probabilities and are nearly
// insensitive to the retention weighting — so that is what we assert, with
// a generous factor to keep the Monte-Carlo comparison robust.
func TestTriangleWeightBeatsUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo test skipped in -short mode")
	}
	edges := smallTestGraph()
	const m, trials = 50, 1200
	var wTri, wUni stats.Welford
	for _, r := range runMC(t, edges, m, trials, TriangleWeight) {
		wTri.Add(r.post.Triangles)
	}
	for _, r := range runMC(t, edges, m, trials, UniformWeight) {
		wUni.Add(r.post.Triangles)
	}
	if 1.2*wTri.Variance() >= wUni.Variance() {
		t.Errorf("triangle-weighted post-stream variance %v not well below uniform %v",
			wTri.Variance(), wUni.Variance())
	}
}

// TestInStreamBeatsPostStream pins the paper's other headline variance
// ordering: in-stream estimates from the same sample have lower variance
// than post-stream estimates, under both weightings.
func TestInStreamBeatsPostStream(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo test skipped in -short mode")
	}
	edges := smallTestGraph()
	for _, weight := range []struct {
		name string
		fn   WeightFunc
	}{{"triangle", TriangleWeight}, {"uniform", UniformWeight}} {
		var in, post stats.Welford
		for _, r := range runMC(t, edges, 50, 1000, weight.fn) {
			in.Add(r.in.Triangles)
			post.Add(r.post.Triangles)
		}
		if in.Variance() >= post.Variance() {
			t.Errorf("%s weights: in-stream variance %v not below post-stream %v",
				weight.name, in.Variance(), post.Variance())
		}
	}
}

func TestEstimatesAccessors(t *testing.T) {
	e := Estimates{Triangles: 30, Wedges: 300, VarTriangles: 25, VarWedges: 100}
	if cc := e.GlobalClustering(); math.Abs(cc-0.3) > 1e-12 {
		t.Fatalf("GlobalClustering = %v", cc)
	}
	if iv := e.TriangleInterval(); iv.Lower >= iv.Upper || !iv.Contains(30) {
		t.Fatalf("TriangleInterval = %+v", iv)
	}
	if iv := e.WedgeInterval(); !iv.Contains(300) {
		t.Fatalf("WedgeInterval = %+v", iv)
	}
	if v := e.VarGlobalClustering(); v <= 0 {
		t.Fatalf("VarGlobalClustering = %v", v)
	}
	if iv := e.ClusteringInterval(); !iv.Contains(0.3) {
		t.Fatalf("ClusteringInterval = %+v", iv)
	}
	var zero Estimates
	if zero.GlobalClustering() != 0 {
		t.Fatal("zero-value clustering not 0")
	}
}

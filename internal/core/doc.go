// Package core implements Graph Priority Sampling (GPS), the primary
// contribution of "On Sampling from Massive Graph Streams" (Ahmed, Duffield,
// Willke, Rossi; VLDB 2017), together with the paper's two estimation
// frameworks:
//
//   - Sampler implements Algorithm 1 (GPS(m)): fixed-size, weight-sensitive,
//     one-pass order sampling of a graph edge stream into a priority
//     reservoir, with pluggable weight functions W(k,K̂).
//   - EstimatePost implements Algorithm 2: post-stream unbiased estimation
//     of triangle counts, wedge counts, their variances, the triangle–wedge
//     covariance (Eq. 12) and the global clustering coefficient with
//     delta-method confidence intervals (Eq. 11).
//   - InStream implements Algorithm 3: in-stream "snapshot" estimation that
//     incrementally updates the same quantities while the stream is being
//     sampled, achieving lower variance than post-stream estimation from the
//     identical sample.
//   - Sampler.SubgraphEstimate / SubgraphVariance / SubgraphCovariance
//     expose the general-purpose machinery of Theorems 2-3 for arbitrary
//     edge subsets, which is what makes a GPS sample a reusable reference
//     sample for retrospective graph queries.
//
// Unbiasedness of every estimator rests on the paper's Martingale argument:
// conditional on the threshold z* (the (m+1)-st highest priority seen), each
// sampled edge k carries the Horvitz-Thompson weight 1/q(k) with
// q(k) = min{1, w(k)/z*}, and products of these edge estimators remain
// unbiased even across different snapshot times (Theorems 1, 2, 4).
package core

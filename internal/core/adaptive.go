package core

import "gps/internal/graph"

// NewAdaptiveTriangleWeight returns a *stateful* triangle weight that tunes
// its coefficient online — a concrete realization of the "adaptive-weight
// sampling schemes" the paper names as future work (§8).
//
// The fixed TriangleWeight uses W(k,K̂) = 9·|△̂(k)|+1: the coefficient
// balances sampling mass between triangle-completing edges (which §3.5 shows
// should be favoured in proportion to the subgraph count they create) and
// the default mass that keeps triangle-free edges alive. The right balance
// depends on the stream: in a triangle-dense stream a large coefficient
// starves exploration; in a triangle-sparse stream a small one wastes the
// variance reduction. The adaptive weight keeps an exponential moving
// average of the triangle-completion rate and sets
//
//	coef_t = targetShare / max(rate_t, floor)
//
// so that the expected weight mass flowing to triangle-completing edges
// stays near targetShare of the default mass, clamped to [1, maxCoef].
//
// Each returned WeightFunc owns private state and must be used by exactly
// one Sampler.
func NewAdaptiveTriangleWeight(targetShare float64) WeightFunc {
	if targetShare <= 0 {
		panic("core: NewAdaptiveTriangleWeight requires targetShare > 0")
	}
	const (
		ewmaAlpha = 1.0 / 4096 // smoothing horizon in edges
		rateFloor = 1e-4
		maxCoef   = 1e4
	)
	rate := 0.05 // optimistic prior so early coefficients stay moderate
	return func(e graph.Edge, r *Reservoir) float64 {
		closed := float64(r.CountCommonNeighbors(e.U, e.V))
		hit := 0.0
		if closed > 0 {
			hit = 1
		}
		rate += ewmaAlpha * (hit - rate)
		effRate := rate
		if effRate < rateFloor {
			effRate = rateFloor
		}
		coef := targetShare / effRate
		if coef < 1 {
			coef = 1
		}
		if coef > maxCoef {
			coef = maxCoef
		}
		return coef*closed + 1
	}
}

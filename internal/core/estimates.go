package core

import "gps/internal/stats"

// Estimates holds unbiased subgraph count estimates with their unbiased
// variance estimates, as produced by post-stream (Algorithm 2) or in-stream
// (Algorithm 3) estimation.
type Estimates struct {
	// Triangles is N̂(△), the unbiased estimate of the number of
	// triangles whose edges have all arrived (Corollary 1 / Theorem 6).
	Triangles float64
	// Wedges is N̂(Λ), the unbiased estimate of the number of wedges
	// (paths of length 2) whose edges have all arrived (Corollary 2).
	Wedges float64
	// VarTriangles is V̂(△), the unbiased estimate of Var[N̂(△)]
	// (Corollary 3 / Theorem 7).
	VarTriangles float64
	// VarWedges is V̂(Λ), the unbiased estimate of Var[N̂(Λ)]
	// (Corollary 4).
	VarWedges float64
	// CovTriangleWedge is V̂(△,Λ), the estimate of Cov(N̂(△),N̂(Λ))
	// (Eq. 12), used by the clustering-coefficient delta method.
	CovTriangleWedge float64

	// SampledEdges is |K̂| and Arrivals is the stream time t at which the
	// estimates were taken.
	SampledEdges int
	Arrivals     uint64

	// Decayed reports that the sampler ran with forward decay, in which
	// case every count above targets the *decayed* count at DecayHorizon —
	// each motif weighted by exp(-λ·(horizon − oldest member edge's event
	// time)) — and DecayedEdges is the decayed edge count estimate
	// Σ_{k∈K̂} d(k)/q(k). All three fields are zero for undecayed samplers.
	Decayed      bool
	DecayedEdges float64
	DecayHorizon uint64
}

// GlobalClustering returns α̂ = 3·N̂(△)/N̂(Λ), the paper's estimator of the
// global clustering coefficient, or 0 when the wedge estimate is 0.
func (e Estimates) GlobalClustering() float64 {
	if e.Wedges == 0 {
		return 0
	}
	return 3 * e.Triangles / e.Wedges
}

// VarGlobalClustering returns the delta-method approximation (Eq. 11) of
// Var[α̂]: since α̂ = 3·(N̂(△)/N̂(Λ)), it equals 9·Var(N̂(△)/N̂(Λ)).
func (e Estimates) VarGlobalClustering() float64 {
	return 9 * stats.RatioVariance(e.Triangles, e.Wedges,
		e.VarTriangles, e.VarWedges, e.CovTriangleWedge)
}

// TriangleInterval returns the 95% confidence interval for the triangle
// count, X̂ ± 1.96·sqrt(V̂).
func (e Estimates) TriangleInterval() stats.Interval {
	return stats.CI95(e.Triangles, e.VarTriangles)
}

// WedgeInterval returns the 95% confidence interval for the wedge count.
func (e Estimates) WedgeInterval() stats.Interval {
	return stats.CI95(e.Wedges, e.VarWedges)
}

// ClusteringInterval returns the 95% confidence interval for the global
// clustering coefficient.
func (e Estimates) ClusteringInterval() stats.Interval {
	return stats.CI95(e.GlobalClustering(), e.VarGlobalClustering())
}

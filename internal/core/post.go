package core

// EstimatePost implements Algorithm 2 (GPSEstimate): unbiased post-stream
// estimation of triangle and wedge counts, their variances and their
// covariance, from the current reservoir. It may be called at any point in
// the stream; the reservoir is only read.
//
// The computation is local per sampled edge (§4 "Efficiency"): for edge
// k=(v1,v2) the estimators enumerate the sampled neighborhoods of its
// endpoints, so the whole scan costs O(Σ_k min{deg(v1),deg(v2)}) ⊆ O(m^{3/2})
// and parallelizes over reservoir slots, mirroring the paper's "parallel for"
// loop. Beyond Algorithm 2, the same pass evaluates the triangle–wedge
// covariance of Eq. 12 via a per-edge factorization (see covTW below), which
// Table 1 needs for the post-stream clustering-coefficient intervals.
//
// The scan runs on the slot-indexed fast path: one O(m) pass precomputes
// q(slot) = min{1, w/z*} per heap arena slot (slotProbs), and the inner
// loops then resolve every enumerated neighbor and triangle edge through
// the adjacency slot runs — contiguous array reads, zero hash probes.
// Enumeration and summation order match the lookup-based reference
// (EstimatePostLookup) exactly, so the results are bit-identical, which the
// equality tests assert.
func EstimatePost(s *Sampler) Estimates {
	if s.Decayed() {
		// Forward decay retargets the estimators at the decayed counts: the
		// same scan, with per-motif decay factors (see decay.go).
		return estimatePostDecayed(s)
	}
	n := s.res.Len()
	probs := s.slotProbs()
	workers := estimateWorkers(n)
	parts := make([]partial, workers)
	parallelFor(n, workers, func(w, lo, hi int) {
		// Accumulate on the worker's own stack and publish once: adjacent
		// parts entries never see concurrent writes, so no padding games
		// are needed to avoid false sharing.
		var local partial
		for i := lo; i < hi; i++ {
			local.add(s.estimateEdge(s.res.heap.SlotAt(i), probs))
		}
		parts[w] = local
	})
	return reduceEstimates(parts, n, s.arrivals)
}

// reduceEstimates folds per-worker partials (in worker order, so the
// summation is deterministic for a fixed GOMAXPROCS) into the final
// Estimates, applying Algorithm 2's 1/3 and 1/2 multiplicity corrections.
// Both the slot-indexed and the lookup-based scans share it, keeping their
// final reductions bit-identical by construction.
func reduceEstimates(parts []partial, n int, arrivals uint64) Estimates {
	var total partial
	for i := range parts {
		total.nTri += parts[i].nTri
		total.vTri += parts[i].vTri
		total.cTri += parts[i].cTri
		total.nW += parts[i].nW
		total.vW += parts[i].vW
		total.cW += parts[i].cW
		total.covTW += parts[i].covTW
	}
	return Estimates{
		Triangles:        total.nTri / 3,
		Wedges:           total.nW / 2,
		VarTriangles:     total.vTri/3 + total.cTri,
		VarWedges:        total.vW/2 + total.cW,
		CovTriangleWedge: total.covTW,
		SampledEdges:     n,
		Arrivals:         arrivals,
	}
}

// edgeTotals is the per-edge outcome of the Algorithm 2 inner loops.
// Counts and variances are still unnormalized: every triangle is enumerated
// at each of its 3 edges and every wedge at each of its 2 edges; the caller
// applies the 1/3 and 1/2 factors. Covariance sums need no normalization
// because a pair of distinct triangles (or wedges) shares at most one edge,
// so each pair is enumerated at exactly one reservoir edge.
type edgeTotals struct {
	nTri, vTri, cTri float64 // N̂_k(△), V̂_k(△), Ĉ_k(△)
	nW, vW, cW       float64 // N̂_k(Λ), V̂_k(Λ), Ĉ_k(Λ)
	covTW            float64 // edge k's share of V̂(△,Λ), Eq. 12
}

// partial is one worker's accumulator. Workers accumulate locally and
// write their element of the shared parts slice exactly once, so the
// struct needs no cache-line padding.
type partial struct {
	nTri, vTri, cTri float64
	nW, vW, cW       float64
	covTW            float64
}

func (p *partial) add(t edgeTotals) {
	p.nTri += t.nTri
	p.vTri += t.vTri
	p.cTri += t.cTri
	p.nW += t.nW
	p.vW += t.vW
	p.cW += t.cW
	p.covTW += t.covTW
}

// estimateEdge runs Algorithm 2 lines 3-30 for the sampled edge stored at
// the given heap slot and returns the per-edge totals.
//
// Per-edge quantities, with q = q(k) and q1/q2 the probabilities of the
// other edges of each enumerated triangle (k1,k2,k) or wedge (k1,k):
//
//	N̂_k(△)  = Σ_τ∋k (q·q1·q2)⁻¹
//	V̂_k(△)  = Σ_τ∋k (q·q1·q2)⁻¹((q·q1·q2)⁻¹−1)
//	Ĉ_k(△)  = 2·q⁻¹(q⁻¹−1)·Σ_{τ<τ'∋k} (q1q2)⁻¹(q1'q2')⁻¹
//
// and analogously for wedges. For the triangle–wedge covariance (Eq. 12)
// the pair sum over {(τ,λ) : τ∩λ≠∅} factorizes per edge:
//
//	A_k = Σ_{τ∋k} Ŝ_{τ∖k},  B_k = Σ_{λ∋k} Ŝ_{λ∖k}
//	pairs sharing exactly k: q⁻¹(q⁻¹−1)·(A_k·B_k − D_k), where
//	D_k = Σ_{τ∋k} Ŝ_{τ∖k}(1/q1 + 1/q2) removes the wedge⊂triangle pairs,
//	which instead contribute Ŝ_τ(Ŝ_λ−1); each such pair is added once, at
//	the triangle edge opposite the wedge.
//
// Every probability is read from the slot table: the wedge partner's slot
// rides alongside the neighbor id in v1's (and v2's) slot run, and triangle
// detection is a two-pointer merge against v2's run — v1's neighbors arrive
// in ascending order, so a single monotone cursor into v2's sorted run
// replaces the per-neighbor hash probe of the membership test and yields
// the third edge's slot at the match position.
func (s *Sampler) estimateEdge(slot int32, probs []float64) edgeTotals {
	var t edgeTotals
	k := s.res.entryAt(slot).Edge
	invQ := 1 / probs[slot]

	// Iterate the smaller endpoint's sampled neighborhood for triangle
	// detection (§3.2 S4); wedges centered at both endpoints are
	// enumerated in their respective loops.
	v1, v2 := k.U, k.V
	n1, s1 := s.res.neighborRun(v1)
	n2, s2 := s.res.neighborRun(v2)
	if len(n1) > len(n2) {
		v1, v2 = v2, v1
		n1, s1, n2, s2 = n2, s2, n1, s1
	}

	var cTriPairs float64 // Σ_{i<j} over triangles at k (running, Algorithm 2 line 15)
	var cWPairs float64   // Σ_{i<j} over wedges at k (lines 20, 28)
	var aK, bK, dK float64
	var subWedge float64

	j := 0 // monotone cursor into v2's run (triangle membership merge)
	for i, v3 := range n1 {
		if v3 == v2 {
			continue // k itself is not a wedge partner
		}
		q1 := probs[s1[i]]
		// Triangle (k1,k2,k) when v3 also neighbors v2.
		for j < len(n2) && n2[j] < v3 {
			j++
		}
		if j < len(n2) && n2[j] == v3 {
			q2 := probs[s2[j]]
			inv12 := 1 / (q1 * q2)
			invAll := invQ * inv12
			t.nTri += invAll
			t.vTri += invAll * (invAll - 1)
			t.cTri += cTriPairs * inv12
			cTriPairs += inv12
			aK += inv12
			dK += inv12 * (1/q1 + 1/q2)
			subWedge += invAll * (inv12 - 1)
		}
		// Wedge (v3,v1,v2) centered at v1.
		invW := invQ / q1
		t.nW += invW
		t.vW += invW * (invW - 1)
		t.cW += cWPairs / q1
		cWPairs += 1 / q1
		bK += 1 / q1
	}
	for i, v3 := range n2 {
		if v3 == v1 {
			continue
		}
		q2 := probs[s2[i]]
		invW := invQ / q2
		t.nW += invW
		t.vW += invW * (invW - 1)
		t.cW += cWPairs / q2
		cWPairs += 1 / q2
		bK += 1 / q2
	}

	// Scale the pair sums into Ĉ_k (Algorithm 2 lines 29-30).
	scale := 2 * invQ * (invQ - 1)
	t.cTri *= scale
	t.cW *= scale
	// Triangle–wedge covariance share of edge k (Eq. 12; see doc comment).
	t.covTW = invQ*(invQ-1)*(aK*bK-dK) + subWedge
	return t
}

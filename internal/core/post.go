package core

import (
	"runtime"
	"sync"

	"gps/internal/graph"
)

// EstimatePost implements Algorithm 2 (GPSEstimate): unbiased post-stream
// estimation of triangle and wedge counts, their variances and their
// covariance, from the current reservoir. It may be called at any point in
// the stream; the reservoir is only read.
//
// The computation is local per sampled edge (§4 "Efficiency"): for edge
// k=(v1,v2) the estimators enumerate the sampled neighborhoods of its
// endpoints, so the whole scan costs O(Σ_k min{deg(v1),deg(v2)}) ⊆ O(m^{3/2})
// and parallelizes over reservoir slots, mirroring the paper's "parallel for"
// loop. Beyond Algorithm 2, the same pass evaluates the triangle–wedge
// covariance of Eq. 12 via a per-edge factorization (see covTW below), which
// Table 1 needs for the post-stream clustering-coefficient intervals.
func EstimatePost(s *Sampler) Estimates {
	n := s.res.Len()
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	parts := make([]partial, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(p *partial, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				s.estimateEdge(s.res.heap.At(i).Edge, p.add)
			}
		}(&parts[w], lo, hi)
	}
	wg.Wait()

	var total partial
	for i := range parts {
		total.nTri += parts[i].nTri
		total.vTri += parts[i].vTri
		total.cTri += parts[i].cTri
		total.nW += parts[i].nW
		total.vW += parts[i].vW
		total.cW += parts[i].cW
		total.covTW += parts[i].covTW
	}
	return Estimates{
		Triangles:        total.nTri / 3,
		Wedges:           total.nW / 2,
		VarTriangles:     total.vTri/3 + total.cTri,
		VarWedges:        total.vW/2 + total.cW,
		CovTriangleWedge: total.covTW,
		SampledEdges:     n,
		Arrivals:         s.arrivals,
	}
}

// edgeTotals is the per-edge outcome of the Algorithm 2 inner loops.
// Counts and variances are still unnormalized: every triangle is enumerated
// at each of its 3 edges and every wedge at each of its 2 edges; the caller
// applies the 1/3 and 1/2 factors. Covariance sums need no normalization
// because a pair of distinct triangles (or wedges) shares at most one edge,
// so each pair is enumerated at exactly one reservoir edge.
type edgeTotals struct {
	nTri, vTri, cTri float64 // N̂_k(△), V̂_k(△), Ĉ_k(△)
	nW, vW, cW       float64 // N̂_k(Λ), V̂_k(Λ), Ĉ_k(Λ)
	covTW            float64 // edge k's share of V̂(△,Λ), Eq. 12
}

// partial is one worker's accumulator; padded so adjacent workers' partials
// do not share a cache line.
type partial struct {
	nTri, vTri, cTri float64
	nW, vW, cW       float64
	covTW            float64
	_                [1]float64
}

func (p *partial) add(t edgeTotals) {
	p.nTri += t.nTri
	p.vTri += t.vTri
	p.cTri += t.cTri
	p.nW += t.nW
	p.vW += t.vW
	p.cW += t.cW
	p.covTW += t.covTW
}

// estimateEdge runs Algorithm 2 lines 3-30 for a single sampled edge k and
// hands the per-edge totals to sink.
//
// Per-edge quantities, with q = q(k) and q1/q2 the probabilities of the
// other edges of each enumerated triangle (k1,k2,k) or wedge (k1,k):
//
//	N̂_k(△)  = Σ_τ∋k (q·q1·q2)⁻¹
//	V̂_k(△)  = Σ_τ∋k (q·q1·q2)⁻¹((q·q1·q2)⁻¹−1)
//	Ĉ_k(△)  = 2·q⁻¹(q⁻¹−1)·Σ_{τ<τ'∋k} (q1q2)⁻¹(q1'q2')⁻¹
//
// and analogously for wedges. For the triangle–wedge covariance (Eq. 12)
// the pair sum over {(τ,λ) : τ∩λ≠∅} factorizes per edge:
//
//	A_k = Σ_{τ∋k} Ŝ_{τ∖k},  B_k = Σ_{λ∋k} Ŝ_{λ∖k}
//	pairs sharing exactly k: q⁻¹(q⁻¹−1)·(A_k·B_k − D_k), where
//	D_k = Σ_{τ∋k} Ŝ_{τ∖k}(1/q1 + 1/q2) removes the wedge⊂triangle pairs,
//	which instead contribute Ŝ_τ(Ŝ_λ−1); each such pair is added once, at
//	the triangle edge opposite the wedge.
func (s *Sampler) estimateEdge(k graph.Edge, sink func(edgeTotals)) {
	var t edgeTotals
	q := 1.0
	if ent := s.res.entry(k); ent != nil {
		q = s.probForWeight(ent.Weight)
	}
	invQ := 1 / q

	// Iterate the smaller endpoint's sampled neighborhood for triangle
	// detection (§3.2 S4); wedges centered at both endpoints are
	// enumerated in their respective loops.
	v1, v2 := k.U, k.V
	if s.res.Degree(v1) > s.res.Degree(v2) {
		v1, v2 = v2, v1
	}

	var cTriPairs float64 // Σ_{i<j} over triangles at k (running, Algorithm 2 line 15)
	var cWPairs float64   // Σ_{i<j} over wedges at k (lines 20, 28)
	var aK, bK, dK float64
	var subWedge float64

	s.res.Neighbors(v1, func(v3 graph.NodeID) bool {
		if v3 == v2 {
			return true // k itself is not a wedge partner
		}
		q1 := s.mustProb(v1, v3)
		// Triangle (k1,k2,k) when v3 also neighbors v2.
		if e2 := s.res.entry(graph.NewEdge(v2, v3)); e2 != nil {
			q2 := s.probForWeight(e2.Weight)
			inv12 := 1 / (q1 * q2)
			invAll := invQ * inv12
			t.nTri += invAll
			t.vTri += invAll * (invAll - 1)
			t.cTri += cTriPairs * inv12
			cTriPairs += inv12
			aK += inv12
			dK += inv12 * (1/q1 + 1/q2)
			subWedge += invAll * (inv12 - 1)
		}
		// Wedge (v3,v1,v2) centered at v1.
		invW := invQ / q1
		t.nW += invW
		t.vW += invW * (invW - 1)
		t.cW += cWPairs / q1
		cWPairs += 1 / q1
		bK += 1 / q1
		return true
	})
	s.res.Neighbors(v2, func(v3 graph.NodeID) bool {
		if v3 == v1 {
			return true
		}
		q2 := s.mustProb(v2, v3)
		invW := invQ / q2
		t.nW += invW
		t.vW += invW * (invW - 1)
		t.cW += cWPairs / q2
		cWPairs += 1 / q2
		bK += 1 / q2
		return true
	})

	// Scale the pair sums into Ĉ_k (Algorithm 2 lines 29-30).
	scale := 2 * invQ * (invQ - 1)
	t.cTri *= scale
	t.cW *= scale
	// Triangle–wedge covariance share of edge k (Eq. 12; see doc comment).
	t.covTW = invQ*(invQ-1)*(aK*bK-dK) + subWedge
	sink(t)
}

// mustProb returns the inclusion probability of the sampled edge {a,b}.
// Both loops above only present pairs that are edges of the reservoir
// adjacency, so a missing heap entry means the reservoir invariants are
// broken and panicking early is the right failure mode.
func (s *Sampler) mustProb(a, b graph.NodeID) float64 {
	ent := s.res.entry(graph.NewEdge(a, b))
	if ent == nil {
		panic("core: adjacency lists edge " + graph.NewEdge(a, b).String() + " missing from heap")
	}
	return s.probForWeight(ent.Weight)
}

package core

import (
	"testing"

	"gps/internal/order"
	"gps/internal/randx"
)

// TestProcessBatchMatchesProcess verifies the exact-equivalence contract of
// ProcessBatch: feeding the stream in batches of any size must reproduce
// the edge-by-edge sampler bit for bit — same reservoir entries, same
// threshold, same arrival counts — because batching only amortizes call
// overhead, it never reorders RNG draws or sampling decisions.
func TestProcessBatchMatchesProcess(t *testing.T) {
	stream := goldenStream()
	for _, weight := range []struct {
		name string
		fn   WeightFunc
	}{{"uniform", UniformWeight}, {"triangle", TriangleWeight}} {
		for _, batch := range []int{1, 7, 64, 1000, len(stream)} {
			seq, err := NewSampler(Config{Capacity: 500, Weight: weight.fn, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			bat, err := NewSampler(Config{Capacity: 500, Weight: weight.fn, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			seqKept := 0
			for _, e := range stream {
				if seq.Process(e) {
					seqKept++
				}
			}
			batKept := 0
			for lo := 0; lo < len(stream); lo += batch {
				hi := lo + batch
				if hi > len(stream) {
					hi = len(stream)
				}
				batKept += bat.ProcessBatch(stream[lo:hi])
			}
			if got, want := fingerprint(bat), fingerprint(seq); got != want {
				t.Errorf("%s/batch=%d: fingerprint %#x != sequential %#x", weight.name, batch, got, want)
			}
			if batKept != seqKept {
				t.Errorf("%s/batch=%d: kept %d edges, sequential kept %d", weight.name, batch, batKept, seqKept)
			}
		}
	}
}

// TestMergeIsExactTopM checks the priority-sampling merge identity on
// concrete shard reservoirs: the merged sampler must hold exactly the
// Capacity highest-priority entries of the shard union, and its threshold
// must be the maximum of the shard thresholds and every priority the merge
// discarded.
func TestMergeIsExactTopM(t *testing.T) {
	stream := goldenStream()
	const shards = 4
	const capacity = 300

	// Partition the stream by edge key, mimicking the engine's routing.
	parts := make([][]int, shards) // indices into stream
	for i, e := range stream {
		parts[e.Key()%shards] = append(parts[e.Key()%shards], i)
	}
	samplers := make([]*Sampler, shards)
	for p := range samplers {
		s, err := NewSampler(Config{Capacity: capacity, Seed: uint64(p + 1)})
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range parts[p] {
			s.Process(stream[i])
		}
		samplers[p] = s
	}

	// Brute-force reference: all shard entries sorted by priority.
	var union []order.Entry
	wantZ := 0.0
	for _, s := range samplers {
		if s.Threshold() > wantZ {
			wantZ = s.Threshold()
		}
		for i := 0; i < s.res.Len(); i++ {
			union = append(union, *s.res.heap.At(i))
		}
	}
	if len(union) <= capacity {
		t.Fatalf("test needs an overflowing union, got %d entries", len(union))
	}
	// Selection sort of the top boundary is overkill; sort fully.
	for i := range union {
		for j := i + 1; j < len(union); j++ {
			if union[j].Priority > union[i].Priority {
				union[i], union[j] = union[j], union[i]
			}
		}
	}
	wantTop := map[uint64]bool{}
	for _, ent := range union[:capacity] {
		wantTop[ent.Edge.Key()] = true
	}
	for _, ent := range union[capacity:] {
		if ent.Priority > wantZ {
			wantZ = ent.Priority
		}
	}

	merged, err := Merge(samplers, Config{Capacity: capacity, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if merged.res.Len() != capacity {
		t.Fatalf("merged Len = %d, want %d", merged.res.Len(), capacity)
	}
	for i := 0; i < merged.res.Len(); i++ {
		ent := merged.res.heap.At(i)
		if !wantTop[ent.Edge.Key()] {
			t.Errorf("merged sample holds %v, not in the top-%d of the union", ent.Edge, capacity)
		}
	}
	if merged.Threshold() != wantZ {
		t.Errorf("merged threshold = %v, want %v", merged.Threshold(), wantZ)
	}
	var wantArrivals uint64
	for _, s := range samplers {
		wantArrivals += s.Arrivals()
	}
	if merged.Arrivals() != wantArrivals {
		t.Errorf("merged arrivals = %d, want %d", merged.Arrivals(), wantArrivals)
	}
}

// TestMergeSingleAndErrors covers the degenerate merge inputs.
func TestMergeSingleAndErrors(t *testing.T) {
	if _, err := Merge(nil, Config{Capacity: 5}); err == nil {
		t.Error("Merge(nil) did not error")
	}
	s, _ := NewSampler(Config{Capacity: 5, Seed: 1})
	if _, err := Merge([]*Sampler{s}, Config{Capacity: 0}); err == nil {
		t.Error("Merge with invalid config did not error")
	}
	rng := randx.New(3)
	for i := 0; i < 50; i++ {
		s.Process(goldenStream()[rng.Intn(1000)])
	}
	m, err := Merge([]*Sampler{s}, Config{Capacity: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.res.Len() != s.res.Len() && m.res.Len() != 5 {
		t.Errorf("single-shard merge Len = %d", m.res.Len())
	}
	if m.Threshold() < s.Threshold() {
		t.Errorf("merged threshold %v below shard threshold %v", m.Threshold(), s.Threshold())
	}
}

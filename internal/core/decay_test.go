package core

import (
	"bytes"
	"math"
	"testing"

	"gps/internal/exact"
	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/randx"
	"gps/internal/stats"
)

// timedGoldenStream is the golden stream stamped with event time = stream
// position, the canonical activity-stream shape the decay tests run over.
func timedGoldenStream() []graph.Edge {
	edges := goldenStream()
	for i := range edges {
		edges[i].TS = uint64(i + 1)
	}
	return edges
}

// TestDecayZeroValueIsBitIdentical pins the acceptance criterion that the
// Decay zero value changes nothing: a sampler fed a *timestamped* stream
// with decay off must reproduce the undecayed golden fingerprints (the
// timestamps ride along but never influence a draw or a weight).
func TestDecayZeroValueIsBitIdentical(t *testing.T) {
	stream := timedGoldenStream()
	for _, tc := range []struct {
		name   string
		weight WeightFunc
		golden uint64
	}{
		{"uniform", UniformWeight, 0x5b49143286be7f17},
		{"triangle", TriangleWeight, 0xc5e3ff79d68a14e1},
		{"adjacency", AdjacencyWeight, 0x06ff49e9783b2bdc},
	} {
		s, err := NewSampler(Config{Capacity: 2000, Weight: tc.weight, Seed: 0xD5})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range stream {
			s.Process(e)
		}
		if got := fingerprint(s); got != tc.golden {
			t.Errorf("%s: fingerprint %#x, want golden %#x", tc.name, got, tc.golden)
		}
	}
}

// TestDecayConstantTimeMatchesUndecayed exploits that with every edge at
// one shared event time the boost is exactly exp(0)=1 and every decay
// factor exactly 1, so the decayed pipeline must match the undecayed one
// bit for bit: same sample, same threshold, and EstimatePost/InStream
// estimates float64-equal term by term.
func TestDecayConstantTimeMatchesUndecayed(t *testing.T) {
	base := goldenStream()
	constTS := make([]graph.Edge, len(base))
	for i, e := range base {
		constTS[i] = e.At(777)
	}
	mk := func(decay Decay, edges []graph.Edge) (*Sampler, *InStream) {
		in, err := NewInStream(Config{Capacity: 1500, Weight: TriangleWeight, Seed: 0xC0, Decay: decay})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range edges {
			in.Process(e)
		}
		return in.Sampler(), in
	}
	sPlain, inPlain := mk(Decay{}, base)
	sDecay, inDecay := mk(Decay{HalfLife: 50}, constTS)

	if fingerprint(sPlain) != fingerprint(sDecay) {
		t.Fatal("constant-time decayed sampler diverged from the undecayed sampler")
	}
	a, b := EstimatePost(sPlain), EstimatePost(sDecay)
	cmp := func(name string, x, y float64) {
		if x != y {
			t.Errorf("%s: undecayed %v vs constant-time decayed %v (must be float64-equal)", name, x, y)
		}
	}
	cmp("post triangles", a.Triangles, b.Triangles)
	cmp("post wedges", a.Wedges, b.Wedges)
	cmp("post var triangles", a.VarTriangles, b.VarTriangles)
	cmp("post var wedges", a.VarWedges, b.VarWedges)
	cmp("post covTW", a.CovTriangleWedge, b.CovTriangleWedge)
	if !b.Decayed || b.DecayHorizon != 777 {
		t.Fatalf("decayed flags: %+v", b)
	}
	ia, ib := inPlain.Estimates(), inDecay.Estimates()
	cmp("instream triangles", ia.Triangles, ib.Triangles)
	cmp("instream wedges", ia.Wedges, ib.Wedges)
	cmp("instream var triangles", ia.VarTriangles, ib.VarTriangles)
	cmp("instream var wedges", ia.VarWedges, ib.VarWedges)
	cmp("instream covTW", ia.CovTriangleWedge, ib.CovTriangleWedge)
	// With every decay factor 1, the decayed edge count is the arrival count.
	if got := ib.DecayedEdges; got != float64(ib.Arrivals) {
		t.Fatalf("decayed edge count %v, want %d", got, ib.Arrivals)
	}
}

// decayedBound is one committed NRMSE tolerance for the decayed estimators.
type decayedBound struct {
	m                 int
	tri, wedge, edges float64
	inTri, inWedge    float64
}

// TestDecayedEstimatorAccuracyNRMSE is the temporal counterpart of
// TestEstimatorAccuracyNRMSE: it pins the NRMSE of the forward-decayed
// post-stream and in-stream estimators against exact decayed counts on a
// fixed-seed clustered stream timestamped by position, half-life = 1/5 of
// the stream span. Bounds are committed at ~2× the observed error.
func TestDecayedEstimatorAccuracyNRMSE(t *testing.T) {
	edges := gen.HolmeKim(20000, 10, 0.3, 0xACC)
	span := len(edges)
	halfLife := float64(span) / 5
	lambda := math.Ln2 / halfLife

	const trials = 3
	// Observed on the fixed seeds (2026-07): m=1K tri 1.00 / wedge 0.097 /
	// edges 0.039 / in-tri 1.22 / in-wedge 0.054; m=10K 0.287 / 0.014 /
	// 0.002 / 0.062 / 0.008; m=100K 0.008 / 0.007 / 0.002 / 0.006 / 0.001.
	// A triangle NRMSE near 1.0 at m=1K means the sparse decayed sample
	// holds almost no recent triangle — the bound there only guards against
	// over-counting blow-ups.
	bounds := []decayedBound{
		{m: 1_000, tri: 2.0, wedge: 0.20, edges: 0.08, inTri: 2.5, inWedge: 0.12},
		{m: 10_000, tri: 0.60, wedge: 0.04, edges: 0.02, inTri: 0.15, inWedge: 0.025},
		{m: 100_000, tri: 0.025, wedge: 0.016, edges: 0.005, inTri: 0.02, inWedge: 0.01},
	}
	for _, b := range bounds {
		// Each trial permutes — and therefore re-timestamps — the stream,
		// so the exact decayed triangle/wedge counts differ per trial.
		// Normalize every estimate by its own trial's exact count and
		// measure NRMSE of the ratios against 1: pure estimator error.
		ratios := map[string][]float64{}
		for trial := 0; trial < trials; trial++ {
			perm := append([]graph.Edge(nil), edges...)
			randx.New(0xACC0+uint64(trial)).Shuffle(len(perm), func(i, j int) {
				perm[i], perm[j] = perm[j], perm[i]
			})
			for i := range perm {
				perm[i].TS = uint64(i + 1)
			}
			truth := exact.Decayed(perm, lambda, uint64(span))
			if truth.Triangles <= 0 || truth.Wedges <= 0 || truth.Edges <= 0 {
				t.Fatalf("degenerate decayed ground truth: %+v", truth)
			}
			in, err := NewInStream(Config{
				Capacity: b.m,
				Weight:   TriangleWeight,
				Seed:     0x5EED0 + uint64(b.m) + uint64(trial),
				Decay:    Decay{HalfLife: halfLife},
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range perm {
				in.Process(e)
			}
			post := EstimatePost(in.Sampler())
			ins := in.Estimates()
			ratios["triangles"] = append(ratios["triangles"], post.Triangles/truth.Triangles)
			ratios["wedges"] = append(ratios["wedges"], post.Wedges/truth.Wedges)
			ratios["edges"] = append(ratios["edges"], post.DecayedEdges/truth.Edges)
			ratios["instream/triangles"] = append(ratios["instream/triangles"], ins.Triangles/truth.Triangles)
			ratios["instream/wedges"] = append(ratios["instream/wedges"], ins.Wedges/truth.Wedges)

			// The in-stream decayed edge count is exact, not an estimate.
			if rel := math.Abs(ins.DecayedEdges-truth.Edges) / truth.Edges; rel > 1e-9 {
				t.Fatalf("m=%d trial %d: in-stream decayed edge count %v vs exact %v (rel %g)",
					b.m, trial, ins.DecayedEdges, truth.Edges, rel)
			}
		}
		check := func(motif string, bound float64) {
			nrmse := stats.NRMSE(ratios[motif], 1)
			t.Logf("m=%d %s: relative NRMSE %.4f (bound %.4f)", b.m, motif, nrmse, bound)
			if nrmse > bound {
				t.Errorf("m=%d %s: relative NRMSE %.4f exceeds committed bound %.4f — decayed estimator regressed",
					b.m, motif, nrmse, bound)
			}
		}
		check("triangles", b.tri)
		check("wedges", b.wedge)
		check("edges", b.edges)
		check("instream/triangles", b.inTri)
		check("instream/wedges", b.inWedge)
	}
}

// TestDecayedCheckpointRoundTrip pins decayed durability: a version-2
// document restores bit-identically (same fingerprint, same decay state,
// byte-equal estimates, byte-identical re-encoding), evolves exactly like
// the original on the remaining stream, and an undecayed checkpoint still
// serializes as version 1 byte for byte.
func TestDecayedCheckpointRoundTrip(t *testing.T) {
	stream := timedGoldenStream()
	cut := len(stream) / 2

	s, err := NewSampler(Config{Capacity: 1200, Weight: TriangleWeight, Seed: 0xDD, Decay: Decay{HalfLife: 900}})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range stream[:cut] {
		s.Process(e)
	}

	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf, "triangle"); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	if raw[4] != 2 {
		t.Fatalf("decayed checkpoint version %d, want 2", raw[4])
	}
	restored, err := ReadCheckpoint(bytes.NewReader(raw), nil)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(restored) != fingerprint(s) {
		t.Fatal("restored fingerprint differs")
	}
	lm, set := restored.DecayLandmark()
	lm0, set0 := s.DecayLandmark()
	if lm != lm0 || set != set0 || restored.DecayHorizon() != s.DecayHorizon() || restored.DecayConfig() != s.DecayConfig() {
		t.Fatalf("decay state: restored (%d,%v,%d,%+v) vs original (%d,%v,%d,%+v)",
			lm, set, restored.DecayHorizon(), restored.DecayConfig(),
			lm0, set0, s.DecayHorizon(), s.DecayConfig())
	}

	// Re-encoding the restored sampler reproduces the bytes.
	var again bytes.Buffer
	if err := restored.WriteCheckpoint(&again, "triangle"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, again.Bytes()) {
		t.Fatal("checkpoint → restore → checkpoint changed bytes")
	}

	// Crash equivalence: both consume the remaining stream identically.
	for _, e := range stream[cut:] {
		s.Process(e)
		restored.Process(e)
	}
	if fingerprint(restored) != fingerprint(s) {
		t.Fatal("restored sampler diverged on the remaining stream")
	}
	a, b := EstimatePost(s), EstimatePost(restored)
	if a != b {
		t.Fatalf("post estimates differ after resume:\n%+v\n%+v", a, b)
	}

	// An undecayed sampler still writes version 1.
	u, err := NewSampler(Config{Capacity: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	u.Process(graph.NewEdge(1, 2))
	var v1 bytes.Buffer
	if err := u.WriteCheckpoint(&v1, "uniform"); err != nil {
		t.Fatal(err)
	}
	if v1.Bytes()[4] != 1 {
		t.Fatalf("undecayed checkpoint version %d, want 1", v1.Bytes()[4])
	}
}

// TestDecayedInStreamCheckpointResume covers the in-stream document: the
// decayed accumulators (including the decayed-arrival total) survive, and a
// resumed run finishes byte-equal to an uninterrupted one.
func TestDecayedInStreamCheckpointResume(t *testing.T) {
	stream := timedGoldenStream()
	cut := 2 * len(stream) / 3

	full, err := NewInStream(Config{Capacity: 800, Weight: TriangleWeight, Seed: 0xE1, Decay: Decay{HalfLife: 1500}})
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewInStream(Config{Capacity: 800, Weight: TriangleWeight, Seed: 0xE1, Decay: Decay{HalfLife: 1500}})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range stream[:cut] {
		full.Process(e)
		part.Process(e)
	}
	var buf bytes.Buffer
	if err := part.WriteCheckpoint(&buf, "triangle", "bind=test"); err != nil {
		t.Fatal(err)
	}
	resumed, binding, err := ReadInStreamCheckpoint(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if binding != "bind=test" {
		t.Fatalf("binding %q", binding)
	}
	for _, e := range stream[cut:] {
		full.Process(e)
		resumed.Process(e)
	}
	a, b := full.Estimates(), resumed.Estimates()
	if a != b {
		t.Fatalf("in-stream estimates differ after resume:\n%+v\n%+v", a, b)
	}
	if !a.Decayed || a.DecayHorizon == 0 {
		t.Fatalf("expected decayed estimates, got %+v", a)
	}
}

// TestMergeDecayAgreement pins the merge-time contracts: merging decayed
// samplers requires a matching config and a shared landmark, and the merged
// sampler inherits landmark and max horizon.
func TestMergeDecayAgreement(t *testing.T) {
	cfg := Config{Capacity: 64, Seed: 7, Decay: Decay{HalfLife: 100}}
	mk := func(seed uint64, edges ...graph.Edge) *Sampler {
		c := cfg
		c.Seed = seed
		s, err := NewSampler(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range edges {
			s.Process(e)
		}
		return s
	}
	a := mk(1, graph.NewEdgeAt(1, 2, 10), graph.NewEdgeAt(2, 3, 30))
	b := mk(2, graph.NewEdgeAt(4, 5, 10), graph.NewEdgeAt(5, 6, 55))
	if err := b.SetDecayLandmark(10); err != nil {
		t.Fatal(err)
	}

	m, err := Merge([]*Sampler{a, b}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lm, set := m.DecayLandmark(); !set || lm != 10 {
		t.Fatalf("merged landmark (%d,%v), want (10,true)", lm, set)
	}
	if m.DecayHorizon() != 55 {
		t.Fatalf("merged horizon %d, want 55", m.DecayHorizon())
	}

	// Landmark disagreement is an error, not a silent mis-rank.
	c := mk(3, graph.NewEdgeAt(7, 8, 99))
	if _, err := Merge([]*Sampler{a, c}, cfg); err == nil {
		t.Fatal("merge across disagreeing landmarks accepted")
	}
	// Config disagreement too.
	other := cfg
	other.Decay.HalfLife = 10
	if _, err := Merge([]*Sampler{a, b}, other); err == nil {
		t.Fatal("merge with mismatched decay config accepted")
	}
}

// TestSetDecayLandmark covers the landmark pinning contract.
func TestSetDecayLandmark(t *testing.T) {
	s, err := NewSampler(Config{Capacity: 8, Seed: 1, Decay: Decay{HalfLife: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetDecayLandmark(5); err != nil {
		t.Fatal(err)
	}
	if err := s.SetDecayLandmark(5); err != nil {
		t.Fatalf("idempotent re-pin rejected: %v", err)
	}
	if err := s.SetDecayLandmark(6); err == nil {
		t.Fatal("moving a pinned landmark accepted")
	}
	s.Process(graph.NewEdgeAt(1, 2, 9))
	if lm, set := s.DecayLandmark(); !set || lm != 5 {
		t.Fatalf("landmark (%d,%v) after processing, want (5,true)", lm, set)
	}
	u, _ := NewSampler(Config{Capacity: 8, Seed: 1})
	if err := u.SetDecayLandmark(1); err == nil {
		t.Fatal("SetDecayLandmark on an undecayed sampler accepted")
	}
	if _, err := NewSampler(Config{Capacity: 8, Decay: Decay{HalfLife: -1}}); err == nil {
		t.Fatal("negative half-life accepted")
	}
}

// TestDecayOverflowPanics pins the numerics guard: a landmark-to-now span
// far past what float64 priorities represent must fail loudly.
func TestDecayOverflowPanics(t *testing.T) {
	s, err := NewSampler(Config{Capacity: 8, Seed: 1, Decay: Decay{HalfLife: 1}})
	if err != nil {
		t.Fatal(err)
	}
	s.Process(graph.NewEdgeAt(1, 2, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("overflowing decay boost did not panic")
		}
	}()
	s.Process(graph.NewEdgeAt(2, 3, 5000)) // ~5000 half-lives past the landmark
}

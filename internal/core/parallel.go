package core

import (
	"runtime"
	"sync"
)

// estimateWorkers returns the worker count for a parallel estimator scan
// over n items: GOMAXPROCS capped at n, and at least 1 so empty reservoirs
// still produce a (zero) partial.
func estimateWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelFor splits [0, n) into one contiguous chunk per worker and runs
// fn(w, lo, hi) for each non-empty chunk, returning when all complete — the
// paper's "parallel for" loop over reservoir slots, shared by every
// post-stream estimator. Chunk boundaries depend only on (n, workers), so a
// reduction that combines per-worker partials in worker order is a
// deterministic function of the reservoir for a fixed GOMAXPROCS. With one
// worker the chunk runs on the calling goroutine.
func parallelFor(n, workers int, fn func(w, lo, hi int)) {
	if workers <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// slotProbs builds the slot-indexed inclusion-probability table of the
// estimation fast path: probs[slot] = q = min{1, w/z*} for every sampled
// edge, indexed by the edge's heap arena slot. q depends only on the stored
// weight and the current threshold, so one O(m) pass replaces every
// per-enumeration hash probe of Algorithm 2's inner loops with a contiguous
// array read. Entries at freed arena slots are left 0 and are never read:
// adjacency slot runs list live slots only. The table is immutable and may
// be shared by any number of estimator workers; it is invalidated by the
// next Process.
func (s *Sampler) slotProbs() []float64 {
	probs := make([]float64, s.res.heap.ArenaLen())
	for i, n := 0, s.res.Len(); i < n; i++ {
		slot := s.res.heap.SlotAt(i)
		probs[slot] = s.probForWeight(s.res.heap.BySlot(slot).Weight)
	}
	return probs
}

package core

import (
	"errors"
	"fmt"
	"math"
	"reflect"

	"gps/internal/graph"
	"gps/internal/obs"
	"gps/internal/order"
	"gps/internal/randx"
)

// Config parameterizes a GPS sampler.
type Config struct {
	// Capacity is the reservoir size m (must be >= 1). GPS keeps the m
	// highest-priority edges seen so far.
	Capacity int
	// Weight is the sampling weight function W(k,K̂); nil means
	// UniformWeight (plain reservoir sampling).
	Weight WeightFunc
	// Seed makes the whole sampling run a deterministic function of the
	// stream order.
	Seed uint64
	// Decay enables forward-decay (time-decayed) sampling: each arriving
	// edge's weight is boosted by exp(λ(t-L)) for its event time t, so
	// recent edges dominate the sample and the estimators target decayed
	// counts (see the decay.go package notes). The zero value disables
	// decay, leaving behaviour bit-identical to earlier releases.
	Decay Decay
}

// Sampler implements Algorithm 1, GPS(m): graph priority sampling of an
// edge stream into a fixed-size reservoir.
//
// For each arriving edge k the sampler draws u(k) ~ Uniform(0,1], computes
// w(k) = W(k,K̂) against the current reservoir, assigns priority
// r(k) = w(k)/u(k), provisionally admits k, and, if the reservoir overflows
// its capacity m, evicts the minimum-priority edge k* and raises the
// threshold z* = max{z*, r(k*)}. At any time, the Horvitz-Thompson inclusion
// probability of a sampled edge is q(k) = min{1, w(k)/z*} (GPSNormalize).
//
// When the reservoir is full and the arriving priority is strictly below
// the current minimum, the provisional insert + evict pair would remove the
// arrival itself, so the sampler short-circuits: it only raises z* and never
// touches the heap or the topology index. Once the stream is long relative
// to m this rejection path handles almost every arrival, leaving the RNG
// draw and the weight evaluation as the whole per-edge cost.
//
// Sampler is not safe for concurrent use.
type Sampler struct {
	capacity   int
	weight     WeightFunc
	uniform    bool // weight is UniformWeight: skip the call and validation
	rng        *randx.RNG
	res        *Reservoir
	zstar      float64
	arrivals   uint64
	duplicates uint64

	// Turnstile-deletion counters. delApplied counts deletion records that
	// removed a resident edge; delUnsampled counts deletions of edges not in
	// the reservoir (already evicted or never admitted — applied vacuously).
	// Both are part of the stream position (Processed) so a checkpoint
	// resume over a deleting stream skips the right number of records.
	delApplied   uint64
	delUnsampled uint64

	// accepts/evicts are estimator self-telemetry: arrivals admitted to the
	// reservoir and previously-resident edges evicted by later arrivals, so
	// res.Len() == accepts - evicts at all times. They are plain fields (not
	// atomics) so Clone's struct copy stays legal; readers only see them via
	// immutable clones or behind the engine's admission barrier. Maintained
	// only when obs.Enabled (zero under the gps_noobs build tag) and never
	// serialized in checkpoints — a restored sampler restarts them at zero.
	accepts uint64
	evicts  uint64

	// Forward-decay state (zero when decay is off; see decay.go). lambda is
	// ln2/HalfLife, landmark is L (pinned by the first arrival, the config,
	// or SetDecayLandmark), lastTS is the horizon T = max event time seen.
	decay       Decay
	lambda      float64
	landmark    uint64
	landmarkSet bool
	lastTS      uint64
}

// NewSampler returns a Sampler for the given configuration.
func NewSampler(cfg Config) (*Sampler, error) {
	if cfg.Capacity < 1 {
		return nil, errors.New("core: Capacity must be at least 1")
	}
	if err := cfg.Decay.validate(); err != nil {
		return nil, err
	}
	w, uniform := normalizeWeight(cfg.Weight)
	return &Sampler{
		capacity: cfg.Capacity,
		weight:   w,
		uniform:  uniform,
		rng:      randx.New(cfg.Seed),
		res:      newReservoir(cfg.Capacity),
		decay:    cfg.Decay,
		lambda:   cfg.Decay.lambda(),
	}, nil
}

// normalizeWeight maps a configured weight function to the one the sampler
// stores, reporting whether it is the uniform fast path: nil and an
// explicitly-passed UniformWeight both qualify (one reflect call at
// construction, none on the hot path). NewSampler and the checkpoint
// decoder share it so a restored sampler classifies its weight exactly like
// a fresh one.
func normalizeWeight(w WeightFunc) (WeightFunc, bool) {
	if w == nil {
		return UniformWeight, true
	}
	return w, reflect.ValueOf(w).Pointer() == reflect.ValueOf(UniformWeight).Pointer()
}

// Process handles one edge arrival (procedure GPSUpdate of Algorithm 1) and
// reports whether the edge is in the reservoir afterwards. Re-arrivals of an
// already-sampled edge are counted and ignored: the paper's stream model
// assumes unique edges (§3.1), so duplicates indicate the stream was not
// simplified upstream.
func (s *Sampler) Process(e graph.Edge) bool {
	if e.Del {
		s.deleteEdge(e)
		return false
	}
	if s.res.Contains(e) {
		s.duplicates++
		return true
	}
	var w float64
	if s.uniform {
		w = 1
	} else {
		w = s.weight(e, s.res)
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic(fmt.Sprintf("core: weight function returned invalid weight %v for edge %v", w, e))
		}
	}
	return s.processWeighted(e, w)
}

// processWeighted is the sampling step with the arrival's weight W(k,K̂)
// already evaluated. It is bit-identical to Process on a non-duplicate
// arrival fed the same weight value: weight functions see neither the
// arrival counter nor the RNG, so evaluating W before the counter bump and
// the uniform draw commutes. InStream uses it to inject the triangle count
// its estimate pass already enumerated instead of re-running the
// common-neighbor merge inside TriangleWeight. Callers must have ruled out
// duplicates and guarantee w is the (strictly positive, finite) value
// s.weight would return for e against the current reservoir.
func (s *Sampler) processWeighted(e graph.Edge, w float64) bool {
	s.arrivals++
	u := s.rng.Uniform01()
	if s.lambda > 0 {
		// Forward decay: boost by g(t)/g(L) and stamp the effective event
		// time onto the local copy, so the stored entry carries it.
		w = s.decayWeight(&e, w)
	}
	r := w / u

	if s.res.Len() == s.capacity && r < s.res.MinPriority() {
		// Rejection fast path: inserting and evicting the minimum of the
		// m+1 candidates would evict e itself (its priority is strictly
		// the least), leaving only the threshold update behind. Ties fall
		// through to the general path so eviction order is bit-identical
		// to the insert-then-evict formulation.
		if r > s.zstar {
			s.zstar = r
		}
		return false
	}

	// Provisional inclusion, then evict the minimum of the m+1 candidates.
	s.res.insert(order.Entry{Edge: e, Weight: w, Priority: r})
	if s.res.Len() > s.capacity {
		min := s.res.evictMin()
		if min.Priority > s.zstar {
			s.zstar = min.Priority
		}
		if min.Edge == e {
			return false
		}
		if obs.Enabled {
			s.evicts++
		}
	}
	if obs.Enabled {
		s.accepts++
	}
	return true
}

// deleteEdge applies a turnstile deletion record: if the edge is resident it
// is removed through the heap's arbitrary-position removal and dropped from
// the adjacency index; otherwise the deletion applies vacuously (the edge
// was evicted earlier or never admitted). Deletions are deterministic — no
// RNG draw, no threshold change — so a run containing them stays a
// bit-identical function of the stream order, and the surviving edges keep
// their original inclusion probabilities q(k) = min{1, w(k)/z*}: z* reflects
// evictions the sampler actually performed, which deletion does not revisit.
// Reports whether a resident edge was removed.
func (s *Sampler) deleteEdge(e graph.Edge) bool {
	if _, ok := s.res.remove(e.Insert()); ok {
		s.delApplied++
		return true
	}
	s.delUnsampled++
	return false
}

// ProcessBatch handles a batch of edge arrivals and returns how many of
// them were in the reservoir immediately after their own sampling step. It
// is exactly equivalent to calling Process on each edge in order — same RNG
// draws, same reservoir, same threshold (a tested invariant) — per-edge
// cost is dominated by the sampling work itself, not call overhead. It
// exists as the bulk-ingestion surface: the unit of work the sharded
// engine hands to each shard, and the natural interface for callers that
// buffer arrivals.
func (s *Sampler) ProcessBatch(edges []graph.Edge) int {
	kept := 0
	for _, e := range edges {
		if s.Process(e) {
			kept++
		}
	}
	return kept
}

// Clone returns a deep copy of the sampler frozen at its current state:
// reservoir, threshold, counters and RNG position are all duplicated, so the
// clone and the original evolve independently and deterministically — fed
// the same suffix, both produce bit-identical reservoirs. Cloning is the
// copy-on-read primitive behind engine.Parallel.Snapshot: a clone can feed
// any estimator (or keep sampling a what-if continuation) while the original
// keeps consuming the live stream.
//
// The weight function itself is shared, not copied. For the built-in pure
// weights this is invisible; for a stateful weight (NewAdaptiveTriangleWeight)
// the adaptation state remains shared, so only one of the two forks should
// continue processing — read-only uses of the clone (estimation, snapshots)
// are always safe.
func (s *Sampler) Clone() *Sampler {
	c := *s
	c.rng = s.rng.Clone()
	c.res = s.res.clone()
	return &c
}

// CloneReusing is Clone drawing its backing arrays (heap arena, edge-key
// table, adjacency runs, RNG state) from recycle: a sampler previously
// returned by Clone or CloneReusing that the caller guarantees is retired —
// referenced nowhere else and never used again. Reusing a retired clone's
// memory makes repeated snapshotting of a steady-state reservoir
// allocation-free; the engine's dirty-shard snapshots feed it from a
// sync.Pool. A nil recycle is identical to Clone. The returned sampler is
// bit-identical to what Clone would have returned.
func (s *Sampler) CloneReusing(recycle *Sampler) *Sampler {
	if recycle == nil {
		return s.Clone()
	}
	c := recycle
	rng, res := c.rng, c.res
	*c = *s
	*rng = *s.rng
	c.rng = rng
	c.res = s.res.cloneInto(res)
	return c
}

// Threshold returns z*, the largest priority ever evicted (the (m+1)-st
// highest priority seen). It is 0 until the reservoir first overflows, in
// which case every sampled edge has inclusion probability 1.
func (s *Sampler) Threshold() float64 { return s.zstar }

// Arrivals returns the number of distinct edges processed (the stream time t).
func (s *Sampler) Arrivals() uint64 { return s.arrivals }

// Duplicates returns the number of ignored duplicate arrivals.
func (s *Sampler) Duplicates() uint64 { return s.duplicates }

// Accepts returns the number of arrivals admitted to the reservoir.
// Process-local telemetry: zero under the gps_noobs build tag and not
// carried through checkpoints.
func (s *Sampler) Accepts() uint64 { return s.accepts }

// Evicts returns the number of previously-resident edges evicted by later
// arrivals; Accepts() - Evicts() is the current reservoir fill. Same
// caveats as Accepts.
func (s *Sampler) Evicts() uint64 { return s.evicts }

// Deletions returns the turnstile-deletion counters: applied removed a
// resident edge, unsampled applied vacuously to an edge not in the
// reservoir.
func (s *Sampler) Deletions() (applied, unsampled uint64) {
	return s.delApplied, s.delUnsampled
}

// Processed returns the stream position: the total number of records handed
// to Process (distinct arrivals, ignored duplicates, and deletion records).
// A restore that replays the original stream must skip exactly this many
// records.
func (s *Sampler) Processed() uint64 {
	return s.arrivals + s.duplicates + s.delApplied + s.delUnsampled
}

// Capacity returns the reservoir capacity m.
func (s *Sampler) Capacity() int { return s.capacity }

// Reservoir exposes the sampled subgraph for estimation and for weight
// functions. Callers must not retain entry pointers across Process calls.
func (s *Sampler) Reservoir() *Reservoir { return s.res }

// probForWeight returns q = min{1, w/z*}, the conditional inclusion
// probability of an edge with stored weight w given the current threshold
// (GPSNormalize, Algorithm 1 lines 15-17). With z* = 0 no edge has ever
// been evicted and every sampled edge has probability 1.
func (s *Sampler) probForWeight(w float64) float64 {
	if s.zstar <= 0 || w >= s.zstar {
		return 1
	}
	return w / s.zstar
}

// InclusionProb returns the Horvitz-Thompson inclusion probability
// q(e) = min{1, w(e)/z*} of a sampled edge, with ok=false when e is not in
// the reservoir (its estimator value is implicitly zero).
func (s *Sampler) InclusionProb(e graph.Edge) (q float64, ok bool) {
	w, ok := s.res.Weight(e)
	if !ok {
		return 0, false
	}
	return s.probForWeight(w), true
}

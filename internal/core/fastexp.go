package core

import "math"

// fastExp is the decay hot path's e^x: a range-reduced table-plus-polynomial
// evaluation in the style of the ARM optimized-routines / musl exp, tuned
// for the two shapes forward decay actually evaluates — the admission boost
// exp(λ(t-L)) (one call per arrival) and the estimation-side decay factors
// exp(-λ(T-t)) (one call per sampled edge or motif). It avoids math.Exp's
// special-case ladder and its larger table, and inlines to straight-line
// float arithmetic: in the ingest benchmark it takes decayed uniform ingest
// from ~3.2× the undecayed cost down to ~1.2×.
//
// # Algorithm
//
// Write x = k·(ln2/128) + r with k = round(x·128/ln2) and |r| ≤ ln2/256.
// Then
//
//	e^x = 2^(k/128) · e^r = 2^e · T[j] · e^r,   e = k>>7, j = k&127,
//
// with T[j] = 2^(j/128) a 128-entry table. k is extracted with the classic
// shifter trick (adding 1.5·2^52 forces round-to-nearest-even at integer
// granularity), r with a two-term Cody–Waite reduction (ln2/128 split into
// a 36-bit head, exact when multiplied by |k| < 2^17, plus a tail), e^r
// with a degree-5 Taylor polynomial whose truncation error at |r| ≤ 0.00271
// is below 6e-19 — leaving the table lookup and the final multiply as the
// only rounding steps, ~0.5 ulp each. The sweep test pins the composed
// error at ≤ 3 ulps against math.Exp (≈ 6.7e-16 relative, worst observed 3;
// libm itself carries up to 1 ulp of that) over the full ±700 range plus
// dense near-zero and reduction-boundary sweeps.
//
// # Domain
//
// The fast path covers |x| ≤ 700, where 2^e·y stays comfortably inside
// normal float64 range and the exponent-add scaling below cannot wrap;
// anything else (NaN, ±Inf, overflow range, the subnormal tail below
// e^-700 ≈ 1e-304) falls back to math.Exp. The sampler's own overflow
// policy is unchanged: boosts beyond ~1000 half-lives still reach +Inf
// (via the fallback) and still trip DecayOverflowError.
//
// decayExp — the name the decay code calls — resolves to fastExp by
// default and to math.Exp under the gps_exactexp build tag, which exists
// so the bit-exactness twin suites can compare the two paths.
func fastExp(x float64) float64 {
	if !(x >= -700 && x <= 700) {
		return math.Exp(x) // NaN, ±Inf, overflow and subnormal tails
	}
	z := x*invLn2N + expShifter
	kd := z - expShifter // round(x·128/ln2), exactly
	k := int64(kd)
	r := x - kd*ln2NHi - kd*ln2NLo // |r| ≤ ln2/256, head product exact
	// e^r - 1 ≈ r + r²/2 + r³/6 + r⁴/24 + r⁵/120 (Horner, truncation < 6e-19)
	r2 := r * r
	p := r + r2*(0.5+r*(1.0/6+r*(1.0/24+r*(1.0/120))))
	y := expTable[k&127]
	y += y * p // 2^(j/128)·e^r, still within (0.99, 2)
	// Scale by 2^(k>>7) by adding the exponent directly into the bit
	// pattern; |x| ≤ 700 keeps the biased exponent strictly inside (0,2047),
	// so this is an exact multiply by a power of two.
	return math.Float64frombits(math.Float64bits(y) + uint64(k>>7)<<52)
}

const (
	invLn2N    = 0x1.71547652b82fep+7  // 128/ln2
	ln2NHi     = 0x1.62e42fefa0000p-8  // head of ln2/128: 36 bits, k·head exact
	ln2NLo     = 0x1.cf79abc9e3b3ap-47 // ln2/128 - ln2NHi
	expShifter = 0x1.8p52              // 1.5·2^52: add+subtract rounds to integer
)

// expTable[j] = 2^(j/128), correctly rounded. Built once at init from
// math.Exp2 rather than pasted as literals; the accuracy suite bounds the
// composed result against math.Exp directly, so the table cannot drift
// unnoticed.
var expTable = func() (t [128]float64) {
	for j := range t {
		t[j] = math.Exp2(float64(j) / 128)
	}
	return
}()

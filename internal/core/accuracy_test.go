package core

import (
	"testing"

	"gps/internal/exact"
	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/randx"
	"gps/internal/stats"
)

// accuracyBound is one committed NRMSE tolerance: sample size m against
// per-motif ceilings. The values were calibrated on the fixed-seed runs
// below (observed NRMSE roughly halves per decade of m) and committed at
// ~2× the observed error, so a genuine estimator regression — a broken
// probability table, a mis-weighted Horvitz-Thompson term, a biased merge —
// fails tier-1 even though it cannot break the bit-exactness tests, while
// seed-level noise cannot.
type accuracyBound struct {
	m                            int
	tri, wedge, cliques4, stars3 float64
}

// TestEstimatorAccuracyNRMSE is the statistical-accuracy regression
// harness: it pins the NRMSE of the four post-stream motif estimators
// against exact counts on a fixed-seed clustered graph (~200K edges)
// across sample sizes m ∈ {1K, 10K, 100K}, with the paper's triangle
// weight. Bit-exactness tests catch refactors that change behaviour;
// this harness catches changes that keep determinism but degrade the
// estimators themselves.
func TestEstimatorAccuracyNRMSE(t *testing.T) {
	edges := gen.HolmeKim(20000, 10, 0.3, 0xACC)
	g := graph.BuildStatic(edges)
	truth := map[string]float64{
		"triangles": float64(exact.Triangles(g)),
		"wedges":    float64(exact.Wedges(g)),
		"cliques4":  float64(exact.Cliques4(g)),
		"stars3":    float64(exact.Stars3(g)),
	}
	for name, v := range truth {
		if v <= 0 {
			t.Fatalf("degenerate ground truth: %s = %v", name, v)
		}
	}
	t.Logf("graph: %d edges, truth %v", len(edges), truth)

	const trials = 3
	// Observed on the fixed seeds (2026-07): m=1K tri 1.00 / wedge 0.091 /
	// c4 1.00 / s3 0.177; m=10K 0.087 / 0.010 / 1.00 / 0.043; m=100K
	// 0.010 / 0.002 / 0.049 / 0.012. A 4-clique NRMSE of exactly 1.0 means
	// the sparse samples contain no complete clique (expected: variance
	// grows with the sixth power of inverse probabilities), so the small-m
	// clique bounds only guard against over-counting blow-ups.
	bounds := []accuracyBound{
		{m: 1_000, tri: 2.0, wedge: 0.20, cliques4: 2.5, stars3: 0.40},
		{m: 10_000, tri: 0.20, wedge: 0.025, cliques4: 2.5, stars3: 0.10},
		{m: 100_000, tri: 0.025, wedge: 0.005, cliques4: 0.12, stars3: 0.03},
	}
	for _, b := range bounds {
		got := map[string][]float64{}
		for trial := 0; trial < trials; trial++ {
			perm := append([]graph.Edge(nil), edges...)
			randx.New(0xACC0+uint64(trial)).Shuffle(len(perm), func(i, j int) {
				perm[i], perm[j] = perm[j], perm[i]
			})
			s, err := NewSampler(Config{
				Capacity: b.m,
				Weight:   TriangleWeight,
				Seed:     0x5EED0 + uint64(b.m) + uint64(trial),
			})
			if err != nil {
				t.Fatal(err)
			}
			s.ProcessBatch(perm)
			est := EstimatePost(s)
			got["triangles"] = append(got["triangles"], est.Triangles)
			got["wedges"] = append(got["wedges"], est.Wedges)
			got["cliques4"] = append(got["cliques4"], EstimateCliques4Post(s))
			got["stars3"] = append(got["stars3"], EstimateStars3Post(s))
		}
		check := func(motif string, bound float64) {
			nrmse := stats.NRMSE(got[motif], truth[motif])
			t.Logf("m=%d %s: NRMSE %.4f (bound %.4f)", b.m, motif, nrmse, bound)
			if nrmse > bound {
				t.Errorf("m=%d %s: NRMSE %.4f exceeds committed bound %.4f — estimator accuracy regressed",
					b.m, motif, nrmse, bound)
			}
		}
		check("triangles", b.tri)
		check("wedges", b.wedge)
		check("cliques4", b.cliques4)
		check("stars3", b.stars3)
	}
}

package core

import "gps/internal/graph"

// WeightFunc computes the sampling weight W(k, K̂) of an arriving edge k
// given the current reservoir topology (§3.2). Weights must be strictly
// positive and finite: the edge priority is r(k) = W(k,K̂)/u(k) with
// u(k) ∈ (0,1], so a zero weight would give an edge no chance of retention
// and break the Horvitz-Thompson normalization.
//
// The paper's variance-minimization analysis (§3.5) shows that to minimize
// the incremental estimation variance for a target subgraph class J, the
// weight of an arriving edge should be proportional to the number of
// members of J the edge completes in the candidate set, plus a default so
// that edges not (yet) participating in J remain sampleable.
type WeightFunc func(e graph.Edge, r *Reservoir) float64

// UniformWeight assigns every edge weight 1, which reduces GPS to standard
// uniform reservoir sampling (§3.2: "if we set W(k,K̂)=1 for every k,
// Algorithm 1 leads to uniform sampling").
func UniformWeight(graph.Edge, *Reservoir) float64 { return 1 }

// TriangleWeight is the paper's weight for triangle-focused sampling (§4):
// W(k,K̂) = 9·|△̂(k)| + 1, where |△̂(k)| is the number of triangles edge k
// completes in the sampled graph. The constant 9 scales the
// variance-minimizing count term against the default weight 1 that keeps
// triangle-free edges sampleable.
func TriangleWeight(e graph.Edge, r *Reservoir) float64 {
	return 9*float64(r.CountCommonNeighbors(e.U, e.V)) + 1
}

// NewTriangleWeight generalizes TriangleWeight with configurable coefficient
// and default: W(k,K̂) = coef·|△̂(k)| + base. It panics if base <= 0 (every
// edge needs positive weight) or coef < 0.
func NewTriangleWeight(coef, base float64) WeightFunc {
	if base <= 0 || coef < 0 {
		panic("core: NewTriangleWeight requires base > 0 and coef >= 0")
	}
	return func(e graph.Edge, r *Reservoir) float64 {
		return coef*float64(r.CountCommonNeighbors(e.U, e.V)) + base
	}
}

// AdjacencyWeight weights an edge by the number of sampled edges adjacent to
// it plus 1 — the wedge-oriented choice from §3.2 ("the number of edges in
// the currently sampled graph that are adjacent to an arriving edge"). It
// biases the sample toward high-degree regions, which helps wedge-dominated
// statistics.
func AdjacencyWeight(e graph.Edge, r *Reservoir) float64 {
	return float64(r.Degree(e.U)+r.Degree(e.V)) + 1
}

// NewAdjacencyWeight generalizes AdjacencyWeight:
// W(k,K̂) = coef·(deg(u)+deg(v)) + base.
func NewAdjacencyWeight(coef, base float64) WeightFunc {
	if base <= 0 || coef < 0 {
		panic("core: NewAdjacencyWeight requires base > 0 and coef >= 0")
	}
	return func(e graph.Edge, r *Reservoir) float64 {
		return coef*float64(r.Degree(e.U)+r.Degree(e.V)) + base
	}
}

// CombineWeights returns the positively-weighted sum of several weight
// functions, for sampling objectives that target several subgraph classes at
// once (§3.5 suggests mixing count terms for different motifs).
func CombineWeights(coefs []float64, fns []WeightFunc) WeightFunc {
	if len(coefs) != len(fns) || len(fns) == 0 {
		panic("core: CombineWeights requires matching non-empty coefficients and functions")
	}
	for _, c := range coefs {
		if c < 0 {
			panic("core: CombineWeights requires non-negative coefficients")
		}
	}
	return func(e graph.Edge, r *Reservoir) float64 {
		total := 0.0
		for i, fn := range fns {
			total += coefs[i] * fn(e, r)
		}
		return total
	}
}

package core

import (
	"testing"

	"gps/internal/graph"
	"gps/internal/stream"
)

// This file pins the slot-indexed estimation fast path against the
// hash-lookup reference implementations, bit for bit: identical enumeration
// and summation order means exact float64 equality, not tolerance.
// EstimatePostLookup lives in the package (gps-bench measures it); the
// remaining references are reconstructed here with the same parallelFor
// chunking as their fast-path counterparts.

// estimateLocalPostLookup mirrors EstimateLocalPost through the hash index.
func estimateLocalPostLookup(s *Sampler) LocalTriangles {
	n := s.res.Len()
	workers := estimateWorkers(n)
	parts := make([]LocalTriangles, workers)
	parallelFor(n, workers, func(w, lo, hi int) {
		local := make(LocalTriangles)
		for i := lo; i < hi; i++ {
			k := s.res.heap.At(i).Edge
			ent := s.res.entry(k)
			invQ := 1 / s.probForWeight(ent.Weight)
			v1, v2 := k.U, k.V
			if s.res.Degree(v1) > s.res.Degree(v2) {
				v1, v2 = v2, v1
			}
			s.res.Neighbors(v1, func(v3 graph.NodeID) bool {
				if v3 == v2 {
					return true
				}
				e2 := s.res.entry(graph.NewEdge(v2, v3))
				if e2 == nil {
					return true
				}
				q1 := s.mustProb(v1, v3)
				q2 := s.probForWeight(e2.Weight)
				share := invQ / (q1 * q2) / 3
				local[v1] += share
				local[v2] += share
				local[v3] += share
				return true
			})
		}
		parts[w] = local
	})
	out := make(LocalTriangles)
	for _, part := range parts {
		for v, c := range part {
			out[v] += c
		}
	}
	return out
}

// estimateCliques4PostLookup mirrors EstimateCliques4Post through the hash
// index.
func estimateCliques4PostLookup(s *Sampler) float64 {
	n := s.res.Len()
	workers := estimateWorkers(n)
	totals := make([]float64, workers)
	parallelFor(n, workers, func(w, lo, hi int) {
		total := 0.0
		for i := lo; i < hi; i++ {
			k := s.res.heap.At(i).Edge
			u, v := k.U, k.V
			invQ := 1 / s.mustProb(u, v)
			var candidates []graph.NodeID
			s.res.CommonNeighbors(u, v, func(x graph.NodeID) bool {
				if x > v {
					candidates = append(candidates, x)
				}
				return true
			})
			if len(candidates) < 2 {
				continue
			}
			// Per-edge subtotal first, then fold into the chunk total —
			// the same summation grouping as cliques4At, which the
			// bit-exactness of the comparison depends on.
			edgeTotal := 0.0
			for i := 0; i < len(candidates); i++ {
				x := candidates[i]
				invW := 1 / (s.mustProb(u, x) * s.mustProb(v, x))
				for j := i + 1; j < len(candidates); j++ {
					y := candidates[j]
					ent := s.res.entry(graph.NewEdge(x, y))
					if ent == nil {
						continue
					}
					invX := 1 / (s.mustProb(u, y) * s.mustProb(v, y))
					edgeTotal += invQ * invW * invX / s.probForWeight(ent.Weight)
				}
			}
			total += edgeTotal
		}
		totals[w] = total
	})
	total := 0.0
	for _, t := range totals {
		total += t
	}
	return total
}

// estimateStars3PostLookup mirrors EstimateStars3Post through the hash
// index, with the same dense-id chunking.
func estimateStars3PostLookup(s *Sampler) float64 {
	n := s.res.adj.DenseLen()
	workers := estimateWorkers(n)
	totals := make([]float64, workers)
	parallelFor(n, workers, func(w, lo, hi int) {
		total := 0.0
		for id := lo; id < hi; id++ {
			v, nbrs, _ := s.res.adj.RunAt(id)
			if len(nbrs) == 0 {
				continue
			}
			var p1, p2, p3 float64
			for _, u := range nbrs {
				inv := 1 / s.mustProb(v, u)
				p1 += inv
				inv2 := inv * inv
				p2 += inv2
				p3 += inv2 * inv
			}
			total += (p1*p1*p1 - 3*p1*p2 + 2*p3) / 6
		}
		totals[w] = total
	})
	total := 0.0
	for _, t := range totals {
		total += t
	}
	return total
}

// subgraphEstimateLookup mirrors SubgraphEstimate through InclusionProb.
func subgraphEstimateLookup(s *Sampler, edges ...graph.Edge) float64 {
	prod := 1.0
	for i, e := range edges {
		if containsBefore(edges, i, e) {
			continue
		}
		q, ok := s.InclusionProb(e)
		if !ok {
			return 0
		}
		prod /= q
	}
	return prod
}

// referenceSampler builds a partial-reservoir sampler over the golden
// clustered stream so thresholds are active and probabilities are < 1.
func referenceSampler(t *testing.T, weight WeightFunc, seed uint64) *Sampler {
	t.Helper()
	s, err := NewSampler(Config{Capacity: 2000, Weight: weight, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range goldenStream() {
		s.Process(e)
	}
	if s.Threshold() == 0 {
		t.Fatal("reference sampler never overflowed; test needs q < 1")
	}
	return s
}

// TestSlotPathBitExactVsLookup is the tentpole's lock: every estimator on
// the slot-indexed fast path returns exactly — bit for bit — what the
// hash-lookup path returns, for every built-in weight function.
func TestSlotPathBitExactVsLookup(t *testing.T) {
	for _, tc := range []struct {
		name   string
		weight WeightFunc
	}{{"uniform", UniformWeight}, {"triangle", TriangleWeight}, {"adjacency", AdjacencyWeight}} {
		t.Run(tc.name, func(t *testing.T) {
			s := referenceSampler(t, tc.weight, 0xD5)

			if got, want := EstimatePost(s), EstimatePostLookup(s); got != want {
				t.Errorf("EstimatePost diverges from lookup path:\n slot:   %+v\n lookup: %+v", got, want)
			}

			slotLocal, lookLocal := EstimateLocalPost(s), estimateLocalPostLookup(s)
			if len(slotLocal) != len(lookLocal) {
				t.Fatalf("local triangle maps differ in size: %d vs %d", len(slotLocal), len(lookLocal))
			}
			for v, c := range lookLocal {
				if slotLocal[v] != c {
					t.Fatalf("local triangles at node %d: slot %v vs lookup %v", v, slotLocal[v], c)
				}
			}

			if got, want := EstimateCliques4Post(s), estimateCliques4PostLookup(s); got != want {
				t.Errorf("EstimateCliques4Post: slot %v vs lookup %v", got, want)
			}
			if got, want := EstimateStars3Post(s), estimateStars3PostLookup(s); got != want {
				t.Errorf("EstimateStars3Post: slot %v vs lookup %v", got, want)
			}

			// Subgraph estimates across sampled triangles, sampled edges and
			// absent edges.
			count := 0
			s.Reservoir().ForEachEdge(func(e graph.Edge) bool {
				if got, want := s.SubgraphEstimate(e), subgraphEstimateLookup(s, e); got != want {
					t.Fatalf("SubgraphEstimate(%v): slot %v vs lookup %v", e, got, want)
				}
				s.Reservoir().CommonNeighbors(e.U, e.V, func(w graph.NodeID) bool {
					tri := []graph.Edge{e, graph.NewEdge(e.U, w), graph.NewEdge(e.V, w)}
					if got, want := s.SubgraphEstimate(tri...), subgraphEstimateLookup(s, tri...); got != want {
						t.Fatalf("SubgraphEstimate(%v): slot %v vs lookup %v", tri, got, want)
					}
					return true
				})
				count++
				return count < 500
			})
			if got := s.SubgraphEstimate(graph.NewEdge(1<<20, 1<<20+1)); got != 0 {
				t.Errorf("absent-edge subgraph estimate = %v, want 0", got)
			}
		})
	}
}

// TestSlotPathBitExactMidStream re-checks EstimatePost equality at several
// positions along the stream, including before the reservoir first
// overflows (z* = 0, all probabilities 1).
func TestSlotPathBitExactMidStream(t *testing.T) {
	edges := stream.Collect(stream.Permute(goldenStream(), 0xFACE))
	s, err := NewSampler(Config{Capacity: 1500, Weight: TriangleWeight, Seed: 0xA1})
	if err != nil {
		t.Fatal(err)
	}
	cuts := map[int]bool{100: true, 1500: true, 4000: true, len(edges): true}
	for i, e := range edges {
		s.Process(e)
		if cuts[i+1] {
			if got, want := EstimatePost(s), EstimatePostLookup(s); got != want {
				t.Fatalf("at %d edges: slot %+v vs lookup %+v", i+1, got, want)
			}
		}
	}
}

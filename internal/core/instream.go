package core

import "gps/internal/graph"

// InStream implements Algorithm 3: graph priority sampling with in-stream
// ("snapshot") estimation of triangle and wedge counts. When edge k arrives,
// and *before* the sampling step for k, every triangle (k1,k2,k) that k
// completes against the reservoir and every wedge (j,k) that k forms with a
// sampled edge j is snapshotted: its Horvitz-Thompson estimate, evaluated at
// the current threshold, is frozen into the running totals and never
// revisited (the stopped-Martingale construction of §5, Theorems 4-7).
// The underlying sample evolves exactly as under plain GPS, so the final
// reservoir can additionally be fed to EstimatePost; the paper's evaluation
// compares exactly these two estimators over one shared sample.
//
// In-stream estimation dominates post-stream estimation in variance because
// each snapshot is taken while the constituent edges are still "cheap"
// (their probabilities reflect the threshold at snapshot time, not the final
// one) and because snapshots of subgraphs whose edges are later evicted
// still contribute.
//
// InStream is not safe for concurrent use.
type InStream struct {
	s *Sampler

	nTri, vTri float64 // Ñ(△), Ṽ(△)
	nW, vW     float64 // Ñ(Λ), Ṽ(Λ)
	covTW      float64 // Ṽ(△,Λ)
}

// NewInStream returns an in-stream estimator with a fresh GPS sampler for
// the given configuration.
func NewInStream(cfg Config) (*InStream, error) {
	s, err := NewSampler(cfg)
	if err != nil {
		return nil, err
	}
	return &InStream{s: s}, nil
}

// Sampler exposes the underlying GPS sampler (e.g. to run EstimatePost over
// the same sample, or to query inclusion probabilities).
func (t *InStream) Sampler() *Sampler { return t.s }

// Process handles one edge arrival: GPSEstimate(k) followed by
// GPSUpdate(k,m), in that order (Algorithm 3 lines 3-5). It reports whether
// the edge is in the reservoir afterwards. Duplicate arrivals of a sampled
// edge are ignored, matching Sampler.Process.
func (t *InStream) Process(e graph.Edge) bool {
	if t.s.res.Contains(e) {
		t.s.duplicates++
		return true
	}
	t.estimate(e)
	return t.s.Process(e)
}

// estimate is procedure GPSEstimate of Algorithm 3. The triangle loop must
// run before the wedge loop: a triangle snapshot and a same-arrival wedge
// snapshot sharing a sampled edge j are correlated, and the pair is counted
// exactly once — at the wedge step, which reads the triangle covariance
// accumulator C̃_j(△) already updated by the triangle step (line 26).
func (t *InStream) estimate(k graph.Edge) {
	res := t.s.res

	// Triangles completed by k (lines 9-19). Distinct triangles completed
	// by the same arrival share no sampled edge, so the updates to the
	// per-edge accumulators of one cannot affect another ("parallel for").
	// Both rim edges' heap entries arrive as slots alongside the common
	// neighbor — no hash probes on this path either.
	res.commonNeighborsWithSlots(k.U, k.V, func(v3 graph.NodeID, su, sv int32) bool {
		e1 := res.entryAt(su)
		e2 := res.entryAt(sv)
		q1 := t.s.probForWeight(e1.Weight)
		q2 := t.s.probForWeight(e2.Weight)
		inv := 1 / (q1 * q2)
		t.nTri += inv                                // line 14: triangle count
		t.vTri += (inv - 1) * inv                    // line 15: own variance term
		t.vTri += 2 * (e1.TriCov + e2.TriCov) * inv  // line 16: covariance with earlier triangles
		t.covTW += (e1.WedgeCov + e2.WedgeCov) * inv // line 17: covariance with earlier wedges
		e1.TriCov += (1/q1 - 1) / q2                 // lines 18-19
		e2.TriCov += (1/q2 - 1) / q1
		return true
	})

	// Wedges formed by k with each adjacent sampled edge j (lines 20-27).
	// k itself is not yet sampled, so every sampled neighbor of either
	// endpoint contributes exactly one wedge.
	wedgeAt := func(center, other graph.NodeID) {
		nbrs, slots := res.neighborRun(center)
		for i, x := range nbrs {
			if x == other {
				continue
			}
			ent := res.entryAt(slots[i])
			q := t.s.probForWeight(ent.Weight)
			invQ := 1 / q
			t.nW += invQ                    // line 23: wedge count
			t.vW += invQ * (invQ - 1)       // line 24: own variance term
			t.vW += 2 * ent.WedgeCov * invQ // line 25: covariance with earlier wedges
			t.covTW += ent.TriCov * invQ    // line 26: covariance with earlier triangles
			ent.WedgeCov += invQ - 1        // line 27
		}
	}
	wedgeAt(k.U, k.V)
	wedgeAt(k.V, k.U)
}

// Estimates returns the current in-stream totals. Unlike post-stream
// estimation this is O(1): the counts are maintained incrementally.
func (t *InStream) Estimates() Estimates {
	return Estimates{
		Triangles:        t.nTri,
		Wedges:           t.nW,
		VarTriangles:     t.vTri,
		VarWedges:        t.vW,
		CovTriangleWedge: t.covTW,
		SampledEdges:     t.s.res.Len(),
		Arrivals:         t.s.arrivals,
	}
}

package core

import (
	"reflect"

	"gps/internal/graph"
)

// InStream implements Algorithm 3: graph priority sampling with in-stream
// ("snapshot") estimation of triangle and wedge counts. When edge k arrives,
// and *before* the sampling step for k, every triangle (k1,k2,k) that k
// completes against the reservoir and every wedge (j,k) that k forms with a
// sampled edge j is snapshotted: its Horvitz-Thompson estimate, evaluated at
// the current threshold, is frozen into the running totals and never
// revisited (the stopped-Martingale construction of §5, Theorems 4-7).
// The underlying sample evolves exactly as under plain GPS, so the final
// reservoir can additionally be fed to EstimatePost; the paper's evaluation
// compares exactly these two estimators over one shared sample.
//
// In-stream estimation dominates post-stream estimation in variance because
// each snapshot is taken while the constituent edges are still "cheap"
// (their probabilities reflect the threshold at snapshot time, not the final
// one) and because snapshots of subgraphs whose edges are later evicted
// still contribute.
//
// Under forward decay (Config.Decay) the snapshots accumulate in landmark
// units: a motif snapshotted at event time t contributes its estimate
// scaled by g(t_min) = exp(λ(t_min − L)), the fixed forward-decay value of
// its oldest edge. This is the whole point of forward decay for in-stream
// estimation — the scaling of an already-frozen snapshot never changes as
// time advances, and Estimates divides the running totals by g(T) once at
// query time, yielding estimates of the decayed counts at the current
// horizon. The landmark-unit totals grow like exp(λ(T−L)), so (as with the
// sampler's boosted priorities) a run is bounded to ~1000 half-lives past
// the landmark.
//
// InStream is not safe for concurrent use.
type InStream struct {
	s *Sampler

	nTri, vTri float64 // Ñ(△), Ṽ(△)
	nW, vW     float64 // Ñ(Λ), Ṽ(Λ)
	covTW      float64 // Ṽ(△,Λ)

	// decayedArrivals is Σ_k g(t_k) over all distinct arrivals (landmark
	// units) — renormalized by g(T) it is the *exact* decayed edge count,
	// every edge having been observed. Zero when decay is off.
	decayedArrivals float64

	// fuseTri marks the sampler's weight as exactly TriangleWeight, whose
	// common-neighbor count the estimate pass enumerates anyway: Process
	// then injects 9·|△̂(k)|+1 directly instead of letting the weight
	// function re-run the merge — the same value from the same enumeration,
	// so the sampling run is bit-identical, at half the topology work.
	fuseTri bool
}

// NewInStream returns an in-stream estimator with a fresh GPS sampler for
// the given configuration.
func NewInStream(cfg Config) (*InStream, error) {
	s, err := NewSampler(cfg)
	if err != nil {
		return nil, err
	}
	return &InStream{s: s, fuseTri: fusesTriangleWeight(cfg.Weight)}, nil
}

// fusesTriangleWeight reports whether w is exactly the built-in
// TriangleWeight (one reflect call at construction, mirroring
// normalizeWeight's uniform detection). Parameterized variants from
// NewTriangleWeight are closures with coefficients the estimator cannot
// see, so they keep the generic path.
func fusesTriangleWeight(w WeightFunc) bool {
	return w != nil && reflect.ValueOf(w).Pointer() == reflect.ValueOf(TriangleWeight).Pointer()
}

// Sampler exposes the underlying GPS sampler (e.g. to run EstimatePost over
// the same sample, or to query inclusion probabilities).
func (t *InStream) Sampler() *Sampler { return t.s }

// Process handles one edge arrival: GPSEstimate(k) followed by
// GPSUpdate(k,m), in that order (Algorithm 3 lines 3-5). It reports whether
// the edge is in the reservoir afterwards. Duplicate arrivals of a sampled
// edge are ignored, matching Sampler.Process.
func (t *InStream) Process(e graph.Edge) bool {
	if e.Del {
		t.retractEstimate(e)
		t.s.Process(e) // performs the removal and keeps the deletion counters
		return false
	}
	if t.s.res.Contains(e) {
		t.s.duplicates++
		return true
	}
	tris := t.estimate(e)
	var in bool
	if t.fuseTri {
		// TriangleWeight is 9·|△̂(k)|+1 and the estimate pass enumerated
		// exactly △̂(k) — the common neighbors of k's endpoints — so the
		// sampling step reuses that count instead of re-merging the
		// neighbor runs inside the weight function. Same weight bits, same
		// RNG draw, bit-identical run (a tested invariant).
		in = t.s.processWeighted(e, 9*float64(tris)+1)
	} else {
		in = t.s.Process(e)
	}
	if t.s.lambda > 0 {
		// The sampling step above resolved the effective event time (and on
		// the first arrival, the landmark); Processed() is that stream
		// position for untimed edges.
		ts := e.TS
		if ts == 0 {
			ts = t.s.Processed()
		}
		t.decayedArrivals += decayExp(t.s.lambda * (float64(ts) - float64(t.s.landmark)))
	}
	return in
}

// retractEstimate compensates the running totals for a turnstile deletion.
// The stopped-Martingale construction has no exact inverse: the snapshots a
// departing edge contributed to were frozen at historical thresholds that are
// no longer recoverable (and snapshots of motifs whose other edges were since
// evicted left no trace at all). The documented approximation mirrors the
// snapshot form at *current* probabilities: for every triangle the deleted
// edge still closes in the reservoir subtract 1/(q1·q2) (the deleted edge
// treated as the certain arrival, exactly how a snapshot enters), and for
// every wedge it forms with a sampled neighbor j subtract 1/q_j. Under decay
// each term is scaled by g(t_min) over the motif's current edges. Totals are
// floored at zero; the variance and per-edge covariance accumulators are left
// untouched — a deliberate conservative overestimate, since selectively
// unwinding frozen cross terms is not well defined. Unsampled deletions
// subtract nothing (their snapshots are indistinguishable from survivors').
func (t *InStream) retractEstimate(e graph.Edge) {
	res := t.s.res
	slot := res.slotOf(e.Insert())
	if slot < 0 {
		return
	}
	ent := res.entryAt(slot)
	decayed := t.s.lambda > 0
	tsK := ent.Edge.TS
	phiMin := func(a, b uint64) float64 {
		if b < a {
			a = b
		}
		return decayExp(t.s.lambda * (float64(a) - float64(t.s.landmark)))
	}

	var subTri, subW float64
	res.commonNeighborsWithSlots(e.U, e.V, func(v3 graph.NodeID, su, sv int32) bool {
		e1 := res.entryAt(su)
		e2 := res.entryAt(sv)
		inv := 1 / (t.s.probForWeight(e1.Weight) * t.s.probForWeight(e2.Weight))
		if decayed {
			ts := e1.Edge.TS
			if e2.Edge.TS < ts {
				ts = e2.Edge.TS
			}
			inv *= phiMin(tsK, ts)
		}
		subTri += inv
		return true
	})
	wedgeAt := func(center, other graph.NodeID) {
		nbrs, slots := res.neighborRun(center)
		for i, x := range nbrs {
			if x == other {
				continue
			}
			j := res.entryAt(slots[i])
			invQ := 1 / t.s.probForWeight(j.Weight)
			if decayed {
				invQ *= phiMin(tsK, j.Edge.TS)
			}
			subW += invQ
		}
	}
	wedgeAt(e.U, e.V)
	wedgeAt(e.V, e.U)

	t.nTri -= subTri
	if t.nTri < 0 {
		t.nTri = 0
	}
	t.nW -= subW
	if t.nW < 0 {
		t.nW = 0
	}
	if decayed {
		// The departed edge no longer counts toward the exact decayed edge
		// total. Unsampled deletions cannot be compensated here either —
		// their arrival timestamp is gone with the eviction.
		t.decayedArrivals -= decayExp(t.s.lambda * (float64(tsK) - float64(t.s.landmark)))
		if t.decayedArrivals < 0 {
			t.decayedArrivals = 0
		}
	}
}

// estimate is procedure GPSEstimate of Algorithm 3, returning |△̂(k)| —
// the number of triangles k completes against the reservoir, which the
// fused TriangleWeight path feeds back into the sampling step. The
// triangle loop must run before the wedge loop: a triangle snapshot and a
// same-arrival wedge snapshot sharing a sampled edge j are correlated, and
// the pair is counted exactly once — at the wedge step, which reads the
// triangle covariance accumulator C̃_j(△) already updated by the triangle
// step (line 26).
func (t *InStream) estimate(k graph.Edge) int {
	if t.s.lambda > 0 {
		return t.estimateDecayed(k)
	}
	res := t.s.res
	tris := 0

	// Triangles completed by k (lines 9-19). Distinct triangles completed
	// by the same arrival share no sampled edge, so the updates to the
	// per-edge accumulators of one cannot affect another ("parallel for").
	// Both rim edges' heap entries arrive as slots alongside the common
	// neighbor — no hash probes on this path either.
	res.commonNeighborsWithSlots(k.U, k.V, func(v3 graph.NodeID, su, sv int32) bool {
		tris++
		e1 := res.entryAt(su)
		e2 := res.entryAt(sv)
		q1 := t.s.probForWeight(e1.Weight)
		q2 := t.s.probForWeight(e2.Weight)
		inv := 1 / (q1 * q2)
		t.nTri += inv                                // line 14: triangle count
		t.vTri += (inv - 1) * inv                    // line 15: own variance term
		t.vTri += 2 * (e1.TriCov + e2.TriCov) * inv  // line 16: covariance with earlier triangles
		t.covTW += (e1.WedgeCov + e2.WedgeCov) * inv // line 17: covariance with earlier wedges
		e1.TriCov += (1/q1 - 1) / q2                 // lines 18-19
		e2.TriCov += (1/q2 - 1) / q1
		return true
	})

	// Wedges formed by k with each adjacent sampled edge j (lines 20-27).
	// k itself is not yet sampled, so every sampled neighbor of either
	// endpoint contributes exactly one wedge.
	wedgeAt := func(center, other graph.NodeID) {
		nbrs, slots := res.neighborRun(center)
		for i, x := range nbrs {
			if x == other {
				continue
			}
			ent := res.entryAt(slots[i])
			q := t.s.probForWeight(ent.Weight)
			invQ := 1 / q
			t.nW += invQ                    // line 23: wedge count
			t.vW += invQ * (invQ - 1)       // line 24: own variance term
			t.vW += 2 * ent.WedgeCov * invQ // line 25: covariance with earlier wedges
			t.covTW += ent.TriCov * invQ    // line 26: covariance with earlier triangles
			ent.WedgeCov += invQ - 1        // line 27
		}
	}
	wedgeAt(k.U, k.V)
	wedgeAt(k.V, k.U)
	return tris
}

// estimateDecayed is GPSEstimate under forward decay: the same snapshot
// structure with every motif's contribution scaled by g(t_min), the fixed
// landmark-unit value of its oldest edge. The per-edge covariance
// accumulators carry the same scaling, so cross terms pick up both motifs'
// decay values. Estimates renormalizes everything by g(T) at query time.
func (t *InStream) estimateDecayed(k graph.Edge) int {
	res := t.s.res
	tris := 0
	tsK := k.TS
	if tsK == 0 {
		tsK = t.s.Processed() + 1 // the position this arrival is about to take
	}
	// g(min(a,b)) in landmark units; one Exp per motif.
	phiMin := func(a, b uint64) float64 {
		if b < a {
			a = b
		}
		return decayExp(t.s.lambda * (float64(a) - float64(t.s.landmark)))
	}

	res.commonNeighborsWithSlots(k.U, k.V, func(v3 graph.NodeID, su, sv int32) bool {
		tris++
		e1 := res.entryAt(su)
		e2 := res.entryAt(sv)
		q1 := t.s.probForWeight(e1.Weight)
		q2 := t.s.probForWeight(e2.Weight)
		ts1, ts2 := e1.Edge.TS, e2.Edge.TS
		tsMin := ts1
		if ts2 < tsMin {
			tsMin = ts2
		}
		phi := phiMin(tsK, tsMin)
		inv := 1 / (q1 * q2)
		t.nTri += phi * inv
		t.vTri += phi * phi * (inv - 1) * inv
		t.vTri += 2 * (e1.TriCov + e2.TriCov) * phi * inv
		t.covTW += (e1.WedgeCov + e2.WedgeCov) * phi * inv
		e1.TriCov += phi * (1/q1 - 1) / q2
		e2.TriCov += phi * (1/q2 - 1) / q1
		return true
	})

	wedgeAt := func(center, other graph.NodeID) {
		nbrs, slots := res.neighborRun(center)
		for i, x := range nbrs {
			if x == other {
				continue
			}
			ent := res.entryAt(slots[i])
			invQ := 1 / t.s.probForWeight(ent.Weight)
			phi := phiMin(tsK, ent.Edge.TS)
			t.nW += phi * invQ
			t.vW += phi * phi * invQ * (invQ - 1)
			t.vW += 2 * ent.WedgeCov * phi * invQ
			t.covTW += ent.TriCov * phi * invQ
			ent.WedgeCov += phi * (invQ - 1)
		}
	}
	wedgeAt(k.U, k.V)
	wedgeAt(k.V, k.U)
	return tris
}

// Estimates returns the current in-stream totals. Unlike post-stream
// estimation this is O(1): the counts are maintained incrementally. Under
// forward decay the landmark-unit totals are renormalized by g(T) (counts)
// and g(T)² (variances) to target the decayed counts at the current
// horizon.
func (t *InStream) Estimates() Estimates {
	est := Estimates{
		Triangles:        t.nTri,
		Wedges:           t.nW,
		VarTriangles:     t.vTri,
		VarWedges:        t.vW,
		CovTriangleWedge: t.covTW,
		SampledEdges:     t.s.res.Len(),
		Arrivals:         t.s.arrivals,
	}
	if t.s.lambda > 0 {
		gT := decayExp(t.s.lambda * (float64(t.s.lastTS) - float64(t.s.landmark)))
		est.Triangles /= gT
		est.Wedges /= gT
		est.VarTriangles /= gT * gT
		est.VarWedges /= gT * gT
		est.CovTriangleWedge /= gT * gT
		est.Decayed = true
		est.DecayedEdges = t.decayedArrivals / gT
		est.DecayHorizon = t.s.lastTS
	}
	return est
}

package core

import (
	"bytes"
	"testing"

	"gps/internal/gen"
	"gps/internal/graph"
)

// FuzzCheckpointDecoder exercises the GPSC sampler and in-stream decoders
// with arbitrary input, in the spirit of stream.FuzzBinaryDecoder: they
// must never panic, never allocate from untrusted lengths (decoding grows
// memory only as bytes actually parse), and anything they accept must be a
// fully consistent sampler — pinned by re-encoding it and decoding the
// result again. The seed corpus holds real checkpoints: empty, mid-stream,
// churned, and in-stream documents, plus a few deliberately broken ones.
func FuzzCheckpointDecoder(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("GPSC"))
	f.Add([]byte("GPSC\x01\x01"))
	f.Add([]byte("GPSC\x02\x01"))
	f.Add([]byte("GPSB\x01\x01"))

	// Real checkpoints as seeds: a fresh sampler, a churned mid-stream
	// sampler per weight, and an in-stream estimator.
	edges := gen.HolmeKim(300, 4, 0.4, 0xF2)
	addSampler := func(weight WeightFunc, name string, n int) {
		s, err := NewSampler(Config{Capacity: 64, Weight: weight, Seed: 11})
		if err != nil {
			f.Fatal(err)
		}
		for _, e := range edges[:n] {
			s.Process(e)
		}
		var buf bytes.Buffer
		if err := s.WriteCheckpoint(&buf, name); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	addSampler(nil, "uniform", 0)
	addSampler(nil, "uniform", len(edges))
	addSampler(TriangleWeight, "triangle", len(edges))
	addSampler(AdjacencyWeight, "adjacency", len(edges)/2)
	addInStream := func(decay Decay, name string) {
		est, err := NewInStream(Config{Capacity: 64, Weight: TriangleWeight, Seed: 11, Decay: decay})
		if err != nil {
			f.Fatal(err)
		}
		for _, e := range edges {
			est.Process(e)
		}
		var buf bytes.Buffer
		if err := est.WriteCheckpoint(&buf, "triangle", name); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	addInStream(Decay{}, "fuzz-seed-stream")

	// GPSC v2 seeds: decayed (timestamped) sampler and in-stream documents,
	// plus a decayed document with an explicit configured landmark.
	timed := make([]graph.Edge, len(edges))
	for i, e := range edges {
		timed[i] = e.At(uint64(100 + i))
	}
	addDecayedSampler := func(decay Decay) {
		s, err := NewSampler(Config{Capacity: 64, Weight: TriangleWeight, Seed: 11, Decay: decay})
		if err != nil {
			f.Fatal(err)
		}
		for _, e := range timed {
			s.Process(e)
		}
		var buf bytes.Buffer
		if err := s.WriteCheckpoint(&buf, "triangle"); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	addDecayedSampler(Decay{HalfLife: 50})
	addDecayedSampler(Decay{HalfLife: 200, Landmark: 60})
	addInStream(Decay{HalfLife: 80}, "fuzz-seed-decayed")

	// GPSC v3 seeds: turnstile samplers that applied deletions (the version
	// is chosen by content — deletion counters force v3).
	f.Add([]byte("GPSC\x03\x01"))
	addTurnstile := func(weight WeightFunc, name string) {
		s, err := NewSampler(Config{Capacity: 64, Weight: weight, Seed: 11})
		if err != nil {
			f.Fatal(err)
		}
		for i, e := range edges {
			s.Process(e)
			if i%5 == 4 {
				s.Process(edges[i-2].AsDeletion())
			}
		}
		var buf bytes.Buffer
		if err := s.WriteCheckpoint(&buf, name); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	addTurnstile(nil, "uniform")
	addTurnstile(TriangleWeight, "triangle")

	f.Fuzz(func(t *testing.T, input []byte) {
		if s, err := ReadCheckpoint(bytes.NewReader(input), nil); err == nil {
			roundTripSampler(t, s)
		}
		if est, binding, err := ReadInStreamCheckpoint(bytes.NewReader(input), nil); err == nil {
			roundTripSampler(t, est.Sampler())
			var buf bytes.Buffer
			if err := est.WriteCheckpoint(&buf, "w", binding); err != nil {
				t.Fatalf("re-encode of accepted in-stream document: %v", err)
			}
			if _, again, err := ReadInStreamCheckpoint(&buf, func(string) (WeightFunc, error) { return nil, nil }); err != nil {
				t.Fatalf("re-decode of accepted in-stream document: %v", err)
			} else if again != binding {
				t.Fatalf("stream binding changed across round trip: %q -> %q", binding, again)
			}
		}
	})
}

// roundTripSampler asserts an accepted document describes a sampler whose
// state survives re-encoding: decode(encode(s)) succeeds and carries the
// same reservoir.
func roundTripSampler(t *testing.T, s *Sampler) {
	t.Helper()
	if s.Reservoir().Len() > s.Capacity() {
		t.Fatalf("decoder accepted %d sampled edges above capacity %d", s.Reservoir().Len(), s.Capacity())
	}
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf, "w"); err != nil {
		t.Fatalf("re-encode of accepted document: %v", err)
	}
	again, err := ReadCheckpoint(&buf, func(string) (WeightFunc, error) { return nil, nil })
	if err != nil {
		t.Fatalf("re-decode of accepted document: %v", err)
	}
	if again.Reservoir().Len() != s.Reservoir().Len() || again.Threshold() != s.Threshold() ||
		again.Arrivals() != s.Arrivals() {
		t.Fatal("round trip changed sampler state")
	}
}

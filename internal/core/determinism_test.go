package core

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"
	"testing"

	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/randx"
)

// goldenStream is the fixed stream all golden snapshots run over: a
// clustered Holme-Kim graph (so triangle weights exercise the topology
// index) in a seeded pseudo-random arrival order.
func goldenStream() []graph.Edge {
	edges := gen.HolmeKim(4000, 6, 0.4, 0x60D)
	rng := randx.New(0x5EED)
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	return edges
}

// fingerprint reduces the complete sampler state that future sampling
// decisions depend on — the sampled edges with their stored weights and
// priorities, the threshold z*, and the arrival count — to a single
// 64-bit FNV-1a hash. Entries are hashed in canonical edge-key order so
// the fingerprint is independent of heap layout and adjacency iteration
// order; float64s are hashed by their IEEE-754 bits, so the fingerprint
// is byte-exact, not approximately equal.
func fingerprint(s *Sampler) uint64 {
	type rec struct {
		key  uint64
		w, r float64
	}
	recs := make([]rec, 0, s.res.Len())
	for i := 0; i < s.res.Len(); i++ {
		ent := s.res.heap.At(i)
		recs = append(recs, rec{ent.Edge.Key(), ent.Weight, ent.Priority})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].key < recs[j].key })

	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, r := range recs {
		put(r.key)
		put(math.Float64bits(r.w))
		put(math.Float64bits(r.r))
	}
	put(math.Float64bits(s.zstar))
	put(s.arrivals)
	return h.Sum64()
}

// TestGoldenDeterminism pins the exact sampling behaviour of a fixed-seed
// sampler over a fixed stream. The golden hashes were captured from the
// original map-based reservoir implementation (the pre-refactor seed);
// the compact slot-based data plane must reproduce them bit for bit,
// because sampling decisions depend only on the RNG draw sequence and on
// weight values, which are order-independent counts over the sampled
// topology. A change to any golden value here means the refactor altered
// observable sampling behaviour, not just its implementation.
func TestGoldenDeterminism(t *testing.T) {
	stream := goldenStream()
	cases := []struct {
		name   string
		weight WeightFunc
		golden uint64
	}{
		{"uniform", UniformWeight, 0x5b49143286be7f17},
		{"triangle", TriangleWeight, 0xc5e3ff79d68a14e1},
		{"adjacency", AdjacencyWeight, 0x06ff49e9783b2bdc},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSampler(Config{Capacity: 2000, Weight: tc.weight, Seed: 0xD5})
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range stream {
				s.Process(e)
			}
			got := fingerprint(s)
			t.Logf("fingerprint(%s) = %#x", tc.name, got)
			if got != tc.golden {
				t.Errorf("fingerprint = %#x, want golden %#x", got, tc.golden)
			}
		})
	}
}

package core

import (
	"math"
	"testing"

	"gps/internal/exact"
	"gps/internal/graph"
	"gps/internal/stats"
	"gps/internal/stream"
)

func TestAdaptiveWeightValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("targetShare 0 did not panic")
		}
	}()
	NewAdaptiveTriangleWeight(0)
}

func TestAdaptiveWeightPositiveAndFinite(t *testing.T) {
	edges := smallTestGraph()
	w := NewAdaptiveTriangleWeight(0.5)
	s, _ := NewSampler(Config{Capacity: 50, Seed: 1, Weight: w})
	for _, e := range edges {
		s.Process(e) // Sampler panics internally on invalid weights
	}
	if s.Reservoir().Len() != 50 {
		t.Fatalf("reservoir %d", s.Reservoir().Len())
	}
}

// TestAdaptiveWeightUnbiased: adapting the coefficient must not break
// estimator unbiasedness — the weight is still F_{i,i-1}-measurable
// (a function of previous arrivals only), which is all Theorem 1 requires.
func TestAdaptiveWeightUnbiased(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo test skipped in -short mode")
	}
	edges := smallTestGraph()
	truth := float64(exact.Count(graph.BuildStatic(edges)).Triangles)
	const trials = 1500
	var w stats.Welford
	for i := 0; i < trials; i++ {
		seed := uint64(7100 + i)
		in, _ := NewInStream(Config{
			Capacity: 60,
			Seed:     seed,
			Weight:   NewAdaptiveTriangleWeight(0.5),
		})
		stream.Drive(stream.Permute(edges, seed^0x4321), func(e graph.Edge) { in.Process(e) })
		w.Add(in.Estimates().Triangles)
	}
	if diff := math.Abs(w.Mean() - truth); diff > 5*w.StdErr()+1e-9 {
		t.Errorf("adaptive-weight mean %v vs truth %v (stderr %v)", w.Mean(), truth, w.StdErr())
	}
}

package core

import (
	"fmt"
	"math"

	"gps/internal/graph"
)

// Forward-decay (time-decayed) graph priority sampling.
//
// The paper's GPS framework samples a fixed-horizon stream: every edge,
// however old, competes on equal footing. Activity streams want the
// opposite — recent structure matters more — which the social-activity
// follow-up literature (Ahmed, Neville & Kompella) models with decayed
// counts: at query time T, an edge that arrived at event time t counts
// 2^{-(T-t)/h} for half-life h, and a motif counts as much as its *oldest*
// edge (a triangle is only as recent as its stalest side, exactly as a
// sliding window counts a triangle only when all three edges are inside).
//
// GPS extends to this target via forward decay (Cormode, Shkapenyuk,
// Srivastava & Xu, ICDE 2009): fix a landmark L at (or before) the start of
// the stream and give an edge arriving at time t the positive, *fixed*
// boost g(t) = exp(λ·(t-L)), λ = ln2/h. Because every priority is scaled by
// a function of the edge's own timestamp only, relative ranks never change
// as time advances — the reservoir, threshold and heap need no rescans or
// rescaling, and priority-sampling mergeability survives as long as every
// shard agrees on L. The decayed value of an edge at horizon T is then the
// ratio d(t) = g(t)/g(T) = exp(-λ(T-t)) ≤ 1, which estimators apply as a
// per-item value inside the usual Horvitz-Thompson sums: the sampling
// probabilities q(k) = min{1, w(k)/z*} stay exactly as Algorithm 1
// maintains them (with the boosted weights), and Σ_{k∈K̂} f(k)/q(k) is
// unbiased for Σ_stream f(k) for *any* per-item value f — here the decayed
// indicator of each motif.
//
// Numerics: the boost exp(λ(t-L)) grows with the stream's time span, so a
// run is limited to roughly 1000 half-lives past the landmark before
// float64 priorities overflow; the sampler panics with a descriptive
// message at that point rather than silently corrupting priorities. Decayed
// *estimates* are immune (they use the bounded ratio d ≤ 1).

// Decay configures forward-decay sampling. The zero value disables decay
// entirely: the sampler is then bit-identical to an undecayed one and
// ignores edge timestamps.
type Decay struct {
	// HalfLife is the exponential half-life h in event-time units: an edge
	// one half-life older than the horizon counts 1/2. 0 disables decay;
	// negative or non-finite values are rejected.
	//
	// For untimed streams (every edge TS 0) event time falls back to the
	// stream position, so HalfLife is then measured in arrivals.
	HalfLife float64
	// Landmark pins the forward-decay origin L explicitly. 0 (the default)
	// means "the first processed edge's event time". Samplers that must
	// agree on priorities — the engine's shards — need the same landmark;
	// the engine pins it across shards automatically.
	Landmark uint64
}

// Enabled reports whether this configuration turns decay on.
func (d Decay) Enabled() bool { return d.HalfLife != 0 }

// lambda returns the decay rate λ = ln2/h, or 0 when disabled.
func (d Decay) lambda() float64 {
	if d.HalfLife <= 0 {
		return 0
	}
	return math.Ln2 / d.HalfLife
}

// validate rejects configurations that could never produce valid weights.
func (d Decay) validate() error {
	if d.HalfLife < 0 || math.IsNaN(d.HalfLife) || math.IsInf(d.HalfLife, 0) {
		return fmt.Errorf("core: Decay.HalfLife must be a finite non-negative number, got %v", d.HalfLife)
	}
	return nil
}

// decayWeight applies the forward-decay boost g(t)/g(L) = exp(λ(t-L)) to an
// arriving edge's weight, resolving the effective event time (the edge's
// timestamp, or the stream position for untimed edges), pinning the
// landmark on first use and advancing the horizon. It stamps the resolved
// time back onto *e so the reservoir entry records the event time the
// estimators will decay against. Callers have already incremented arrivals.
func (s *Sampler) decayWeight(e *graph.Edge, w float64) float64 {
	ts := e.TS
	if ts == 0 {
		ts = s.arrivals + s.duplicates // arrival-order time for untimed streams
	}
	if !s.landmarkSet {
		s.landmark = ts
		if s.decay.Landmark != 0 {
			s.landmark = s.decay.Landmark
		}
		s.landmarkSet = true
	}
	if ts > s.lastTS {
		s.lastTS = ts
	}
	e.TS = ts
	boosted := w * decayExp(s.lambda*(float64(ts)-float64(s.landmark)))
	if boosted <= 0 || math.IsNaN(boosted) || math.IsInf(boosted, 0) {
		panic(DecayOverflowError{msg: fmt.Sprintf(
			"core: forward-decay weight %v for edge %d-%d at t=%d (landmark %d, half-life %v): "+
				"the landmark-to-now span exceeds what float64 priorities represent (~1000 half-lives); "+
				"use a larger half-life or restart with a later landmark", boosted, e.U, e.V, ts, s.landmark, s.decay.HalfLife)})
	}
	return boosted
}

// DecayOverflowError is the panic value raised when a forward-decay boost
// leaves float64 range (the stream ran too many half-lives past the
// landmark). It is a panic, not a return — by the time it can happen the
// sampler's configuration is unusable for the stream — but it is typed so
// CLI frontends can recover it into a clean exit.
type DecayOverflowError struct{ msg string }

func (e DecayOverflowError) Error() string { return e.msg }

// Decayed reports whether forward-decay sampling is enabled.
func (s *Sampler) Decayed() bool { return s.lambda > 0 }

// DecayConfig returns the decay configuration the sampler runs with.
func (s *Sampler) DecayConfig() Decay { return s.decay }

// DecayLandmark returns the forward-decay landmark L and whether it has
// been pinned yet (it is pinned by the first arrival, by configuration, or
// by SetDecayLandmark).
func (s *Sampler) DecayLandmark() (uint64, bool) { return s.landmark, s.landmarkSet }

// DecayHorizon returns T, the largest event time processed so far — the
// horizon decayed estimates are evaluated at. It is 0 when decay is off or
// nothing has arrived.
func (s *Sampler) DecayHorizon() uint64 { return s.lastTS }

// SetDecayLandmark pins the forward-decay landmark before it self-pins from
// the first arrival. It is how the sharded engine makes every shard agree
// on L (their priorities must be mutually comparable at merge time). It
// errors on an undecayed sampler and on an attempt to move an
// already-pinned landmark elsewhere.
func (s *Sampler) SetDecayLandmark(ts uint64) error {
	if s.lambda == 0 {
		return fmt.Errorf("core: SetDecayLandmark on a sampler without decay")
	}
	if s.landmarkSet {
		if s.landmark != ts {
			return fmt.Errorf("core: decay landmark already pinned at %d, cannot move to %d", s.landmark, ts)
		}
		return nil
	}
	s.landmark = ts
	s.landmarkSet = true
	return nil
}

// slotDecays builds the slot-indexed decay table of decayed estimation:
// decays[slot] = d(t) = exp(-λ(T-t)) ≤ 1 for every sampled edge, indexed by
// heap arena slot, with T the current horizon. Like slotProbs it is one
// O(m) pass, immutable, shareable across estimator workers, and
// invalidated by the next Process.
func (s *Sampler) slotDecays() []float64 {
	decays := make([]float64, s.res.heap.ArenaLen())
	horizon := float64(s.lastTS)
	for i, n := 0, s.res.Len(); i < n; i++ {
		slot := s.res.heap.SlotAt(i)
		decays[slot] = decayExp(s.lambda * (float64(s.res.heap.BySlot(slot).Edge.TS) - horizon))
	}
	return decays
}

// estimatePostDecayed is the forward-decay variant of EstimatePost: the
// same slot-indexed Algorithm 2 scan, with every enumerated motif's
// Horvitz-Thompson contribution scaled by its decayed value — the decay
// factor of its oldest edge (the min over member decays, since d is
// monotone in event time). Point estimates are unbiased for the decayed
// counts; the variance and covariance sums carry the matching d² (diagonal)
// and d·d' (pair) scalings.
func estimatePostDecayed(s *Sampler) Estimates {
	n := s.res.Len()
	probs := s.slotProbs()
	decays := s.slotDecays()
	workers := estimateWorkers(n)
	parts := make([]partial, workers)
	edgeParts := make([]float64, workers)
	parallelFor(n, workers, func(w, lo, hi int) {
		var local partial
		var edges float64
		for i := lo; i < hi; i++ {
			slot := s.res.heap.SlotAt(i)
			local.add(s.estimateEdgeDecayed(slot, probs, decays))
			edges += decays[slot] / probs[slot]
		}
		parts[w] = local
		edgeParts[w] = edges
	})
	est := reduceEstimates(parts, n, s.arrivals)
	est.Decayed = true
	est.DecayHorizon = s.lastTS
	for _, v := range edgeParts {
		est.DecayedEdges += v
	}
	return est
}

// estimateEdgeDecayed mirrors estimateEdge with per-motif decayed values.
// With every decay factor exactly 1 it reduces term for term to the
// undecayed scan (a tested property: a stream whose edges all share one
// event time estimates bit-identically with decay on and off).
func (s *Sampler) estimateEdgeDecayed(slot int32, probs, decays []float64) edgeTotals {
	var t edgeTotals
	k := s.res.entryAt(slot).Edge
	invQ := 1 / probs[slot]
	dk := decays[slot]

	v1, v2 := k.U, k.V
	n1, s1 := s.res.neighborRun(v1)
	n2, s2 := s.res.neighborRun(v2)
	if len(n1) > len(n2) {
		v1, v2 = v2, v1
		n1, s1, n2, s2 = n2, s2, n1, s1
	}

	var cTriPairs float64 // running Σ over earlier triangles at k of d_τ·Ŝ_{τ∖k}
	var cWPairs float64   // running Σ over earlier wedges at k of d_λ·Ŝ_{λ∖k}
	var aK, bK, dK float64
	var subWedge float64

	j := 0 // monotone cursor into v2's run (triangle membership merge)
	for i, v3 := range n1 {
		if v3 == v2 {
			continue
		}
		q1 := probs[s1[i]]
		d1 := decays[s1[i]]
		for j < len(n2) && n2[j] < v3 {
			j++
		}
		if j < len(n2) && n2[j] == v3 {
			q2 := probs[s2[j]]
			d2 := decays[s2[j]]
			dTri := minDecay(dk, minDecay(d1, d2))
			inv12 := 1 / (q1 * q2)
			invAll := invQ * inv12
			t.nTri += dTri * invAll
			t.vTri += dTri * dTri * invAll * (invAll - 1)
			t.cTri += cTriPairs * dTri * inv12
			cTriPairs += dTri * inv12
			aK += dTri * inv12
			// Remove the wedge⊂triangle cross terms a_K·b_K would double
			// count: the wedges (k,k1) and (k,k2) carry their own decays.
			dK += dTri * inv12 * (minDecay(dk, d1)/q1 + minDecay(dk, d2)/q2)
			// The wedge (k1,k2) opposite k, paired with τ at k.
			subWedge += dTri * minDecay(d1, d2) * invAll * (inv12 - 1)
		}
		// Wedge (v3,v1,v2): edges k and k1.
		dW := minDecay(dk, d1)
		invW := invQ / q1
		t.nW += dW * invW
		t.vW += dW * dW * invW * (invW - 1)
		t.cW += cWPairs * dW / q1
		cWPairs += dW / q1
		bK += dW / q1
	}
	for i, v3 := range n2 {
		if v3 == v1 {
			continue
		}
		q2 := probs[s2[i]]
		dW := minDecay(dk, decays[s2[i]])
		invW := invQ / q2
		t.nW += dW * invW
		t.vW += dW * dW * invW * (invW - 1)
		t.cW += cWPairs * dW / q2
		cWPairs += dW / q2
		bK += dW / q2
	}

	scale := 2 * invQ * (invQ - 1)
	t.cTri *= scale
	t.cW *= scale
	t.covTW = invQ*(invQ-1)*(aK*bK-dK) + subWedge
	return t
}

// minDecay returns the smaller decay factor — the older edge's, since d is
// monotone in event time.
func minDecay(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Package randx provides small, fast, deterministic pseudo-random number
// generators used throughout the GPS reproduction.
//
// Reproducibility is a hard requirement of the experimental harness: the
// paper's evaluation ("both GPS post and in-stream estimation randomly select
// the same set of edges with the same random seeds", §6) depends on being
// able to replay a stream and a sampler byte-for-byte. The standard library's
// math/rand is seedable but its exact output is not guaranteed across Go
// releases, so we implement the generators ourselves:
//
//   - splitmix64 — used to expand a single uint64 seed into generator state;
//   - xoshiro256++ — the core generator (Blackman & Vigna), 256-bit state,
//     sub-nanosecond per call, passes BigCrush.
//
// The package also provides the derived variates the samplers need: uniforms
// on the half-open interval (0,1] (priorities u(k) must never be zero, since
// r(k)=w(k)/u(k)), Fisher–Yates permutations, and binomial/Poisson samplers
// used by the NSAMP baseline's bulk replacement step.
package randx

import (
	"errors"
	"math"
)

// splitmix64 advances the given state and returns the next value of the
// splitmix64 sequence. It is used only for seeding.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	return Mix64(*state)
}

// Mix64 is the splitmix64 finalizer: a fast bijective mixer that spreads
// structured 64-bit keys (packed edge ids, counters) uniformly over all
// bits. It is the shared hash behind the reservoir's open-addressing edge
// index and the engine's shard router.
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a deterministic xoshiro256++ generator. The zero value is not
// usable; construct with New. RNG is not safe for concurrent use; give each
// goroutine its own RNG (see Split).
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the single word seed. Distinct seeds
// yield independent-looking streams; the same seed always yields the same
// stream.
func New(seed uint64) *RNG {
	var r RNG
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro256++ must not have the all-zero state; splitmix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Split derives a new, statistically independent generator from r. It is the
// supported way to hand per-worker generators to parallel code while keeping
// the whole run a deterministic function of the root seed.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd1342543de82ef95)
}

// Clone returns an independent generator frozen at r's current state: the
// clone and r produce the identical future sequence without affecting each
// other. It is the forking primitive behind core.Sampler.Clone.
func (r *RNG) Clone() *RNG {
	c := *r
	return &c
}

// State returns the generator's raw xoshiro256++ state words. Together with
// FromState it makes the RNG durable: a checkpointed state resumes the
// identical draw sequence.
func (r *RNG) State() [4]uint64 { return r.s }

// FromState returns a generator positioned at the given raw state. The
// all-zero state is the one invalid xoshiro256++ state (the generator would
// emit zeros forever), so it is rejected — a checkpoint decoder must treat
// it as corruption, never construct around it.
func FromState(s [4]uint64) (*RNG, error) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return nil, errors.New("randx: all-zero RNG state")
	}
	return &RNG{s: s}, nil
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the xoshiro256++ sequence.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in the half-open interval [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Uniform01 returns a uniform float64 in the half-open interval (0,1].
// This is the distribution the paper assigns to u(k): priorities are
// r(k) = w(k)/u(k), so u(k)=0 must be impossible.
func (r *RNG) Uniform01() float64 {
	return float64(r.Uint64()>>11+1) * 0x1p-53
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0,n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("randx: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits to remove modulo bias.
	threshold := -n % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Perm returns a deterministic pseudo-random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Binomial returns a sample from Binomial(n, p). For small n it runs n
// Bernoulli trials; for large n with small mean it uses a Poisson
// approximation, and for large mean a normal approximation with rounding and
// clamping. The approximations are only used by the NSAMP baseline's bulk
// estimator-replacement step, where the binomial count of estimators to
// re-seed at stream position t is Binomial(r, 1/t); the approximation error
// is far below the Monte-Carlo noise of the estimators themselves.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	if mean < 16 {
		k := r.Poisson(mean)
		if k > n {
			k = n
		}
		return k
	}
	sd := math.Sqrt(mean * (1 - p))
	k := int(math.Round(mean + sd*r.Normal()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// Poisson returns a sample from Poisson(lambda) using Knuth's product method
// for small lambda and a normal approximation for large lambda.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		k := int(math.Round(lambda + math.Sqrt(lambda)*r.Normal()))
		if k < 0 {
			k = 0
		}
		return k
	}
	limit := math.Exp(-lambda)
	k := 0
	prod := r.Float64()
	for prod > limit {
		k++
		prod *= r.Float64()
	}
	return k
}

// Normal returns a standard normal variate (Box–Muller; the second variate is
// deliberately discarded to keep the generator allocation-free and stateless
// beyond the xoshiro words).
func (r *RNG) Normal() float64 {
	// Uniform01 keeps u strictly positive so Log is finite.
	u := r.Uniform01()
	v := r.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// Exp returns an exponential variate with rate 1.
func (r *RNG) Exp() float64 {
	return -math.Log(r.Uniform01())
}

package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical values out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split()
	b := root.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split generators produced identical first values")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestUniform01Range(t *testing.T) {
	r := New(4)
	for i := 0; i < 100000; i++ {
		f := r.Uniform01()
		if f <= 0 || f > 1 {
			t.Fatalf("Uniform01 out of (0,1]: %v", f)
		}
	}
}

func TestUniform01Mean(t *testing.T) {
	r := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Uniform01()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Uniform01 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(6)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(7) value %d count %d outside [9000,11000]", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(8)
	for i := 0; i < 10000; i++ {
		if v := r.Uint64n(16); v >= 16 {
			t.Fatalf("Uint64n(16) = %d", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffle(t *testing.T) {
	r := New(10)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 10)
	for _, v := range xs {
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("Shuffle lost element %d", v)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(11)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBinomialMean(t *testing.T) {
	r := New(12)
	cases := []struct {
		n int
		p float64
	}{
		{10, 0.3},     // exact loop path
		{1000, 0.002}, // Poisson path
		{1000, 0.5},   // normal path
	}
	for _, c := range cases {
		const trials = 20000
		sum := 0.0
		for i := 0; i < trials; i++ {
			k := r.Binomial(c.n, c.p)
			if k < 0 || k > c.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", c.n, c.p, k)
			}
			sum += float64(k)
		}
		mean := sum / trials
		want := float64(c.n) * c.p
		sd := math.Sqrt(float64(c.n) * c.p * (1 - c.p))
		if math.Abs(mean-want) > 6*sd/math.Sqrt(trials)+0.05 {
			t.Fatalf("Binomial(%d,%v) mean %v want %v", c.n, c.p, mean, want)
		}
	}
}

func TestBinomialEdge(t *testing.T) {
	r := New(13)
	if r.Binomial(0, 0.5) != 0 {
		t.Fatal("Binomial(0,·) != 0")
	}
	if r.Binomial(10, 0) != 0 {
		t.Fatal("Binomial(·,0) != 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Fatal("Binomial(10,1) != 10")
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(14)
	for _, lambda := range []float64{0.5, 4, 30, 200} {
		const trials = 20000
		sum := 0.0
		for i := 0; i < trials; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / trials
		tol := 6 * math.Sqrt(lambda/trials)
		if math.Abs(mean-lambda) > tol+0.05 {
			t.Fatalf("Poisson(%v) mean %v", lambda, mean)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(15)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("Normal variance %v", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(16)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp()
		if v < 0 {
			t.Fatalf("Exp() negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exp mean %v", mean)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkUniform01(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Uniform01()
	}
	_ = sink
}

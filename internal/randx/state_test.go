package randx

import "testing"

// TestStateRoundTrip verifies that FromState(State()) resumes the exact
// draw sequence — the property sampler checkpoints rely on.
func TestStateRoundTrip(t *testing.T) {
	r := New(0xC0FFEE)
	for i := 0; i < 100; i++ {
		r.Uint64()
	}
	restored, err := FromState(r.State())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if a, b := r.Uint64(), restored.Uint64(); a != b {
			t.Fatalf("draw %d diverged: %#x vs %#x", i, a, b)
		}
	}
}

// TestFromStateRejectsZero pins the one invalid xoshiro256++ state.
func TestFromStateRejectsZero(t *testing.T) {
	if _, err := FromState([4]uint64{}); err == nil {
		t.Fatal("all-zero state accepted")
	}
	if _, err := FromState([4]uint64{0, 0, 1, 0}); err != nil {
		t.Fatalf("non-zero state rejected: %v", err)
	}
}

package baselines

import (
	"errors"

	"gps/internal/graph"
	"gps/internal/randx"
)

// Mascot implements the global-count variant of MASCOT (Lim & Kang,
// KDD 2015): every arriving edge first contributes its sampled triangle
// closures to the counter, scaled by 1/p² (the probability that both other
// edges of each closed triangle were retained), and is then kept in the
// sampled graph independently with probability p.
//
// Unlike the reservoir algorithms, MASCOT's memory is not fixed: it
// concentrates around p·t edges. Experiments choose p so that the expected
// final sample matches the edge budget of the other algorithms, mirroring
// the paper's procedure ("we first run MASCOT ..., then we observe the
// actual sample size used ... and run all other methods with the observed
// sample size").
type Mascot struct {
	p   float64
	rng *randx.RNG
	adj *graph.Adjacency
	tau float64
}

// NewMascot returns a MASCOT estimator with retention probability p.
func NewMascot(p float64, seed uint64) (*Mascot, error) {
	if p <= 0 || p > 1 {
		return nil, errors.New("baselines: MASCOT needs 0 < p <= 1")
	}
	return &Mascot{p: p, rng: randx.New(seed), adj: graph.NewAdjacency()}, nil
}

// Name implements Estimator.
func (ms *Mascot) Name() string { return "MASCOT" }

// StoredEdges implements Estimator.
func (ms *Mascot) StoredEdges() int { return ms.adj.NumEdges() }

// Process implements Estimator.
func (ms *Mascot) Process(e graph.Edge) {
	if ms.adj.Has(e) {
		return
	}
	// Count before sampling: the closures of e against the sampled graph.
	if c := ms.adj.CountCommonNeighbors(e.U, e.V); c > 0 {
		ms.tau += float64(c) / (ms.p * ms.p)
	}
	if ms.rng.Float64() < ms.p {
		ms.adj.Add(e)
	}
}

// Triangles implements Estimator.
func (ms *Mascot) Triangles() float64 { return ms.tau }

package baselines

import (
	"math"
	"testing"

	"gps/internal/exact"
	"gps/internal/graph"
	"gps/internal/stats"
)

func TestGSHConstructor(t *testing.T) {
	for _, c := range [][2]float64{{0, 0.5}, {0.5, 0}, {1.5, 0.5}, {0.5, 1.5}} {
		if _, err := NewGSH(c[0], c[1], 1); err == nil {
			t.Fatalf("accepted p=%v q=%v", c[0], c[1])
		}
	}
	g, err := NewGSH(0.3, 0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "GSH" {
		t.Fatalf("Name = %q", g.Name())
	}
}

func TestGSHExactWhenProbabilitiesOne(t *testing.T) {
	edges := testGraph()
	truth := exact.Count(graph.BuildStatic(edges))
	g, _ := NewGSH(1, 1, 2)
	feed(g, edges, 3)
	if got := g.Triangles(); got != float64(truth.Triangles) {
		t.Fatalf("GSH(1,1) = %v, want %d", got, truth.Triangles)
	}
	if g.StoredEdges() != len(edges) {
		t.Fatalf("stored %d, want %d", g.StoredEdges(), len(edges))
	}
}

func TestGSHUnbiasedMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo test skipped in -short mode")
	}
	edges := testGraph()
	truth := float64(exact.Count(graph.BuildStatic(edges)).Triangles)
	var w stats.Welford
	for i := 0; i < 1500; i++ {
		g, _ := NewGSH(0.4, 0.7, uint64(300+i))
		feed(g, edges, uint64(i)^0xcafe)
		w.Add(g.Triangles())
	}
	if diff := math.Abs(w.Mean() - truth); diff > 5*w.StdErr()+1e-9 {
		t.Fatalf("GSH mean %v vs truth %v (stderr %v)", w.Mean(), truth, w.StdErr())
	}
}

func TestGSHDuplicatesIgnored(t *testing.T) {
	g, _ := NewGSH(1, 1, 4)
	e := graph.NewEdge(0, 1)
	g.Process(e)
	g.Process(e)
	if g.StoredEdges() != 1 {
		t.Fatalf("stored %d", g.StoredEdges())
	}
}

package baselines

import (
	"errors"
	"sort"

	"gps/internal/graph"
	"gps/internal/randx"
)

// Jha implements STREAMING-TRIANGLES (Jha, Seshadhri, Pinar; KDD 2013), the
// birthday-paradox wedge sampler. It maintains
//
//   - se independent uniform edge slots (size-1 reservoirs). Pairs of slots
//     holding adjacent edges form the slot wedges; their count w_t estimates
//     the total wedge count via Ŵ_t = w_t·t²/(se(se−1)).
//   - sw wedge slots, each a size-1 reservoir over the stream of slot-wedge
//     creations: whenever edge slots adopt the arriving edge, the new slot
//     wedges it forms replace each wedge slot with probability
//     (#new wedges)/w_t. A wedge slot records whether a later arrival
//     closed its wedge.
//
// On a randomly ordered stream a uniform wedge is closed by a *later* edge
// for exactly one of the three wedges of each triangle, so the closed
// fraction estimates κ/3 and κ̂ = 3·closed/filled. The triangle estimate is
// T̂ = κ̂·Ŵ/3. Accuracy hinges on the birthday paradox: the edge reservoir
// needs se ≳ √t slots for slot pairs to form wedges at all.
//
// This estimator targets transitivity first and triangle counts second; the
// GPS paper compared against it and reported ≥10× worse accuracy than GPS
// post-stream estimation (results omitted there for brevity; reproduced
// here as an extension).
type Jha struct {
	se, sw int
	rng    *randx.RNG
	t      int64

	edges []graph.Edge // se slots; valid[i] reports occupancy
	valid []bool
	wt    int // current number of slot wedges (adjacent valid slot pairs)

	wedges    []jhaWedge // sw slots
	newWedges []jhaWedge // scratch: wedges created by the current arrival
	slotPick  []int      // scratch: slots replaced by the current arrival
}

type jhaWedge struct {
	a, b   graph.Edge // the two edges, sharing a node
	close  graph.Edge // edge that would close the wedge
	filled bool
	closed bool
}

// NewJha returns a STREAMING-TRIANGLES estimator with se edge slots and sw
// wedge slots.
func NewJha(se, sw int, seed uint64) (*Jha, error) {
	if se < 2 || sw < 1 {
		return nil, errors.New("baselines: JHA needs se >= 2 and sw >= 1")
	}
	return &Jha{
		se:     se,
		sw:     sw,
		rng:    randx.New(seed),
		edges:  make([]graph.Edge, se),
		valid:  make([]bool, se),
		wedges: make([]jhaWedge, sw),
	}, nil
}

// Name implements Estimator.
func (j *Jha) Name() string { return "JHA" }

// StoredEdges implements Estimator: se edge slots plus 2 edges per wedge slot.
func (j *Jha) StoredEdges() int { return j.se + 2*j.sw }

// Process implements Estimator.
func (j *Jha) Process(f graph.Edge) {
	j.t++

	// Close any stored wedges this edge completes.
	for i := range j.wedges {
		w := &j.wedges[i]
		if w.filled && !w.closed && f == w.close {
			w.closed = true
		}
	}

	// Each edge slot independently adopts f with probability 1/t.
	k := j.rng.Binomial(j.se, 1/float64(j.t))
	if k == 0 {
		return
	}
	j.slotPick = j.slotPick[:0]
	seen := map[int]struct{}{}
	for len(j.slotPick) < k {
		s := j.rng.Intn(j.se)
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		j.slotPick = append(j.slotPick, s)
	}
	sort.Ints(j.slotPick) // deterministic processing order

	j.newWedges = j.newWedges[:0]
	for _, s := range j.slotPick {
		if j.valid[s] {
			j.wt -= j.slotWedgesAt(s)
		}
		j.edges[s] = f
		j.valid[s] = true
		j.wt += j.collectNewWedgesAt(s, f)
	}
	if len(j.newWedges) == 0 {
		return
	}
	// Wedge-slot reservoir step: replace each slot with probability
	// (#new)/w_t by a uniform new wedge (Algorithm STREAMING-TRIANGLES,
	// wedge reservoir update).
	den := j.wt
	if den < len(j.newWedges) {
		den = len(j.newWedges)
	}
	pSwitch := float64(len(j.newWedges)) / float64(den)
	for i := range j.wedges {
		if j.rng.Float64() < pSwitch {
			j.wedges[i] = j.newWedges[j.rng.Intn(len(j.newWedges))]
		}
	}
}

// slotWedgesAt counts the slot wedges involving slot s (pairs with every
// other valid slot holding a distinct adjacent edge).
func (j *Jha) slotWedgesAt(s int) int {
	e := j.edges[s]
	count := 0
	for i := 0; i < j.se; i++ {
		if i == s || !j.valid[i] || j.edges[i] == e {
			continue
		}
		if e.Adjacent(j.edges[i]) {
			count++
		}
	}
	return count
}

// collectNewWedgesAt counts the slot wedges formed by the new edge f at slot
// s and appends them to newWedges.
func (j *Jha) collectNewWedgesAt(s int, f graph.Edge) int {
	count := 0
	for i := 0; i < j.se; i++ {
		if i == s || !j.valid[i] || j.edges[i] == f {
			continue
		}
		other := j.edges[i]
		if f.Adjacent(other) {
			count++
			j.newWedges = append(j.newWedges, jhaWedge{
				a: other, b: f, close: closingEdge(other, f), filled: true,
			})
		}
	}
	return count
}

// Transitivity returns κ̂ = 3·(closed fraction of filled wedge slots).
func (j *Jha) Transitivity() float64 {
	filled, closed := 0, 0
	for i := range j.wedges {
		if j.wedges[i].filled {
			filled++
			if j.wedges[i].closed {
				closed++
			}
		}
	}
	if filled == 0 {
		return 0
	}
	return 3 * float64(closed) / float64(filled)
}

// Wedges returns Ŵ_t = w_t · t² / (se(se−1)), the birthday-paradox estimate
// of the total wedge count.
func (j *Jha) Wedges() float64 {
	t := float64(j.t)
	return float64(j.wt) * t * t / (float64(j.se) * float64(j.se-1))
}

// Triangles implements Estimator: T̂ = κ̂·Ŵ/3.
func (j *Jha) Triangles() float64 {
	return j.Transitivity() * j.Wedges() / 3
}

package baselines

import (
	"math"
	"testing"

	"gps/internal/exact"
	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/stats"
	"gps/internal/stream"
)

func testGraph() []graph.Edge { return gen.HolmeKim(60, 3, 0.7, 77) }

func feed(est Estimator, edges []graph.Edge, permSeed uint64) {
	stream.Drive(stream.Permute(edges, permSeed), est.Process)
}

func TestConstructorsValidate(t *testing.T) {
	if _, err := NewTriest(5, 1); err == nil {
		t.Fatal("TRIEST accepted capacity 5")
	}
	if _, err := NewTriestImpr(2, 1); err == nil {
		t.Fatal("TRIEST-IMPR accepted capacity 2")
	}
	if _, err := NewMascot(0, 1); err == nil {
		t.Fatal("MASCOT accepted p=0")
	}
	if _, err := NewMascot(1.5, 1); err == nil {
		t.Fatal("MASCOT accepted p>1")
	}
	if _, err := NewNSamp(0, 1); err == nil {
		t.Fatal("NSAMP accepted r=0")
	}
	if _, err := NewJha(1, 1, 1); err == nil {
		t.Fatal("JHA accepted se=1")
	}
}

func TestNames(t *testing.T) {
	tr, _ := NewTriest(10, 1)
	ti, _ := NewTriestImpr(10, 1)
	ms, _ := NewMascot(0.5, 1)
	ns, _ := NewNSamp(4, 1)
	jh, _ := NewJha(4, 4, 1)
	for _, c := range []struct {
		est  Estimator
		want string
	}{{tr, "TRIEST"}, {ti, "TRIEST-IMPR"}, {ms, "MASCOT"}, {ns, "NSAMP"}, {jh, "JHA"}} {
		if c.est.Name() != c.want {
			t.Fatalf("Name = %q, want %q", c.est.Name(), c.want)
		}
	}
}

func TestTriestExactWhenOversized(t *testing.T) {
	edges := testGraph()
	truth := exact.Count(graph.BuildStatic(edges))
	for _, mk := range []func(int, uint64) (*Triest, error){NewTriest, NewTriestImpr} {
		est, err := mk(len(edges)+5, 3)
		if err != nil {
			t.Fatal(err)
		}
		feed(est, edges, 4)
		if got := est.Triangles(); got != float64(truth.Triangles) {
			t.Fatalf("%s oversized estimate %v, want %d", est.Name(), got, truth.Triangles)
		}
		if est.StoredEdges() != len(edges) {
			t.Fatalf("%s stored %d, want %d", est.Name(), est.StoredEdges(), len(edges))
		}
	}
}

func TestMascotExactWhenPIsOne(t *testing.T) {
	edges := testGraph()
	truth := exact.Count(graph.BuildStatic(edges))
	est, _ := NewMascot(1, 5)
	feed(est, edges, 6)
	if got := est.Triangles(); got != float64(truth.Triangles) {
		t.Fatalf("MASCOT p=1 estimate %v, want %d", got, truth.Triangles)
	}
}

func TestStoredEdgesBudgets(t *testing.T) {
	edges := testGraph()
	tr, _ := NewTriest(40, 7)
	feed(tr, edges, 8)
	if tr.StoredEdges() != 40 {
		t.Fatalf("TRIEST stored %d, want 40", tr.StoredEdges())
	}
	ns, _ := NewNSamp(25, 9)
	feed(ns, edges, 10)
	if ns.StoredEdges() != 50 {
		t.Fatalf("NSAMP stored %d, want 50", ns.StoredEdges())
	}
	jh, _ := NewJha(10, 5, 11)
	feed(jh, edges, 12)
	if jh.StoredEdges() != 20 {
		t.Fatalf("JHA stored %d, want 20", jh.StoredEdges())
	}
	ms, _ := NewMascot(0.3, 13)
	feed(ms, edges, 14)
	if ms.StoredEdges() == 0 || ms.StoredEdges() >= len(edges) {
		t.Fatalf("MASCOT stored %d out of %d", ms.StoredEdges(), len(edges))
	}
}

func TestDuplicateEdgesIgnoredBySampledGraphEstimators(t *testing.T) {
	e := graph.NewEdge(0, 1)
	tr, _ := NewTriest(10, 1)
	tr.Process(e)
	tr.Process(e)
	if tr.StoredEdges() != 1 {
		t.Fatalf("TRIEST stored duplicate: %d", tr.StoredEdges())
	}
	ms, _ := NewMascot(1, 1)
	ms.Process(e)
	ms.Process(e)
	if ms.StoredEdges() != 1 {
		t.Fatalf("MASCOT stored duplicate: %d", ms.StoredEdges())
	}
}

func mcMean(t *testing.T, trials int, build func(seed uint64) Estimator, edges []graph.Edge) *stats.Welford {
	t.Helper()
	var w stats.Welford
	for i := 0; i < trials; i++ {
		seed := uint64(900 + i)
		est := build(seed)
		feed(est, edges, seed^0x5a5a)
		w.Add(est.Triangles())
	}
	return &w
}

func TestTriestUnbiasedMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo test skipped in -short mode")
	}
	edges := testGraph()
	truth := float64(exact.Count(graph.BuildStatic(edges)).Triangles)
	w := mcMean(t, 1500, func(seed uint64) Estimator {
		est, _ := NewTriest(50, seed)
		return est
	}, edges)
	if diff := math.Abs(w.Mean() - truth); diff > 5*w.StdErr()+1e-9 {
		t.Fatalf("TRIEST mean %v vs truth %v (stderr %v)", w.Mean(), truth, w.StdErr())
	}
}

func TestTriestImprUnbiasedAndLowerVariance(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo test skipped in -short mode")
	}
	edges := testGraph()
	truth := float64(exact.Count(graph.BuildStatic(edges)).Triangles)
	base := mcMean(t, 1500, func(seed uint64) Estimator {
		est, _ := NewTriest(50, seed)
		return est
	}, edges)
	impr := mcMean(t, 1500, func(seed uint64) Estimator {
		est, _ := NewTriestImpr(50, seed)
		return est
	}, edges)
	if diff := math.Abs(impr.Mean() - truth); diff > 5*impr.StdErr()+1e-9 {
		t.Fatalf("TRIEST-IMPR mean %v vs truth %v (stderr %v)", impr.Mean(), truth, impr.StdErr())
	}
	if impr.Variance() >= base.Variance() {
		t.Fatalf("TRIEST-IMPR variance %v not below TRIEST %v", impr.Variance(), base.Variance())
	}
}

func TestMascotUnbiasedMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo test skipped in -short mode")
	}
	edges := testGraph()
	truth := float64(exact.Count(graph.BuildStatic(edges)).Triangles)
	w := mcMean(t, 1500, func(seed uint64) Estimator {
		est, _ := NewMascot(0.5, seed)
		return est
	}, edges)
	if diff := math.Abs(w.Mean() - truth); diff > 5*w.StdErr()+1e-9 {
		t.Fatalf("MASCOT mean %v vs truth %v (stderr %v)", w.Mean(), truth, w.StdErr())
	}
}

func TestNSampUnbiasedMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo test skipped in -short mode")
	}
	edges := testGraph()
	truth := float64(exact.Count(graph.BuildStatic(edges)).Triangles)
	w := mcMean(t, 800, func(seed uint64) Estimator {
		est, _ := NewNSamp(64, seed)
		return est
	}, edges)
	if diff := math.Abs(w.Mean() - truth); diff > 5*w.StdErr()+1e-9 {
		t.Fatalf("NSAMP mean %v vs truth %v (stderr %v)", w.Mean(), truth, w.StdErr())
	}
}

func TestNSampListenersConsistent(t *testing.T) {
	edges := testGraph()
	ns, _ := NewNSamp(32, 21)
	feed(ns, edges, 22)
	// Every estimator with e1 must be listening on exactly its endpoints.
	for id := int32(0); id < int32(ns.r); id++ {
		e := ns.est[id]
		if !e.hasE1 {
			continue
		}
		for _, v := range []graph.NodeID{e.e1.U, e.e1.V} {
			if _, ok := ns.listeners[v][id]; !ok {
				t.Fatalf("estimator %d not listening on %d", id, v)
			}
		}
	}
	for v, set := range ns.listeners {
		for id := range set {
			if !ns.est[id].hasE1 || !ns.est[id].e1.Has(v) {
				t.Fatalf("stale listener %d on node %d", id, v)
			}
		}
	}
}

func TestJhaTransitivityRoughAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo test skipped in -short mode")
	}
	// A larger clustered graph: the birthday paradox needs se ≈ √t slots
	// to form wedges at all.
	edges := gen.HolmeKim(2000, 4, 0.6, 31)
	c := exact.Count(graph.BuildStatic(edges))
	kappa := c.GlobalClustering()
	var w stats.Welford
	for i := 0; i < 30; i++ {
		jh, _ := NewJha(400, 400, uint64(100+i))
		feed(jh, edges, uint64(i))
		w.Add(jh.Transitivity())
	}
	if rel := math.Abs(w.Mean()-kappa) / kappa; rel > 0.25 {
		t.Fatalf("JHA transitivity mean %v vs truth %v (rel %.2f)", w.Mean(), kappa, rel)
	}
}

func TestClosingEdge(t *testing.T) {
	a, b := graph.NewEdge(1, 2), graph.NewEdge(2, 3)
	if got := closingEdge(a, b); got != graph.NewEdge(1, 3) {
		t.Fatalf("closingEdge = %v", got)
	}
}

func TestClosingEdgePanicsOnDisjoint(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	closingEdge(graph.NewEdge(1, 2), graph.NewEdge(3, 4))
}

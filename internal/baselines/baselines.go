// Package baselines implements the streaming triangle-count estimators the
// paper compares GPS against in its evaluation (§6, Tables 2-3):
//
//   - TRIEST and TRIEST-IMPR (De Stefani, Epasto, Riondato, Upfal; KDD 2016)
//     — uniform reservoir sampling with fixed memory, base and improved
//     estimation.
//   - MASCOT (Lim, Kang; KDD 2015) — independent Bernoulli edge sampling
//     with unconditional counting before the sampling step.
//   - NSAMP (Pavan, Tangwongsan, Tirthapura, Wu; VLDB 2013) — neighborhood
//     sampling with r parallel estimators and bulk per-edge processing.
//   - JHA (Jha, Seshadhri, Pinar; KDD 2013) — the birthday-paradox
//     wedge-sampling transitivity estimator (an extension baseline; the
//     paper compared against it with "results omitted for brevity").
//
// All are reimplemented from the cited papers' pseudocode on the shared
// stream substrate, so Table 2/3 comparisons measure algorithmic behaviour
// (estimation quality per stored edge, update cost per edge), not
// implementation provenance.
package baselines

import "gps/internal/graph"

// Estimator is a one-pass streaming triangle-count estimator operating under
// a fixed memory budget. Implementations are not safe for concurrent use.
type Estimator interface {
	// Name identifies the algorithm in experiment tables.
	Name() string
	// Process observes one edge arrival.
	Process(e graph.Edge)
	// Triangles returns the current estimate of the number of triangles
	// among the edges that have arrived so far.
	Triangles() float64
	// StoredEdges reports the number of edges (or edge-equivalents of
	// state) currently held, the memory currency of Table 2.
	StoredEdges() int
}

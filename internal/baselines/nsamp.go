package baselines

import (
	"errors"

	"gps/internal/graph"
	"gps/internal/randx"
)

// NSamp implements neighborhood sampling (Pavan, Tangwongsan, Tirthapura,
// Wu; VLDB 2013) with r parallel estimators and bulk per-edge processing.
//
// Each estimator maintains
//
//	e1 — a uniform random edge of the stream (size-1 reservoir),
//	c  — the number of edges adjacent to e1 that arrived after e1,
//	e2 — a uniform random element of those c edges (size-1 reservoir),
//	closed — whether an edge completing the wedge (e1,e2) arrived while
//	         the estimator held exactly this wedge.
//
// For a triangle whose edges arrive in order (a,b,c'), the estimator
// represents it at query time with probability (1/t)·(1/c_a), so the value
// closed·t·c is unbiased for the triangle count; the reported estimate is
// the mean over r estimators.
//
// Memory currency: each estimator stores two edges of state, so an NSamp
// with r estimators is charged 2r stored edges, following the paper's
// accounting ("at least 128 estimators (i.e., storing more than 128K
// edges)").
//
// Bulk processing: a naive implementation touches all r estimators per
// arrival, the O(|K|·r) total cost the GPS paper criticizes. This
// implementation indexes estimators by the endpoints of their e1, so an
// arrival touches only the estimators whose neighborhood it extends, plus a
// Binomial(r, 1/t) random subset for e1 replacement — the bulk-processing
// variant the comparison in Table 2 assumes.
type NSamp struct {
	r   int
	rng *randx.RNG
	t   int64
	est []nsEstimator
	// listeners[v] holds the ids of estimators whose current e1 has
	// endpoint v.
	listeners map[graph.NodeID]map[int32]struct{}
	// scratch for sampling replacement ids without reallocation.
	replaceScratch []int32
}

type nsEstimator struct {
	e1      graph.Edge
	e2      graph.Edge
	closing graph.Edge // the edge that would close the wedge (e1,e2)
	c       int64
	hasE1   bool
	hasE2   bool
	closed  bool
}

// NewNSamp returns an NSAMP estimator with r parallel wedge estimators.
func NewNSamp(r int, seed uint64) (*NSamp, error) {
	if r < 1 {
		return nil, errors.New("baselines: NSAMP needs at least one estimator")
	}
	return &NSamp{
		r:         r,
		rng:       randx.New(seed),
		est:       make([]nsEstimator, r),
		listeners: make(map[graph.NodeID]map[int32]struct{}),
	}, nil
}

// Name implements Estimator.
func (ns *NSamp) Name() string { return "NSAMP" }

// StoredEdges implements Estimator (2 edges of state per estimator).
func (ns *NSamp) StoredEdges() int { return 2 * ns.r }

// Process implements Estimator.
func (ns *NSamp) Process(f graph.Edge) {
	ns.t++

	// Phase 1: estimators listening on an endpoint of f extend their
	// neighborhoods. Collect ids first: replacing e2 and closure checks
	// do not change the listener index (only e1 replacement does), but
	// an estimator listening on both endpoints must be processed once.
	touched := ns.collectListeners(f)
	for _, id := range touched {
		ns.extend(&ns.est[id], f)
	}

	// Phase 2: e1 replacement. Each estimator independently replaces its
	// e1 with probability 1/t; drawing the count from Binomial(r, 1/t)
	// and then a uniform subset is distributionally identical and costs
	// O(E[k]) instead of O(r).
	k := ns.rng.Binomial(ns.r, 1/float64(ns.t))
	if k > 0 {
		for _, id := range ns.sampleIDs(k) {
			ns.reseed(id, f)
		}
	}
}

// collectListeners returns the ids of estimators whose e1 is adjacent to f,
// deduplicated across f's two endpoints.
func (ns *NSamp) collectListeners(f graph.Edge) []int32 {
	lu, lv := ns.listeners[f.U], ns.listeners[f.V]
	if len(lu) == 0 && len(lv) == 0 {
		return nil
	}
	out := make([]int32, 0, len(lu)+len(lv))
	for id := range lu {
		out = append(out, id)
	}
	for id := range lv {
		if _, dup := lu[id]; !dup {
			out = append(out, id)
		}
	}
	return out
}

// extend processes arrival f for one estimator whose e1 shares an endpoint
// with f: closure check against the current wedge first, then the
// neighborhood count and possible e2 replacement.
func (ns *NSamp) extend(e *nsEstimator, f graph.Edge) {
	if !e.hasE1 || f == e.e1 {
		return
	}
	if e.hasE2 && !e.closed && f == e.closing {
		e.closed = true
	}
	e.c++
	if ns.rng.Float64() < 1/float64(e.c) {
		e.e2 = f
		e.closed = false
		e.hasE2 = true
		e.closing = closingEdge(e.e1, f)
	}
}

// closingEdge returns the edge joining the non-shared endpoints of the
// adjacent edges a and b — the arrival that would complete their triangle.
func closingEdge(a, b graph.Edge) graph.Edge {
	shared, ok := a.SharedNode(b)
	if !ok {
		panic("baselines: closingEdge on non-adjacent edges")
	}
	au, _ := a.Other(shared)
	bu, _ := b.Other(shared)
	return graph.NewEdge(au, bu)
}

// reseed restarts estimator id with f as its first edge.
func (ns *NSamp) reseed(id int32, f graph.Edge) {
	e := &ns.est[id]
	if e.hasE1 {
		ns.unlisten(e.e1.U, id)
		ns.unlisten(e.e1.V, id)
	}
	*e = nsEstimator{e1: f, hasE1: true}
	ns.listen(f.U, id)
	ns.listen(f.V, id)
}

func (ns *NSamp) listen(v graph.NodeID, id int32) {
	set := ns.listeners[v]
	if set == nil {
		set = make(map[int32]struct{})
		ns.listeners[v] = set
	}
	set[id] = struct{}{}
}

func (ns *NSamp) unlisten(v graph.NodeID, id int32) {
	set := ns.listeners[v]
	delete(set, id)
	if len(set) == 0 {
		delete(ns.listeners, v)
	}
}

// sampleIDs returns k distinct estimator ids chosen uniformly at random.
func (ns *NSamp) sampleIDs(k int) []int32 {
	if k >= ns.r {
		out := make([]int32, ns.r)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	ns.replaceScratch = ns.replaceScratch[:0]
	seen := make(map[int32]struct{}, k)
	for len(ns.replaceScratch) < k {
		id := int32(ns.rng.Intn(ns.r))
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		ns.replaceScratch = append(ns.replaceScratch, id)
	}
	return ns.replaceScratch
}

// Triangles implements Estimator.
func (ns *NSamp) Triangles() float64 {
	if ns.t == 0 {
		return 0
	}
	total := 0.0
	for i := range ns.est {
		e := &ns.est[i]
		if e.closed {
			total += float64(e.c) * float64(ns.t)
		}
	}
	return total / float64(ns.r)
}

package baselines

import (
	"testing"

	"gps/internal/gen"
	"gps/internal/graph"
)

func TestBuriolConstructor(t *testing.T) {
	if _, err := NewBuriol(0, 1); err == nil {
		t.Fatal("accepted r=0")
	}
	bu, err := NewBuriol(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bu.Name() != "BURIOL" {
		t.Fatalf("Name = %q", bu.Name())
	}
	if bu.StoredEdges() != 15 {
		t.Fatalf("StoredEdges = %d", bu.StoredEdges())
	}
}

func TestBuriolEmptyStream(t *testing.T) {
	bu, _ := NewBuriol(4, 1)
	if bu.Triangles() != 0 {
		t.Fatal("estimate nonzero before any edge")
	}
	bu.Process(graph.NewEdge(0, 1))
	if bu.Triangles() != 0 {
		t.Fatal("estimate nonzero with one edge")
	}
}

// TestBuriolMostlyZeroInAdjacencyModel reproduces the paper's observation
// (§6) that the Buriol et al. adaptation "fails to find a triangle most of
// the time, producing low quality estimates (mostly zero estimates)" under
// adjacency-ordered streams at realistic estimator counts.
func TestBuriolMostlyZeroInAdjacencyModel(t *testing.T) {
	edges := gen.BarabasiAlbert(2000, 4, 5) // triangle-sparse citation-like graph
	zero := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		bu, _ := NewBuriol(256, uint64(50+i))
		feed(bu, edges, uint64(i))
		if bu.Triangles() == 0 {
			zero++
		}
	}
	if zero < trials/2 {
		t.Errorf("only %d/%d runs produced zero estimates; expected mostly zero", zero, trials)
	}
}

func TestBuriolFindsTrianglesOnDenseGraph(t *testing.T) {
	// On a small dense graph with many triangles per (edge, node) pair,
	// some estimators do succeed and the estimate is positive and finite.
	edges := gen.HolmeKim(60, 6, 0.9, 7)
	positive := false
	for i := 0; i < 30 && !positive; i++ {
		bu, _ := NewBuriol(512, uint64(90+i))
		feed(bu, edges, uint64(i))
		if est := bu.Triangles(); est > 0 {
			positive = true
		}
	}
	if !positive {
		t.Error("no positive estimate in 30 dense-graph runs")
	}
}

func TestBuriolWatcherConsistency(t *testing.T) {
	edges := gen.HolmeKim(200, 4, 0.6, 9)
	bu, _ := NewBuriol(64, 11)
	feed(bu, edges, 12)
	// Each armed estimator must be registered on both awaited keys.
	for id := int32(0); id < int32(bu.r); id++ {
		e := &bu.est[id]
		if e.needA == 0 {
			continue
		}
		for _, key := range []uint64{e.needA, e.needB} {
			if _, ok := bu.watchers[key][id]; !ok {
				t.Fatalf("estimator %d not watching key %d", id, key)
			}
		}
	}
	for key, set := range bu.watchers {
		for id := range set {
			e := &bu.est[id]
			if e.needA != key && e.needB != key {
				t.Fatalf("stale watcher %d on key %d", id, key)
			}
		}
	}
}

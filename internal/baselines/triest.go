package baselines

import (
	"errors"

	"gps/internal/graph"
	"gps/internal/randx"
)

// Triest is the TRIEST-BASE algorithm of De Stefani et al. (KDD 2016):
// standard reservoir sampling of edges into a sample of capacity m, with a
// triangle counter updated on every insertion and deletion. The estimate
// rescales the counter by the inverse probability that all three edges of a
// triangle are jointly in the reservoir:
//
//	ξ(t) = max{1, t(t-1)(t-2) / (m(m-1)(m-2))},  N̂(△) = ξ(t)·τ
type Triest struct {
	m        int
	rng      *randx.RNG
	t        int64
	slots    []graph.Edge
	adj      *graph.Adjacency
	tau      float64
	improved bool
}

// NewTriest returns a TRIEST-BASE estimator with reservoir capacity m.
func NewTriest(m int, seed uint64) (*Triest, error) {
	return newTriest(m, seed, false)
}

// NewTriestImpr returns a TRIEST-IMPR estimator with reservoir capacity m.
// The improved variant counts every arriving edge's sampled triangles
// *before* the sampling step, scaled by η(t) = max{1, (t-1)(t-2)/(m(m-1))},
// and never decrements; the counter itself is the (lower-variance) estimate.
func NewTriestImpr(m int, seed uint64) (*Triest, error) {
	return newTriest(m, seed, true)
}

func newTriest(m int, seed uint64, improved bool) (*Triest, error) {
	if m < 6 {
		return nil, errors.New("baselines: TRIEST needs capacity >= 6")
	}
	return &Triest{
		m:        m,
		rng:      randx.New(seed),
		slots:    make([]graph.Edge, 0, m),
		adj:      graph.NewAdjacency(),
		improved: improved,
	}, nil
}

// Name implements Estimator.
func (tr *Triest) Name() string {
	if tr.improved {
		return "TRIEST-IMPR"
	}
	return "TRIEST"
}

// StoredEdges implements Estimator.
func (tr *Triest) StoredEdges() int { return len(tr.slots) }

// Process implements Estimator.
func (tr *Triest) Process(e graph.Edge) {
	if tr.adj.Has(e) {
		return // simplified streams should not repeat edges
	}
	tr.t++
	if tr.improved {
		// Unconditional counting with the η weight (TRIEST-IMPR).
		eta := 1.0
		t := float64(tr.t)
		m := float64(tr.m)
		if tr.t > int64(tr.m) {
			eta = (t - 1) * (t - 2) / (m * (m - 1))
			if eta < 1 {
				eta = 1
			}
		}
		tr.tau += eta * float64(tr.adj.CountCommonNeighbors(e.U, e.V))
	}
	if tr.t <= int64(tr.m) {
		tr.insert(e)
		return
	}
	if tr.rng.Float64() < float64(tr.m)/float64(tr.t) {
		victim := tr.rng.Intn(len(tr.slots))
		tr.remove(victim)
		tr.insertAt(e, victim)
	}
}

func (tr *Triest) insert(e graph.Edge) {
	tr.slots = append(tr.slots, e)
	if !tr.improved {
		tr.tau += float64(tr.adj.CountCommonNeighbors(e.U, e.V))
	}
	tr.adj.Add(e)
}

func (tr *Triest) insertAt(e graph.Edge, slot int) {
	tr.slots[slot] = e
	if !tr.improved {
		tr.tau += float64(tr.adj.CountCommonNeighbors(e.U, e.V))
	}
	tr.adj.Add(e)
}

func (tr *Triest) remove(slot int) {
	victim := tr.slots[slot]
	tr.adj.Remove(victim)
	if !tr.improved {
		// Triangles destroyed: common neighbors of the victim's
		// endpoints among the remaining sampled edges.
		tr.tau -= float64(tr.adj.CountCommonNeighbors(victim.U, victim.V))
	}
}

// Triangles implements Estimator.
func (tr *Triest) Triangles() float64 {
	if tr.improved {
		return tr.tau
	}
	xi := 1.0
	if tr.t > int64(tr.m) {
		t := float64(tr.t)
		m := float64(tr.m)
		xi = t * (t - 1) * (t - 2) / (m * (m - 1) * (m - 2))
		if xi < 1 {
			xi = 1
		}
	}
	return xi * tr.tau
}

package baselines

import (
	"errors"

	"gps/internal/graph"
	"gps/internal/randx"
)

// GSH implements Graph Sample-and-Hold (Ahmed, Duffield, Neville, Kompella;
// KDD 2014), the authors' predecessor framework that GPS generalizes (§7 of
// the GPS paper). gSH(p,q) samples each arriving edge independently:
//
//	with probability q if the edge is adjacent to the sampled graph
//	("hold": it extends known structure), and
//	with probability p otherwise ("sample": fresh territory).
//
// Because each edge's selection probability is observable at arrival,
// Horvitz-Thompson estimation applies: when an arriving edge closes
// triangles against the sampled graph, each closure contributes
// 1/(prob(j1)·prob(j2)) — the in-stream counting style GPS later refined
// with order sampling and fixed-size memory. Memory is not fixed: it
// concentrates around the selection rates, which is precisely the
// shortcoming GPS's priority reservoir removes.
type GSH struct {
	p, q float64
	rng  *randx.RNG
	adj  *graph.Adjacency
	prob map[uint64]float64 // selection probability of each sampled edge
	tau  float64
}

// NewGSH returns a gSH(p,q) estimator. Both probabilities must lie in
// (0,1]; q is used for edges adjacent to the sampled graph.
func NewGSH(p, q float64, seed uint64) (*GSH, error) {
	if p <= 0 || p > 1 || q <= 0 || q > 1 {
		return nil, errors.New("baselines: GSH needs p,q in (0,1]")
	}
	return &GSH{
		p:    p,
		q:    q,
		rng:  randx.New(seed),
		adj:  graph.NewAdjacency(),
		prob: make(map[uint64]float64),
	}, nil
}

// Name implements Estimator.
func (g *GSH) Name() string { return "GSH" }

// StoredEdges implements Estimator.
func (g *GSH) StoredEdges() int { return g.adj.NumEdges() }

// Process implements Estimator.
func (g *GSH) Process(e graph.Edge) {
	if g.adj.Has(e) {
		return
	}
	// In-stream counting before the sampling step: each triangle the
	// arriving edge closes against the sampled graph contributes the
	// inverse joint probability of its two sampled edges.
	g.adj.CommonNeighbors(e.U, e.V, func(v3 graph.NodeID) bool {
		p1 := g.prob[graph.NewEdge(e.U, v3).Key()]
		p2 := g.prob[graph.NewEdge(e.V, v3).Key()]
		g.tau += 1 / (p1 * p2)
		return true
	})
	// Selection: "hold" probability when adjacent to sampled structure.
	pr := g.p
	if g.adj.HasNode(e.U) || g.adj.HasNode(e.V) {
		pr = g.q
	}
	if g.rng.Float64() < pr {
		g.adj.Add(e)
		g.prob[e.Key()] = pr
	}
}

// Triangles implements Estimator.
func (g *GSH) Triangles() float64 { return g.tau }

package baselines

import (
	"errors"

	"gps/internal/graph"
	"gps/internal/randx"
)

// Buriol adapts the 3-node sampling algorithm of Buriol et al. (PODS 2006)
// to the adjacency stream model, as the GPS paper does for its (omitted)
// comparison. Each of r estimators holds
//
//	e = (a,b) — a uniform random edge (size-1 reservoir), and
//	v         — a uniform random node drawn from the nodes seen so far
//	            (size-1 reservoir over first appearances),
//
// and succeeds (β=1) when both closing edges (a,v) and (b,v) arrive after
// the pair (e,v) was last reset. The count estimate rescales the success
// fraction by |E|·(|V|−2)/3.
//
// The algorithm's space bound was proven for the *incidence* model, where
// every edge of a node arrives together; in the adjacency model the closing
// edges usually precede the sampled pair and the estimator "fails to find a
// triangle most of the time, producing low quality estimates (mostly zero
// estimates)" (§6). This implementation exists to reproduce exactly that
// behaviour next to GPS.
type Buriol struct {
	r   int
	rng *randx.RNG

	edges int64
	nodes []graph.NodeID // first-appearance order
	seen  map[graph.NodeID]struct{}

	est []buriolEstimator
	// watchers indexes estimators by the closing-edge keys they await.
	watchers map[uint64]map[int32]struct{}
}

type buriolEstimator struct {
	e     graph.Edge
	v     graph.NodeID
	hasE  bool
	hasV  bool
	needA uint64 // key of closing edge (a,v)
	needB uint64 // key of closing edge (b,v)
	gotA  bool
	gotB  bool
}

// NewBuriol returns a Buriol-style estimator with r parallel samples.
func NewBuriol(r int, seed uint64) (*Buriol, error) {
	if r < 1 {
		return nil, errors.New("baselines: Buriol needs at least one estimator")
	}
	return &Buriol{
		r:        r,
		rng:      randx.New(seed),
		seen:     make(map[graph.NodeID]struct{}),
		est:      make([]buriolEstimator, r),
		watchers: make(map[uint64]map[int32]struct{}),
	}, nil
}

// Name implements Estimator.
func (bu *Buriol) Name() string { return "BURIOL" }

// StoredEdges implements Estimator: one edge plus one node per estimator,
// charged as 1.5 edge-equivalents, rounded up.
func (bu *Buriol) StoredEdges() int { return (3*bu.r + 1) / 2 }

// Process implements Estimator.
func (bu *Buriol) Process(f graph.Edge) {
	bu.edges++

	// 1. Closing-edge bookkeeping for estimators awaiting f.
	if set := bu.watchers[f.Key()]; len(set) > 0 {
		for id := range set {
			e := &bu.est[id]
			switch f.Key() {
			case e.needA:
				e.gotA = true
			case e.needB:
				e.gotB = true
			}
		}
	}

	// 2. Node reservoir over first appearances.
	for _, v := range []graph.NodeID{f.U, f.V} {
		if _, ok := bu.seen[v]; ok {
			continue
		}
		bu.seen[v] = struct{}{}
		bu.nodes = append(bu.nodes, v)
		k := bu.rng.Binomial(bu.r, 1/float64(len(bu.nodes)))
		for _, id := range bu.distinctIDs(k) {
			bu.resetNode(id, v)
		}
	}

	// 3. Edge reservoir.
	k := bu.rng.Binomial(bu.r, 1/float64(bu.edges))
	for _, id := range bu.distinctIDs(k) {
		bu.resetEdge(id, f)
	}
}

// distinctIDs returns k distinct estimator ids chosen uniformly (Bernoulli
// thinning of the per-estimator reservoir decisions, as in NSamp).
func (bu *Buriol) distinctIDs(k int) []int32 {
	if k <= 0 {
		return nil
	}
	if k >= bu.r {
		out := make([]int32, bu.r)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	seen := make(map[int32]struct{}, k)
	out := make([]int32, 0, k)
	for len(out) < k {
		id := int32(bu.rng.Intn(bu.r))
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}

func (bu *Buriol) resetEdge(id int32, f graph.Edge) {
	e := &bu.est[id]
	bu.unwatch(id, e)
	e.e = f
	e.hasE = true
	e.gotA, e.gotB = false, false
	bu.rearm(id, e)
}

func (bu *Buriol) resetNode(id int32, v graph.NodeID) {
	e := &bu.est[id]
	bu.unwatch(id, e)
	e.v = v
	e.hasV = true
	e.gotA, e.gotB = false, false
	bu.rearm(id, e)
}

// rearm recomputes the awaited closing edges once both the edge and node are
// set; a sampled node coinciding with an endpoint can never close a
// triangle, so such estimators stay unarmed until the next reset.
func (bu *Buriol) rearm(id int32, e *buriolEstimator) {
	e.needA, e.needB = 0, 0
	if !e.hasE || !e.hasV || e.e.Has(e.v) {
		return
	}
	e.needA = graph.NewEdge(e.e.U, e.v).Key()
	e.needB = graph.NewEdge(e.e.V, e.v).Key()
	bu.watch(e.needA, id)
	bu.watch(e.needB, id)
}

func (bu *Buriol) watch(key uint64, id int32) {
	set := bu.watchers[key]
	if set == nil {
		set = make(map[int32]struct{})
		bu.watchers[key] = set
	}
	set[id] = struct{}{}
}

func (bu *Buriol) unwatch(id int32, e *buriolEstimator) {
	for _, key := range []uint64{e.needA, e.needB} {
		if key == 0 {
			continue
		}
		set := bu.watchers[key]
		delete(set, id)
		if len(set) == 0 {
			delete(bu.watchers, key)
		}
	}
}

// Triangles implements Estimator.
func (bu *Buriol) Triangles() float64 {
	if bu.edges == 0 || len(bu.nodes) < 3 {
		return 0
	}
	success := 0
	for i := range bu.est {
		e := &bu.est[i]
		if e.hasE && e.hasV && e.gotA && e.gotB {
			success++
		}
	}
	frac := float64(success) / float64(bu.r)
	return frac * float64(bu.edges) * float64(len(bu.nodes)-2) / 3
}

// Package order implements the indexed binary min-heap that backs the GPS
// reservoir (Algorithm 1 of the paper).
//
// The paper's implementation notes (§3.2) call for a binary heap stored in a
// flat array, with the root holding the lowest-priority edge so that the
// eviction candidate is available in O(1) and insert/evict cost O(log m).
// On top of the plain heap this package maintains an edge-key → slot index,
// because the estimators (Algorithms 2 and 3) must look up the stored weight
// w(k') of an arbitrary sampled edge to form q(k') = min{1, w(k')/z*}, and
// the in-stream estimator additionally updates per-edge covariance
// accumulators C̃_k in place.
package order

import "gps/internal/graph"

// Entry is the reservoir record of one sampled edge.
type Entry struct {
	Edge     graph.Edge
	Weight   float64 // w(k), fixed at arrival time
	Priority float64 // r(k) = w(k)/u(k)

	// In-stream covariance accumulators (Algorithm 3 lines 18-19, 27).
	// They live in the heap entry so that eviction of the edge discards
	// them, exactly as lines 39-40 of Algorithm 3 prescribe.
	TriCov   float64 // C̃_k(△)
	WedgeCov float64 // C̃_k(Λ)
}

// Heap is a binary min-heap of Entries keyed by Priority with an auxiliary
// edge-key index. The zero value is not usable; construct with NewHeap.
//
// Pointers returned by Get/At/Min are valid only until the next Push or
// PopMin: heap maintenance moves entries within the backing array.
type Heap struct {
	items []Entry
	pos   map[uint64]int32
}

// NewHeap returns an empty heap with capacity hint n.
func NewHeap(n int) *Heap {
	return &Heap{
		items: make([]Entry, 0, n+1),
		pos:   make(map[uint64]int32, n+1),
	}
}

// Len returns the number of stored entries.
func (h *Heap) Len() int { return len(h.items) }

// Contains reports whether the edge with the given key is stored.
func (h *Heap) Contains(key uint64) bool {
	_, ok := h.pos[key]
	return ok
}

// Get returns the entry for the edge key, or nil if absent. The pointer may
// be used to read the weight or update the covariance accumulators; it is
// invalidated by the next Push or PopMin.
func (h *Heap) Get(key uint64) *Entry {
	i, ok := h.pos[key]
	if !ok {
		return nil
	}
	return &h.items[i]
}

// Min returns the lowest-priority entry, or nil if the heap is empty.
func (h *Heap) Min() *Entry {
	if len(h.items) == 0 {
		return nil
	}
	return &h.items[0]
}

// At returns the entry at slot i (0 ≤ i < Len) in unspecified order; it is
// the iteration primitive used by the post-stream estimator's parallel scan.
func (h *Heap) At(i int) *Entry { return &h.items[i] }

// Push inserts a new entry. It panics if an entry with the same edge key is
// already stored; GPS streams carry unique edges, so a duplicate reaching the
// reservoir indicates a broken stream simplifier upstream.
func (h *Heap) Push(e Entry) {
	key := e.Edge.Key()
	if _, dup := h.pos[key]; dup {
		panic("order: duplicate edge pushed: " + e.Edge.String())
	}
	h.items = append(h.items, e)
	i := int32(len(h.items) - 1)
	h.pos[key] = i
	h.siftUp(i)
}

// PopMin removes and returns the lowest-priority entry. It panics on an
// empty heap.
func (h *Heap) PopMin() Entry {
	if len(h.items) == 0 {
		panic("order: PopMin on empty heap")
	}
	min := h.items[0]
	last := int32(len(h.items) - 1)
	h.swap(0, last)
	h.items = h.items[:last]
	delete(h.pos, min.Edge.Key())
	if last > 0 {
		h.siftDown(0)
	}
	return min
}

func (h *Heap) swap(i, j int32) {
	if i == j {
		return
	}
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].Edge.Key()] = i
	h.pos[h.items[j].Edge.Key()] = j
}

func (h *Heap) siftUp(i int32) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Priority <= h.items[i].Priority {
			return
		}
		h.swap(parent, i)
		i = parent
	}
}

func (h *Heap) siftDown(i int32) {
	n := int32(len(h.items))
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.items[right].Priority < h.items[left].Priority {
			smallest = right
		}
		if h.items[i].Priority <= h.items[smallest].Priority {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

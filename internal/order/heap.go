// Package order implements the indexed binary min-heap that backs the GPS
// reservoir (Algorithm 1 of the paper).
//
// The paper's implementation notes (§3.2) call for a binary heap stored in a
// flat array, with the root holding the lowest-priority edge so that the
// eviction candidate is available in O(1) and insert/evict cost O(log m).
// On top of the plain heap this package maintains an edge-key → entry index,
// because the estimators (Algorithms 2 and 3) must look up the stored weight
// w(k') of an arbitrary sampled edge to form q(k') = min{1, w(k')/z*}, and
// the in-stream estimator additionally updates per-edge covariance
// accumulators C̃_k in place.
//
// Layout: entries live in a flat arena addressed by stable slot ids and
// never move; the heap itself is an array of int32 slot ids ordered by
// priority, so sift operations move 4-byte ids instead of 48-byte entries
// and touch no index. The edge-key index is a single open-addressing table
// (linear probing, backward-shift deletion) instead of a Go map, which
// removes the per-operation map overhead from the sampler's hot path:
// steady-state Push/PopMin cycles are allocation-free.
package order

import (
	"fmt"
	"math"

	"gps/internal/graph"
	"gps/internal/randx"
)

// Entry is the reservoir record of one sampled edge.
type Entry struct {
	Edge     graph.Edge
	Weight   float64 // w(k), fixed at arrival time
	Priority float64 // r(k) = w(k)/u(k)

	// In-stream covariance accumulators (Algorithm 3 lines 18-19, 27).
	// They live in the heap entry so that eviction of the edge discards
	// them, exactly as lines 39-40 of Algorithm 3 prescribe.
	TriCov   float64 // C̃_k(△)
	WedgeCov float64 // C̃_k(Λ)
}

// Heap is a binary min-heap of Entries keyed by Priority with an auxiliary
// edge-key index. The zero value is not usable; construct with NewHeap.
//
// Pointers returned by Get/At/Min are valid only until the next Push or
// PopMin: a Push may grow the arena, and a PopMin recycles the popped slot.
type Heap struct {
	arena []Entry // slot id → entry; entries do not move within a slot
	freed []int32 // recycled slot ids
	heap  []int32 // slot ids, heap-ordered by arena[slot].Priority
	pos   []int32 // slot id → heap position, parallel to arena; stale at freed slots
	tab   keyTable
}

// NewHeap returns an empty heap with capacity hint n.
func NewHeap(n int) *Heap {
	h := &Heap{
		arena: make([]Entry, 0, n+1),
		heap:  make([]int32, 0, n+1),
		pos:   make([]int32, 0, n+1),
	}
	h.tab.init(n + 1)
	return h
}

// Clone returns a deep copy of the heap: arena, heap order, free list and
// edge-key index are all duplicated, so the clone and the original evolve
// independently. Cost is O(capacity) flat memory copies with four
// allocations and no rehashing.
func (h *Heap) Clone() *Heap { return h.CloneInto(nil) }

// CloneInto is Clone writing over dst, reusing dst's backing arrays when
// their capacity suffices — the allocation-free refresh path behind the
// engine's recycled shard clones. dst must not be h itself and must not be
// referenced anywhere else (its previous contents are destroyed). A nil dst
// allocates a fresh heap, making CloneInto(nil) identical to Clone.
func (h *Heap) CloneInto(dst *Heap) *Heap {
	if dst == nil {
		dst = &Heap{}
	}
	dst.arena = append(dst.arena[:0], h.arena...)
	dst.freed = append(dst.freed[:0], h.freed...)
	dst.heap = append(dst.heap[:0], h.heap...)
	dst.pos = append(dst.pos[:0], h.pos...)
	// The probe sequence wraps with mask, so the key/slot slices must have
	// exactly the source table's length; append onto [:0] guarantees that
	// while keeping any larger recycled capacity.
	dst.tab.keys = append(dst.tab.keys[:0], h.tab.keys...)
	dst.tab.slots = append(dst.tab.slots[:0], h.tab.slots...)
	dst.tab.used = h.tab.used
	dst.tab.mask = h.tab.mask
	return dst
}

// ExportState returns views of the heap's complete internal state: the
// entry arena (slot id → entry, including freed slots), the recycled-slot
// free list, and the heap array of slot ids in heap order. The views are
// read-only and invalidated by the next Push or PopMin. Together with
// RestoreHeap this is the durability surface of the reservoir: the exported
// triple determines the heap bit for bit, including the layout future sift
// operations and slot assignments depend on. The edge-key index is not
// exported — it is derivable, and RestoreHeap rebuilds it.
//
// Entries at freed slots are garbage left by past evictions; encoders must
// normalize them (write the zero Entry) so serialized state is a function
// of live state only.
func (h *Heap) ExportState() (arena []Entry, freed []int32, heapOrder []int32) {
	return h.arena, h.freed, h.heap
}

// RestoreHeap reconstructs a heap from state produced by ExportState (or
// decoded from a checkpoint), taking ownership of the slices. It validates
// every structural invariant a forged or corrupted checkpoint could break —
// freed and heap slots must exactly partition the arena, freed entries must
// be zeroed, live entries must hold canonical edges with distinct keys,
// positive finite weights and priorities, finite covariance accumulators,
// and the heap array must satisfy the min-heap property — and returns an
// error (never panics) on any violation. The edge-key index is rebuilt from
// the live entries; its bucket layout is unobservable, so a restored heap
// evolves bit-identically to the exported one.
func RestoreHeap(arena []Entry, freed, heapOrder []int32) (*Heap, error) {
	n := len(arena)
	if n > (1<<31)-1 {
		return nil, fmt.Errorf("order: arena of %d slots exceeds int32", n)
	}
	if len(freed)+len(heapOrder) != n {
		return nil, fmt.Errorf("order: %d freed + %d live slots do not partition arena of %d",
			len(freed), len(heapOrder), n)
	}
	seen := make([]bool, n)
	mark := func(slot int32) error {
		if slot < 0 || int(slot) >= n {
			return fmt.Errorf("order: slot %d outside arena of %d", slot, n)
		}
		if seen[slot] {
			return fmt.Errorf("order: slot %d listed twice", slot)
		}
		seen[slot] = true
		return nil
	}
	for _, slot := range freed {
		if err := mark(slot); err != nil {
			return nil, err
		}
		if arena[slot] != (Entry{}) {
			return nil, fmt.Errorf("order: freed slot %d holds a non-zero entry", slot)
		}
	}
	h := &Heap{arena: arena, freed: freed, heap: heapOrder, pos: make([]int32, n)}
	h.tab.init(len(heapOrder) + 1)
	for i, slot := range heapOrder {
		if err := mark(slot); err != nil {
			return nil, err
		}
		h.pos[slot] = int32(i)
		ent := &arena[slot]
		if !ent.Edge.Canonical() {
			return nil, fmt.Errorf("order: slot %d holds non-canonical edge %v", slot, ent.Edge)
		}
		if !(ent.Weight > 0) || math.IsInf(ent.Weight, 0) {
			return nil, fmt.Errorf("order: slot %d weight %v is not positive finite", slot, ent.Weight)
		}
		if !(ent.Priority > 0) || math.IsInf(ent.Priority, 0) {
			return nil, fmt.Errorf("order: slot %d priority %v is not positive finite", slot, ent.Priority)
		}
		if math.IsNaN(ent.TriCov) || math.IsInf(ent.TriCov, 0) ||
			math.IsNaN(ent.WedgeCov) || math.IsInf(ent.WedgeCov, 0) {
			return nil, fmt.Errorf("order: slot %d covariance accumulators are not finite", slot)
		}
		if i > 0 {
			parent := heapOrder[(i-1)/2]
			if arena[parent].Priority > ent.Priority {
				return nil, fmt.Errorf("order: heap property violated at position %d", i)
			}
		}
		key := ent.Edge.Key()
		if _, dup := h.tab.get(key); dup {
			return nil, fmt.Errorf("order: duplicate edge %v", ent.Edge)
		}
		h.tab.put(key, slot)
	}
	return h, nil
}

// Len returns the number of stored entries.
func (h *Heap) Len() int { return len(h.heap) }

// Contains reports whether the edge with the given key is stored.
func (h *Heap) Contains(key uint64) bool {
	_, ok := h.tab.get(key)
	return ok
}

// Get returns the entry for the edge key, or nil if absent. The pointer may
// be used to read the weight or update the covariance accumulators; it is
// invalidated by the next Push or PopMin.
func (h *Heap) Get(key uint64) *Entry {
	slot, ok := h.tab.get(key)
	if !ok {
		return nil
	}
	return &h.arena[slot]
}

// Min returns the lowest-priority entry, or nil if the heap is empty.
func (h *Heap) Min() *Entry {
	if len(h.heap) == 0 {
		return nil
	}
	return &h.arena[h.heap[0]]
}

// MinPriority returns the priority of the lowest-priority entry. It panics
// on an empty heap; callers gate on Len. It is the O(1) rejection test of
// the sampler's full-reservoir fast path.
func (h *Heap) MinPriority() float64 { return h.arena[h.heap[0]].Priority }

// At returns the entry at heap position i (0 ≤ i < Len) in unspecified
// order; it is the iteration primitive used by the post-stream estimator's
// parallel scan.
func (h *Heap) At(i int) *Entry { return &h.arena[h.heap[i]] }

// SlotAt returns the arena slot id at heap position i (0 ≤ i < Len). Slot
// ids are stable for an entry's whole residence in the heap, which makes
// them the index space of the estimators' slot-indexed probability tables.
func (h *Heap) SlotAt(i int) int32 { return h.heap[i] }

// BySlot returns the entry stored at an arena slot id previously obtained
// from Push, SlotAt, or an adjacency slot run. Like Get, the pointer is
// invalidated by the next Push or PopMin. The slot must be live; BySlot
// performs no validity check.
func (h *Heap) BySlot(slot int32) *Entry { return &h.arena[slot] }

// ArenaLen returns the arena length: one past the largest slot id ever
// issued, i.e. the size a slot-indexed lookup table must have.
func (h *Heap) ArenaLen() int { return len(h.arena) }

// Push inserts a new entry and returns the arena slot id it was stored at;
// the slot stays valid until the entry is popped. It panics if an entry with
// the same edge key is already stored; GPS streams carry unique edges, so a
// duplicate reaching the reservoir indicates a broken stream simplifier
// upstream.
func (h *Heap) Push(e Entry) int32 {
	key := e.Edge.Key()
	if key == 0 {
		// Key 0 is the table's empty-bucket marker. It only arises from a
		// zero-value Edge built outside graph.NewEdge, which the graph
		// model already forbids (self loop at node 0).
		panic("order: non-canonical zero edge pushed")
	}
	if _, dup := h.tab.get(key); dup {
		panic("order: duplicate edge pushed: " + e.Edge.String())
	}
	var slot int32
	if n := len(h.freed); n > 0 {
		slot = h.freed[n-1]
		h.freed = h.freed[:n-1]
		h.arena[slot] = e
	} else {
		slot = int32(len(h.arena))
		h.arena = append(h.arena, e)
		h.pos = append(h.pos, 0)
	}
	h.tab.put(key, slot)
	h.heap = append(h.heap, slot)
	h.pos[slot] = int32(len(h.heap) - 1)
	h.siftUp(int32(len(h.heap) - 1))
	return slot
}

// PopMin removes and returns the lowest-priority entry. It panics on an
// empty heap.
func (h *Heap) PopMin() Entry {
	if len(h.heap) == 0 {
		panic("order: PopMin on empty heap")
	}
	slot := h.heap[0]
	min := h.arena[slot]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.pos[h.heap[0]] = 0
	h.heap = h.heap[:last]
	if last > 0 {
		h.siftDown(0)
	}
	h.tab.del(min.Edge.Key())
	h.freed = append(h.freed, slot)
	return min
}

// Remove deletes the entry with the given edge key from an arbitrary heap
// position — the turnstile-deletion primitive. The vacated position is
// refilled by the last heap element and re-sifted in both directions, the
// key index entry is backward-shift deleted, and the arena slot is recycled
// exactly as PopMin recycles the root's. Returns the removed entry and
// whether the key was present; an absent key leaves the heap untouched.
func (h *Heap) Remove(key uint64) (Entry, bool) {
	slot, ok := h.tab.get(key)
	if !ok {
		return Entry{}, false
	}
	removed := h.arena[slot]
	i := h.pos[slot]
	last := int32(len(h.heap) - 1)
	if i != last {
		h.heap[i] = h.heap[last]
		h.pos[h.heap[i]] = i
	}
	h.heap = h.heap[:last]
	if i < last {
		h.siftDown(i)
		h.siftUp(i)
	}
	h.tab.del(key)
	h.freed = append(h.freed, slot)
	return removed, true
}

func (h *Heap) prio(i int32) float64 { return h.arena[h.heap[i]].Priority }

func (h *Heap) siftUp(i int32) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.prio(parent) <= h.prio(i) {
			return
		}
		h.heap[parent], h.heap[i] = h.heap[i], h.heap[parent]
		h.pos[h.heap[parent]] = parent
		h.pos[h.heap[i]] = i
		i = parent
	}
}

func (h *Heap) siftDown(i int32) {
	n := int32(len(h.heap))
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.prio(right) < h.prio(left) {
			smallest = right
		}
		if h.prio(i) <= h.prio(smallest) {
			return
		}
		h.heap[i], h.heap[smallest] = h.heap[smallest], h.heap[i]
		h.pos[h.heap[i]] = i
		h.pos[h.heap[smallest]] = smallest
		i = smallest
	}
}

// keyTable is an open-addressing hash table from edge key to arena slot,
// using linear probing with backward-shift deletion (no tombstones). The
// zero edge key is impossible for canonical edges (U < V forces V ≥ 1), so
// key 0 marks an empty bucket.
type keyTable struct {
	keys  []uint64
	slots []int32
	used  int
	mask  uint64
}

// hashKey mixes the edge key with the splitmix64 finalizer so that the
// structured (U<<32|V) keys spread over the low bits used for bucketing.
func hashKey(k uint64) uint64 { return randx.Mix64(k) }

func (t *keyTable) init(hint int) {
	size := 16
	for size < 2*hint {
		size *= 2
	}
	t.keys = make([]uint64, size)
	t.slots = make([]int32, size)
	t.used = 0
	t.mask = uint64(size - 1)
}

func (t *keyTable) get(key uint64) (int32, bool) {
	if key == 0 {
		return 0, false // 0 marks empty buckets and is never stored
	}
	i := hashKey(key) & t.mask
	for {
		k := t.keys[i]
		if k == key {
			return t.slots[i], true
		}
		if k == 0 {
			return 0, false
		}
		i = (i + 1) & t.mask
	}
}

func (t *keyTable) put(key uint64, slot int32) {
	if 4*(t.used+1) > 3*len(t.keys) {
		t.grow()
	}
	i := hashKey(key) & t.mask
	for t.keys[i] != 0 {
		i = (i + 1) & t.mask
	}
	t.keys[i] = key
	t.slots[i] = slot
	t.used++
}

func (t *keyTable) grow() {
	oldKeys, oldSlots := t.keys, t.slots
	size := 2 * len(oldKeys)
	t.keys = make([]uint64, size)
	t.slots = make([]int32, size)
	t.mask = uint64(size - 1)
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		j := hashKey(k) & t.mask
		for t.keys[j] != 0 {
			j = (j + 1) & t.mask
		}
		t.keys[j] = k
		t.slots[j] = oldSlots[i]
	}
}

// del removes key using backward-shift deletion: subsequent probe-chain
// members whose home bucket precedes the vacated one are shifted back so
// that every surviving key stays reachable without tombstones.
func (t *keyTable) del(key uint64) {
	if key == 0 {
		return // 0 marks empty buckets and is never stored
	}
	i := hashKey(key) & t.mask
	for {
		k := t.keys[i]
		if k == key {
			break
		}
		if k == 0 {
			return // absent; nothing to delete
		}
		i = (i + 1) & t.mask
	}
	t.used--
	j := i
	for {
		t.keys[i] = 0
		for {
			j = (j + 1) & t.mask
			k := t.keys[j]
			if k == 0 {
				return
			}
			home := hashKey(k) & t.mask
			// Shift k back iff its home bucket lies outside the cyclic
			// interval (i, j] — i.e. the vacated bucket i sits between
			// home and j, so probing for k would stop early at i.
			if cyclicBetween(home, i, j) {
				continue
			}
			break
		}
		t.keys[i] = t.keys[j]
		t.slots[i] = t.slots[j]
		i = j
	}
}

// cyclicBetween reports whether lo < x ≤ hi in cyclic bucket order, i.e.
// whether x lies strictly after lo and at or before hi when walking the
// table forward from lo.
func cyclicBetween(x, lo, hi uint64) bool {
	if lo <= hi {
		return lo < x && x <= hi
	}
	return lo < x || x <= hi
}

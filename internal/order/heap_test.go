package order

import (
	"sort"
	"testing"
	"testing/quick"

	"gps/internal/graph"
	"gps/internal/randx"
)

func edgeFor(i int) graph.Edge {
	return graph.NewEdge(graph.NodeID(i), graph.NodeID(i+1<<20))
}

func TestPushPopOrdered(t *testing.T) {
	h := NewHeap(8)
	prios := []float64{5, 1, 4, 2, 3, 0.5, 9, 7}
	for i, p := range prios {
		h.Push(Entry{Edge: edgeFor(i), Priority: p, Weight: 1})
	}
	if h.Len() != len(prios) {
		t.Fatalf("Len = %d", h.Len())
	}
	sorted := append([]float64(nil), prios...)
	sort.Float64s(sorted)
	for _, want := range sorted {
		if got := h.Min().Priority; got != want {
			t.Fatalf("Min priority %v, want %v", got, want)
		}
		if got := h.PopMin().Priority; got != want {
			t.Fatalf("PopMin priority %v, want %v", got, want)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len after draining = %d", h.Len())
	}
}

func TestMinEmpty(t *testing.T) {
	h := NewHeap(0)
	if h.Min() != nil {
		t.Fatal("Min on empty heap != nil")
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PopMin on empty heap did not panic")
		}
	}()
	NewHeap(0).PopMin()
}

func TestDuplicatePushPanics(t *testing.T) {
	h := NewHeap(2)
	h.Push(Entry{Edge: edgeFor(1), Priority: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Push did not panic")
		}
	}()
	h.Push(Entry{Edge: edgeFor(1), Priority: 2})
}

func TestGetAndContains(t *testing.T) {
	h := NewHeap(4)
	e := edgeFor(3)
	h.Push(Entry{Edge: e, Priority: 2.5, Weight: 7})
	if !h.Contains(e.Key()) {
		t.Fatal("Contains = false after Push")
	}
	ent := h.Get(e.Key())
	if ent == nil || ent.Weight != 7 || ent.Priority != 2.5 {
		t.Fatalf("Get = %+v", ent)
	}
	if h.Get(edgeFor(99).Key()) != nil {
		t.Fatal("Get of absent key != nil")
	}
	h.PopMin()
	if h.Contains(e.Key()) {
		t.Fatal("Contains = true after PopMin")
	}
}

func TestGetTracksMovedEntries(t *testing.T) {
	// Push many entries, pop a few, and verify the index still resolves
	// every surviving edge to the right entry.
	h := NewHeap(64)
	rng := randx.New(1)
	for i := 0; i < 64; i++ {
		h.Push(Entry{Edge: edgeFor(i), Priority: rng.Float64(), Weight: float64(i)})
	}
	for i := 0; i < 20; i++ {
		h.PopMin()
	}
	for i := 0; i < h.Len(); i++ {
		ent := h.At(i)
		got := h.Get(ent.Edge.Key())
		if got != ent {
			t.Fatalf("index mismatch for %v", ent.Edge)
		}
	}
}

func TestCovarianceAccumulatorsSurviveSifts(t *testing.T) {
	h := NewHeap(16)
	rng := randx.New(2)
	for i := 0; i < 16; i++ {
		h.Push(Entry{Edge: edgeFor(i), Priority: rng.Float64()})
	}
	e := edgeFor(5)
	h.Get(e.Key()).TriCov = 42
	h.Get(e.Key()).WedgeCov = 7
	// Force structural churn.
	for i := 100; i < 110; i++ {
		h.Push(Entry{Edge: edgeFor(i), Priority: rng.Float64()})
		h.PopMin()
	}
	if ent := h.Get(e.Key()); ent != nil && (ent.TriCov != 42 || ent.WedgeCov != 7) {
		t.Fatalf("accumulators corrupted: %+v", ent)
	}
}

func checkInvariant(t *testing.T, h *Heap) {
	t.Helper()
	for i := 1; i < h.Len(); i++ {
		parent := int32(i-1) / 2
		if h.prio(parent) > h.prio(int32(i)) {
			t.Fatalf("heap invariant broken at %d", i)
		}
	}
	for i, key := range h.tab.keys {
		if key == 0 {
			continue
		}
		if h.arena[h.tab.slots[i]].Edge.Key() != key {
			t.Fatalf("index invariant broken for key %d", key)
		}
	}
	if h.tab.used != h.Len() {
		t.Fatalf("index size %d != heap size %d", h.tab.used, h.Len())
	}
	if len(h.arena) != h.Len()+len(h.freed) {
		t.Fatalf("arena size %d != live %d + freed %d", len(h.arena), h.Len(), len(h.freed))
	}
}

func TestInvariantUnderRandomOps(t *testing.T) {
	f := func(seed uint64, opsRaw []bool) bool {
		h := NewHeap(8)
		rng := randx.New(seed)
		next := 0
		for _, push := range opsRaw {
			if push || h.Len() == 0 {
				h.Push(Entry{Edge: edgeFor(next), Priority: rng.Float64()})
				next++
			} else {
				h.PopMin()
			}
		}
		for i := 1; i < h.Len(); i++ {
			parent := int32(i-1) / 2
			if h.prio(parent) > h.prio(int32(i)) {
				return false
			}
		}
		return h.tab.used == h.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPopYieldsSortedSequence(t *testing.T) {
	h := NewHeap(256)
	rng := randx.New(3)
	for i := 0; i < 256; i++ {
		h.Push(Entry{Edge: edgeFor(i), Priority: rng.Float64()})
	}
	checkInvariant(t, h)
	prev := -1.0
	for h.Len() > 0 {
		p := h.PopMin().Priority
		if p < prev {
			t.Fatalf("pops out of order: %v after %v", p, prev)
		}
		prev = p
	}
}

func TestZeroKeyGuard(t *testing.T) {
	// Key 0 doubles as the index's empty-bucket marker; it must never be
	// reported present or corrupt the table, and pushing a zero-value Edge
	// (only constructible outside graph.NewEdge) must panic loudly.
	h := NewHeap(4)
	if h.Contains(0) || h.Get(0) != nil {
		t.Fatal("zero key reported present on empty heap")
	}
	h.Push(Entry{Edge: edgeFor(1), Priority: 1})
	if h.Contains(0) || h.Get(0) != nil {
		t.Fatal("zero key reported present on populated heap")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Push of zero-value edge did not panic")
		}
	}()
	h.Push(Entry{Priority: 2})
}

func TestIndexSurvivesChurn(t *testing.T) {
	// Long interleaved Push/PopMin runs exercise the open-addressing
	// table's backward-shift deletion: every surviving key must stay
	// resolvable after arbitrarily many deletions (no tombstone decay),
	// and recycled arena slots must never alias live entries.
	h := NewHeap(4)
	rng := randx.New(7)
	live := map[uint64]float64{} // key → weight
	next := 0
	for step := 0; step < 20000; step++ {
		if rng.Float64() < 0.55 || h.Len() == 0 {
			e := edgeFor(next)
			w := float64(next)
			next++
			h.Push(Entry{Edge: e, Priority: rng.Float64(), Weight: w})
			live[e.Key()] = w
		} else {
			popped := h.PopMin()
			delete(live, popped.Edge.Key())
		}
	}
	if h.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(live))
	}
	for key, w := range live {
		ent := h.Get(key)
		if ent == nil {
			t.Fatalf("live key %d unresolvable after churn", key)
		}
		if ent.Weight != w {
			t.Fatalf("key %d resolves to weight %v, want %v", key, ent.Weight, w)
		}
	}
	checkInvariant(t, NewHeap(0)) // sanity: helper works on empty heap
	checkInvariant(t, h)
}

func TestArenaSlotRecycling(t *testing.T) {
	// A full/evict steady state (the sampler's regime) must not grow the
	// arena: each PopMin frees the slot the next Push reuses.
	h := NewHeap(64)
	rng := randx.New(11)
	for i := 0; i < 64; i++ {
		h.Push(Entry{Edge: edgeFor(i), Priority: 1 + rng.Float64()})
	}
	grew := len(h.arena)
	for i := 64; i < 5000; i++ {
		h.Push(Entry{Edge: edgeFor(i), Priority: 1 + rng.Float64()})
		h.PopMin()
	}
	if len(h.arena) > grew+1 {
		t.Fatalf("arena grew from %d to %d under steady state", grew, len(h.arena))
	}
}

func BenchmarkPushPop(b *testing.B) {
	h := NewHeap(1 << 12)
	rng := randx.New(1)
	for i := 0; i < 1<<12; i++ {
		h.Push(Entry{Edge: edgeFor(i), Priority: rng.Float64()})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(Entry{Edge: edgeFor(1<<12 + i), Priority: rng.Float64()})
		h.PopMin()
	}
}

package order

import (
	"testing"

	"gps/internal/graph"
	"gps/internal/randx"
)

// churnHeap builds a heap that has seen pushes and pops, so the arena holds
// freed slots and the free list is non-trivial.
func churnHeap(t *testing.T) *Heap {
	t.Helper()
	h := NewHeap(16)
	rng := randx.New(7)
	for i := 0; i < 400; i++ {
		e := graph.NewEdge(graph.NodeID(i), graph.NodeID(i+1+int(rng.Uint64n(50))))
		if h.Contains(e.Key()) {
			continue
		}
		h.Push(Entry{Edge: e, Weight: 1 + rng.Float64(), Priority: rng.Uniform01() * 100,
			TriCov: rng.Float64(), WedgeCov: rng.Float64()})
		if h.Len() > 32 {
			h.PopMin()
		}
	}
	return h
}

// exportCopy deep-copies the exported state (with freed entries normalized
// to zero, as an encoder would) so RestoreHeap can take ownership.
func exportCopy(h *Heap) (arena []Entry, freed, heapOrder []int32) {
	a, f, ho := h.ExportState()
	arena = append([]Entry(nil), a...)
	freed = append([]int32(nil), f...)
	heapOrder = append([]int32(nil), ho...)
	for _, slot := range freed {
		arena[slot] = Entry{}
	}
	return arena, freed, heapOrder
}

// TestRestoreHeapRoundTrip verifies a restored heap is observably identical:
// same length, same min sequence, same lookups, and it keeps evolving.
func TestRestoreHeapRoundTrip(t *testing.T) {
	h := churnHeap(t)
	restored, err := RestoreHeap(exportCopy(h))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != h.Len() || restored.ArenaLen() != h.ArenaLen() {
		t.Fatalf("len %d/%d vs %d/%d", restored.Len(), restored.ArenaLen(), h.Len(), h.ArenaLen())
	}
	for i := 0; i < h.Len(); i++ {
		if h.SlotAt(i) != restored.SlotAt(i) {
			t.Fatalf("heap position %d: slot %d vs %d", i, h.SlotAt(i), restored.SlotAt(i))
		}
		key := h.At(i).Edge.Key()
		if got := restored.Get(key); got == nil || *got != *h.Get(key) {
			t.Fatalf("entry for key %#x differs", key)
		}
	}
	// Both must evolve identically from here.
	for h.Len() > 0 {
		a, b := h.PopMin(), restored.PopMin()
		if a != b {
			t.Fatalf("PopMin diverged: %+v vs %+v", a, b)
		}
	}
}

// TestRestoreHeapRejectsCorruption feeds RestoreHeap every class of broken
// state a corrupted checkpoint could produce.
func TestRestoreHeapRejectsCorruption(t *testing.T) {
	base := func() (arena []Entry, freed, heapOrder []int32) {
		return exportCopy(churnHeap(t))
	}
	cases := []struct {
		name   string
		break_ func(arena []Entry, freed, heapOrder []int32) ([]Entry, []int32, []int32)
	}{
		{"slot out of range", func(a []Entry, f, ho []int32) ([]Entry, []int32, []int32) {
			ho[0] = int32(len(a))
			return a, f, ho
		}},
		{"negative slot", func(a []Entry, f, ho []int32) ([]Entry, []int32, []int32) {
			ho[1] = -1
			return a, f, ho
		}},
		{"duplicate slot", func(a []Entry, f, ho []int32) ([]Entry, []int32, []int32) {
			ho[0] = ho[1]
			return a, f, ho
		}},
		{"freed and live overlap", func(a []Entry, f, ho []int32) ([]Entry, []int32, []int32) {
			f[0] = ho[0]
			return a, f, ho
		}},
		{"bad partition", func(a []Entry, f, ho []int32) ([]Entry, []int32, []int32) {
			return a, f[:len(f)-1], ho
		}},
		{"non-zero freed entry", func(a []Entry, f, ho []int32) ([]Entry, []int32, []int32) {
			a[f[0]].Weight = 1
			return a, f, ho
		}},
		{"non-canonical edge", func(a []Entry, f, ho []int32) ([]Entry, []int32, []int32) {
			e := &a[ho[0]].Edge
			e.U, e.V = e.V, e.U
			return a, f, ho
		}},
		{"zero weight", func(a []Entry, f, ho []int32) ([]Entry, []int32, []int32) {
			a[ho[0]].Weight = 0
			return a, f, ho
		}},
		{"NaN priority", func(a []Entry, f, ho []int32) ([]Entry, []int32, []int32) {
			a[ho[2]].Priority = nan()
			return a, f, ho
		}},
		{"infinite covariance", func(a []Entry, f, ho []int32) ([]Entry, []int32, []int32) {
			a[ho[2]].TriCov = inf()
			return a, f, ho
		}},
		{"heap property violated", func(a []Entry, f, ho []int32) ([]Entry, []int32, []int32) {
			a[ho[0]].Priority = a[ho[1]].Priority + a[ho[2]].Priority + 1e9
			return a, f, ho
		}},
		{"duplicate edge", func(a []Entry, f, ho []int32) ([]Entry, []int32, []int32) {
			a[ho[1]].Edge = a[ho[0]].Edge
			a[ho[1]].Priority = a[ho[0]].Priority
			return a, f, ho
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := RestoreHeap(tc.break_(base())); err == nil {
				t.Fatal("corrupted state accepted")
			}
		})
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }

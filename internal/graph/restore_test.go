package graph

import (
	"testing"
)

// churnAdjacency builds an adjacency that has interned, released and
// recycled dense ids, so the free list and id layout are non-trivial.
func churnAdjacency() *Adjacency {
	a := NewAdjacency()
	for i := 0; i < 40; i++ {
		a.AddWithSlot(NewEdge(NodeID(i), NodeID(i+1)), int32(i))
		a.AddWithSlot(NewEdge(NodeID(i), NodeID(i+7)), int32(100+i))
	}
	for i := 0; i < 40; i += 3 {
		a.Remove(NewEdge(NodeID(i), NodeID(i+1)))
	}
	// Isolated pairs added and fully removed free both endpoints' dense
	// ids; the follow-up adds recycle some of them, leaving a non-empty
	// free list and a scrambled id layout.
	for i := 0; i < 10; i++ {
		a.AddWithSlot(NewEdge(NodeID(1000+i), NodeID(2000+i)), int32(300+i))
	}
	for i := 0; i < 10; i++ {
		a.Remove(NewEdge(NodeID(1000+i), NodeID(2000+i)))
	}
	for i := 0; i < 7; i++ {
		a.AddWithSlot(NewEdge(NodeID(200+i), NodeID(300+i)), int32(200+i))
	}
	return a
}

// exportDenseCopy deep-copies the exported state (with freed node entries
// normalized to zero, as an encoder would) so RestoreAdjacency can take
// ownership.
func exportDenseCopy(a *Adjacency) (nodes []NodeID, freed []int32, nbrs [][]NodeID, slots [][]int32) {
	n, f, nb, sl := a.ExportDense()
	nodes = append([]NodeID(nil), n...)
	freed = append([]int32(nil), f...)
	nbrs = make([][]NodeID, len(nb))
	slots = make([][]int32, len(sl))
	for i := range nb {
		if len(nb[i]) > 0 {
			nbrs[i] = append([]NodeID(nil), nb[i]...)
			slots[i] = append([]int32(nil), sl[i]...)
		}
	}
	for _, id := range freed {
		nodes[id] = 0
	}
	return nodes, freed, nbrs, slots
}

// TestRestoreAdjacencyRoundTrip verifies a restored adjacency is observably
// identical across the whole query surface, including dense-id layout.
func TestRestoreAdjacencyRoundTrip(t *testing.T) {
	a := churnAdjacency()
	r, err := RestoreAdjacency(exportDenseCopy(a))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumEdges() != a.NumEdges() || r.NumNodes() != a.NumNodes() || r.DenseLen() != a.DenseLen() {
		t.Fatalf("counts differ: %d/%d/%d vs %d/%d/%d",
			r.NumEdges(), r.NumNodes(), r.DenseLen(), a.NumEdges(), a.NumNodes(), a.DenseLen())
	}
	for id := 0; id < a.DenseLen(); id++ {
		_, an, as := a.RunAt(id)
		_, rn, rs := r.RunAt(id)
		if len(an) != len(rn) {
			t.Fatalf("id %d: run lengths differ", id)
		}
		for j := range an {
			if an[j] != rn[j] || as[j] != rs[j] {
				t.Fatalf("id %d position %d differs", id, j)
			}
		}
	}
	a.ForEachEdge(func(e Edge) bool {
		if !r.Has(e) || r.SlotOf(e) != a.SlotOf(e) {
			t.Fatalf("edge %v lost or reslotted", e)
		}
		return true
	})
	// Both must evolve identically: the next interns recycle the same
	// dense ids in the same order, so dense layout stays in lockstep.
	for i := 0; i < 6; i++ {
		e := NewEdge(NodeID(9990+i), NodeID(10000+i))
		a.AddWithSlot(e, int32(70+i))
		r.AddWithSlot(e, int32(70+i))
	}
	if a.DenseLen() != r.DenseLen() {
		t.Fatalf("dense growth diverged: %d vs %d", a.DenseLen(), r.DenseLen())
	}
	for id := 0; id < a.DenseLen(); id++ {
		an, _, _ := a.RunAt(id)
		rn, _, _ := r.RunAt(id)
		if len(a.nbrs[id]) > 0 && an != rn {
			t.Fatalf("dense id %d interned %d vs %d after growth", id, an, rn)
		}
	}
}

// TestRestoreAdjacencyRejectsCorruption feeds RestoreAdjacency every class
// of broken state a corrupted checkpoint could produce.
func TestRestoreAdjacencyRejectsCorruption(t *testing.T) {
	type state struct {
		nodes []NodeID
		freed []int32
		nbrs  [][]NodeID
		slots [][]int32
	}
	base := func() state {
		n, f, nb, sl := exportDenseCopy(churnAdjacency())
		return state{n, f, nb, sl}
	}
	liveID := func(s state) int {
		for id := range s.nbrs {
			if len(s.nbrs[id]) > 0 {
				return id
			}
		}
		t.Fatal("no live id")
		return -1
	}
	cases := []struct {
		name   string
		break_ func(s state) state
	}{
		{"freed out of range", func(s state) state { s.freed[0] = int32(len(s.nodes)); return s }},
		{"freed listed twice", func(s state) state { s.freed[1] = s.freed[0]; return s }},
		{"freed with run", func(s state) state {
			s.nbrs[s.freed[0]] = []NodeID{1}
			s.slots[s.freed[0]] = []int32{0}
			return s
		}},
		{"freed with node", func(s state) state { s.nodes[s.freed[0]] = 42; return s }},
		{"table length mismatch", func(s state) state { s.nbrs = s.nbrs[:len(s.nbrs)-1]; return s }},
		{"slot run length mismatch", func(s state) state {
			id := liveID(s)
			s.slots[id] = s.slots[id][:len(s.slots[id])-1]
			return s
		}},
		{"unsorted run", func(s state) state {
			for id := range s.nbrs {
				if len(s.nbrs[id]) >= 2 {
					s.nbrs[id][0], s.nbrs[id][1] = s.nbrs[id][1], s.nbrs[id][0]
					return s
				}
			}
			t.Fatal("no run of length 2")
			return s
		}},
		{"self loop", func(s state) state {
			id := liveID(s)
			s.nbrs[id][0] = s.nodes[id]
			return s
		}},
		{"node interned twice", func(s state) state {
			a, b := -1, -1
			for id := range s.nbrs {
				if len(s.nbrs[id]) > 0 {
					if a < 0 {
						a = id
					} else {
						b = id
						break
					}
				}
			}
			s.nodes[b] = s.nodes[a]
			return s
		}},
		{"asymmetric half", func(s state) state {
			id := liveID(s)
			s.nbrs[id] = append([]NodeID(nil), s.nbrs[id]...)
			s.slots[id] = append([]int32(nil), s.slots[id]...)
			s.nbrs[id][len(s.nbrs[id])-1] = 65000 // not interned anywhere
			return s
		}},
		{"slot annotation disagrees", func(s state) state {
			id := liveID(s)
			s.slots[id] = append([]int32(nil), s.slots[id]...)
			s.slots[id][0]++
			return s
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.break_(base())
			if _, err := RestoreAdjacency(s.nodes, s.freed, s.nbrs, s.slots); err == nil {
				t.Fatal("corrupted state accepted")
			}
		})
	}
}

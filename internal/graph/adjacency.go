package graph

import "fmt"

// Adjacency is a dynamic undirected adjacency structure supporting edge
// insertion, deletion and neighborhood queries. It is the topology index of
// the GPS reservoir: W(k,K̂) weight functions and the triangle/wedge
// estimators need Γ̂(v) iteration and common-neighbor queries against the
// *currently sampled* graph, which gains and loses edges as the reservoir
// evolves.
//
// Layout: nodes are interned to dense int32 ids on first touch (one flat
// map lookup per endpoint), and each dense id owns a sorted []NodeID
// neighbor slice. Dense ids of nodes whose last incident edge is removed
// are recycled, and their neighbor slices keep their capacity, so a
// reservoir in steady state (one insert + one evict per arrival) runs
// allocation-free. Compared to the earlier map[NodeID]map[NodeID]struct{}
// representation this removes the per-node hash set allocations, makes
// Neighbors/CommonNeighbors iterate contiguous memory, and gives every
// query a deterministic (ascending) iteration order.
//
// Space is O(|V̂|+m) as discussed in §3.2 (S4) of the paper. Neighbor
// lookup is O(log deg); insertion and removal are O(deg) moves within one
// slice, which for the small degrees of reservoir subgraphs is faster than
// a hash probe. Common neighbors of (u,v) cost
// O(min(deg(u)+deg(v), min·log max)) — a linear merge of the two sorted
// runs, switching to binary probes when the degrees are badly skewed.
//
// Each neighbor run has a parallel slot run: slots[id][i] is an opaque
// int32 annotation for the edge {nodes[id], nbrs[id][i]}, which the GPS
// reservoir uses to record the heap arena slot of every sampled edge. That
// turns "look up the stored weight of an enumerated neighbor edge" — the
// inner operation of every estimator — from a hash probe into a contiguous
// array read alongside the neighbor id. Edges added through plain Add carry
// the slot -1.
//
// The zero value is not usable; construct with NewAdjacency.
type Adjacency struct {
	idx   map[NodeID]int32 // intern table: node → dense id
	nodes []NodeID         // dense id → node
	nbrs  [][]NodeID       // dense id → sorted neighbors
	slots [][]int32        // dense id → per-neighbor edge slots, parallel to nbrs
	freed []int32          // recycled dense ids
	edges int

	// Backing arrays of the most recent CloneInto into this value, retained
	// so a recycled clone can be refreshed without reallocating them.
	nbrBack  []NodeID
	slotBack []int32
}

// NewAdjacency returns an empty adjacency structure.
func NewAdjacency() *Adjacency {
	return &Adjacency{idx: make(map[NodeID]int32)}
}

// Clone returns a deep copy of the adjacency structure; the clone and the
// original evolve independently. Neighbor and slot slices are copied into
// shared backing arrays sized to the live edge count, so the clone costs a
// few large allocations plus the intern-table copy rather than one
// allocation per node.
func (a *Adjacency) Clone() *Adjacency { return a.CloneInto(nil) }

// CloneInto is Clone writing over dst, reusing dst's backing arrays (intern
// map, dense tables, and the shared neighbor/slot backing of a previous
// CloneInto) when their capacity suffices. dst must not be a itself and
// must not be referenced anywhere else; nil allocates a fresh structure.
func (a *Adjacency) CloneInto(dst *Adjacency) *Adjacency {
	if dst == nil {
		dst = &Adjacency{}
	}
	if dst.idx == nil {
		dst.idx = make(map[NodeID]int32, len(a.idx))
	} else {
		clear(dst.idx)
	}
	for v, id := range a.idx {
		dst.idx[v] = id
	}
	dst.nodes = append(dst.nodes[:0], a.nodes...)
	dst.freed = append(dst.freed[:0], a.freed...)
	dst.edges = a.edges
	if cap(dst.nbrs) >= len(a.nbrs) {
		dst.nbrs = dst.nbrs[:len(a.nbrs)]
	} else {
		dst.nbrs = make([][]NodeID, len(a.nbrs))
	}
	if cap(dst.slots) >= len(a.slots) {
		dst.slots = dst.slots[:len(a.slots)]
	} else {
		dst.slots = make([][]int32, len(a.slots))
	}
	// Every undirected edge appears in exactly two runs.
	total := 2 * a.edges
	nb, sb := dst.nbrBack, dst.slotBack
	if cap(nb) < total {
		nb = make([]NodeID, 0, total)
	}
	if cap(sb) < total {
		sb = make([]int32, 0, total)
	}
	nb, sb = nb[:0], sb[:0]
	for id, s := range a.nbrs {
		if len(s) == 0 {
			dst.nbrs[id], dst.slots[id] = nil, nil
			continue
		}
		lo := len(nb)
		nb = append(nb, s...)
		sb = append(sb, a.slots[id]...)
		// Full-length cap so a later in-place append in the clone cannot
		// clobber the next node's run: force reallocation on growth.
		dst.nbrs[id] = nb[lo:len(nb):len(nb)]
		dst.slots[id] = sb[lo:len(sb):len(sb)]
	}
	dst.nbrBack, dst.slotBack = nb, sb
	return dst
}

// ExportDense returns views of the adjacency's complete dense state: the
// dense-id → node table, the recycled-id free list, and the per-id neighbor
// and slot runs. The views are read-only and invalidated by the next Add or
// Remove. Together with RestoreAdjacency this is the durability surface of
// the topology index: dense-id assignment (including the recycling history
// baked into freed) determines estimator iteration order, so it must
// survive a checkpoint bit for bit. The intern map is not exported — it is
// derivable, and RestoreAdjacency rebuilds it.
//
// nodes entries at freed ids are stale values from released nodes; encoders
// must normalize them (write 0) so serialized state is a function of live
// state only.
func (a *Adjacency) ExportDense() (nodes []NodeID, freed []int32, nbrs [][]NodeID, slots [][]int32) {
	return a.nodes, a.freed, a.nbrs, a.slots
}

// RestoreAdjacency reconstructs an adjacency structure from state produced
// by ExportDense (or decoded from a checkpoint), taking ownership of the
// slices. It validates everything a forged or corrupted checkpoint could
// break — freed ids must be in range, unique and own empty runs, live ids
// must intern distinct nodes with non-empty, strictly ascending, self-free
// neighbor runs and parallel slot runs, and every half-edge must have its
// symmetric twin carrying the same slot annotation — and returns an error
// (never panics) on any violation. Slot annotations are opaque here; the
// reservoir layer cross-checks them against its heap arena.
func RestoreAdjacency(nodes []NodeID, freed []int32, nbrs [][]NodeID, slots [][]int32) (*Adjacency, error) {
	n := len(nodes)
	if n > (1<<31)-1 {
		return nil, fmt.Errorf("graph: dense table of %d ids exceeds int32", n)
	}
	if len(nbrs) != n || len(slots) != n {
		return nil, fmt.Errorf("graph: dense tables disagree: %d nodes, %d neighbor runs, %d slot runs",
			n, len(nbrs), len(slots))
	}
	isFreed := make([]bool, n)
	for _, id := range freed {
		if id < 0 || int(id) >= n {
			return nil, fmt.Errorf("graph: freed id %d outside dense table of %d", id, n)
		}
		if isFreed[id] {
			return nil, fmt.Errorf("graph: freed id %d listed twice", id)
		}
		isFreed[id] = true
		if len(nbrs[id]) != 0 || len(slots[id]) != 0 {
			return nil, fmt.Errorf("graph: freed id %d has a non-empty run", id)
		}
		if nodes[id] != 0 {
			return nil, fmt.Errorf("graph: freed id %d has a non-zero node", id)
		}
	}
	a := &Adjacency{
		idx:   make(map[NodeID]int32, n-len(freed)),
		nodes: nodes,
		nbrs:  nbrs,
		slots: slots,
		freed: freed,
	}
	half := 0
	for id := 0; id < n; id++ {
		if isFreed[id] {
			continue
		}
		v, run, sl := nodes[id], nbrs[id], slots[id]
		if len(run) == 0 {
			return nil, fmt.Errorf("graph: live id %d has no neighbors", id)
		}
		if len(sl) != len(run) {
			return nil, fmt.Errorf("graph: id %d has %d neighbors but %d slots", id, len(run), len(sl))
		}
		if _, dup := a.idx[v]; dup {
			return nil, fmt.Errorf("graph: node %d interned twice", v)
		}
		a.idx[v] = int32(id)
		for j, u := range run {
			if u == v {
				return nil, fmt.Errorf("graph: self loop at node %d", v)
			}
			if j > 0 && run[j-1] >= u {
				return nil, fmt.Errorf("graph: neighbor run of node %d is not strictly ascending", v)
			}
		}
		half += len(run)
	}
	// Symmetry: every half-edge (v,u,slot) needs its twin (u,v,slot).
	for id := 0; id < n; id++ {
		if isFreed[id] {
			continue
		}
		v := nodes[id]
		for j, u := range nbrs[id] {
			uid, ok := a.idx[u]
			if !ok {
				return nil, fmt.Errorf("graph: node %d lists neighbor %d, which is not interned", v, u)
			}
			run := nbrs[uid]
			i := searchNode(run, v)
			if i >= len(run) || run[i] != v {
				return nil, fmt.Errorf("graph: edge %d-%d has no symmetric half", v, u)
			}
			if slots[uid][i] != slots[id][j] {
				return nil, fmt.Errorf("graph: edge %d-%d slot annotations disagree (%d vs %d)",
					v, u, slots[id][j], slots[uid][i])
			}
		}
	}
	a.edges = half / 2
	return a, nil
}

// intern returns the dense id of v, allocating one if v is new.
func (a *Adjacency) intern(v NodeID) int32 {
	if id, ok := a.idx[v]; ok {
		return id
	}
	var id int32
	if n := len(a.freed); n > 0 {
		id = a.freed[n-1]
		a.freed = a.freed[:n-1]
		a.nodes[id] = v
	} else {
		id = int32(len(a.nodes))
		a.nodes = append(a.nodes, v)
		a.nbrs = append(a.nbrs, nil)
		a.slots = append(a.slots, nil)
	}
	a.idx[v] = id
	return id
}

// release drops v from the intern table, recycling its dense id and keeping
// the neighbor/slot slices' capacity for the next node interned.
func (a *Adjacency) release(v NodeID, id int32) {
	delete(a.idx, v)
	a.nbrs[id] = a.nbrs[id][:0]
	a.slots[id] = a.slots[id][:0]
	a.freed = append(a.freed, id)
}

// searchNode returns the insertion point of v in the sorted slice s.
func searchNode(s []NodeID, v NodeID) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// addHalf inserts neighbor v with edge annotation slot into dense id's
// sorted run, reporting false if v was already present.
func (a *Adjacency) addHalf(id int32, v NodeID, slot int32) bool {
	s := a.nbrs[id]
	i := searchNode(s, v)
	if i < len(s) && s[i] == v {
		return false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	a.nbrs[id] = s
	sl := append(a.slots[id], 0)
	copy(sl[i+1:], sl[i:])
	sl[i] = slot
	a.slots[id] = sl
	return true
}

// removeHalf deletes neighbor v (and its slot) from dense id's run,
// reporting false if absent.
func (a *Adjacency) removeHalf(id int32, v NodeID) bool {
	s := a.nbrs[id]
	i := searchNode(s, v)
	if i >= len(s) || s[i] != v {
		return false
	}
	copy(s[i:], s[i+1:])
	a.nbrs[id] = s[:len(s)-1]
	sl := a.slots[id]
	copy(sl[i:], sl[i+1:])
	a.slots[id] = sl[:len(sl)-1]
	return true
}

// Add inserts the edge with no slot annotation and reports whether it was
// newly added (false if it was already present).
func (a *Adjacency) Add(e Edge) bool { return a.AddWithSlot(e, -1) }

// AddWithSlot inserts the edge annotated with the given slot, recorded in
// both endpoints' slot runs. The reservoir passes the heap arena slot here
// so every later neighbor enumeration can resolve the edge's heap entry by
// array read.
func (a *Adjacency) AddWithSlot(e Edge, slot int32) bool {
	iu := a.intern(e.U)
	if !a.addHalf(iu, e.V, slot) {
		return false
	}
	iv := a.intern(e.V)
	a.addHalf(iv, e.U, slot)
	a.edges++
	return true
}

// Remove deletes the edge and reports whether it was present. Nodes whose
// last incident edge is removed are dropped entirely so that the node count
// tracks the sampled subgraph.
func (a *Adjacency) Remove(e Edge) bool {
	iu, ok := a.idx[e.U]
	if !ok {
		return false
	}
	if !a.removeHalf(iu, e.V) {
		return false
	}
	if len(a.nbrs[iu]) == 0 {
		a.release(e.U, iu)
	}
	iv := a.idx[e.V]
	a.removeHalf(iv, e.U)
	if len(a.nbrs[iv]) == 0 {
		a.release(e.V, iv)
	}
	a.edges--
	return true
}

func (a *Adjacency) neighborsOf(v NodeID) []NodeID {
	if id, ok := a.idx[v]; ok {
		return a.nbrs[id]
	}
	return nil
}

// Has reports whether the edge is present.
func (a *Adjacency) Has(e Edge) bool {
	s := a.neighborsOf(e.U)
	i := searchNode(s, e.V)
	return i < len(s) && s[i] == e.V
}

// HasNode reports whether v has at least one incident edge.
func (a *Adjacency) HasNode(v NodeID) bool {
	_, ok := a.idx[v]
	return ok
}

// Degree returns the number of neighbors of v in the structure.
func (a *Adjacency) Degree(v NodeID) int { return len(a.neighborsOf(v)) }

// NumNodes returns the number of nodes with at least one incident edge.
func (a *Adjacency) NumNodes() int { return len(a.idx) }

// NumEdges returns the number of edges currently stored.
func (a *Adjacency) NumEdges() int { return a.edges }

// Neighbors calls fn for each neighbor of v in ascending order until fn
// returns false.
func (a *Adjacency) Neighbors(v NodeID, fn func(NodeID) bool) {
	for _, u := range a.neighborsOf(v) {
		if !fn(u) {
			return
		}
	}
}

// NeighborRun returns v's sorted neighbor run and the parallel slot run
// (slots[i] annotates the edge {v, nbrs[i]}). Both slices are views into
// internal storage: callers must treat them as read-only, and they are
// invalidated by the next Add or Remove. Absent nodes return nil runs.
func (a *Adjacency) NeighborRun(v NodeID) (nbrs []NodeID, slots []int32) {
	if id, ok := a.idx[v]; ok {
		return a.nbrs[id], a.slots[id]
	}
	return nil, nil
}

// SlotOf returns the slot annotation recorded for edge e, or -1 when e is
// absent (note that -1 is also the annotation of edges added through plain
// Add). Cost is one intern lookup plus a binary search — no hash probe of
// any per-edge table.
func (a *Adjacency) SlotOf(e Edge) int32 {
	s, sl := a.NeighborRun(e.U)
	i := searchNode(s, e.V)
	if i < len(s) && s[i] == e.V {
		return sl[i]
	}
	return -1
}

// DenseLen returns the length of the dense-id space, including freed ids
// (whose runs are empty). It is the iteration bound for RunAt.
func (a *Adjacency) DenseLen() int { return len(a.nbrs) }

// RunAt returns the node interned at the given dense id together with its
// neighbor and slot runs. Freed ids return empty runs and a stale node id;
// callers must skip runs of length zero. The run slices follow the same
// read-only/invalidation contract as NeighborRun.
func (a *Adjacency) RunAt(id int) (NodeID, []NodeID, []int32) {
	return a.nodes[id], a.nbrs[id], a.slots[id]
}

// CommonNeighbors calls fn for each node adjacent to both u and v, in
// ascending order, until fn returns false. This is the query behind
// W(k,K̂)=|Γ̂(v1)∩Γ̂(v2)| (§3.2, S4): a two-pointer merge over the sorted
// neighbor runs, degrading to binary probes of the larger run when the
// degrees are skewed by more than 16×. It allocates nothing.
func (a *Adjacency) CommonNeighbors(u, v NodeID, fn func(NodeID) bool) {
	su, sv := a.neighborsOf(u), a.neighborsOf(v)
	if len(su) > len(sv) {
		su, sv = sv, su
	}
	if len(su) == 0 {
		return
	}
	if len(sv) > 16*len(su) {
		// Skewed: probe the big run for each element of the small one.
		for _, w := range su {
			i := searchNode(sv, w)
			if i < len(sv) && sv[i] == w {
				if !fn(w) {
					return
				}
			}
			sv = sv[i:]
		}
		return
	}
	i, j := 0, 0
	for i < len(su) && j < len(sv) {
		x, y := su[i], sv[j]
		switch {
		case x == y:
			if !fn(x) {
				return
			}
			i++
			j++
		case x < y:
			i++
		default:
			j++
		}
	}
}

// CommonNeighborsWithSlots is CommonNeighbors additionally yielding the
// slot annotations of the two run edges: su for {u,w} and sv for {v,w}.
// Enumeration order and the merge/probe strategy match CommonNeighbors
// exactly, so replacing one with the other cannot reorder a summation.
func (a *Adjacency) CommonNeighborsWithSlots(u, v NodeID, fn func(w NodeID, su, sv int32) bool) {
	nu, slu := a.NeighborRun(u)
	nv, slv := a.NeighborRun(v)
	swapped := false
	if len(nu) > len(nv) {
		nu, nv, slu, slv = nv, nu, slv, slu
		swapped = true
	}
	if len(nu) == 0 {
		return
	}
	emit := func(w NodeID, small, big int32) bool {
		if swapped {
			return fn(w, big, small)
		}
		return fn(w, small, big)
	}
	if len(nv) > 16*len(nu) {
		// Skewed: probe the big run for each element of the small one.
		off := 0
		for i, w := range nu {
			j := off + searchNode(nv[off:], w)
			if j < len(nv) && nv[j] == w {
				if !emit(w, slu[i], slv[j]) {
					return
				}
			}
			off = j
		}
		return
	}
	i, j := 0, 0
	for i < len(nu) && j < len(nv) {
		x, y := nu[i], nv[j]
		switch {
		case x == y:
			if !emit(x, slu[i], slv[j]) {
				return
			}
			i++
			j++
		case x < y:
			i++
		default:
			j++
		}
	}
}

// CountCommonNeighbors returns |Γ(u) ∩ Γ(v)|, the number of triangles the
// edge {u,v} would close against the stored graph.
func (a *Adjacency) CountCommonNeighbors(u, v NodeID) int {
	n := 0
	a.CommonNeighbors(u, v, func(NodeID) bool { n++; return true })
	return n
}

// Wedges returns the number of wedges (paths of length two) centered at v:
// deg(v) choose 2.
func (a *Adjacency) Wedges(v NodeID) int64 {
	d := int64(len(a.neighborsOf(v)))
	return d * (d - 1) / 2
}

// ForEachEdge calls fn once per stored edge (in canonical form) until fn
// returns false. Iteration order is unspecified.
func (a *Adjacency) ForEachEdge(fn func(Edge) bool) {
	for id, set := range a.nbrs {
		u := a.nodes[id]
		for _, v := range set {
			if u < v {
				if !fn(Edge{U: u, V: v}) {
					return
				}
			}
		}
	}
}

// ForEachNode calls fn once per node with at least one incident edge until fn
// returns false.
func (a *Adjacency) ForEachNode(fn func(NodeID) bool) {
	for id, set := range a.nbrs {
		if len(set) > 0 {
			if !fn(a.nodes[id]) {
				return
			}
		}
	}
}

package graph

// Adjacency is a dynamic undirected adjacency structure supporting edge
// insertion, deletion and neighborhood queries. It is the topology index of
// the GPS reservoir: W(k,K̂) weight functions and the triangle/wedge
// estimators need Γ̂(v) iteration and common-neighbor queries against the
// *currently sampled* graph, which gains and loses edges as the reservoir
// evolves.
//
// Layout: nodes are interned to dense int32 ids on first touch (one flat
// map lookup per endpoint), and each dense id owns a sorted []NodeID
// neighbor slice. Dense ids of nodes whose last incident edge is removed
// are recycled, and their neighbor slices keep their capacity, so a
// reservoir in steady state (one insert + one evict per arrival) runs
// allocation-free. Compared to the earlier map[NodeID]map[NodeID]struct{}
// representation this removes the per-node hash set allocations, makes
// Neighbors/CommonNeighbors iterate contiguous memory, and gives every
// query a deterministic (ascending) iteration order.
//
// Space is O(|V̂|+m) as discussed in §3.2 (S4) of the paper. Neighbor
// lookup is O(log deg); insertion and removal are O(deg) moves within one
// slice, which for the small degrees of reservoir subgraphs is faster than
// a hash probe. Common neighbors of (u,v) cost
// O(min(deg(u)+deg(v), min·log max)) — a linear merge of the two sorted
// runs, switching to binary probes when the degrees are badly skewed.
//
// The zero value is not usable; construct with NewAdjacency.
type Adjacency struct {
	idx   map[NodeID]int32 // intern table: node → dense id
	nodes []NodeID         // dense id → node
	nbrs  [][]NodeID       // dense id → sorted neighbors
	freed []int32          // recycled dense ids
	edges int
}

// NewAdjacency returns an empty adjacency structure.
func NewAdjacency() *Adjacency {
	return &Adjacency{idx: make(map[NodeID]int32)}
}

// Clone returns a deep copy of the adjacency structure; the clone and the
// original evolve independently. Neighbor slices are copied into one shared
// backing array sized to the live edge count, so the clone costs two large
// allocations plus the intern-table copy rather than one allocation per
// node.
func (a *Adjacency) Clone() *Adjacency {
	c := &Adjacency{
		idx:   make(map[NodeID]int32, len(a.idx)),
		nodes: append([]NodeID(nil), a.nodes...),
		nbrs:  make([][]NodeID, len(a.nbrs)),
		freed: append([]int32(nil), a.freed...),
		edges: a.edges,
	}
	for v, id := range a.idx {
		c.idx[v] = id
	}
	total := 0
	for _, s := range a.nbrs {
		total += len(s)
	}
	backing := make([]NodeID, 0, total)
	for id, s := range a.nbrs {
		if len(s) == 0 {
			continue
		}
		lo := len(backing)
		backing = append(backing, s...)
		// Full-length cap so a later in-place append in the clone cannot
		// clobber the next node's run: force reallocation on growth.
		c.nbrs[id] = backing[lo:len(backing):len(backing)]
	}
	return c
}

// intern returns the dense id of v, allocating one if v is new.
func (a *Adjacency) intern(v NodeID) int32 {
	if id, ok := a.idx[v]; ok {
		return id
	}
	var id int32
	if n := len(a.freed); n > 0 {
		id = a.freed[n-1]
		a.freed = a.freed[:n-1]
		a.nodes[id] = v
	} else {
		id = int32(len(a.nodes))
		a.nodes = append(a.nodes, v)
		a.nbrs = append(a.nbrs, nil)
	}
	a.idx[v] = id
	return id
}

// release drops v from the intern table, recycling its dense id and keeping
// the neighbor slice's capacity for the next node interned.
func (a *Adjacency) release(v NodeID, id int32) {
	delete(a.idx, v)
	a.nbrs[id] = a.nbrs[id][:0]
	a.freed = append(a.freed, id)
}

// searchNode returns the insertion point of v in the sorted slice s.
func searchNode(s []NodeID, v NodeID) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insertNode adds v to the sorted slice, reporting false if already present.
func insertNode(s []NodeID, v NodeID) ([]NodeID, bool) {
	i := searchNode(s, v)
	if i < len(s) && s[i] == v {
		return s, false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s, true
}

// removeNode deletes v from the sorted slice, reporting false if absent.
func removeNode(s []NodeID, v NodeID) ([]NodeID, bool) {
	i := searchNode(s, v)
	if i >= len(s) || s[i] != v {
		return s, false
	}
	copy(s[i:], s[i+1:])
	return s[:len(s)-1], true
}

// Add inserts the edge and reports whether it was newly added (false if it
// was already present).
func (a *Adjacency) Add(e Edge) bool {
	iu := a.intern(e.U)
	su, added := insertNode(a.nbrs[iu], e.V)
	if !added {
		return false
	}
	a.nbrs[iu] = su
	iv := a.intern(e.V)
	a.nbrs[iv], _ = insertNode(a.nbrs[iv], e.U)
	a.edges++
	return true
}

// Remove deletes the edge and reports whether it was present. Nodes whose
// last incident edge is removed are dropped entirely so that the node count
// tracks the sampled subgraph.
func (a *Adjacency) Remove(e Edge) bool {
	iu, ok := a.idx[e.U]
	if !ok {
		return false
	}
	su, removed := removeNode(a.nbrs[iu], e.V)
	if !removed {
		return false
	}
	a.nbrs[iu] = su
	if len(su) == 0 {
		a.release(e.U, iu)
	}
	iv := a.idx[e.V]
	sv, _ := removeNode(a.nbrs[iv], e.U)
	a.nbrs[iv] = sv
	if len(sv) == 0 {
		a.release(e.V, iv)
	}
	a.edges--
	return true
}

func (a *Adjacency) neighborsOf(v NodeID) []NodeID {
	if id, ok := a.idx[v]; ok {
		return a.nbrs[id]
	}
	return nil
}

// Has reports whether the edge is present.
func (a *Adjacency) Has(e Edge) bool {
	s := a.neighborsOf(e.U)
	i := searchNode(s, e.V)
	return i < len(s) && s[i] == e.V
}

// HasNode reports whether v has at least one incident edge.
func (a *Adjacency) HasNode(v NodeID) bool {
	_, ok := a.idx[v]
	return ok
}

// Degree returns the number of neighbors of v in the structure.
func (a *Adjacency) Degree(v NodeID) int { return len(a.neighborsOf(v)) }

// NumNodes returns the number of nodes with at least one incident edge.
func (a *Adjacency) NumNodes() int { return len(a.idx) }

// NumEdges returns the number of edges currently stored.
func (a *Adjacency) NumEdges() int { return a.edges }

// Neighbors calls fn for each neighbor of v in ascending order until fn
// returns false.
func (a *Adjacency) Neighbors(v NodeID, fn func(NodeID) bool) {
	for _, u := range a.neighborsOf(v) {
		if !fn(u) {
			return
		}
	}
}

// CommonNeighbors calls fn for each node adjacent to both u and v, in
// ascending order, until fn returns false. This is the query behind
// W(k,K̂)=|Γ̂(v1)∩Γ̂(v2)| (§3.2, S4): a two-pointer merge over the sorted
// neighbor runs, degrading to binary probes of the larger run when the
// degrees are skewed by more than 16×. It allocates nothing.
func (a *Adjacency) CommonNeighbors(u, v NodeID, fn func(NodeID) bool) {
	su, sv := a.neighborsOf(u), a.neighborsOf(v)
	if len(su) > len(sv) {
		su, sv = sv, su
	}
	if len(su) == 0 {
		return
	}
	if len(sv) > 16*len(su) {
		// Skewed: probe the big run for each element of the small one.
		for _, w := range su {
			i := searchNode(sv, w)
			if i < len(sv) && sv[i] == w {
				if !fn(w) {
					return
				}
			}
			sv = sv[i:]
		}
		return
	}
	i, j := 0, 0
	for i < len(su) && j < len(sv) {
		x, y := su[i], sv[j]
		switch {
		case x == y:
			if !fn(x) {
				return
			}
			i++
			j++
		case x < y:
			i++
		default:
			j++
		}
	}
}

// CountCommonNeighbors returns |Γ(u) ∩ Γ(v)|, the number of triangles the
// edge {u,v} would close against the stored graph.
func (a *Adjacency) CountCommonNeighbors(u, v NodeID) int {
	n := 0
	a.CommonNeighbors(u, v, func(NodeID) bool { n++; return true })
	return n
}

// Wedges returns the number of wedges (paths of length two) centered at v:
// deg(v) choose 2.
func (a *Adjacency) Wedges(v NodeID) int64 {
	d := int64(len(a.neighborsOf(v)))
	return d * (d - 1) / 2
}

// ForEachEdge calls fn once per stored edge (in canonical form) until fn
// returns false. Iteration order is unspecified.
func (a *Adjacency) ForEachEdge(fn func(Edge) bool) {
	for id, set := range a.nbrs {
		u := a.nodes[id]
		for _, v := range set {
			if u < v {
				if !fn(Edge{U: u, V: v}) {
					return
				}
			}
		}
	}
}

// ForEachNode calls fn once per node with at least one incident edge until fn
// returns false.
func (a *Adjacency) ForEachNode(fn func(NodeID) bool) {
	for id, set := range a.nbrs {
		if len(set) > 0 {
			if !fn(a.nodes[id]) {
				return
			}
		}
	}
}

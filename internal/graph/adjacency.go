package graph

// Adjacency is a dynamic undirected adjacency structure supporting edge
// insertion, deletion and neighborhood queries. It is the topology index of
// the GPS reservoir: W(k,K̂) weight functions and the triangle/wedge
// estimators need Γ̂(v) iteration and common-neighbor queries against the
// *currently sampled* graph, which gains and loses edges as the reservoir
// evolves.
//
// Space is O(|V̂|+m) as discussed in §3.2 (S4) of the paper: one hash-set of
// neighbors per retained node. Neighbor lookup is O(1) expected; common
// neighbors of (u,v) cost O(min{deg(u),deg(v)}) expected.
//
// The zero value is not usable; construct with NewAdjacency.
type Adjacency struct {
	nbrs  map[NodeID]map[NodeID]struct{}
	edges int
}

// NewAdjacency returns an empty adjacency structure.
func NewAdjacency() *Adjacency {
	return &Adjacency{nbrs: make(map[NodeID]map[NodeID]struct{})}
}

// Add inserts the edge and reports whether it was newly added (false if it
// was already present).
func (a *Adjacency) Add(e Edge) bool {
	if a.has(e.U, e.V) {
		return false
	}
	a.link(e.U, e.V)
	a.link(e.V, e.U)
	a.edges++
	return true
}

func (a *Adjacency) link(u, v NodeID) {
	set := a.nbrs[u]
	if set == nil {
		set = make(map[NodeID]struct{}, 4)
		a.nbrs[u] = set
	}
	set[v] = struct{}{}
}

// Remove deletes the edge and reports whether it was present. Nodes whose
// last incident edge is removed are dropped entirely so that the node count
// tracks the sampled subgraph.
func (a *Adjacency) Remove(e Edge) bool {
	if !a.has(e.U, e.V) {
		return false
	}
	a.unlink(e.U, e.V)
	a.unlink(e.V, e.U)
	a.edges--
	return true
}

func (a *Adjacency) unlink(u, v NodeID) {
	set := a.nbrs[u]
	delete(set, v)
	if len(set) == 0 {
		delete(a.nbrs, u)
	}
}

func (a *Adjacency) has(u, v NodeID) bool {
	_, ok := a.nbrs[u][v]
	return ok
}

// Has reports whether the edge is present.
func (a *Adjacency) Has(e Edge) bool { return a.has(e.U, e.V) }

// HasNode reports whether v has at least one incident edge.
func (a *Adjacency) HasNode(v NodeID) bool { return len(a.nbrs[v]) > 0 }

// Degree returns the number of neighbors of v in the structure.
func (a *Adjacency) Degree(v NodeID) int { return len(a.nbrs[v]) }

// NumNodes returns the number of nodes with at least one incident edge.
func (a *Adjacency) NumNodes() int { return len(a.nbrs) }

// NumEdges returns the number of edges currently stored.
func (a *Adjacency) NumEdges() int { return a.edges }

// Neighbors calls fn for each neighbor of v until fn returns false.
// Iteration order is unspecified.
func (a *Adjacency) Neighbors(v NodeID, fn func(NodeID) bool) {
	for u := range a.nbrs[v] {
		if !fn(u) {
			return
		}
	}
}

// CommonNeighbors calls fn for each node adjacent to both u and v, iterating
// the smaller neighborhood and probing the larger, until fn returns false.
// This is the O(min{deg(u),deg(v)}) pattern the paper uses to evaluate
// W(k,K̂)=|Γ̂(v1)∩Γ̂(v2)| per arriving edge (§3.2, S4).
func (a *Adjacency) CommonNeighbors(u, v NodeID, fn func(NodeID) bool) {
	su, sv := a.nbrs[u], a.nbrs[v]
	if len(su) > len(sv) {
		su, sv = sv, su
	}
	for w := range su {
		if _, ok := sv[w]; ok {
			if !fn(w) {
				return
			}
		}
	}
}

// CountCommonNeighbors returns |Γ(u) ∩ Γ(v)|, the number of triangles the
// edge {u,v} would close against the stored graph.
func (a *Adjacency) CountCommonNeighbors(u, v NodeID) int {
	n := 0
	a.CommonNeighbors(u, v, func(NodeID) bool { n++; return true })
	return n
}

// Wedges returns the number of wedges (paths of length two) centered at v:
// deg(v) choose 2.
func (a *Adjacency) Wedges(v NodeID) int64 {
	d := int64(len(a.nbrs[v]))
	return d * (d - 1) / 2
}

// ForEachEdge calls fn once per stored edge (in canonical form) until fn
// returns false. Iteration order is unspecified.
func (a *Adjacency) ForEachEdge(fn func(Edge) bool) {
	for u, set := range a.nbrs {
		for v := range set {
			if u < v {
				if !fn(Edge{U: u, V: v}) {
					return
				}
			}
		}
	}
}

// ForEachNode calls fn once per node with at least one incident edge until fn
// returns false.
func (a *Adjacency) ForEachNode(fn func(NodeID) bool) {
	for v := range a.nbrs {
		if !fn(v) {
			return
		}
	}
}

package graph

import "testing"

func TestAdjacencySlotRuns(t *testing.T) {
	a := NewAdjacency()
	a.AddWithSlot(NewEdge(1, 2), 10)
	a.AddWithSlot(NewEdge(1, 3), 11)
	a.AddWithSlot(NewEdge(2, 3), 12)
	a.AddWithSlot(NewEdge(3, 4), 13)

	if got := a.SlotOf(NewEdge(1, 2)); got != 10 {
		t.Fatalf("SlotOf(1-2) = %d, want 10", got)
	}
	if got := a.SlotOf(NewEdge(2, 1)); got != 10 {
		t.Fatalf("SlotOf(2-1) = %d, want 10 (orientation-independent)", got)
	}
	if got := a.SlotOf(NewEdge(1, 4)); got != -1 {
		t.Fatalf("SlotOf(absent) = %d, want -1", got)
	}

	nbrs, slots := a.NeighborRun(3)
	if len(nbrs) != 3 || len(slots) != 3 {
		t.Fatalf("run of 3: %v / %v", nbrs, slots)
	}
	for i, want := range []struct {
		n NodeID
		s int32
	}{{1, 11}, {2, 12}, {4, 13}} {
		if nbrs[i] != want.n || slots[i] != want.s {
			t.Fatalf("run of 3 at %d: (%d,%d), want (%d,%d)", i, nbrs[i], slots[i], want.n, want.s)
		}
	}

	// Duplicate insert must not disturb the recorded slot.
	if a.AddWithSlot(NewEdge(1, 2), 99) {
		t.Fatal("duplicate AddWithSlot reported true")
	}
	if got := a.SlotOf(NewEdge(1, 2)); got != 10 {
		t.Fatalf("slot changed by duplicate add: %d", got)
	}

	// Removal drops the slot from both runs; reinsertion records the new one.
	a.Remove(NewEdge(1, 3))
	if got := a.SlotOf(NewEdge(1, 3)); got != -1 {
		t.Fatalf("removed edge still has slot %d", got)
	}
	a.AddWithSlot(NewEdge(1, 3), 20)
	if got := a.SlotOf(NewEdge(1, 3)); got != 20 {
		t.Fatalf("reinserted slot = %d, want 20", got)
	}

	// CommonNeighborsWithSlots yields (w, slot{u,w}, slot{v,w}) ascending.
	var seen []NodeID
	a.CommonNeighborsWithSlots(1, 2, func(w NodeID, su, sv int32) bool {
		seen = append(seen, w)
		if w != 3 || su != 20 || sv != 12 {
			t.Fatalf("common neighbor (w=%d su=%d sv=%d), want (3, 20, 12)", w, su, sv)
		}
		return true
	})
	if len(seen) != 1 {
		t.Fatalf("common neighbors of 1,2: %v", seen)
	}
}

func TestAdjacencyCommonNeighborsWithSlotsSkewed(t *testing.T) {
	// Degrees skewed beyond 16× exercise the binary-probe branch; the
	// result must match the merge branch and CommonNeighbors.
	a := NewAdjacency()
	slot := int32(0)
	for v := NodeID(2); v < 200; v++ {
		a.AddWithSlot(NewEdge(1, v), slot)
		slot++
	}
	for _, v := range []NodeID{5, 50, 150} {
		a.AddWithSlot(NewEdge(200, v), slot)
		slot++
	}
	a.AddWithSlot(NewEdge(1, 200), slot)

	var plain []NodeID
	a.CommonNeighbors(1, 200, func(w NodeID) bool { plain = append(plain, w); return true })
	var withSlots []NodeID
	a.CommonNeighborsWithSlots(1, 200, func(w NodeID, su, sv int32) bool {
		withSlots = append(withSlots, w)
		if want := a.SlotOf(NewEdge(1, w)); su != want {
			t.Fatalf("su of %d = %d, want %d", w, su, want)
		}
		if want := a.SlotOf(NewEdge(200, w)); sv != want {
			t.Fatalf("sv of %d = %d, want %d", w, sv, want)
		}
		return true
	})
	if len(plain) != len(withSlots) || len(plain) != 3 {
		t.Fatalf("enumerations differ: %v vs %v", plain, withSlots)
	}
	for i := range plain {
		if plain[i] != withSlots[i] {
			t.Fatalf("order differs at %d: %v vs %v", i, plain, withSlots)
		}
	}
}

func TestAdjacencyCloneIntoReuse(t *testing.T) {
	a := NewAdjacency()
	for v := NodeID(2); v < 40; v++ {
		a.AddWithSlot(NewEdge(1, v), int32(v))
	}
	c1 := a.Clone()
	// Mutate the original; refresh a recycled clone and verify it matches.
	a.Remove(NewEdge(1, 5))
	a.AddWithSlot(NewEdge(2, 3), 99)
	c2 := a.CloneInto(c1)
	if c2.NumEdges() != a.NumEdges() {
		t.Fatalf("recycled clone has %d edges, want %d", c2.NumEdges(), a.NumEdges())
	}
	if got := c2.SlotOf(NewEdge(2, 3)); got != 99 {
		t.Fatalf("recycled clone slot = %d, want 99", got)
	}
	if c2.Has(NewEdge(1, 5)) {
		t.Fatal("recycled clone kept a removed edge")
	}
	// Clone independence: mutating the source does not touch the clone.
	a.Remove(NewEdge(1, 7))
	if !c2.Has(NewEdge(1, 7)) {
		t.Fatal("clone lost an edge when the source changed")
	}
}

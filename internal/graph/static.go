package graph

import "sort"

// Static is an immutable compressed-sparse-row (CSR) representation of a
// simple undirected graph. It is the substrate of the exact counters: sorted
// neighbor slices admit merge-based intersection, and the flat layout keeps
// the counters cache-friendly on multi-million-edge inputs.
type Static struct {
	offsets []int64  // len = numNodes+1; neighbor range of node v is nbrs[offsets[v]:offsets[v+1]]
	nbrs    []NodeID // concatenated sorted neighbor lists
	edges   int64
}

// BuildStatic constructs a Static graph from a set of canonical edges.
// The input must already be deduplicated (as produced by EdgeSet or the
// stream simplifier); duplicate edges would corrupt degree counts.
// Node ids are used as-is: the node universe is [0, maxID].
func BuildStatic(edges []Edge) *Static {
	var maxID NodeID
	for _, e := range edges {
		if e.V > maxID {
			maxID = e.V
		}
		if e.U > maxID {
			maxID = e.U
		}
	}
	n := int(maxID) + 1
	if len(edges) == 0 {
		n = 0
	}
	deg := make([]int64, n+1)
	for _, e := range edges {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	offsets := make([]int64, n+1)
	for i := 1; i <= n; i++ {
		offsets[i] = offsets[i-1] + deg[i]
	}
	nbrs := make([]NodeID, 2*len(edges))
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range edges {
		nbrs[cursor[e.U]] = e.V
		cursor[e.U]++
		nbrs[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	g := &Static{offsets: offsets, nbrs: nbrs, edges: int64(len(edges))}
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		seg := nbrs[lo:hi]
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
	}
	return g
}

// NumNodes returns the size of the node universe [0, maxID].
// Isolated ids inside the range count as degree-zero nodes.
func (g *Static) NumNodes() int { return len(g.offsets) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Static) NumEdges() int64 { return g.edges }

// Degree returns the degree of v.
func (g *Static) Degree(v NodeID) int64 {
	return g.offsets[v+1] - g.offsets[v]
}

// Neighbors returns the sorted neighbor slice of v. The slice aliases the
// graph's internal storage and must not be modified.
func (g *Static) Neighbors(v NodeID) []NodeID {
	return g.nbrs[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u,v} is an edge, by binary search in the smaller
// neighbor list.
func (g *Static) HasEdge(u, v NodeID) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// Edges returns all edges in canonical form. The result is freshly allocated.
func (g *Static) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(NodeID(v)) {
			if NodeID(v) < u {
				out = append(out, Edge{U: NodeID(v), V: u})
			}
		}
	}
	return out
}

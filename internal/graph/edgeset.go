package graph

// EdgeSet accumulates a simple graph edge by edge, silently dropping self
// loops and duplicates. The synthetic generators write into an EdgeSet so
// that their output is a valid simplified graph regardless of how often the
// underlying random process proposes the same pair.
//
// The zero value is not usable; construct with NewEdgeSet.
type EdgeSet struct {
	keys  map[uint64]struct{}
	edges []Edge
}

// NewEdgeSet returns an EdgeSet with capacity hint n.
func NewEdgeSet(n int) *EdgeSet {
	return &EdgeSet{
		keys:  make(map[uint64]struct{}, n),
		edges: make([]Edge, 0, n),
	}
}

// Add inserts the undirected edge {a,b}, reporting whether it was added.
// Self loops (a==b) and duplicates return false.
func (s *EdgeSet) Add(a, b NodeID) bool {
	if a == b {
		return false
	}
	e := NewEdge(a, b)
	k := e.Key()
	if _, dup := s.keys[k]; dup {
		return false
	}
	s.keys[k] = struct{}{}
	s.edges = append(s.edges, e)
	return true
}

// Has reports whether the undirected edge {a,b} is present.
func (s *EdgeSet) Has(a, b NodeID) bool {
	if a == b {
		return false
	}
	_, ok := s.keys[NewEdge(a, b).Key()]
	return ok
}

// Len returns the number of distinct edges added.
func (s *EdgeSet) Len() int { return len(s.edges) }

// Edges returns the accumulated edges in insertion order. The slice aliases
// internal storage; callers that mutate it must copy first.
func (s *EdgeSet) Edges() []Edge { return s.edges }

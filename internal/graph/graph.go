// Package graph defines the graph model shared by every subsystem of the GPS
// reproduction: node identifiers, canonical undirected edges, a dynamic
// adjacency structure used for reservoir topology queries, a compact static
// CSR representation used by the exact counters, and a deduplicating edge-set
// builder used by the synthetic generators.
//
// The paper (§6) evaluates on "undirected, unweighted, simplified" graphs,
// i.e. no self loops and no duplicate edges; every type in this package
// enforces those invariants.
package graph

import "fmt"

// NodeID identifies a vertex. The reproduction targets laptop-scale graphs
// (up to a few tens of millions of nodes), so 32 bits suffice and halve the
// memory of adjacency structures relative to int64.
type NodeID uint32

// Edge is an undirected edge in canonical form: U < V always holds for edges
// constructed through NewEdge. Because the paper's streams carry unique,
// simplified edges, an Edge doubles as the identity of a stream item.
//
// TS is an optional event timestamp in caller-defined units (seconds, epoch
// millis, logical ticks); 0 means "no timestamp", in which case temporal
// consumers fall back to arrival order. TS is NOT part of the edge's
// identity: Key ignores it, and every structure that deduplicates or looks
// up edges goes through Key. Code must not compare two Edge values with ==
// unless they provably stem from the same arrival.
//
// Del marks a turnstile deletion record: the stream item retracts the edge
// {U,V} instead of inserting it. Like TS it is transport metadata, not
// identity — samplers strip it on admission, so stored entries never carry
// it, and Key ignores it.
type Edge struct {
	U, V NodeID
	TS   uint64
	Del  bool
}

// NewEdge returns the canonical form of the undirected edge {a,b}.
// It panics if a == b: self loops are excluded from the graph model and must
// be filtered by the stream layer before reaching any sampler.
func NewEdge(a, b NodeID) Edge {
	if a == b {
		panic(fmt.Sprintf("graph: self loop at node %d", a))
	}
	if a > b {
		a, b = b, a
	}
	return Edge{U: a, V: b}
}

// NewEdgeAt is NewEdge carrying an event timestamp.
func NewEdgeAt(a, b NodeID, ts uint64) Edge {
	e := NewEdge(a, b)
	e.TS = ts
	return e
}

// At returns a copy of e stamped with the given event timestamp.
func (e Edge) At(ts uint64) Edge {
	e.TS = ts
	return e
}

// AsDeletion returns a copy of e flagged as a turnstile deletion record.
func (e Edge) AsDeletion() Edge {
	e.Del = true
	return e
}

// Insert returns a copy of e with the deletion flag cleared — the form
// samplers store, so reservoir entries never carry transport metadata.
func (e Edge) Insert() Edge {
	e.Del = false
	return e
}

// Key packs the canonical edge into a single comparable 64-bit map key.
func (e Edge) Key() uint64 {
	return uint64(e.U)<<32 | uint64(e.V)
}

// EdgeFromKey is the inverse of Edge.Key.
func EdgeFromKey(k uint64) Edge {
	return Edge{U: NodeID(k >> 32), V: NodeID(k & 0xffffffff)}
}

// Canonical reports whether e is in canonical form (U < V).
func (e Edge) Canonical() bool { return e.U < e.V }

// Has reports whether v is an endpoint of e.
func (e Edge) Has(v NodeID) bool { return e.U == v || e.V == v }

// Other returns the endpoint of e opposite v. The boolean is false when v is
// not an endpoint of e.
func (e Edge) Other(v NodeID) (NodeID, bool) {
	switch v {
	case e.U:
		return e.V, true
	case e.V:
		return e.U, true
	}
	return 0, false
}

// SharedNode returns the node shared by two adjacent edges. The boolean is
// false when the edges are not adjacent (or are equal, which in a simple
// graph means they share both endpoints).
func (e Edge) SharedNode(f Edge) (NodeID, bool) {
	if e == f {
		return 0, false
	}
	if f.Has(e.U) {
		return e.U, true
	}
	if f.Has(e.V) {
		return e.V, true
	}
	return 0, false
}

// Adjacent reports whether e and f are distinct edges sharing an endpoint —
// the relation k ~ k' of §3.1.
func (e Edge) Adjacent(f Edge) bool {
	_, ok := e.SharedNode(f)
	return ok
}

// String renders the edge as "u-v".
func (e Edge) String() string { return fmt.Sprintf("%d-%d", e.U, e.V) }

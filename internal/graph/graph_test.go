package graph

import (
	"testing"
	"testing/quick"
)

func TestNewEdgeCanonical(t *testing.T) {
	e := NewEdge(5, 2)
	if e.U != 2 || e.V != 5 {
		t.Fatalf("NewEdge(5,2) = %v, want 2-5", e)
	}
	if !e.Canonical() {
		t.Fatal("edge not canonical")
	}
	if NewEdge(2, 5) != e {
		t.Fatal("NewEdge is not order-insensitive")
	}
}

func TestNewEdgePanicsOnSelfLoop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEdge(3,3) did not panic")
		}
	}()
	NewEdge(3, 3)
}

func TestEdgeKeyRoundTrip(t *testing.T) {
	f := func(a, b uint32) bool {
		if a == b {
			return true
		}
		e := NewEdge(NodeID(a), NodeID(b))
		return EdgeFromKey(e.Key()) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeKeyInjective(t *testing.T) {
	a := NewEdge(1, 2)
	b := NewEdge(1, 3)
	c := NewEdge(2, 3)
	if a.Key() == b.Key() || a.Key() == c.Key() || b.Key() == c.Key() {
		t.Fatal("edge keys collide")
	}
}

func TestEdgeOther(t *testing.T) {
	e := NewEdge(1, 2)
	if v, ok := e.Other(1); !ok || v != 2 {
		t.Fatalf("Other(1) = %v,%v", v, ok)
	}
	if v, ok := e.Other(2); !ok || v != 1 {
		t.Fatalf("Other(2) = %v,%v", v, ok)
	}
	if _, ok := e.Other(9); ok {
		t.Fatal("Other(9) should fail")
	}
}

func TestEdgeAdjacent(t *testing.T) {
	e := NewEdge(1, 2)
	cases := []struct {
		f    Edge
		want bool
	}{
		{NewEdge(2, 3), true},
		{NewEdge(1, 9), true},
		{NewEdge(3, 4), false},
		{NewEdge(1, 2), false}, // equal edges are not "adjacent"
	}
	for _, c := range cases {
		if got := e.Adjacent(c.f); got != c.want {
			t.Errorf("Adjacent(%v,%v) = %v, want %v", e, c.f, got, c.want)
		}
	}
}

func TestSharedNode(t *testing.T) {
	e, f := NewEdge(1, 2), NewEdge(2, 3)
	if v, ok := e.SharedNode(f); !ok || v != 2 {
		t.Fatalf("SharedNode = %v,%v", v, ok)
	}
	if _, ok := e.SharedNode(NewEdge(4, 5)); ok {
		t.Fatal("disjoint edges share a node?")
	}
}

func TestEdgeString(t *testing.T) {
	if s := NewEdge(7, 3).String(); s != "3-7" {
		t.Fatalf("String() = %q", s)
	}
}

func TestAdjacencyAddRemove(t *testing.T) {
	a := NewAdjacency()
	e := NewEdge(1, 2)
	if !a.Add(e) {
		t.Fatal("first Add returned false")
	}
	if a.Add(e) {
		t.Fatal("duplicate Add returned true")
	}
	if !a.Has(e) || a.NumEdges() != 1 || a.NumNodes() != 2 {
		t.Fatalf("after add: has=%v m=%d n=%d", a.Has(e), a.NumEdges(), a.NumNodes())
	}
	if !a.Remove(e) {
		t.Fatal("Remove returned false")
	}
	if a.Remove(e) {
		t.Fatal("second Remove returned true")
	}
	if a.Has(e) || a.NumEdges() != 0 || a.NumNodes() != 0 {
		t.Fatalf("after remove: has=%v m=%d n=%d", a.Has(e), a.NumEdges(), a.NumNodes())
	}
}

func TestAdjacencyDegreesAndNeighbors(t *testing.T) {
	a := NewAdjacency()
	a.Add(NewEdge(0, 1))
	a.Add(NewEdge(0, 2))
	a.Add(NewEdge(0, 3))
	a.Add(NewEdge(2, 3))
	if d := a.Degree(0); d != 3 {
		t.Fatalf("Degree(0) = %d", d)
	}
	if d := a.Degree(9); d != 0 {
		t.Fatalf("Degree(9) = %d", d)
	}
	seen := map[NodeID]bool{}
	a.Neighbors(0, func(v NodeID) bool { seen[v] = true; return true })
	if len(seen) != 3 || !seen[1] || !seen[2] || !seen[3] {
		t.Fatalf("Neighbors(0) = %v", seen)
	}
	// Early termination.
	count := 0
	a.Neighbors(0, func(NodeID) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early-terminated iteration visited %d", count)
	}
}

func TestAdjacencyCommonNeighbors(t *testing.T) {
	a := NewAdjacency()
	// Triangle 0-1-2 plus pendant 3.
	a.Add(NewEdge(0, 1))
	a.Add(NewEdge(1, 2))
	a.Add(NewEdge(0, 2))
	a.Add(NewEdge(2, 3))
	if n := a.CountCommonNeighbors(0, 1); n != 1 {
		t.Fatalf("CountCommonNeighbors(0,1) = %d", n)
	}
	if n := a.CountCommonNeighbors(0, 3); n != 1 { // node 2
		t.Fatalf("CountCommonNeighbors(0,3) = %d", n)
	}
	if n := a.CountCommonNeighbors(1, 3); n != 1 {
		t.Fatalf("CountCommonNeighbors(1,3) = %d", n)
	}
	if n := a.CountCommonNeighbors(0, 9); n != 0 {
		t.Fatalf("CountCommonNeighbors(0,9) = %d", n)
	}
}

func TestAdjacencyWedges(t *testing.T) {
	a := NewAdjacency()
	a.Add(NewEdge(0, 1))
	a.Add(NewEdge(0, 2))
	a.Add(NewEdge(0, 3))
	if w := a.Wedges(0); w != 3 {
		t.Fatalf("Wedges(0) = %d", w)
	}
	if w := a.Wedges(1); w != 0 {
		t.Fatalf("Wedges(1) = %d", w)
	}
}

func TestAdjacencyForEachEdge(t *testing.T) {
	a := NewAdjacency()
	in := []Edge{NewEdge(0, 1), NewEdge(1, 2), NewEdge(5, 9)}
	for _, e := range in {
		a.Add(e)
	}
	got := map[Edge]bool{}
	a.ForEachEdge(func(e Edge) bool {
		if !e.Canonical() {
			t.Fatalf("non-canonical edge %v from iteration", e)
		}
		got[e] = true
		return true
	})
	if len(got) != len(in) {
		t.Fatalf("ForEachEdge visited %d edges, want %d", len(got), len(in))
	}
	for _, e := range in {
		if !got[e] {
			t.Fatalf("edge %v missing from iteration", e)
		}
	}
}

func TestAdjacencyAddRemoveProperty(t *testing.T) {
	// Adding a batch of random edges then removing them in reverse order
	// must restore the empty structure, with edge/node counts consistent
	// at every step.
	f := func(pairs [][2]uint8) bool {
		a := NewAdjacency()
		var added []Edge
		for _, p := range pairs {
			if p[0] == p[1] {
				continue
			}
			e := NewEdge(NodeID(p[0]), NodeID(p[1]))
			if a.Add(e) {
				added = append(added, e)
			}
			if a.Add(e) { // duplicate must be rejected
				return false
			}
		}
		if a.NumEdges() != len(added) {
			return false
		}
		for i := len(added) - 1; i >= 0; i-- {
			if !a.Remove(added[i]) {
				return false
			}
		}
		return a.NumEdges() == 0 && a.NumNodes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStaticBasics(t *testing.T) {
	edges := []Edge{NewEdge(0, 1), NewEdge(1, 2), NewEdge(0, 2), NewEdge(2, 3)}
	g := BuildStatic(edges)
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if g.Degree(2) != 3 {
		t.Fatalf("Degree(2) = %d", g.Degree(2))
	}
	ns := g.Neighbors(2)
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("Neighbors(2) not sorted: %v", ns)
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge(0,1) false")
	}
	if g.HasEdge(0, 3) {
		t.Fatal("HasEdge(0,3) true")
	}
}

func TestStaticEmpty(t *testing.T) {
	g := BuildStatic(nil)
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph: n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestStaticEdgesRoundTrip(t *testing.T) {
	in := []Edge{NewEdge(0, 1), NewEdge(1, 2), NewEdge(0, 2), NewEdge(2, 3), NewEdge(7, 9)}
	g := BuildStatic(in)
	out := g.Edges()
	if len(out) != len(in) {
		t.Fatalf("Edges() returned %d, want %d", len(out), len(in))
	}
	want := map[Edge]bool{}
	for _, e := range in {
		want[e] = true
	}
	for _, e := range out {
		if !want[e] {
			t.Fatalf("unexpected edge %v", e)
		}
	}
}

func TestStaticIsolatedIDs(t *testing.T) {
	// Node 5 appears, nodes 3 and 4 are isolated ids inside the range.
	g := BuildStatic([]Edge{NewEdge(0, 5)})
	if g.NumNodes() != 6 {
		t.Fatalf("NumNodes = %d, want 6", g.NumNodes())
	}
	if g.Degree(3) != 0 {
		t.Fatalf("Degree(3) = %d", g.Degree(3))
	}
}

func TestEdgeSet(t *testing.T) {
	s := NewEdgeSet(4)
	if !s.Add(1, 2) {
		t.Fatal("Add(1,2) = false")
	}
	if s.Add(2, 1) {
		t.Fatal("Add(2,1) accepted a duplicate")
	}
	if s.Add(3, 3) {
		t.Fatal("Add(3,3) accepted a self loop")
	}
	if !s.Has(2, 1) || s.Has(1, 3) || s.Has(3, 3) {
		t.Fatal("Has gave wrong answers")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Add(1, 3)
	es := s.Edges()
	if len(es) != 2 || es[0] != NewEdge(1, 2) || es[1] != NewEdge(1, 3) {
		t.Fatalf("Edges() = %v", es)
	}
}

func TestEdgeSetProperty(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		s := NewEdgeSet(len(pairs))
		ref := map[uint64]bool{}
		for _, p := range pairs {
			if p[0] == p[1] {
				if s.Add(NodeID(p[0]), NodeID(p[1])) {
					return false
				}
				continue
			}
			k := NewEdge(NodeID(p[0]), NodeID(p[1])).Key()
			added := s.Add(NodeID(p[0]), NodeID(p[1]))
			if added == ref[k] { // must add iff not already present
				return false
			}
			ref[k] = true
		}
		return s.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

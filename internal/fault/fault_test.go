package fault

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// arm installs rules for the duration of the test and disarms afterwards.
// Under gps_nofault the injection machinery is compiled out, so tests
// that need firing rules skip (TestDisarmedIsNoop still runs: the no-op
// contract is exactly what that flavor promises).
func arm(t *testing.T, seed uint64, spec string) {
	t.Helper()
	rules, err := ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	Arm(seed, rules)
	t.Cleanup(Disarm)
	if !Enabled() {
		t.Skip("fault injection compiled out (gps_nofault)")
	}
}

func TestDisarmedIsNoop(t *testing.T) {
	Disarm()
	if Enabled() {
		t.Fatal("Enabled() true while disarmed")
	}
	if err := Hit("checkpoint.fsync"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
	if Status() != nil {
		t.Fatal("disarmed Status() should be nil")
	}
}

func TestErrorTimesAndAfter(t *testing.T) {
	arm(t, 1, "checkpoint.fsync:error:after=2,times=3,msg=boom")
	if !Enabled() {
		t.Fatal("Enabled() false after Arm")
	}
	var fired int
	for i := 0; i < 10; i++ {
		err := Hit("checkpoint.fsync")
		switch {
		case i < 2 || i >= 5:
			if err != nil {
				t.Fatalf("hit %d: unexpected error %v", i, err)
			}
		default:
			if err == nil {
				t.Fatalf("hit %d: expected injected error", i)
			}
			if !IsInjected(err) {
				t.Fatalf("hit %d: IsInjected false for %v", i, err)
			}
			var fe *Error
			if !errors.As(err, &fe) || fe.Point != "checkpoint.fsync" || fe.Msg != "boom" {
				t.Fatalf("hit %d: wrong error contents: %#v", i, err)
			}
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
	st := Status()
	if len(st) != 1 || st[0].Hits != 10 || st[0].Fired != 3 {
		t.Fatalf("Status() = %+v, want 1 rule with hits=10 fired=3", st)
	}
	// Other points are untouched.
	if err := Hit("serve.http"); err != nil {
		t.Fatalf("unrelated point returned %v", err)
	}
}

func TestProbabilisticDeterminism(t *testing.T) {
	run := func(seed uint64) []bool {
		arm(t, seed, "p:error:p=0.3")
		out := make([]bool, 200)
		for i := range out {
			out[i] = Hit("p") != nil
		}
		Disarm()
		return out
	}
	a, b := run(7), run(7)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires < 30 || fires > 90 {
		t.Fatalf("p=0.3 over 200 hits fired %d times — far from expectation", fires)
	}
	c := run(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical firing schedules")
	}
}

func TestLatency(t *testing.T) {
	arm(t, 1, "slow:latency:delay=30ms,times=1")
	start := time.Now()
	if err := Hit("slow"); err != nil {
		t.Fatalf("latency rule returned error %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency hit took %v, want >= ~30ms", d)
	}
	start = time.Now()
	_ = Hit("slow") // times=1 exhausted
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("exhausted latency rule still slept %v", d)
	}
}

func TestPanicKind(t *testing.T) {
	arm(t, 1, "boom:panic:times=1,msg=kapow")
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		_ = Hit("boom")
	}()
	p, ok := recovered.(*Panic)
	if !ok {
		t.Fatalf("recovered %#v, want *fault.Panic", recovered)
	}
	if p.Point != "boom" || p.Msg != "kapow" {
		t.Fatalf("panic contents: %+v", p)
	}
	if err := Hit("boom"); err != nil {
		t.Fatalf("times=1 panic rule fired twice (got %v)", err)
	}
}

func TestMultipleRulesOnePoint(t *testing.T) {
	arm(t, 1, "x:latency:delay=1ms,times=1;x:error:times=1")
	start := time.Now()
	err := Hit("x")
	if err == nil {
		t.Fatal("expected error from second rule")
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("latency rule did not sleep")
	}
	if err := Hit("x"); err != nil {
		t.Fatalf("both rules exhausted, got %v", err)
	}
}

func TestConcurrentHits(t *testing.T) {
	arm(t, 1, "c:error:times=5")
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if Hit("c") != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 5 {
		t.Fatalf("times=5 fired %d under concurrency", fired)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"noseparator",
		":error",
		"x:explode",
		"x:error:p=2",
		"x:error:p=0",
		"x:error:after=nope",
		"x:error:times=-",
		"x:latency:delay=fast",
		"x:latency", // latency needs delay
		"x:error:color=red",
		"x:error:msg",
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted invalid spec", spec)
		}
	}
}

func TestParseSpecGrammar(t *testing.T) {
	rules, err := ParseSpec(" checkpoint.fsync:error:times=2 ; engine.shard.drain:panic:after=3,times=1 ;; serve.http:error:p=0.25,msg=try later ")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if len(rules) != 3 {
		t.Fatalf("got %d rules, want 3", len(rules))
	}
	if rules[0].Point != "checkpoint.fsync" || rules[0].Kind != KindError || rules[0].Times != 2 {
		t.Fatalf("rule 0: %+v", rules[0])
	}
	if rules[1].Kind != KindPanic || rules[1].After != 3 || rules[1].Times != 1 {
		t.Fatalf("rule 1: %+v", rules[1])
	}
	if rules[2].Prob != 0.25 || rules[2].Msg != "try later" {
		t.Fatalf("rule 2: %+v", rules[2])
	}
	if !strings.Contains((&Error{Point: "x", Msg: "y"}).Error(), "injected error at x") {
		t.Fatal("Error message shape changed")
	}
}

func TestRearmReplaces(t *testing.T) {
	arm(t, 1, "a:error")
	if Hit("a") == nil {
		t.Fatal("first arm not active")
	}
	Arm(1, mustParse(t, "b:error"))
	if Hit("a") != nil {
		t.Fatal("old rule survived re-arm")
	}
	if Hit("b") == nil {
		t.Fatal("new rule not active")
	}
	Arm(1, nil)
	if Enabled() {
		t.Fatal("Arm with no rules should disarm")
	}
}

func mustParse(t *testing.T, spec string) []Rule {
	t.Helper()
	rules, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

// Package fault is a deterministic, seeded fault-injection framework for
// exercising the stack's failure paths: named fault points compiled into
// the production code fire injected errors, latency, or panics according
// to rules armed at runtime (gps-serve -faults, the GPS_FAULTS
// environment variable, or fault.Arm in tests).
//
// # Gating
//
// Disarmed — the default — a fault point costs one atomic load and a
// predicted-not-taken branch, the same near-zero-overhead pattern as
// obs.Enabled:
//
//	if fault.Enabled() {
//		if err := fault.Hit(fault.CheckpointFsync); err != nil {
//			return err
//		}
//	}
//
// The gps_nofault build tag turns Enabled into a constant false so every
// guarded site is dead-code-eliminated; CI builds that flavor to prove
// the production binary carries no unintended dependency on injection.
//
// # Determinism
//
// Every rule draws its firing decisions from a private RNG seeded from
// the root seed and the rule's point name, and counts its own hits. A
// fixed (seed, spec) therefore fires at exactly the same hit indices on
// every run — the chaos harness relies on this to replay fault schedules
// — as long as the per-point hit order itself is deterministic (single
// producer, sequential requests). Concurrent hits at one point interleave
// their counter increments, which is still safe, just not replayable.
//
// # Kinds
//
// Three kinds cover the failure modes the stack must survive:
//
//   - error: Hit returns an injected error. Sites that cannot return an
//     error (ring publish) ignore it — arm latency or panic there instead.
//   - latency: Hit sleeps for the configured delay, then continues with
//     the remaining rules.
//   - panic: Hit panics with a *fault.Panic carrying the point name. The
//     engine's shard supervisor recognizes and recovers it like any other
//     shard panic.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gps/internal/randx"
)

// Kind is the failure mode a rule injects.
type Kind int

const (
	// KindError makes Hit return an injected error.
	KindError Kind = iota
	// KindLatency makes Hit sleep for the rule's delay.
	KindLatency
	// KindPanic makes Hit panic with a *Panic.
	KindPanic
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindLatency:
		return "latency"
	default:
		return "panic"
	}
}

// Well-known fault point names. Sites reference these constants; specs
// name them literally (e.g. -faults "checkpoint.fsync:error:times=2").
const (
	// CheckpointWrite fires after the checkpoint payload is written to the
	// temporary file, before fsync — a disk-full / I/O error stand-in.
	CheckpointWrite = "checkpoint.write"
	// CheckpointFsync fires at the temporary file's fsync.
	CheckpointFsync = "checkpoint.fsync"
	// CheckpointRename fires at the rename that publishes a checkpoint
	// (both the atomic-write rename and serve's final-name rename).
	CheckpointRename = "checkpoint.rename"
	// StreamDecode fires at the head of the edge-stream readers (text and
	// binary), before any record is parsed.
	StreamDecode = "stream.decode"
	// RingPublish fires in the producer-side ring append. Error rules are
	// ignored here (the append cannot fail); use latency or panic.
	RingPublish = "engine.ring.publish"
	// ShardDrain fires at the top of a shard consumer's span callback,
	// before the span touches the sampler — a panic here exercises the
	// supervisor's exact-restore path.
	ShardDrain = "engine.shard.drain"
	// HTTPRequest fires in the serve middleware before every handler; an
	// error rule turns into a 503 with Retry-After.
	HTTPRequest = "serve.http"
	// IngestAck fires after an ingest batch is enqueued (and its sequence
	// number recorded) but before the 202 is written — the lost-ack case
	// an at-least-once client must survive without double-counting.
	IngestAck = "serve.ingest.ack"
	// SnapshotRefresh fires inside the snapshot cache's refresh, between
	// the engine snapshot and installing the result — latency here
	// exercises the forced-fresh deadline / degraded-serve path.
	SnapshotRefresh = "serve.snapshot"
)

// Rule is one armed injection: at the named point, after skipping After
// hits, fire with probability Prob at most Times times.
type Rule struct {
	Point string
	Kind  Kind
	// Prob is the per-hit firing probability once After is exhausted;
	// 0 means 1 (always fire).
	Prob float64
	// After skips the first After hits at the point.
	After uint64
	// Times bounds how often the rule fires; 0 means unlimited.
	Times uint64
	// Delay is the sleep duration for KindLatency rules.
	Delay time.Duration
	// Msg overrides the injected error / panic message.
	Msg string
}

// Panic is the value injected by KindPanic rules, so recovery code can
// distinguish an injected panic from a real one.
type Panic struct {
	Point string
	Msg   string
}

func (p *Panic) String() string {
	return fmt.Sprintf("fault: injected panic at %s: %s", p.Point, p.Msg)
}

// Error is the error type injected by KindError rules.
type Error struct {
	Point string
	Msg   string
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected error at %s: %s", e.Point, e.Msg)
}

// IsInjected reports whether err is (or wraps) an injected fault error.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// armedRule is a Rule plus its runtime state.
type armedRule struct {
	Rule
	hits  atomic.Uint64
	fired atomic.Uint64

	// rngMu guards rng for probabilistic rules; taken only when the rule
	// actually needs a draw (Prob < 1), never on the pass-through path.
	rngMu sync.Mutex
	rng   *randx.RNG
}

// registry is the immutable armed-rule table, swapped atomically by
// Arm/Disarm; Hit reads it lock-free.
type registry struct {
	byPoint map[string][]*armedRule
	rules   []*armedRule // arm order, for Status
}

var (
	armed atomic.Bool
	reg   atomic.Pointer[registry]
)

// Arm installs the given rules (replacing any previously armed set) with
// firing decisions derived from seed. An empty rule set disarms.
func Arm(seed uint64, rules []Rule) {
	if len(rules) == 0 {
		Disarm()
		return
	}
	r := &registry{byPoint: make(map[string][]*armedRule)}
	for i, rule := range rules {
		if rule.Prob <= 0 || rule.Prob > 1 {
			rule.Prob = 1
		}
		if rule.Msg == "" {
			rule.Msg = "injected " + rule.Kind.String()
		}
		ar := &armedRule{Rule: rule}
		// Seed each rule from (root seed, point, arm index) so a fixed
		// spec fires identically across runs and rules on one point don't
		// share draws.
		h := randx.Mix64(seed ^ hashString(rule.Point) ^ randx.Mix64(uint64(i)+1))
		ar.rng = randx.New(h)
		r.byPoint[rule.Point] = append(r.byPoint[rule.Point], ar)
		r.rules = append(r.rules, ar)
	}
	reg.Store(r)
	armed.Store(true)
}

// Disarm removes every armed rule; fault points return to no-ops.
func Disarm() {
	armed.Store(false)
	reg.Store(nil)
}

// hashString is FNV-1a, good enough to decorrelate per-point seeds.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Hit evaluates the armed rules at the named point: latency rules sleep,
// panic rules panic with a *Panic, and the first error rule that fires is
// returned. Call sites gate on Enabled() so the disarmed cost is one
// atomic load at the gate, not a map lookup here.
func Hit(point string) error {
	r := reg.Load()
	if r == nil {
		return nil
	}
	rules := r.byPoint[point]
	if len(rules) == 0 {
		return nil
	}
	var injected error
	for _, ar := range rules {
		n := ar.hits.Add(1)
		if n <= ar.After {
			continue
		}
		if ar.Times > 0 && ar.fired.Load() >= ar.Times {
			continue
		}
		if ar.Prob < 1 {
			ar.rngMu.Lock()
			fire := ar.rng.Bernoulli(ar.Prob)
			ar.rngMu.Unlock()
			if !fire {
				continue
			}
		}
		if ar.Times > 0 && ar.fired.Add(1) > ar.Times {
			continue // lost a race for the last firing slot
		} else if ar.Times == 0 {
			ar.fired.Add(1)
		}
		switch ar.Kind {
		case KindLatency:
			time.Sleep(ar.Delay)
		case KindPanic:
			panic(&Panic{Point: ar.Point, Msg: ar.Msg})
		default:
			if injected == nil {
				injected = &Error{Point: ar.Point, Msg: ar.Msg}
			}
		}
	}
	return injected
}

// PointStatus is the observable state of one armed rule, for /v1/stats
// and test assertions.
type PointStatus struct {
	Point string `json:"point"`
	Kind  string `json:"kind"`
	Hits  uint64 `json:"hits"`
	Fired uint64 `json:"fired"`
}

// Status reports every armed rule with its hit/fired counters, sorted by
// point name (arm order within a point). It returns nil when disarmed.
func Status() []PointStatus {
	r := reg.Load()
	if r == nil {
		return nil
	}
	out := make([]PointStatus, 0, len(r.rules))
	for _, ar := range r.rules {
		out = append(out, PointStatus{
			Point: ar.Point,
			Kind:  ar.Kind.String(),
			Hits:  ar.hits.Load(),
			Fired: ar.fired.Load(),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Point < out[j].Point })
	return out
}

// ParseSpec parses a fault specification: rules separated by ";", each
//
//	point:kind[:key=val[,key=val...]]
//
// with kind one of error, latency, panic, and parameters p (firing
// probability in (0,1]), after (hits to skip), times (max firings, 0 =
// unlimited), delay (Go duration, latency only), msg (message text; no
// commas). Examples:
//
//	checkpoint.fsync:error:times=2
//	serve.ingest.ack:error:p=0.4
//	engine.shard.drain:panic:after=3,times=1
//	engine.ring.publish:latency:delay=2ms,p=0.01
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		parts := strings.SplitN(raw, ":", 3)
		if len(parts) < 2 || parts[0] == "" {
			return nil, fmt.Errorf("fault: bad rule %q (want point:kind[:params])", raw)
		}
		rule := Rule{Point: parts[0]}
		switch parts[1] {
		case "error":
			rule.Kind = KindError
		case "latency":
			rule.Kind = KindLatency
		case "panic":
			rule.Kind = KindPanic
		default:
			return nil, fmt.Errorf("fault: bad kind %q in rule %q (want error, latency or panic)", parts[1], raw)
		}
		if len(parts) == 3 {
			for _, kv := range strings.Split(parts[2], ",") {
				kv = strings.TrimSpace(kv)
				if kv == "" {
					continue
				}
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("fault: bad parameter %q in rule %q (want key=value)", kv, raw)
				}
				switch k {
				case "p":
					if _, err := fmt.Sscanf(v, "%g", &rule.Prob); err != nil || rule.Prob <= 0 || rule.Prob > 1 {
						return nil, fmt.Errorf("fault: bad p=%q in rule %q (want a probability in (0,1])", v, raw)
					}
				case "after":
					if _, err := fmt.Sscanf(v, "%d", &rule.After); err != nil {
						return nil, fmt.Errorf("fault: bad after=%q in rule %q", v, raw)
					}
				case "times":
					if _, err := fmt.Sscanf(v, "%d", &rule.Times); err != nil {
						return nil, fmt.Errorf("fault: bad times=%q in rule %q", v, raw)
					}
				case "delay":
					d, err := time.ParseDuration(v)
					if err != nil || d < 0 {
						return nil, fmt.Errorf("fault: bad delay=%q in rule %q (want a Go duration)", v, raw)
					}
					rule.Delay = d
				case "msg":
					rule.Msg = v
				default:
					return nil, fmt.Errorf("fault: unknown parameter %q in rule %q", k, raw)
				}
			}
		}
		if rule.Kind == KindLatency && rule.Delay <= 0 {
			return nil, fmt.Errorf("fault: latency rule %q needs delay=<duration>", raw)
		}
		rules = append(rules, rule)
	}
	return rules, nil
}

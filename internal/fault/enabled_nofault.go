//go:build gps_nofault

package fault

// Enabled is constant false under the gps_nofault build tag: every fault
// point guarded by it is compiled out, proving the production binary
// carries no injection dependency and giving the overhead benchmark its
// faultless baseline.
func Enabled() bool { return false }

//go:build !gps_nofault

package fault

// Enabled gates every fault point. Disarmed it is a single atomic load
// returning false, so production hot paths pay one predicted branch; the
// gps_nofault build tag replaces it with a constant false that
// dead-code-eliminates the guarded sites entirely.
func Enabled() bool { return armed.Load() }

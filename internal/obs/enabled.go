//go:build !gps_noobs

package obs

// Enabled gates hot-path instrumentation. The gps_noobs build tag flips it
// to false, compiling the guarded call sites out entirely; `gps-bench -exp
// obs` compares the two builds to prove the instrumentation cheap.
const Enabled = true

// Package obs is the observability core of the GPS stack: a stdlib-only
// metrics library — atomic counters, gauges, and fixed-bucket histograms —
// plus a registry that renders the Prometheus text exposition format.
//
// # Design
//
// The record path is lock-free and allocation-free: a Counter or Gauge is
// one atomic word, and a Histogram is a fixed array of atomic.Uint64 cells
// with power-of-two bucket bounds, so recording an observation is one
// division, one bits.Len64 and two atomic adds. Instruments are created
// standalone (the engine owns its histograms before any registry exists)
// and attached to a Registry by name; the registry is only touched at
// scrape time.
//
// # The gps_noobs build tag
//
// Hot-path instrumentation (per-edge counters in core, per-span timings in
// the engine ring consumers) is guarded by the Enabled constant, which the
// gps_noobs build tag flips to false: the guards and the time.Now calls
// behind Start/ObserveSince then compile to nothing, giving a build with
// the instrumentation provably absent. `gps-bench -exp obs` measures the
// two builds against each other; the instrumented ingest hot path must
// stay within ~2% of the gps_noobs build. Instruments themselves remain
// functional under the tag — only the guarded call sites disappear — so
// cold-path metrics (per-request counters, checkpoint timings) still work.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Label is one constant key="value" pair attached to a metric at
// registration. Labels distinguish instances within a family (for example
// per-shard ring depths, or per-route request counters).
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing counter. The zero value is ready
// to use.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns a fresh counter (equivalent to new(Counter); exists
// for symmetry with NewHistogram).
func NewCounter() *Counter { return new(Counter) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable signed gauge (current in-flight requests, queue
// occupancy). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a fresh gauge.
func NewGauge() *Gauge { return new(Gauge) }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistogramOpts parameterizes a Histogram's fixed bucket layout. Bucket i
// (0-based) covers raw values ≤ Min·2^i: power-of-two bounds make the
// record path branch-free (one division + bits.Len64) and the layout
// needs no configuration beyond the smallest interesting value.
type HistogramOpts struct {
	// Min is the upper bound of the first bucket in raw units (≥ 1;
	// 0 means 1). Values at or below Min land in bucket 0.
	Min uint64
	// Buckets is the number of finite buckets (default 20). Values above
	// the largest finite bound land in the implicit +Inf bucket.
	Buckets int
	// Scale converts raw units to rendered units at exposition time
	// (default 1). Latency histograms record nanoseconds and render
	// seconds with Scale = 1e-9, per the Prometheus convention.
	Scale float64
}

// Latency is the standard layout for duration histograms: raw nanoseconds
// rendered as seconds, first bucket ~1µs (1024ns), 26 power-of-two buckets
// (top finite bound ~34s).
func Latency() HistogramOpts { return HistogramOpts{Min: 1 << 10, Buckets: 26, Scale: 1e-9} }

// Sizes is the standard layout for count/size histograms (edges per batch,
// bytes per document): first bucket 1, the given number of power-of-two
// buckets, rendered unscaled.
func Sizes(buckets int) HistogramOpts { return HistogramOpts{Min: 1, Buckets: buckets, Scale: 1} }

// Histogram is a fixed-bucket histogram with power-of-two bounds and
// lock-free atomic cells. Observing is allocation-free; rendering computes
// the cumulative counts the Prometheus format requires from the per-bucket
// cells, so cumulativity holds by construction.
type Histogram struct {
	min   uint64
	scale float64
	cells []atomic.Uint64 // Buckets finite cells + 1 overflow (+Inf) cell
	sum   atomic.Uint64   // raw-unit sum of all observations
}

// NewHistogram returns a histogram with the given bucket layout.
func NewHistogram(o HistogramOpts) *Histogram {
	if o.Min == 0 {
		o.Min = 1
	}
	if o.Buckets <= 0 {
		o.Buckets = 20
	}
	// Bounds are min<<i; cap the finite buckets so the top bound cannot
	// overflow uint64.
	if max := 63 - bits.Len64(o.Min-1); o.Buckets > max {
		o.Buckets = max
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	return &Histogram{min: o.Min, scale: o.Scale, cells: make([]atomic.Uint64, o.Buckets+1)}
}

// Observe records one raw-unit value.
func (h *Histogram) Observe(v uint64) {
	idx := 0
	if v > h.min {
		idx = bits.Len64((v - 1) / h.min)
		if idx >= len(h.cells) {
			idx = len(h.cells) - 1
		}
	}
	h.cells[idx].Add(1)
	h.sum.Add(v)
}

// Start returns a timestamp for ObserveSince, or the zero time when the
// build is gps_noobs-tagged — the paired ObserveSince is then a no-op and
// the clock read is compiled out.
func Start() time.Time {
	if !Enabled {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the nanoseconds elapsed since start (from Start or
// time.Now). A zero start — a disabled Start() — records nothing.
func (h *Histogram) ObserveSince(start time.Time) {
	if start.IsZero() {
		return
	}
	h.Observe(uint64(time.Since(start)))
}

// bound returns the rendered upper bound of finite bucket i.
func (h *Histogram) bound(i int) float64 { return float64(h.min<<uint(i)) * h.scale }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.cells {
		n += h.cells[i].Load()
	}
	return n
}

// Sum returns the sum of all observations in rendered units.
func (h *Histogram) Sum() float64 { return float64(h.sum.Load()) * h.scale }

package obs

import (
	"strings"
	"testing"
)

func TestCheckExpositionAccepts(t *testing.T) {
	doc := `# HELP gps_edges_total Edges observed.
# TYPE gps_edges_total counter
gps_edges_total 42
# free-form comment, ignored
# HELP gps_lat_seconds Latency.
# TYPE gps_lat_seconds histogram
gps_lat_seconds_bucket{route="/v1/ingest",le="0.001"} 3
gps_lat_seconds_bucket{route="/v1/ingest",le="+Inf"} 5
gps_lat_seconds_sum{route="/v1/ingest"} 0.012
gps_lat_seconds_count{route="/v1/ingest"} 5
gps_lat_seconds_bucket{route="/v1/stats",le="+Inf"} 1
gps_lat_seconds_sum{route="/v1/stats"} 0.001
gps_lat_seconds_count{route="/v1/stats"} 1
gps_depth{shard="0"} 4 1712000000
`
	fams, samples, err := CheckExposition(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if fams != 2 || samples != 9 {
		t.Fatalf("fams=%d samples=%d, want 2 and 9", fams, samples)
	}
}

func TestCheckExpositionRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{
			"non-cumulative buckets",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
			"not cumulative",
		},
		{
			"missing +Inf bucket",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			`le="+Inf"`,
		},
		{
			"+Inf bucket != count",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
			"!= _count",
		},
		{
			"buckets out of le order",
			"# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
			"out of le order",
		},
		{
			"invalid metric name",
			"9bad 1\n",
			"invalid metric name",
		},
		{
			"invalid label name",
			`m{bad-key="x"} 1` + "\n",
			"invalid label name",
		},
		{
			"unquoted label value",
			"m{k=v} 1\n",
			"unquoted label value",
		},
		{
			"bad value",
			"m zzz\n",
			"bad value",
		},
		{
			"duplicate TYPE",
			"# TYPE m counter\n# TYPE m counter\nm 1\n",
			"duplicate TYPE",
		},
		{
			"unknown type",
			"# TYPE m fancy\n",
			"unknown metric type",
		},
		{
			"interleaved family groups",
			"a 1\nb 1\na 2\n",
			"contiguous",
		},
		{
			"unterminated quote",
			`m{k="x} 1` + "\n",
			"bad label value",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := CheckExposition(strings.NewReader(c.doc))
			if err == nil {
				t.Fatalf("accepted invalid doc:\n%s", c.doc)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CheckExposition validates a Prometheus text-format (0.0.4) document: the
// in-repo checker the smoke scripts and golden tests run over /metrics
// scrapes. It enforces the structural rules a real scraper depends on —
// metric and label name syntax, HELP/TYPE comment shape, one contiguous
// group per family, parseable sample values — and the histogram contract:
// strictly increasing le bounds, cumulative (non-decreasing) bucket
// counts, a terminal le="+Inf" bucket, and _count equal to the +Inf
// bucket. It returns the family and sample counts so callers can assert
// the scrape was non-trivial.
func CheckExposition(r io.Reader) (families, samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	types := map[string]string{}     // family -> declared type
	helps := map[string]bool{}       // family -> HELP seen
	closed := map[string]bool{}      // family group has ended
	hists := map[string]*histCheck{} // histogram family+labels -> bucket state
	current := ""                    // family of the current sample group
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			kind, name, rest, ok := parseComment(text)
			if !ok {
				continue // free-form comment
			}
			if !validName(name) {
				return 0, 0, fmt.Errorf("line %d: invalid metric name %q in %s", line, name, kind)
			}
			switch kind {
			case "HELP":
				if helps[name] {
					return 0, 0, fmt.Errorf("line %d: duplicate HELP for %q", line, name)
				}
				helps[name] = true
			case "TYPE":
				if _, dup := types[name]; dup {
					return 0, 0, fmt.Errorf("line %d: duplicate TYPE for %q", line, name)
				}
				if closed[name] {
					return 0, 0, fmt.Errorf("line %d: TYPE for %q after its samples", line, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return 0, 0, fmt.Errorf("line %d: unknown metric type %q", line, rest)
				}
				types[name] = rest
			}
			continue
		}
		name, labels, value, err := parseSample(text)
		if err != nil {
			return 0, 0, fmt.Errorf("line %d: %v", line, err)
		}
		fam := familyOf(name, types)
		if fam != current {
			if current != "" {
				closed[current] = true
			}
			if closed[fam] {
				return 0, 0, fmt.Errorf("line %d: samples of %q are not one contiguous group", line, fam)
			}
			current = fam
		}
		samples++
		if types[fam] == "histogram" {
			if err := checkHistSample(hists, fam, name, labels, value, line); err != nil {
				return 0, 0, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	for key, h := range hists {
		if err := h.finish(key); err != nil {
			return 0, 0, err
		}
	}
	return len(types), samples, nil
}

// parseComment splits "# HELP name text" / "# TYPE name type" lines.
func parseComment(text string) (kind, name, rest string, ok bool) {
	fields := strings.SplitN(text, " ", 4)
	if len(fields) < 3 || fields[0] != "#" || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return "", "", "", false
	}
	rest = ""
	if len(fields) == 4 {
		rest = fields[3]
	}
	return fields[1], fields[2], rest, true
}

// parseSample parses `name[{labels}] value [timestamp]`.
func parseSample(text string) (name string, labels map[string]string, value float64, err error) {
	rest := text
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("sample %q has no value", text)
	}
	name = rest[:i]
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	labels = map[string]string{}
	if rest[i] == '{' {
		rest = rest[i+1:]
		for {
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", text)
			}
			key := strings.TrimSpace(rest[:eq])
			if !validLabelName(key) && key != "le" && key != "quantile" {
				return "", nil, 0, fmt.Errorf("invalid label name %q", key)
			}
			rest = rest[eq+1:]
			if !strings.HasPrefix(rest, `"`) {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", text)
			}
			val, n, verr := unquoteLabel(rest)
			if verr != nil {
				return "", nil, 0, fmt.Errorf("bad label value in %q: %v", text, verr)
			}
			if _, dup := labels[key]; dup {
				return "", nil, 0, fmt.Errorf("duplicate label %q in %q", key, text)
			}
			labels[key] = val
			rest = rest[n:]
			rest = strings.TrimPrefix(rest, ",")
		}
	} else {
		rest = rest[i:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %q needs `value [timestamp]` after the name", text)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// unquoteLabel consumes a leading quoted label value, returning the value
// and the bytes consumed (including both quotes).
func unquoteLabel(s string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\', '"':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", s[i])
			}
		case '"':
			return b.String(), i + 1, nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated quote")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// familyOf maps a sample name to its family: _bucket/_sum/_count suffixes
// fold into a declared histogram (or summary) base name.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t := types[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

// histCheck accumulates one histogram instance's buckets (keyed by family
// + non-le labels) for the cumulativity and terminal-bucket checks.
type histCheck struct {
	les      []float64
	counts   []uint64
	count    uint64
	hasCount bool
	line     int
}

func checkHistSample(hists map[string]*histCheck, fam, name string, labels map[string]string, value float64, line int) error {
	le, hasLE := labels["le"]
	delete(labels, "le")
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var kb strings.Builder
	kb.WriteString(fam)
	for _, k := range keys {
		fmt.Fprintf(&kb, "|%s=%s", k, labels[k])
	}
	h := hists[kb.String()]
	if h == nil {
		h = &histCheck{line: line}
		hists[kb.String()] = h
	}
	switch {
	case strings.HasSuffix(name, "_bucket"):
		if !hasLE {
			return fmt.Errorf("line %d: %s_bucket without le label", line, fam)
		}
		bound, err := parseValue(le)
		if err != nil {
			return fmt.Errorf("line %d: bad le %q", line, le)
		}
		if value < 0 || value != math.Trunc(value) {
			return fmt.Errorf("line %d: bucket count %g is not a non-negative integer", line, value)
		}
		if n := len(h.les); n > 0 {
			if bound <= h.les[n-1] {
				return fmt.Errorf("line %d: %s buckets out of le order (%g after %g)", line, fam, bound, h.les[n-1])
			}
			if uint64(value) < h.counts[n-1] {
				return fmt.Errorf("line %d: %s bucket le=%q count %g below previous bucket's %d (not cumulative)",
					line, fam, le, value, h.counts[n-1])
			}
		}
		h.les = append(h.les, bound)
		h.counts = append(h.counts, uint64(value))
	case strings.HasSuffix(name, "_count"):
		h.count = uint64(value)
		h.hasCount = true
	}
	return nil
}

func (h *histCheck) finish(key string) error {
	if len(h.les) == 0 {
		return fmt.Errorf("histogram %s (near line %d) has no buckets", key, h.line)
	}
	if !math.IsInf(h.les[len(h.les)-1], 1) {
		return fmt.Errorf("histogram %s (near line %d) does not end with an le=\"+Inf\" bucket", key, h.line)
	}
	if !h.hasCount {
		return fmt.Errorf("histogram %s (near line %d) has no _count sample", key, h.line)
	}
	if h.counts[len(h.counts)-1] != h.count {
		return fmt.Errorf("histogram %s (near line %d): +Inf bucket %d != _count %d",
			key, h.line, h.counts[len(h.counts)-1], h.count)
	}
	return nil
}

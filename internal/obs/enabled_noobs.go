//go:build gps_noobs

package obs

// Enabled is false under the gps_noobs build tag: hot-path instrumentation
// guarded by it is compiled out, giving the uninstrumented baseline the
// obs overhead benchmark measures against.
const Enabled = false

package obs

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBucketMath(t *testing.T) {
	// Min=1024: bucket i covers (1024·2^(i-1), 1024·2^i]; bucket 0 covers
	// [0, 1024]. Values beyond the last finite bound land in the +Inf cell.
	h := NewHistogram(HistogramOpts{Min: 1 << 10, Buckets: 4})
	cases := []struct {
		v    uint64
		cell int
	}{
		{0, 0},
		{1, 0},
		{1024, 0},
		{1025, 1},
		{2048, 1},
		{2049, 2},
		{4096, 2},
		{8192, 3},
		{16384, 4}, // largest finite bound — last finite cell is index 3
		{1 << 40, 4},
	}
	for _, c := range cases {
		before := h.cells[c.cell].Load()
		h.Observe(c.v)
		if after := h.cells[c.cell].Load(); after != before+1 {
			t.Errorf("Observe(%d): cell %d went %d -> %d, want +1", c.v, c.cell, before, after)
		}
	}
	if got := h.Count(); got != uint64(len(cases)) {
		t.Fatalf("Count = %d, want %d", got, len(cases))
	}
	var want uint64
	for _, c := range cases {
		want += c.v
	}
	if got := h.Sum(); got != float64(want) {
		t.Fatalf("Sum = %g, want %d", got, want)
	}
}

func TestHistogramDefaultsAndOverflowCap(t *testing.T) {
	h := NewHistogram(HistogramOpts{})
	if h.min != 1 || len(h.cells) != 21 || h.scale != 1 {
		t.Fatalf("defaults: min=%d cells=%d scale=%g", h.min, len(h.cells), h.scale)
	}
	// A huge Min must cap the finite bucket count so min<<i cannot overflow.
	h = NewHistogram(HistogramOpts{Min: 1 << 60, Buckets: 30})
	top := h.bound(len(h.cells) - 2)
	if top <= 0 || math.IsInf(top, 0) {
		t.Fatalf("top finite bound overflowed: %g (cells=%d)", top, len(h.cells))
	}
}

func TestObserveSinceZeroStartIsNoop(t *testing.T) {
	h := NewHistogram(Latency())
	h.ObserveSince(time.Time{})
	if h.Count() != 0 {
		t.Fatal("zero start must record nothing")
	}
	if Enabled {
		h.ObserveSince(Start())
		if h.Count() != 1 {
			t.Fatal("Start/ObserveSince must record once when enabled")
		}
	} else if !Start().IsZero() {
		t.Fatal("Start must return the zero time under gps_noobs")
	}
}

// goldenRegistry builds the fixed registry the golden-file test renders.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	h := reg.Histogram("gps_test_batch_ns", "Batch latency in raw nanoseconds.",
		HistogramOpts{Min: 1000, Buckets: 3})
	h.Observe(500)
	h.Observe(1500)
	h.Observe(10000)
	reg.Gauge("gps_test_depth", "Ring depth.", Label{"shard", "0"}).Set(5)
	reg.Gauge("gps_test_depth", "Ring depth.", Label{"shard", "1"}).Set(9)
	reg.Counter("gps_test_edges_total", "Edges observed.").Add(42)
	reg.RegisterCounterFunc("gps_test_stalls_total", `Producer "stall" events.`,
		func() uint64 { return 7 }, Label{"shard", "0"})
	reg.RegisterGaugeFunc("gps_test_threshold", "Threshold z*.", func() float64 { return 0.25 })
	return reg
}

func TestGoldenExposition(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.golden")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from %s:\n--- got ---\n%s--- want ---\n%s", path, buf.String(), want)
	}
	if fams, samples, err := CheckExposition(&buf); err != nil {
		t.Fatalf("golden output fails lint: %v", err)
	} else if fams != 5 || samples == 0 {
		t.Fatalf("lint saw %d families, %d samples", fams, samples)
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("invalid name", func() { NewRegistry().Counter("9bad", "h") })
	mustPanic("empty help", func() { NewRegistry().Counter("ok_name", "") })
	mustPanic("le label", func() { NewRegistry().Counter("ok_name", "h", Label{"le", "1"}) })
	mustPanic("bad label", func() { NewRegistry().Counter("ok_name", "h", Label{"bad-key", "1"}) })
	mustPanic("kind conflict", func() {
		r := NewRegistry()
		r.Counter("ok_name", "h")
		r.Gauge("ok_name", "h")
	})
	mustPanic("duplicate labels", func() {
		r := NewRegistry()
		r.Counter("ok_name", "h", Label{"shard", "0"})
		r.Counter("ok_name", "h", Label{"shard", "0"})
	})
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("gps_esc_total", "h", Label{"path", "a\"b\\c\nd"}).Inc()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `gps_esc_total{path="a\"b\\c\nd"} 1` + "\n"
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaped label not found in:\n%s", buf.String())
	}
	if _, _, err := CheckExposition(&buf); err != nil {
		t.Fatalf("escaped output fails lint: %v", err)
	}
}

// TestConcurrentRecordAndScrape hammers counters and histograms from
// concurrent producers while scraping and linting the output — the -race
// proof that the record path and the scrape path can overlap freely.
func TestConcurrentRecordAndScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("gps_hammer_total", "Hammered counter.")
	g := reg.Gauge("gps_hammer_depth", "Hammered gauge.")
	h := reg.Histogram("gps_hammer_ns", "Hammered histogram.", Latency())
	const producers = 8
	const perProducer = 5000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(seed<<10 + uint64(i))
			}
		}(uint64(p))
	}
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
			if _, _, err := CheckExposition(&buf); err != nil {
				t.Errorf("mid-hammer scrape fails lint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-scraperDone
	if got := c.Value(); got != producers*perProducer {
		t.Fatalf("counter = %d, want %d", got, producers*perProducer)
	}
	if got := h.Count(); got != producers*perProducer {
		t.Fatalf("histogram count = %d, want %d", got, producers*perProducer)
	}
	if got := g.Value(); got != producers*perProducer {
		t.Fatalf("gauge = %d, want %d", got, producers*perProducer)
	}
}

package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// A Registry holds named metric families and renders them in the
// Prometheus text exposition format (version 0.0.4). Registration panics
// on an invalid name, a help-less metric, a kind conflict within a family,
// or a duplicate label set — all programmer errors, caught at boot.
// Scraping takes one mutex and reads every instrument atomically enough
// for monitoring (counters may be mid-update; each value is itself
// consistent).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type sample struct {
	labels    []Label
	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

type family struct {
	name, help string
	kind       metricKind
	samples    []*sample
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// ContentType is the Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// RegisterCounter attaches c to the registry under name.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...Label) *Counter {
	r.add(name, help, kindCounter, &sample{labels: labels, counter: c})
	return c
}

// RegisterCounterFunc registers a counter whose value is read from fn at
// scrape time — for cumulative counts maintained elsewhere (ring stalls,
// shard epochs).
func (r *Registry) RegisterCounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.add(name, help, kindCounter, &sample{labels: labels, counterFn: fn})
}

// RegisterGauge attaches g to the registry under name.
func (r *Registry) RegisterGauge(name, help string, g *Gauge, labels ...Label) *Gauge {
	r.add(name, help, kindGauge, &sample{labels: labels, gauge: g})
	return g
}

// RegisterGaugeFunc registers a gauge whose value is read from fn at
// scrape time — the cheap way to expose existing state (queue occupancy,
// reservoir fill) without double bookkeeping.
func (r *Registry) RegisterGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, kindGauge, &sample{labels: labels, gaugeFn: fn})
}

// RegisterHistogram attaches h to the registry under name.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) *Histogram {
	r.add(name, help, kindHistogram, &sample{labels: labels, hist: h})
	return h
}

// Counter creates and registers a counter in one step.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.RegisterCounter(name, help, NewCounter(), labels...)
}

// Gauge creates and registers a settable gauge in one step.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.RegisterGauge(name, help, NewGauge(), labels...)
}

// Histogram creates and registers a histogram in one step.
func (r *Registry) Histogram(name, help string, o HistogramOpts, labels ...Label) *Histogram {
	return r.RegisterHistogram(name, help, NewHistogram(o), labels...)
}

func (r *Registry) add(name, help string, kind metricKind, s *sample) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if help == "" {
		panic(fmt.Sprintf("obs: metric %q registered without help text", name))
	}
	for _, l := range s.labels {
		if !validLabelName(l.Key) || l.Key == "le" {
			panic(fmt.Sprintf("obs: metric %q has invalid label name %q", name, l.Key))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.fams[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.kind, kind))
	}
	key := labelString(s.labels)
	for _, prev := range f.samples {
		if labelString(prev.labels) == key {
			panic(fmt.Sprintf("obs: duplicate registration of %s%s", name, key))
		}
	}
	f.samples = append(f.samples, s)
}

// Unregister removes every sample whose label set contains match (key and
// value both equal) from every family, dropping families left without
// samples. It is the teardown half of labeled registration: a multi-tenant
// registry that registered a stream's samples under {stream="name"} removes
// them all with one call when the stream is deleted, so a later re-creation
// under the same name cannot trip the duplicate-registration panic and
// scrape-time readers stop touching the deleted stream's state. Returns the
// number of samples removed.
func (r *Registry) Unregister(match Label) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	removed := 0
	for name, f := range r.fams {
		kept := f.samples[:0]
		for _, s := range f.samples {
			matched := false
			for _, l := range s.labels {
				if l == match {
					matched = true
					break
				}
			}
			if matched {
				removed++
			} else {
				kept = append(kept, s)
			}
		}
		f.samples = kept
		if len(f.samples) == 0 {
			delete(r.fams, name)
		}
	}
	return removed
}

// Families returns the sorted names of all registered metric families.
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WritePrometheus renders every registered family, sorted by name, in the
// text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		b.Reset()
		r.fams[name].write(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns the GET /metrics handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}

func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range f.samples {
		switch f.kind {
		case kindCounter:
			v := s.counterFn
			if v == nil {
				v = s.counter.Value
			}
			fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(s.labels), v())
		case kindGauge:
			var v float64
			if s.gaugeFn != nil {
				v = s.gaugeFn()
			} else {
				v = float64(s.gauge.Value())
			}
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(s.labels), formatFloat(v))
		case kindHistogram:
			s.hist.write(b, f.name, s.labels)
		}
	}
}

// write renders one histogram instance: cumulative _bucket lines ending at
// le="+Inf", then _sum and _count. Cells are loaded once, so the bucket
// lines are cumulative by construction even while producers record.
func (h *Histogram) write(b *strings.Builder, name string, labels []Label) {
	var cum uint64
	for i := range h.cells {
		cum += h.cells[i].Load()
		le := "+Inf"
		if i < len(h.cells)-1 {
			le = formatFloat(h.bound(i))
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, bucketLabels(labels, le), cum)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labelString(labels), formatFloat(float64(h.sum.Load())*h.scale))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labelString(labels), cum)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k1="v1",k2="v2"}, or "" for no labels.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes exactly what the format requires of label values:
		// backslash, double quote and newline.
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// bucketLabels renders the labels with le appended last.
func bucketLabels(labels []Label, le string) string {
	var b strings.Builder
	b.WriteByte('{')
	for _, l := range labels {
		fmt.Fprintf(&b, "%s=%q,", l.Key, l.Value)
	}
	fmt.Fprintf(&b, "le=%q}", le)
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

package gen

import (
	"testing"

	"gps/internal/exact"
	"gps/internal/graph"
)

func checkSimple(t *testing.T, edges []graph.Edge) {
	t.Helper()
	seen := map[uint64]bool{}
	for _, e := range edges {
		if e.U == e.V {
			t.Fatalf("self loop %v", e)
		}
		if !e.Canonical() {
			t.Fatalf("non-canonical edge %v", e)
		}
		if seen[e.Key()] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e.Key()] = true
	}
}

func determinism(t *testing.T, a, b []graph.Edge) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("same seed sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at edge %d", i)
		}
	}
}

func TestErdosRenyi(t *testing.T) {
	es := ErdosRenyi(500, 2000, 1)
	checkSimple(t, es)
	if len(es) != 2000 {
		t.Fatalf("ER edge count = %d", len(es))
	}
	determinism(t, es, ErdosRenyi(500, 2000, 1))
}

func TestErdosRenyiPanicsWhenOverfull(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for m > n(n-1)/2")
		}
	}()
	ErdosRenyi(4, 10, 1)
}

func TestBarabasiAlbert(t *testing.T) {
	const n, k = 1000, 4
	es := BarabasiAlbert(n, k, 2)
	checkSimple(t, es)
	determinism(t, es, BarabasiAlbert(n, k, 2))
	if len(es) < (n-k-1)*k || len(es) > n*k {
		t.Fatalf("BA edge count %d implausible", len(es))
	}
	g := graph.BuildStatic(es)
	// Heavy tail: max degree far above mean.
	var maxDeg int64
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(graph.NodeID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	mean := 2 * float64(len(es)) / float64(n)
	if float64(maxDeg) < 5*mean {
		t.Fatalf("BA max degree %d not heavy-tailed (mean %.1f)", maxDeg, mean)
	}
}

func TestHolmeKimClustersMoreThanBA(t *testing.T) {
	const n, k = 2000, 5
	ba := graph.BuildStatic(BarabasiAlbert(n, k, 3))
	hk := graph.BuildStatic(HolmeKim(n, k, 0.8, 3))
	ccBA := exact.Count(ba).GlobalClustering()
	ccHK := exact.Count(hk).GlobalClustering()
	if ccHK < 2*ccBA {
		t.Fatalf("HolmeKim clustering %.4f not >> BA clustering %.4f", ccHK, ccBA)
	}
	checkSimple(t, HolmeKim(n, k, 0.8, 3))
	determinism(t, HolmeKim(500, 3, 0.5, 4), HolmeKim(500, 3, 0.5, 4))
}

func TestWattsStrogatz(t *testing.T) {
	const n, k = 1000, 6
	es := WattsStrogatz(n, k, 0.05, 5)
	checkSimple(t, es)
	determinism(t, es, WattsStrogatz(n, k, 0.05, 5))
	// Low-beta WS keeps high clustering.
	cc := exact.Count(graph.BuildStatic(es)).GlobalClustering()
	if cc < 0.3 {
		t.Fatalf("WS(beta=0.05) clustering %.4f too low", cc)
	}
	// Edge count close to nk/2 (rewiring may collide occasionally).
	if len(es) < n*k/2-n/10 || len(es) > n*k/2 {
		t.Fatalf("WS edge count %d, want ≈%d", len(es), n*k/2)
	}
}

func TestWattsStrogatzPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for odd k")
		}
	}()
	WattsStrogatz(10, 3, 0.1, 1)
}

func TestRMAT(t *testing.T) {
	es := RMAT(12, 8, 0.57, 0.19, 0.19, 6)
	checkSimple(t, es)
	determinism(t, es, RMAT(12, 8, 0.57, 0.19, 0.19, 6))
	n := 1 << 12
	if len(es) < n*6 { // must come close to the requested density
		t.Fatalf("RMAT produced only %d edges for target %d", len(es), n*8)
	}
	g := graph.BuildStatic(es)
	var maxDeg int64
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(graph.NodeID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	mean := 2 * float64(len(es)) / float64(n)
	if float64(maxDeg) < 8*mean {
		t.Fatalf("RMAT max degree %d not skewed (mean %.1f)", maxDeg, mean)
	}
}

func TestRoadGrid(t *testing.T) {
	es := RoadGrid(50, 60, 0.7, 0.0, 7)
	checkSimple(t, es)
	determinism(t, es, RoadGrid(50, 60, 0.7, 0.0, 7))
	g := graph.BuildStatic(es)
	if tri := exact.Triangles(g); tri != 0 {
		t.Fatalf("diagonal-free grid has %d triangles", tri)
	}
	mean := 2 * float64(len(es)) / float64(50*60)
	if mean < 1.5 || mean > 3.5 {
		t.Fatalf("road mean degree %.2f implausible", mean)
	}
	// With diagonals, some triangles appear.
	es2 := RoadGrid(50, 60, 0.9, 0.3, 7)
	if tri := exact.Triangles(graph.BuildStatic(es2)); tri == 0 {
		t.Fatal("grid with diagonals has no triangles")
	}
}

func TestGeneratorsDisjointSeedsDiffer(t *testing.T) {
	a := ErdosRenyi(300, 1000, 1)
	b := ErdosRenyi(300, 1000, 2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical ER graphs")
	}
}

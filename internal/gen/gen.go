// Package gen provides deterministic synthetic graph generators.
//
// The paper evaluates GPS on 50 real-world graphs from networkrepository.com
// (social, web, technological, collaboration, citation, road networks, up to
// 265M edges). Those datasets are not available offline, so the reproduction
// substitutes deterministic generators matched to each graph *type*: the
// estimators' behaviour depends on degree skew, clustering level and stream
// order — all of which the generators control — rather than on the identity
// of the vertices. See DESIGN.md §4 for the substitution table.
//
// All generators are deterministic functions of their seed and parameters,
// produce simple undirected graphs (no self loops, no duplicates), and use
// compact node ids [0, n).
package gen

import (
	"fmt"

	"gps/internal/graph"
	"gps/internal/randx"
)

// ErdosRenyi returns a uniform random simple graph with n nodes and exactly
// m distinct edges (the G(n,m) model). It panics if m exceeds the number of
// possible edges. ER graphs have Poisson degrees and vanishing clustering;
// they are the control case for the estimators.
func ErdosRenyi(n int, m int, seed uint64) []graph.Edge {
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		panic(fmt.Sprintf("gen: ErdosRenyi(%d,%d): too many edges (max %d)", n, m, maxEdges))
	}
	rng := randx.New(seed)
	set := graph.NewEdgeSet(m)
	for set.Len() < m {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u != v {
			set.Add(u, v)
		}
	}
	return set.Edges()
}

// BarabasiAlbert returns a preferential-attachment graph: nodes arrive one at
// a time and connect to k existing nodes chosen proportionally to degree.
// Degrees are heavy-tailed (power law exponent ≈3) with low clustering —
// the profile of citation networks such as cit-Patents.
func BarabasiAlbert(n, k int, seed uint64) []graph.Edge {
	if k < 1 || n < k+1 {
		panic(fmt.Sprintf("gen: BarabasiAlbert(%d,%d): need n > k >= 1", n, k))
	}
	rng := randx.New(seed)
	set := graph.NewEdgeSet(n * k)
	// repeated holds one entry per edge endpoint, so uniform sampling from
	// it is degree-proportional sampling.
	repeated := make([]graph.NodeID, 0, 2*n*k)
	// Seed graph: a star over the first k+1 nodes.
	for i := 1; i <= k; i++ {
		set.Add(0, graph.NodeID(i))
		repeated = append(repeated, 0, graph.NodeID(i))
	}
	targets := make([]graph.NodeID, 0, k)
	for v := k + 1; v < n; v++ {
		targets = targets[:0]
		for len(targets) < k {
			t := repeated[rng.Intn(len(repeated))]
			dup := false
			for _, prev := range targets {
				if prev == t {
					dup = true
					break
				}
			}
			if !dup {
				targets = append(targets, t)
			}
		}
		for _, t := range targets {
			if set.Add(graph.NodeID(v), t) {
				repeated = append(repeated, graph.NodeID(v), t)
			}
		}
	}
	return set.Edges()
}

// HolmeKim returns a powerlaw-cluster graph (Holme & Kim 2002): preferential
// attachment where each additional link closes a triad with probability p.
// It combines heavy-tailed degrees with tunable high clustering — the
// profile of collaboration networks (ca-hollywood) and Facebook friendship
// graphs (socfb-*).
func HolmeKim(n, k int, p float64, seed uint64) []graph.Edge {
	if k < 1 || n < k+1 {
		panic(fmt.Sprintf("gen: HolmeKim(%d,%d): need n > k >= 1", n, k))
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("gen: HolmeKim: p=%v out of [0,1]", p))
	}
	rng := randx.New(seed)
	set := graph.NewEdgeSet(n * k)
	// Neighbor slices (not the map-based graph.Adjacency) so that random
	// neighbor selection is a deterministic function of the seed: Go map
	// iteration order would make the generator non-reproducible.
	nbrs := make([][]graph.NodeID, n)
	repeated := make([]graph.NodeID, 0, 2*n*k)
	addEdge := func(a, b graph.NodeID) bool {
		if a == b || !set.Add(a, b) {
			return false
		}
		nbrs[a] = append(nbrs[a], b)
		nbrs[b] = append(nbrs[b], a)
		repeated = append(repeated, a, b)
		return true
	}
	for i := 1; i <= k; i++ {
		addEdge(0, graph.NodeID(i))
	}
	for v := k + 1; v < n; v++ {
		node := graph.NodeID(v)
		// First link: pure preferential attachment.
		var last graph.NodeID
		for {
			t := repeated[rng.Intn(len(repeated))]
			if addEdge(node, t) {
				last = t
				break
			}
		}
		for added := 1; added < k; {
			if rng.Bernoulli(p) {
				// Triad step: link to a random neighbor of the
				// previously linked node.
				if ns := nbrs[last]; len(ns) > 0 {
					w := ns[rng.Intn(len(ns))]
					if addEdge(node, w) {
						last = w
						added++
						continue
					}
				}
			}
			t := repeated[rng.Intn(len(repeated))]
			if addEdge(node, t) {
				last = t
				added++
			}
		}
	}
	return set.Edges()
}

// WattsStrogatz returns a small-world graph: a ring lattice where every node
// links to its k nearest neighbors (k even), with each edge rewired to a
// uniform random target with probability beta. Low beta keeps the lattice's
// very high clustering with near-constant degree — the profile of
// co-purchase networks such as com-amazon.
func WattsStrogatz(n, k int, beta float64, seed uint64) []graph.Edge {
	if k < 2 || k%2 != 0 || k >= n {
		panic(fmt.Sprintf("gen: WattsStrogatz(%d,%d): need even k with 2 <= k < n", n, k))
	}
	rng := randx.New(seed)
	set := graph.NewEdgeSet(n * k / 2)
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			u := graph.NodeID(v)
			w := graph.NodeID((v + j) % n)
			if rng.Bernoulli(beta) {
				// Rewire: keep u, pick a random new endpoint.
				for tries := 0; tries < 32; tries++ {
					cand := graph.NodeID(rng.Intn(n))
					if cand != u && !set.Has(u, cand) {
						w = cand
						break
					}
				}
			}
			set.Add(u, w)
		}
	}
	return set.Edges()
}

// RMAT returns a recursive-matrix (Kronecker-like) graph with 2^scale nodes
// and approximately edgeFactor·2^scale distinct edges. The probabilities
// (a,b,c) — with d = 1-a-b-c — control the skew; the common social-network
// setting is a=0.57, b=c=0.19. R-MAT graphs have the heavy-tailed,
// community-skewed degree profile of online social media and web graphs
// (soc-twitter, soc-orkut, web-google, tech-as-skitter). Node labels are
// shuffled so degree is independent of node id.
func RMAT(scale int, edgeFactor int, a, b, c float64, seed uint64) []graph.Edge {
	if scale < 1 || scale > 30 {
		panic(fmt.Sprintf("gen: RMAT scale %d out of [1,30]", scale))
	}
	d := 1 - a - b - c
	if a < 0 || b < 0 || c < 0 || d < 0 {
		panic(fmt.Sprintf("gen: RMAT probabilities (%v,%v,%v) invalid", a, b, c))
	}
	n := 1 << scale
	target := edgeFactor * n
	rng := randx.New(seed)
	// Random relabeling decouples degree from node id.
	label := rng.Perm(n)
	set := graph.NewEdgeSet(target)
	attempts := 0
	maxAttempts := 20 * target
	for set.Len() < target && attempts < maxAttempts {
		attempts++
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u != v {
			set.Add(graph.NodeID(label[u]), graph.NodeID(label[v]))
		}
	}
	return set.Edges()
}

// RoadGrid returns a road-network-like graph: an r×c grid where each lattice
// edge is kept with probability keep and each unit square gains a diagonal
// with probability diag. The result has near-constant low degree, long
// cycles and almost no triangles — the profile of infra-roadNet-CA.
func RoadGrid(rows, cols int, keep, diag float64, seed uint64) []graph.Edge {
	if rows < 2 || cols < 2 {
		panic(fmt.Sprintf("gen: RoadGrid(%d,%d): need at least 2x2", rows, cols))
	}
	rng := randx.New(seed)
	set := graph.NewEdgeSet(2 * rows * cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols && rng.Bernoulli(keep) {
				set.Add(id(r, c), id(r, c+1))
			}
			if r+1 < rows && rng.Bernoulli(keep) {
				set.Add(id(r, c), id(r+1, c))
			}
			if r+1 < rows && c+1 < cols && rng.Bernoulli(diag) {
				set.Add(id(r, c), id(r+1, c+1))
			}
		}
	}
	return set.Edges()
}

package stream

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"

	"gps/internal/graph"
)

// TestSelfLoopPolicyCrossFormat pins the shared reader policy: one logical
// stream — self loops, timestamps and all — must decode to the identical
// edge sequence with the identical skip count no matter which format
// carried it. (Before the policy was unified, text skipped self loops while
// binary rejected the whole stream.)
func TestSelfLoopPolicyCrossFormat(t *testing.T) {
	logical := []struct {
		u, v graph.NodeID
		ts   uint64
	}{
		{1, 2, 10}, {3, 3, 11}, {2, 5, 11}, {7, 7, 12}, {4, 1, 15}, {9, 9, 15},
	}

	var text, binBuf bytes.Buffer
	bin := NewBinaryWriterTimed(&binBuf)
	for _, r := range logical {
		fmt.Fprintf(&text, "%d %d %d\n", r.u, r.v, r.ts)
		var err error
		if r.u == r.v {
			// The *writer* never sees self loops in normal pipelines; build
			// the record by hand to model a producer that did emit one.
			err = writeRawTimedRecord(bin, uint64(r.u), uint64(r.v), r.ts)
		} else {
			err = bin.WriteEdge(graph.NewEdgeAt(r.u, r.v, r.ts))
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := bin.Flush(); err != nil {
		t.Fatal(err)
	}

	tEdges, tStats, err := ReadEdgeListStats(bytes.NewReader(text.Bytes()))
	if err != nil {
		t.Fatalf("text: %v", err)
	}
	bEdges, bStats, err := ReadBinaryStats(bytes.NewReader(binBuf.Bytes()))
	if err != nil {
		t.Fatalf("binary: %v", err)
	}
	if tStats.SelfLoops != 3 || bStats.SelfLoops != 3 {
		t.Fatalf("self-loop counts: text %d, binary %d, want 3 each", tStats.SelfLoops, bStats.SelfLoops)
	}
	if len(tEdges) != len(bEdges) || len(tEdges) != 3 {
		t.Fatalf("edge counts: text %d, binary %d, want 3 each", len(tEdges), len(bEdges))
	}
	for i := range tEdges {
		if tEdges[i] != bEdges[i] {
			t.Fatalf("edge %d: text %+v vs binary %+v", i, tEdges[i], bEdges[i])
		}
	}
	// ReadEdgesStats (the sniffing entry point) agrees with both.
	for name, payload := range map[string][]byte{"text": text.Bytes(), "binary": binBuf.Bytes()} {
		edges, st, err := ReadEdgesStats(bytes.NewReader(payload))
		if err != nil || len(edges) != 3 || st.SelfLoops != 3 {
			t.Fatalf("ReadEdgesStats(%s): edges=%d selfLoops=%d err=%v", name, len(edges), st.SelfLoops, err)
		}
	}
}

// writeRawTimedRecord emits one v2 record through the writer's buffer,
// bypassing WriteEdge's canonicalization so tests can craft self loops.
func writeRawTimedRecord(w *BinaryWriter, u, v, ts uint64) error {
	var buf [30]byte
	n := putUvarintTest(buf[:], u)
	n += putUvarintTest(buf[n:], v)
	n += putUvarintTest(buf[n:], ts-w.prevTS)
	w.prevTS = ts
	_, err := w.bw.Write(buf[:n])
	return err
}

func putUvarintTest(b []byte, x uint64) int {
	return binary.PutUvarint(b, x)
}

// TestBinaryV1SelfLoopSkipped covers the v1 decoder under the shared
// policy: the exact byte sequence that used to hard-error now skips and
// counts.
func TestBinaryV1SelfLoopSkipped(t *testing.T) {
	raw := append(append([]byte{}, []byte(binaryMagic)...), 0x03, 0x03, 0x02, 0x05)
	edges, st, err := ReadBinaryStats(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if st.SelfLoops != 1 || len(edges) != 1 || edges[0] != graph.NewEdge(2, 5) {
		t.Fatalf("edges=%v selfLoops=%d", edges, st.SelfLoops)
	}
	d := NewBinaryDecoder(bytes.NewReader(raw))
	if _, err := d.Next(); err != nil {
		t.Fatal(err)
	}
	if d.Count() != 1 || d.SelfLoops() != 1 {
		t.Fatalf("Count=%d SelfLoops=%d, want 1/1", d.Count(), d.SelfLoops())
	}
}

// TestReadEdgeListTooLong pins the bufio.ErrTooLong mapping: an over-long
// line must fail with a stream:-prefixed error naming the line, not the
// scanner's opaque "token too long".
func TestReadEdgeListTooLong(t *testing.T) {
	input := "1 2\n3 4\n" + strings.Repeat("9", maxLineBytes+10)
	_, err := ReadEdgeList(strings.NewReader(input))
	if err == nil {
		t.Fatal("over-long line accepted")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("error does not wrap bufio.ErrTooLong: %v", err)
	}
	msg := err.Error()
	if !strings.HasPrefix(msg, "stream: line 3:") {
		t.Fatalf("error does not name line 3: %q", msg)
	}
}

// TestReadEdgeListTimestamps covers the 3-column text form: a numeric,
// non-decreasing third field present on every row is an event time and
// WriteEdgeList round-trips it; a column present on only some rows (bare
// rows or non-numeric annotations) cannot be a coherent time axis, so the
// whole stream loads untimed with the fallback reported.
func TestReadEdgeListTimestamps(t *testing.T) {
	edges, st, err := ReadEdgeListStats(strings.NewReader("1 2 7\n3 4 9\n8 9 12\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Edge{
		graph.NewEdgeAt(1, 2, 7),
		graph.NewEdgeAt(3, 4, 9),
		graph.NewEdgeAt(8, 9, 12),
	}
	if st.TimestampsDropped || len(edges) != len(want) {
		t.Fatalf("got %d edges (dropped=%v), want %d", len(edges), st.TimestampsDropped, len(want))
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edge %d = %+v, want %+v", i, edges[i], want[i])
		}
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, edges); err != nil {
		t.Fatal(err)
	}
	again, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if again[i] != want[i] {
			t.Fatalf("round trip edge %d = %+v, want %+v", i, again[i], want[i])
		}
	}

	// Partially-timed input: the column is dropped everywhere (a mixed
	// TS/no-TS slice would break the v2 delta encoder and decay stamping),
	// and extra annotation columns stay tolerated.
	edges, st, err = ReadEdgeListStats(strings.NewReader("1 2 7\n3 4\n5 6 annotation\n8 9 12 extra junk\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !st.TimestampsDropped {
		t.Fatal("partially-timed file kept its timestamps")
	}
	for i, e := range edges {
		if e.TS != 0 {
			t.Fatalf("edge %d kept TS %d after partial-column fallback", i, e.TS)
		}
	}
	if len(edges) != 4 {
		t.Fatalf("got %d edges, want 4", len(edges))
	}
	var bin bytes.Buffer
	if err := WriteBinary(&bin, edges); err != nil {
		t.Fatalf("fallback stream no longer encodes: %v", err)
	}
}

// TestReadEdgeListWeightColumnFallback pins the weighted-list safeguard: a
// numeric third column that is not non-decreasing is a weight/count
// column, not event time, so the stream loads untimed (with the fallback
// reported) and still round-trips through the binary writer as it did
// before timestamps existed.
func TestReadEdgeListWeightColumnFallback(t *testing.T) {
	edges, st, err := ReadEdgeListStats(strings.NewReader("1 2 9\n3 4 5\n5 6 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !st.TimestampsDropped {
		t.Fatal("decreasing third column kept as timestamps")
	}
	for i, e := range edges {
		if e.TS != 0 {
			t.Fatalf("edge %d kept TS %d after fallback", i, e.TS)
		}
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, edges); err != nil {
		t.Fatalf("weighted list no longer round-trips to binary: %v", err)
	}
	if buf.Bytes()[4] != binaryMagic[4] {
		t.Fatalf("fallback stream written as version %d, want 1", buf.Bytes()[4])
	}
	// A genuinely sorted column is kept.
	kept, st2, err := ReadEdgeListStats(strings.NewReader("1 2 5\n3 4 5\n5 6 9\n"))
	if err != nil || st2.TimestampsDropped {
		t.Fatalf("sorted column dropped (err=%v, dropped=%v)", err, st2.TimestampsDropped)
	}
	if kept[2].TS != 9 {
		t.Fatalf("sorted column lost: %+v", kept)
	}
}

// TestBinaryV2RoundTrip pins the timed framing: delta-encoded timestamps
// survive a write/read cycle, WriteBinary auto-selects the version, and the
// untimed output stays byte-identical to the v1 framing.
func TestBinaryV2RoundTrip(t *testing.T) {
	timed := []graph.Edge{
		graph.NewEdgeAt(1, 2, 100),
		graph.NewEdgeAt(2, 3, 100), // equal times are legal (delta 0)
		graph.NewEdgeAt(5, 9, 170),
		graph.NewEdgeAt(1, 9, 1<<40),
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, timed); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[4]; got != binaryMagicV2[4] {
		t.Fatalf("timed stream written as version %d, want 2", got)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(timed) {
		t.Fatalf("round trip changed count: %d -> %d", len(timed), len(got))
	}
	for i := range timed {
		if got[i] != timed[i] {
			t.Fatalf("edge %d: %+v -> %+v", i, timed[i], got[i])
		}
	}

	// Untimed edges still produce the historical v1 bytes.
	untimed := sampleEdges()
	var v1 bytes.Buffer
	if err := WriteBinary(&v1, untimed); err != nil {
		t.Fatal(err)
	}
	if got := v1.Bytes()[4]; got != binaryMagic[4] {
		t.Fatalf("untimed stream written as version %d, want 1", got)
	}

	// Timestamp regressions cannot be delta-encoded: the writer refuses.
	var reg bytes.Buffer
	bw := NewBinaryWriterTimed(&reg)
	if err := bw.WriteEdge(graph.NewEdgeAt(1, 2, 50)); err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteEdge(graph.NewEdgeAt(3, 4, 49)); err == nil {
		t.Fatal("timestamp regression accepted")
	}
	// And a v1 writer refuses timestamps rather than dropping them.
	if err := NewBinaryWriter(&bytes.Buffer{}).WriteEdge(graph.NewEdgeAt(1, 2, 5)); err == nil {
		t.Fatal("v1 writer accepted a timestamped edge")
	}
}

package stream

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList exercises the edge-list parser with arbitrary input: it
// must never panic, and anything it accepts must survive a write/read round
// trip unchanged.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n% other\n3 3\n 5   7 trailing\n")
	f.Add("")
	f.Add("a b\n")
	f.Add("4294967295 0\n")
	f.Add("1 2 3 4 5\n\n\n9 8\n")
	f.Fuzz(func(t *testing.T, input string) {
		edges, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, e := range edges {
			if !e.Canonical() {
				t.Fatalf("parser produced non-canonical edge %v", e)
			}
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, edges); err != nil {
			t.Fatalf("write: %v", err)
		}
		again, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("reread: %v", err)
		}
		if len(again) != len(edges) {
			t.Fatalf("round trip changed edge count: %d -> %d", len(edges), len(again))
		}
		for i := range edges {
			if again[i] != edges[i] {
				t.Fatalf("round trip changed edge %d: %v -> %v", i, edges[i], again[i])
			}
		}
	})
}

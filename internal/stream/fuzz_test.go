package stream

import (
	"bytes"
	"strings"
	"testing"

	"gps/internal/graph"
)

// FuzzBinaryDecoder exercises the binary edge-frame decoder (both framing
// versions) with arbitrary input: it must never panic, anything it accepts
// must be canonical, timestamp-preserving under a write/read round trip,
// and it must never allocate more edges than the input can physically
// encode (each record is at least two bytes, so acceptance bounds the
// output size).
func FuzzBinaryDecoder(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(binaryMagic))
	f.Add([]byte("GPSB\x02"))
	f.Add([]byte("GPSB\x03"))
	f.Add([]byte("not binary at all\n0 1\n"))
	f.Add(append([]byte(binaryMagic), 0x00, 0x01, 0x03, 0x02))
	f.Add(append([]byte(binaryMagic), 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0x00))
	f.Add(append([]byte(binaryMagic), 0x05))
	// v2 documents: flags byte, then records with uvarint ts deltas.
	f.Add(append([]byte(binaryMagicV2), 0x00, 0x01, 0x03))                       // flags 0: untimed records
	f.Add(append([]byte(binaryMagicV2), binaryFlagTimestamps, 0x01, 0x03))       // timed record truncated before delta
	f.Add(append([]byte(binaryMagicV2), 0xff, 0x01, 0x03, 0x02))                 // unknown flags
	f.Add(append([]byte(binaryMagicV2), binaryFlagTimestamps, 0x03, 0x03, 0x05)) // timed self loop
	// v3 documents: flags byte, records lead with an op byte.
	f.Add(append([]byte(binaryMagicV2), binaryFlagDeletions, 0x00, 0x01, 0x03))                                // ErrDeletionsNeedV3
	f.Add(append([]byte(binaryMagicV3), 0x00, 0x01, 0x03))                                                     // v3 without the deletion flag: rejected
	f.Add(append([]byte(binaryMagicV3), binaryFlagDeletions, opInsert, 0x01, 0x03))                            // insert record
	f.Add(append([]byte(binaryMagicV3), binaryFlagDeletions, opDelete, 0x01, 0x03))                            // delete record
	f.Add(append([]byte(binaryMagicV3), binaryFlagDeletions, 0x07, 0x01, 0x03))                                // unknown op byte
	f.Add(append([]byte(binaryMagicV3), binaryFlagDeletions, opDelete))                                        // truncated after op
	f.Add(append([]byte(binaryMagicV3), binaryFlagDeletions|binaryFlagTimestamps, opInsert, 0x01))             // timed, truncated
	f.Add(append([]byte(binaryMagicV3), binaryFlagDeletions|binaryFlagTimestamps, opDelete, 0x02, 0x02, 0x09)) // timed self-loop deletion
	func() {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, []graph.Edge{graph.NewEdge(1, 2), graph.NewEdge(3, 70000)}); err == nil {
			f.Add(buf.Bytes())
		}
		var timed bytes.Buffer
		if err := WriteBinary(&timed, []graph.Edge{
			graph.NewEdgeAt(1, 2, 40), graph.NewEdgeAt(2, 9, 40), graph.NewEdgeAt(3, 70000, 1<<33),
		}); err == nil {
			f.Add(timed.Bytes())
		}
		var turn bytes.Buffer
		if err := WriteBinary(&turn, []graph.Edge{
			graph.NewEdgeAt(1, 2, 40), graph.NewEdgeAt(2, 9, 41).AsDeletion(), graph.NewEdgeAt(3, 70000, 1<<33),
		}); err == nil {
			f.Add(turn.Bytes())
		}
	}()
	f.Fuzz(func(t *testing.T, input []byte) {
		edges, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		if len(edges) > len(input)/2 {
			t.Fatalf("decoder produced %d edges from %d bytes (over-allocation)", len(edges), len(input))
		}
		for _, e := range edges {
			if !e.Canonical() {
				t.Fatalf("decoder produced non-canonical edge %v", e)
			}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, edges); err != nil {
			t.Fatalf("write: %v", err)
		}
		again, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("reread: %v", err)
		}
		if len(again) != len(edges) {
			t.Fatalf("round trip changed edge count: %d -> %d", len(edges), len(again))
		}
		for i := range edges {
			if again[i] != edges[i] {
				t.Fatalf("round trip changed edge %d: %v -> %v", i, edges[i], again[i])
			}
		}
	})
}

// FuzzReadEdgeList exercises the edge-list parser with arbitrary input: it
// must never panic, and anything it accepts must survive a write/read round
// trip unchanged.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n% other\n3 3\n 5   7 trailing\n")
	f.Add("")
	f.Add("a b\n")
	f.Add("4294967295 0\n")
	f.Add("1 2 3 4 5\n\n\n9 8\n")
	f.Fuzz(func(t *testing.T, input string) {
		edges, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, e := range edges {
			if !e.Canonical() {
				t.Fatalf("parser produced non-canonical edge %v", e)
			}
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, edges); err != nil {
			t.Fatalf("write: %v", err)
		}
		again, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("reread: %v", err)
		}
		if len(again) != len(edges) {
			t.Fatalf("round trip changed edge count: %d -> %d", len(edges), len(again))
		}
		for i := range edges {
			if again[i] != edges[i] {
				t.Fatalf("round trip changed edge %d: %v -> %v", i, edges[i], again[i])
			}
		}
	})
}

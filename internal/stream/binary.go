package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"gps/internal/graph"
)

// Binary edge framing: the compact on-disk and on-wire format for edge
// streams. A stream is the 5-byte header "GPSB"+version followed by one
// record per edge, each record two uvarint-encoded node ids. Typical edge
// lists cost 2-6 bytes per edge versus ~12 for the text format, and the
// format needs no length prefix: records are self-delimiting, so it can be
// produced and consumed incrementally (an HTTP ingest body, a pipe, a
// partially written file all decode up to the last complete record).
//
// The decoder is strict: a wrong magic, a varint that does not fit a
// uint32, a record truncated mid-edge, or a self loop all return errors
// (never panic), and nothing is allocated based on untrusted lengths —
// memory grows only as records actually parse.

// binaryMagic starts every binary edge stream: format tag + version byte.
const binaryMagic = "GPSB\x01"

// BinaryContentType is the MIME type the service uses for binary edge
// frames in HTTP requests.
const BinaryContentType = "application/x-gps-edges"

// maxVarint32Len caps the encoded size of a uint32 varint.
const maxVarint32Len = 5

// BinaryWriter encodes edges into the binary framing. Output is buffered;
// call Flush when done. Construct with NewBinaryWriter.
type BinaryWriter struct {
	bw    *bufio.Writer
	count int
}

// NewBinaryWriter returns a writer that emits the stream header followed by
// one record per WriteEdge call. Errors are reported by WriteEdge/Flush.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	bw := bufio.NewWriter(w)
	bw.WriteString(binaryMagic)
	return &BinaryWriter{bw: bw}
}

// WriteEdge appends one edge record.
func (w *BinaryWriter) WriteEdge(e graph.Edge) error {
	var buf [2 * maxVarint32Len]byte
	n := binary.PutUvarint(buf[:], uint64(e.U))
	n += binary.PutUvarint(buf[n:], uint64(e.V))
	if _, err := w.bw.Write(buf[:n]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of edges written so far.
func (w *BinaryWriter) Count() int { return w.count }

// Flush writes any buffered data to the underlying writer.
func (w *BinaryWriter) Flush() error { return w.bw.Flush() }

// WriteBinary writes edges in the binary framing accepted by ReadBinary.
func WriteBinary(w io.Writer, edges []graph.Edge) error {
	bw := NewBinaryWriter(w)
	for _, e := range edges {
		if err := bw.WriteEdge(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// BinaryDecoder incrementally decodes a binary edge stream. Construct with
// NewBinaryDecoder and call Next until it returns io.EOF.
type BinaryDecoder struct {
	br      *bufio.Reader
	started bool
	err     error
	count   int
}

// NewBinaryDecoder returns a decoder over r. The header is checked on the
// first Next call.
func NewBinaryDecoder(r io.Reader) *BinaryDecoder {
	return &BinaryDecoder{br: bufio.NewReader(r)}
}

// Next returns the next edge in canonical form. It returns io.EOF at a
// clean end of stream and a descriptive error for malformed input; after
// any error the decoder stays in the error state.
func (d *BinaryDecoder) Next() (graph.Edge, error) {
	if d.err != nil {
		return graph.Edge{}, d.err
	}
	if !d.started {
		if err := d.readHeader(); err != nil {
			d.err = err
			return graph.Edge{}, err
		}
		d.started = true
	}
	u, err := d.readNode(true)
	if err != nil {
		d.err = err
		return graph.Edge{}, err
	}
	v, err := d.readNode(false)
	if err != nil {
		d.err = err
		return graph.Edge{}, err
	}
	if u == v {
		d.err = fmt.Errorf("stream: binary record %d: self loop at node %d", d.count, u)
		return graph.Edge{}, d.err
	}
	d.count++
	return graph.NewEdge(u, v), nil
}

// Count returns the number of edges decoded so far.
func (d *BinaryDecoder) Count() int { return d.count }

func (d *BinaryDecoder) readHeader() error {
	hdr := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(d.br, hdr); err != nil {
		return fmt.Errorf("stream: binary header: %w", noEOF(err))
	}
	if string(hdr[:4]) != binaryMagic[:4] {
		return errors.New("stream: not a binary edge stream (bad magic)")
	}
	if hdr[4] != binaryMagic[4] {
		return fmt.Errorf("stream: unsupported binary edge stream version %d", hdr[4])
	}
	return nil
}

// readNode decodes one uvarint node id. A clean EOF before the first byte
// of a record is the end of the stream (io.EOF); anywhere else it is a
// truncation error.
func (d *BinaryDecoder) readNode(firstOfRecord bool) (graph.NodeID, error) {
	x, err := binary.ReadUvarint(d.br)
	if err != nil {
		if err == io.EOF && firstOfRecord {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("stream: binary record %d: %w", d.count, noEOF(err))
	}
	if x > 0xffffffff {
		return 0, fmt.Errorf("stream: binary record %d: node id %d exceeds uint32", d.count, x)
	}
	return graph.NodeID(x), nil
}

// noEOF maps a bare io.EOF to io.ErrUnexpectedEOF so truncation inside a
// header or record is never mistaken for a clean end of stream.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadBinary decodes a complete binary edge stream.
func ReadBinary(r io.Reader) ([]graph.Edge, error) {
	d := NewBinaryDecoder(r)
	var edges []graph.Edge
	for {
		e, err := d.Next()
		if err == io.EOF {
			return edges, nil
		}
		if err != nil {
			return nil, err
		}
		edges = append(edges, e)
	}
}

// SniffBinary reports whether the reader starts with the binary edge-stream
// magic, without consuming input. The returned reader must be used in place
// of r (it holds the peeked bytes).
func SniffBinary(r io.Reader) (io.Reader, bool) {
	br := bufio.NewReader(r)
	peek, _ := br.Peek(4)
	return br, string(peek) == binaryMagic[:4]
}

// ReadEdges reads a complete edge stream in either supported format,
// sniffing the binary magic and falling back to the plain-text edge list.
func ReadEdges(r io.Reader) ([]graph.Edge, error) {
	rr, isBinary := SniffBinary(r)
	if isBinary {
		return ReadBinary(rr)
	}
	return ReadEdgeList(rr)
}

package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"gps/internal/fault"
	"gps/internal/graph"
)

// Binary edge framing: the compact on-disk and on-wire format for edge
// streams. A stream is the 4-byte magic "GPSB" plus a version byte, followed
// by one record per edge. Two versions are in use:
//
//	v1  "GPSB\x01"            record = uvarint u, uvarint v
//	v2  "GPSB\x02" + flags    record = uvarint u, uvarint v
//	                          [, uvarint ts-delta when flag 0x01 is set]
//	v3  "GPSB\x03" + flags    record = op byte, uvarint u, uvarint v
//	                          [, uvarint ts-delta when flag 0x01 is set]
//
// The flags byte describes the whole stream. Bit 0 (records carry
// timestamps) is defined for v2 and v3; bit 1 (turnstile deletions) is what
// v3 exists for — each record then leads with an op byte, opInsert (0x00) or
// opDelete (0x01), and a decoded deletion carries graph.Edge.Del. Version 3
// without the deletion flag is rejected (it would encode nothing v2 cannot),
// and the deletion flag on a v2 header is the typed ErrDeletionsNeedV3 —
// a turnstile stream fed to a pre-turnstile consumer must fail loudly, not
// decode deletions as inserts. Unknown bits are rejected. Timestamps are
// delta-encoded against the previous record's timestamp (starting from 0),
// so a non-decreasing event-time stream — the normal shape of an activity
// log — costs one extra byte per edge for small inter-arrival gaps; the
// encoder rejects timestamp regressions, which the unsigned delta could not
// represent. Typical edge lists cost 2-6 bytes per edge versus ~12 for the
// text format, and the format needs no length prefix: records are
// self-delimiting, so it can be produced and consumed incrementally (an
// HTTP ingest body, a pipe, a partially written file all decode up to the
// last complete record).
//
// The decoder is strict: a wrong magic, an unknown version or flag, a varint
// that does not fit a uint32, a record truncated mid-edge, or a timestamp
// that overflows uint64 all return errors (never panic), and nothing is
// allocated based on untrusted lengths — memory grows only as records
// actually parse. Self loops are not errors: both this decoder and the text
// reader skip and count them under the shared policy (see ReadStats), so a
// logical stream decodes to the same edge sequence in every format.

// binaryMagic starts every v1 binary edge stream: format tag + version byte.
const binaryMagic = "GPSB\x01"

// binaryMagicV2 starts every v2 (flagged, optionally timestamped) stream.
const binaryMagicV2 = "GPSB\x02"

// binaryMagicV3 starts every v3 (turnstile, per-record op byte) stream.
const binaryMagicV3 = "GPSB\x03"

// binaryFlagTimestamps marks a v2/v3 stream whose records carry a trailing
// uvarint timestamp delta.
const binaryFlagTimestamps = 0x01

// binaryFlagDeletions marks a v3 stream whose records lead with an op byte;
// it is mandatory in v3 (the whole point of the version) and the typed
// rejection ErrDeletionsNeedV3 on a v2 header.
const binaryFlagDeletions = 0x02

// Per-record op bytes of the v3 framing.
const (
	opInsert = 0x00
	opDelete = 0x01
)

// ErrDeletionsNeedV3 is returned (wrapped; test with errors.Is) when a v2
// header carries the deletion flag: only the v3 framing defines the
// per-record op byte, so decoding such a stream as v2 would silently turn
// every deletion into an insert.
var ErrDeletionsNeedV3 = errors.New("stream: deletion flag requires the v3 binary framing")

// BinaryContentType is the MIME type the service uses for binary edge
// frames in HTTP requests.
const BinaryContentType = "application/x-gps-edges"

// maxVarint32Len caps the encoded size of a uint32 varint.
const maxVarint32Len = 5

// ReadStats reports what a reader skipped while decoding a stream.
//
// Self-loop policy: the graph model is simplified (§3.1), so self loops can
// never reach a sampler. Every reader — text and binary alike — applies one
// policy: skip the record, count it, keep going. Skipping (rather than
// erroring) matters because both formats must accept the same logical
// streams, and counting matters because skipped records shift stream
// positions that checkpoint stream bindings rely on: two encodings of one
// stream yield identical edge sequences and identical skip counts.
type ReadStats struct {
	// SelfLoops is the number of self-loop records skipped.
	SelfLoops int
	// TimestampsDropped reports that a text edge list carried a numeric
	// third column that was not non-decreasing — a weight/count column,
	// not event time — so the stream was loaded untimed (see ReadEdgeList).
	TimestampsDropped bool
}

// BinaryWriter encodes edges into the binary framing. Output is buffered;
// call Flush when done. Construct with NewBinaryWriter (v1) or
// NewBinaryWriterTimed (v2 with timestamps).
type BinaryWriter struct {
	bw     *bufio.Writer
	count  int
	timed  bool
	dels   bool
	prevTS uint64
}

// NewBinaryWriter returns a v1 writer that emits the stream header followed
// by one record per WriteEdge call. Errors are reported by WriteEdge/Flush.
// Edges carrying timestamps are rejected — the v1 framing cannot represent
// them; use NewBinaryWriterTimed (or WriteBinary, which picks the version).
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	bw := bufio.NewWriter(w)
	bw.WriteString(binaryMagic)
	return &BinaryWriter{bw: bw}
}

// NewBinaryWriterTimed returns a v2 writer whose records carry delta-encoded
// timestamps. Edge timestamps must be non-decreasing in write order.
func NewBinaryWriterTimed(w io.Writer) *BinaryWriter {
	bw := bufio.NewWriter(w)
	bw.WriteString(binaryMagicV2)
	bw.WriteByte(binaryFlagTimestamps)
	return &BinaryWriter{bw: bw, timed: true}
}

// NewBinaryWriterTurnstile returns a v3 writer whose records lead with an
// insert/delete op byte (timed controls the timestamp column, as in v2).
func NewBinaryWriterTurnstile(w io.Writer, timed bool) *BinaryWriter {
	bw := bufio.NewWriter(w)
	bw.WriteString(binaryMagicV3)
	flags := byte(binaryFlagDeletions)
	if timed {
		flags |= binaryFlagTimestamps
	}
	bw.WriteByte(flags)
	return &BinaryWriter{bw: bw, timed: timed, dels: true}
}

// WriteEdge appends one edge record.
func (w *BinaryWriter) WriteEdge(e graph.Edge) error {
	var buf [1 + 3*binary.MaxVarintLen64]byte
	n := 0
	if w.dels {
		buf[0] = opInsert
		if e.Del {
			buf[0] = opDelete
		}
		n = 1
	} else if e.Del {
		version := "v1"
		if w.timed {
			version = "v2"
		}
		return fmt.Errorf("stream: binary record %d: %s framing cannot carry a deletion (use NewBinaryWriterTurnstile)",
			w.count, version)
	}
	n += binary.PutUvarint(buf[n:], uint64(e.U))
	n += binary.PutUvarint(buf[n:], uint64(e.V))
	if w.timed {
		if e.TS < w.prevTS {
			return fmt.Errorf("stream: binary record %d: timestamp %d regresses below %d (v2 deltas are unsigned; sort the stream by time)",
				w.count, e.TS, w.prevTS)
		}
		n += binary.PutUvarint(buf[n:], e.TS-w.prevTS)
		w.prevTS = e.TS
	} else if e.TS != 0 {
		return fmt.Errorf("stream: binary record %d: v1 framing cannot carry timestamp %d (use NewBinaryWriterTimed)",
			w.count, e.TS)
	}
	if _, err := w.bw.Write(buf[:n]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of edges written so far.
func (w *BinaryWriter) Count() int { return w.count }

// Flush writes any buffered data to the underlying writer.
func (w *BinaryWriter) Flush() error { return w.bw.Flush() }

// WriteBinary writes edges in the binary framing accepted by ReadBinary,
// choosing the version by content: a stream where no edge carries a
// timestamp is written as v1 (byte-identical to what earlier releases
// produced), anything timestamped as v2, anything carrying a deletion
// record as v3.
func WriteBinary(w io.Writer, edges []graph.Edge) error {
	timed, dels := false, false
	for _, e := range edges {
		timed = timed || e.TS != 0
		dels = dels || e.Del
	}
	var bw *BinaryWriter
	switch {
	case dels:
		bw = NewBinaryWriterTurnstile(w, timed)
	case timed:
		bw = NewBinaryWriterTimed(w)
	default:
		bw = NewBinaryWriter(w)
	}
	for _, e := range edges {
		if err := bw.WriteEdge(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// BinaryDecoder incrementally decodes a binary edge stream (either
// version). Construct with NewBinaryDecoder and call Next until it returns
// io.EOF.
type BinaryDecoder struct {
	br        *bufio.Reader
	started   bool
	timed     bool
	dels      bool
	err       error
	count     int
	selfLoops int
	prevTS    uint64
}

// NewBinaryDecoder returns a decoder over r. The header is checked on the
// first Next call.
func NewBinaryDecoder(r io.Reader) *BinaryDecoder {
	return &BinaryDecoder{br: bufio.NewReader(r)}
}

// Reset rearms the decoder over a new document, reusing the buffered
// reader's storage. Every per-document field goes back to its zero state —
// header expectation, error latch, the timestamp-delta base, and the skip
// statistics (SelfLoops, Count). The statistics reset is load-bearing:
// skip counts are per-document stream positions (checkpoint stream bindings
// depend on them), so a decoder reused across documents must not bleed one
// body's self-loop count into the next.
func (d *BinaryDecoder) Reset(r io.Reader) {
	d.br.Reset(r)
	d.started = false
	d.timed = false
	d.dels = false
	d.err = nil
	d.count = 0
	d.selfLoops = 0
	d.prevTS = 0
}

// Next returns the next edge in canonical form. It returns io.EOF at a
// clean end of stream and a descriptive error for malformed input; after
// any error the decoder stays in the error state. Self-loop records are
// skipped and counted (SelfLoops), per the shared reader policy.
func (d *BinaryDecoder) Next() (graph.Edge, error) {
	if d.err != nil {
		return graph.Edge{}, d.err
	}
	if !d.started {
		if err := d.readHeader(); err != nil {
			d.err = err
			return graph.Edge{}, err
		}
		d.started = true
	}
	for {
		del := false
		if d.dels {
			op, err := d.br.ReadByte()
			if err != nil {
				if err == io.EOF {
					return graph.Edge{}, io.EOF // clean end between records
				}
				d.err = fmt.Errorf("stream: binary record %d: %w", d.record(), noEOF(err))
				return graph.Edge{}, d.err
			}
			switch op {
			case opInsert:
			case opDelete:
				del = true
			default:
				d.err = fmt.Errorf("stream: binary record %d: unknown op byte %#02x", d.record(), op)
				return graph.Edge{}, d.err
			}
		}
		u, err := d.readNode(!d.dels)
		if err != nil {
			d.err = err
			return graph.Edge{}, err
		}
		v, err := d.readNode(false)
		if err != nil {
			d.err = err
			return graph.Edge{}, err
		}
		var ts uint64
		if d.timed {
			delta, err := d.readUvarint()
			if err != nil {
				d.err = err
				return graph.Edge{}, err
			}
			ts = d.prevTS + delta
			if ts < d.prevTS {
				d.err = fmt.Errorf("stream: binary record %d: timestamp overflows uint64", d.record())
				return graph.Edge{}, d.err
			}
			d.prevTS = ts
		}
		if u == v {
			d.selfLoops++ // shared self-loop policy: skip and count
			continue
		}
		d.count++
		e := graph.NewEdgeAt(u, v, ts)
		if del {
			e = e.AsDeletion()
		}
		return e, nil
	}
}

// Count returns the number of edges decoded so far (self loops excluded).
func (d *BinaryDecoder) Count() int { return d.count }

// SelfLoops returns the number of self-loop records skipped so far.
func (d *BinaryDecoder) SelfLoops() int { return d.selfLoops }

// record returns the index of the record currently being decoded, for error
// messages: every consumed record, skipped self loops included.
func (d *BinaryDecoder) record() int { return d.count + d.selfLoops }

func (d *BinaryDecoder) readHeader() error {
	hdr := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(d.br, hdr); err != nil {
		return fmt.Errorf("stream: binary header: %w", noEOF(err))
	}
	if string(hdr[:4]) != binaryMagic[:4] {
		return errors.New("stream: not a binary edge stream (bad magic)")
	}
	switch hdr[4] {
	case binaryMagic[4]: // v1: bare records follow
	case binaryMagicV2[4]: // v2: a flags byte precedes the records
		flags, err := d.br.ReadByte()
		if err != nil {
			return fmt.Errorf("stream: binary header: %w", noEOF(err))
		}
		if flags&binaryFlagDeletions != 0 {
			// Typed rejection: decoding a turnstile stream as v2 would turn
			// deletions into inserts, the worst possible failure mode.
			return fmt.Errorf("stream: v2 header flags %#02x: %w", flags, ErrDeletionsNeedV3)
		}
		if flags&^byte(binaryFlagTimestamps) != 0 {
			return fmt.Errorf("stream: unsupported binary stream flags %#02x", flags)
		}
		d.timed = flags&binaryFlagTimestamps != 0
	case binaryMagicV3[4]: // v3: flags byte, records lead with an op byte
		flags, err := d.br.ReadByte()
		if err != nil {
			return fmt.Errorf("stream: binary header: %w", noEOF(err))
		}
		if flags&^byte(binaryFlagTimestamps|binaryFlagDeletions) != 0 {
			return fmt.Errorf("stream: unsupported binary stream flags %#02x", flags)
		}
		if flags&binaryFlagDeletions == 0 {
			return fmt.Errorf("stream: v3 header flags %#02x: a v3 stream without the deletion flag would not need v3", flags)
		}
		d.timed = flags&binaryFlagTimestamps != 0
		d.dels = true
	default:
		return fmt.Errorf("stream: unsupported binary edge stream version %d", hdr[4])
	}
	return nil
}

// readNode decodes one uvarint node id. A clean EOF before the first byte
// of a record is the end of the stream (io.EOF); anywhere else it is a
// truncation error.
func (d *BinaryDecoder) readNode(firstOfRecord bool) (graph.NodeID, error) {
	x, err := binary.ReadUvarint(d.br)
	if err != nil {
		if err == io.EOF && firstOfRecord {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("stream: binary record %d: %w", d.record(), noEOF(err))
	}
	if x > 0xffffffff {
		return 0, fmt.Errorf("stream: binary record %d: node id %d exceeds uint32", d.record(), x)
	}
	return graph.NodeID(x), nil
}

// readUvarint decodes a mid-record uvarint (the timestamp delta); EOF here
// is always a truncation.
func (d *BinaryDecoder) readUvarint() (uint64, error) {
	x, err := binary.ReadUvarint(d.br)
	if err != nil {
		return 0, fmt.Errorf("stream: binary record %d: %w", d.record(), noEOF(err))
	}
	return x, nil
}

// noEOF maps a bare io.EOF to io.ErrUnexpectedEOF so truncation inside a
// header or record is never mistaken for a clean end of stream.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadBinary decodes a complete binary edge stream.
func ReadBinary(r io.Reader) ([]graph.Edge, error) {
	edges, _, err := ReadBinaryStats(r)
	return edges, err
}

// ReadBinaryStats is ReadBinary also reporting what was skipped.
func ReadBinaryStats(r io.Reader) ([]graph.Edge, ReadStats, error) {
	d := NewBinaryDecoder(r)
	var edges []graph.Edge
	for {
		e, err := d.Next()
		if err == io.EOF {
			return edges, ReadStats{SelfLoops: d.SelfLoops()}, nil
		}
		if err != nil {
			return nil, ReadStats{SelfLoops: d.SelfLoops()}, err
		}
		edges = append(edges, e)
	}
}

// SniffBinary reports whether the reader starts with the binary edge-stream
// magic, without consuming input. The returned reader must be used in place
// of r (it holds the peeked bytes).
func SniffBinary(r io.Reader) (io.Reader, bool) {
	br := bufio.NewReader(r)
	peek, _ := br.Peek(4)
	return br, string(peek) == binaryMagic[:4]
}

// ReadEdges reads a complete edge stream in either supported format,
// sniffing the binary magic and falling back to the plain-text edge list.
func ReadEdges(r io.Reader) ([]graph.Edge, error) {
	edges, _, err := ReadEdgesStats(r)
	return edges, err
}

// ReadEdgesStats is ReadEdges also reporting what was skipped.
func ReadEdgesStats(r io.Reader) ([]graph.Edge, ReadStats, error) {
	if fault.Enabled() {
		// Before any byte is consumed: an injected decode error maps to the
		// same client-visible 4xx a malformed body produces.
		if err := fault.Hit(fault.StreamDecode); err != nil {
			return nil, ReadStats{}, err
		}
	}
	rr, isBinary := SniffBinary(r)
	if isBinary {
		return ReadBinaryStats(rr)
	}
	return ReadEdgeListStats(rr)
}

// Package stream provides the graph-stream model of the paper: an input
// graph presented as a sequence of edges in arbitrary order, processed one
// edge at a time (§1, §3.1). It supplies in-memory streams, seeded random
// permutations (the paper generates its streams by "randomly permuting the
// set of edges", §6), a deduplicating simplifier, and plain-text edge-list
// I/O so the CLI tools can stream graphs from disk.
package stream

import (
	"gps/internal/graph"
	"gps/internal/randx"
)

// Stream yields edges one at a time. Implementations are not safe for
// concurrent use.
type Stream interface {
	// Next returns the next edge and true, or a zero edge and false when
	// the stream is exhausted.
	Next() (graph.Edge, bool)
}

// Slice is a Stream over an in-memory edge slice.
type Slice struct {
	edges []graph.Edge
	i     int
}

// FromEdges returns a Stream over edges in the given order. The slice is not
// copied; callers must not mutate it while streaming.
func FromEdges(edges []graph.Edge) *Slice {
	return &Slice{edges: edges}
}

// Next implements Stream.
func (s *Slice) Next() (graph.Edge, bool) {
	if s.i >= len(s.edges) {
		return graph.Edge{}, false
	}
	e := s.edges[s.i]
	s.i++
	return e, true
}

// Reset rewinds the stream to its first edge.
func (s *Slice) Reset() { s.i = 0 }

// Len returns the total number of edges in the stream.
func (s *Slice) Len() int { return len(s.edges) }

// Permute returns a Stream over a seeded pseudo-random permutation of edges.
// The input slice is left untouched; the permutation is a deterministic
// function of the seed, which is what lets post-stream and in-stream
// estimation replay the identical stream (§6).
func Permute(edges []graph.Edge, seed uint64) *Slice {
	out := make([]graph.Edge, len(edges))
	copy(out, edges)
	randx.New(seed).Shuffle(len(out), func(i, j int) {
		out[i], out[j] = out[j], out[i]
	})
	return FromEdges(out)
}

// Collect drains a stream into a slice.
func Collect(s Stream) []graph.Edge {
	var out []graph.Edge
	for {
		e, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

// Skip drains and discards up to n records from s and reports how many it
// actually consumed (fewer only when the stream ran out). It is the resume
// primitive of checkpoint restore: a restored sampler has already consumed
// a prefix of the (deterministically re-generated) stream, so the replay
// must skip exactly that many records — through whatever combinators wrap
// the source, so stateful stages like Simplify observe the skipped prefix
// too. Callers must treat skipped < n as a mismatched input: the stream
// being resumed is not the one that was checkpointed.
//
// The unit is records *yielded by s* — exactly what the consumer's Process
// saw, which is exactly what Sampler.Processed counts (distinct arrivals,
// ignored duplicates, and turnstile deletion records). Records a decoder
// dropped under the shared reader policy (self loops, a discarded timestamp
// column) were never yielded and are NOT part of n: the re-decoded stream
// drops them again before Skip sees anything, and ReadStats accounts for
// them separately. Passing a raw record count that includes policy-skipped
// records over-skips and desynchronizes the resume — the bug this contract
// note pins (see TestSkipResumeOverSelfLoops).
func Skip(s Stream, n uint64) (skipped uint64) {
	for skipped < n {
		if _, ok := s.Next(); !ok {
			return skipped
		}
		skipped++
	}
	return skipped
}

// Drive feeds every edge of s to fn.
func Drive(s Stream, fn func(graph.Edge)) {
	for {
		e, ok := s.Next()
		if !ok {
			return
		}
		fn(e)
	}
}

// Simplifier wraps a stream and drops duplicate edges, so that downstream
// samplers see each undirected edge at most once ("we assume edges are
// unique", §3.1). Duplicates are counted for diagnostics. Turnstile
// deletion records pass through untouched and clear the edge from the seen
// set, so an insert after a delete is a fresh arrival — the turnstile
// model's re-insertion — not a suppressed duplicate.
type Simplifier struct {
	in      Stream
	seen    map[uint64]struct{}
	dropped int
}

// Simplify returns a deduplicating view of in.
func Simplify(in Stream) *Simplifier {
	return &Simplifier{in: in, seen: make(map[uint64]struct{})}
}

// Next implements Stream.
func (s *Simplifier) Next() (graph.Edge, bool) {
	for {
		e, ok := s.in.Next()
		if !ok {
			return graph.Edge{}, false
		}
		k := e.Key()
		if e.Del {
			delete(s.seen, k)
			return e, true
		}
		if _, dup := s.seen[k]; dup {
			s.dropped++
			continue
		}
		s.seen[k] = struct{}{}
		return e, true
	}
}

// Dropped returns the number of duplicate edges suppressed so far.
func (s *Simplifier) Dropped() int { return s.dropped }

package stream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"gps/internal/graph"
)

func sampleEdges() []graph.Edge {
	return []graph.Edge{
		graph.NewEdge(0, 1),
		graph.NewEdge(1, 2),
		graph.NewEdge(7, 3),
		graph.NewEdge(1<<20, 5),
		graph.NewEdge(0xfffffffe, 0xffffffff),
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	edges := sampleEdges()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, edges); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(edges) {
		t.Fatalf("round trip changed edge count: %d -> %d", len(edges), len(got))
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d: %v -> %v", i, edges[i], got[i])
		}
	}
	// The format should beat text for ordinary id ranges.
	var text bytes.Buffer
	if err := WriteEdgeList(&text, edges); err != nil {
		t.Fatal(err)
	}
	t.Logf("binary %dB vs text %dB for %d edges", buf.Len(), text.Len(), len(edges))
}

func TestBinaryDecoderIncremental(t *testing.T) {
	edges := sampleEdges()
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	for _, e := range edges {
		if err := bw.WriteEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	if bw.Count() != len(edges) {
		t.Fatalf("writer count = %d, want %d", bw.Count(), len(edges))
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	// Feed the decoder through a one-byte-at-a-time reader: records must
	// decode incrementally regardless of read chunking.
	d := NewBinaryDecoder(iotest{r: bytes.NewReader(buf.Bytes())})
	for i := 0; ; i++ {
		e, err := d.Next()
		if err == io.EOF {
			if i != len(edges) {
				t.Fatalf("EOF after %d edges, want %d", i, len(edges))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if e != edges[i] {
			t.Fatalf("edge %d: %v, want %v", i, e, edges[i])
		}
	}
	if d.Count() != len(edges) {
		t.Fatalf("decoder count = %d, want %d", d.Count(), len(edges))
	}
}

// iotest returns at most one byte per Read.
type iotest struct{ r io.Reader }

func (o iotest) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

func TestBinaryDecoderErrors(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, sampleEdges()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := []struct {
		name  string
		input []byte
	}{
		{"empty", nil},
		{"short header", []byte("GPS")},
		{"bad magic", []byte("NOPE\x01\x00\x01")},
		{"future version", []byte("GPSB\x04\x00\x01")},
		{"v3 without deletion flag", []byte("GPSB\x03\x00\x00\x01\x03")},
		{"v3 unknown flags", []byte("GPSB\x03\xfe\x00\x01\x03")},
		{"v3 unknown op byte", []byte("GPSB\x03\x02\x07\x01\x03")},
		{"v3 truncated after op byte", []byte("GPSB\x03\x02\x01")},
		{"v2 unknown flags", []byte("GPSB\x02\xfe\x00\x01")},
		{"v2 header truncated before flags", []byte("GPSB\x02")},
		{"v2 record truncated before ts delta", append(append([]byte{}, []byte(binaryMagicV2)...),
			binaryFlagTimestamps, 0x00, 0x01)},
		{"truncated mid record", valid[:len(valid)-1]},
		{"truncated after first id", append(append([]byte{}, []byte(binaryMagic)...), 0x05)},
		{"id overflows uint32", append(append([]byte{}, []byte(binaryMagic)...),
			0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0x00)},
		{"varint overflows uint64", append(append([]byte{}, []byte(binaryMagic)...),
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01)},
	}
	for _, tc := range cases {
		if _, err := ReadBinary(bytes.NewReader(tc.input)); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	// A clean header with zero records is a valid empty stream.
	edges, err := ReadBinary(strings.NewReader(binaryMagic))
	if err != nil || len(edges) != 0 {
		t.Errorf("empty stream: edges=%v err=%v", edges, err)
	}
}

func TestBinaryDecoderCanonicalizes(t *testing.T) {
	// Hand-build a record with the endpoints in descending order.
	raw := []byte(binaryMagic)
	var tmp [10]byte
	n := binary.PutUvarint(tmp[:], 9)
	raw = append(raw, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], 2)
	raw = append(raw, tmp[:n]...)
	edges, err := ReadBinary(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 1 || edges[0] != graph.NewEdge(2, 9) {
		t.Fatalf("got %v, want [2-9]", edges)
	}
}

// turnstileEdges is a mixed insert/delete stream exercising the v3 framing.
func turnstileEdges(timed bool) []graph.Edge {
	ts := func(i int) uint64 {
		if !timed {
			return 0
		}
		return uint64(10 + i*3)
	}
	return []graph.Edge{
		graph.NewEdgeAt(0, 1, ts(0)),
		graph.NewEdgeAt(1, 2, ts(1)),
		graph.NewEdgeAt(0, 1, ts(2)).AsDeletion(),
		graph.NewEdgeAt(7, 3, ts(3)),
		graph.NewEdgeAt(1<<20, 5, ts(4)).AsDeletion(),
		graph.NewEdgeAt(0xfffffffe, 0xffffffff, ts(5)),
	}
}

// TestBinaryV3RoundTrip: turnstile streams survive the write/read cycle
// with the Del marker and timestamps intact, in both timed and untimed
// form, and WriteBinary picks v3 exactly when a deletion is present.
func TestBinaryV3RoundTrip(t *testing.T) {
	for _, timed := range []bool{false, true} {
		name := "untimed"
		if timed {
			name = "timed"
		}
		t.Run(name, func(t *testing.T) {
			edges := turnstileEdges(timed)
			var buf bytes.Buffer
			if err := WriteBinary(&buf, edges); err != nil {
				t.Fatal(err)
			}
			if got := buf.Bytes()[4]; got != binaryMagicV3[4] {
				t.Fatalf("WriteBinary chose version %d for a deletion-carrying stream, want 3", got)
			}
			wantFlags := byte(binaryFlagDeletions)
			if timed {
				wantFlags |= binaryFlagTimestamps
			}
			if got := buf.Bytes()[5]; got != wantFlags {
				t.Fatalf("v3 flags = %#02x, want %#02x", got, wantFlags)
			}
			got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(edges) {
				t.Fatalf("round trip changed edge count: %d -> %d", len(edges), len(got))
			}
			for i := range edges {
				if got[i] != edges[i] {
					t.Fatalf("edge %d: %v -> %v", i, edges[i], got[i])
				}
			}
		})
	}
}

// TestBinaryV2RejectsDeletions: the pre-turnstile framings cannot carry a
// deletion — the writer refuses the record, and a v2 header claiming the
// deletion flag is the typed ErrDeletionsNeedV3 (decoding it as v2 would
// silently turn deletions into inserts).
func TestBinaryV2RejectsDeletions(t *testing.T) {
	del := graph.NewEdge(1, 2).AsDeletion()
	var buf bytes.Buffer
	if err := NewBinaryWriter(&buf).WriteEdge(del); err == nil {
		t.Fatal("v1 writer accepted a deletion record")
	}
	buf.Reset()
	if err := NewBinaryWriterTimed(&buf).WriteEdge(del); err == nil {
		t.Fatal("v2 writer accepted a deletion record")
	}

	hdr := append([]byte(binaryMagicV2), binaryFlagDeletions)
	_, err := ReadBinary(bytes.NewReader(append(hdr, 0x01, 0x03)))
	if !errors.Is(err, ErrDeletionsNeedV3) {
		t.Fatalf("v2 header with deletion flag: err = %v, want ErrDeletionsNeedV3", err)
	}
	// Both flag bits set still names the real problem: the deletion flag.
	hdr = append([]byte(binaryMagicV2), binaryFlagDeletions|binaryFlagTimestamps)
	if _, err := ReadBinary(bytes.NewReader(append(hdr, 0x01, 0x03))); !errors.Is(err, ErrDeletionsNeedV3) {
		t.Fatalf("v2 header with deletion+ts flags: err = %v, want ErrDeletionsNeedV3", err)
	}
}

// TestBinaryDecoderResetStats: a decoder reused across documents must zero
// its per-document statistics — Count and SelfLoops are stream positions
// the checkpoint stream binding depends on, so bleeding one body's counts
// into the next desynchronizes resumes (the bug Reset's doc pins).
func TestBinaryDecoderResetStats(t *testing.T) {
	doc := func(edges []graph.Edge) []byte {
		var buf bytes.Buffer
		bw := NewBinaryWriterTurnstile(&buf, false)
		for _, e := range edges {
			if err := bw.WriteEdge(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	// First document: two edges and two self loops (written by hand — the
	// writer API cannot produce them, the wire can).
	first := doc([]graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(1, 2)})
	first = append(first, opInsert, 0x05, 0x05, opInsert, 0x09, 0x09)
	second := doc([]graph.Edge{graph.NewEdge(3, 4)})

	d := NewBinaryDecoder(bytes.NewReader(first))
	for {
		if _, err := d.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if d.Count() != 2 || d.SelfLoops() != 2 {
		t.Fatalf("first doc: count=%d selfLoops=%d, want 2/2", d.Count(), d.SelfLoops())
	}

	d.Reset(bytes.NewReader(second))
	if d.Count() != 0 || d.SelfLoops() != 0 {
		t.Fatalf("after Reset: count=%d selfLoops=%d, want 0/0", d.Count(), d.SelfLoops())
	}
	e, err := d.Next()
	if err != nil || e != graph.NewEdge(3, 4) {
		t.Fatalf("after Reset: edge=%v err=%v", e, err)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("after Reset: want clean EOF, got %v", err)
	}
	if d.Count() != 1 || d.SelfLoops() != 0 {
		t.Fatalf("second doc: count=%d selfLoops=%d, want 1/0 (stats bled across Reset)", d.Count(), d.SelfLoops())
	}

	// Reset also clears the error latch and the timestamp-delta base.
	d.Reset(bytes.NewReader([]byte("NOPE")))
	if _, err := d.Next(); err == nil {
		t.Fatal("bad magic accepted after Reset")
	}
	timed := func(edges []graph.Edge) []byte {
		var buf bytes.Buffer
		bw := NewBinaryWriterTimed(&buf)
		for _, e := range edges {
			if err := bw.WriteEdge(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	d.Reset(bytes.NewReader(timed([]graph.Edge{graph.NewEdgeAt(1, 2, 100)})))
	if e, err := d.Next(); err != nil || e.TS != 100 {
		t.Fatalf("timed doc after error Reset: edge=%v err=%v", e, err)
	}
	// A second timed document must re-base deltas at 0, not at 100.
	d.Reset(bytes.NewReader(timed([]graph.Edge{graph.NewEdgeAt(5, 6, 7)})))
	if e, err := d.Next(); err != nil || e.TS != 7 {
		t.Fatalf("delta base bled across Reset: edge=%v err=%v", e, err)
	}
}

// TestSimplifierTurnstile: deletion records pass through the deduplicating
// simplifier untouched and clear the seen set, so a re-insert after a
// delete is a fresh arrival, not a suppressed duplicate.
func TestSimplifierTurnstile(t *testing.T) {
	in := []graph.Edge{
		graph.NewEdge(0, 1),
		graph.NewEdge(0, 1),              // duplicate: dropped
		graph.NewEdge(0, 1).AsDeletion(), // passes through, clears seen
		graph.NewEdge(0, 1),              // re-insert after delete: kept
		graph.NewEdge(2, 3).AsDeletion(), // deletion of a never-seen edge still passes
	}
	got := Collect(Simplify(FromEdges(in)))
	want := []graph.Edge{in[0], in[2], in[3], in[4]}
	if len(got) != len(want) {
		t.Fatalf("simplified stream has %d records, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %v, want %v", i, got[i], want[i])
		}
	}
}

// TestEdgeListTurnstile: the text format round-trips deletions via the
// leading "del" marker, and accepts the "-" alias.
func TestEdgeListTurnstile(t *testing.T) {
	in := []graph.Edge{
		graph.NewEdgeAt(0, 1, 5),
		graph.NewEdgeAt(0, 1, 6).AsDeletion(),
		graph.NewEdgeAt(2, 3, 7).AsDeletion(),
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("round trip changed record count: %d -> %d", len(in), len(got))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("record %d: %v -> %v", i, in[i], got[i])
		}
	}
	alias, err := ReadEdgeList(strings.NewReader("- 5 6\ndel 7 8\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(alias) != 2 || !alias[0].Del || !alias[1].Del {
		t.Fatalf("deletion markers not decoded: %v", alias)
	}
}

func TestReadEdgesSniffsFormat(t *testing.T) {
	edges := sampleEdges()
	var bin, text bytes.Buffer
	if err := WriteBinary(&bin, edges); err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgeList(&text, edges); err != nil {
		t.Fatal(err)
	}
	for name, payload := range map[string][]byte{"binary": bin.Bytes(), "text": text.Bytes()} {
		got, err := ReadEdges(bytes.NewReader(payload))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(edges) {
			t.Fatalf("%s: %d edges, want %d", name, len(got), len(edges))
		}
		for i := range edges {
			if got[i] != edges[i] {
				t.Fatalf("%s: edge %d: %v, want %v", name, i, got[i], edges[i])
			}
		}
	}
}

package stream

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"

	"gps/internal/graph"
)

func sampleEdges() []graph.Edge {
	return []graph.Edge{
		graph.NewEdge(0, 1),
		graph.NewEdge(1, 2),
		graph.NewEdge(7, 3),
		graph.NewEdge(1<<20, 5),
		graph.NewEdge(0xfffffffe, 0xffffffff),
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	edges := sampleEdges()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, edges); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(edges) {
		t.Fatalf("round trip changed edge count: %d -> %d", len(edges), len(got))
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d: %v -> %v", i, edges[i], got[i])
		}
	}
	// The format should beat text for ordinary id ranges.
	var text bytes.Buffer
	if err := WriteEdgeList(&text, edges); err != nil {
		t.Fatal(err)
	}
	t.Logf("binary %dB vs text %dB for %d edges", buf.Len(), text.Len(), len(edges))
}

func TestBinaryDecoderIncremental(t *testing.T) {
	edges := sampleEdges()
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	for _, e := range edges {
		if err := bw.WriteEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	if bw.Count() != len(edges) {
		t.Fatalf("writer count = %d, want %d", bw.Count(), len(edges))
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	// Feed the decoder through a one-byte-at-a-time reader: records must
	// decode incrementally regardless of read chunking.
	d := NewBinaryDecoder(iotest{r: bytes.NewReader(buf.Bytes())})
	for i := 0; ; i++ {
		e, err := d.Next()
		if err == io.EOF {
			if i != len(edges) {
				t.Fatalf("EOF after %d edges, want %d", i, len(edges))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if e != edges[i] {
			t.Fatalf("edge %d: %v, want %v", i, e, edges[i])
		}
	}
	if d.Count() != len(edges) {
		t.Fatalf("decoder count = %d, want %d", d.Count(), len(edges))
	}
}

// iotest returns at most one byte per Read.
type iotest struct{ r io.Reader }

func (o iotest) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

func TestBinaryDecoderErrors(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, sampleEdges()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := []struct {
		name  string
		input []byte
	}{
		{"empty", nil},
		{"short header", []byte("GPS")},
		{"bad magic", []byte("NOPE\x01\x00\x01")},
		{"future version", []byte("GPSB\x03\x00\x01")},
		{"v2 unknown flags", []byte("GPSB\x02\xfe\x00\x01")},
		{"v2 header truncated before flags", []byte("GPSB\x02")},
		{"v2 record truncated before ts delta", append(append([]byte{}, []byte(binaryMagicV2)...),
			binaryFlagTimestamps, 0x00, 0x01)},
		{"truncated mid record", valid[:len(valid)-1]},
		{"truncated after first id", append(append([]byte{}, []byte(binaryMagic)...), 0x05)},
		{"id overflows uint32", append(append([]byte{}, []byte(binaryMagic)...),
			0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0x00)},
		{"varint overflows uint64", append(append([]byte{}, []byte(binaryMagic)...),
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01)},
	}
	for _, tc := range cases {
		if _, err := ReadBinary(bytes.NewReader(tc.input)); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	// A clean header with zero records is a valid empty stream.
	edges, err := ReadBinary(strings.NewReader(binaryMagic))
	if err != nil || len(edges) != 0 {
		t.Errorf("empty stream: edges=%v err=%v", edges, err)
	}
}

func TestBinaryDecoderCanonicalizes(t *testing.T) {
	// Hand-build a record with the endpoints in descending order.
	raw := []byte(binaryMagic)
	var tmp [10]byte
	n := binary.PutUvarint(tmp[:], 9)
	raw = append(raw, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], 2)
	raw = append(raw, tmp[:n]...)
	edges, err := ReadBinary(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 1 || edges[0] != graph.NewEdge(2, 9) {
		t.Fatalf("got %v, want [2-9]", edges)
	}
}

func TestReadEdgesSniffsFormat(t *testing.T) {
	edges := sampleEdges()
	var bin, text bytes.Buffer
	if err := WriteBinary(&bin, edges); err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgeList(&text, edges); err != nil {
		t.Fatal(err)
	}
	for name, payload := range map[string][]byte{"binary": bin.Bytes(), "text": text.Bytes()} {
		got, err := ReadEdges(bytes.NewReader(payload))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(edges) {
			t.Fatalf("%s: %d edges, want %d", name, len(got), len(edges))
		}
		for i := range edges {
			if got[i] != edges[i] {
				t.Fatalf("%s: edge %d: %v, want %v", name, i, got[i], edges[i])
			}
		}
	}
}

package stream

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gps/internal/graph"
)

// maxLineBytes caps one edge-list line. Real edge lists stay far below it;
// the cap exists so a malformed (e.g. newline-free) input cannot buffer
// without bound, and hitting it is reported with the offending line number
// instead of bufio's opaque "token too long".
const maxLineBytes = 1 << 20

// ReadEdgeList parses a plain-text edge list: one edge per line as "u v" or
// "u v ts", whitespace separated, with '#' or '%' starting a comment line.
// A line whose first field is "-" or "del" is a turnstile deletion of the
// edge named by the remaining fields ("del u v" or "- u v ts"); the decoded
// edge carries graph.Edge.Del. The optional third column is an event
// timestamp (unsigned; 0 means
// untimed, i.e. arrival order); a non-numeric third field is tolerated and
// ignored, like any further annotation columns, so edge lists carrying
// labels or float weights still load as untimed streams. A numeric third
// column is only *kept* as event time when it is present on every data row
// and non-decreasing over the file — the shape of a real activity log —
// otherwise it is a weight/count column (or partial annotation) in
// disguise, and the whole stream loads untimed
// (ReadStats.TimestampsDropped reports the fallback). Self loops are
// skipped and counted under the shared reader policy (see ReadStats);
// duplicate edges are kept so that callers can decide whether to Simplify.
// Node ids must fit in uint32.
func ReadEdgeList(r io.Reader) ([]graph.Edge, error) {
	edges, _, err := ReadEdgeListStats(r)
	return edges, err
}

// ReadEdgeListStats is ReadEdgeList also reporting what was skipped.
func ReadEdgeListStats(r io.Reader) ([]graph.Edge, ReadStats, error) {
	var edges []graph.Edge
	var st ReadStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	line := 0
	var prevTS uint64
	monotone := true // over rows that carry a numeric third column
	sawTS := false
	untimedRows := 0 // data rows without a numeric third column
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		del := false
		if fields[0] == "-" || fields[0] == "del" {
			del = true
			fields = fields[1:]
		}
		if len(fields) < 2 {
			return nil, st, fmt.Errorf("stream: line %d: want at least two fields, got %q", line, text)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, st, fmt.Errorf("stream: line %d: bad node id %q: %v", line, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, st, fmt.Errorf("stream: line %d: bad node id %q: %v", line, fields[1], err)
		}
		var ts uint64
		if t, err := tsColumn(fields); err == nil {
			ts = t
			if sawTS && t < prevTS {
				monotone = false
			}
			sawTS, prevTS = true, t
		} else {
			untimedRows++
		}
		if u == v {
			st.SelfLoops++ // shared self-loop policy: skip and count
			continue
		}
		e := graph.NewEdgeAt(graph.NodeID(u), graph.NodeID(v), ts)
		if del {
			e = e.AsDeletion()
		}
		edges = append(edges, e)
	}
	if sawTS && (!monotone || untimedRows > 0) {
		// A decreasing column is a weight/count column in disguise, and a
		// column present on only some rows cannot be a coherent event-time
		// axis either — a partially-timed slice would poison downstream
		// consumers (the v2 delta encoder rejects it, decay would stamp
		// incommensurate fallback times). Load the stream untimed
		// (pre-timestamp behaviour) and report the fallback.
		for i := range edges {
			edges[i].TS = 0
		}
		st.TimestampsDropped = true
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// The scanner fails on the line after the last one it returned.
			return nil, st, fmt.Errorf("stream: line %d: line exceeds %d bytes: %w", line+1, maxLineBytes, err)
		}
		// %w keeps the reader's error type (e.g. *http.MaxBytesError, which
		// the service maps to 413) visible through errors.As.
		return nil, st, fmt.Errorf("stream: read: %w", err)
	}
	return edges, st, nil
}

// tsColumn extracts a row's numeric third column; any error means the row
// carries no timestamp (absent, or a non-numeric annotation).
func tsColumn(fields []string) (uint64, error) {
	if len(fields) < 3 {
		return 0, strconv.ErrSyntax
	}
	return strconv.ParseUint(fields[2], 10, 64)
}

// WriteEdgeList writes edges in the plain-text format accepted by
// ReadEdgeList: one canonical "u v" pair per line, with a third timestamp
// column for edges that carry one (TS != 0) and a leading "del" marker on
// turnstile deletions.
func WriteEdgeList(w io.Writer, edges []graph.Edge) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		if e.Del {
			if _, err := bw.WriteString("del "); err != nil {
				return err
			}
		}
		var err error
		if e.TS != 0 {
			_, err = fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, e.TS)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d\n", e.U, e.V)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

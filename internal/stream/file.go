package stream

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gps/internal/graph"
)

// ReadEdgeList parses a plain-text edge list: one "u v" pair per line,
// whitespace separated, with '#' or '%' starting a comment line. Self loops
// are skipped (the graph model is simplified); duplicate edges are kept so
// that callers can decide whether to Simplify. Node ids must fit in uint32.
func ReadEdgeList(r io.Reader) ([]graph.Edge, error) {
	var edges []graph.Edge
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("stream: line %d: want at least two fields, got %q", line, text)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: bad node id %q: %v", line, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: bad node id %q: %v", line, fields[1], err)
		}
		if u == v {
			continue // self loop: excluded by the simplified-graph model
		}
		edges = append(edges, graph.NewEdge(graph.NodeID(u), graph.NodeID(v)))
	}
	if err := sc.Err(); err != nil {
		// %w keeps the reader's error type (e.g. *http.MaxBytesError, which
		// the service maps to 413) visible through errors.As.
		return nil, fmt.Errorf("stream: read: %w", err)
	}
	return edges, nil
}

// WriteEdgeList writes edges in the plain-text format accepted by
// ReadEdgeList, one canonical "u v" pair per line.
func WriteEdgeList(w io.Writer, edges []graph.Edge) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

package stream

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"gps/internal/graph"
)

func edges(pairs ...[2]uint32) []graph.Edge {
	out := make([]graph.Edge, len(pairs))
	for i, p := range pairs {
		out[i] = graph.NewEdge(graph.NodeID(p[0]), graph.NodeID(p[1]))
	}
	return out
}

func TestSliceStream(t *testing.T) {
	in := edges([2]uint32{0, 1}, [2]uint32{1, 2}, [2]uint32{2, 3})
	s := FromEdges(in)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	got := Collect(s)
	if len(got) != 3 {
		t.Fatalf("Collect returned %d edges", len(got))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], in[i])
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted stream yielded an edge")
	}
	s.Reset()
	if e, ok := s.Next(); !ok || e != in[0] {
		t.Fatalf("after Reset: %v %v", e, ok)
	}
}

func TestPermuteDeterministicAndComplete(t *testing.T) {
	in := edges([2]uint32{0, 1}, [2]uint32{1, 2}, [2]uint32{2, 3},
		[2]uint32{3, 4}, [2]uint32{4, 5}, [2]uint32{5, 6}, [2]uint32{6, 7})
	a := Collect(Permute(in, 42))
	b := Collect(Permute(in, 42))
	if len(a) != len(in) {
		t.Fatalf("permutation lost edges: %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different permutations")
		}
	}
	c := Collect(Permute(in, 43))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical permutations (very unlikely)")
	}
	// Multiset equality.
	want := map[graph.Edge]int{}
	for _, e := range in {
		want[e]++
	}
	for _, e := range a {
		want[e]--
	}
	for e, n := range want {
		if n != 0 {
			t.Fatalf("edge %v count off by %d", e, n)
		}
	}
	// Input untouched.
	if in[0] != graph.NewEdge(0, 1) {
		t.Fatal("Permute mutated its input")
	}
}

func TestPermuteProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		var in []graph.Edge
		for i := 0; i < int(n); i++ {
			in = append(in, graph.NewEdge(graph.NodeID(i), graph.NodeID(i+1000)))
		}
		out := Collect(Permute(in, seed))
		if len(out) != len(in) {
			return false
		}
		seen := map[graph.Edge]bool{}
		for _, e := range out {
			if seen[e] {
				return false
			}
			seen[e] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSimplifier(t *testing.T) {
	in := edges(
		[2]uint32{0, 1}, [2]uint32{1, 0}, // duplicate after canonicalization
		[2]uint32{1, 2}, [2]uint32{0, 1}, // duplicate again
		[2]uint32{2, 3},
	)
	s := Simplify(FromEdges(in))
	got := Collect(s)
	if len(got) != 3 {
		t.Fatalf("simplified stream has %d edges, want 3", len(got))
	}
	if s.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", s.Dropped())
	}
}

func TestDrive(t *testing.T) {
	in := edges([2]uint32{0, 1}, [2]uint32{1, 2})
	var n int
	Drive(FromEdges(in), func(graph.Edge) { n++ })
	if n != 2 {
		t.Fatalf("Drive visited %d edges", n)
	}
}

func TestReadEdgeList(t *testing.T) {
	input := `# a comment
% another comment
0 1
1 2 extra-fields-ignored
3 3
  2   3
`
	got, err := ReadEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	want := edges([2]uint32{0, 1}, [2]uint32{1, 2}, [2]uint32{2, 3})
	if len(got) != len(want) {
		t.Fatalf("got %d edges, want %d (self loop must be skipped)", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",            // too few fields
		"a b\n",          // non-numeric
		"1 x\n",          // non-numeric second field
		"1 -2\n",         // negative
		"1 4294967296\n", // > uint32
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Fatalf("input %q: want error", c)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	in := edges([2]uint32{5, 1}, [2]uint32{2, 9}, [2]uint32{0, 7})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("round trip lost edges: %d != %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], in[i])
		}
	}
}

package stream

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"gps/internal/core"
	"gps/internal/graph"
)

func edges(pairs ...[2]uint32) []graph.Edge {
	out := make([]graph.Edge, len(pairs))
	for i, p := range pairs {
		out[i] = graph.NewEdge(graph.NodeID(p[0]), graph.NodeID(p[1]))
	}
	return out
}

func TestSliceStream(t *testing.T) {
	in := edges([2]uint32{0, 1}, [2]uint32{1, 2}, [2]uint32{2, 3})
	s := FromEdges(in)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	got := Collect(s)
	if len(got) != 3 {
		t.Fatalf("Collect returned %d edges", len(got))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], in[i])
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted stream yielded an edge")
	}
	s.Reset()
	if e, ok := s.Next(); !ok || e != in[0] {
		t.Fatalf("after Reset: %v %v", e, ok)
	}
}

func TestPermuteDeterministicAndComplete(t *testing.T) {
	in := edges([2]uint32{0, 1}, [2]uint32{1, 2}, [2]uint32{2, 3},
		[2]uint32{3, 4}, [2]uint32{4, 5}, [2]uint32{5, 6}, [2]uint32{6, 7})
	a := Collect(Permute(in, 42))
	b := Collect(Permute(in, 42))
	if len(a) != len(in) {
		t.Fatalf("permutation lost edges: %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different permutations")
		}
	}
	c := Collect(Permute(in, 43))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical permutations (very unlikely)")
	}
	// Multiset equality.
	want := map[graph.Edge]int{}
	for _, e := range in {
		want[e]++
	}
	for _, e := range a {
		want[e]--
	}
	for e, n := range want {
		if n != 0 {
			t.Fatalf("edge %v count off by %d", e, n)
		}
	}
	// Input untouched.
	if in[0] != graph.NewEdge(0, 1) {
		t.Fatal("Permute mutated its input")
	}
}

func TestPermuteProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		var in []graph.Edge
		for i := 0; i < int(n); i++ {
			in = append(in, graph.NewEdge(graph.NodeID(i), graph.NodeID(i+1000)))
		}
		out := Collect(Permute(in, seed))
		if len(out) != len(in) {
			return false
		}
		seen := map[graph.Edge]bool{}
		for _, e := range out {
			if seen[e] {
				return false
			}
			seen[e] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSimplifier(t *testing.T) {
	in := edges(
		[2]uint32{0, 1}, [2]uint32{1, 0}, // duplicate after canonicalization
		[2]uint32{1, 2}, [2]uint32{0, 1}, // duplicate again
		[2]uint32{2, 3},
	)
	s := Simplify(FromEdges(in))
	got := Collect(s)
	if len(got) != 3 {
		t.Fatalf("simplified stream has %d edges, want 3", len(got))
	}
	if s.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", s.Dropped())
	}
}

func TestDrive(t *testing.T) {
	in := edges([2]uint32{0, 1}, [2]uint32{1, 2})
	var n int
	Drive(FromEdges(in), func(graph.Edge) { n++ })
	if n != 2 {
		t.Fatalf("Drive visited %d edges", n)
	}
}

func TestReadEdgeList(t *testing.T) {
	input := `# a comment
% another comment
0 1
1 2 extra-fields-ignored
3 3
  2   3
`
	got, err := ReadEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	want := edges([2]uint32{0, 1}, [2]uint32{1, 2}, [2]uint32{2, 3})
	if len(got) != len(want) {
		t.Fatalf("got %d edges, want %d (self loop must be skipped)", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",            // too few fields
		"a b\n",          // non-numeric
		"1 x\n",          // non-numeric second field
		"1 -2\n",         // negative
		"1 4294967296\n", // > uint32
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Fatalf("input %q: want error", c)
		}
	}
}

// TestSkipResumeOverSelfLoops pins the Skip unit contract: a resume skips
// n records *yielded by the stream* (what the sampler's Processed counts),
// not n raw input records. An input with policy-skipped self loops makes
// the two counts diverge, so a resume keyed on the raw record count
// over-skips and silently desynchronizes from the checkpointed run — the
// bug this test exists to catch.
func TestSkipResumeOverSelfLoops(t *testing.T) {
	// 40 data rows, every fourth a self loop the reader policy drops.
	var sb strings.Builder
	for i := 0; i < 40; i++ {
		if i%4 == 3 {
			fmt.Fprintf(&sb, "%d %d\n", i, i) // self loop: skipped, counted
		} else {
			fmt.Fprintf(&sb, "%d %d\n", i, (i+1)%40)
		}
	}
	input := sb.String()

	decode := func() ([]graph.Edge, ReadStats) {
		edges, st, err := ReadEdgeListStats(strings.NewReader(input))
		if err != nil {
			t.Fatal(err)
		}
		return edges, st
	}
	edges, st := decode()
	if st.SelfLoops != 10 {
		t.Fatalf("reader skipped %d self loops, want 10", st.SelfLoops)
	}

	newEst := func() *core.InStream {
		est, err := core.NewInStream(core.Config{Capacity: 12, Weight: core.TriangleWeight, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	fingerprint := func(est *core.InStream) string {
		s := est.Sampler()
		keys := []string{}
		for _, e := range s.Reservoir().Edges() {
			keys = append(keys, fmt.Sprintf("%d-%d", e.U, e.V))
		}
		sort.Strings(keys)
		return fmt.Sprintf("processed=%d z*=%v sample=%v", s.Processed(), s.Threshold(), keys)
	}

	// Uninterrupted reference run.
	ref := newEst()
	Drive(FromEdges(edges), func(e graph.Edge) { ref.Process(e) })

	// Crashed run: consume a prefix, remember only Processed() — the resume
	// key a checkpoint carries.
	const crashAfter = 17
	crashed := newEst()
	src := FromEdges(edges)
	for i := 0; i < crashAfter; i++ {
		e, ok := src.Next()
		if !ok {
			t.Fatal("stream ran out before the crash point")
		}
		crashed.Process(e)
	}
	pos := crashed.Sampler().Processed()
	if pos != crashAfter {
		t.Fatalf("Processed = %d after %d yielded records", pos, crashAfter)
	}

	// Resume: re-decode (the reader drops the self loops again) and skip
	// exactly pos yielded records.
	reEdges, _ := decode()
	resumed := FromEdges(reEdges)
	if got := Skip(resumed, pos); got != pos {
		t.Fatalf("Skip consumed %d records, want %d", got, pos)
	}
	Drive(resumed, func(e graph.Edge) { crashed.Process(e) })
	if got, want := fingerprint(crashed), fingerprint(ref); got != want {
		t.Fatalf("resumed run diverged from uninterrupted run:\n  resumed: %s\n  ref:     %s", got, want)
	}

	// The pinned bug: skipping the raw input-record count for the same
	// prefix (yielded records + policy-skipped self loops) over-skips and
	// desynchronizes. Guard that this test can actually tell the difference.
	rawRecords := pos + uint64(st.SelfLoops)/2 // self loops are evenly interleaved
	if rawRecords == pos {
		t.Fatal("test input has no self loops in the prefix; cannot pin the contract")
	}
	buggy := newEst()
	prefix := FromEdges(edges)
	for i := 0; i < crashAfter; i++ {
		e, _ := prefix.Next()
		buggy.Process(e)
	}
	overEdges, _ := decode()
	overSkipped := FromEdges(overEdges)
	Skip(overSkipped, rawRecords)
	Drive(overSkipped, func(e graph.Edge) { buggy.Process(e) })
	if fingerprint(buggy) == fingerprint(ref) {
		t.Fatal("over-skipping by the raw record count matched the reference run; the equivalence test lost its teeth")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	in := edges([2]uint32{5, 1}, [2]uint32{2, 9}, [2]uint32{0, 7})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("round trip lost edges: %d != %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], in[i])
		}
	}
}

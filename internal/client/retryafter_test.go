package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestRetryAfterSanitized: the Retry-After header comes off the wire and
// must never yield a delay that is negative (int64 nanosecond overflow on
// huge second counts makes the timer fire immediately — a hot retry loop)
// or above the configured backoff cap (a stalled client).
func TestRetryAfterSanitized(t *testing.T) {
	c, err := New(Config{BaseURL: "http://x", MaxBackoff: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		header string
		want   time.Duration
	}{
		{"absent", "", 0},
		{"small", "2", 2 * time.Second},
		{"exactly cap", "5", 5 * time.Second},
		{"above cap", "3600", 5 * time.Second},
		{"zero", "0", 0},
		{"negative", "-3", 0},
		{"garbage", "soon", 0},
		{"http-date form unsupported", "Fri, 08 Aug 2026 00:00:00 GMT", 0},
		{"float", "1.5", 0},
		{"overflows int64 seconds", "99999999999999999999999999", 0},
		{"max int64: overflows duration", "9223372036854775807", 5 * time.Second},
		{"min int64", "-9223372036854775808", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := &http.Response{Header: http.Header{}}
			if tc.header != "" {
				resp.Header.Set("Retry-After", tc.header)
			}
			got := c.retryAfter(resp)
			if got != tc.want {
				t.Fatalf("retryAfter(%q) = %v, want %v", tc.header, got, tc.want)
			}
			if got < 0 || got > c.cfg.MaxBackoff {
				t.Fatalf("retryAfter(%q) = %v escapes [0, MaxBackoff=%v]", tc.header, got, c.cfg.MaxBackoff)
			}
		})
	}
}

// TestRetryAfterOverflowDoesNotStall: end to end, a server advertising an
// absurd Retry-After must not stretch the retry schedule beyond the
// configured cap — the request still exhausts its attempts promptly.
func TestRetryAfterOverflowDoesNotStall(t *testing.T) {
	h := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "9223372036854775807")
		http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
	}))
	defer h.Close()
	c, err := New(Config{
		BaseURL: h.URL, Source: "loader",
		MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Flush(ctx); err == nil {
		t.Fatal("flush against a permanently-503 server succeeded")
	}
	// Two sleeps of at most MaxBackoff*1.5 jitter each; anything near the
	// context deadline means the bogus hint leaked into the timer.
	if took := time.Since(start); took > time.Second {
		t.Fatalf("retries took %v; Retry-After overflow leaked into the backoff", took)
	}
}

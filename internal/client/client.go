// Package client is the at-least-once ingest client for the serve API: the
// other half of the server's sequence-deduplicated ingest contract.
//
// Every batch is stamped with a client-chosen source name and a
// monotonically increasing sequence number (the X-GPS-Source / X-GPS-Seq
// headers). Transient failures — connection errors, 429 load shedding,
// 5xx — are retried with capped exponential backoff and deterministic
// jitter, honoring the server's Retry-After when present. Because retries
// reuse the batch's sequence number, a batch whose acknowledgement was
// lost (applied on the server, 202 never seen) is answered
// {"duplicate": true} on retry instead of being applied twice:
// at-least-once delivery, exactly-once application.
//
// The client is safe for concurrent use, but batches sent concurrently
// from one client race for sequence numbers and may be acknowledged out of
// order; the server's watermark then treats a delayed lower sequence as a
// duplicate. Send a source's batches from one goroutine (or one client per
// goroutine with distinct sources) when every batch must land.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"gps/internal/graph"
	"gps/internal/randx"
	"gps/internal/stream"
)

// Config parameterizes a Client. The zero value of every field has a
// usable default except BaseURL, which is required.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Source names this client's stream for the server's dedup watermark.
	// Empty disables sequencing (fire-and-forget ingest, no retry dedup).
	Source string
	// Stream addresses a named server stream (the ?stream= selector on
	// every call). Empty addresses the server's default stream, exactly as
	// pre-registry clients did.
	Stream string
	// MaxAttempts bounds tries per request (first try included); <= 0
	// means 6.
	MaxAttempts int
	// BaseBackoff is the first retry delay, doubled per attempt up to
	// MaxBackoff; <= 0 means 100ms (capped at 5s by default).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff; <= 0 means 5s.
	MaxBackoff time.Duration
	// Seed makes the retry jitter deterministic for tests; 0 derives one
	// from the source name.
	Seed uint64
	// HTTPClient overrides the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
}

// Client talks to a serve.Server. Construct with New.
type Client struct {
	cfg  Config
	http *http.Client
	seq  atomic.Uint64
	rng  struct {
		mu  chan struct{} // 1-token semaphore; randx.RNG is not goroutine-safe
		rnd *randx.RNG
	}
}

// RetryError is returned when a request exhausted its attempts; it carries
// the last failure so callers can distinguish overload from hard errors.
type RetryError struct {
	Attempts int
	Last     error
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("client: giving up after %d attempts: %v", e.Attempts, e.Last)
}

func (e *RetryError) Unwrap() error { return e.Last }

// StatusError is a non-2xx response that is not retryable (or that
// exhausted retries), with the decoded server error message when present.
type StatusError struct {
	Status  int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server answered %d: %s", e.Status, e.Message)
}

// New builds a client for the server at cfg.BaseURL.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("client: BaseURL is required")
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 6
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
		for _, b := range []byte(cfg.Source) {
			seed = randx.Mix64(seed ^ uint64(b))
		}
	}
	c := &Client{cfg: cfg, http: cfg.HTTPClient}
	if c.http == nil {
		c.http = http.DefaultClient
	}
	c.rng.mu = make(chan struct{}, 1)
	c.rng.mu <- struct{}{}
	c.rng.rnd = randx.New(seed)
	return c, nil
}

// endpoint builds a request URL: BaseURL + path, with the configured
// stream selector and any extra query parameters appended. An unset Stream
// adds no parameter, so the wire traffic of a single-stream client is
// unchanged.
func (c *Client) endpoint(path string, params ...[2]string) string {
	q := url.Values{}
	if c.cfg.Stream != "" {
		q.Set("stream", c.cfg.Stream)
	}
	for _, p := range params {
		q.Set(p[0], p[1])
	}
	u := c.cfg.BaseURL + path
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	return u
}

// IngestResult reports one acknowledged batch.
type IngestResult struct {
	// Accepted is the number of edges the server admitted (0 for a
	// deduplicated retry — the batch was already applied).
	Accepted int `json:"accepted"`
	// Duplicate reports that the server had already acknowledged this
	// sequence number; the batch was not re-applied.
	Duplicate bool `json:"duplicate"`
	// SkippedSelfLoops counts self-loop records the server's reader
	// skipped per the shared stream policy.
	SkippedSelfLoops int `json:"skipped_self_loops"`
	// Seq is the sequence number the batch was sent (and retried) under;
	// 0 when the client is unsequenced.
	Seq uint64
	// Attempts is how many tries the acknowledgement took.
	Attempts int
}

// Ingest sends one batch in the binary wire format, retrying transient
// failures until acknowledged or attempts are exhausted. With a configured
// Source the batch carries a sequence number, so a retry after a lost
// acknowledgement is deduplicated server-side rather than double-counted.
func (c *Client) Ingest(ctx context.Context, edges []graph.Edge) (IngestResult, error) {
	var body bytes.Buffer
	if err := stream.WriteBinary(&body, edges); err != nil {
		return IngestResult{}, fmt.Errorf("client: encode: %w", err)
	}
	var seq uint64
	if c.cfg.Source != "" {
		seq = c.seq.Add(1)
	}
	var res IngestResult
	attempts, err := c.retry(ctx, func() (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			c.endpoint("/v1/ingest"), bytes.NewReader(body.Bytes()))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", stream.BinaryContentType)
		if seq != 0 {
			req.Header.Set("X-GPS-Source", c.cfg.Source)
			req.Header.Set("X-GPS-Seq", strconv.FormatUint(seq, 10))
		}
		return c.http.Do(req)
	}, &res)
	res.Seq = seq
	res.Attempts = attempts
	return res, err
}

// Flush blocks until every batch acknowledged before it has reached the
// sampler — the client-side read-your-writes barrier.
func (c *Client) Flush(ctx context.Context) error {
	_, err := c.retry(ctx, func() (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.endpoint("/v1/flush"), nil)
		if err != nil {
			return nil, err
		}
		return c.http.Do(req)
	}, &struct{}{})
	return err
}

// Estimate is the decoded /v1/estimate response.
type Estimate struct {
	Triangles    float64    `json:"triangles"`
	TrianglesCI  [2]float64 `json:"triangles_ci95"`
	Wedges       float64    `json:"wedges"`
	WedgesCI     [2]float64 `json:"wedges_ci95"`
	Clustering   float64    `json:"clustering"`
	SampledEdges int        `json:"sampled_edges"`
	Arrivals     uint64     `json:"arrivals"`
	Threshold    float64    `json:"threshold"`
	// Degraded marks a best-effort answer: the server lost edges in a
	// shard recovery, or served a stale snapshot past its refresh
	// deadline.
	Degraded      bool    `json:"degraded"`
	Decayed       bool    `json:"decayed"`
	DecayedEdges  float64 `json:"decayed_edges"`
	DecayHorizon  uint64  `json:"decay_horizon"`
	SnapshotAgeMS float64 `json:"snapshot_age_ms"`
}

// Estimate queries /v1/estimate. maxStale < 0 uses the server's default
// staleness bound; 0 demands a fresh snapshot.
func (c *Client) Estimate(ctx context.Context, maxStale time.Duration) (Estimate, error) {
	var params [][2]string
	if maxStale >= 0 {
		params = append(params, [2]string{"max_stale", maxStale.String()})
	}
	url := c.endpoint("/v1/estimate", params...)
	var est Estimate
	_, err := c.retry(ctx, func() (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		return c.http.Do(req)
	}, &est)
	return est, err
}

// retry runs send until a 2xx (decoded into out), a non-retryable status,
// or exhausted attempts. Retryable: connection errors, 408, 429 and every
// 5xx — the uniform transient class the server promises for overload and
// injected faults. Retry-After (seconds) overrides the backoff when the
// server provides it.
func (c *Client) retry(ctx context.Context, send func() (*http.Response, error), out any) (attempts int, err error) {
	var last error
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		resp, err := send()
		if err != nil {
			last = err
			if ctx.Err() != nil {
				return attempt, ctx.Err()
			}
			if !c.sleep(ctx, attempt, 0) {
				return attempt, ctx.Err()
			}
			continue
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		switch {
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			if rerr != nil {
				return attempt, fmt.Errorf("client: read response: %w", rerr)
			}
			if err := json.Unmarshal(body, out); err != nil {
				return attempt, fmt.Errorf("client: decode response: %w", err)
			}
			return attempt, nil
		case retryable(resp.StatusCode):
			last = &StatusError{Status: resp.StatusCode, Message: serverMessage(body)}
			if !c.sleep(ctx, attempt, c.retryAfter(resp)) {
				return attempt, ctx.Err()
			}
		default:
			return attempt, &StatusError{Status: resp.StatusCode, Message: serverMessage(body)}
		}
	}
	return c.cfg.MaxAttempts, &RetryError{Attempts: c.cfg.MaxAttempts, Last: last}
}

func retryable(status int) bool {
	return status == http.StatusRequestTimeout ||
		status == http.StatusTooManyRequests ||
		status >= 500
}

// serverMessage extracts the {"error": ...} message the serve layer wraps
// every failure in, falling back to the raw body.
func serverMessage(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	if len(body) > 200 {
		body = body[:200]
	}
	return string(bytes.TrimSpace(body))
}

// retryAfter parses a Retry-After header in seconds; 0 means absent (fall
// back to the backoff schedule). The value is a *hint from the network* and
// is sanitized like one: garbage and negative values are ignored, and
// anything above MaxBackoff is clamped to it BEFORE the seconds-to-
// Duration conversion — a large enough integer (~292 e9 seconds) overflows
// int64 nanoseconds into a negative duration, which the sleep timer fires
// on immediately, turning the polite retry loop into a hot one.
func (c *Client) retryAfter(resp *http.Response) time.Duration {
	raw := resp.Header.Get("Retry-After")
	if raw == "" {
		return 0
	}
	secs, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || secs <= 0 {
		return 0
	}
	if cap := int64(c.cfg.MaxBackoff / time.Second); secs > cap {
		return c.cfg.MaxBackoff
	}
	return time.Duration(secs) * time.Second
}

// sleep waits out the backoff for attempt (1-based), preferring the
// server's Retry-After hint. The delay is the capped exponential base
// scaled by a uniform jitter in [0.5, 1.5) so a fleet of retrying clients
// decorrelates instead of thundering back in lockstep. Returns false when
// the context ended first.
func (c *Client) sleep(ctx context.Context, attempt int, hint time.Duration) bool {
	d := hint
	if d == 0 {
		d = c.cfg.BaseBackoff << (attempt - 1)
		if d > c.cfg.MaxBackoff || d <= 0 {
			d = c.cfg.MaxBackoff
		}
	}
	<-c.rng.mu
	jitter := 0.5 + c.rng.rnd.Uniform01()
	c.rng.mu <- struct{}{}
	d = time.Duration(float64(d) * jitter)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gps/internal/client"
	"gps/internal/fault"
	"gps/internal/gen"
	"gps/internal/serve"
)

func newServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func newClient(t *testing.T, url, source string) *client.Client {
	t.Helper()
	c, err := client.New(client.Config{
		BaseURL:     url,
		Source:      source,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func armFaults(t *testing.T, spec string) {
	t.Helper()
	rules, err := fault.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(7, rules)
	t.Cleanup(fault.Disarm)
	if !fault.Enabled() {
		t.Skip("fault injection compiled out (gps_nofault)")
	}
}

// TestClientLostAckConvergence is the at-least-once contract end to end
// against the real server: the first acknowledgement is replaced by an
// injected 503 after the batch was committed; the client's retry of the
// same sequence number is answered "duplicate" and the stream converges to
// exactly-once application.
func TestClientLostAckConvergence(t *testing.T) {
	edges := gen.ErdosRenyi(80, 600, 21)
	_, ts := newServer(t, serve.Config{Capacity: 1000, Seed: 3})
	c := newClient(t, ts.URL, "loader")

	armFaults(t, "serve.ingest.ack:error:times=1")
	res, err := c.Ingest(context.Background(), edges)
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if res.Attempts < 2 {
		t.Fatalf("attempts = %d, want a retry after the lost ack", res.Attempts)
	}
	if !res.Duplicate || res.Accepted != 0 {
		t.Fatalf("retry result = %+v, want server-side dedup", res)
	}
	fault.Disarm()
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	est, err := c.Estimate(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if est.Arrivals != uint64(len(edges)) {
		t.Fatalf("arrivals = %d, want %d (batch applied exactly once)", est.Arrivals, len(edges))
	}
}

// TestClientRetriesTransientHTTP: injected route-level 503s are retried
// until the rule is exhausted; the workload lands intact.
func TestClientRetriesTransientHTTP(t *testing.T) {
	edges := gen.ErdosRenyi(50, 300, 23)
	_, ts := newServer(t, serve.Config{Capacity: 1000, Seed: 4})
	c := newClient(t, ts.URL, "loader")

	armFaults(t, "serve.http:error:times=3")
	res, err := c.Ingest(context.Background(), edges)
	if err != nil {
		t.Fatalf("ingest under transient faults: %v", err)
	}
	if res.Accepted != len(edges) {
		t.Fatalf("accepted = %d, want %d", res.Accepted, len(edges))
	}
	fault.Disarm()
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	est, err := c.Estimate(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if est.Arrivals != uint64(len(edges)) {
		t.Fatalf("arrivals = %d, want %d", est.Arrivals, len(edges))
	}
}

// TestClientNonRetryable: a client error (4xx other than 408/429) fails
// fast without retries.
func TestClientNonRetryable(t *testing.T) {
	var hits atomic.Int64
	h := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"bad batch"}`, http.StatusBadRequest)
	}))
	defer h.Close()
	c := newClient(t, h.URL, "loader")
	_, err := c.Ingest(context.Background(), gen.ErdosRenyi(10, 20, 1))
	var se *client.StatusError
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server hit %d times, want 1 (no retry on 4xx)", hits.Load())
	}
}

// TestClientExhaustsRetries: persistent overload yields a RetryError that
// unwraps to the last 503.
func TestClientExhaustsRetries(t *testing.T) {
	h := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
	}))
	defer h.Close()
	c, err := client.New(client.Config{
		BaseURL: h.URL, Source: "loader",
		MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Ingest(context.Background(), gen.ErdosRenyi(10, 20, 1))
	var re *client.RetryError
	if !errors.As(err, &re) || re.Attempts != 3 {
		t.Fatalf("err = %v, want RetryError after 3 attempts", err)
	}
	var se *client.StatusError
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("RetryError does not unwrap to the last 503: %v", err)
	}
}

// TestClientUnsequenced: without a Source the client sends no dedup
// headers — fire-and-forget compatibility mode.
func TestClientUnsequenced(t *testing.T) {
	var sawSource atomic.Bool
	_, ts := newServer(t, serve.Config{Capacity: 100, Seed: 5})
	probe := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-GPS-Source") != "" {
			sawSource.Store(true)
		}
		http.Error(w, `{"error":"nope"}`, http.StatusBadRequest) // stop after one attempt
	}))
	defer probe.Close()
	c, err := client.New(client.Config{BaseURL: probe.URL, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = c.Ingest(context.Background(), gen.ErdosRenyi(10, 20, 2))
	if sawSource.Load() {
		t.Fatal("unsequenced client sent X-GPS-Source")
	}
	// And against the real server an unsequenced ingest still lands.
	c2, err := client.New(client.Config{BaseURL: ts.URL, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c2.Ingest(context.Background(), gen.ErdosRenyi(10, 20, 2))
	if err != nil || res.Accepted == 0 {
		t.Fatalf("unsequenced ingest: res=%+v err=%v", res, err)
	}
	if res.Seq != 0 {
		t.Fatalf("unsequenced result carries seq %d", res.Seq)
	}
}

// TestClientContextCancel: a canceled context stops the retry loop
// promptly instead of sleeping out the backoff schedule.
func TestClientContextCancel(t *testing.T) {
	h := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
	}))
	defer h.Close()
	c, err := client.New(client.Config{
		BaseURL: h.URL, Source: "loader",
		MaxAttempts: 100, BaseBackoff: 50 * time.Millisecond, MaxBackoff: time.Second, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Ingest(ctx, gen.ErdosRenyi(10, 20, 3))
	if err == nil {
		t.Fatal("ingest succeeded against a dead server")
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("cancelation took %v", waited)
	}
}

package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// human formats large counts the way the paper's tables do (4.9B, 667.1K).
func human(v float64) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= 1e12:
		return fmt.Sprintf("%.1fT", v/1e12)
	case abs >= 1e9:
		return fmt.Sprintf("%.1fB", v/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	case abs >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

func table(render func(w *tabwriter.Writer)) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	render(w)
	w.Flush()
	return sb.String()
}

// RenderTable1 formats Table1 rows like the paper's Table 1.
func RenderTable1(rows []Table1Row) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "stat\tgraph\t|K|\t|K̂|/|K|\tX\tX̂(in)\tARE(in)\tLB(in)\tUB(in)\tX̂(post)\tARE(post)\tLB(post)\tUB(post)")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%s\t%.4f\t%s\t%s\t%.4f\t%s\t%s\t%s\t%.4f\t%s\t%s\n",
				r.Stat, r.Graph, human(float64(r.Edges)), r.Fraction,
				human(r.Actual),
				human(r.InStream.Estimate), r.InStream.ARE, human(r.InStream.LB), human(r.InStream.UB),
				human(r.Post.Estimate), r.Post.ARE, human(r.Post.LB), human(r.Post.UB))
		}
	})
}

// RenderTable2 formats Table2 rows like the paper's Table 2: an ARE block
// and an update-time block with one column per method.
func RenderTable2(rows []Table2Row) string {
	methods := Table2Methods()
	byGraph := map[string]map[string]Table2Row{}
	var graphs []string
	for _, r := range rows {
		if byGraph[r.Graph] == nil {
			byGraph[r.Graph] = map[string]Table2Row{}
			graphs = append(graphs, r.Graph)
		}
		byGraph[r.Graph][r.Method] = r
	}
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Absolute Relative Error (ARE)")
		fmt.Fprintf(w, "graph\t%s\n", strings.Join(methods, "\t"))
		for _, g := range graphs {
			fmt.Fprintf(w, "%s", g)
			for _, m := range methods {
				fmt.Fprintf(w, "\t%.3f", byGraph[g][m].ARE)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, "Average Time (µs/edge)")
		fmt.Fprintf(w, "graph\t%s\n", strings.Join(methods, "\t"))
		for _, g := range graphs {
			fmt.Fprintf(w, "%s", g)
			for _, m := range methods {
				fmt.Fprintf(w, "\t%.2f", byGraph[g][m].MicrosPerEdge)
			}
			fmt.Fprintln(w)
		}
	})
}

// RenderTable3 formats Table3 rows like the paper's Table 3.
func RenderTable3(rows []Table3Row) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "graph\talgorithm\tMax. ARE\tMARE")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%.3f\t%.3f\n", r.Graph, r.Method, r.MaxARE, r.MARE)
		}
	})
}

// RenderFigure1 formats the Figure 1 scatter as a table of ratios.
func RenderFigure1(points []Fig1Point) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "graph\tx̂/x triangles\tx̂/x wedges")
		for _, p := range points {
			fmt.Fprintf(w, "%s\t%.4f\t%.4f\n", p.Graph, p.TriangleRatio, p.WedgeRatio)
		}
	})
}

// RenderFigure2 formats the Figure 2 convergence series.
func RenderFigure2(series []Fig2Series) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "graph\t|K̂|\tX̂/X\tLB/X\tUB/X")
		for _, s := range series {
			for _, p := range s.Points {
				fmt.Fprintf(w, "%s\t%d\t%.4f\t%.4f\t%.4f\n",
					s.Graph, p.SampleSize, p.Ratio, p.LBRatio, p.UBRatio)
			}
		}
	})
}

// RenderFigure3 formats the Figure 3 tracking series.
func RenderFigure3(series []Fig3Series) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "graph\tt\ttriangles\tX̂(tri)\tLB\tUB\tcc\tĉc\tLB\tUB")
		for _, s := range series {
			for _, p := range s.Points {
				fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%s\t%s\t%.4f\t%.4f\t%.4f\t%.4f\n",
					s.Graph, p.T,
					human(p.ActualTriangles), human(p.EstTriangles),
					human(p.LBTriangles), human(p.UBTriangles),
					p.ActualClustering, p.EstClustering,
					p.LBClustering, p.UBClustering)
			}
		}
	})
}

// RenderAblation formats the weight-function ablation.
func RenderAblation(rows []AblationRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "weight\tARE(in)\tARE(post)\tVar(in)\tVar(post)")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.4f\t%.4f\t%s\t%s\n",
				r.Weight, r.MeanInARE, r.MeanPostARE, human(r.VarInStream), human(r.VarPost))
		}
	})
}

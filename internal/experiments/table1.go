package experiments

import (
	"gps/internal/core"
	"gps/internal/datasets"
	"gps/internal/stats"
)

// Statistic names a graphlet statistic reported by Table 1.
type Statistic string

// The three statistics of Table 1.
const (
	StatTriangles  Statistic = "triangles"
	StatWedges     Statistic = "wedges"
	StatClustering Statistic = "clustering"
)

// MethodResult is one estimation method's cell block in Table 1: the
// (averaged) estimate, its absolute relative error against ground truth, and
// the 95% confidence bounds built from the unbiased variance estimate.
type MethodResult struct {
	Estimate float64
	ARE      float64
	LB, UB   float64
}

// Table1Row is one (graph, statistic) row of Table 1.
type Table1Row struct {
	Graph    string
	Stat     Statistic
	Edges    int64   // |K|
	Fraction float64 // |K̂|/|K|
	Actual   float64 // X
	InStream MethodResult
	Post     MethodResult
}

// Table1 regenerates the paper's Table 1: for each graph, GPS samples
// sampleSize edges with the triangle weight and reports in-stream and
// post-stream estimates of triangle count, wedge count and global
// clustering, with ARE and 95% bounds, averaged over Options.Trials
// replications of the stream permutation and sampler randomness.
func Table1(opts Options, sampleSize int, graphs []string) ([]Table1Row, error) {
	opts = opts.withDefaults()
	if len(graphs) == 0 {
		graphs = datasets.Table1()
	}
	var rows []Table1Row
	for gi, name := range graphs {
		d, err := datasets.Get(name)
		if err != nil {
			return nil, err
		}
		truth, err := datasets.Truth(name, opts.Profile)
		if err != nil {
			return nil, err
		}
		edges := d.Edges(opts.Profile)
		m := clampSample(sampleSize, len(edges))

		inRuns := make([]core.Estimates, 0, opts.Trials)
		postRuns := make([]core.Estimates, 0, opts.Trials)
		for trial := 0; trial < opts.Trials; trial++ {
			ss, ps := opts.trialSeed(gi, trial)
			run := runGPS(edges, m, ss, ps)
			inRuns = append(inRuns, run.in)
			postRuns = append(postRuns, run.post)
		}
		in := meanEstimates(inRuns)
		post := meanEstimates(postRuns)
		frac := float64(in.SampledEdges) / float64(len(edges))

		add := func(stat Statistic, actual float64, inR, postR MethodResult) {
			rows = append(rows, Table1Row{
				Graph: name, Stat: stat, Edges: int64(len(edges)),
				Fraction: frac, Actual: actual, InStream: inR, Post: postR,
			})
		}
		add(StatTriangles, float64(truth.Triangles),
			methodResult(in.Triangles, in.TriangleInterval(), float64(truth.Triangles)),
			methodResult(post.Triangles, post.TriangleInterval(), float64(truth.Triangles)))
		add(StatWedges, float64(truth.Wedges),
			methodResult(in.Wedges, in.WedgeInterval(), float64(truth.Wedges)),
			methodResult(post.Wedges, post.WedgeInterval(), float64(truth.Wedges)))
		add(StatClustering, truth.GlobalClustering(),
			methodResult(in.GlobalClustering(), in.ClusteringInterval(), truth.GlobalClustering()),
			methodResult(post.GlobalClustering(), post.ClusteringInterval(), truth.GlobalClustering()))
	}
	return rows, nil
}

func methodResult(estimate float64, iv stats.Interval, actual float64) MethodResult {
	return MethodResult{
		Estimate: estimate,
		ARE:      stats.ARE(estimate, actual),
		LB:       iv.Lower,
		UB:       iv.Upper,
	}
}

package experiments

import (
	"gps/internal/core"
	"gps/internal/datasets"
	"gps/internal/stats"
	"gps/internal/stream"

	"gps/internal/graph"
)

// AblationRow summarizes one weight function's behaviour in the §3.5
// ablation: the triangle estimate's error and the empirical variance of the
// two estimation frameworks across replications.
type AblationRow struct {
	Weight      string
	MeanInARE   float64
	MeanPostARE float64
	VarInStream float64
	VarPost     float64
}

// WeightAblation quantifies the design choice of §3.5/§4: how the sampling
// weight W(k,K̂) affects triangle estimation. It runs GPS with several
// weight functions over the same dataset and reports mean ARE and empirical
// variance for in-stream and post-stream estimates. The paper's
// variance-minimization argument predicts the triangle-count weight
// (coefficient 9, default 1) to dominate uniform weighting for post-stream
// estimation.
//
// Variance estimation needs replications; the runner uses at least 12 trials
// regardless of Options.Trials.
func WeightAblation(opts Options, sampleSize int, graphName string) ([]AblationRow, error) {
	opts = opts.withDefaults()
	if opts.Trials < 12 {
		opts.Trials = 12
	}
	d, err := datasets.Get(graphName)
	if err != nil {
		return nil, err
	}
	truth, err := datasets.Truth(graphName, opts.Profile)
	if err != nil {
		return nil, err
	}
	edges := d.Edges(opts.Profile)
	m := clampSample(sampleSize, len(edges))
	actual := float64(truth.Triangles)

	// Stateful weights (the adaptive scheme) need a fresh instance per
	// sampler, so the table holds constructors.
	weights := []struct {
		name string
		make func() core.WeightFunc
	}{
		{"uniform", func() core.WeightFunc { return core.UniformWeight }},
		{"adjacency", func() core.WeightFunc { return core.AdjacencyWeight }},
		{"triangle c=1", func() core.WeightFunc { return core.NewTriangleWeight(1, 1) }},
		{"triangle c=9 (paper)", func() core.WeightFunc { return core.TriangleWeight }},
		{"triangle c=81", func() core.WeightFunc { return core.NewTriangleWeight(81, 1) }},
		{"adaptive (§8)", func() core.WeightFunc { return core.NewAdaptiveTriangleWeight(0.5) }},
	}

	var rows []AblationRow
	for wi, w := range weights {
		var inEst, postEst stats.Welford
		for trial := 0; trial < opts.Trials; trial++ {
			ss, ps := opts.trialSeed(wi, trial)
			in, err := core.NewInStream(core.Config{Capacity: m, Weight: w.make(), Seed: ss})
			if err != nil {
				return nil, err
			}
			stream.Drive(stream.Permute(edges, ps), func(e graph.Edge) { in.Process(e) })
			inEst.Add(in.Estimates().Triangles)
			postEst.Add(core.EstimatePost(in.Sampler()).Triangles)
		}
		rows = append(rows, AblationRow{
			Weight:      w.name,
			MeanInARE:   stats.ARE(inEst.Mean(), actual),
			MeanPostARE: stats.ARE(postEst.Mean(), actual),
			VarInStream: inEst.Variance(),
			VarPost:     postEst.Variance(),
		})
	}
	return rows, nil
}

// streamCollect materializes the seeded permutation of edges.
func streamCollect(edges []graph.Edge, seed uint64) []graph.Edge {
	return stream.Collect(stream.Permute(edges, seed))
}

package experiments

import (
	"fmt"
	"math"
	"strings"
)

// The paper's Figures 2 and 3 are plots; alongside the tabular renderers,
// these ASCII plotters draw the same series in a terminal so that
// `gps-bench` output conveys the convergence and tracking *shapes* at a
// glance, not just the numbers.

// plotGrid is a fixed-size character canvas.
type plotGrid struct {
	width, height int
	cells         [][]byte
}

func newPlotGrid(width, height int) *plotGrid {
	g := &plotGrid{width: width, height: height}
	g.cells = make([][]byte, height)
	for i := range g.cells {
		g.cells[i] = []byte(strings.Repeat(" ", width))
	}
	return g
}

// set marks the cell at column x (0=left) and row y (0=bottom); out-of-range
// points are clipped.
func (g *plotGrid) set(x, y int, ch byte) {
	if x < 0 || x >= g.width || y < 0 || y >= g.height {
		return
	}
	g.cells[g.height-1-y][x] = ch
}

func (g *plotGrid) String() string {
	var sb strings.Builder
	for _, row := range g.cells {
		sb.Write(row)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// PlotFigure2Panel draws one graph's convergence panel: the x̂/x ratio (o)
// with its LB/UB band (- markers) against log-spaced sample sizes, with a
// horizontal reference line at ratio 1.
func PlotFigure2Panel(s Fig2Series, width, height int) string {
	if len(s.Points) == 0 {
		return s.Graph + ": (no points)\n"
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range s.Points {
		lo = math.Min(lo, p.LBRatio)
		hi = math.Max(hi, p.UBRatio)
	}
	lo = math.Min(lo, 0.95)
	hi = math.Max(hi, 1.05)
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	grid := newPlotGrid(width, height)
	yOf := func(v float64) int {
		return int(math.Round((v - lo) / span * float64(height-1)))
	}
	// Reference line at 1.
	for x := 0; x < width; x++ {
		grid.set(x, yOf(1), '.')
	}
	for i, p := range s.Points {
		x := 0
		if len(s.Points) > 1 {
			x = i * (width - 1) / (len(s.Points) - 1)
		}
		grid.set(x, yOf(p.LBRatio), '-')
		grid.set(x, yOf(p.UBRatio), '-')
		grid.set(x, yOf(p.Ratio), 'o')
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (y: X̂/X in [%.2f, %.2f]; x: sample size %d → %d; o=ratio, -=95%% bounds)\n",
		s.Graph, lo, hi, s.Points[0].SampleSize, s.Points[len(s.Points)-1].SampleSize)
	sb.WriteString(grid.String())
	return sb.String()
}

// PlotFigure3Panel draws one graph's tracking panel: the actual triangle
// trajectory (*) with the estimate (o) and its band (-), both normalized by
// the final actual count.
func PlotFigure3Panel(s Fig3Series, width, height int) string {
	if len(s.Points) == 0 {
		return s.Graph + ": (no points)\n"
	}
	final := s.Points[len(s.Points)-1].ActualTriangles
	if final <= 0 {
		return s.Graph + ": (no triangles)\n"
	}
	grid := newPlotGrid(width, height)
	yOf := func(v float64) int {
		return int(math.Round(v / (1.1 * final) * float64(height-1)))
	}
	for i, p := range s.Points {
		x := 0
		if len(s.Points) > 1 {
			x = i * (width - 1) / (len(s.Points) - 1)
		}
		grid.set(x, yOf(p.LBTriangles), '-')
		grid.set(x, yOf(p.UBTriangles), '-')
		grid.set(x, yOf(p.EstTriangles), 'o')
		grid.set(x, yOf(p.ActualTriangles), '*')
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (y: triangles 0 → %.3g; x: stream position; *=actual, o=estimate, -=95%% band)\n",
		s.Graph, 1.1*final)
	sb.WriteString(grid.String())
	return sb.String()
}

// PlotFigure2 draws every panel.
func PlotFigure2(series []Fig2Series) string {
	var sb strings.Builder
	for _, s := range series {
		sb.WriteString(PlotFigure2Panel(s, 60, 12))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// PlotFigure3 draws every panel.
func PlotFigure3(series []Fig3Series) string {
	var sb strings.Builder
	for _, s := range series {
		sb.WriteString(PlotFigure3Panel(s, 70, 14))
		sb.WriteByte('\n')
	}
	return sb.String()
}

package experiments

import (
	"gps/internal/core"
	"gps/internal/datasets"
	"gps/internal/exact"
	"gps/internal/graph"
	"gps/internal/stream"
)

// Fig1Point is one graph's point in the Figure 1 scatter: the ratio of the
// in-stream estimate to the actual value for triangles and wedges, from one
// shared sample. Points near (1,1) mean both statistics are estimated
// accurately from a single GPS sample.
type Fig1Point struct {
	Graph         string
	TriangleRatio float64
	WedgeRatio    float64
}

// Figure1 regenerates the paper's Figure 1 (x̂/x of triangles vs wedges,
// in-stream estimation, one sample size for all graphs).
func Figure1(opts Options, sampleSize int, graphs []string) ([]Fig1Point, error) {
	opts = opts.withDefaults()
	if len(graphs) == 0 {
		graphs = datasets.Figure1()
	}
	var points []Fig1Point
	for gi, name := range graphs {
		d, err := datasets.Get(name)
		if err != nil {
			return nil, err
		}
		truth, err := datasets.Truth(name, opts.Profile)
		if err != nil {
			return nil, err
		}
		edges := d.Edges(opts.Profile)
		m := clampSample(sampleSize, len(edges))
		runs := make([]core.Estimates, 0, opts.Trials)
		for trial := 0; trial < opts.Trials; trial++ {
			ss, ps := opts.trialSeed(gi, trial)
			runs = append(runs, runGPS(edges, m, ss, ps).in)
		}
		in := meanEstimates(runs)
		points = append(points, Fig1Point{
			Graph:         name,
			TriangleRatio: in.Triangles / float64(truth.Triangles),
			WedgeRatio:    in.Wedges / float64(truth.Wedges),
		})
	}
	return points, nil
}

// Fig2Point is one sample size of a Figure 2 convergence series: the
// estimate and its 95% bounds, all normalized by the actual triangle count.
type Fig2Point struct {
	SampleSize int
	Ratio      float64 // X̂/X
	LBRatio    float64 // LB/X
	UBRatio    float64 // UB/X
}

// Fig2Series is one graph's convergence panel.
type Fig2Series struct {
	Graph  string
	Points []Fig2Point
}

// Figure2 regenerates the paper's Figure 2: triangle-count confidence bounds
// under in-stream estimation as the sample size sweeps. The paper sweeps
// 10K-1M absolute edges; the stand-ins sweep the given sizes (clamped per
// graph).
func Figure2(opts Options, sampleSizes []int, graphs []string) ([]Fig2Series, error) {
	opts = opts.withDefaults()
	if len(graphs) == 0 {
		graphs = datasets.Figure2()
	}
	if len(sampleSizes) == 0 {
		sampleSizes = []int{2500, 5000, 10000, 20000, 40000, 80000}
	}
	var series []Fig2Series
	for gi, name := range graphs {
		d, err := datasets.Get(name)
		if err != nil {
			return nil, err
		}
		truth, err := datasets.Truth(name, opts.Profile)
		if err != nil {
			return nil, err
		}
		edges := d.Edges(opts.Profile)
		s := Fig2Series{Graph: name}
		for si, size := range sampleSizes {
			m := clampSample(size, len(edges))
			runs := make([]core.Estimates, 0, opts.Trials)
			for trial := 0; trial < opts.Trials; trial++ {
				ss, ps := opts.trialSeed(gi*100+si, trial)
				runs = append(runs, runGPS(edges, m, ss, ps).in)
			}
			in := meanEstimates(runs)
			iv := in.TriangleInterval()
			actual := float64(truth.Triangles)
			s.Points = append(s.Points, Fig2Point{
				SampleSize: m,
				Ratio:      in.Triangles / actual,
				LBRatio:    iv.Lower / actual,
				UBRatio:    iv.Upper / actual,
			})
		}
		series = append(series, s)
	}
	return series, nil
}

// Fig3Point is one checkpoint of a Figure 3 tracking series.
type Fig3Point struct {
	T int // stream position (edges seen)

	ActualTriangles float64
	EstTriangles    float64
	LBTriangles     float64
	UBTriangles     float64

	ActualClustering float64
	EstClustering    float64
	LBClustering     float64
	UBClustering     float64
}

// Fig3Series is one graph's real-time tracking run.
type Fig3Series struct {
	Graph  string
	Points []Fig3Point
}

// Figure3 regenerates the paper's Figure 3: unbiased estimation versus time.
// One GPS pass tracks the evolving stream; at each of `checkpoints` evenly
// spaced stream positions the in-stream estimates (with 95% bounds) are
// recorded against the exact counts of the prefix, maintained incrementally.
func Figure3(opts Options, sampleSize, checkpoints int, graphs []string) ([]Fig3Series, error) {
	opts = opts.withDefaults()
	if len(graphs) == 0 {
		graphs = datasets.Figure3()
	}
	if checkpoints < 2 {
		checkpoints = 2
	}
	var series []Fig3Series
	for gi, name := range graphs {
		d, err := datasets.Get(name)
		if err != nil {
			return nil, err
		}
		edges := d.Edges(opts.Profile)
		m := clampSample(sampleSize, len(edges))
		ss, ps := opts.trialSeed(gi, 0)

		in, err := core.NewInStream(core.Config{Capacity: m, Weight: core.TriangleWeight, Seed: ss})
		if err != nil {
			return nil, err
		}
		counter := exact.NewStreamingCounter()
		every := len(edges) / checkpoints
		if every < 1 {
			every = 1
		}
		s := Fig3Series{Graph: name}
		t := 0
		stream.Drive(stream.Permute(edges, ps), func(e graph.Edge) {
			in.Process(e)
			counter.Add(e)
			t++
			if t%every == 0 || t == len(edges) {
				est := in.Estimates()
				triIv := est.TriangleInterval()
				ccIv := est.ClusteringInterval()
				s.Points = append(s.Points, Fig3Point{
					T:                t,
					ActualTriangles:  float64(counter.Triangles()),
					EstTriangles:     est.Triangles,
					LBTriangles:      triIv.Lower,
					UBTriangles:      triIv.Upper,
					ActualClustering: counter.GlobalClustering(),
					EstClustering:    est.GlobalClustering(),
					LBClustering:     ccIv.Lower,
					UBClustering:     ccIv.Upper,
				})
			}
		})
		series = append(series, s)
	}
	return series, nil
}

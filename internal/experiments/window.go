package experiments

import (
	"fmt"
	"text/tabwriter"

	"gps/internal/core"
	"gps/internal/engine"
	"gps/internal/exact"
	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/randx"
	"gps/internal/stats"
)

// WindowRow is one (window, sample size, motif) cell of the turnstile
// sliding-window accuracy experiment: the exact count over the surviving
// in-window subgraph (trial 0's stream; every trial is normalized by its
// own exact counts), the mean windowed GPS estimate rescaled to that truth,
// and the NRMSE of the per-trial estimate/exact ratios against 1.
type WindowRow struct {
	WindowFrac float64 `json:"window_frac"` // window width as a fraction of the stream span
	M          int     `json:"m"`
	Motif      string  `json:"motif"`
	Exact      float64 `json:"exact_windowed"`
	Mean       float64 `json:"mean_estimate"`
	NRMSE      float64 `json:"nrmse"`
}

// WindowConfig parameterizes the sliding-window experiment.
type WindowConfig struct {
	// Nodes/K/Triad shape the Holme-Kim stream (clustered, so triangle
	// weights have structure to chase). Zero values take the defaults.
	Nodes, K int
	Triad    float64
	// WindowFracs are the window widths swept, as fractions of the stream's
	// event span; each pane is a quarter of its window. Default {0.25, 0.5}.
	WindowFracs []float64
	// SampleSizes are the pane reservoir capacities swept. Default {4K, 20K}.
	SampleSizes []int
	// Shards is the live pane's parallel shard count. Default 2.
	Shards int
	// DeleteEvery/DeleteLag shape the turnstile churn: every DeleteEvery-th
	// insert also deletes the edge inserted DeleteLag positions earlier.
	// Defaults 7 and span/5.
	DeleteEvery, DeleteLag int
}

func (c WindowConfig) withDefaults() WindowConfig {
	if c.Nodes == 0 {
		c.Nodes = 20000
	}
	if c.K == 0 {
		c.K = 8
	}
	if c.Triad == 0 {
		c.Triad = 0.3
	}
	if len(c.WindowFracs) == 0 {
		c.WindowFracs = []float64{0.25, 0.5}
	}
	if len(c.SampleSizes) == 0 {
		c.SampleSizes = []int{4000, 20000}
	}
	if c.Shards == 0 {
		c.Shards = 2
	}
	if c.DeleteEvery == 0 {
		c.DeleteEvery = 7
	}
	return c
}

// turnstileWindow turns a deduplicated base edge list into a timed
// turnstile stream: the i-th edge is inserted at event time i+1, and every
// every-th insert also deletes the edge inserted lag positions earlier (at
// the current event time, each edge at most once). It returns the records
// and the surviving timed edges — the ground-truth graph the window
// estimators are judged against.
func turnstileWindow(base []graph.Edge, every, lag int) (records, survivors []graph.Edge) {
	deleted := map[uint64]bool{}
	for i, e := range base {
		ts := uint64(i + 1)
		records = append(records, e.At(ts))
		if i%every == every/2 && i >= lag {
			victim := base[i-lag]
			if !deleted[victim.Key()] {
				deleted[victim.Key()] = true
				records = append(records, victim.At(ts).AsDeletion())
			}
		}
	}
	for i, e := range base {
		if !deleted[e.Key()] {
			survivors = append(survivors, e.At(uint64(i+1)))
		}
	}
	return records, survivors
}

// WindowAccuracy measures the NRMSE of the windowed triangle/wedge/edge
// estimators against exact counts of the surviving in-window subgraph on a
// turnstile Holme-Kim stream (event time = stream position, inserts
// interleaved with lagged deletions). It is the turnstile counterpart of
// DecayAccuracy, and the source of the committed bounds in the tier-1
// windowed-accuracy regression test.
func WindowAccuracy(opts Options, cfg WindowConfig) ([]WindowRow, error) {
	opts = opts.withDefaults()
	cfg = cfg.withDefaults()
	raw := gen.HolmeKim(cfg.Nodes, cfg.K, cfg.Triad, 0x717D0+opts.Seed%1000)
	// Dedupe: a repeated edge inserted into two different panes would be
	// double-counted by the pane merge, so the stream must be simple.
	seen := map[uint64]bool{}
	var base []graph.Edge
	for _, e := range raw {
		if !seen[e.Key()] {
			seen[e.Key()] = true
			base = append(base, e)
		}
	}
	span := uint64(len(base))
	lag := cfg.DeleteLag
	if lag == 0 {
		lag = len(base) / 5
	}

	var rows []WindowRow
	for _, frac := range cfg.WindowFracs {
		win := uint64(frac * float64(span))
		if win < 4 {
			return nil, fmt.Errorf("window: fraction %v yields a degenerate window %d", frac, win)
		}
		for _, m := range cfg.SampleSizes {
			m := clampSample(m, len(base))
			// Each trial permutes (and therefore re-timestamps) the
			// turnstile stream, so the exact in-window counts differ per
			// trial: collect estimate/exact ratios and measure NRMSE against
			// 1, so the metric is pure estimator error, not truth drift.
			ratios := map[string][]float64{}
			exact0 := map[string]float64{}
			for trial := 0; trial < opts.Trials; trial++ {
				ss, ps := opts.trialSeed(0, trial)
				perm := append([]graph.Edge(nil), base...)
				randx.New(ps+uint64(m)).Shuffle(len(perm), func(i, j int) {
					perm[i], perm[j] = perm[j], perm[i]
				})
				records, survivors := turnstileWindow(perm, cfg.DeleteEvery, lag)
				edgeCount, tri, wedge := exact.Windowed(survivors, win, span)
				if edgeCount <= 0 || tri <= 0 || wedge <= 0 {
					return nil, fmt.Errorf("window: degenerate exact counts (%d, %d, %d) for window %d", edgeCount, tri, wedge, win)
				}
				if trial == 0 {
					exact0["triangles"] = float64(tri)
					exact0["wedges"] = float64(wedge)
					exact0["edges"] = float64(edgeCount)
				}

				w, err := engine.NewWindowed(engine.WindowConfig{
					Capacity:  m,
					Weight:    core.TriangleWeight,
					Seed:      ss + uint64(m),
					Shards:    cfg.Shards,
					PaneWidth: max(win/4, 1),
					Window:    win,
				})
				if err != nil {
					return nil, err
				}
				if err := w.ProcessBatch(records); err != nil {
					w.Close()
					return nil, err
				}
				est, err := w.Query(win)
				w.Close()
				if err != nil {
					return nil, err
				}
				ratios["triangles"] = append(ratios["triangles"], est.Triangles/float64(tri))
				ratios["wedges"] = append(ratios["wedges"], est.Wedges/float64(wedge))
				ratios["edges"] = append(ratios["edges"], est.Edges/float64(edgeCount))
			}
			for _, motif := range []string{"edges", "triangles", "wedges"} {
				vals := ratios[motif]
				mean := 0.0
				for _, v := range vals {
					mean += v
				}
				mean /= float64(len(vals))
				rows = append(rows, WindowRow{
					WindowFrac: frac, M: m, Motif: motif,
					Exact: exact0[motif],
					Mean:  mean * exact0[motif], // mean ratio rescaled to trial-0 truth for display
					NRMSE: stats.NRMSE(vals, 1),
				})
			}
		}
	}
	return rows, nil
}

// RenderWindow formats window rows as a text table.
func RenderWindow(rows []WindowRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "window\tm\tmotif\texact windowed\tmean estimate\tNRMSE")
		for _, r := range rows {
			fmt.Fprintf(w, "%.2f·span\t%d\t%s\t%s\t%s\t%.4f\n",
				r.WindowFrac, r.M, r.Motif, human(r.Exact), human(r.Mean), r.NRMSE)
		}
	})
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) against the synthetic stand-in datasets:
//
//	Table 1  — Table1:       GPS in-stream vs post-stream accuracy and 95%
//	                         bounds for triangles, wedges, clustering.
//	Table 2  — Table2:       accuracy and update time vs NSAMP, TRIEST,
//	                         MASCOT at an equal edge budget.
//	Table 3  — Table3:       MARE/max-ARE of triangle tracking over time vs
//	                         TRIEST and TRIEST-IMPR.
//	Figure 1 — Figure1:      x̂/x scatter for triangles and wedges.
//	Figure 2 — Figure2:      convergence of x̂/x with confidence bounds as
//	                         the sample size sweeps.
//	Figure 3 — Figure3:      real-time tracking of triangle counts and
//	                         clustering with confidence bands.
//	§3.5     — WeightAblation: estimation variance under different weight
//	                         functions.
//
// Each runner returns plain row structs; Render* helpers format them as
// text tables. Runs are deterministic functions of Options.Seed.
package experiments

import (
	"time"

	"gps/internal/core"
	"gps/internal/datasets"
	"gps/internal/graph"
	"gps/internal/stream"
)

// Options configures an experiment run.
type Options struct {
	// Profile selects dataset scale (datasets.Small by default).
	Profile datasets.Profile
	// Trials is the number of independent replications averaged per cell
	// (the paper performs ten experiments per configuration; the default
	// here is 3 to keep benchmark regeneration fast).
	Trials int
	// Seed derives all per-trial stream permutations and sampler seeds.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Trials <= 0 {
		o.Trials = 3
	}
	if o.Seed == 0 {
		o.Seed = 0x69505321 // arbitrary fixed default
	}
	return o
}

// trialSeed derives the sampler and permutation seeds of one replication.
func (o Options) trialSeed(graphIdx, trial int) (sampler, perm uint64) {
	base := o.Seed + uint64(graphIdx)*1000003 + uint64(trial)*7919
	return base, base ^ 0x5DEECE66D
}

// gpsRun is one shared-sample GPS pass: in-stream estimates accumulated
// during sampling plus post-stream estimates over the final reservoir.
type gpsRun struct {
	in   core.Estimates
	post core.Estimates
}

// runGPS performs one full pass over a permuted stream with the paper's
// triangle weight, returning both estimation framework's outputs.
func runGPS(edges []graph.Edge, m int, samplerSeed, permSeed uint64) gpsRun {
	in, err := core.NewInStream(core.Config{
		Capacity: m,
		Weight:   core.TriangleWeight,
		Seed:     samplerSeed,
	})
	if err != nil {
		panic(err) // capacities are validated by the runners
	}
	stream.Drive(stream.Permute(edges, permSeed), func(e graph.Edge) { in.Process(e) })
	return gpsRun{in: in.Estimates(), post: core.EstimatePost(in.Sampler())}
}

// meanEstimates averages count and variance estimates across replications.
// The paper's ARE compares the *expected* estimate against the actual value;
// averaging the unbiased variance estimates keeps the derived intervals
// unbiased too.
func meanEstimates(runs []core.Estimates) core.Estimates {
	if len(runs) == 0 {
		return core.Estimates{}
	}
	var out core.Estimates
	for _, r := range runs {
		out.Triangles += r.Triangles
		out.Wedges += r.Wedges
		out.VarTriangles += r.VarTriangles
		out.VarWedges += r.VarWedges
		out.CovTriangleWedge += r.CovTriangleWedge
		out.SampledEdges += r.SampledEdges
	}
	n := float64(len(runs))
	out.Triangles /= n
	out.Wedges /= n
	out.VarTriangles /= n
	out.VarWedges /= n
	out.CovTriangleWedge /= n
	out.SampledEdges /= len(runs)
	out.Arrivals = runs[0].Arrivals
	return out
}

// clampSample bounds a sample size to the stream length (oversized samples
// are legal — they just make GPS exact — but keeping |K̂| ≤ |K| keeps the
// reported fractions meaningful).
func clampSample(m int, edges int) int {
	if m > edges {
		return edges
	}
	return m
}

// timeProcess measures the mean per-edge wall time of fn over the stream.
func timeProcess(edges []graph.Edge, permSeed uint64, fn func(graph.Edge)) time.Duration {
	s := stream.Permute(edges, permSeed)
	start := time.Now()
	stream.Drive(s, fn)
	elapsed := time.Since(start)
	return elapsed / time.Duration(len(edges))
}

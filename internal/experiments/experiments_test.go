package experiments

import (
	"strings"
	"testing"
)

// The smoke tests run single small configurations end to end; accuracy
// assertions are deliberately loose (the tight statistical validation lives
// in internal/core's Monte-Carlo tests).

func TestTable1Smoke(t *testing.T) {
	rows, err := Table1(Options{Trials: 2, Seed: 7}, 10000, []string{"socfb-Penn94"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 (one per statistic)", len(rows))
	}
	for _, r := range rows {
		if r.Graph != "socfb-Penn94" {
			t.Fatalf("unexpected graph %q", r.Graph)
		}
		if r.Fraction <= 0 || r.Fraction > 1 {
			t.Fatalf("%s: fraction %v", r.Stat, r.Fraction)
		}
		if r.Actual <= 0 {
			t.Fatalf("%s: actual %v", r.Stat, r.Actual)
		}
		for _, m := range []MethodResult{r.InStream, r.Post} {
			if m.ARE > 0.25 {
				t.Errorf("%s: ARE %v suspiciously high", r.Stat, m.ARE)
			}
			if m.LB > m.Estimate || m.Estimate > m.UB {
				t.Errorf("%s: interval [%v,%v] does not bracket %v", r.Stat, m.LB, m.UB, m.Estimate)
			}
		}
	}
	text := RenderTable1(rows)
	if !strings.Contains(text, "socfb-Penn94") || !strings.Contains(text, "triangles") {
		t.Fatalf("render missing content:\n%s", text)
	}
}

func TestTable1UnknownGraph(t *testing.T) {
	if _, err := Table1(Options{}, 1000, []string{"nope"}); err == nil {
		t.Fatal("unknown dataset did not error")
	}
}

func TestFigure1Smoke(t *testing.T) {
	pts, err := Figure1(Options{Trials: 2, Seed: 9}, 10000, []string{"soc-youtube-snap"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("got %d points", len(pts))
	}
	p := pts[0]
	if p.TriangleRatio < 0.7 || p.TriangleRatio > 1.3 {
		t.Errorf("triangle ratio %v far from 1", p.TriangleRatio)
	}
	if p.WedgeRatio < 0.7 || p.WedgeRatio > 1.3 {
		t.Errorf("wedge ratio %v far from 1", p.WedgeRatio)
	}
	if !strings.Contains(RenderFigure1(pts), "soc-youtube-snap") {
		t.Fatal("render missing graph name")
	}
}

func TestFigure2Smoke(t *testing.T) {
	series, err := Figure2(Options{Trials: 2, Seed: 11}, []int{2000, 8000}, []string{"soc-youtube-snap"})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || len(series[0].Points) != 2 {
		t.Fatalf("series shape wrong: %+v", series)
	}
	for _, p := range series[0].Points {
		if p.LBRatio > p.Ratio || p.Ratio > p.UBRatio {
			t.Errorf("size %d: bounds [%v,%v] do not bracket %v",
				p.SampleSize, p.LBRatio, p.UBRatio, p.Ratio)
		}
	}
	// Larger samples must not widen the confidence band.
	w0 := series[0].Points[0].UBRatio - series[0].Points[0].LBRatio
	w1 := series[0].Points[1].UBRatio - series[0].Points[1].LBRatio
	if w1 > w0 {
		t.Errorf("CI width grew with sample size: %v -> %v", w0, w1)
	}
	if !strings.Contains(RenderFigure2(series), "soc-youtube-snap") {
		t.Fatal("render missing graph name")
	}
}

func TestTable2Smoke(t *testing.T) {
	graphs := []string{"higgs-social-network", "cit-Patents", "infra-roadNet-CA"}
	rows, err := Table2(Options{Trials: 3, Seed: 13}, 4000, graphs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table2Methods())*len(graphs) {
		t.Fatalf("got %d rows, want %d", len(rows), len(Table2Methods())*len(graphs))
	}
	meanARE := map[string]float64{}
	for _, r := range rows {
		meanARE[r.Method] += r.ARE / float64(len(graphs))
		if r.MicrosPerEdge <= 0 {
			t.Errorf("%s/%s: time %v", r.Graph, r.Method, r.MicrosPerEdge)
		}
		if r.StoredEdges <= 0 {
			t.Errorf("%s/%s: stored %d", r.Graph, r.Method, r.StoredEdges)
		}
	}
	// The paper's shape: GPS post-stream estimation is the most accurate
	// method overall. Individual (graph, seed) cells can fluctuate at
	// this reduced scale, so the assertion is on the cross-graph mean.
	// (MASCOT's gap narrows at our larger sampling fractions — at the
	// paper's 0.6% fractions its p² rescaling is far more punishing —
	// so the decisive comparisons are against NSAMP and TRIEST.)
	gps := meanARE["GPS POST"]
	if gps > 0.15 {
		t.Errorf("GPS POST mean ARE %v too high", gps)
	}
	for _, m := range []string{"NSAMP", "TRIEST"} {
		if gps >= meanARE[m] {
			t.Errorf("GPS POST mean ARE %v not below %s mean ARE %v", gps, m, meanARE[m])
		}
	}
	if !strings.Contains(RenderTable2(rows), "µs/edge") {
		t.Fatal("render missing time block")
	}
}

func TestTable3Smoke(t *testing.T) {
	rows, err := Table3(Options{Trials: 1, Seed: 17}, 4000, 6, []string{"soc-youtube-snap"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table3Methods()) {
		t.Fatalf("got %d rows, want %d", len(rows), len(Table3Methods()))
	}
	byMethod := map[string]Table3Row{}
	for _, r := range rows {
		byMethod[r.Method] = r
		if r.MARE < 0 || r.MaxARE < r.MARE {
			t.Errorf("%s: MARE %v MaxARE %v inconsistent", r.Method, r.MARE, r.MaxARE)
		}
	}
	// The paper's ordering: GPS in-stream beats TRIEST-base decisively.
	if byMethod["GPS IN-STREAM"].MARE >= byMethod["TRIEST"].MARE {
		t.Errorf("GPS IN-STREAM MARE %v not below TRIEST %v",
			byMethod["GPS IN-STREAM"].MARE, byMethod["TRIEST"].MARE)
	}
	if !strings.Contains(RenderTable3(rows), "GPS IN-STREAM") {
		t.Fatal("render missing method")
	}
}

func TestFigure3Smoke(t *testing.T) {
	series, err := Figure3(Options{Trials: 1, Seed: 19}, 4000, 5, []string{"tech-as-skitter"})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || len(series[0].Points) < 5 {
		t.Fatalf("series shape wrong: %d series", len(series))
	}
	prevT := 0
	for _, p := range series[0].Points {
		if p.T <= prevT {
			t.Errorf("checkpoints not increasing: %d after %d", p.T, prevT)
		}
		prevT = p.T
		if p.LBTriangles > p.EstTriangles || p.EstTriangles > p.UBTriangles {
			t.Errorf("t=%d: triangle bounds broken", p.T)
		}
	}
	last := series[0].Points[len(series[0].Points)-1]
	if last.ActualTriangles <= 0 {
		t.Fatal("no triangles by stream end")
	}
	if rel := abs(last.EstTriangles-last.ActualTriangles) / last.ActualTriangles; rel > 0.25 {
		t.Errorf("final tracking error %v too high", rel)
	}
	if !strings.Contains(RenderFigure3(series), "tech-as-skitter") {
		t.Fatal("render missing graph name")
	}
}

func TestWeightAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation replication loop skipped in -short mode")
	}
	// The clustered Facebook stand-in shows the §3.5 effect robustly;
	// on extreme-skew R-MAT graphs the triangle/uniform ordering can
	// invert at laptop-scale sampling fractions (see EXPERIMENTS.md).
	rows, err := WeightAblation(Options{Trials: 12, Seed: 21}, 5000, "socfb-Penn94")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	var uniform, paper AblationRow
	for _, r := range rows {
		if r.Weight == "uniform" {
			uniform = r
		}
		if strings.Contains(r.Weight, "paper") {
			paper = r
		}
	}
	if paper.VarPost >= uniform.VarPost {
		t.Errorf("paper weight post variance %v not below uniform %v",
			paper.VarPost, uniform.VarPost)
	}
	if !strings.Contains(RenderAblation(rows), "uniform") {
		t.Fatal("render missing weight name")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Trials <= 0 || o.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
	s1a, p1a := o.trialSeed(1, 2)
	s1b, p1b := o.trialSeed(1, 2)
	if s1a != s1b || p1a != p1b {
		t.Fatal("trialSeed not deterministic")
	}
	s2, _ := o.trialSeed(2, 2)
	if s1a == s2 {
		t.Fatal("trialSeed does not separate graphs")
	}
}

func TestClampSample(t *testing.T) {
	if clampSample(100, 50) != 50 || clampSample(10, 50) != 10 {
		t.Fatal("clampSample wrong")
	}
}

func TestHuman(t *testing.T) {
	cases := map[float64]string{
		4.93e9:  "4.9B",
		667100:  "667.1K",
		1.82e12: "1.8T",
		13.4e6:  "13.4M",
		42:      "42.0",
		0.205:   "0.2050",
	}
	for v, want := range cases {
		if got := human(v); got != want {
			t.Errorf("human(%v) = %q, want %q", v, got, want)
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

package experiments

import (
	"gps/internal/baselines"
	"gps/internal/core"
	"gps/internal/datasets"
	"gps/internal/exact"
	"gps/internal/graph"
	"gps/internal/stats"
)

// Table3Row is one (graph, method) row of the paper's Table 3: the mean and
// maximum absolute relative error of the triangle-count estimate tracked
// across checkpoints of the evolving stream.
type Table3Row struct {
	Graph  string
	Method string
	MaxARE float64
	MARE   float64
}

// Table3Methods lists the methods compared, in the paper's row order.
func Table3Methods() []string {
	return []string{"TRIEST", "TRIEST-IMPR", "GPS POST", "GPS IN-STREAM"}
}

// Table3 regenerates the paper's tracking comparison: triangle estimates
// versus time for TRIEST, TRIEST-IMPR, GPS post-stream and GPS in-stream
// estimation, all with sampleSize stored edges. Estimates are read at
// `checkpoints` evenly spaced stream positions and compared against exact
// prefix counts; per-trial MARE and max-ARE are averaged over
// Options.Trials. Checkpoints before the first triangle arrives are skipped
// (relative error is undefined at zero).
//
// TRIEST and TRIEST-IMPR share seeds (hence samples), as do GPS post and
// in-stream — matching the paper's pairing of estimation procedures over
// identical samples.
func Table3(opts Options, sampleSize, checkpoints int, graphs []string) ([]Table3Row, error) {
	opts = opts.withDefaults()
	if len(graphs) == 0 {
		graphs = datasets.Table3()
	}
	if checkpoints < 2 {
		checkpoints = 2
	}
	type agg struct{ mare, maxARE stats.Welford }
	var rows []Table3Row
	for gi, name := range graphs {
		d, err := datasets.Get(name)
		if err != nil {
			return nil, err
		}
		edges := d.Edges(opts.Profile)
		m := clampSample(sampleSize, len(edges))
		every := len(edges) / checkpoints
		if every < 1 {
			every = 1
		}

		aggs := make(map[string]*agg)
		for _, method := range Table3Methods() {
			aggs[method] = &agg{}
		}

		for trial := 0; trial < opts.Trials; trial++ {
			ss, ps := opts.trialSeed(gi, trial)

			triest, _ := baselines.NewTriest(m, ss)
			triestImpr, _ := baselines.NewTriestImpr(m, ss)
			in, err := core.NewInStream(core.Config{Capacity: m, Weight: core.TriangleWeight, Seed: ss})
			if err != nil {
				return nil, err
			}
			counter := exact.NewStreamingCounter()

			series := map[string]*[]float64{}
			actuals := []float64{}
			for _, method := range Table3Methods() {
				s := []float64{}
				series[method] = &s
			}

			t := 0
			stream := permuted(edges, ps)
			for _, e := range stream {
				triest.Process(e)
				triestImpr.Process(e)
				in.Process(e)
				counter.Add(e)
				t++
				if t%every == 0 || t == len(edges) {
					actual := float64(counter.Triangles())
					if actual == 0 {
						continue
					}
					actuals = append(actuals, actual)
					*series["TRIEST"] = append(*series["TRIEST"], triest.Triangles())
					*series["TRIEST-IMPR"] = append(*series["TRIEST-IMPR"], triestImpr.Triangles())
					*series["GPS IN-STREAM"] = append(*series["GPS IN-STREAM"], in.Estimates().Triangles)
					*series["GPS POST"] = append(*series["GPS POST"], core.EstimatePost(in.Sampler()).Triangles)
				}
			}
			for _, method := range Table3Methods() {
				est := *series[method]
				aggs[method].mare.Add(stats.MARE(est, actuals))
				aggs[method].maxARE.Add(stats.MaxARE(est, actuals))
			}
		}
		for _, method := range Table3Methods() {
			rows = append(rows, Table3Row{
				Graph:  name,
				Method: method,
				MaxARE: aggs[method].maxARE.Mean(),
				MARE:   aggs[method].mare.Mean(),
			})
		}
	}
	return rows, nil
}

// permuted returns the seeded permutation of edges as a slice (Table 3 needs
// indexed access to feed four estimators in lockstep).
func permuted(edges []graph.Edge, seed uint64) []graph.Edge {
	return streamCollect(edges, seed)
}

package experiments

import (
	"fmt"
	"math"
	"text/tabwriter"

	"gps/internal/core"
	"gps/internal/engine"
	"gps/internal/exact"
	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/randx"
	"gps/internal/stats"
)

// DecayRow is one (half-life, sample size, motif) cell of the temporal
// (forward-decay) accuracy experiment: the exact decayed count at the
// stream's horizon (trial 0's stream; every trial is normalized by its own
// exact counts), the mean decayed GPS estimate rescaled to that truth, the
// NRMSE of the per-trial estimate/exact ratios against 1 (pure estimator
// error — truth varies per permutation), and — for context — the exact
// count inside a sharp sliding window of one half-life, which the decayed
// count brackets smoothly.
type DecayRow struct {
	HalfLifeFrac float64 `json:"half_life_frac"` // half-life as a fraction of the stream span
	M            int     `json:"m"`
	Motif        string  `json:"motif"`
	Exact        float64 `json:"exact_decayed"`
	Window       float64 `json:"window_exact"`
	Mean         float64 `json:"mean_estimate"`
	NRMSE        float64 `json:"nrmse"`
}

// DecayConfig parameterizes the decay experiment.
type DecayConfig struct {
	// Nodes/K/Triad shape the Holme-Kim stream (clustered, so triangle
	// weights have structure to chase). Zero values take the defaults.
	Nodes, K int
	Triad    float64
	// HalfLifeFracs are the half-lives swept, as fractions of the stream's
	// event span. Default {0.05, 0.25}.
	HalfLifeFracs []float64
	// SampleSizes are the reservoir capacities swept. Default {4K, 20K}.
	SampleSizes []int
	// Shards > 1 additionally routes every trial through an
	// engine.Parallel with that many shards and asserts the merged decayed
	// estimates against the same ground truth (landmark agreement across
	// shards is what makes this legal).
	Shards int
}

func (c DecayConfig) withDefaults() DecayConfig {
	if c.Nodes == 0 {
		c.Nodes = 20000
	}
	if c.K == 0 {
		c.K = 8
	}
	if c.Triad == 0 {
		c.Triad = 0.3
	}
	if len(c.HalfLifeFracs) == 0 {
		c.HalfLifeFracs = []float64{0.05, 0.25}
	}
	if len(c.SampleSizes) == 0 {
		c.SampleSizes = []int{4000, 20000}
	}
	return c
}

// DecayAccuracy measures the NRMSE of the forward-decayed triangle/wedge
// estimators against exact decayed counts on a timestamped Holme-Kim
// stream (event time = stream position, so a half-life of f·|stream| keeps
// roughly the last f of the stream "warm"). It is the temporal counterpart
// of Accuracy, and the source of the committed bounds in the tier-1
// decayed-accuracy regression test.
func DecayAccuracy(opts Options, cfg DecayConfig) ([]DecayRow, error) {
	opts = opts.withDefaults()
	cfg = cfg.withDefaults()
	base := gen.HolmeKim(cfg.Nodes, cfg.K, cfg.Triad, 0xDECA+opts.Seed%1000)
	span := uint64(len(base))

	var rows []DecayRow
	for _, frac := range cfg.HalfLifeFracs {
		halfLife := frac * float64(span)
		lambda := math.Ln2 / halfLife
		for _, m := range cfg.SampleSizes {
			m := clampSample(m, len(base))
			// Each trial permutes (and therefore re-timestamps) the stream,
			// so the exact decayed triangle/wedge counts differ per trial:
			// collect estimate/exact ratios and measure NRMSE against 1, so
			// the metric is pure estimator error, not truth drift.
			ratios := map[string][]float64{}
			var truth0 exact.DecayedCounts
			var windowTri float64
			for trial := 0; trial < opts.Trials; trial++ {
				ss, ps := opts.trialSeed(0, trial)
				// Timestamp along the trial's arrival order: each
				// permutation is its own activity stream.
				perm := append([]graph.Edge(nil), base...)
				randx.New(ps+uint64(m)).Shuffle(len(perm), func(i, j int) {
					perm[i], perm[j] = perm[j], perm[i]
				})
				for i := range perm {
					perm[i].TS = uint64(i + 1)
				}
				truth := exact.Decayed(perm, lambda, span)
				if truth.Triangles <= 0 || truth.Wedges <= 0 || truth.Edges <= 0 {
					return nil, fmt.Errorf("decay: degenerate exact decayed counts %+v (half-life %.0f)", truth, halfLife)
				}
				if trial == 0 {
					truth0 = truth
					_, wTri, _ := exact.Windowed(perm, uint64(halfLife), span)
					windowTri = float64(wTri)
				}

				s, err := core.NewSampler(core.Config{
					Capacity: m,
					Weight:   core.TriangleWeight,
					Seed:     ss + uint64(m),
					Decay:    core.Decay{HalfLife: halfLife},
				})
				if err != nil {
					return nil, err
				}
				s.ProcessBatch(perm)
				est := core.EstimatePost(s)
				ratios["triangles"] = append(ratios["triangles"], est.Triangles/truth.Triangles)
				ratios["wedges"] = append(ratios["wedges"], est.Wedges/truth.Wedges)
				ratios["edges"] = append(ratios["edges"], est.DecayedEdges/truth.Edges)

				if cfg.Shards > 1 {
					p, err := engine.NewParallel(core.Config{
						Capacity: m,
						Weight:   core.TriangleWeight,
						Seed:     ss + uint64(m),
						Decay:    core.Decay{HalfLife: halfLife},
					}, cfg.Shards)
					if err != nil {
						return nil, err
					}
					p.ProcessBatch(perm)
					merged, err := p.Merge()
					p.Close()
					if err != nil {
						return nil, err
					}
					mEst := core.EstimatePost(merged)
					ratios["triangles/sharded"] = append(ratios["triangles/sharded"], mEst.Triangles/truth.Triangles)
				}
			}
			exactOf := map[string]float64{
				"triangles": truth0.Triangles, "triangles/sharded": truth0.Triangles,
				"wedges": truth0.Wedges, "edges": truth0.Edges,
			}
			windowOf := map[string]float64{"triangles": windowTri, "triangles/sharded": windowTri}
			for _, motif := range []string{"edges", "triangles", "triangles/sharded", "wedges"} {
				vals := ratios[motif]
				if len(vals) == 0 {
					continue
				}
				mean := 0.0
				for _, v := range vals {
					mean += v
				}
				mean /= float64(len(vals))
				rows = append(rows, DecayRow{
					HalfLifeFrac: frac, M: m, Motif: motif,
					Exact: exactOf[motif], Window: windowOf[motif],
					Mean:  mean * exactOf[motif], // mean ratio rescaled to trial-0 truth for display
					NRMSE: stats.NRMSE(vals, 1),
				})
			}
		}
	}
	return rows, nil
}

// RenderDecay formats decay rows as a text table.
func RenderDecay(rows []DecayRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "half-life\tm\tmotif\texact decayed\twindow exact\tmean estimate\tNRMSE")
		for _, r := range rows {
			win := "-"
			if r.Window > 0 {
				win = human(r.Window)
			}
			fmt.Fprintf(w, "%.2f·span\t%d\t%s\t%s\t%s\t%s\t%.4f\n",
				r.HalfLifeFrac, r.M, r.Motif, human(r.Exact), win, human(r.Mean), r.NRMSE)
		}
	})
}

package experiments

import (
	"strings"
	"testing"
)

func TestPlotFigure2Panel(t *testing.T) {
	s := Fig2Series{
		Graph: "toy",
		Points: []Fig2Point{
			{SampleSize: 1000, Ratio: 1.2, LBRatio: 0.6, UBRatio: 1.8},
			{SampleSize: 2000, Ratio: 0.95, LBRatio: 0.8, UBRatio: 1.1},
			{SampleSize: 4000, Ratio: 1.0, LBRatio: 0.97, UBRatio: 1.03},
		},
	}
	out := PlotFigure2Panel(s, 40, 10)
	if !strings.Contains(out, "toy") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "-") {
		t.Fatalf("missing markers:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 11 { // 1 title + 10 rows
		t.Fatalf("got %d lines", len(lines))
	}
	for _, line := range lines[1:] {
		if len(line) != 40 {
			t.Fatalf("row width %d, want 40", len(line))
		}
	}
}

func TestPlotFigure2Empty(t *testing.T) {
	out := PlotFigure2Panel(Fig2Series{Graph: "empty"}, 40, 10)
	if !strings.Contains(out, "no points") {
		t.Fatalf("unexpected: %q", out)
	}
}

func TestPlotFigure3Panel(t *testing.T) {
	s := Fig3Series{
		Graph: "toy",
		Points: []Fig3Point{
			{T: 100, ActualTriangles: 10, EstTriangles: 11, LBTriangles: 8, UBTriangles: 14},
			{T: 200, ActualTriangles: 40, EstTriangles: 38, LBTriangles: 33, UBTriangles: 43},
			{T: 300, ActualTriangles: 90, EstTriangles: 92, LBTriangles: 85, UBTriangles: 99},
		},
	}
	out := PlotFigure3Panel(s, 50, 12)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("missing markers:\n%s", out)
	}
}

func TestPlotFigure3NoTriangles(t *testing.T) {
	s := Fig3Series{Graph: "flat", Points: []Fig3Point{{T: 1}}}
	if out := PlotFigure3Panel(s, 30, 8); !strings.Contains(out, "no triangles") {
		t.Fatalf("unexpected: %q", out)
	}
}

func TestPlotAllPanels(t *testing.T) {
	series2 := []Fig2Series{{Graph: "a", Points: []Fig2Point{{SampleSize: 1, Ratio: 1, LBRatio: 0.9, UBRatio: 1.1}}}}
	if out := PlotFigure2(series2); !strings.Contains(out, "a ") {
		t.Fatal("PlotFigure2 missing panel")
	}
	series3 := []Fig3Series{{Graph: "b", Points: []Fig3Point{{T: 1, ActualTriangles: 5, EstTriangles: 5}}}}
	if out := PlotFigure3(series3); !strings.Contains(out, "b ") {
		t.Fatal("PlotFigure3 missing panel")
	}
}

package experiments

import (
	"fmt"
	"text/tabwriter"

	"gps/internal/core"
	"gps/internal/datasets"
	"gps/internal/exact"
	"gps/internal/graph"
	"gps/internal/stats"
	"gps/internal/stream"
)

// AccuracyRow is one (graph, sample size, motif) cell of the
// statistical-accuracy experiment: the exact count, the mean estimate over
// the trials, and the NRMSE — the same metric the tier-1 regression
// harness in internal/core pins with committed bounds.
type AccuracyRow struct {
	Graph  string
	M      int
	Motif  string
	Actual float64
	Mean   float64
	NRMSE  float64
}

// DefaultAccuracySampleSizes are the reservoir sizes the accuracy
// experiment sweeps, matching the tier-1 harness.
var DefaultAccuracySampleSizes = []int{1_000, 10_000, 100_000}

// Accuracy measures the NRMSE of the four post-stream motif estimators
// (triangles, wedges, 4-cliques, 3-stars) against exact counts across
// sample sizes, averaged over Options.Trials stream permutations with the
// paper's triangle weight. The default graphs are the two clustered
// datasets whose exact 4-clique counts are cheap at any profile; pass
// others explicitly to sweep them.
func Accuracy(opts Options, sampleSizes []int, graphs []string) ([]AccuracyRow, error) {
	opts = opts.withDefaults()
	if len(sampleSizes) == 0 {
		sampleSizes = DefaultAccuracySampleSizes
	}
	if len(graphs) == 0 {
		graphs = []string{"ca-hollywood-2009", "com-amazon"}
	}
	var rows []AccuracyRow
	for gi, name := range graphs {
		d, err := datasets.Get(name)
		if err != nil {
			return nil, err
		}
		edges := d.Edges(opts.Profile)
		g := graph.BuildStatic(edges)
		actual := map[string]float64{
			"triangles": float64(exact.Triangles(g)),
			"wedges":    float64(exact.Wedges(g)),
			"cliques4":  float64(exact.Cliques4(g)),
			"stars3":    float64(exact.Stars3(g)),
		}
		for _, m := range sampleSizes {
			m := clampSample(m, len(edges))
			got := map[string][]float64{}
			for trial := 0; trial < opts.Trials; trial++ {
				ss, ps := opts.trialSeed(gi, trial)
				s, err := core.NewSampler(core.Config{
					Capacity: m,
					Weight:   core.TriangleWeight,
					Seed:     ss + uint64(m),
				})
				if err != nil {
					return nil, err
				}
				stream.Drive(stream.Permute(edges, ps+uint64(m)), func(e graph.Edge) { s.Process(e) })
				est := core.EstimatePost(s)
				got["triangles"] = append(got["triangles"], est.Triangles)
				got["wedges"] = append(got["wedges"], est.Wedges)
				got["cliques4"] = append(got["cliques4"], core.EstimateCliques4Post(s))
				got["stars3"] = append(got["stars3"], core.EstimateStars3Post(s))
			}
			for _, motif := range []string{"triangles", "wedges", "cliques4", "stars3"} {
				mean := 0.0
				for _, v := range got[motif] {
					mean += v
				}
				mean /= float64(len(got[motif]))
				rows = append(rows, AccuracyRow{
					Graph: name, M: m, Motif: motif,
					Actual: actual[motif], Mean: mean,
					NRMSE: stats.NRMSE(got[motif], actual[motif]),
				})
			}
		}
	}
	return rows, nil
}

// RenderAccuracy formats accuracy rows as a text table.
func RenderAccuracy(rows []AccuracyRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "graph\tm\tmotif\tactual\tmean estimate\tNRMSE")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%s\t%.4f\n",
				r.Graph, r.M, r.Motif, human(r.Actual), human(r.Mean), r.NRMSE)
		}
	})
}

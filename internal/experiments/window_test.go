package experiments

import (
	"strings"
	"testing"
)

// TestWindowAccuracySmoke runs the turnstile sliding-window experiment at
// small scale: rows for every (window, m, motif) cell, saturated samples
// landing on the exact in-window counts, and a renderable table. The tight
// NRMSE regression bounds live in internal/engine's windowed tests.
func TestWindowAccuracySmoke(t *testing.T) {
	rows, err := WindowAccuracy(
		Options{Trials: 2, Seed: 11},
		WindowConfig{Nodes: 1500, K: 5, Triad: 0.4,
			WindowFracs: []float64{0.5}, SampleSizes: []int{800, 100000}, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	// One window × two sample sizes × three motifs.
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Exact <= 0 {
			t.Fatalf("%+v: non-positive exact count", r)
		}
		if r.NRMSE < 0 || r.NRMSE > 2 {
			t.Fatalf("%+v: NRMSE out of range", r)
		}
		// The oversized sample saturates every pane, so the merged window
		// estimate is the exact count and the NRMSE collapses to zero.
		if r.M > 10000 && r.NRMSE != 0 {
			t.Errorf("%+v: saturated sample is not exact", r)
		}
	}
	text := RenderWindow(rows)
	if !strings.Contains(text, "0.50·span") || !strings.Contains(text, "triangles") {
		t.Fatalf("render missing content:\n%s", text)
	}
}

package experiments

import (
	"time"

	"gps/internal/baselines"
	"gps/internal/core"
	"gps/internal/datasets"
	"gps/internal/graph"
	"gps/internal/stats"
)

// Table2Row is one (graph, method) cell pair of the paper's Table 2:
// absolute relative error of the triangle estimate and mean update time per
// edge, at a fixed stored-edge budget.
type Table2Row struct {
	Graph         string
	Method        string
	ARE           float64
	MicrosPerEdge float64
	StoredEdges   int
}

// Table2Methods lists the methods compared, in the paper's column order.
func Table2Methods() []string {
	return []string{"NSAMP", "TRIEST", "MASCOT", "GPS POST"}
}

// Table2 regenerates the paper's baseline comparison: NSAMP, TRIEST and
// MASCOT against GPS post-stream estimation, every method holding
// approximately `budget` edges. The paper equalizes memory by first
// observing MASCOT's sample; here MASCOT's retention probability is set to
// budget/|K| so its expected sample matches the budget directly.
func Table2(opts Options, budget int, graphs []string) ([]Table2Row, error) {
	opts = opts.withDefaults()
	if len(graphs) == 0 {
		graphs = datasets.Table2()
	}
	var rows []Table2Row
	for gi, name := range graphs {
		d, err := datasets.Get(name)
		if err != nil {
			return nil, err
		}
		truth, err := datasets.Truth(name, opts.Profile)
		if err != nil {
			return nil, err
		}
		edges := d.Edges(opts.Profile)
		b := clampSample(budget, len(edges))
		p := float64(b) / float64(len(edges))
		if p > 1 {
			p = 1
		}

		type method struct {
			name string
			make func(seed uint64) (process func(graph.Edge), estimate func() float64, stored func() int)
		}
		methods := []method{
			{"NSAMP", func(seed uint64) (func(graph.Edge), func() float64, func() int) {
				r := b / 2
				if r < 1 {
					r = 1
				}
				ns, _ := baselines.NewNSamp(r, seed)
				return ns.Process, ns.Triangles, ns.StoredEdges
			}},
			{"TRIEST", func(seed uint64) (func(graph.Edge), func() float64, func() int) {
				tr, _ := baselines.NewTriest(b, seed)
				return tr.Process, tr.Triangles, tr.StoredEdges
			}},
			{"MASCOT", func(seed uint64) (func(graph.Edge), func() float64, func() int) {
				ms, _ := baselines.NewMascot(p, seed)
				return ms.Process, ms.Triangles, ms.StoredEdges
			}},
			{"GPS POST", func(seed uint64) (func(graph.Edge), func() float64, func() int) {
				s, _ := core.NewSampler(core.Config{Capacity: b, Weight: core.TriangleWeight, Seed: seed})
				return func(e graph.Edge) { s.Process(e) },
					func() float64 { return core.EstimatePost(s).Triangles },
					func() int { return s.Reservoir().Len() }
			}},
		}

		for _, m := range methods {
			var est stats.Welford
			var perEdge time.Duration
			stored := 0
			for trial := 0; trial < opts.Trials; trial++ {
				ss, ps := opts.trialSeed(gi, trial)
				process, estimate, storedFn := m.make(ss + uint64(len(m.name)))
				perEdge += timeProcess(edges, ps, process)
				est.Add(estimate())
				stored = storedFn()
			}
			perEdge /= time.Duration(opts.Trials)
			rows = append(rows, Table2Row{
				Graph:         name,
				Method:        m.name,
				ARE:           stats.ARE(est.Mean(), float64(truth.Triangles)),
				MicrosPerEdge: float64(perEdge.Nanoseconds()) / 1e3,
				StoredEdges:   stored,
			})
		}
	}
	return rows, nil
}

package experiments

import (
	"fmt"
	"text/tabwriter"

	"gps/internal/baselines"
	"gps/internal/core"
	"gps/internal/datasets"
	"gps/internal/graph"
	"gps/internal/stats"
	"gps/internal/stream"
)

// ExtensionRow is one (graph, method) result of the extension comparison.
type ExtensionRow struct {
	Graph       string
	Method      string
	ARE         float64
	ZeroRuns    int // replications that produced a zero estimate
	StoredEdges int
}

// ExtensionMethods lists the estimators in the extension comparison.
func ExtensionMethods() []string {
	return []string{"JHA", "BURIOL", "GPS POST", "GPS IN-STREAM"}
}

// Extensions reproduces the comparisons the paper ran but omitted for
// brevity (§6): the birthday-paradox wedge sampler of Jha et al. and the
// Buriol et al. 3-node sampler adapted to adjacency streams, against both
// GPS estimators at a matched edge budget. The paper reports that Buriol
// "fails to find a triangle most of the time, producing low quality
// estimates (mostly zero estimates)" and that GPS post-stream achieves "at
// least 10x accuracy improvement" over Jha et al.; ZeroRuns quantifies the
// former.
func Extensions(opts Options, budget int, graphs []string) ([]ExtensionRow, error) {
	opts = opts.withDefaults()
	if len(graphs) == 0 {
		graphs = datasets.Table2()
	}
	var rows []ExtensionRow
	for gi, name := range graphs {
		d, err := datasets.Get(name)
		if err != nil {
			return nil, err
		}
		truth, err := datasets.Truth(name, opts.Profile)
		if err != nil {
			return nil, err
		}
		edges := d.Edges(opts.Profile)
		b := clampSample(budget, len(edges))
		actual := float64(truth.Triangles)

		type methodRun struct {
			estimate float64
			stored   int
		}
		run := func(method string, seed, perm uint64) methodRun {
			switch method {
			case "JHA":
				// Split the budget between edge slots and wedge
				// slots as the original paper does (se = sw).
				se := b / 3
				if se < 2 {
					se = 2
				}
				sw := (b - se) / 2
				if sw < 1 {
					sw = 1
				}
				jh, _ := baselines.NewJha(se, sw, seed)
				stream.Drive(stream.Permute(edges, perm), jh.Process)
				return methodRun{jh.Triangles(), jh.StoredEdges()}
			case "BURIOL":
				bu, _ := baselines.NewBuriol(2*b/3, seed)
				stream.Drive(stream.Permute(edges, perm), bu.Process)
				return methodRun{bu.Triangles(), bu.StoredEdges()}
			case "GPS POST":
				s, _ := core.NewSampler(core.Config{Capacity: b, Weight: core.TriangleWeight, Seed: seed})
				stream.Drive(stream.Permute(edges, perm), func(e graph.Edge) { s.Process(e) })
				return methodRun{core.EstimatePost(s).Triangles, s.Reservoir().Len()}
			case "GPS IN-STREAM":
				in, _ := core.NewInStream(core.Config{Capacity: b, Weight: core.TriangleWeight, Seed: seed})
				stream.Drive(stream.Permute(edges, perm), func(e graph.Edge) { in.Process(e) })
				return methodRun{in.Estimates().Triangles, in.Estimates().SampledEdges}
			}
			panic("experiments: unknown extension method " + method)
		}

		for _, method := range ExtensionMethods() {
			var est stats.Welford
			zeros, stored := 0, 0
			for trial := 0; trial < opts.Trials; trial++ {
				ss, ps := opts.trialSeed(gi, trial)
				r := run(method, ss+uint64(len(method)), ps)
				est.Add(r.estimate)
				stored = r.stored
				if r.estimate == 0 {
					zeros++
				}
			}
			rows = append(rows, ExtensionRow{
				Graph:       name,
				Method:      method,
				ARE:         stats.ARE(est.Mean(), actual),
				ZeroRuns:    zeros,
				StoredEdges: stored,
			})
		}
	}
	return rows, nil
}

// RenderExtensions formats the extension comparison.
func RenderExtensions(rows []ExtensionRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "graph\tmethod\tARE\tzero-runs\tstored edges")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%.3f\t%d\t%d\n", r.Graph, r.Method, r.ARE, r.ZeroRuns, r.StoredEdges)
		}
	})
}

package experiments

import (
	"strings"
	"testing"
)

func TestExtensionsSmoke(t *testing.T) {
	rows, err := Extensions(Options{Trials: 2, Seed: 23}, 6000, []string{"higgs-social-network"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ExtensionMethods()) {
		t.Fatalf("got %d rows, want %d", len(rows), len(ExtensionMethods()))
	}
	byMethod := map[string]ExtensionRow{}
	for _, r := range rows {
		byMethod[r.Method] = r
		if r.StoredEdges <= 0 {
			t.Errorf("%s: stored %d", r.Method, r.StoredEdges)
		}
	}
	// The paper's shape: GPS beats JHA decisively; Buriol produces zeros.
	if byMethod["GPS IN-STREAM"].ARE >= byMethod["JHA"].ARE {
		t.Errorf("GPS IN-STREAM ARE %v not below JHA %v",
			byMethod["GPS IN-STREAM"].ARE, byMethod["JHA"].ARE)
	}
	if byMethod["GPS POST"].ZeroRuns != 0 || byMethod["GPS IN-STREAM"].ZeroRuns != 0 {
		t.Error("GPS produced zero estimates")
	}
	text := RenderExtensions(rows)
	if !strings.Contains(text, "BURIOL") || !strings.Contains(text, "zero-runs") {
		t.Fatalf("render missing content:\n%s", text)
	}
}

func TestExtensionsUnknownGraph(t *testing.T) {
	if _, err := Extensions(Options{}, 1000, []string{"nope"}); err == nil {
		t.Fatal("unknown dataset did not error")
	}
}

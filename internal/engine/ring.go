package engine

import (
	"sync"
	"sync/atomic"

	"gps/internal/fault"
	"gps/internal/graph"
)

// ring is the bounded edge queue between the router and one shard
// goroutine: a power-of-two circular buffer with a lock-free consumer and
// mutex-serialized producers (a sharded-MPSC design — with P shards the
// producer mutex is contended only when two producers route to the same
// shard at the same instant, 1/P of the old engine-wide critical section).
//
// # Protocol
//
// The consumer owns head (the next unread position) and the producers own
// tail (the next free position); both only ever grow, and the occupied
// region is [head, tail). The consumer's fast path never takes the mutex:
// it loads tail, processes the contiguous span(s) directly out of the
// buffer — the router copies edges in, so the shard sampler reads them
// in place with no per-message allocation — and publishes the new head.
// Producers append under mu, which also serializes the sync.Cond
// handshakes:
//
//   - a producer finding the ring full waits on cond (counted in stalls —
//     the router-stall gauge) until the consumer frees space;
//   - the consumer parks on cond when the ring is empty;
//   - a barrier (drainWait) waits on cond until the ring is empty *and*
//     processed — head covers everything appended.
//
// Wakeups: producers broadcast after every append (they hold mu already).
// The consumer broadcasts after advancing head only when waiters is
// non-zero — a racy read, but a missed wakeup is always rescued: the
// consumer re-checks waiters on its next iteration, and its park path
// broadcasts under mu before sleeping, by which point any waiter's
// registration (made under mu) is visible. waiters counts producers *and*
// barriers; full-producer and parked-consumer states are mutually
// exclusive (full implies non-empty), so a broadcast never self-deadlocks.
//
// Determinism: appends are serialized per ring, so each shard sees a total
// order of runs; with a single producer that order is the stream order,
// which is what keeps sharded sampling a deterministic function of (seed,
// stream, shard count) regardless of batching or consumer scheduling.
type ring struct {
	buf  []graph.Edge
	mask uint64

	head atomic.Uint64 // consumer position: everything below is processed
	tail atomic.Uint64 // producer position: mutated only under mu

	mu      sync.Mutex
	cond    *sync.Cond
	waiters atomic.Int32  // producers + barriers registered under mu
	stalls  atomic.Uint64 // cumulative producer full-waits (ring backpressure)
	parks   atomic.Uint64 // cumulative consumer sleeps (ring ran empty)
	wakeups atomic.Uint64 // cumulative consumer broadcasts to waiters
	closed  bool          // guarded by mu
}

func newRing(capacity int) *ring {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic("engine: ring capacity must be a positive power of two")
	}
	r := &ring{buf: make([]graph.Edge, capacity), mask: uint64(capacity - 1)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// append copies edges into the ring in order, blocking while the ring is
// full. Batches larger than the capacity are admitted in chunks; the
// per-shard run order is the append order, so concurrent producers to the
// same shard serialize here (and nowhere else).
func (r *ring) append(edges []graph.Edge) {
	if fault.Enabled() {
		// Before the lock: an injected panic here unwinds the producer
		// (serve's ingest loop recovers and drops the batch) without
		// wedging the ring mutex. Error rules are meaningless at an append
		// that cannot fail, so only latency and panic kinds apply.
		_ = fault.Hit(fault.RingPublish)
	}
	r.mu.Lock()
	for len(edges) > 0 {
		tail := r.tail.Load()
		free := uint64(len(r.buf)) - (tail - r.head.Load())
		if free == 0 {
			r.stalls.Add(1)
			r.waiters.Add(1)
			r.cond.Wait()
			r.waiters.Add(-1)
			continue
		}
		n := uint64(len(edges))
		if n > free {
			n = free
		}
		i := tail & r.mask
		c := copy(r.buf[i:], edges[:n])
		if uint64(c) < n {
			copy(r.buf, edges[c:n])
		}
		r.tail.Store(tail + n)
		edges = edges[n:]
		r.cond.Broadcast() // wake a parked consumer (we hold mu already)
	}
	r.mu.Unlock()
}

// append1 is the single-edge convenience used by Parallel.Process; the
// backing array stays on the caller's stack (append copies).
func (r *ring) append1(e graph.Edge) {
	var one [1]graph.Edge
	one[0] = e
	r.append(one[:])
}

// depth returns the number of edges currently queued (appended but not yet
// processed). Lock-free; a racing producer or consumer may move it by the
// time the caller looks, so it is a gauge, not a barrier.
func (r *ring) depth() int {
	// Load tail first: head only grows toward tail, so this order can only
	// under-report, never go negative.
	tail := r.tail.Load()
	head := r.head.Load()
	if tail < head {
		return 0
	}
	return int(tail - head)
}

// drainWait blocks until the ring is empty and fully processed. Callers
// must have excluded producers (the engine holds the admission write lock),
// so emptiness is stable once observed.
func (r *ring) drainWait() {
	if r.head.Load() == r.tail.Load() {
		return
	}
	r.mu.Lock()
	r.waiters.Add(1)
	for r.head.Load() != r.tail.Load() {
		r.cond.Wait()
	}
	r.waiters.Add(-1)
	r.mu.Unlock()
}

// skipAll discards every queued edge, returning how many were dropped:
// head jumps to tail and any waiting producers or barriers are woken.
// Only the consumer side (the shard supervisor, quarantining a poisonous
// backlog) may call it — head is consumer-owned.
func (r *ring) skipAll() int {
	r.mu.Lock()
	head, tail := r.head.Load(), r.tail.Load()
	r.head.Store(tail)
	r.cond.Broadcast()
	r.mu.Unlock()
	return int(tail - head)
}

// close marks the ring closed and wakes the consumer; the consumer drains
// whatever is still queued and then exits.
func (r *ring) close() {
	r.mu.Lock()
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
}

// consume runs the consumer loop: it calls process on maximal contiguous
// spans of queued edges until the ring is closed and empty. process runs
// with no lock held — the span is owned by the consumer until it publishes
// the new head.
func (r *ring) consume(process func([]graph.Edge)) {
	for {
		head := r.head.Load()
		tail := r.tail.Load()
		if head == tail {
			// Park until there is work or the ring closes. The pre-sleep
			// broadcast rescues any waiter whose registration the fast
			// path's racy waiters check missed.
			r.mu.Lock()
			for {
				if r.waiters.Load() > 0 {
					r.cond.Broadcast()
				}
				tail = r.tail.Load()
				if tail != head || r.closed {
					break
				}
				r.parks.Add(1)
				r.cond.Wait()
			}
			closed := r.closed
			r.mu.Unlock()
			if tail == head {
				if closed {
					return
				}
				continue
			}
		}
		i, j := head&r.mask, tail&r.mask
		if i < j {
			process(r.buf[i:j])
		} else {
			process(r.buf[i:])
			if j > 0 {
				process(r.buf[:j])
			}
		}
		r.head.Store(tail)
		if r.waiters.Load() > 0 {
			r.wakeups.Add(1)
			r.mu.Lock()
			r.cond.Broadcast()
			r.mu.Unlock()
		}
	}
}

package engine

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"

	"gps/internal/checkpoint"
	"gps/internal/core"
	"gps/internal/graph"
	"gps/internal/randx"
)

// Windowed is the sliding-window layer over the sharded engine: a chain of
// time-partitioned panes, each a GPS sample of the edges whose event times
// fall in one [i·PaneWidth, (i+1)·PaneWidth) interval. The youngest pane is
// live — a full sharded Parallel consuming the stream — while older panes
// are frozen samplers produced by the pane-rotation barrier. A window query
// "the last w time units, exactly" merges the panes overlapping (T−w, T]
// (T the event-time horizon) through the standard priority-sampling merge,
// trimming the boundary pane to the window edge, and runs the post-stream
// estimators over the merged sample. Panes that can no longer intersect any
// admissible window are retired for good, bounding memory to
// ~(Window/PaneWidth + 1) reservoirs regardless of stream length.
//
// Rotation reuses the engine's barrier machinery: when an arriving edge's
// event time crosses the active pane's end, the active Parallel is drained
// (every ring empty, every shard quiescent — the same epoch-checked barrier
// Merge and WriteCheckpoint take), merged into a single frozen sampler, and
// closed; a fresh Parallel with a pane-derived seed opens for the new pane.
// The whole run is a deterministic function of (Seed, stream order, Shards):
// pane seeds derive from the root seed and the pane index alone, so a
// crash-restart from a checkpoint replays into bit-identical panes.
//
// Turnstile deletions interact with windowing by design: an insert's pane
// is its event time's, but the matching deletion may arrive panes later, so
// deletion records fan out — applied to every retained frozen pane
// synchronously and fed to the live pane like any record. Deletion is
// deterministic on every pane (no RNG draw, no threshold change), so the
// fan-out preserves determinism.
//
// Windowed methods are safe for concurrent use but coarsely serialized: one
// mutex covers ingest, rotation and queries. The underlying Parallel still
// fans sampling out across shards; the serialization is the routing and the
// pane bookkeeping. Forward decay and windowing are mutually exclusive —
// both reweight time, in incompatible ways.
type Windowed struct {
	mu  sync.Mutex
	cfg WindowConfig

	active    *Parallel
	activeIdx uint64 // pane index of the active pane
	started   bool   // a timed edge has established the pane clock

	// retired panes in ascending pane-index order; each holds the merged,
	// frozen sampler of a completed pane (still receiving deletion fan-out).
	retired []windowPane

	horizon   uint64 // max event time seen (T)
	processed uint64 // records ever fed (the stream position a resume skips)
	closed    bool
}

// windowPane is one completed pane of the chain.
type windowPane struct {
	idx uint64 // pane index: covers [idx·PaneWidth, (idx+1)·PaneWidth)
	s   *core.Sampler
}

// WindowConfig parameterizes a Windowed engine.
type WindowConfig struct {
	// Capacity is the reservoir size m of each pane (and of merged query
	// results).
	Capacity int
	// Weight is the sampling weight function shared by every pane; nil means
	// uniform. Stream-independent weights keep pane merges exact (see
	// core.Merge); topology-dependent weights are approximate exactly as
	// they are under sharding.
	Weight core.WeightFunc
	// Seed makes the whole windowed run deterministic; pane seeds derive
	// from it and the pane index.
	Seed uint64
	// Shards is the live pane's Parallel shard count (<= 0 means
	// GOMAXPROCS).
	Shards int
	// PaneWidth is the width of one pane in event-time units (> 0).
	PaneWidth uint64
	// Window is the maximum queryable window in event-time units (> 0);
	// panes are retained while they can intersect (T−Window, T].
	Window uint64
}

func (cfg WindowConfig) validate() error {
	if cfg.Capacity < 1 {
		return errors.New("engine: window Capacity must be at least 1")
	}
	if cfg.PaneWidth == 0 {
		return errors.New("engine: PaneWidth must be positive")
	}
	if cfg.Window == 0 {
		return errors.New("engine: Window must be positive")
	}
	if cfg.Window < cfg.PaneWidth {
		return errors.New("engine: Window must be at least one PaneWidth")
	}
	return nil
}

// NewWindowed returns a windowed engine with an open (empty) first pane.
func NewWindowed(cfg WindowConfig) (*Windowed, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	w := &Windowed{cfg: cfg}
	active, err := w.openPane(0)
	if err != nil {
		return nil, err
	}
	w.active = active
	// Pin the resolved shard count: later panes must match the first, and
	// the checkpoint header records the count a restore validates against.
	w.cfg.Shards = active.Shards()
	return w, nil
}

// paneSeed derives the deterministic root seed of pane idx: a mix of the
// window seed and the pane index, so a pane's whole sampling run depends
// only on (Seed, idx, stream order) — rotation history does not leak in.
func (w *Windowed) paneSeed(idx uint64) uint64 {
	return randx.Mix64(w.cfg.Seed ^ randx.Mix64(idx+0x9E3779B97F4A7C15))
}

func (w *Windowed) openPane(idx uint64) (*Parallel, error) {
	return NewParallel(core.Config{
		Capacity: w.cfg.Capacity,
		Weight:   w.cfg.Weight,
		Seed:     w.paneSeed(idx),
	}, w.cfg.Shards)
}

// paneIndex returns the pane a timed edge belongs to.
func (w *Windowed) paneIndex(ts uint64) uint64 { return ts / w.cfg.PaneWidth }

// ProcessBatch feeds a batch of turnstile records in stream order. Inserts
// route to the live pane, advancing it first when their event time crosses
// the pane end; deletion records fan out to every retained pane. Untimed
// records (TS 0) ride the live pane without advancing the pane clock. Late
// arrivals — event times behind the live pane — are tolerated: they land in
// the live pane, and because queries trim by stored event time (not by
// pane), they still count toward exactly the windows they belong to.
func (w *Windowed) ProcessBatch(edges []graph.Edge) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("engine: ProcessBatch on closed Windowed")
	}
	start := 0
	for i, e := range edges {
		if e.TS > w.horizon {
			w.horizon = e.TS
		}
		if e.Del {
			// Flush the pending insert run so the live pane sees records in
			// stream order, then fan the deletion out. The live pane gets it
			// through its ring (its shard owns the edge if this pane holds
			// it); frozen panes apply it synchronously — no new inserts race
			// them, so encounter order is stream order.
			w.active.ProcessBatch(edges[start:i])
			start = i + 1
			for _, p := range w.retired {
				p.s.Process(e)
			}
			w.active.Process(e)
			continue
		}
		if e.TS != 0 {
			if idx := w.paneIndex(e.TS); !w.started || idx > w.activeIdx {
				w.active.ProcessBatch(edges[start:i])
				start = i
				if err := w.rotateTo(idx); err != nil {
					return err
				}
			}
		}
	}
	w.active.ProcessBatch(edges[start:])
	w.processed += uint64(len(edges))
	return nil
}

// rotateTo closes the active pane and opens pane idx: the pane-rotation
// barrier. The active Parallel is drained and merged (the same admission
// barrier every engine query takes), its frozen sampler joins the retired
// chain, panes that can no longer intersect (T−Window, T] are dropped, and
// a fresh Parallel opens. The first timed edge skips the freeze: it names
// the first real pane, and the provisional pane — holding at most an
// untimed prefix, which belongs wherever the clock starts — is simply
// renamed. Callers hold w.mu.
func (w *Windowed) rotateTo(idx uint64) error {
	if !w.started {
		w.started = true
		w.activeIdx = idx
		return nil
	}
	frozen, err := w.active.Merge()
	if err != nil {
		return fmt.Errorf("engine: pane %d rotation: %w", w.activeIdx, err)
	}
	w.active.Close()
	w.retired = append(w.retired, windowPane{idx: w.activeIdx, s: frozen})
	w.activeIdx = idx
	w.prune()
	active, err := w.openPane(idx)
	if err != nil {
		return err
	}
	w.active = active
	return nil
}

// prune drops retired panes that cannot intersect (T−Window, T] for the
// current horizon T. Callers hold w.mu.
func (w *Windowed) prune() {
	if w.horizon <= w.cfg.Window {
		return
	}
	cut := w.horizon - w.cfg.Window // keep panes with end > cut
	keep := w.retired[:0]
	for _, p := range w.retired {
		if (p.idx+1)*w.cfg.PaneWidth > cut {
			keep = append(keep, p)
		}
	}
	w.retired = keep
}

// WindowEstimates is the result of a window query: the post-stream motif
// estimates over the merged in-window sample, plus the window geometry and
// the Horvitz-Thompson estimate of the in-window edge count.
type WindowEstimates struct {
	core.Estimates
	// Window is the effective window width queried and Horizon the event
	// time T it ends at: the estimates target edges with TS in (T−W, T]
	// (untimed edges always count).
	Window  uint64
	Horizon uint64
	// Edges is Σ 1/q(k) over the merged in-window sample — the unbiased
	// estimate of the number of in-window edges.
	Edges float64
	// Panes is the number of panes merged to answer the query.
	Panes int
	// Threshold is the merged sample's priority threshold z*.
	Threshold float64
}

// Query estimates triangle and wedge counts over the trailing window of
// width win event-time units (win == 0 means the configured maximum). It
// merges every retained pane overlapping (T−win, T], trimming edges that
// fall outside the window from the boundary panes, and runs the post-stream
// estimators on the merged sample. Ingestion is blocked for the duration.
func (w *Windowed) Query(win uint64) (WindowEstimates, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return WindowEstimates{}, errors.New("engine: Query on closed Windowed")
	}
	if win == 0 {
		win = w.cfg.Window
	}
	if win > w.cfg.Window {
		return WindowEstimates{}, fmt.Errorf("engine: window %d exceeds the configured maximum %d (older panes are already retired)",
			win, w.cfg.Window)
	}
	var cut uint64 // edges with 0 < TS <= cut are out of window
	if w.horizon > win {
		cut = w.horizon - win
	}
	var samplers []*core.Sampler
	for _, p := range w.retired {
		if (p.idx+1)*w.cfg.PaneWidth <= cut {
			continue // pane entirely out of window
		}
		samplers = append(samplers, trimPane(p.s, cut))
	}
	activeSnap, err := w.active.Snapshot()
	if err != nil {
		return WindowEstimates{}, err
	}
	samplers = append(samplers, trimPane(activeSnap, cut))

	merged, err := core.Merge(samplers, core.Config{
		Capacity: w.cfg.Capacity,
		Weight:   w.cfg.Weight,
		Seed:     randx.Mix64(w.cfg.Seed ^ 0xD6E8FEB86659FD93),
	})
	if err != nil {
		return WindowEstimates{}, fmt.Errorf("engine: window merge: %w", err)
	}
	est := core.EstimatePost(merged)
	res := WindowEstimates{
		Estimates: est,
		Window:    win,
		Horizon:   w.horizon,
		Panes:     len(samplers),
		Threshold: merged.Threshold(),
	}
	merged.Reservoir().ForEachEdge(func(e graph.Edge) bool {
		if q, ok := merged.InclusionProb(e); ok && q > 0 {
			res.Edges += 1 / q
		}
		return true
	})
	return res, nil
}

// trimPane returns a sampler holding only s's in-window edges (stored event
// time beyond cut, or untimed). A pane with nothing to trim is returned
// as-is; otherwise a clone is trimmed through the deterministic turnstile
// deletion path, which leaves the surviving edges' inclusion probabilities
// untouched — exactly the semantics a window boundary needs.
func trimPane(s *core.Sampler, cut uint64) *core.Sampler {
	if cut == 0 {
		return s
	}
	// Iterate the heap (Edges), not the adjacency index (ForEachEdge): the
	// adjacency stores endpoints only, so edges it yields carry no event
	// time and nothing would ever be trimmed.
	var old []graph.Edge
	for _, e := range s.Reservoir().Edges() {
		if e.TS != 0 && e.TS <= cut {
			old = append(old, e)
		}
	}
	if len(old) == 0 {
		return s
	}
	c := s.Clone()
	for _, e := range old {
		c.Process(e.AsDeletion())
	}
	return c
}

// Horizon returns the largest event time fed so far (T).
func (w *Windowed) Horizon() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.horizon
}

// Processed returns the stream position: every record ever fed, counted
// once (deletion fan-out does not multiply it). A resume replaying the
// original stream must skip exactly this many records.
func (w *Windowed) Processed() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.processed
}

// Panes returns the number of retained panes (retired plus the live one).
func (w *Windowed) Panes() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.retired) + 1
}

// Config returns the window configuration (with Shards resolved).
func (w *Windowed) Config() WindowConfig { return w.cfg }

// Engine returns the live pane's Parallel engine — a point-in-time handle
// for telemetry readers (ring stats, shard health). Rotation replaces the
// live engine, so callers must re-fetch per read rather than hold on to it.
func (w *Windowed) Engine() *Parallel {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.active
}

// Deletions returns the turnstile-deletion counters summed over the live
// pane's shards and every retained frozen pane. Because deletions fan out,
// one stream record can account once per retained pane.
func (w *Windowed) Deletions() (applied, unsampled uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	applied, unsampled = w.active.Deletions()
	for _, p := range w.retired {
		a, u := p.s.Deletions()
		applied += a
		unsampled += u
	}
	return applied, unsampled
}

// RetiredDeletions returns the deletion counters summed over the retired
// panes only. Unlike Deletions it never barriers the live engine — the
// scrape-safe reader: the live pane's verdicts join these sums at its
// rotation.
func (w *Windowed) RetiredDeletions() (applied, unsampled uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, p := range w.retired {
		a, u := p.s.Deletions()
		applied += a
		unsampled += u
	}
	return applied, unsampled
}

// Close drains and stops the live pane's shard goroutines. Further use
// returns errors; Close is idempotent.
func (w *Windowed) Close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	w.active.Close()
}

// GPSC window payload (checkpoint.KindWindow, always Version3 — the kind
// was introduced with the turnstile format):
//
//	uvarint  capacity m
//	uvarint  shard count P
//	u64      root seed
//	uvarint  pane width
//	uvarint  window
//	uvarint  processed (stream position)
//	uvarint  horizon T
//	uvarint  started flag (0/1)
//	uvarint  active pane index
//	uvarint  retired pane count R
//	R ×      uvarint pane index (ascending)
//	u32      crc32 of the bytes above
//	R ×      sampler document (complete GPSC KindSampler documents)
//	1 ×      engine document (complete GPSC KindEngine container, the live
//	         pane)
//
// Like the engine container, the header is its own checksummed document and
// every embedded document carries its own checksum, so a restore validates
// structure before trusting any field. One serialized form per state keeps
// checkpoint → restore → checkpoint byte-identical.

// WriteCheckpoint serializes the whole window chain as a GPSC window
// document and returns the stream position it covers. The live pane is
// serialized through the engine's own barrier-and-cache checkpoint path;
// frozen panes serialize directly (they are quiescent by construction).
func (w *Windowed) WriteCheckpoint(out io.Writer, weightName string) (position uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errors.New("engine: WriteCheckpoint on closed Windowed")
	}
	cw := checkpoint.NewWriterVersion(out, checkpoint.KindWindow, checkpoint.Version3)
	cw.Uvarint(uint64(w.cfg.Capacity))
	cw.Uvarint(uint64(w.cfg.Shards))
	cw.U64(w.cfg.Seed)
	cw.Uvarint(w.cfg.PaneWidth)
	cw.Uvarint(w.cfg.Window)
	cw.Uvarint(w.processed)
	cw.Uvarint(w.horizon)
	if w.started {
		cw.Uvarint(1)
	} else {
		cw.Uvarint(0)
	}
	cw.Uvarint(w.activeIdx)
	cw.Uvarint(uint64(len(w.retired)))
	for _, p := range w.retired {
		cw.Uvarint(p.idx)
	}
	if err := cw.Finish(); err != nil {
		return 0, err
	}
	for _, p := range w.retired {
		if err := p.s.WriteCheckpoint(out, weightName); err != nil {
			return 0, fmt.Errorf("engine: window pane %d: %w", p.idx, err)
		}
	}
	if _, err := w.active.WriteCheckpoint(out, weightName); err != nil {
		return 0, fmt.Errorf("engine: window live pane: %w", err)
	}
	return w.processed, nil
}

// maxWindowPanes bounds the retired-pane count a forged header can claim.
const maxWindowPanes = 1 << 16

// ReadWindowedCheckpoint restores a window chain from a GPSC window
// document, returning the running engine and the recorded weight name. The
// decoder is as strict as the documents it composes, and additionally
// rejects pane indices out of order or beyond the active pane, geometry
// disagreements between the header and the embedded engine document, and
// trailing bytes.
func ReadWindowedCheckpoint(r io.Reader, resolve func(string) (core.WeightFunc, error)) (*Windowed, string, error) {
	return readWindowedDocument(bufio.NewReader(r), resolve, true)
}

// ReadWindowedDocument reads one window document from br and leaves the
// reader positioned after it, for the KindMulti container which embeds
// window documents back to back. Unlike ReadWindowedCheckpoint it does not
// require EOF after the document.
func ReadWindowedDocument(br *bufio.Reader, resolve func(string) (core.WeightFunc, error)) (*Windowed, string, error) {
	return readWindowedDocument(br, resolve, false)
}

func readWindowedDocument(br *bufio.Reader, resolve func(string) (core.WeightFunc, error), requireEOF bool) (*Windowed, string, error) {
	if resolve == nil {
		resolve = core.ResolveWeight
	}
	cr := checkpoint.NewReader(br)
	if err := cr.ExpectKind(checkpoint.KindWindow); err != nil {
		return nil, "", err
	}
	capacity := cr.Count("capacity", maxEngineCapacity)
	shards := cr.Count("shard count", maxEngineShards)
	seed := cr.U64()
	paneWidth := cr.Uvarint()
	window := cr.Uvarint()
	processed := cr.Uvarint()
	horizon := cr.Uvarint()
	startedFlag := cr.Uvarint()
	activeIdx := cr.Uvarint()
	numRetired := cr.Count("retired pane count", maxWindowPanes)
	indices := make([]uint64, 0, min(numRetired, 1<<10))
	for i := 0; i < numRetired && cr.Err() == nil; i++ {
		indices = append(indices, cr.Uvarint())
	}
	if err := cr.Finish(); err != nil {
		return nil, "", err
	}
	if startedFlag > 1 {
		return nil, "", fmt.Errorf("engine: window checkpoint started flag %d is not boolean", startedFlag)
	}
	started := startedFlag == 1
	cfg := WindowConfig{Capacity: capacity, Seed: seed, Shards: shards, PaneWidth: paneWidth, Window: window}
	if err := cfg.validate(); err != nil {
		return nil, "", err
	}
	for i, idx := range indices {
		if i > 0 && idx <= indices[i-1] {
			return nil, "", fmt.Errorf("engine: window checkpoint pane indices out of order (%d after %d)", idx, indices[i-1])
		}
		if idx >= activeIdx {
			return nil, "", fmt.Errorf("engine: window checkpoint retired pane %d is not older than the active pane %d", idx, activeIdx)
		}
	}

	var (
		weightName string
		retired    []windowPane
	)
	for i, idx := range indices {
		var name string
		wrap := func(n string) (core.WeightFunc, error) {
			name = n
			return resolve(n)
		}
		s, err := core.ReadCheckpoint(br, wrap)
		if err != nil {
			return nil, "", fmt.Errorf("engine: window pane %d: %w", idx, err)
		}
		if i == 0 {
			weightName = name
		} else if name != weightName {
			return nil, "", fmt.Errorf("engine: window pane %d weight %q disagrees with %q", idx, name, weightName)
		}
		retired = append(retired, windowPane{idx: idx, s: s})
	}
	active, engineWeight, err := readParallelDocument(br, resolve, requireEOF)
	if err != nil {
		return nil, "", fmt.Errorf("engine: window live pane: %w", err)
	}
	if len(retired) > 0 && engineWeight != weightName {
		active.Close()
		return nil, "", fmt.Errorf("engine: window live pane weight %q disagrees with retired panes' %q", engineWeight, weightName)
	}
	weightName = engineWeight
	if active.Capacity() != capacity || active.Shards() != shards {
		active.Close()
		return nil, "", fmt.Errorf("engine: window live pane geometry (m=%d P=%d) disagrees with the container (m=%d P=%d)",
			active.Capacity(), active.Shards(), capacity, shards)
	}
	weightFn, _ := resolve(weightName)
	cfg.Weight = weightFn
	w := &Windowed{
		cfg:       cfg,
		active:    active,
		activeIdx: activeIdx,
		started:   started,
		retired:   retired,
		horizon:   horizon,
		processed: processed,
	}
	return w, weightName, nil
}

package engine

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sync"
	"time"

	"gps/internal/checkpoint"
	"gps/internal/core"
	"gps/internal/randx"
)

// GPSC engine payload (checkpoint.KindEngine): a container of per-shard
// sampler documents.
//
//	uvarint  global capacity m
//	uvarint  shard count P
//	u64      root seed (informational; shard RNG states travel below)
//	u64      merge seed
//	v2 only: uvarint event clock (stamped onto untimed edges under decay)
//	u32      crc32 of the bytes above (the container header is its own
//	         checksummed document)
//	P × sampler document (each a complete GPSC KindSampler document with
//	         its own header and checksum, in shard order)
//
// Version gating mirrors the sampler documents: an engine running forward
// decay writes a version-2 container whose shard blobs are version-2
// sampler documents (decay config, landmark, horizon, per-entry event
// times); an undecayed engine writes version 1, byte-identical to earlier
// releases. On restore the container and shard versions must agree, every
// shard must record the same decay config and landmark, and the event
// clock resumes so arrival-order event times continue without a gap.
//
// Restoring rebuilds each shard sampler bit for bit, so a restored engine
// fed the remaining stream produces merges and snapshots identical to an
// uninterrupted run — the per-shard RNG states, reservoirs, the merge
// seed, and the decay state are all that a Parallel's future output
// depends on.

// WriteCheckpoint serializes the whole sharded data plane as a GPSC engine
// document and returns the stream position the document covers (every edge
// routed before the internal barrier — the count a replaying restore must
// skip, captured atomically with the state itself). It reuses the snapshot
// machinery: ingestion stalls only for the barrier plus the cloning of
// shards dirtied since the last snapshot or checkpoint, and serialization
// runs on the immutable clones after ingestion has resumed. Per-shard
// blobs are cached against the shard epoch and the recorded weight name,
// so a checkpoint of an idle engine serializes nothing and writes the
// cached bytes straight out — CheckpointStats exposes the counters.
// weightName is recorded in every shard blob (see core.ResolveWeight).
func (p *Parallel) WriteCheckpoint(w io.Writer, weightName string) (position uint64, err error) {
	p.admit.Lock()
	if p.closed.Load() {
		p.admit.Unlock()
		return 0, fmt.Errorf("engine: WriteCheckpoint on closed Parallel")
	}
	p.barrierLocked()
	p.mu.Lock()
	type job struct {
		idx   int
		ref   *shardRef
		epoch uint64
	}
	var jobs []job
	blobs := make([][]byte, len(p.shards))
	var wg sync.WaitGroup
	for i, sh := range p.shards {
		position += sh.s.Processed() // quiescent after the barrier
		epoch := sh.epoch.Load()
		if sh.ckptBytes != nil && sh.ckptEpoch == epoch && sh.ckptName == weightName {
			blobs[i] = sh.ckptBytes
			p.shardBlobReused++
			continue
		}
		ref, _ := p.acquireCloneLocked(sh, &wg)
		jobs = append(jobs, job{idx: i, ref: ref, epoch: epoch})
		p.shardsEncoded++
	}
	capacity, shards := p.cfg.Capacity, len(p.shards)
	seed, mergeSeed := p.cfg.Seed, p.mergeSeed
	decayed, clock := p.decay, p.clock // stable: producers are excluded by admit
	p.checkpoints++
	p.mu.Unlock()
	wg.Wait() // clones must be complete before ingestion resumes
	p.admit.Unlock()

	// Serialize the dirty shards from their immutable clones, off the lock
	// and in parallel (the clones are independent samplers): ingestion
	// continues while the dominant cost of a checkpoint runs P-wide.
	encStart := time.Now()
	encErrs := make([]error, len(jobs))
	var encWG sync.WaitGroup
	for ji, j := range jobs {
		encWG.Add(1)
		go func(ji int, j job) {
			defer encWG.Done()
			var buf bytes.Buffer
			if err := j.ref.s.WriteCheckpoint(&buf, weightName); err != nil {
				encErrs[ji] = err
				return
			}
			blobs[j.idx] = buf.Bytes()
			p.met.ckptEncBytes.Observe(uint64(buf.Len()))
		}(ji, j)
	}
	encWG.Wait()
	if len(jobs) > 0 {
		p.met.ckptEncNS.Observe(uint64(time.Since(encStart)))
	}
	var encErr error
	for _, e := range encErrs {
		if e != nil {
			encErr = e
			break
		}
	}

	p.mu.Lock()
	for _, j := range jobs {
		p.releaseCloneLocked(j.idx, j.ref)
		if encErr == nil {
			// Cache the blob against the epoch it was cloned at and the
			// name it records; the next checkpoint reuses it unless the
			// shard moved or the caller renamed the weight since.
			p.shards[j.idx].ckptBytes = blobs[j.idx]
			p.shards[j.idx].ckptEpoch = j.epoch
			p.shards[j.idx].ckptName = weightName
		}
	}
	p.mu.Unlock()
	if encErr != nil {
		return 0, encErr
	}

	version := byte(checkpoint.Version)
	if decayed {
		version = checkpoint.Version2
	}
	cw := checkpoint.NewWriterVersion(w, checkpoint.KindEngine, version)
	cw.Uvarint(uint64(capacity))
	cw.Uvarint(uint64(shards))
	cw.U64(seed)
	cw.U64(mergeSeed)
	if decayed {
		cw.Uvarint(clock)
	}
	if err := cw.Finish(); err != nil {
		return 0, err
	}
	for _, blob := range blobs {
		if _, err := w.Write(blob); err != nil {
			return 0, err
		}
	}
	return position, nil
}

// ReadParallelCheckpoint restores a sharded sampler from a GPSC engine
// document, returning the running engine and the weight name recorded in
// the checkpoint. The resolver maps that name to the weight function every
// shard shares (nil means core.ResolveWeight); it must return the function
// the original engine ran, or the restored engine will diverge. The decoder
// is as strict as the sampler decoder it builds on, and additionally
// rejects shard blobs whose capacity, weight name or count disagree with
// the container header.
func ReadParallelCheckpoint(r io.Reader, resolve func(string) (core.WeightFunc, error)) (*Parallel, string, error) {
	return readParallelDocument(bufio.NewReader(r), resolve, true)
}

// ReadParallelDocument reads one engine document from br and leaves the
// reader positioned after it, for container formats (KindWindow, KindMulti)
// that embed engine documents back to back. Unlike ReadParallelCheckpoint it
// does not require EOF after the document; the container decides when the
// byte stream must end.
func ReadParallelDocument(br *bufio.Reader, resolve func(string) (core.WeightFunc, error)) (*Parallel, string, error) {
	return readParallelDocument(br, resolve, false)
}

func readParallelDocument(br *bufio.Reader, resolve func(string) (core.WeightFunc, error), requireEOF bool) (*Parallel, string, error) {
	if resolve == nil {
		resolve = core.ResolveWeight
	}
	cr := checkpoint.NewReader(br)
	if err := cr.ExpectKind(checkpoint.KindEngine); err != nil {
		return nil, "", err
	}
	capacity := cr.Count("capacity", maxEngineCapacity)
	shards := cr.Count("shard count", maxEngineShards)
	seed := cr.U64()
	mergeSeed := cr.U64()
	decayed := cr.Version() == checkpoint.Version2
	var clock uint64
	if decayed {
		clock = cr.Uvarint()
	}
	if err := cr.Finish(); err != nil {
		return nil, "", err
	}
	if capacity < 1 {
		return nil, "", fmt.Errorf("engine: checkpoint capacity %d is not positive", capacity)
	}
	if shards < 1 {
		return nil, "", fmt.Errorf("engine: checkpoint shard count %d is not positive", shards)
	}

	// Decode the shard blobs off the shared buffered reader. The samplers
	// slice grows only as blobs actually parse, so a forged shard count
	// cannot drive allocation.
	var (
		samplers   []*core.Sampler
		weightName string
		weightFn   core.WeightFunc
	)
	for i := 0; i < shards; i++ {
		var name string
		wrap := func(n string) (core.WeightFunc, error) {
			name = n
			return resolve(n)
		}
		s, err := core.ReadCheckpoint(br, wrap)
		if err != nil {
			return nil, "", fmt.Errorf("engine: shard %d: %w", i, err)
		}
		if i == 0 {
			weightName = name
			weightFn, _ = resolve(name) // resolved once more for the engine config
		} else if name != weightName {
			return nil, "", fmt.Errorf("engine: shard %d weight %q disagrees with shard 0's %q",
				i, name, weightName)
		}
		if want := shardCapacity(capacity, shards); s.Capacity() != want {
			return nil, "", fmt.Errorf("engine: shard %d capacity %d, want %d for m=%d P=%d",
				i, s.Capacity(), want, capacity, shards)
		}
		if s.Decayed() != decayed {
			return nil, "", fmt.Errorf("engine: shard %d decay state disagrees with the container version", i)
		}
		samplers = append(samplers, s)
	}
	if requireEOF {
		if _, err := br.ReadByte(); err != io.EOF {
			return nil, "", fmt.Errorf("engine: trailing bytes after %d shard documents", shards)
		}
	}

	// Under decay every shard must have been boosting against one shared
	// g: same config, same landmark. The engine's landmark pinning is
	// considered done once any shard has a landmark.
	var decay core.Decay
	landmarked := false
	if decayed {
		decay = samplers[0].DecayConfig()
		lm0, set0 := samplers[0].DecayLandmark()
		for i, s := range samplers {
			if s.DecayConfig() != decay {
				return nil, "", fmt.Errorf("engine: shard %d decay config %+v disagrees with shard 0's %+v",
					i, s.DecayConfig(), decay)
			}
			lm, set := s.DecayLandmark()
			if set != set0 || (set && lm != lm0) {
				return nil, "", fmt.Errorf("engine: shard %d decay landmark (%d,%v) disagrees with shard 0's (%d,%v)",
					i, lm, set, lm0, set0)
			}
		}
		landmarked = set0
	}

	p := &Parallel{
		cfg:        core.Config{Capacity: capacity, Weight: weightFn, Seed: seed, Decay: decay},
		mergeSeed:  mergeSeed,
		shards:     make([]*shard, len(samplers)),
		decay:      decayed,
		landmarked: landmarked,
		clock:      clock,
	}
	if decayed {
		var t uint64
		for _, s := range samplers {
			if h := s.DecayHorizon(); h > t {
				t = h
			}
		}
		p.horizon.Store(t)
		if lm, set := samplers[0].DecayLandmark(); set {
			p.landmarkVal.Store(lm)
		} else if decay.Landmark != 0 {
			p.landmarkVal.Store(decay.Landmark)
		}
	}
	// Re-derive the per-shard configs the original engine ran with (the
	// derivation order from the root seed is fixed: merge seed first, then
	// shard seeds) so the supervisor can rebuild a shard from scratch as a
	// last resort. baseProcessed records the restored stream position — the
	// edges such a rebuild would lose on top of the ring history.
	sseeds := randx.New(seed)
	_ = sseeds.Uint64() // merge seed slot in the derivation order
	shardCap := shardCapacity(capacity, len(samplers))
	for i, s := range samplers {
		scfg := core.Config{Capacity: shardCap, Weight: weightFn, Seed: sseeds.Uint64(), Decay: decay}
		p.shards[i] = &shard{ring: newRing(DefaultRingCapacity), s: s, cfg: scfg, baseProcessed: s.Processed()}
	}
	p.startShards()
	return p, weightName, nil
}

// Limits on container header fields: generous for any real deployment, but
// they bound what a forged header can claim before shard blobs must back it
// up with real data.
const (
	maxEngineCapacity = (1 << 31) - 1
	maxEngineShards   = 1 << 16
)

// CheckpointStats reports cumulative checkpoint counters: checkpoints
// taken, shard blobs freshly serialized, and clean shards whose cached blob
// was reused byte-for-byte. encoded+reused equals checkpoints×Shards().
func (p *Parallel) CheckpointStats() (checkpoints, encoded, reused uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.checkpoints, p.shardsEncoded, p.shardBlobReused
}

// Capacity returns the global reservoir capacity m.
func (p *Parallel) Capacity() int { return p.cfg.Capacity }

// Processed returns the total stream position across shards: every edge
// ever routed (distinct arrivals plus ignored duplicates). A restore that
// replays the original stream must skip exactly this many edges. It
// synchronizes like Arrivals.
func (p *Parallel) Processed() uint64 {
	p.admit.Lock()
	defer p.admit.Unlock()
	p.barrierLocked()
	var total uint64
	for _, sh := range p.shards {
		total += sh.s.Processed()
	}
	return total
}

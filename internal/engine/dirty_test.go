package engine

import (
	"testing"

	"gps/internal/core"
	"gps/internal/graph"
)

// shardTargeted filters a stream down to edges routing to the given shard.
func shardTargeted(p *Parallel, edges []graph.Edge, shard int) []graph.Edge {
	var out []graph.Edge
	for _, e := range edges {
		if p.ShardOf(e) == shard {
			out = append(out, e)
		}
	}
	return out
}

func requireSameSignature(t *testing.T, label string, a, b *core.Sampler) {
	t.Helper()
	ka, za, aa := signature(t, a)
	kb, zb, ab := signature(t, b)
	if za != zb || aa != ab || len(ka) != len(kb) {
		t.Fatalf("%s: samplers diverge (z %v vs %v, arrivals %d vs %d, len %d vs %d)",
			label, za, zb, aa, ab, len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("%s: samplers diverge at sampled edge %d", label, i)
		}
	}
	if core.EstimatePost(a) != core.EstimatePost(b) {
		t.Fatalf("%s: estimates diverge", label)
	}
}

// TestDirtyShardSnapshotMatchesMerge drives the incremental snapshot
// machinery through every dirtiness pattern — all dirty, none dirty, one
// dirty, mixed — asserting each snapshot stays bit-identical to Merge at
// the same position and that the clone/reuse counters reflect exactly the
// shards that changed.
func TestDirtyShardSnapshotMatchesMerge(t *testing.T) {
	const shards = 4
	stream := testStream(500, 8000, 0xD1217)
	p, err := NewParallel(core.Config{Capacity: 400, Weight: core.TriangleWeight, Seed: 17}, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	check := func(label string, wantCloned uint64) {
		t.Helper()
		_, clonedBefore, _ := p.SnapshotStats()
		snap, err := p.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		merged, err := p.Merge()
		if err != nil {
			t.Fatal(err)
		}
		requireSameSignature(t, label, snap, merged)
		_, clonedAfter, _ := p.SnapshotStats()
		if got := clonedAfter - clonedBefore; got != wantCloned {
			t.Fatalf("%s: cloned %d shards, want %d", label, got, wantCloned)
		}
	}

	p.ProcessBatch(stream[:4000])
	check("initial snapshot", shards) // first snapshot: everything dirty

	check("idle snapshot", 0) // nothing ingested: all clones reused

	// Traffic confined to shard 2 dirties exactly that shard.
	targeted := shardTargeted(p, stream[4000:6000], 2)
	if len(targeted) == 0 {
		t.Fatal("no edges routed to shard 2; adjust the test stream")
	}
	p.ProcessBatch(targeted)
	check("one dirty shard", 1)

	// Broad traffic dirties everything again.
	p.ProcessBatch(stream[6000:])
	check("all dirty again", shards)

	snapshots, cloned, reused := p.SnapshotStats()
	if cloned+reused != snapshots*shards {
		t.Fatalf("stats inconsistent: %d snapshots, %d cloned + %d reused", snapshots, cloned, reused)
	}
}

// TestSnapshotImmutableAcrossRecycling holds on to early snapshots while
// later snapshots churn the per-shard clone pools, verifying that recycled
// backing arrays never reach a sampler that is still referenced — the
// refcounting contract behind CloneReusing.
func TestSnapshotImmutableAcrossRecycling(t *testing.T) {
	const shards = 4
	stream := testStream(400, 6000, 0xFEE1)
	p, err := NewParallel(core.Config{Capacity: 300, Seed: 23}, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	type frozen struct {
		snap *core.Sampler
		est  core.Estimates
		z    float64
		keys []uint64
	}
	var held []frozen
	for lo := 0; lo < len(stream); lo += 600 {
		hi := lo + 600
		if hi > len(stream) {
			hi = len(stream)
		}
		p.ProcessBatch(stream[lo:hi])
		snap, err := p.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		keys, z, _ := signature(t, snap)
		held = append(held, frozen{snap: snap, est: core.EstimatePost(snap), z: z, keys: keys})
	}
	// Extra churn: repeated dirty snapshots cycling the clone pools.
	for i := 0; i < 8; i++ {
		p.ProcessBatch(stream[i*100 : i*100+100]) // duplicates still dirty shards
		if _, err := p.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	for i, f := range held {
		keys, z, _ := signature(t, f.snap)
		if z != f.z || len(keys) != len(f.keys) {
			t.Fatalf("held snapshot %d mutated: z %v vs %v, len %d vs %d", i, z, f.z, len(keys), len(f.keys))
		}
		for j := range keys {
			if keys[j] != f.keys[j] {
				t.Fatalf("held snapshot %d mutated at edge %d", i, j)
			}
		}
		if got := core.EstimatePost(f.snap); got != f.est {
			t.Fatalf("held snapshot %d estimates drifted: %+v vs %+v", i, got, f.est)
		}
	}
}

package engine

import (
	"bytes"
	"math"
	"testing"

	"gps/internal/core"
	"gps/internal/exact"
	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/randx"
	"gps/internal/stats"
)

// dedupeEdges keeps the first occurrence of every edge key, so each edge is
// inserted exactly once — pane samples stay disjoint and merge-exact.
func dedupeEdges(es []graph.Edge) []graph.Edge {
	seen := map[uint64]bool{}
	var out []graph.Edge
	for _, e := range es {
		if !seen[e.Key()] {
			seen[e.Key()] = true
			out = append(out, e)
		}
	}
	return out
}

// turnstileWindowStream builds a timed turnstile stream: every base edge is
// inserted at TS = position+1, and every 7th position also emits a deletion
// of the edge inserted lag positions earlier. Returns the records and the
// set of deleted edge keys (each edge is deleted at most once).
func turnstileWindowStream(base []graph.Edge, lag int) (records []graph.Edge, deleted map[uint64]bool) {
	deleted = map[uint64]bool{}
	for i, e := range base {
		ts := uint64(i + 1)
		records = append(records, e.At(ts))
		if i%7 == 3 && i >= lag {
			victim := base[i-lag]
			if !deleted[victim.Key()] {
				deleted[victim.Key()] = true
				records = append(records, victim.At(ts).AsDeletion())
			}
		}
	}
	return records, deleted
}

// survivorsOf filters base down to the edges never deleted, keeping their
// insertion timestamps — the ground-truth turnstile graph.
func survivorsOf(base []graph.Edge, deleted map[uint64]bool) []graph.Edge {
	var out []graph.Edge
	for i, e := range base {
		if !deleted[e.Key()] {
			out = append(out, e.At(uint64(i+1)))
		}
	}
	return out
}

// TestWindowedQueryExactWhenSaturated: with pane capacity above the stream
// size nothing is ever evicted (every q = 1), so a window query must return
// the *exact* triangle/wedge/edge counts of the surviving in-window
// subgraph — across several window widths, with rotations, deletions and a
// late arrival in play. This pins the full query path (pane retention,
// boundary trimming by stored event time, merge, HT estimation) against
// exact.Windowed ground truth.
func TestWindowedQueryExactWhenSaturated(t *testing.T) {
	base := dedupeEdges(gen.HolmeKim(120, 4, 0.5, 0x51D))
	records, deleted := turnstileWindowStream(base, 40)
	span := uint64(len(base))

	w, err := NewWindowed(WindowConfig{
		Capacity:  len(base) + 50,
		Seed:      7,
		Shards:    2,
		PaneWidth: span / 12,
		Window:    span / 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Feed in uneven chunks so pane crossings land mid-batch.
	for i := 0; i < len(records); i += 37 {
		end := i + 37
		if end > len(records) {
			end = len(records)
		}
		if err := w.ProcessBatch(records[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := w.Processed(), uint64(len(records)); got != want {
		t.Fatalf("Processed = %d, want %d", got, want)
	}
	if got := w.Horizon(); got != span {
		t.Fatalf("Horizon = %d, want %d", got, span)
	}

	survivors := survivorsOf(base, deleted)
	for _, win := range []uint64{w.cfg.Window, w.cfg.Window / 2, w.cfg.PaneWidth + 3} {
		est, err := w.Query(win)
		if err != nil {
			t.Fatal(err)
		}
		wantEdges, wantTri, wantWedge := exact.Windowed(survivors, win, span)
		if est.Triangles != float64(wantTri) || est.Wedges != float64(wantWedge) || est.Edges != float64(wantEdges) {
			t.Fatalf("window %d: estimates (tri=%v wedge=%v edges=%v), exact (%d, %d, %d)",
				win, est.Triangles, est.Wedges, est.Edges, wantTri, wantWedge, wantEdges)
		}
		if est.Window != win || est.Horizon != span {
			t.Fatalf("window %d: geometry = (%d, %d), want (%d, %d)", win, est.Window, est.Horizon, win, span)
		}
	}

	// A late arrival — event time far behind the live pane — must still
	// count toward exactly the windows its stored timestamp belongs to.
	late := graph.NewEdgeAt(2000, 2001, span-w.cfg.PaneWidth)
	if err := w.ProcessBatch([]graph.Edge{late}); err != nil {
		t.Fatal(err)
	}
	est, err := w.Query(w.cfg.Window)
	if err != nil {
		t.Fatal(err)
	}
	wantWide, _, _ := exact.Windowed(append(survivors, late), w.cfg.Window, span)
	if est.Edges != float64(wantWide) {
		t.Fatalf("late arrival not counted: edges %v, want %d", est.Edges, wantWide)
	}
	// ... and not toward a window too narrow to contain it: the stored event
	// time, not the pane it physically landed in, decides membership.
	narrow := span - late.TS // window ending at span that excludes TS = late.TS
	estNarrow, err := w.Query(narrow)
	if err != nil {
		t.Fatal(err)
	}
	wantNarrow, _, _ := exact.Windowed(survivors, narrow, span)
	if estNarrow.Edges != float64(wantNarrow) {
		t.Fatalf("late arrival leaked into a narrow window: edges %v, want %d", estNarrow.Edges, wantNarrow)
	}
}

// TestWindowedDeterministic: the whole windowed run — rotations, deletion
// fan-out, query merge — is a pure function of (Seed, stream order,
// Shards); a second run over the same records must answer every query with
// identical bits.
func TestWindowedDeterministic(t *testing.T) {
	base := dedupeEdges(gen.HolmeKim(300, 5, 0.4, 0xDE7))
	records, _ := turnstileWindowStream(base, 60)
	span := uint64(len(base))
	cfg := WindowConfig{Capacity: 150, Weight: core.TriangleWeight, Seed: 99, Shards: 3,
		PaneWidth: span / 10, Window: span / 2}

	run := func() (WindowEstimates, WindowEstimates) {
		w, err := NewWindowed(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		for i := 0; i < len(records); i += 53 {
			end := i + 53
			if end > len(records) {
				end = len(records)
			}
			if err := w.ProcessBatch(records[i:end]); err != nil {
				t.Fatal(err)
			}
		}
		full, err := w.Query(0)
		if err != nil {
			t.Fatal(err)
		}
		half, err := w.Query(cfg.Window / 2)
		if err != nil {
			t.Fatal(err)
		}
		return full, half
	}
	f1, h1 := run()
	f2, h2 := run()
	if f1 != f2 || h1 != h2 {
		t.Fatalf("windowed run not deterministic:\n%+v\n%+v\n%+v\n%+v", f1, f2, h1, h2)
	}
	if f1.Window != cfg.Window {
		t.Fatalf("Query(0) used window %d, want the configured maximum %d", f1.Window, cfg.Window)
	}
}

// TestWindowedRetentionBound: the pane chain stays bounded by the window
// geometry no matter how long the stream runs — retired panes that can no
// longer intersect any admissible window are dropped at rotation.
func TestWindowedRetentionBound(t *testing.T) {
	w, err := NewWindowed(WindowConfig{Capacity: 32, Seed: 5, Shards: 1, PaneWidth: 10, Window: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	maxPanes := int(w.cfg.Window/w.cfg.PaneWidth) + 2 // in-window panes + boundary + live
	rng := randx.New(0xBEE)
	for ts := uint64(1); ts < 2000; ts++ {
		u := graph.NodeID(rng.Intn(500))
		v := graph.NodeID(rng.Intn(500))
		if u == v {
			continue
		}
		if err := w.ProcessBatch([]graph.Edge{graph.NewEdgeAt(u, v, ts)}); err != nil {
			t.Fatal(err)
		}
		if got := w.Panes(); got > maxPanes {
			t.Fatalf("at ts=%d: %d panes retained, bound is %d", ts, got, maxPanes)
		}
	}
	if got := w.Panes(); got < 4 {
		t.Fatalf("final pane count %d — retention dropped panes still inside the window", got)
	}
}

// TestWindowedCrashRestartEquivalence is the durability tentpole for
// windowed runs: checkpoint → restore must be invisible — the restored
// chain answers queries bit-identically, evolves bit-identically through
// the identical turnstile suffix, and re-encodes byte-identically. The
// triangle case guards the event-time round trip: pane samplers write v3
// documents, and if those dropped stored TS values (as they once did) the
// restored chain could never trim rotated panes, so post-suffix window
// queries would silently diverge.
func TestWindowedCrashRestartEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name   string
		weight core.WeightFunc
	}{{"uniform", nil}, {"triangle", core.TriangleWeight}} {
		t.Run(tc.name, func(t *testing.T) {
			base := dedupeEdges(gen.HolmeKim(250, 5, 0.4, 0xC5A))
			records, _ := turnstileWindowStream(base, 50)
			span := uint64(len(base))
			cfg := WindowConfig{Capacity: 120, Weight: tc.weight, Seed: 41,
				Shards: 2, PaneWidth: span / 8, Window: span / 2}

			w, err := NewWindowed(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cut := (len(records) * 2) / 3
			if err := w.ProcessBatch(records[:cut]); err != nil {
				t.Fatal(err)
			}

			var doc bytes.Buffer
			pos, err := w.WriteCheckpoint(&doc, tc.name)
			if err != nil {
				t.Fatal(err)
			}
			if pos != uint64(cut) {
				t.Fatalf("checkpoint position = %d, want %d", pos, cut)
			}

			// Byte idempotence: restore → re-checkpoint reproduces the document.
			restored, weightName, err := ReadWindowedCheckpoint(bytes.NewReader(doc.Bytes()), nil)
			if err != nil {
				t.Fatal(err)
			}
			if weightName != tc.name {
				t.Fatalf("restored weight %q, want %q", weightName, tc.name)
			}
			var again bytes.Buffer
			if _, err := restored.WriteCheckpoint(&again, tc.name); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(doc.Bytes(), again.Bytes()) {
				t.Fatalf("window checkpoint not byte-idempotent: %d vs %d bytes", doc.Len(), again.Len())
			}
			if restored.Processed() != uint64(cut) || restored.Panes() != w.Panes() || restored.Horizon() != w.Horizon() {
				t.Fatalf("restored geometry (pos=%d panes=%d horizon=%d) != original (%d, %d, %d)",
					restored.Processed(), restored.Panes(), restored.Horizon(), w.Processed(), w.Panes(), w.Horizon())
			}

			// Both chains consume the identical suffix and must stay
			// bit-identical: same query answers, same deletion counters, same
			// re-checkpoint bytes.
			for _, chain := range []*Windowed{w, restored} {
				if err := chain.ProcessBatch(records[cut:]); err != nil {
					t.Fatal(err)
				}
			}
			defer w.Close()
			defer restored.Close()
			for _, win := range []uint64{0, cfg.Window / 2} {
				a, err := w.Query(win)
				if err != nil {
					t.Fatal(err)
				}
				b, err := restored.Query(win)
				if err != nil {
					t.Fatal(err)
				}
				if a != b {
					t.Fatalf("window %d: queries diverged after restore:\n%+v\n%+v", win, a, b)
				}
			}
			aA, aU := w.Deletions()
			bA, bU := restored.Deletions()
			if aA != bA || aU != bU {
				t.Fatalf("deletion counters diverged: %d/%d vs %d/%d", aA, aU, bA, bU)
			}
			var fin1, fin2 bytes.Buffer
			if _, err := w.WriteCheckpoint(&fin1, tc.name); err != nil {
				t.Fatal(err)
			}
			if _, err := restored.WriteCheckpoint(&fin2, tc.name); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fin1.Bytes(), fin2.Bytes()) {
				t.Fatal("final checkpoints differ: restored chain did not evolve bit-identically")
			}
		})
	}
}

// TestWindowedCheckpointRejectsCorruption: the window container decoder
// must reject structural lies without panicking — truncation, flipped
// bytes, pane indices out of order, and geometry disagreements.
func TestWindowedCheckpointRejectsCorruption(t *testing.T) {
	base := dedupeEdges(gen.HolmeKim(150, 4, 0.4, 0x0BAD))
	records, _ := turnstileWindowStream(base, 30)
	span := uint64(len(base))
	w, err := NewWindowed(WindowConfig{Capacity: 60, Seed: 3, Shards: 2, PaneWidth: span / 6, Window: span / 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ProcessBatch(records); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := w.WriteCheckpoint(&buf, "uniform"); err != nil {
		t.Fatal(err)
	}
	w.Close()
	doc := buf.Bytes()

	if _, _, err := ReadWindowedCheckpoint(bytes.NewReader(doc), nil); err != nil {
		t.Fatalf("pristine document rejected: %v", err)
	}
	for _, cut := range []int{1, 8, len(doc) / 2, len(doc) - 1} {
		if _, _, err := ReadWindowedCheckpoint(bytes.NewReader(doc[:cut]), nil); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for _, flip := range []int{5, 9, len(doc) / 3, len(doc) - 2} {
		bad := append([]byte(nil), doc...)
		bad[flip] ^= 0x40
		if wr, _, err := ReadWindowedCheckpoint(bytes.NewReader(bad), nil); err == nil {
			// A flip inside an embedded document's padding may be caught by
			// that document's own checksum only; acceptance is a failure.
			wr.Close()
			t.Fatalf("byte flip at %d accepted", flip)
		}
	}
}

// TestWindowedValidation: config and query validation errors.
func TestWindowedValidation(t *testing.T) {
	bad := []WindowConfig{
		{Capacity: 0, PaneWidth: 10, Window: 100},
		{Capacity: 10, PaneWidth: 0, Window: 100},
		{Capacity: 10, PaneWidth: 10, Window: 0},
		{Capacity: 10, PaneWidth: 100, Window: 50}, // window below one pane
	}
	for i, cfg := range bad {
		if _, err := NewWindowed(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
	w, err := NewWindowed(WindowConfig{Capacity: 10, Seed: 1, Shards: 1, PaneWidth: 10, Window: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Query(101); err == nil {
		t.Fatal("query beyond the configured window accepted")
	}
	w.Close()
	w.Close() // idempotent
	if err := w.ProcessBatch([]graph.Edge{graph.NewEdge(1, 2)}); err == nil {
		t.Fatal("ProcessBatch accepted on closed Windowed")
	}
	if _, err := w.Query(0); err == nil {
		t.Fatal("Query accepted on closed Windowed")
	}
	if _, err := w.WriteCheckpoint(&bytes.Buffer{}, "uniform"); err == nil {
		t.Fatal("WriteCheckpoint accepted on closed Windowed")
	}
}

// windowedBound is one committed NRMSE tolerance for the windowed
// estimators at a given sample size.
type windowedBound struct {
	m                 int
	tri, wedge, edges float64
}

// TestWindowedEstimatorAccuracyNRMSE pins the sliding-window estimators
// against exact windowed ground truth on a clustered turnstile stream
// (timestamps = positions, ~1/8 of inserts later deleted): NRMSE of the
// per-trial estimate/exact ratios across permutations must stay under
// bounds committed at roughly 2x the observed error.
func TestWindowedEstimatorAccuracyNRMSE(t *testing.T) {
	base := dedupeEdges(gen.HolmeKim(2000, 8, 0.3, 0x217))
	span := uint64(len(base))
	window := span / 4
	const trials = 3

	bounds := []windowedBound{
		{m: 1_000, tri: 0.80, wedge: 0.30, edges: 0.10},
		{m: 4_000, tri: 0.30, wedge: 0.12, edges: 0.05},
	}
	for _, b := range bounds {
		ratios := map[string][]float64{}
		for trial := 0; trial < trials; trial++ {
			perm := append([]graph.Edge(nil), base...)
			randx.New(0x217A+uint64(trial)).Shuffle(len(perm), func(i, j int) {
				perm[i], perm[j] = perm[j], perm[i]
			})
			records, deleted := turnstileWindowStream(perm, 200)
			survivors := survivorsOf(perm, deleted)
			wantEdges, wantTri, wantWedge := exact.Windowed(survivors, window, span)
			if wantTri <= 0 || wantWedge <= 0 || wantEdges <= 0 {
				t.Fatalf("degenerate windowed ground truth (%d, %d, %d)", wantEdges, wantTri, wantWedge)
			}

			w, err := NewWindowed(WindowConfig{
				Capacity:  b.m,
				Weight:    core.TriangleWeight,
				Seed:      0x217B + uint64(trial),
				Shards:    2,
				PaneWidth: window / 4,
				Window:    window,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := w.ProcessBatch(records); err != nil {
				t.Fatal(err)
			}
			est, err := w.Query(window)
			if err != nil {
				t.Fatal(err)
			}
			w.Close()
			ratios["triangles"] = append(ratios["triangles"], est.Triangles/float64(wantTri))
			ratios["wedges"] = append(ratios["wedges"], est.Wedges/float64(wantWedge))
			ratios["edges"] = append(ratios["edges"], est.Edges/float64(wantEdges))
		}
		for motif, bound := range map[string]float64{"triangles": b.tri, "wedges": b.wedge, "edges": b.edges} {
			nrmse := stats.NRMSE(ratios[motif], 1)
			t.Logf("m=%d %s NRMSE %.4f (bound %.3f) ratios %v", b.m, motif, nrmse, bound, ratios[motif])
			if math.IsNaN(nrmse) || nrmse > bound {
				t.Errorf("m=%d %s NRMSE %.4f exceeds committed bound %.3f", b.m, motif, nrmse, bound)
			}
		}
	}
}

package engine

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"gps/internal/core"
	"gps/internal/graph"
	"gps/internal/randx"
)

// mergedState reduces a Merge result to its GPSC serialization — the
// strongest equality available: reservoir membership, weights, priorities,
// covariance accumulators, heap order, threshold, counters and RNG state
// all land in the bytes, so two equal serializations are samplers that will
// evolve bit-identically forever.
func mergedState(t *testing.T, p *Parallel) []byte {
	t.Helper()
	m, err := p.Merge()
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	var buf bytes.Buffer
	if err := m.WriteCheckpoint(&buf, "test"); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	return buf.Bytes()
}

// TestBatchGroupingMatchesPerEdgeRouting is the router's bit-exactness
// contract: one engine fed through ProcessBatch with randomized batch sizes
// (through a deliberately tiny ring, so appends wrap and chunk) must be
// bit-identical to a twin fed the same stream one edge at a time — same
// merged reservoir, weights, priorities, threshold — with interleaved
// barriers (Arrivals, Snapshot) not disturbing either.
func TestBatchGroupingMatchesPerEdgeRouting(t *testing.T) {
	for _, tc := range []struct {
		name  string
		decay core.Decay
	}{
		{"undecayed", core.Decay{}},
		{"decayed", core.Decay{HalfLife: 5000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			edges := testStream(3000, 12000, 0x71)
			cfg := core.Config{Capacity: 500, Weight: core.TriangleWeight, Seed: 0xBEEF, Decay: tc.decay}

			batched, err := newParallel(cfg, 4, 64) // tiny ring: forces wraparound and chunked appends
			if err != nil {
				t.Fatal(err)
			}
			defer batched.Close()
			perEdge, err := NewParallel(cfg, 4)
			if err != nil {
				t.Fatal(err)
			}
			defer perEdge.Close()

			rng := randx.New(0x1234)
			for off := 0; off < len(edges); {
				n := int(rng.Uint64() % 200) // includes 0 (empty batch) and > ring capacity
				if off+n > len(edges) {
					n = len(edges) - off
				}
				batched.ProcessBatch(edges[off : off+n])
				off += n
				if rng.Uint64()%16 == 0 {
					batched.Arrivals() // barrier mid-stream
				}
				if rng.Uint64()%32 == 0 {
					if _, err := batched.Snapshot(); err != nil {
						t.Fatal(err)
					}
				}
			}
			for _, e := range edges {
				perEdge.Process(e)
			}

			if got, want := mergedState(t, batched), mergedState(t, perEdge); !bytes.Equal(got, want) {
				t.Fatalf("batched routing merged state (%d bytes) differs from per-edge routing (%d bytes)",
					len(got), len(want))
			}
		})
	}
}

// TestConcurrentShardDisjointProducersDeterministic pins the concurrency
// contract: producers whose edge sets route to disjoint shards may feed the
// engine concurrently and the result is still bit-identical to one
// producer feeding the whole stream in order (per-shard order is stream
// order either way). Runs with decay too — with an explicit landmark and
// pre-stamped event times the decayed run is equally order-insensitive.
// With -race this doubles as the router's data-race suite.
func TestConcurrentShardDisjointProducersDeterministic(t *testing.T) {
	const shards = 4
	edges := testStream(2500, 10000, 0x99)
	for _, tc := range []struct {
		name  string
		decay core.Decay
		stamp bool
	}{
		{"undecayed", core.Decay{}, false},
		{"decayed", core.Decay{HalfLife: 4000, Landmark: 1}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			stream := edges
			if tc.stamp {
				stream = make([]graph.Edge, len(edges))
				copy(stream, edges)
				for i := range stream {
					stream[i].TS = uint64(i + 1)
				}
			}
			cfg := core.Config{Capacity: 400, Seed: 0xD00D, Decay: tc.decay}

			sequential, err := NewParallel(cfg, shards)
			if err != nil {
				t.Fatal(err)
			}
			defer sequential.Close()
			sequential.ProcessBatch(stream)
			want := mergedState(t, sequential)

			concurrent, err := newParallel(cfg, shards, 128)
			if err != nil {
				t.Fatal(err)
			}
			defer concurrent.Close()
			// Partition by owning shard, preserving stream order per shard.
			parts := make([][]graph.Edge, shards)
			for _, e := range stream {
				s := concurrent.ShardOf(e)
				parts[s] = append(parts[s], e)
			}
			var wg sync.WaitGroup
			for pi, part := range parts {
				wg.Add(1)
				go func(pi int, part []graph.Edge) {
					defer wg.Done()
					rng := randx.New(uint64(pi) * 7779)
					for off := 0; off < len(part); {
						n := 1 + int(rng.Uint64()%300)
						if off+n > len(part) {
							n = len(part) - off
						}
						concurrent.ProcessBatch(part[off : off+n])
						off += n
					}
				}(pi, part)
			}
			wg.Wait()

			if got := mergedState(t, concurrent); !bytes.Equal(got, want) {
				t.Fatalf("concurrent shard-disjoint producers merged state differs from sequential feeding")
			}
		})
	}
}

// TestRingOrderAndWraparound drives a tiny ring directly: every appended
// edge must come out exactly once, in append order, across wraparounds and
// chunked oversized batches.
func TestRingOrderAndWraparound(t *testing.T) {
	r := newRing(16)
	var got []graph.Edge
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.consume(func(es []graph.Edge) {
			got = append(got, es...)
			time.Sleep(50 * time.Microsecond) // keep the ring filling up
		})
	}()
	const n = 1000
	rng := randx.New(42)
	var sent []graph.Edge
	for i := 0; len(sent) < n; i++ {
		batch := make([]graph.Edge, 1+rng.Uint64()%40) // often larger than the ring
		for j := range batch {
			e := graph.Edge{U: graph.NodeID(len(sent) + j + 1), V: graph.NodeID(len(sent) + j + 2)}
			batch[j] = e
		}
		sent = append(sent, batch...)
		r.append(batch)
	}
	r.drainWait()
	if d := r.depth(); d != 0 {
		t.Fatalf("depth %d after drainWait", d)
	}
	r.close()
	<-done
	if len(got) != len(sent) {
		t.Fatalf("consumed %d edges, sent %d", len(got), len(sent))
	}
	for i := range sent {
		if got[i] != sent[i] {
			t.Fatalf("edge %d: got %v, want %v", i, got[i], sent[i])
		}
	}
	if r.stalls.Load() == 0 {
		t.Error("expected producer stalls on a 16-slot ring under a slow consumer")
	}
}

// TestRingCapacityValidation pins the power-of-two requirement.
func TestRingCapacityValidation(t *testing.T) {
	for _, bad := range []int{0, -1, 3, 24, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("newRing(%d) did not panic", bad)
				}
			}()
			newRing(bad)
		}()
	}
	newRing(1)
	newRing(1 << 10)
}

// TestRingStatsGauges checks the monitoring surface: after a barrier the
// backlog is zero, epochs cover every routed edge, and a tiny-ring engine
// under load reports producer stalls.
func TestRingStatsGauges(t *testing.T) {
	cfg := core.Config{Capacity: 200, Seed: 7}
	p, err := newParallel(cfg, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	edges := testStream(1500, 6000, 0x31)
	p.ProcessBatch(edges)
	arrivals := p.Arrivals() // barrier
	st := p.RingStats()
	if st.Capacity != 32 {
		t.Errorf("Capacity = %d, want 32", st.Capacity)
	}
	if st.Backlog != 0 {
		t.Errorf("Backlog = %d after barrier, want 0", st.Backlog)
	}
	var routed uint64
	for _, e := range st.Epochs {
		routed += e
	}
	if routed != uint64(len(edges)) {
		t.Errorf("epochs sum %d, want %d routed edges", routed, len(edges))
	}
	if arrivals > uint64(len(edges)) {
		t.Errorf("arrivals %d exceeds routed edges %d", arrivals, len(edges))
	}
	if len(st.Depths) != 4 || len(st.Epochs) != 4 {
		t.Errorf("expected 4 shard gauges, got %d/%d", len(st.Depths), len(st.Epochs))
	}
}

package engine

import (
	"sync"
	"testing"

	"gps/internal/core"
)

// TestSnapshotMatchesMerge verifies the snapshot identity: at any batch
// boundary, Snapshot returns a sampler bit-identical to Merge at the same
// stream position, and neither disturbs subsequent processing.
func TestSnapshotMatchesMerge(t *testing.T) {
	stream := testStream(500, 6000, 0xD00D)
	for _, weight := range []core.WeightFunc{nil, core.TriangleWeight} {
		p, err := NewParallel(core.Config{Capacity: 400, Weight: weight, Seed: 11}, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, cut := range []int{2000, 4000, len(stream)} {
			prev := 0
			if cut > 2000 {
				prev = map[int]int{4000: 2000, len(stream): 4000}[cut]
			}
			p.ProcessBatch(stream[prev:cut])
			snap, err := p.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			merged, err := p.Merge()
			if err != nil {
				t.Fatal(err)
			}
			ks, zs, as := signature(t, snap)
			km, zm, am := signature(t, merged)
			if zs != zm || as != am || len(ks) != len(km) {
				t.Fatalf("cut %d: snapshot != merge (z %v vs %v, arrivals %d vs %d, len %d vs %d)",
					cut, zs, zm, as, am, len(ks), len(km))
			}
			for i := range ks {
				if ks[i] != km[i] {
					t.Fatalf("cut %d: snapshot and merge disagree at edge %d", cut, i)
				}
			}
			if core.EstimatePost(snap) != core.EstimatePost(merged) {
				t.Fatalf("cut %d: snapshot and merge estimates disagree", cut)
			}
		}
		p.Close()
	}
}

// TestSnapshotConcurrentWithIngest is the service-concurrency test: one
// goroutine feeds fixed-size batches while several others take snapshots.
// Every snapshot must land exactly on a batch boundary (batches are atomic
// w.r.t. snapshots) and must be bit-identical to a deterministic replay of
// the same prefix through a fresh Parallel. Run under -race this also
// proves Snapshot and ProcessBatch share no unsynchronized state.
func TestSnapshotConcurrentWithIngest(t *testing.T) {
	const (
		batch    = 256
		capacity = 300
		shards   = 4
		seed     = 21
	)
	stream := testStream(400, 5000, 0xCAFE)
	cfg := core.Config{Capacity: capacity, Seed: seed}
	p, err := NewParallel(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}

	type observed struct {
		arrivals uint64
		keys     []uint64
		z        float64
		est      core.Estimates
	}
	var (
		mu   sync.Mutex
		seen = map[uint64]observed{}
	)
	record := func(snap *core.Sampler) {
		keys, z, arrivals := signature(t, snap)
		if arrivals%batch != 0 && arrivals != uint64(len(stream)) {
			t.Errorf("snapshot at arrivals %d: not a batch boundary", arrivals)
			return
		}
		mu.Lock()
		if _, ok := seen[arrivals]; !ok {
			seen[arrivals] = observed{arrivals: arrivals, keys: keys, z: z, est: core.EstimatePost(snap)}
		}
		mu.Unlock()
	}
	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap, err := p.Snapshot()
				if err != nil {
					t.Error(err)
					return
				}
				record(snap)
			}
		}()
	}
	for lo, i := 0, 0; lo < len(stream); lo, i = lo+batch, i+1 {
		hi := lo + batch
		if hi > len(stream) {
			hi = len(stream)
		}
		p.ProcessBatch(stream[lo:hi])
		if i%4 == 3 {
			// The feeder itself also snapshots, guaranteeing observations
			// spread across the stream even when the reader goroutines are
			// outpaced; these run concurrently with the readers' snapshots.
			snap, err := p.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			record(snap)
		}
	}
	close(done)
	readers.Wait()
	// A final snapshot so the full stream is always among the observations.
	snap, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	record(snap)
	p.Close()

	if len(seen) < 2 {
		t.Fatalf("only %d distinct snapshot positions observed", len(seen))
	}
	// Deterministic replay: a fresh Parallel fed exactly the same prefix
	// must reproduce every observed snapshot bit-for-bit.
	for _, o := range seen {
		ref, err := NewParallel(cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		ref.ProcessBatch(stream[:o.arrivals])
		m, err := ref.Merge()
		if err != nil {
			t.Fatal(err)
		}
		rk, rz, ra := signature(t, m)
		if rz != o.z || ra != o.arrivals || len(rk) != len(o.keys) {
			t.Fatalf("replay at %d diverges: z %v vs %v, len %d vs %d", o.arrivals, rz, o.z, len(rk), len(o.keys))
		}
		for i := range rk {
			if rk[i] != o.keys[i] {
				t.Fatalf("replay at %d diverges at sampled edge %d", o.arrivals, i)
			}
		}
		if est := core.EstimatePost(m); est != o.est {
			t.Fatalf("replay at %d: estimates diverge: %+v vs %+v", o.arrivals, est, o.est)
		}
		ref.Close()
	}
}

// TestSnapshotExactForUniformUndersampled pins the estimator-level
// guarantee: with uniform weights and capacity at least the stream length
// nothing is ever evicted, so a snapshot's post-stream estimates equal a
// sequential sampler's on the identical prefix — exactly, not just in
// distribution.
func TestSnapshotExactForUniformUndersampled(t *testing.T) {
	stream := testStream(200, 1500, 0xF00)
	p, err := NewParallel(core.Config{Capacity: 2000, Seed: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for _, cut := range []int{512, 1024, len(stream)} {
		prev := map[int]int{512: 0, 1024: 512, len(stream): 1024}[cut]
		p.ProcessBatch(stream[prev:cut])
		snap, err := p.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		seq, err := core.NewSampler(core.Config{Capacity: 2000, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range stream[:cut] {
			seq.Process(e)
		}
		if got, want := core.EstimatePost(snap), core.EstimatePost(seq); got != want {
			t.Fatalf("cut %d: snapshot estimates %+v != sequential %+v", cut, got, want)
		}
	}
}

// TestParallelClosedBehavior locks in the documented after-Close contract:
// Merge and Snapshot error, Process and ProcessBatch panic (never hang).
func TestParallelClosedBehavior(t *testing.T) {
	stream := testStream(100, 500, 0xAB)
	p, err := NewParallel(core.Config{Capacity: 50, Seed: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.ProcessBatch(stream)
	p.Close()
	p.Close() // idempotent

	if _, err := p.Merge(); err == nil {
		t.Error("Merge after Close did not error")
	}
	if _, err := p.Snapshot(); err == nil {
		t.Error("Snapshot after Close did not error")
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s after Close did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Process", func() { p.Process(stream[0]) })
	mustPanic("ProcessBatch", func() { p.ProcessBatch(stream[:2]) })
}

// TestMergeRepeatable verifies Merge is a pure read: back-to-back merges
// with no processing in between return identical samplers, and merging
// never perturbs subsequent processing.
func TestMergeRepeatable(t *testing.T) {
	stream := testStream(300, 3000, 0xEE)
	p, err := NewParallel(core.Config{Capacity: 200, Seed: 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.ProcessBatch(stream[:1500])
	m1, err := p.Merge()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := p.Merge()
	if err != nil {
		t.Fatal(err)
	}
	k1, z1, a1 := signature(t, m1)
	k2, z2, a2 := signature(t, m2)
	if z1 != z2 || a1 != a2 || len(k1) != len(k2) {
		t.Fatalf("repeated merges disagree: z %v vs %v, arrivals %d vs %d", z1, z2, a1, a2)
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("repeated merges disagree at edge %d", i)
		}
	}
	// Processing the rest after two merges must match a merge-free run.
	p.ProcessBatch(stream[1500:])
	mEnd, err := p.Merge()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewParallel(core.Config{Capacity: 200, Seed: 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	ref.ProcessBatch(stream)
	mRef, err := ref.Merge()
	if err != nil {
		t.Fatal(err)
	}
	ke, ze, ae := signature(t, mEnd)
	kr, zr, ar := signature(t, mRef)
	if ze != zr || ae != ar || len(ke) != len(kr) {
		t.Fatalf("merge-interleaved run diverges from merge-free run")
	}
	for i := range ke {
		if ke[i] != kr[i] {
			t.Fatalf("merge-interleaved run diverges at edge %d", i)
		}
	}
}

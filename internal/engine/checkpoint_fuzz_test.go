package engine

import (
	"bytes"
	"testing"

	"gps/internal/core"
)

// FuzzEngineCheckpointDecoder exercises the engine container decoder with
// arbitrary input: it must never panic, never allocate from a forged shard
// count (shards materialize only as their blobs actually parse), and any
// accepted document must describe a working engine — pinned by
// re-checkpointing it and decoding the result.
func FuzzEngineCheckpointDecoder(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("GPSC\x01\x02"))
	f.Add([]byte("GPSC\x01\x01"))
	// Real engine checkpoints as seeds: empty, and mid-stream at two shard
	// counts.
	for _, tc := range []struct {
		shards   int
		edges    int
		halfLife float64
		timed    bool
	}{{1, 0, 0, false}, {2, 3000, 0, false}, {4, 3000, 0, false},
		{2, 3000, 500, true}, {4, 3000, 800, false}} { // v2 seeds: timed + arrival-order decay
		p, err := NewParallel(core.Config{Capacity: 200, Seed: 13,
			Decay: core.Decay{HalfLife: tc.halfLife}}, tc.shards)
		if err != nil {
			f.Fatal(err)
		}
		if tc.edges > 0 {
			es := testStream(400, tc.edges, 0xF5)
			if tc.timed {
				for i := range es {
					es[i].TS = uint64(10 + i)
				}
			}
			p.ProcessBatch(es)
		}
		var buf bytes.Buffer
		if _, err := p.WriteCheckpoint(&buf, "uniform"); err != nil {
			f.Fatal(err)
		}
		p.Close()
		f.Add(buf.Bytes())
	}

	f.Fuzz(func(t *testing.T, input []byte) {
		p, _, err := ReadParallelCheckpoint(bytes.NewReader(input), nil)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := p.WriteCheckpoint(&buf, "w"); err != nil {
			t.Fatalf("re-encode of accepted engine document: %v", err)
		}
		again, _, err := ReadParallelCheckpoint(&buf, func(string) (core.WeightFunc, error) { return nil, nil })
		if err != nil {
			t.Fatalf("re-decode of accepted engine document: %v", err)
		}
		if again.Shards() != p.Shards() || again.Capacity() != p.Capacity() ||
			again.Processed() != p.Processed() {
			t.Fatal("round trip changed engine state")
		}
		again.Close()
		p.Close()
	})
}

package engine

import (
	"bytes"
	"testing"

	"gps/internal/core"
)

// FuzzEngineCheckpointDecoder exercises the engine container decoder with
// arbitrary input: it must never panic, never allocate from a forged shard
// count (shards materialize only as their blobs actually parse), and any
// accepted document must describe a working engine — pinned by
// re-checkpointing it and decoding the result.
func FuzzEngineCheckpointDecoder(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("GPSC\x01\x02"))
	f.Add([]byte("GPSC\x01\x01"))
	// Real engine checkpoints as seeds: empty, and mid-stream at two shard
	// counts.
	for _, tc := range []struct {
		shards   int
		edges    int
		halfLife float64
		timed    bool
	}{{1, 0, 0, false}, {2, 3000, 0, false}, {4, 3000, 0, false},
		{2, 3000, 500, true}, {4, 3000, 800, false}} { // v2 seeds: timed + arrival-order decay
		p, err := NewParallel(core.Config{Capacity: 200, Seed: 13,
			Decay: core.Decay{HalfLife: tc.halfLife}}, tc.shards)
		if err != nil {
			f.Fatal(err)
		}
		if tc.edges > 0 {
			es := testStream(400, tc.edges, 0xF5)
			if tc.timed {
				for i := range es {
					es[i].TS = uint64(10 + i)
				}
			}
			p.ProcessBatch(es)
		}
		var buf bytes.Buffer
		if _, err := p.WriteCheckpoint(&buf, "uniform"); err != nil {
			f.Fatal(err)
		}
		p.Close()
		f.Add(buf.Bytes())
	}

	// GPSC window-container seeds (KindWindow, v3): a windowed run with
	// rotated panes and turnstile deletions, plus a fresh one.
	f.Add([]byte("GPSC\x03\x04"))
	for _, rotated := range []bool{false, true} {
		w, err := NewWindowed(WindowConfig{Capacity: 64, Seed: 31, Shards: 2, PaneWidth: 50, Window: 150})
		if err != nil {
			f.Fatal(err)
		}
		if rotated {
			es := testStream(200, 1200, 0xAB)
			for i := range es {
				es[i].TS = uint64(10 + i)
				if i%9 == 7 {
					es[i] = es[i-2].At(es[i].TS).AsDeletion()
				}
			}
			if err := w.ProcessBatch(es); err != nil {
				f.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if _, err := w.WriteCheckpoint(&buf, "uniform"); err != nil {
			f.Fatal(err)
		}
		w.Close()
		f.Add(buf.Bytes())
	}

	f.Fuzz(func(t *testing.T, input []byte) {
		if p, _, err := ReadParallelCheckpoint(bytes.NewReader(input), nil); err == nil {
			var buf bytes.Buffer
			if _, err := p.WriteCheckpoint(&buf, "w"); err != nil {
				t.Fatalf("re-encode of accepted engine document: %v", err)
			}
			again, _, err := ReadParallelCheckpoint(&buf, func(string) (core.WeightFunc, error) { return nil, nil })
			if err != nil {
				t.Fatalf("re-decode of accepted engine document: %v", err)
			}
			if again.Shards() != p.Shards() || again.Capacity() != p.Capacity() ||
				again.Processed() != p.Processed() {
				t.Fatal("round trip changed engine state")
			}
			again.Close()
			p.Close()
		}
		if w, _, err := ReadWindowedCheckpoint(bytes.NewReader(input), nil); err == nil {
			var buf bytes.Buffer
			if _, err := w.WriteCheckpoint(&buf, "w"); err != nil {
				t.Fatalf("re-encode of accepted window document: %v", err)
			}
			again, _, err := ReadWindowedCheckpoint(&buf, func(string) (core.WeightFunc, error) { return nil, nil })
			if err != nil {
				t.Fatalf("re-decode of accepted window document: %v", err)
			}
			if again.Panes() != w.Panes() || again.Processed() != w.Processed() ||
				again.Horizon() != w.Horizon() {
				t.Fatal("round trip changed window state")
			}
			again.Close()
			w.Close()
		}
	})
}

// Package engine provides the horizontal-scale layer of the GPS
// reproduction: a sharded sampler that hash-partitions an edge stream
// across per-goroutine GPS reservoirs and merges them on demand.
//
// # Design
//
// Each of the P shards owns a core.Sampler (capacity shardCapacity(m, P),
// its own RNG derived deterministically from the root seed) and a goroutine
// fed with edge batches over a channel. The partition function is a fixed
// hash of the canonical edge identity, so a given edge always lands on the
// same shard regardless of arrival order and the per-shard substreams are
// disjoint. Merging takes the union of the shard reservoirs, keeps the m
// highest priorities, and sets the merged threshold z* to the largest
// priority excluded anywhere (shard thresholds and merge-time drops) — the
// standard priority-sampling merge, performed by core.Merge.
//
// # Shard capacity and exactness
//
// Each shard's reservoir holds shardCapacity(m, P) = m/P plus a
// concentration-bound slack (8·√(m/P) + 64, capped at m) edges. The merge
// is exact whenever every edge of the global top-m survives its shard,
// i.e. no shard received more than its capacity's worth of the global
// top-m. Under hash partitioning the top-m spreads Binomial(m, 1/P) per
// shard, so the slack puts shard overflow ≥ 9 standard deviations out —
// for m = 100K, P = 4 the failure probability is below 1e-18 per run, and
// a failure merely swaps the sample's boundary edge. The slack also keeps
// the merged threshold exact: the union holds the global top-(m + P·slack)
// with the same probability, so the (m+1)-st highest priority of the union
// — which the merge promotes into z* — is the global (m+1)-st.
//
// For stream-independent weights (UniformWeight, or any W(k) ignoring the
// reservoir) the merged sample is therefore distributed as a sequential
// GPS(m) sample of the whole stream: priorities are independent of the
// partition, and "top-m of the union of per-shard top-k's" equals "top-m
// of the stream". For topology-dependent weights (TriangleWeight,
// AdjacencyWeight) each shard scores arrivals against its own partial
// reservoir, which holds ~1/P of the sampled topology, so weights — and
// therefore the variance-reduction targeting — are approximate; the
// Horvitz-Thompson normalization remains valid because each edge's stored
// weight is still the weight its priority was drawn with. This is the same
// trade Tiered Sampling and friends make to scale motif-aware sampling —
// and it is also why sharding pays even on few cores: every topology query
// runs against a P×-smaller sampled subgraph.
//
// Every run is a deterministic function of (seed, stream content, shard
// count): batching and goroutine scheduling cannot change any shard's
// arrival order, because order within a shard follows stream order.
package engine

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"gps/internal/core"
	"gps/internal/graph"
	"gps/internal/randx"
)

// DefaultBatch is the number of edges buffered per shard before a batch is
// handed to the shard goroutine. Large enough to amortize channel overhead
// to well under a nanosecond per edge, small enough to keep shards busy.
const DefaultBatch = 4096

// Parallel is a sharded GPS sampler. Feed it with Process/ProcessBatch
// from one producer goroutine, then call Merge (any number of times) for a
// sequential Sampler positioned over everything fed so far, and Close when
// done. Parallel is not safe for concurrent producers.
type Parallel struct {
	cfg       core.Config
	mergeSeed uint64
	batch     int
	shards    []*shard
	pool      sync.Pool // batch buffers: *[]graph.Edge
	wg        sync.WaitGroup
	closed    bool
}

type shard struct {
	ch chan message
	s  *core.Sampler
	// buf accumulates routed edges between flushes; owned by the producer.
	buf []graph.Edge
}

type message struct {
	edges []graph.Edge
	ack   chan<- struct{}
}

// NewParallel returns a sharded sampler with the given shard count;
// shards <= 0 means GOMAXPROCS. Weight functions must be pure (stateless):
// all shards share cfg.Weight and call it concurrently, so a stateful
// weight (e.g. NewAdaptiveTriangleWeight) must not be used here.
func NewParallel(cfg core.Config, shards int) (*Parallel, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Capacity < 1 {
		return nil, errors.New("engine: Capacity must be at least 1")
	}
	p := &Parallel{
		cfg:    cfg,
		batch:  DefaultBatch,
		shards: make([]*shard, shards),
	}
	p.pool.New = func() any {
		buf := make([]graph.Edge, 0, p.batch)
		return &buf
	}
	// Derive the per-shard seeds and the merge seed from the root seed so
	// the whole run is reproducible from cfg.Seed alone.
	seeds := randx.New(cfg.Seed)
	p.mergeSeed = seeds.Uint64()
	shardCap := shardCapacity(cfg.Capacity, shards)
	for i := range p.shards {
		scfg := cfg
		scfg.Capacity = shardCap
		scfg.Seed = seeds.Uint64()
		s, err := core.NewSampler(scfg)
		if err != nil {
			return nil, err
		}
		sh := &shard{
			ch:  make(chan message, 4),
			s:   s,
			buf: make([]graph.Edge, 0, p.batch),
		}
		p.shards[i] = sh
		p.wg.Add(1)
		go p.run(sh)
	}
	return p, nil
}

func (p *Parallel) run(sh *shard) {
	defer p.wg.Done()
	for m := range sh.ch {
		if m.edges != nil {
			sh.s.ProcessBatch(m.edges)
			buf := m.edges[:0]
			p.pool.Put(&buf)
		}
		if m.ack != nil {
			m.ack <- struct{}{}
		}
	}
}

// shardCapacity returns the per-shard reservoir size: an equal share of the
// global capacity plus enough slack that the global top-m overflows a shard
// with negligible probability (see the package comment).
func shardCapacity(m, shards int) int {
	if shards <= 1 {
		return m
	}
	share := (m + shards - 1) / shards
	c := share + 8*int(math.Sqrt(float64(share))) + 64
	if c > m {
		c = m
	}
	return c
}

// shardFor routes an edge to its shard: a splitmix-mixed hash of the
// canonical edge key, independent of arrival order.
func (p *Parallel) shardFor(e graph.Edge) *shard {
	return p.shards[randx.Mix64(e.Key())%uint64(len(p.shards))]
}

// Process routes one edge to its shard, flushing the shard's batch buffer
// when full.
func (p *Parallel) Process(e graph.Edge) {
	sh := p.shardFor(e)
	sh.buf = append(sh.buf, e)
	if len(sh.buf) >= p.batch {
		p.flush(sh)
	}
}

// ProcessBatch routes a batch of edges to their shards.
func (p *Parallel) ProcessBatch(edges []graph.Edge) {
	for _, e := range edges {
		p.Process(e)
	}
}

func (p *Parallel) flush(sh *shard) {
	if len(sh.buf) == 0 {
		return
	}
	sh.ch <- message{edges: sh.buf}
	sh.buf = *p.pool.Get().(*[]graph.Edge)
}

// barrier flushes all buffers and blocks until every shard has drained its
// queue, after which the shard samplers are quiescent and safe to read.
// After Close the shards are already drained and stopped, so it is a no-op.
func (p *Parallel) barrier() {
	if p.closed {
		return
	}
	ack := make(chan struct{}, len(p.shards))
	for _, sh := range p.shards {
		p.flush(sh)
		sh.ch <- message{ack: ack}
	}
	for range p.shards {
		<-ack
	}
}

// Shards returns the shard count P.
func (p *Parallel) Shards() int { return len(p.shards) }

// Arrivals returns the total number of distinct edges processed across all
// shards. It synchronizes: all pending batches are processed first.
func (p *Parallel) Arrivals() uint64 {
	p.barrier()
	var total uint64
	for _, sh := range p.shards {
		total += sh.s.Arrivals()
	}
	return total
}

// Merge drains all pending work and returns a sequential Sampler holding
// the union sample: the Capacity highest-priority edges across every
// shard, with the merge-time threshold. The returned sampler is
// independent of p — estimation may run on it while p keeps consuming the
// stream, which is how periodic in-flight queries are served.
func (p *Parallel) Merge() (*core.Sampler, error) {
	if p.closed {
		return nil, errors.New("engine: Merge on closed Parallel")
	}
	p.barrier()
	samplers := make([]*core.Sampler, len(p.shards))
	for i, sh := range p.shards {
		samplers[i] = sh.s
	}
	mcfg := p.cfg
	mcfg.Seed = p.mergeSeed
	m, err := core.Merge(samplers, mcfg)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	return m, nil
}

// Close flushes remaining work and stops the shard goroutines. The shard
// samplers stay readable (e.g. via a prior Merge result), but further
// Process or Merge calls are invalid.
func (p *Parallel) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, sh := range p.shards {
		p.flush(sh)
		close(sh.ch)
	}
	p.wg.Wait()
}

// Package engine provides the horizontal-scale layer of the GPS
// reproduction: a sharded sampler that hash-partitions an edge stream
// across per-goroutine GPS reservoirs and merges them on demand.
//
// # Design
//
// Each of the P shards owns a core.Sampler (capacity shardCapacity(m, P),
// its own RNG derived deterministically from the root seed) and a goroutine
// fed through a bounded single-consumer ring buffer. The partition function
// is a fixed hash of the canonical edge identity, so a given edge always
// lands on the same shard regardless of arrival order and the per-shard
// substreams are disjoint. Merging takes the union of the shard reservoirs,
// keeps the m highest priorities, and sets the merged threshold z* to the
// largest priority excluded anywhere (shard thresholds and merge-time
// drops) — the standard priority-sampling merge, performed by core.Merge.
//
// # The ingest data plane
//
// Producers never take an engine-wide mutex per batch. ProcessBatch groups
// its batch by shard in one counting-sort pass (order-preserving within the
// batch), then appends each shard's contiguous run to that shard's ring;
// the shard goroutines drain contiguous spans straight out of the ring
// memory and feed them to core.Sampler.ProcessBatch. The only shared state
// a producer touches is a read lock (admit.RLock, taken for the duration of
// the batch so queries still observe batches atomically) and the ring of
// each shard the batch actually hits. Concurrent producers therefore scale
// with cores: the sampling itself runs P-wide in the shard goroutines, and
// the routing runs producer-wide with per-shard serialization only at the
// ring append.
//
// The engine-wide barrier (Merge, Snapshot, WriteCheckpoint, Arrivals,
// Close) takes the admission write lock — excluding producers — and waits
// for every ring to drain, after which the shard samplers are quiescent.
// This is the only remaining global synchronization, and it is paid per
// query, not per batch.
//
// # Determinism
//
// Every run driven by one producer is a deterministic function of (seed,
// stream content, shard count): grouping preserves within-batch order,
// sequential batches append in call order, and order within a shard
// follows stream order regardless of ring capacity, batch sizes or
// consumer scheduling — batch shard-grouping is bit-identical to per-edge
// routing (tested). With concurrent producers each shard still processes a
// serialization of the producers' runs (appends to one ring are totally
// ordered), so producers that touch disjoint shard sets — e.g. upstream
// partitioned traffic — remain fully deterministic; producers racing to
// the same shard interleave at run granularity, exactly as their requests
// would have interleaved at the old router mutex.
//
// Forward decay is the exception: stamping arrival-order event times and
// pinning the landmark are inherently serial, so decayed admission runs
// under a dedicated small mutex (clock + stamp + group + append). Decayed
// ingest still scales: the serial section is the routing arithmetic, while
// the sampling — boost, heap, topology — runs P-wide in the shards.
//
// # Shard capacity and exactness
//
// Each shard's reservoir holds shardCapacity(m, P) = m/P plus a
// concentration-bound slack (8·√(m/P) + 64, capped at m) edges. The merge
// is exact whenever every edge of the global top-m survives its shard,
// i.e. no shard received more than its capacity's worth of the global
// top-m. Under hash partitioning the top-m spreads Binomial(m, 1/P) per
// shard, so the slack puts shard overflow ≥ 9 standard deviations out —
// for m = 100K, P = 4 the failure probability is below 1e-18 per run, and
// a failure merely swaps the sample's boundary edge. The slack also keeps
// the merged threshold exact: the union holds the global top-(m + P·slack)
// with the same probability, so the (m+1)-st highest priority of the union
// — which the merge promotes into z* — is the global (m+1)-st.
//
// For stream-independent weights (UniformWeight, or any W(k) ignoring the
// reservoir) the merged sample is therefore distributed as a sequential
// GPS(m) sample of the whole stream: priorities are independent of the
// partition, and "top-m of the union of per-shard top-k's" equals "top-m
// of the stream". For topology-dependent weights (TriangleWeight,
// AdjacencyWeight) each shard scores arrivals against its own partial
// reservoir, which holds ~1/P of the sampled topology, so weights — and
// therefore the variance-reduction targeting — are approximate; the
// Horvitz-Thompson normalization remains valid because each edge's stored
// weight is still the weight its priority was drawn with. This is the same
// trade Tiered Sampling and friends make to scale motif-aware sampling —
// and it is also why sharding pays even on few cores: every topology query
// runs against a P×-smaller sampled subgraph.
//
// # Queries under ingestion
//
// Parallel is safe for concurrent use: producers share the admission read
// lock, and Merge/Snapshot/WriteCheckpoint take the write side only for
// the barrier (plus, for Snapshot, the dirty-shard clone). Merge holds it
// for the whole merge (ingestion stops while the merged sampler is built);
// Snapshot releases it right after the clone — O(m) memory copies,
// parallelized across shards — and performs the merge on the clones after
// ingestion has already resumed. Snapshot is therefore the low-pause query
// path of a live service: at any batch boundary it yields a sampler
// bit-identical to what Merge would have produced at the same point, and
// the result is immutable with respect to further ingestion.
//
// # Incremental (dirty-shard) snapshots
//
// Snapshots are incremental: each shard carries an epoch counter bumped on
// every edge routed to it, and Snapshot clones only shards whose epoch
// moved since their previous clone — the rest reuse the prior immutable
// clone, which nothing ever mutates (merging only reads them). Under
// skewed or bursty traffic most shards are clean at any given refresh, so
// the ingestion stall shrinks from "clone everything" to "clone what
// changed". Retired clones are recycled through a per-shard sync.Pool via
// core.Sampler.CloneReusing, with reference counts making sure a clone
// still feeding a concurrent merge is never handed out for reuse; in steady
// state a refresh allocates nothing. SnapshotStats exposes the
// cloned/reused counters and LastSnapshotStall the most recent
// ingestion-blocked duration.
package engine

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gps/internal/core"
	"gps/internal/graph"
	"gps/internal/randx"
)

// DefaultBatch is the batch size the engine's own helpers (and callers
// that buffer arrivals) aim for: large enough to amortize the per-batch
// grouping pass and ring handshake to a few nanoseconds per edge, small
// enough to keep shards busy and queries fresh.
const DefaultBatch = 4096

// DefaultRingCapacity is the per-shard ring buffer size in edges. At 24
// bytes per edge (canonical pair, event time, deletion flag plus padding) a
// shard queue tops out at 768 KiB; a full ring blocks the producer (counted
// as a router stall) rather than buffering unboundedly.
const DefaultRingCapacity = 1 << 15

// Parallel is a sharded GPS sampler. Feed it with Process/ProcessBatch
// (from any number of goroutines), call Merge or Snapshot (any number of
// times, from any goroutine) for a sequential Sampler positioned over
// everything fed so far, and Close when done. Per-edge Process pays one
// shard-ring append per call, so high-rate producers should feed batches.
type Parallel struct {
	// admit is the producer/barrier lock: Process and ProcessBatch hold the
	// read side for the duration of a batch (keeping batches atomic with
	// respect to queries), while Merge/Snapshot/WriteCheckpoint/Close hold
	// the write side across the ring-drain barrier.
	admit  sync.RWMutex
	closed atomic.Bool

	// mu guards the snapshot/checkpoint bookkeeping: clone caches and
	// refcounts, telemetry counters, and the merged-result cache. It nests
	// inside admit (never take admit while holding mu).
	mu sync.Mutex

	cfg       core.Config
	mergeSeed uint64
	shards    []*shard
	groups    sync.Pool // *groupScratch: batch shard-grouping buffers
	wg        sync.WaitGroup

	// Snapshot telemetry; counters guarded by mu, stall read lock-free.
	snapshots    uint64
	shardsCloned uint64
	shardsReused uint64
	lastStall    atomic.Int64 // ns ingestion was blocked by the last Snapshot

	// Checkpoint telemetry, guarded by mu: checkpoints taken, shard blobs
	// freshly serialized, and clean shards whose cached blob was reused.
	checkpoints     uint64
	shardsEncoded   uint64
	shardBlobReused uint64

	// Merged-result cache: the most recent Snapshot merge and the shard
	// epoch vector it reflects. A snapshot finding every epoch unchanged
	// returns it directly — the merge is deterministic in the clones, so
	// re-running it would rebuild a bit-identical sampler. Guarded by mu.
	lastMerged       *core.Sampler
	lastMergedEpochs []uint64

	// Forward-decay admission state, guarded by decayMu (which nests inside
	// admit.RLock): stamping arrival-order event times and pinning the
	// landmark are serial by nature — priorities are only comparable across
	// shards when every shard boosts against the same landmark, so the
	// first routed edge pins the landmark on every shard at once (they are
	// still quiescent: nothing has been appended to any ring). clock is the
	// engine-wide event-time counter stamped onto untimed edges (edge TS 0)
	// so that arrival-order decay is coherent across shards — per-shard
	// positions would advance at ~1/P the global rate. Decayed admission —
	// stamp, group, append — runs entirely under decayMu so that the
	// per-shard run order agrees with the clock order.
	decayMu     sync.Mutex
	decay       bool
	landmarked  bool
	clock       uint64
	horizon     atomic.Uint64 // max event time admitted; mutated under decayMu, read lock-free
	landmarkVal atomic.Uint64 // pinned landmark L (0 = not pinned yet); read lock-free

	// restartsTotal counts shard consumer restarts across all shards
	// (see supervisor.go); read lock-free by Restarts and the metrics.
	restartsTotal atomic.Uint64

	// met holds the engine-owned histograms (see metrics.go); initialized by
	// startShards, attached to a registry by RegisterMetrics.
	met engineMetrics
}

type shard struct {
	ring *ring
	s    *core.Sampler

	// cfg is the per-shard sampler configuration (capacity share, derived
	// seed) kept so the supervisor can rebuild the sampler from scratch
	// when no immutable clone exists to restore from (see supervisor.go).
	cfg core.Config

	// epoch counts edges ever routed to this shard; producers bump it at
	// admission (under admit.RLock), snapshot bookkeeping reads it with
	// producers excluded, so any observed value is exact at a barrier.
	epoch atomic.Uint64

	// Self-healing state (see supervisor.go). restarts/lost/degraded/
	// lastPanic are written by the shard's own supervisor and read
	// lock-free by health queries. baseProcessed is the sampler's stream
	// position when it was installed at construction (non-zero after a
	// checkpoint restore) — the edges a from-scratch rebuild loses on top
	// of everything the ring consumer ever drained.
	restarts      atomic.Uint64
	lost          atomic.Uint64
	degraded      atomic.Bool
	lastPanic     atomic.Value // string
	baseProcessed uint64

	// cloneHead is the consumer position (ring.head) at which the shard
	// sampler's content last equaled lastClone — recorded when the clone
	// is taken (rings drained, head == tail) and re-anchored by lossy
	// recoveries. head == cloneHead means restoring from lastClone and
	// replaying the ring backlog reproduces the pre-panic state bit for
	// bit. Guarded by p.mu.
	cloneHead uint64

	// Dirty tracking for incremental snapshots; all guarded by p.mu.
	snapEpoch uint64    // epoch the last clone was taken at
	lastClone *shardRef // immutable clone of s at snapEpoch, nil before first snapshot
	clonePool sync.Pool // retired *core.Sampler clones for CloneReusing

	// Checkpoint cache: the serialized GPSC blob of this shard at
	// ckptEpoch, recording weight name ckptName. A checkpoint finding both
	// unchanged reuses the bytes verbatim — clean shards skip
	// re-serialization entirely. Guarded by p.mu.
	ckptEpoch uint64
	ckptName  string
	ckptBytes []byte
}

// shardRef is a reference-counted immutable shard clone. refs counts the
// snapshot-cache reference (while the clone is its shard's lastClone) plus
// one per in-flight merge reading it; it is guarded by p.mu. When refs
// drops to zero the clone is retired into the shard's pool and its backing
// arrays feed the next CloneReusing.
type shardRef struct {
	s    *core.Sampler
	refs int
}

// groupScratch is the reusable per-batch buffer of the shard-grouping
// router: shard index per edge, per-shard counts/offsets, and the scatter
// buffer holding the batch regrouped into per-shard contiguous runs.
type groupScratch struct {
	idx    []int32
	count  []int32
	offset []int32
	buf    []graph.Edge
}

func (g *groupScratch) grow(n, shards int) {
	if cap(g.idx) < n {
		g.idx = make([]int32, n)
		g.buf = make([]graph.Edge, n)
	}
	g.idx = g.idx[:n]
	g.buf = g.buf[:n]
	if cap(g.count) < shards {
		g.count = make([]int32, shards)
		g.offset = make([]int32, shards)
	}
	g.count = g.count[:shards]
	g.offset = g.offset[:shards]
	for i := range g.count {
		g.count[i] = 0
	}
}

// NewParallel returns a sharded sampler with the given shard count;
// shards <= 0 means GOMAXPROCS. Weight functions must be pure (stateless):
// all shards share cfg.Weight and call it concurrently, so a stateful
// weight (e.g. NewAdaptiveTriangleWeight) must not be used here.
func NewParallel(cfg core.Config, shards int) (*Parallel, error) {
	return newParallel(cfg, shards, DefaultRingCapacity)
}

// newParallel is NewParallel with an explicit per-shard ring capacity
// (tests use tiny rings to exercise wrap-around and producer stalls).
func newParallel(cfg core.Config, shards, ringCap int) (*Parallel, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Capacity < 1 {
		return nil, errors.New("engine: Capacity must be at least 1")
	}
	p := &Parallel{
		cfg:    cfg,
		shards: make([]*shard, shards),
		decay:  cfg.Decay.Enabled(),
	}
	if cfg.Decay.Enabled() && cfg.Decay.Landmark != 0 {
		p.landmarkVal.Store(cfg.Decay.Landmark)
	}
	// Derive the per-shard seeds and the merge seed from the root seed so
	// the whole run is reproducible from cfg.Seed alone.
	seeds := randx.New(cfg.Seed)
	p.mergeSeed = seeds.Uint64()
	shardCap := shardCapacity(cfg.Capacity, shards)
	for i := range p.shards {
		scfg := cfg
		scfg.Capacity = shardCap
		scfg.Seed = seeds.Uint64()
		s, err := core.NewSampler(scfg)
		if err != nil {
			return nil, err
		}
		p.shards[i] = &shard{ring: newRing(ringCap), s: s, cfg: scfg}
	}
	p.startShards()
	return p, nil
}

// startShards launches the supervised consumer goroutines; shared by the
// constructor and checkpoint restore.
func (p *Parallel) startShards() {
	p.groups.New = func() any { return new(groupScratch) }
	p.met.init()
	for i, sh := range p.shards {
		i, sh := i, sh
		p.wg.Add(1)
		go p.runShard(i, sh)
	}
}

// shardCapacity returns the per-shard reservoir size: an equal share of the
// global capacity plus enough slack that the global top-m overflows a shard
// with negligible probability (see the package comment).
func shardCapacity(m, shards int) int {
	if shards <= 1 {
		return m
	}
	share := (m + shards - 1) / shards
	c := share + 8*int(math.Sqrt(float64(share))) + 64
	if c > m {
		c = m
	}
	return c
}

// Process routes one edge to its shard. It panics if p is closed.
func (p *Parallel) Process(e graph.Edge) {
	p.admit.RLock()
	// Deferred (not inline) so an injected ring-publish panic escaping to a
	// recovering caller cannot leave the admission lock held and wedge every
	// future barrier.
	defer p.admit.RUnlock()
	if p.closed.Load() {
		panic("engine: Process on closed Parallel")
	}
	if p.decay {
		var one [1]graph.Edge
		one[0] = e
		p.admitDecayed(one[:])
	} else {
		sh := p.shards[p.ShardOf(e)]
		sh.epoch.Add(1)
		sh.ring.append1(e)
	}
}

// ProcessBatch routes a batch of edges to their shards: one grouping pass
// splits the batch into per-shard contiguous runs (order-preserving), and
// each run is appended to its shard's ring. The batch is admitted
// atomically with respect to Merge and Snapshot: a concurrent query sees
// either none or all of it. It panics if p is closed. The error return is
// always nil — admission cannot partially fail — and exists so Parallel
// satisfies the Stream batch contract, where a windowed engine's rotation
// can genuinely fail mid-batch.
func (p *Parallel) ProcessBatch(edges []graph.Edge) error {
	p.admit.RLock()
	// Deferred so a panic escaping mid-admission (e.g. an injected
	// ring-publish fault caught by a recovering caller) cannot wedge the
	// admission lock. Batch granularity makes the defer cost negligible.
	defer p.admit.RUnlock()
	if p.closed.Load() {
		panic("engine: ProcessBatch on closed Parallel")
	}
	if len(edges) == 0 {
		return nil
	}
	if p.decay {
		p.admitDecayed(edges)
		return nil
	}
	if len(p.shards) == 1 {
		sh := p.shards[0]
		sh.epoch.Add(uint64(len(edges)))
		sh.ring.append(edges)
		return nil
	}
	g := p.groups.Get().(*groupScratch)
	p.groupAndAppend(g, edges, false)
	p.groups.Put(g)
	return nil
}

// groupAndAppend runs the counting-sort router: pass 1 hashes every edge to
// its shard and counts run lengths, pass 2 scatters the batch (in original
// order, so runs preserve it) into per-shard contiguous regions of the
// scratch buffer — stamping decay event times along the way when stamp is
// set — and finally each non-empty run is appended to its shard's ring.
// The rings copy, so the scratch is reusable immediately.
func (p *Parallel) groupAndAppend(g *groupScratch, edges []graph.Edge, stamp bool) {
	ns := len(p.shards)
	g.grow(len(edges), ns)
	for i, e := range edges {
		s := int32(randx.Mix64(e.Key()) % uint64(ns))
		g.idx[i] = s
		g.count[s]++
	}
	var off int32
	for s := range g.offset {
		g.offset[s] = off
		off += g.count[s]
	}
	horizon := p.horizon.Load()
	for i, e := range edges {
		if stamp {
			// Engine-wide event clock: untimed edges get the global stream
			// position as their event time (checkpointed, so a restore
			// resumes the same clock). Callers hold decayMu.
			p.clock++
			if e.TS == 0 {
				e.TS = p.clock
			}
			if e.TS > horizon {
				horizon = e.TS
			}
			if !p.landmarked {
				p.pinLandmark(e.TS)
			}
		}
		s := g.idx[i]
		g.buf[g.offset[s]] = e
		g.offset[s]++
	}
	if stamp {
		p.horizon.Store(horizon)
	}
	end := g.offset
	for s := 0; s < ns; s++ {
		n := g.count[s]
		if n == 0 {
			continue
		}
		sh := p.shards[s]
		sh.epoch.Add(uint64(n))
		sh.ring.append(g.buf[end[s]-n : end[s]])
	}
}

// admitDecayed is the decayed admission path: stamp, group and append under
// decayMu, so that the engine clock, the landmark pin and the per-shard run
// order all agree on one serialization of the producers. Callers hold
// admit.RLock.
func (p *Parallel) admitDecayed(edges []graph.Edge) {
	g := p.groups.Get().(*groupScratch)
	p.decayMu.Lock()
	defer p.decayMu.Unlock()
	p.groupAndAppend(g, edges, true)
	p.groups.Put(g)
}

// pinLandmark pins the shared decay landmark from the first routed edge's
// event time. Callers hold decayMu and nothing has ever been appended to a
// ring, so the shard samplers are untouched and quiescent; the ring append
// that follows publishes the mutation to the consumers.
func (p *Parallel) pinLandmark(ts uint64) {
	p.landmarked = true
	if p.cfg.Decay.Landmark != 0 {
		return
	}
	p.landmarkVal.Store(ts)
	for _, sh := range p.shards {
		if err := sh.s.SetDecayLandmark(ts); err != nil {
			panic(fmt.Sprintf("engine: landmark pinning: %v", err))
		}
		// Pinning mutates the shard sampler, so every cached clone and
		// checkpoint blob keyed by the shard epoch is stale — without this
		// bump a later checkpoint would mix pinned and pre-pin shard
		// documents and fail restore's landmark-agreement validation.
		sh.epoch.Add(1)
	}
}

// barrierLocked waits until every shard ring has drained and its sampler is
// quiescent. Callers hold admit (write side), so no producer can append
// while it runs. After Close the rings are already drained and the shard
// goroutines stopped, so it is a no-op.
func (p *Parallel) barrierLocked() {
	start := time.Now()
	for _, sh := range p.shards {
		sh.ring.drainWait()
	}
	p.met.barrierNS.Observe(uint64(time.Since(start)))
}

// Shards returns the shard count P.
func (p *Parallel) Shards() int { return len(p.shards) }

// Arrivals returns the total number of distinct edges processed across all
// shards. It synchronizes: all pending batches are processed first.
func (p *Parallel) Arrivals() uint64 {
	p.admit.Lock()
	defer p.admit.Unlock()
	p.barrierLocked()
	var total uint64
	for _, sh := range p.shards {
		total += sh.s.Arrivals()
	}
	return total
}

// Deletions returns the summed turnstile-deletion counters across all
// shards: applied removed a resident edge from some shard reservoir,
// unsampled applied vacuously. It synchronizes like Arrivals. A deletion
// record routes to the same shard as its insert (the partition hashes the
// canonical edge identity, which ignores the deletion flag), so exactly one
// shard accounts for each record.
func (p *Parallel) Deletions() (applied, unsampled uint64) {
	p.admit.Lock()
	defer p.admit.Unlock()
	p.barrierLocked()
	for _, sh := range p.shards {
		a, u := sh.s.Deletions()
		applied += a
		unsampled += u
	}
	return applied, unsampled
}

// Merge drains all pending work and returns a sequential Sampler holding
// the union sample: the Capacity highest-priority edges across every
// shard, with the merge-time threshold. The returned sampler is
// independent of p — estimation may run on it while p keeps consuming the
// stream. Merge may be called any number of times: it only reads the shard
// reservoirs, so back-to-back merges with no processing in between return
// identical samplers. Ingestion is blocked for the full duration of the
// merge; services that query continuously should prefer Snapshot, which
// blocks ingestion only for the shard clone.
func (p *Parallel) Merge() (*core.Sampler, error) {
	p.admit.Lock()
	defer p.admit.Unlock()
	if p.closed.Load() {
		return nil, errors.New("engine: Merge on closed Parallel")
	}
	p.barrierLocked()
	samplers := make([]*core.Sampler, len(p.shards))
	for i, sh := range p.shards {
		samplers[i] = sh.s
	}
	return p.merge(samplers)
}

// Snapshot drains all pending work, clones the shard reservoirs that
// changed since their previous clone (in parallel, one goroutine per dirty
// shard) and releases ingestion before merging the clones into the
// returned sequential Sampler. The result is bit-identical to what Merge
// would have returned at the same stream position — a deterministic
// function of (seed, edges fed so far, shard count) — but ingestion stalls
// only for the dirty-shard clone instead of the merge's sort and reservoir
// rebuild; shards untouched since the last snapshot reuse their prior
// immutable clone at zero cost, and a snapshot with no shard dirty at all
// skips the merge too, returning the previous merged sampler. Snapshots
// are immutable by contract: the engine never mutates a returned sampler
// (so any number of estimator goroutines may read it concurrently), and
// callers must not either — back-to-back snapshots of an idle engine share
// one sampler.
func (p *Parallel) Snapshot() (*core.Sampler, error) {
	p.admit.Lock()
	start := time.Now() // ingestion is blocked from here to admit.Unlock
	if p.closed.Load() {
		p.admit.Unlock()
		return nil, errors.New("engine: Snapshot on closed Parallel")
	}
	p.barrierLocked()
	p.mu.Lock()
	epochs := make([]uint64, len(p.shards))
	clean := p.lastMerged != nil
	for i, sh := range p.shards {
		epochs[i] = sh.epoch.Load()
		clean = clean && p.lastMergedEpochs[i] == epochs[i]
	}
	if clean {
		m := p.lastMerged
		p.snapshots++
		p.shardsReused += uint64(len(p.shards))
		stall := time.Since(start)
		p.lastStall.Store(int64(stall))
		p.met.stallNS.Observe(uint64(stall))
		p.mu.Unlock()
		p.admit.Unlock()
		return m, nil
	}
	refs := make([]*shardRef, len(p.shards))
	var wg sync.WaitGroup
	for i, sh := range p.shards {
		var fresh bool
		refs[i], fresh = p.acquireCloneLocked(sh, &wg)
		if fresh {
			p.shardsCloned++
		} else {
			p.shardsReused++
		}
	}
	p.snapshots++
	p.mu.Unlock()
	wg.Wait() // clones must be complete before ingestion resumes
	stall := time.Since(start)
	p.lastStall.Store(int64(stall))
	p.met.stallNS.Observe(uint64(stall))
	p.admit.Unlock()

	clones := make([]*core.Sampler, len(refs))
	for i, r := range refs {
		clones[i] = r.s
	}
	m, err := p.merge(clones)

	p.mu.Lock()
	for i, r := range refs {
		p.releaseCloneLocked(i, r)
	}
	if err == nil {
		// Publish for the clean fast path. Concurrent snapshots may store
		// out of order; any stored (sampler, epochs) pair is internally
		// consistent, and the clean check compares against live epochs.
		p.lastMerged = m
		p.lastMergedEpochs = epochs
	}
	p.mu.Unlock()
	return m, err
}

// acquireCloneLocked returns a reference to an immutable clone of sh frozen
// at its current epoch, reporting whether a fresh clone had to be taken. A
// shard untouched since its previous clone reuses that clone (it is
// immutable; any number of merges may read it); a dirty shard registers a
// new ref and schedules the clone on wg — the ref's sampler is valid only
// after wg.Wait(). Callers hold p.mu and the admission write lock with the
// rings drained, and must eventually hand the ref to releaseCloneLocked.
// Snapshot and WriteCheckpoint share this path, so a checkpoint right after
// a snapshot (or vice versa) clones nothing at all.
func (p *Parallel) acquireCloneLocked(sh *shard, wg *sync.WaitGroup) (ref *shardRef, fresh bool) {
	epoch := sh.epoch.Load()
	if sh.lastClone != nil && sh.snapEpoch == epoch {
		sh.lastClone.refs++
		return sh.lastClone, false
	}
	ref = &shardRef{refs: 2} // the shard cache + the caller
	if old := sh.lastClone; old != nil {
		old.refs-- // drop the cache reference
		if old.refs == 0 {
			sh.clonePool.Put(old.s)
		}
	}
	sh.lastClone = ref
	sh.snapEpoch = epoch
	// The rings are drained (head == tail), so the clone's content is the
	// sampler at exactly this consumer position — the anchor the supervisor
	// needs to tell an exact restore from a lossy one.
	sh.cloneHead = sh.ring.head.Load()
	wg.Add(1)
	go func() {
		defer wg.Done()
		var recycle *core.Sampler
		if v := sh.clonePool.Get(); v != nil {
			recycle = v.(*core.Sampler)
		}
		ref.s = sh.s.CloneReusing(recycle)
	}()
	return ref, true
}

// releaseCloneLocked drops the caller's reference on shard i's clone,
// retiring the backing arrays for reuse when the clone is no longer the
// shard's cached one and nobody else is reading it. Callers hold p.mu.
func (p *Parallel) releaseCloneLocked(i int, ref *shardRef) {
	ref.refs--
	if ref.refs == 0 && p.shards[i].lastClone != ref {
		p.shards[i].clonePool.Put(ref.s)
	}
}

// SnapshotStats reports cumulative snapshot counters: snapshots taken,
// shard clones performed, and clean shards that reused the previous clone.
// cloned+reused equals snapshots×Shards().
func (p *Parallel) SnapshotStats() (snapshots, cloned, reused uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snapshots, p.shardsCloned, p.shardsReused
}

// LastSnapshotStall returns how long the most recent Snapshot blocked
// ingestion: the barrier plus the dirty-shard clone, excluding the merge
// (which runs after ingestion resumes).
func (p *Parallel) LastSnapshotStall() time.Duration {
	return time.Duration(p.lastStall.Load())
}

// RingStats is a point-in-time view of the ingest data plane: per-shard
// queue depths, their sum, the shared ring capacity, and the cumulative
// number of producer stalls (appends that found a ring full and had to
// wait for the shard goroutine — the router's backpressure signal).
type RingStats struct {
	Capacity int      // per-shard ring capacity in edges
	Depths   []int    // edges queued per shard, racy gauge
	Backlog  int      // sum of Depths
	Stalls   uint64   // cumulative full-ring producer waits
	Epochs   []uint64 // edges ever routed per shard (includes queued)
}

// RingStats samples the ingest rings without synchronizing: depths and
// epochs are racy gauges suitable for monitoring, not barriers.
func (p *Parallel) RingStats() RingStats {
	st := RingStats{
		Capacity: len(p.shards[0].ring.buf),
		Depths:   make([]int, len(p.shards)),
		Epochs:   make([]uint64, len(p.shards)),
	}
	for i, sh := range p.shards {
		d := sh.ring.depth()
		st.Depths[i] = d
		st.Backlog += d
		st.Stalls += sh.ring.stalls.Load()
		st.Epochs[i] = sh.epoch.Load()
	}
	return st
}

// Decay returns the forward-decay configuration the engine runs with (the
// zero value when decay is off).
func (p *Parallel) Decay() core.Decay { return p.cfg.Decay }

// DecayLandmark returns the pinned forward-decay landmark L, with ok=false
// before the first edge pinned it. Lock-free; callers use it to range-check
// event times before admission.
func (p *Parallel) DecayLandmark() (uint64, bool) {
	v := p.landmarkVal.Load()
	return v, v != 0
}

// DecayHorizon returns the largest event time routed to any shard — the
// horizon decayed estimates from a merge or snapshot at this moment would
// target. It is tracked at admission (lock-free read; no ingestion stall)
// and is 0 when decay is off.
func (p *Parallel) DecayHorizon() uint64 { return p.horizon.Load() }

// ShardOf returns the shard index the given edge routes to: a
// splitmix-mixed hash of the canonical edge key, independent of arrival
// order. It is exposed for tests and benchmarks that need to construct
// shard-targeted traffic (e.g. to exercise dirty-shard snapshots).
func (p *Parallel) ShardOf(e graph.Edge) int {
	return int(randx.Mix64(e.Key()) % uint64(len(p.shards)))
}

// merge runs the priority-sampling merge over the given shard samplers with
// the derived merge seed. Safe without any engine lock when the samplers
// are clones; for live shard samplers the caller must hold the admission
// write lock with the rings drained.
func (p *Parallel) merge(samplers []*core.Sampler) (*core.Sampler, error) {
	mcfg := p.cfg
	mcfg.Seed = p.mergeSeed
	m, err := core.Merge(samplers, mcfg)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	return m, nil
}

// Close drains remaining work and stops the shard goroutines. The shard
// samplers stay readable (e.g. via a prior Merge result), but further use
// of p is invalid: Merge and Snapshot return an error, Process and
// ProcessBatch panic. Close is idempotent.
func (p *Parallel) Close() {
	p.admit.Lock()
	defer p.admit.Unlock()
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	for _, sh := range p.shards {
		sh.ring.close()
	}
	p.wg.Wait()
}

// Package engine provides the horizontal-scale layer of the GPS
// reproduction: a sharded sampler that hash-partitions an edge stream
// across per-goroutine GPS reservoirs and merges them on demand.
//
// # Design
//
// Each of the P shards owns a core.Sampler (capacity shardCapacity(m, P),
// its own RNG derived deterministically from the root seed) and a goroutine
// fed with edge batches over a channel. The partition function is a fixed
// hash of the canonical edge identity, so a given edge always lands on the
// same shard regardless of arrival order and the per-shard substreams are
// disjoint. Merging takes the union of the shard reservoirs, keeps the m
// highest priorities, and sets the merged threshold z* to the largest
// priority excluded anywhere (shard thresholds and merge-time drops) — the
// standard priority-sampling merge, performed by core.Merge.
//
// # Shard capacity and exactness
//
// Each shard's reservoir holds shardCapacity(m, P) = m/P plus a
// concentration-bound slack (8·√(m/P) + 64, capped at m) edges. The merge
// is exact whenever every edge of the global top-m survives its shard,
// i.e. no shard received more than its capacity's worth of the global
// top-m. Under hash partitioning the top-m spreads Binomial(m, 1/P) per
// shard, so the slack puts shard overflow ≥ 9 standard deviations out —
// for m = 100K, P = 4 the failure probability is below 1e-18 per run, and
// a failure merely swaps the sample's boundary edge. The slack also keeps
// the merged threshold exact: the union holds the global top-(m + P·slack)
// with the same probability, so the (m+1)-st highest priority of the union
// — which the merge promotes into z* — is the global (m+1)-st.
//
// For stream-independent weights (UniformWeight, or any W(k) ignoring the
// reservoir) the merged sample is therefore distributed as a sequential
// GPS(m) sample of the whole stream: priorities are independent of the
// partition, and "top-m of the union of per-shard top-k's" equals "top-m
// of the stream". For topology-dependent weights (TriangleWeight,
// AdjacencyWeight) each shard scores arrivals against its own partial
// reservoir, which holds ~1/P of the sampled topology, so weights — and
// therefore the variance-reduction targeting — are approximate; the
// Horvitz-Thompson normalization remains valid because each edge's stored
// weight is still the weight its priority was drawn with. This is the same
// trade Tiered Sampling and friends make to scale motif-aware sampling —
// and it is also why sharding pays even on few cores: every topology query
// runs against a P×-smaller sampled subgraph.
//
// Every run is a deterministic function of (seed, stream content, shard
// count): batching and goroutine scheduling cannot change any shard's
// arrival order, because order within a shard follows stream order.
//
// # Queries under ingestion
//
// Parallel is safe for concurrent use: one mutex serializes producers,
// merges and snapshots, so ingestion and queries may come from different
// goroutines. Merge holds the lock for the whole merge (ingestion stops
// while the merged sampler is built); Snapshot holds it only long enough to
// drain the shards and clone their reservoirs — O(m) memory copies,
// parallelized across shards — and performs the merge on the clones after
// ingestion has already resumed. Snapshot is therefore the low-pause query
// path of a live service: at any batch boundary it yields a sampler
// bit-identical to what Merge would have produced at the same point, and
// the result is immutable with respect to further ingestion.
//
// # Incremental (dirty-shard) snapshots
//
// Snapshots are incremental: each shard carries an epoch counter bumped on
// every edge routed to it, and Snapshot clones only shards whose epoch
// moved since their previous clone — the rest reuse the prior immutable
// clone, which nothing ever mutates (merging only reads them). Under
// skewed or bursty traffic most shards are clean at any given refresh, so
// the ingestion stall shrinks from "clone everything" to "clone what
// changed". Retired clones are recycled through a per-shard sync.Pool via
// core.Sampler.CloneReusing, with reference counts making sure a clone
// still feeding a concurrent merge is never handed out for reuse; in steady
// state a refresh allocates nothing. SnapshotStats exposes the
// cloned/reused counters and LastSnapshotStall the most recent
// ingestion-blocked duration.
package engine

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gps/internal/core"
	"gps/internal/graph"
	"gps/internal/randx"
)

// DefaultBatch is the number of edges buffered per shard before a batch is
// handed to the shard goroutine. Large enough to amortize channel overhead
// to well under a nanosecond per edge, small enough to keep shards busy.
const DefaultBatch = 4096

// Parallel is a sharded GPS sampler. Feed it with Process/ProcessBatch,
// call Merge or Snapshot (any number of times, from any goroutine) for a
// sequential Sampler positioned over everything fed so far, and Close when
// done. All methods are safe for concurrent use; per-edge Process pays one
// uncontended lock per call, so high-rate producers should feed batches.
type Parallel struct {
	mu        sync.Mutex // guards shard buffers, flush/barrier, snapshot bookkeeping, closed
	cfg       core.Config
	mergeSeed uint64
	batch     int
	shards    []*shard
	pool      sync.Pool // batch buffers: *[]graph.Edge
	wg        sync.WaitGroup
	closed    bool

	// Snapshot telemetry; counters guarded by mu, stall read lock-free.
	snapshots    uint64
	shardsCloned uint64
	shardsReused uint64
	lastStall    atomic.Int64 // ns ingestion was blocked by the last Snapshot

	// Checkpoint telemetry, guarded by mu: checkpoints taken, shard blobs
	// freshly serialized, and clean shards whose cached blob was reused.
	checkpoints     uint64
	shardsEncoded   uint64
	shardBlobReused uint64

	// Merged-result cache: the most recent Snapshot merge and the shard
	// epoch vector it reflects. A snapshot finding every epoch unchanged
	// returns it directly — the merge is deterministic in the clones, so
	// re-running it would rebuild a bit-identical sampler. Guarded by mu.
	lastMerged       *core.Sampler
	lastMergedEpochs []uint64

	// Forward-decay bookkeeping, guarded by mu. Priorities are only
	// comparable across shards when every shard boosts against the same
	// landmark, so the first routed edge pins the landmark on every shard
	// at once (they are still quiescent: nothing has been flushed). clock
	// is the engine-wide event-time counter stamped onto untimed edges
	// (edge TS 0) so that arrival-order decay is coherent across shards —
	// per-shard positions would advance at ~1/P the global rate.
	decay       bool
	landmarked  bool
	clock       uint64
	horizon     atomic.Uint64 // max event time admitted; mutated under mu, read lock-free
	landmarkVal atomic.Uint64 // pinned landmark L (0 = not pinned yet); read lock-free
}

type shard struct {
	ch chan message
	s  *core.Sampler
	// buf accumulates routed edges between flushes; owned by the producer.
	buf []graph.Edge

	// Dirty tracking for incremental snapshots; all guarded by p.mu.
	epoch     uint64    // bumped once per edge routed to this shard
	snapEpoch uint64    // epoch the last clone was taken at
	lastClone *shardRef // immutable clone of s at snapEpoch, nil before first snapshot
	clonePool sync.Pool // retired *core.Sampler clones for CloneReusing

	// Checkpoint cache: the serialized GPSC blob of this shard at
	// ckptEpoch, recording weight name ckptName. A checkpoint finding both
	// unchanged reuses the bytes verbatim — clean shards skip
	// re-serialization entirely. Guarded by p.mu.
	ckptEpoch uint64
	ckptName  string
	ckptBytes []byte
}

// shardRef is a reference-counted immutable shard clone. refs counts the
// snapshot-cache reference (while the clone is its shard's lastClone) plus
// one per in-flight merge reading it; it is guarded by p.mu. When refs
// drops to zero the clone is retired into the shard's pool and its backing
// arrays feed the next CloneReusing.
type shardRef struct {
	s    *core.Sampler
	refs int
}

type message struct {
	edges []graph.Edge
	ack   chan<- struct{}
}

// NewParallel returns a sharded sampler with the given shard count;
// shards <= 0 means GOMAXPROCS. Weight functions must be pure (stateless):
// all shards share cfg.Weight and call it concurrently, so a stateful
// weight (e.g. NewAdaptiveTriangleWeight) must not be used here.
func NewParallel(cfg core.Config, shards int) (*Parallel, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Capacity < 1 {
		return nil, errors.New("engine: Capacity must be at least 1")
	}
	p := &Parallel{
		cfg:    cfg,
		batch:  DefaultBatch,
		shards: make([]*shard, shards),
		decay:  cfg.Decay.Enabled(),
	}
	if cfg.Decay.Enabled() && cfg.Decay.Landmark != 0 {
		p.landmarkVal.Store(cfg.Decay.Landmark)
	}
	p.pool.New = func() any {
		buf := make([]graph.Edge, 0, p.batch)
		return &buf
	}
	// Derive the per-shard seeds and the merge seed from the root seed so
	// the whole run is reproducible from cfg.Seed alone.
	seeds := randx.New(cfg.Seed)
	p.mergeSeed = seeds.Uint64()
	shardCap := shardCapacity(cfg.Capacity, shards)
	for i := range p.shards {
		scfg := cfg
		scfg.Capacity = shardCap
		scfg.Seed = seeds.Uint64()
		s, err := core.NewSampler(scfg)
		if err != nil {
			return nil, err
		}
		sh := &shard{
			ch:  make(chan message, 4),
			s:   s,
			buf: make([]graph.Edge, 0, p.batch),
		}
		p.shards[i] = sh
		p.wg.Add(1)
		go p.run(sh)
	}
	return p, nil
}

func (p *Parallel) run(sh *shard) {
	defer p.wg.Done()
	for m := range sh.ch {
		if m.edges != nil {
			sh.s.ProcessBatch(m.edges)
			buf := m.edges[:0]
			p.pool.Put(&buf)
		}
		if m.ack != nil {
			m.ack <- struct{}{}
		}
	}
}

// shardCapacity returns the per-shard reservoir size: an equal share of the
// global capacity plus enough slack that the global top-m overflows a shard
// with negligible probability (see the package comment).
func shardCapacity(m, shards int) int {
	if shards <= 1 {
		return m
	}
	share := (m + shards - 1) / shards
	c := share + 8*int(math.Sqrt(float64(share))) + 64
	if c > m {
		c = m
	}
	return c
}

// shardFor routes an edge to its shard: a splitmix-mixed hash of the
// canonical edge key, independent of arrival order.
func (p *Parallel) shardFor(e graph.Edge) *shard {
	return p.shards[p.ShardOf(e)]
}

// Process routes one edge to its shard, flushing the shard's batch buffer
// when full. It panics if p is closed.
func (p *Parallel) Process(e graph.Edge) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("engine: Process on closed Parallel")
	}
	p.process(e)
	p.mu.Unlock()
}

// ProcessBatch routes a batch of edges to their shards. The batch is
// admitted atomically with respect to Merge and Snapshot: a concurrent
// query sees either none or all of it. It panics if p is closed.
func (p *Parallel) ProcessBatch(edges []graph.Edge) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("engine: ProcessBatch on closed Parallel")
	}
	for _, e := range edges {
		p.process(e)
	}
	p.mu.Unlock()
}

// process routes one edge; callers hold p.mu. The shard's epoch moves with
// every routed edge — even a rejected or duplicate arrival advances the
// shard sampler's RNG or counters, so any delivery dirties the shard for
// snapshot purposes.
func (p *Parallel) process(e graph.Edge) {
	if p.decay {
		// Engine-wide event clock: untimed edges get the global stream
		// position as their event time (checkpointed, so a restore resumes
		// the same clock), and the first edge ever routed pins the shared
		// decay landmark before anything has been flushed to a shard.
		p.clock++
		if e.TS == 0 {
			e.TS = p.clock
		}
		if e.TS > p.horizon.Load() {
			p.horizon.Store(e.TS)
		}
		if !p.landmarked {
			p.landmarked = true
			if p.cfg.Decay.Landmark == 0 {
				p.landmarkVal.Store(e.TS)
				for _, sh := range p.shards {
					if err := sh.s.SetDecayLandmark(e.TS); err != nil {
						panic(fmt.Sprintf("engine: landmark pinning: %v", err))
					}
					// Pinning mutates the shard sampler, so every cached
					// clone and checkpoint blob keyed by the shard epoch is
					// stale — without this bump a later checkpoint would mix
					// pinned and pre-pin shard documents and fail restore's
					// landmark-agreement validation.
					sh.epoch++
				}
			}
		}
	}
	sh := p.shardFor(e)
	sh.epoch++
	sh.buf = append(sh.buf, e)
	if len(sh.buf) >= p.batch {
		p.flush(sh)
	}
}

func (p *Parallel) flush(sh *shard) {
	if len(sh.buf) == 0 {
		return
	}
	sh.ch <- message{edges: sh.buf}
	sh.buf = *p.pool.Get().(*[]graph.Edge)
}

// barrier flushes all buffers and blocks until every shard has drained its
// queue, after which the shard samplers are quiescent and safe to read.
// Callers hold p.mu. After Close the shards are already drained and
// stopped, so it is a no-op.
func (p *Parallel) barrier() {
	if p.closed {
		return
	}
	ack := make(chan struct{}, len(p.shards))
	for _, sh := range p.shards {
		p.flush(sh)
		sh.ch <- message{ack: ack}
	}
	for range p.shards {
		<-ack
	}
}

// Shards returns the shard count P.
func (p *Parallel) Shards() int { return len(p.shards) }

// Arrivals returns the total number of distinct edges processed across all
// shards. It synchronizes: all pending batches are processed first.
func (p *Parallel) Arrivals() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.barrier()
	var total uint64
	for _, sh := range p.shards {
		total += sh.s.Arrivals()
	}
	return total
}

// Merge drains all pending work and returns a sequential Sampler holding
// the union sample: the Capacity highest-priority edges across every
// shard, with the merge-time threshold. The returned sampler is
// independent of p — estimation may run on it while p keeps consuming the
// stream. Merge may be called any number of times: it only reads the shard
// reservoirs, so back-to-back merges with no processing in between return
// identical samplers. Ingestion is blocked for the full duration of the
// merge; services that query continuously should prefer Snapshot, which
// blocks ingestion only for the shard clone.
func (p *Parallel) Merge() (*core.Sampler, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, errors.New("engine: Merge on closed Parallel")
	}
	p.barrier()
	samplers := make([]*core.Sampler, len(p.shards))
	for i, sh := range p.shards {
		samplers[i] = sh.s
	}
	return p.merge(samplers)
}

// Snapshot drains all pending work, clones the shard reservoirs that
// changed since their previous clone (in parallel, one goroutine per dirty
// shard) and releases ingestion before merging the clones into the
// returned sequential Sampler. The result is bit-identical to what Merge
// would have returned at the same stream position — a deterministic
// function of (seed, edges fed so far, shard count) — but ingestion stalls
// only for the dirty-shard clone instead of the merge's sort and reservoir
// rebuild; shards untouched since the last snapshot reuse their prior
// immutable clone at zero cost, and a snapshot with no shard dirty at all
// skips the merge too, returning the previous merged sampler. Snapshots
// are immutable by contract: the engine never mutates a returned sampler
// (so any number of estimator goroutines may read it concurrently), and
// callers must not either — back-to-back snapshots of an idle engine share
// one sampler.
func (p *Parallel) Snapshot() (*core.Sampler, error) {
	p.mu.Lock()
	start := time.Now() // ingestion is blocked from here to Unlock
	if p.closed {
		p.mu.Unlock()
		return nil, errors.New("engine: Snapshot on closed Parallel")
	}
	p.barrier()
	epochs := make([]uint64, len(p.shards))
	clean := p.lastMerged != nil
	for i, sh := range p.shards {
		epochs[i] = sh.epoch
		clean = clean && p.lastMergedEpochs[i] == sh.epoch
	}
	if clean {
		m := p.lastMerged
		p.snapshots++
		p.shardsReused += uint64(len(p.shards))
		p.lastStall.Store(int64(time.Since(start)))
		p.mu.Unlock()
		return m, nil
	}
	refs := make([]*shardRef, len(p.shards))
	var wg sync.WaitGroup
	for i, sh := range p.shards {
		var fresh bool
		refs[i], fresh = p.acquireCloneLocked(sh, &wg)
		if fresh {
			p.shardsCloned++
		} else {
			p.shardsReused++
		}
	}
	p.snapshots++
	wg.Wait()
	p.lastStall.Store(int64(time.Since(start)))
	p.mu.Unlock()

	clones := make([]*core.Sampler, len(refs))
	for i, r := range refs {
		clones[i] = r.s
	}
	m, err := p.merge(clones)

	p.mu.Lock()
	for i, r := range refs {
		p.releaseCloneLocked(i, r)
	}
	if err == nil {
		// Publish for the clean fast path. Concurrent snapshots may store
		// out of order; any stored (sampler, epochs) pair is internally
		// consistent, and the clean check compares against live epochs.
		p.lastMerged = m
		p.lastMergedEpochs = epochs
	}
	p.mu.Unlock()
	return m, err
}

// acquireCloneLocked returns a reference to an immutable clone of sh frozen
// at its current epoch, reporting whether a fresh clone had to be taken. A
// shard untouched since its previous clone reuses that clone (it is
// immutable; any number of merges may read it); a dirty shard registers a
// new ref and schedules the clone on wg — the ref's sampler is valid only
// after wg.Wait(). Callers hold p.mu with the shards drained and must
// eventually hand the ref to releaseCloneLocked. Snapshot and
// WriteCheckpoint share this path, so a checkpoint right after a snapshot
// (or vice versa) clones nothing at all.
func (p *Parallel) acquireCloneLocked(sh *shard, wg *sync.WaitGroup) (ref *shardRef, fresh bool) {
	if sh.lastClone != nil && sh.snapEpoch == sh.epoch {
		sh.lastClone.refs++
		return sh.lastClone, false
	}
	ref = &shardRef{refs: 2} // the shard cache + the caller
	if old := sh.lastClone; old != nil {
		old.refs-- // drop the cache reference
		if old.refs == 0 {
			sh.clonePool.Put(old.s)
		}
	}
	sh.lastClone = ref
	sh.snapEpoch = sh.epoch
	wg.Add(1)
	go func() {
		defer wg.Done()
		var recycle *core.Sampler
		if v := sh.clonePool.Get(); v != nil {
			recycle = v.(*core.Sampler)
		}
		ref.s = sh.s.CloneReusing(recycle)
	}()
	return ref, true
}

// releaseCloneLocked drops the caller's reference on shard i's clone,
// retiring the backing arrays for reuse when the clone is no longer the
// shard's cached one and nobody else is reading it. Callers hold p.mu.
func (p *Parallel) releaseCloneLocked(i int, ref *shardRef) {
	ref.refs--
	if ref.refs == 0 && p.shards[i].lastClone != ref {
		p.shards[i].clonePool.Put(ref.s)
	}
}

// SnapshotStats reports cumulative snapshot counters: snapshots taken,
// shard clones performed, and clean shards that reused the previous clone.
// cloned+reused equals snapshots×Shards().
func (p *Parallel) SnapshotStats() (snapshots, cloned, reused uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snapshots, p.shardsCloned, p.shardsReused
}

// LastSnapshotStall returns how long the most recent Snapshot blocked
// ingestion: the barrier plus the dirty-shard clone, excluding the merge
// (which runs after ingestion resumes).
func (p *Parallel) LastSnapshotStall() time.Duration {
	return time.Duration(p.lastStall.Load())
}

// Decay returns the forward-decay configuration the engine runs with (the
// zero value when decay is off).
func (p *Parallel) Decay() core.Decay { return p.cfg.Decay }

// DecayLandmark returns the pinned forward-decay landmark L, with ok=false
// before the first edge pinned it. Lock-free; callers use it to range-check
// event times before admission.
func (p *Parallel) DecayLandmark() (uint64, bool) {
	v := p.landmarkVal.Load()
	return v, v != 0
}

// DecayHorizon returns the largest event time routed to any shard — the
// horizon decayed estimates from a merge or snapshot at this moment would
// target. It is tracked at admission (lock-free read; no ingestion stall)
// and is 0 when decay is off.
func (p *Parallel) DecayHorizon() uint64 { return p.horizon.Load() }

// ShardOf returns the shard index the given edge routes to. It is exposed
// for tests and benchmarks that need to construct shard-targeted traffic
// (e.g. to exercise dirty-shard snapshots).
func (p *Parallel) ShardOf(e graph.Edge) int {
	return int(randx.Mix64(e.Key()) % uint64(len(p.shards)))
}

// merge runs the priority-sampling merge over the given shard samplers with
// the derived merge seed. Safe without p.mu when the samplers are clones;
// for live shard samplers the caller must hold p.mu with the shards drained.
func (p *Parallel) merge(samplers []*core.Sampler) (*core.Sampler, error) {
	mcfg := p.cfg
	mcfg.Seed = p.mergeSeed
	m, err := core.Merge(samplers, mcfg)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	return m, nil
}

// Close flushes remaining work and stops the shard goroutines. The shard
// samplers stay readable (e.g. via a prior Merge result), but further use
// of p is invalid: Merge and Snapshot return an error, Process and
// ProcessBatch panic. Close is idempotent.
func (p *Parallel) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	for _, sh := range p.shards {
		p.flush(sh)
		close(sh.ch)
	}
	p.closed = true
	p.wg.Wait()
}

package engine

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"gps/internal/checkpoint"
	"gps/internal/core"
	"gps/internal/fault"
	"gps/internal/gen"
	"gps/internal/graph"
)

// feedBatches routes edges into p in fixed-size batches, so checkpoint
// positions land on batch boundaries.
func feedBatches(p *Parallel, edges []graph.Edge, batch int) {
	for lo := 0; lo < len(edges); lo += batch {
		hi := min(lo+batch, len(edges))
		p.ProcessBatch(edges[lo:hi])
	}
}

func engineCheckpoint(t *testing.T, p *Parallel, weightName string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := p.WriteCheckpoint(&buf, weightName); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func restoreEngine(t *testing.T, doc []byte) *Parallel {
	t.Helper()
	p, _, err := ReadParallelCheckpoint(bytes.NewReader(doc), nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCrashRestartEquivalence is the crash-equivalence harness of the
// checkpoint subsystem: run the sharded engine over a fixed-seed ~1M-edge
// R-MAT stream at m=100K, checkpoint at an arbitrary batch boundary, build
// a fresh engine from the checkpoint, finish the stream on it, and require
// the merged sample and every estimate to be bit-identical to an
// uninterrupted run. The checkpoint itself must also leave the running
// engine unperturbed.
func TestCrashRestartEquivalence(t *testing.T) {
	edges := gen.RMAT(17, 8, 0.57, 0.19, 0.19, 0x6A11) // ~1M edges, with R-MAT's natural duplicates
	const m, P, batch = 100_000, 4, 8192
	cfg := core.Config{Capacity: m, Seed: 0xD06}

	full, err := NewParallel(cfg, P)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	feedBatches(full, edges, batch)
	mFull, err := full.Merge()
	if err != nil {
		t.Fatal(err)
	}

	interrupted, err := NewParallel(cfg, P)
	if err != nil {
		t.Fatal(err)
	}
	defer interrupted.Close()
	cut := (len(edges) * 2 / 5) / batch * batch // an arbitrary batch boundary
	feedBatches(interrupted, edges[:cut], batch)
	doc := engineCheckpoint(t, interrupted, "uniform")

	// The survivor keeps running after the checkpoint; taking it must not
	// have disturbed the run.
	feedBatches(interrupted, edges[cut:], batch)
	mSurvivor, err := interrupted.Merge()
	if err != nil {
		t.Fatal(err)
	}
	requireSameSignature(t, "survivor vs uninterrupted", mSurvivor, mFull)

	// The restored engine finishes the stream from the checkpoint position.
	restored := restoreEngine(t, doc)
	defer restored.Close()
	if got := restored.Processed(); got != uint64(cut) {
		t.Fatalf("restored position %d, want %d", got, cut)
	}
	if restored.Shards() != P || restored.Capacity() != m {
		t.Fatalf("restored topology %d/%d, want %d/%d", restored.Shards(), restored.Capacity(), P, m)
	}
	feedBatches(restored, edges[cut:], batch)
	mRestored, err := restored.Merge()
	if err != nil {
		t.Fatal(err)
	}
	requireSameSignature(t, "restored vs uninterrupted", mRestored, mFull)
	if a, b := core.EstimateCliques4Post(mRestored), core.EstimateCliques4Post(mFull); a != b {
		t.Fatalf("4-clique estimates diverge: %v vs %v", a, b)
	}
	if a, b := core.EstimateStars3Post(mRestored), core.EstimateStars3Post(mFull); a != b {
		t.Fatalf("3-star estimates diverge: %v vs %v", a, b)
	}
	// Snapshot must agree with Merge on the restored engine too.
	snap, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	requireSameSignature(t, "restored snapshot vs merge", snap, mRestored)
}

// TestCrashRestartEquivalenceUnderFaults extends the crash-equivalence
// harness with injected checkpoint failures: with a good checkpoint on
// disk, a later checkpoint attempt that dies at the payload write, the
// fsync, or the publishing rename must change nothing — no torn
// ckpt-*.gpsc, no leftover temporary, the previous file byte-identical —
// and restoring from the directory must still finish the stream
// bit-identical to an uninterrupted run.
func TestCrashRestartEquivalenceUnderFaults(t *testing.T) {
	edges := testStream(2000, 40_000, 0xC4A5)
	const m, P, batch = 5_000, 2, 1024
	cfg := core.Config{Capacity: m, Seed: 0xD07}

	full, err := NewParallel(cfg, P)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	feedBatches(full, edges, batch)
	mFull, err := full.Merge()
	if err != nil {
		t.Fatal(err)
	}

	p, err := NewParallel(cfg, P)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	dir := t.TempDir()
	writeTo := func(path string) error {
		_, err := checkpoint.WriteFileAtomic(path, func(w io.Writer) error {
			_, err := p.WriteCheckpoint(w, "uniform")
			return err
		})
		return err
	}

	cut := (len(edges) * 2 / 5) / batch * batch
	feedBatches(p, edges[:cut], batch)
	good := filepath.Join(dir, "ckpt-000001"+checkpoint.FileExt)
	if err := writeTo(good); err != nil {
		t.Fatal(err)
	}
	goodBytes, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	feedBatches(p, edges[cut:], batch)
	for _, point := range []string{"checkpoint.write", "checkpoint.fsync", "checkpoint.rename"} {
		armFaults(t, 1, point+":error:times=1")
		err := writeTo(filepath.Join(dir, "ckpt-000002"+checkpoint.FileExt))
		fault.Disarm()
		if err == nil || !fault.IsInjected(err) {
			t.Fatalf("%s: checkpoint error = %v, want the injected fault", point, err)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.Name() != filepath.Base(good) {
				t.Fatalf("%s: torn artifact %q left in checkpoint dir", point, e.Name())
			}
		}
		onDisk, err := os.ReadFile(good)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(onDisk, goodBytes) {
			t.Fatalf("%s: previous checkpoint mutated by the failed write", point)
		}
	}

	// The surviving checkpoint restores and finishes the stream exactly.
	latest, err := checkpoint.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if latest != good {
		t.Fatalf("Latest = %q, want the pre-fault checkpoint %q", latest, good)
	}
	f, err := os.Open(latest)
	if err != nil {
		t.Fatal(err)
	}
	restored, _, err := ReadParallelCheckpoint(f, nil)
	f.Close()
	if err != nil {
		t.Fatalf("restore after faulted checkpoints: %v", err)
	}
	defer restored.Close()
	if got := restored.Processed(); got != uint64(cut) {
		t.Fatalf("restored position %d, want %d", got, cut)
	}
	feedBatches(restored, edges[cut:], batch)
	mRestored, err := restored.Merge()
	if err != nil {
		t.Fatal(err)
	}
	requireSameSignature(t, "restored-after-faults vs uninterrupted", mRestored, mFull)

	// And once the schedule clears, the next checkpoint publishes normally.
	next := filepath.Join(dir, "ckpt-000002"+checkpoint.FileExt)
	if err := writeTo(next); err != nil {
		t.Fatalf("checkpoint after faults cleared: %v", err)
	}
	if latest, err = checkpoint.Latest(dir); err != nil || latest != next {
		t.Fatalf("Latest = %q, %v; want the recovered checkpoint %q", latest, err, next)
	}
}

// TestCrashRestartEquivalenceTriangleWeight repeats the crash-restart
// property with the topology-dependent triangle weight on a clustered
// stream, where restored weights and RNG draws must interleave exactly as
// in the uninterrupted run.
func TestCrashRestartEquivalenceTriangleWeight(t *testing.T) {
	edges := testStream(4000, 60_000, 0xBEE)
	const m, P, batch = 8_000, 4, 1024
	cfg := core.Config{Capacity: m, Weight: core.TriangleWeight, Seed: 0x31}

	full, err := NewParallel(cfg, P)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	feedBatches(full, edges, batch)
	mFull, err := full.Merge()
	if err != nil {
		t.Fatal(err)
	}

	interrupted, err := NewParallel(cfg, P)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(edges) / 2 / batch * batch
	feedBatches(interrupted, edges[:cut], batch)
	doc := engineCheckpoint(t, interrupted, "triangle")
	interrupted.Close()

	restored, name, err := ReadParallelCheckpoint(bytes.NewReader(doc), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if name != "triangle" {
		t.Fatalf("weight name %q", name)
	}
	feedBatches(restored, edges[cut:], batch)
	mRestored, err := restored.Merge()
	if err != nil {
		t.Fatal(err)
	}
	requireSameSignature(t, "restored vs uninterrupted (triangle)", mRestored, mFull)
}

// TestCheckpointDirtyShardReuse pins the incremental checkpoint contract
// at the acceptance scale (idle 4-shard engine, m=100K): a checkpoint of an
// untouched engine serializes nothing — every shard blob is reused — and
// traffic routed to a single shard re-serializes exactly that shard. Idle
// re-checkpoints must reproduce the file byte for byte.
func TestCheckpointDirtyShardReuse(t *testing.T) {
	edges := testStream(20_000, 300_000, 0xD1)
	const m, P = 100_000, 4
	p, err := NewParallel(core.Config{Capacity: m, Seed: 3}, P)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.ProcessBatch(edges[:250_000])

	first := engineCheckpoint(t, p, "uniform")
	if _, encoded, reused := p.CheckpointStats(); encoded != P || reused != 0 {
		t.Fatalf("first checkpoint: encoded %d reused %d, want %d/0", encoded, reused, P)
	}

	// Idle: nothing moved, so nothing may be re-serialized, and the file
	// must be identical.
	second := engineCheckpoint(t, p, "uniform")
	if ckpts, encoded, reused := p.CheckpointStats(); ckpts != 2 || encoded != P || reused != P {
		t.Fatalf("idle checkpoint: ckpts %d encoded %d reused %d, want 2/%d/%d", ckpts, encoded, reused, P, P)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("idle re-checkpoint differs byte-wise")
	}

	// Dirty exactly one shard; only it may be re-serialized.
	target := shardTargeted(p, edges[250_000:], 2)
	if len(target) == 0 {
		t.Fatal("no traffic routed to shard 2")
	}
	p.ProcessBatch(target)
	third := engineCheckpoint(t, p, "uniform")
	if _, encoded, reused := p.CheckpointStats(); encoded != P+1 || reused != P+(P-1) {
		t.Fatalf("one-dirty checkpoint: encoded %d reused %d, want %d/%d", encoded, reused, P+1, P+(P-1))
	}
	if bytes.Equal(second, third) {
		t.Fatal("checkpoint unchanged despite new traffic")
	}

	// A different recorded weight name must invalidate the blob cache even
	// with no traffic: the cached bytes embed the old name.
	var renamed bytes.Buffer
	pos, err := p.WriteCheckpoint(&renamed, "adjacency")
	if err != nil {
		t.Fatal(err)
	}
	if pos != uint64(250_000+len(target)) {
		t.Fatalf("reported position %d, want %d", pos, 250_000+len(target))
	}
	if _, encoded, _ := p.CheckpointStats(); encoded != 2*P+1 {
		t.Fatalf("renamed checkpoint re-encoded %d shard blobs total, want %d", encoded, 2*P+1)
	}
	if _, name, err := ReadParallelCheckpoint(bytes.NewReader(renamed.Bytes()), nil); err != nil || name != "adjacency" {
		t.Fatalf("renamed checkpoint decodes as %q, %v", name, err)
	}

	// Restores from the idle pair must be indistinguishable, and the dirty
	// one must carry the extra traffic.
	a, b, c := restoreEngine(t, first), restoreEngine(t, second), restoreEngine(t, third)
	defer a.Close()
	defer b.Close()
	defer c.Close()
	ma, _ := a.Merge()
	mb, _ := b.Merge()
	requireSameSignature(t, "idle restores", ma, mb)
	if c.Processed() != uint64(250_000+len(target)) {
		t.Fatalf("dirty restore position %d, want %d", c.Processed(), 250_000+len(target))
	}
}

// TestCheckpointConcurrentWithQueries takes checkpoints while ingestion and
// snapshot queries run concurrently (the -race variant of the
// crash-equivalence harness). Every checkpoint observed mid-flight must be
// a consistent batch-boundary state: restoring it and replaying the prefix
// it claims through a fresh engine yields the identical merged sample.
func TestCheckpointConcurrentWithQueries(t *testing.T) {
	edges := testStream(6_000, 120_000, 0xCC)
	const m, P, batch = 10_000, 4, 4096
	cfg := core.Config{Capacity: m, Seed: 0x77}
	p, err := NewParallel(cfg, P)
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg    sync.WaitGroup
		stop  = make(chan struct{})
		docMu sync.Mutex
		docs  [][]byte
	)
	wg.Add(1)
	go func() { // checkpoint taker
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if _, err := p.WriteCheckpoint(&buf, "uniform"); err != nil {
				t.Error(err)
				return
			}
			docMu.Lock()
			docs = append(docs, buf.Bytes())
			docMu.Unlock()
		}
	}()
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func() { // snapshot queriers
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := p.Snapshot()
				if err != nil {
					t.Error(err)
					return
				}
				_ = core.EstimatePost(snap)
			}
		}()
	}
	feedBatches(p, edges, batch)
	close(stop)
	wg.Wait()
	// One more at the final position so the replay set is never empty.
	docs = append(docs, engineCheckpoint(t, p, "uniform"))
	p.Close()

	checked := make(map[uint64]bool)
	for _, doc := range docs {
		restored := restoreEngine(t, doc)
		pos := restored.Processed()
		if pos%batch != 0 && pos != uint64(len(edges)) {
			t.Fatalf("checkpoint cut a batch: position %d", pos)
		}
		if checked[pos] {
			restored.Close()
			continue
		}
		checked[pos] = true
		replay, err := NewParallel(cfg, P)
		if err != nil {
			t.Fatal(err)
		}
		feedBatches(replay, edges[:pos], batch)
		mr, err := restored.Merge()
		if err != nil {
			t.Fatal(err)
		}
		mf, err := replay.Merge()
		if err != nil {
			t.Fatal(err)
		}
		requireSameSignature(t, "checkpoint replay", mr, mf)
		restored.Close()
		replay.Close()
	}
	if len(checked) == 0 {
		t.Fatal("no checkpoints verified")
	}
}

// TestCheckpointRejectsClosed pins the lifecycle contract.
func TestCheckpointRejectsClosed(t *testing.T) {
	p, err := NewParallel(core.Config{Capacity: 10, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := p.WriteCheckpoint(&bytes.Buffer{}, ""); err == nil {
		t.Fatal("checkpoint of closed engine succeeded")
	}
}

// TestEngineCheckpointRejectsCorruption covers container-level damage the
// per-document checksums cannot see on their own: shard count mismatches
// and trailing garbage.
func TestEngineCheckpointRejectsCorruption(t *testing.T) {
	p, err := NewParallel(core.Config{Capacity: 100, Seed: 9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.ProcessBatch(testStream(200, 2000, 5))
	doc := engineCheckpoint(t, p, "uniform")

	if _, _, err := ReadParallelCheckpoint(bytes.NewReader(doc[:len(doc)-3]), nil); err == nil {
		t.Fatal("truncated container accepted")
	}
	if _, _, err := ReadParallelCheckpoint(bytes.NewReader(append(append([]byte(nil), doc...), 0x00)), nil); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	for _, off := range []int{7, len(doc) / 2, len(doc) - 20} {
		corrupt := append([]byte(nil), doc...)
		corrupt[off] ^= 0x40
		if _, _, err := ReadParallelCheckpoint(bytes.NewReader(corrupt), nil); err == nil {
			t.Fatalf("bit flip at %d accepted", off)
		}
	}
}

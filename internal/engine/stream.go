package engine

import (
	"io"
	"time"

	"gps/internal/core"
	"gps/internal/graph"
	"gps/internal/obs"
)

// Stream is the engine abstraction the serving layer programs against: one
// live sampled graph stream, whatever its time model. Both engine shapes —
// the plain sharded Parallel and the sliding-window Windowed chain —
// implement it in full, so a server can host any mix of them behind one
// registry without branching on concrete types.
//
// The interface has three parts:
//
//   - The data plane: Process/ProcessBatch feed records, Snapshot freezes an
//     immutable query view (windowed engines answer per query instead and
//     return an error here), Estimate answers a trailing-window query
//     (plain engines return an error), WriteCheckpoint serializes the whole
//     state, Close stops the shard goroutines.
//
//   - Telemetry: the ring/snapshot/checkpoint/supervisor readers every
//     scrape and /v1/stats document needs. On a Windowed engine these read
//     the live pane (rotation replaces it, so each call re-fetches), except
//     for the window-specific accessors which cover the whole chain.
//
//   - Capability accessors: Decay*/WindowSpec report which time model the
//     stream runs, with zero values on engines that lack the capability —
//     callers branch on data, never on dynamic type.
type Stream interface {
	// Process feeds one record. It panics on a closed engine; prefer
	// ProcessBatch, which reports closure as an error on windowed engines.
	Process(e graph.Edge)
	// ProcessBatch feeds a batch in stream order. A non-nil error means the
	// batch was (partially) lost: the engine is closed, or a windowed pane
	// rotation failed mid-batch.
	ProcessBatch(edges []graph.Edge) error
	// Snapshot returns an immutable merged sampler of the current state.
	// Windowed engines have no standing snapshot (queries merge panes fresh
	// per call) and return an error.
	Snapshot() (*core.Sampler, error)
	// Estimate answers a trailing-window query of win event-time units
	// (0 means the configured maximum). Plain engines return an error:
	// window queries need the pane chain.
	Estimate(win uint64) (WindowEstimates, error)

	// Arrivals is the position estimates are current to: distinct arrivals
	// on a plain engine, the stream position (records fed, counted once) on
	// a windowed one. Both barrier the live data plane.
	Arrivals() uint64
	// Processed is the stream position a resume replays past: every record
	// ever fed, duplicates included.
	Processed() uint64
	// Deletions reports the turnstile deletion verdicts (applied to a
	// sampled edge vs vacuous). It barriers the live data plane; scrapes
	// should prefer RetiredDeletions on windowed engines.
	Deletions() (applied, unsampled uint64)

	// WriteCheckpoint serializes the engine as one GPSC document (container
	// documents for sharded and windowed state) and returns the stream
	// position it covers.
	WriteCheckpoint(w io.Writer, weightName string) (position uint64, err error)
	// CheckpointStats reports checkpoints taken, shard blobs freshly
	// encoded, and cached blobs reused.
	CheckpointStats() (checkpoints, encoded, reused uint64)
	// SnapshotStats reports snapshots taken, shards cloned, clean clones
	// reused.
	SnapshotStats() (snapshots, cloned, reused uint64)
	// LastSnapshotStall is the ingestion stall of the most recent snapshot
	// or checkpoint barrier.
	LastSnapshotStall() time.Duration
	// RingStats reads the per-shard ingest ring gauges (racy point-in-time
	// values; windowed engines report the live pane's rings).
	RingStats() RingStats
	// Shards is the resolved shard count P.
	Shards() int
	// Capacity is the reservoir capacity m.
	Capacity() int
	// Health reports per-shard supervisor health and whether any shard has
	// degraded (lost edges to a lossy recovery).
	Health() (shards []ShardHealth, degraded bool)
	// Restarts counts shard consumer panics recovered by the supervisor.
	Restarts() uint64
	// LostEdges counts edges dropped by lossy shard recoveries.
	LostEdges() uint64
	// Degraded reports whether any shard's sampler has diverged from the
	// fault-free run (sticky).
	Degraded() bool
	// RegisterMetrics attaches the engine's metric families to reg, with
	// the given labels on every sample — the hook multi-tenant registries
	// use to distinguish streams within shared families.
	RegisterMetrics(reg *obs.Registry, labels ...obs.Label)

	// Decay reports the forward-decay configuration; the zero value means
	// the stream is undecayed (always, on windowed engines).
	Decay() core.Decay
	// DecayLandmark reports the pinned decay landmark; ok is false before
	// pinning, and always on undecayed or windowed engines.
	DecayLandmark() (landmark uint64, ok bool)
	// DecayHorizon is the largest event time routed under decay (0 when
	// undecayed or windowed).
	DecayHorizon() uint64
	// WindowSpec reports the sliding-window geometry; ok is false on plain
	// engines.
	WindowSpec() (cfg WindowConfig, ok bool)
	// Panes is the number of retained panes (0 on plain engines).
	Panes() int
	// Horizon is the largest event time ingested into the pane chain (0 on
	// plain engines; distinct from DecayHorizon).
	Horizon() uint64
	// RetiredDeletions sums deletion verdicts over the retired panes
	// without barriering the live pane — the scrape-safe reader. Plain
	// engines report zero (their verdicts live in query snapshots).
	RetiredDeletions() (applied, unsampled uint64)

	// Close drains and stops the shard goroutines. Idempotent.
	Close()
}

// Compile-time proof that both engine shapes satisfy the interface.
var (
	_ Stream = (*Parallel)(nil)
	_ Stream = (*Windowed)(nil)
)

// Estimate on a plain engine fails: trailing-window queries need the pane
// chain a Windowed engine keeps. (Capability accessor counterpart:
// WindowSpec reports ok=false.)
func (p *Parallel) Estimate(win uint64) (WindowEstimates, error) {
	return WindowEstimates{}, errNotWindowed
}

// WindowSpec reports that a plain engine has no sliding-window geometry.
func (p *Parallel) WindowSpec() (WindowConfig, bool) { return WindowConfig{}, false }

// Panes reports zero: a plain engine keeps no pane chain.
func (p *Parallel) Panes() int { return 0 }

// Horizon reports zero: the pane-chain event horizon does not exist on a
// plain engine (the decayed event horizon is DecayHorizon).
func (p *Parallel) Horizon() uint64 { return 0 }

// RetiredDeletions reports zero: a plain engine has no retired panes; its
// deletion verdicts are read from merged snapshots (Deletions barriers).
func (p *Parallel) RetiredDeletions() (applied, unsampled uint64) { return 0, 0 }

package engine

import (
	"fmt"

	"gps/internal/core"
	"gps/internal/fault"
	"gps/internal/graph"
	"gps/internal/obs"
)

// Shard supervision: each shard consumer runs under a recover loop that
// survives panics in the drain path (a corrupted batch, a bug in a weight
// function, an injected fault) instead of crashing the process with the
// other P-1 healthy shards.
//
// # Recovery
//
// The ring protocol makes exact recovery possible surprisingly often: the
// consumer publishes head only after a span is fully processed, so a panic
// leaves the failing span — and everything after it — still queued. If the
// shard's last immutable snapshot clone was taken at the current consumer
// position (cloneHead == head: nothing drained since the clone), swapping
// in a copy of the clone and letting the consumer replay the backlog
// reproduces the pre-panic sampler bit for bit; estimates are then as if
// the panic never happened.
//
// When edges were drained after the clone (cloneHead < head) those edges
// are gone — the clone is still the best available state, so the
// supervisor restores it, counts the gap as lost, and marks the shard
// degraded (sticky: the sampler has permanently diverged from the
// fault-free run). A shard that has never been cloned rebuilds from its
// original config as a last resort, losing its whole history.
//
// # Quarantine
//
// Replay reprocesses the span that panicked, so a deterministically
// poisonous batch would panic forever. The supervisor tracks consecutive
// panics with no successfully drained span in between; past
// maxPanicStreak it quarantines the backlog — discards everything queued
// (counted as lost, degrading the shard) — and resumes on fresh traffic.
//
// # Synchronization
//
// Recovery runs on the shard's own goroutine. Barriers cannot observe a
// half-recovered shard: a panic strikes mid-span, so head < tail for the
// whole recovery, and drainWait blocks until the recovered consumer (or
// the quarantine skip) advances head — the sampler swap is sequenced
// before that atomic store, so any barrier that saw the ring drained also
// sees the new sampler. Clone bookkeeping is mutated under p.mu like the
// snapshot machinery it shares.

// maxPanicStreak is how many consecutive panics (with no span drained in
// between) a shard tolerates before quarantining its ring backlog.
const maxPanicStreak = 8

// runShard is the supervised consumer loop for one shard: consume until
// the ring closes, recovering and restoring the sampler after any panic.
func (p *Parallel) runShard(idx int, sh *shard) {
	defer p.wg.Done()
	streak := 0
	for {
		if p.consumeShard(sh, &streak) {
			return
		}
		p.recoverShard(idx, sh, &streak)
	}
}

// consumeShard runs the ring consumer, reporting true on a clean exit
// (ring closed and drained) and false when the drain path panicked.
func (p *Parallel) consumeShard(sh *shard, streak *int) (done bool) {
	defer func() {
		if rec := recover(); rec != nil {
			*streak++
			sh.lastPanic.Store(fmt.Sprint(rec))
			done = false
		}
	}()
	sh.ring.consume(func(edges []graph.Edge) {
		if fault.Enabled() {
			if err := fault.Hit(fault.ShardDrain); err != nil {
				// The drain path has no error channel; an injected error
				// here escalates to the same panic path a real one would.
				panic(err)
			}
		}
		start := obs.Start()
		sh.s.ProcessBatch(edges)
		*streak = 0
		if obs.Enabled {
			p.met.drainNS.ObserveSince(start)
			p.met.drainEdges.Observe(uint64(len(edges)))
		}
	})
	return true
}

// recoverShard restores the shard sampler after a panic: from the last
// immutable clone when one exists (exact when nothing was drained since
// the clone, lossy otherwise), or from scratch as a last resort. It runs
// on the shard goroutine with head frozen mid-span, so barriers wait out
// the whole recovery.
func (p *Parallel) recoverShard(idx int, sh *shard, streak *int) {
	sh.restarts.Add(1)
	p.restartsTotal.Add(1)

	p.mu.Lock()
	head := sh.ring.head.Load()
	var restored *core.Sampler
	if sh.lastClone != nil {
		if gap := head - sh.cloneHead; gap > 0 {
			// Edges drained after the clone are unrecoverable: the clone
			// predates them and the ring no longer holds them.
			sh.lost.Add(gap)
			sh.degraded.Store(true)
		}
		restored = sh.lastClone.s.Clone()
		// The restored sampler's content equals lastClone at the current
		// consumer position — re-anchor so a future recovery counts only
		// newly drained edges as lost.
		sh.cloneHead = head
	} else {
		// Never cloned: rebuild from the shard's original config. Every
		// edge the consumer ever drained — plus any restored checkpoint
		// history — is lost.
		fresh, err := core.NewSampler(sh.cfg)
		if err != nil {
			// The config built a sampler once; failing now means the
			// process state is beyond repair.
			p.mu.Unlock()
			panic(fmt.Sprintf("engine: shard %d rebuild: %v", idx, err))
		}
		if lm := p.landmarkVal.Load(); lm != 0 && p.decay {
			if err := fresh.SetDecayLandmark(lm); err != nil {
				p.mu.Unlock()
				panic(fmt.Sprintf("engine: shard %d rebuild landmark: %v", idx, err))
			}
		}
		if lost := sh.baseProcessed + head; lost > 0 {
			sh.lost.Add(lost)
			sh.degraded.Store(true)
		}
		// With nothing ever drained (head == 0, no restored history) the
		// rebuild is exact, not lossy: the fresh sampler is seeded like the
		// original and the whole backlog is still queued for replay.
		sh.baseProcessed = 0 // the rebuilt sampler starts empty
		restored = fresh
	}
	sh.s = restored
	if *streak >= maxPanicStreak {
		// Deterministically poisonous backlog: replaying it would panic
		// forever. Discard it (the skip's head store publishes the sampler
		// swap to any waiting barrier) and resume on fresh traffic.
		skipped := sh.ring.skipAll()
		sh.lost.Add(uint64(skipped))
		sh.degraded.Store(true)
		*streak = 0
	}
	p.mu.Unlock()
}

// ShardHealth is one shard's self-healing state, reported by Health.
type ShardHealth struct {
	// Restarts counts drain-path panics the supervisor recovered.
	Restarts uint64 `json:"restarts"`
	// LostEdges counts edges dropped by lossy recoveries: drained-but-
	// unrecoverable gaps, quarantined backlogs, and from-scratch rebuilds.
	LostEdges uint64 `json:"lost_edges"`
	// Degraded is sticky: some recovery lost edges, so this shard's
	// sampler has permanently diverged from the fault-free run.
	Degraded bool `json:"degraded"`
	// LastPanic is the message of the most recent recovered panic.
	LastPanic string `json:"last_panic,omitempty"`
}

// Health reports the per-shard self-healing state and whether any shard
// is degraded (lost edges to a recovery — estimates are still served but
// no longer bit-identical to a fault-free run). Lock-free.
func (p *Parallel) Health() (shards []ShardHealth, degraded bool) {
	shards = make([]ShardHealth, len(p.shards))
	for i, sh := range p.shards {
		shards[i] = ShardHealth{
			Restarts:  sh.restarts.Load(),
			LostEdges: sh.lost.Load(),
			Degraded:  sh.degraded.Load(),
		}
		if msg, ok := sh.lastPanic.Load().(string); ok {
			shards[i].LastPanic = msg
		}
		degraded = degraded || shards[i].Degraded
	}
	return shards, degraded
}

// Degraded reports whether any shard has lost edges to a recovery.
// Lock-free; serve uses it to flag estimates.
func (p *Parallel) Degraded() bool {
	for _, sh := range p.shards {
		if sh.degraded.Load() {
			return true
		}
	}
	return false
}

// Restarts returns the total shard consumer restarts across all shards.
func (p *Parallel) Restarts() uint64 { return p.restartsTotal.Load() }

// LostEdges returns the total edges lost to lossy recoveries.
func (p *Parallel) LostEdges() uint64 {
	var total uint64
	for _, sh := range p.shards {
		total += sh.lost.Load()
	}
	return total
}

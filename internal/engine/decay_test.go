package engine

import (
	"bytes"
	"testing"

	"gps/internal/core"
	"gps/internal/graph"
)

// timedStream stamps a deterministic test stream with event time = stream
// position offset by base, the activity-stream shape of the decay tests.
func timedStream(n int, seed uint64, base uint64) []graph.Edge {
	edges := testStream(500, n, seed)
	for i := range edges {
		edges[i].TS = base + uint64(i)
	}
	return edges
}

// TestEngineDecayLandmarkAgreement pins the per-shard landmark agreement:
// the first routed edge fixes one landmark for every shard, so the merged
// sampler carries it, priorities are mutually comparable (the merge
// accepts them), and the merged horizon is the stream's max event time.
func TestEngineDecayLandmarkAgreement(t *testing.T) {
	edges := timedStream(8000, 0xA9E, 500) // event times 500…8499
	cfg := core.Config{Capacity: 600, Weight: core.TriangleWeight, Seed: 11, Decay: core.Decay{HalfLife: 2000}}
	p, err := NewParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	feedBatches(p, edges, 1024)

	if got := p.DecayHorizon(); got != 8499 {
		t.Fatalf("engine horizon %d, want 8499", got)
	}
	m, err := p.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if lm, set := m.DecayLandmark(); !set || lm != 500 {
		t.Fatalf("merged landmark (%d,%v), want (500,true) — the first edge's event time", lm, set)
	}
	if m.DecayHorizon() != 8499 {
		t.Fatalf("merged horizon %d, want 8499", m.DecayHorizon())
	}
	est := core.EstimatePost(m)
	if !est.Decayed || est.DecayHorizon != 8499 || est.DecayedEdges <= 0 {
		t.Fatalf("merged estimates not decayed: %+v", est)
	}
	// Snapshot agrees with Merge bit for bit under decay too.
	snap, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	requireSameSignature(t, "decayed snapshot vs merge", snap, m)
}

// TestEngineDecayedCrashRestartEquivalence is the decayed variant of the
// crash-equivalence harness, run in both event-time modes: real timestamps
// (the decay state must survive serialization) and untimed arrival-order
// decay (the engine's event clock must resume exactly, or the restored
// run's boosts would shift by the lost prefix).
func TestEngineDecayedCrashRestartEquivalence(t *testing.T) {
	for _, mode := range []struct {
		name string
		base uint64 // 0 = untimed stream, clock-stamped by the engine
	}{{"timed", 1000}, {"untimed", 0}} {
		t.Run(mode.name, func(t *testing.T) {
			var edges []graph.Edge
			if mode.base == 0 {
				edges = testStream(500, 20000, 0xDEC)
			} else {
				edges = timedStream(20000, 0xDEC, mode.base)
			}
			const batch = 1000
			cfg := core.Config{Capacity: 800, Weight: core.TriangleWeight, Seed: 0xD06, Decay: core.Decay{HalfLife: 5000}}

			full, err := NewParallel(cfg, 4)
			if err != nil {
				t.Fatal(err)
			}
			defer full.Close()
			feedBatches(full, edges, batch)
			mFull, err := full.Merge()
			if err != nil {
				t.Fatal(err)
			}

			interrupted, err := NewParallel(cfg, 4)
			if err != nil {
				t.Fatal(err)
			}
			defer interrupted.Close()
			cut := len(edges) / 2 / batch * batch
			feedBatches(interrupted, edges[:cut], batch)
			doc := engineCheckpoint(t, interrupted, "triangle")
			if doc[4] != 2 {
				t.Fatalf("decayed engine checkpoint version %d, want 2", doc[4])
			}

			// The survivor finishes unperturbed.
			feedBatches(interrupted, edges[cut:], batch)
			mSurv, err := interrupted.Merge()
			if err != nil {
				t.Fatal(err)
			}
			requireSameSignature(t, "survivor vs uninterrupted", mSurv, mFull)

			// The restored engine finishes bit-identically too.
			restored := restoreEngine(t, doc)
			defer restored.Close()
			if restored.Decay() != cfg.Decay {
				t.Fatalf("restored decay %+v, want %+v", restored.Decay(), cfg.Decay)
			}
			feedBatches(restored, edges[cut:], batch)
			mRest, err := restored.Merge()
			if err != nil {
				t.Fatal(err)
			}
			requireSameSignature(t, "restored vs uninterrupted", mRest, mFull)
			if core.EstimatePost(mRest) != core.EstimatePost(mFull) {
				t.Fatal("decayed estimates diverge after restore")
			}

			// checkpoint → restore → checkpoint reproduces the bytes.
			again := engineCheckpoint(t, restoreEngine(t, doc), "triangle")
			if !bytes.Equal(doc, again) {
				t.Fatal("engine checkpoint bytes not idempotent under decay")
			}
		})
	}
}

// TestEngineUndecayedCheckpointStaysV1 pins the version gate from the
// engine side: no decay, no version bump, so pre-decay readers of the
// format see unchanged bytes.
func TestEngineUndecayedCheckpointStaysV1(t *testing.T) {
	p, err := NewParallel(core.Config{Capacity: 100, Seed: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.ProcessBatch(testStream(100, 500, 0x11))
	doc := engineCheckpoint(t, p, "uniform")
	if doc[4] != 1 {
		t.Fatalf("undecayed engine checkpoint version %d, want 1", doc[4])
	}
}

package engine

import (
	"strconv"

	"gps/internal/obs"
)

// engineMetrics holds the engine-owned histograms. The instruments exist
// from startShards on (before any registry does) so the shard consumers can
// record into them unconditionally; RegisterMetrics attaches them — plus
// scrape-time readers over the engine's existing counters — to a registry.
//
// Recording discipline: the drain instruments sit on the ingest hot path
// (once per drained span) and are gated on obs.Enabled, so the gps_noobs
// build compiles them out; the barrier/snapshot/checkpoint instruments are
// per-query cold paths and record unconditionally.
type engineMetrics struct {
	drainNS      *obs.Histogram // span drain latency, ns
	drainEdges   *obs.Histogram // edges per drained span
	barrierNS    *obs.Histogram // admission-barrier ring-drain wait, ns
	stallNS      *obs.Histogram // snapshot/checkpoint ingestion stall, ns
	ckptEncNS    *obs.Histogram // checkpoint parallel-encode phase, ns
	ckptEncBytes *obs.Histogram // bytes per freshly encoded shard blob
}

func (m *engineMetrics) init() {
	if m.drainNS != nil {
		return
	}
	m.drainNS = obs.NewHistogram(obs.Latency())
	m.drainEdges = obs.NewHistogram(obs.Sizes(20))
	m.barrierNS = obs.NewHistogram(obs.Latency())
	m.stallNS = obs.NewHistogram(obs.Latency())
	m.ckptEncNS = obs.NewHistogram(obs.Latency())
	m.ckptEncBytes = obs.NewHistogram(obs.Sizes(34))
}

// RegisterMetrics attaches the engine's telemetry to reg under the
// gps_engine_* namespace: data-plane gauges (per-shard ring depth, backlog,
// epochs), backpressure and scheduling counters (producer stalls, consumer
// parks/wakeups), the drain/barrier/stall/encode histograms, and the
// snapshot/checkpoint bookkeeping counters. Scrape-time readers are either
// lock-free atomics or take p.mu briefly; none of them touches the
// admission lock, so scraping never stalls ingestion. labels (e.g. a
// stream name) are stamped on every sample; the per-shard samples carry
// them plus their shard label.
func (p *Parallel) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.RegisterGaugeFunc("gps_engine_shards", "Shard (and ring) count P.",
		func() float64 { return float64(len(p.shards)) }, labels...)
	reg.RegisterGaugeFunc("gps_engine_ring_capacity", "Per-shard ring capacity in edges.",
		func() float64 { return float64(len(p.shards[0].ring.buf)) }, labels...)
	reg.RegisterGaugeFunc("gps_engine_ring_backlog", "Edges queued across all rings (racy gauge).",
		func() float64 {
			total := 0
			for _, sh := range p.shards {
				total += sh.ring.depth()
			}
			return float64(total)
		}, labels...)
	for i, sh := range p.shards {
		sh := sh
		shardLabels := make([]obs.Label, len(labels), len(labels)+1)
		copy(shardLabels, labels)
		shardLabels = append(shardLabels, obs.Label{Key: "shard", Value: strconv.Itoa(i)})
		reg.RegisterGaugeFunc("gps_engine_ring_depth", "Edges queued in one shard ring (racy gauge).",
			func() float64 { return float64(sh.ring.depth()) }, shardLabels...)
		reg.RegisterCounterFunc("gps_engine_shard_epoch", "Edges ever routed to one shard (includes queued).",
			sh.epoch.Load, shardLabels...)
	}
	reg.RegisterCounterFunc("gps_engine_ring_stalls_total",
		"Producer appends that found a ring full and waited (backpressure).",
		func() uint64 { return p.sumRings(func(r *ring) uint64 { return r.stalls.Load() }) }, labels...)
	reg.RegisterCounterFunc("gps_engine_ring_parks_total",
		"Consumer sleeps on an empty ring.",
		func() uint64 { return p.sumRings(func(r *ring) uint64 { return r.parks.Load() }) }, labels...)
	reg.RegisterCounterFunc("gps_engine_ring_wakeups_total",
		"Consumer broadcasts to waiting producers or barriers.",
		func() uint64 { return p.sumRings(func(r *ring) uint64 { return r.wakeups.Load() }) }, labels...)

	reg.RegisterHistogram("gps_engine_drain_batch_seconds",
		"Shard consumer latency per drained ring span (absent under gps_noobs builds).", p.met.drainNS, labels...)
	reg.RegisterHistogram("gps_engine_drain_batch_edges",
		"Edges per drained ring span (absent under gps_noobs builds).", p.met.drainEdges, labels...)
	reg.RegisterHistogram("gps_engine_barrier_wait_seconds",
		"Ring-drain wait inside the admission barrier (per Merge/Snapshot/Checkpoint).", p.met.barrierNS, labels...)
	reg.RegisterHistogram("gps_engine_snapshot_stall_seconds",
		"Ingestion stall per snapshot or checkpoint: barrier plus dirty-shard clone.", p.met.stallNS, labels...)

	reg.RegisterCounterFunc("gps_engine_snapshots_total", "Snapshots taken.",
		func() uint64 { s, _, _ := p.SnapshotStats(); return s }, labels...)
	reg.RegisterCounterFunc("gps_engine_snapshot_shards_cloned_total",
		"Dirty shards cloned by snapshots and checkpoints.",
		func() uint64 { _, c, _ := p.SnapshotStats(); return c }, labels...)
	reg.RegisterCounterFunc("gps_engine_snapshot_shards_reused_total",
		"Clean shards that reused their previous immutable clone.",
		func() uint64 { _, _, r := p.SnapshotStats(); return r }, labels...)

	reg.RegisterCounterFunc("gps_engine_shard_restarts_total",
		"Shard consumer panics recovered by the supervisor.",
		p.restartsTotal.Load, labels...)
	reg.RegisterCounterFunc("gps_engine_shard_lost_edges_total",
		"Edges dropped by lossy shard recoveries (gaps, quarantines, rebuilds).",
		p.LostEdges, labels...)
	reg.RegisterGaugeFunc("gps_engine_shards_degraded",
		"Shards whose sampler has diverged from the fault-free run (sticky).",
		func() float64 {
			n := 0
			for _, sh := range p.shards {
				if sh.degraded.Load() {
					n++
				}
			}
			return float64(n)
		}, labels...)

	reg.RegisterCounterFunc("gps_engine_checkpoints_total", "Checkpoints serialized.",
		func() uint64 { c, _, _ := p.CheckpointStats(); return c }, labels...)
	reg.RegisterCounterFunc("gps_engine_checkpoint_shards_encoded_total",
		"Shard blobs freshly serialized by checkpoints.",
		func() uint64 { _, e, _ := p.CheckpointStats(); return e }, labels...)
	reg.RegisterCounterFunc("gps_engine_checkpoint_blobs_reused_total",
		"Clean shards whose cached checkpoint blob was reused byte-for-byte.",
		func() uint64 { _, _, r := p.CheckpointStats(); return r }, labels...)
	reg.RegisterHistogram("gps_engine_checkpoint_encode_seconds",
		"Parallel shard-encode phase per checkpoint (off the ingest lock).", p.met.ckptEncNS, labels...)
	reg.RegisterHistogram("gps_engine_checkpoint_encode_bytes",
		"Bytes per freshly encoded shard blob.", p.met.ckptEncBytes, labels...)

	if p.decay {
		reg.RegisterGaugeFunc("gps_engine_decay_horizon",
			"Largest event time routed to any shard (0 before the first edge).",
			func() float64 { return float64(p.horizon.Load()) }, labels...)
	}
}

func (p *Parallel) sumRings(f func(*ring) uint64) uint64 {
	var total uint64
	for _, sh := range p.shards {
		total += f(sh.ring)
	}
	return total
}

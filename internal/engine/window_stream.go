package engine

import (
	"errors"
	"time"

	"gps/internal/core"
	"gps/internal/graph"
	"gps/internal/obs"
)

// The two capability errors of the Stream interface: asking a plain engine
// for a window query, or a windowed engine for a standing snapshot.
var (
	errNotWindowed        = errors.New("engine: window queries need a windowed engine")
	errNoStandingSnapshot = errors.New("engine: a windowed engine has no standing snapshot (queries merge panes fresh)")
)

// Process feeds one record through the batch path. Like Parallel.Process it
// panics on a closed engine — the Stream contract for the single-record
// feeder.
func (w *Windowed) Process(e graph.Edge) {
	if err := w.ProcessBatch([]graph.Edge{e}); err != nil {
		panic(err)
	}
}

// Snapshot fails on a windowed engine: there is no standing merged view —
// Estimate answers fresh per query from the pane chain.
func (w *Windowed) Snapshot() (*core.Sampler, error) { return nil, errNoStandingSnapshot }

// Estimate answers the trailing-window query via Query — the Stream-
// interface name for it.
func (w *Windowed) Estimate(win uint64) (WindowEstimates, error) { return w.Query(win) }

// Arrivals is the windowed stream position: every record fed, counted once
// across the deletion fan-out — the fence flush barriers report.
func (w *Windowed) Arrivals() uint64 { return w.Processed() }

// Capacity returns the per-pane reservoir capacity m.
func (w *Windowed) Capacity() int { return w.cfg.Capacity }

// Shards returns the pinned shard count every pane runs with.
func (w *Windowed) Shards() int { return w.cfg.Shards }

// WindowSpec reports the window geometry (ok=true: this engine is windowed).
func (w *Windowed) WindowSpec() (WindowConfig, bool) { return w.Config(), true }

// Decay reports no forward decay: windowing and decay are mutually
// exclusive time models.
func (w *Windowed) Decay() core.Decay { return core.Decay{} }

// DecayLandmark reports no landmark (windowed engines never decay).
func (w *Windowed) DecayLandmark() (uint64, bool) { return 0, false }

// DecayHorizon reports zero (the windowed event horizon is Horizon).
func (w *Windowed) DecayHorizon() uint64 { return 0 }

// The telemetry readers below delegate to the live pane. Rotation replaces
// it, so every call re-fetches through Engine() for one point-in-time read —
// the same discipline serve's scrapes always followed.

// CheckpointStats reads the live pane's checkpoint counters.
func (w *Windowed) CheckpointStats() (checkpoints, encoded, reused uint64) {
	return w.Engine().CheckpointStats()
}

// SnapshotStats reads the live pane's snapshot counters.
func (w *Windowed) SnapshotStats() (snapshots, cloned, reused uint64) {
	return w.Engine().SnapshotStats()
}

// LastSnapshotStall reads the live pane's latest barrier stall.
func (w *Windowed) LastSnapshotStall() time.Duration { return w.Engine().LastSnapshotStall() }

// RingStats reads the live pane's ingest-ring gauges.
func (w *Windowed) RingStats() RingStats { return w.Engine().RingStats() }

// Health reads the live pane's per-shard supervisor health.
func (w *Windowed) Health() ([]ShardHealth, bool) { return w.Engine().Health() }

// Restarts reads the live pane's recovered-panic count.
func (w *Windowed) Restarts() uint64 { return w.Engine().Restarts() }

// LostEdges reads the live pane's lossy-recovery edge losses.
func (w *Windowed) LostEdges() uint64 { return w.Engine().LostEdges() }

// Degraded reads the live pane's sticky degradation flag.
func (w *Windowed) Degraded() bool { return w.Engine().Degraded() }

// RegisterMetrics attaches the gps_window_* families: pane rotation
// replaces the live Parallel, so per-instance engine instruments would go
// stale mid-run — the window families cover the chain instead. The readers
// take the window mutex briefly (no engine barrier), so scrapes stay cheap.
// labels (e.g. a stream name) are stamped on every sample.
func (w *Windowed) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	wc := w.Config()
	reg.RegisterGaugeFunc("gps_window_width",
		"Queryable window maximum, in event-time units.",
		func() float64 { return float64(wc.Window) }, labels...)
	reg.RegisterGaugeFunc("gps_window_pane_width",
		"Window pane width, in event-time units.",
		func() float64 { return float64(wc.PaneWidth) }, labels...)
	reg.RegisterGaugeFunc("gps_window_panes",
		"Retained panes (retired plus the live one).",
		func() float64 { return float64(w.Panes()) }, labels...)
	reg.RegisterGaugeFunc("gps_window_horizon",
		"Largest event time ingested (the horizon window queries end at).",
		func() float64 { return float64(w.Horizon()) }, labels...)
}

package engine

import (
	"strings"
	"testing"

	"gps/internal/core"
	"gps/internal/fault"
)

// armFaults arms a fault spec for the duration of the test, skipping
// under gps_nofault where the injection sites are compiled out.
func armFaults(t *testing.T, seed uint64, spec string) {
	t.Helper()
	rules, err := fault.ParseSpec(spec)
	if err != nil {
		t.Fatalf("fault spec %q: %v", spec, err)
	}
	fault.Arm(seed, rules)
	t.Cleanup(fault.Disarm)
	if !fault.Enabled() {
		t.Skip("fault injection compiled out (gps_nofault)")
	}
}

// TestSupervisorExactRecovery is the headline self-healing property: a
// shard that panics with its last clone at the current consumer position
// restores from the clone, replays the ring backlog, and ends bit-identical
// to a run that never panicked.
func TestSupervisorExactRecovery(t *testing.T) {
	stream := testStream(500, 6000, 0xFA01)
	cfg := core.Config{Capacity: 400, Seed: 11}

	// Fault-free twin.
	want, err := NewParallel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer want.Close()
	want.ProcessBatch(stream)
	wm, err := want.Merge()
	if err != nil {
		t.Fatal(err)
	}
	wantKeys, wantZ, wantA := signature(t, wm)

	p, err := NewParallel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.ProcessBatch(stream[:3000])
	// Snapshot clones the shard at position 3000 with the ring drained:
	// cloneHead == head, so the very next drained span can be recovered
	// exactly.
	if _, err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	armFaults(t, 1, "engine.shard.drain:panic:times=1")
	p.ProcessBatch(stream[3000:])
	m, err := p.Merge() // barriers wait out the recovery + replay
	if err != nil {
		t.Fatal(err)
	}
	fault.Disarm()

	keys, z, a := signature(t, m)
	if p.Restarts() != 1 {
		t.Fatalf("restarts = %d, want 1", p.Restarts())
	}
	if p.Degraded() || p.LostEdges() != 0 {
		t.Fatalf("exact recovery left engine degraded (lost=%d)", p.LostEdges())
	}
	if z != wantZ || a != wantA || len(keys) != len(wantKeys) {
		t.Fatalf("recovered run differs: z %v vs %v, arrivals %d vs %d, len %d vs %d",
			z, wantZ, a, wantA, len(keys), len(wantKeys))
	}
	for i := range keys {
		if keys[i] != wantKeys[i] {
			t.Fatalf("recovered run differs at sampled edge %d", i)
		}
	}
	health, degraded := p.Health()
	if degraded || len(health) != 1 || health[0].Restarts != 1 {
		t.Fatalf("Health() = %+v degraded=%v, want 1 restart, not degraded", health, degraded)
	}
	if !strings.Contains(health[0].LastPanic, "engine.shard.drain") {
		t.Fatalf("LastPanic = %q, want the injected point name", health[0].LastPanic)
	}
}

// TestSupervisorExactScratchRebuild: a panic on the very first span ever
// drained (no clone, head still 0) rebuilds from scratch but loses
// nothing — the fresh sampler is seeded like the original and the whole
// backlog replays, so the run stays bit-identical and undegraded.
func TestSupervisorExactScratchRebuild(t *testing.T) {
	stream := testStream(300, 3000, 0xFA07)
	cfg := core.Config{Capacity: 200, Seed: 5}
	want, err := NewParallel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer want.Close()
	want.ProcessBatch(stream)
	wm, err := want.Merge()
	if err != nil {
		t.Fatal(err)
	}
	wantKeys, wantZ, wantA := signature(t, wm)

	p, err := NewParallel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	armFaults(t, 1, "engine.shard.drain:panic:times=1")
	p.ProcessBatch(stream)
	m, err := p.Merge()
	if err != nil {
		t.Fatal(err)
	}
	fault.Disarm()
	if p.Restarts() != 1 {
		t.Fatalf("restarts = %d, want 1", p.Restarts())
	}
	if p.Degraded() || p.LostEdges() != 0 {
		t.Fatalf("zero-loss scratch rebuild flagged lossy (degraded=%v lost=%d)",
			p.Degraded(), p.LostEdges())
	}
	keys, z, a := signature(t, m)
	if z != wantZ || a != wantA || len(keys) != len(wantKeys) {
		t.Fatalf("rebuilt run differs: z %v vs %v, arrivals %d vs %d, len %d vs %d",
			z, wantZ, a, wantA, len(keys), len(wantKeys))
	}
	for i := range keys {
		if keys[i] != wantKeys[i] {
			t.Fatalf("rebuilt run differs at sampled edge %d", i)
		}
	}
}

// TestSupervisorLossyRecovery: a shard that panics with no clone to
// restore from rebuilds from scratch — the engine stays up and serving,
// but reports the loss: degraded, lost edges, and a restart.
func TestSupervisorLossyRecovery(t *testing.T) {
	stream := testStream(300, 3000, 0xFA02)
	p, err := NewParallel(core.Config{Capacity: 200, Seed: 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.ProcessBatch(stream[:1000])
	if got := p.Arrivals(); got != 1000 {
		t.Fatalf("arrivals before fault = %d", got)
	}
	// No snapshot was ever taken, so recovery falls back to a fresh
	// sampler: everything drained so far is lost.
	armFaults(t, 1, "engine.shard.drain:panic:times=1")
	p.ProcessBatch(stream[1000:])
	m, err := p.Merge()
	if err != nil {
		t.Fatal(err)
	}
	fault.Disarm()
	if p.Restarts() != 1 {
		t.Fatalf("restarts = %d, want 1", p.Restarts())
	}
	if !p.Degraded() {
		t.Fatal("lossy recovery did not degrade the engine")
	}
	if lost := p.LostEdges(); lost != 1000 {
		t.Fatalf("lost = %d, want the 1000 drained-then-unrecoverable edges", lost)
	}
	// The rebuilt shard processed exactly the replayed backlog.
	if got := m.Arrivals(); got != uint64(len(stream)-1000) {
		t.Fatalf("post-recovery arrivals = %d, want %d", got, len(stream)-1000)
	}
	if _, degraded := p.Health(); !degraded {
		t.Fatal("Health() does not report degradation")
	}
}

// TestSupervisorQuarantine: a deterministically poisonous backlog (the
// injected panic fires on every replay) is quarantined after
// maxPanicStreak consecutive failures instead of looping forever; fresh
// traffic flows afterwards.
func TestSupervisorQuarantine(t *testing.T) {
	stream := testStream(300, 3000, 0xFA03)
	p, err := NewParallel(core.Config{Capacity: 200, Seed: 9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.ProcessBatch(stream[:500])
	if _, err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Exactly maxPanicStreak firings: every replay of the poisoned span
	// panics again until the streak trips quarantine.
	armFaults(t, 1, "engine.shard.drain:panic:times=8")
	p.ProcessBatch(stream[500:1000])
	if got := p.Arrivals(); got != 500 {
		t.Fatalf("arrivals after quarantine = %d, want the pre-fault 500 (backlog dropped)", got)
	}
	fault.Disarm()
	if p.Restarts() != maxPanicStreak {
		t.Fatalf("restarts = %d, want %d", p.Restarts(), maxPanicStreak)
	}
	if !p.Degraded() {
		t.Fatal("quarantine did not degrade the engine")
	}
	if lost := p.LostEdges(); lost != 500 {
		t.Fatalf("lost = %d, want the 500 quarantined edges", lost)
	}
	// The shard keeps serving fresh traffic after quarantine.
	p.ProcessBatch(stream[1000:1500])
	if got := p.Arrivals(); got != 1000 {
		t.Fatalf("arrivals after fresh traffic = %d, want 1000", got)
	}
}

// TestSupervisorRecoveryWithDecay: the from-scratch rebuild path must
// re-pin the decay landmark or decayed admission would panic on the
// rebuilt sampler.
func TestSupervisorRecoveryWithDecay(t *testing.T) {
	stream := testStream(200, 2000, 0xFA04)
	cfg := core.Config{Capacity: 150, Seed: 13, Decay: core.Decay{HalfLife: 500}}
	p, err := NewParallel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.ProcessBatch(stream[:800])
	// Barrier: drain the first batch so the rebuild demonstrably loses it
	// (a panic before anything drained would recover exactly instead).
	if got := p.Arrivals(); got != 800 {
		t.Fatalf("arrivals before fault = %d", got)
	}
	armFaults(t, 1, "engine.shard.drain:panic:times=1")
	p.ProcessBatch(stream[800:])
	m, err := p.Merge()
	if err != nil {
		t.Fatal(err)
	}
	fault.Disarm()
	if !p.Degraded() {
		t.Fatal("scratch rebuild should degrade")
	}
	if lm, ok := m.DecayLandmark(); !ok || lm != 1 {
		t.Fatalf("rebuilt sampler landmark = (%d,%v), want the pinned arrival clock 1", lm, ok)
	}
}

// TestSupervisorMultiShardIsolation: a panic on one shard leaves the
// other shards' samplers untouched.
func TestSupervisorMultiShardIsolation(t *testing.T) {
	stream := testStream(500, 6000, 0xFA05)
	p, err := NewParallel(core.Config{Capacity: 400, Seed: 17}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.ProcessBatch(stream[:3000])
	if _, err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// One firing: exactly one shard panics (whichever drains first); its
	// exact recovery keeps the merged result bit-identical.
	armFaults(t, 1, "engine.shard.drain:panic:times=1")
	p.ProcessBatch(stream[3000:])
	m, err := p.Merge()
	if err != nil {
		t.Fatal(err)
	}
	fault.Disarm()
	if p.Restarts() != 1 {
		t.Fatalf("restarts = %d, want 1", p.Restarts())
	}
	if p.Degraded() {
		t.Fatal("exact multi-shard recovery should not degrade")
	}

	want, err := NewParallel(core.Config{Capacity: 400, Seed: 17}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer want.Close()
	want.ProcessBatch(stream)
	wm, err := want.Merge()
	if err != nil {
		t.Fatal(err)
	}
	wantKeys, wantZ, _ := signature(t, wm)
	keys, z, _ := signature(t, m)
	if z != wantZ || len(keys) != len(wantKeys) {
		t.Fatalf("merged sample diverged after recovery: z %v vs %v, len %d vs %d", z, wantZ, len(keys), len(wantKeys))
	}
	for i := range keys {
		if keys[i] != wantKeys[i] {
			t.Fatalf("merged sample diverged at edge %d", i)
		}
	}
}

package engine

import (
	"math"
	"sort"
	"testing"

	"gps/internal/core"
	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/randx"
)

func testStream(n, m int, seed uint64) []graph.Edge {
	edges := gen.ErdosRenyi(n, m, seed)
	rng := randx.New(seed ^ 0xABCD)
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	return edges
}

// signature reduces a merged sampler to a comparable value: the sorted
// sampled edge keys plus threshold and arrival count.
func signature(t *testing.T, s *core.Sampler) (keys []uint64, z float64, arrivals uint64) {
	t.Helper()
	for _, e := range s.Reservoir().Edges() {
		keys = append(keys, e.Key())
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys, s.Threshold(), s.Arrivals()
}

// TestParallelDeterministic verifies that a Parallel run is a pure function
// of (seed, stream, shard count): goroutine scheduling and batching must not
// influence the merged sample.
func TestParallelDeterministic(t *testing.T) {
	stream := testStream(500, 6000, 0xFEED)
	run := func() ([]uint64, float64, uint64) {
		p, err := NewParallel(core.Config{Capacity: 400, Seed: 7}, 4)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		// Mix single-edge and batched feeding; it must not matter.
		p.ProcessBatch(stream[:1000])
		for _, e := range stream[1000:] {
			p.Process(e)
		}
		m, err := p.Merge()
		if err != nil {
			t.Fatal(err)
		}
		keys, z, a := signature(t, m)
		return keys, z, a
	}
	k1, z1, a1 := run()
	k2, z2, a2 := run()
	if z1 != z2 || a1 != a2 || len(k1) != len(k2) {
		t.Fatalf("runs disagree: z %v vs %v, arrivals %d vs %d, len %d vs %d", z1, z2, a1, a2, len(k1), len(k2))
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("runs disagree at sampled edge %d", i)
		}
	}
	if a1 != uint64(len(stream)) {
		t.Fatalf("arrivals = %d, want %d", a1, len(stream))
	}
}

// TestParallelMergeMidStream checks that Merge is a snapshot: processing may
// continue afterwards and a later Merge sees the additional arrivals.
func TestParallelMergeMidStream(t *testing.T) {
	stream := testStream(400, 4000, 0xBEEF)
	p, err := NewParallel(core.Config{Capacity: 300, Seed: 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.ProcessBatch(stream[:2000])
	m1, err := p.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if m1.Arrivals() != 2000 {
		t.Fatalf("mid-stream arrivals = %d, want 2000", m1.Arrivals())
	}
	p.ProcessBatch(stream[2000:])
	m2, err := p.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Arrivals() != uint64(len(stream)) {
		t.Fatalf("final arrivals = %d, want %d", m2.Arrivals(), len(stream))
	}
	if m1.Arrivals() != 2000 {
		t.Fatal("first merge result mutated by later processing")
	}
	if m2.Reservoir().Len() != 300 {
		t.Fatalf("final reservoir Len = %d, want 300", m2.Reservoir().Len())
	}
}

// TestParallelMatchesSequentialDistribution is the shard-merge correctness
// check: with UniformWeight every edge of an n-edge stream has inclusion
// probability m/n under sequential GPS, and the merge identity says the
// sharded sampler must realize the same distribution. Over R independent
// seeds we compare per-edge inclusion frequencies between the sequential
// and the 4-shard sampler with (a) a per-edge two-sample z bound and (b) a
// KS-style distance between the two frequency distributions.
func TestParallelMatchesSequentialDistribution(t *testing.T) {
	const (
		nodes    = 300
		nEdges   = 2000
		capacity = 200
		trials   = 120
		shards   = 4
	)
	stream := testStream(nodes, nEdges, 0x1234)
	seqCount := make(map[uint64]int, nEdges)
	parCount := make(map[uint64]int, nEdges)

	for trial := 0; trial < trials; trial++ {
		seed := uint64(1000 + trial)
		seq, err := core.NewSampler(core.Config{Capacity: capacity, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range stream {
			seq.Process(e)
		}
		for _, e := range seq.Reservoir().Edges() {
			seqCount[e.Key()]++
		}

		p, err := NewParallel(core.Config{Capacity: capacity, Seed: seed}, shards)
		if err != nil {
			t.Fatal(err)
		}
		p.ProcessBatch(stream)
		m, err := p.Merge()
		if err != nil {
			t.Fatal(err)
		}
		p.Close()
		if m.Reservoir().Len() != capacity {
			t.Fatalf("trial %d: merged Len = %d, want %d", trial, m.Reservoir().Len(), capacity)
		}
		for _, e := range m.Reservoir().Edges() {
			parCount[e.Key()]++
		}
	}

	// (a) Per-edge comparison: under H0 both counts are Binomial(R, m/n),
	// so the difference has variance 2·R·p·(1-p). A systematic partition
	// bias would push mean(z²) well above 1 and the max far beyond 6.
	pInc := float64(capacity) / float64(nEdges)
	sd := math.Sqrt(2 * trials * pInc * (1 - pInc))
	var sumZ2, maxZ float64
	seqFreq := make([]float64, 0, nEdges)
	parFreq := make([]float64, 0, nEdges)
	for _, e := range stream {
		cs, cp := seqCount[e.Key()], parCount[e.Key()]
		z := float64(cs-cp) / sd
		sumZ2 += z * z
		if math.Abs(z) > maxZ {
			maxZ = math.Abs(z)
		}
		seqFreq = append(seqFreq, float64(cs)/trials)
		parFreq = append(parFreq, float64(cp)/trials)
	}
	meanZ2 := sumZ2 / nEdges
	if meanZ2 > 1.4 || meanZ2 < 0.6 {
		t.Errorf("mean z² = %.3f, want ≈ 1 (distributional mismatch)", meanZ2)
	}
	if maxZ > 6 {
		t.Errorf("max |z| = %.2f over %d edges, want < 6", maxZ, nEdges)
	}

	// (b) KS distance between the two per-edge frequency distributions.
	sort.Float64s(seqFreq)
	sort.Float64s(parFreq)
	ks := 0.0
	i, j := 0, 0
	for i < len(seqFreq) && j < len(parFreq) {
		// Advance both CDFs through the tied block at the next value; the
		// frequencies are discrete (multiples of 1/trials), so the KS
		// statistic is only defined between blocks, not inside them.
		v := math.Min(seqFreq[i], parFreq[j])
		for i < len(seqFreq) && seqFreq[i] <= v {
			i++
		}
		for j < len(parFreq) && parFreq[j] <= v {
			j++
		}
		if d := math.Abs(float64(i)-float64(j)) / nEdges; d > ks {
			ks = d
		}
	}
	// The 1% critical value for two n=2000 samples is ≈ 1.63·√(2/n) ≈ 0.052.
	if ks > 0.052 {
		t.Errorf("KS distance between inclusion-frequency distributions = %.4f, want < 0.052", ks)
	}
	t.Logf("mean z² = %.3f, max |z| = %.2f, KS = %.4f", meanZ2, maxZ, ks)
}

// TestParallelShardDefault covers the GOMAXPROCS default and invalid config.
func TestParallelShardDefault(t *testing.T) {
	p, err := NewParallel(core.Config{Capacity: 10, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() < 1 {
		t.Fatalf("Shards = %d", p.Shards())
	}
	p.Close()
	p.Close() // idempotent
	if _, err := p.Merge(); err == nil {
		t.Error("Merge after Close did not error")
	}
	if _, err := NewParallel(core.Config{Capacity: 0}, 2); err == nil {
		t.Error("NewParallel with Capacity 0 did not error")
	}
}

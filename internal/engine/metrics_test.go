package engine

import (
	"bytes"
	"io"
	"strconv"
	"testing"

	"gps/internal/core"
	"gps/internal/graph"
	"gps/internal/obs"
)

// TestRegisterMetrics drives the engine through ingest, snapshot and
// checkpoint, then scrapes the registry: the exposition must lint clean and
// the data-plane families must carry the activity just generated.
func TestRegisterMetrics(t *testing.T) {
	p, err := NewParallel(core.Config{Capacity: 256, Seed: 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	reg := obs.NewRegistry()
	p.RegisterMetrics(reg)

	batch := make([]graph.Edge, 0, 4096)
	for i := uint64(0); i < 20000; i++ {
		batch = append(batch, graph.Edge{U: graph.NodeID(i), V: graph.NodeID(i + 1)})
		if len(batch) == cap(batch) {
			p.ProcessBatch(batch)
			batch = batch[:0]
		}
	}
	p.ProcessBatch(batch)
	if _, err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.WriteCheckpoint(io.Discard, "uniform"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	scrape := buf.String()
	if _, _, err := obs.CheckExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("engine exposition fails lint: %v\n%s", err, scrape)
	}

	value := func(name string) float64 {
		t.Helper()
		v, ok := scrapeValue(scrape, name)
		if !ok {
			t.Fatalf("metric %s not in scrape:\n%s", name, scrape)
		}
		return v
	}
	if got := value("gps_engine_shards"); got != 4 {
		t.Fatalf("gps_engine_shards = %g, want 4", got)
	}
	var epochs float64
	for i := 0; i < 4; i++ {
		v, ok := scrapeValue(scrape, `gps_engine_shard_epoch{shard="`+strconv.Itoa(i)+`"}`)
		if !ok {
			t.Fatalf("missing per-shard epoch %d in scrape:\n%s", i, scrape)
		}
		epochs += v
	}
	if epochs != 20000 {
		t.Fatalf("shard epochs sum to %g, want 20000", epochs)
	}
	if got := value("gps_engine_snapshots_total"); got != 1 {
		t.Fatalf("snapshots_total = %g, want 1", got)
	}
	if got := value("gps_engine_checkpoints_total"); got != 1 {
		t.Fatalf("checkpoints_total = %g, want 1", got)
	}
	if got := value("gps_engine_barrier_wait_seconds_count"); got < 2 {
		t.Fatalf("barrier_wait count = %g, want >= 2 (snapshot + checkpoint)", got)
	}
	if got := value("gps_engine_snapshot_stall_seconds_count"); got != 1 {
		t.Fatalf("snapshot_stall count = %g, want 1 (checkpoint stall is counted by the engine, not here)", got)
	}
	if got := value("gps_engine_checkpoint_encode_bytes_count"); got != 4 {
		t.Fatalf("checkpoint encode bytes count = %g, want 4 freshly encoded shard blobs", got)
	}
	if obs.Enabled {
		if got := value("gps_engine_drain_batch_edges_count"); got == 0 {
			t.Fatal("drain_batch_edges recorded nothing on an instrumented build")
		}
		if sum, _ := scrapeValue(scrape, "gps_engine_drain_batch_edges_sum"); sum != 20000 {
			t.Fatalf("drain_batch_edges_sum = %g, want 20000 (every routed edge drained exactly once)", sum)
		}
	}
}

// scrapeValue finds a sample line by its exact name (including any label
// string) and returns its value.
func scrapeValue(scrape, name string) (float64, bool) {
	for _, line := range bytes.Split([]byte(scrape), []byte("\n")) {
		fields := bytes.Fields(line)
		if len(fields) == 2 && string(fields[0]) == name {
			if v, err := strconv.ParseFloat(string(fields[1]), 64); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// The stream registry: named-stream resolution for every /v1/* endpoint
// and the POST/DELETE /v1/streams/{name} lifecycle. The tenant map shares
// closeMu with the close flag, so admission, creation, deletion and
// shutdown all serialize against one lock — a producer that resolved a
// tenant under the read side either completes its enqueue before a delete
// proceeds, or observes the deleted flag and answers 404.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
)

// streamNameRE bounds stream names: path-safe, label-safe, file-safe.
var streamNameRE = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

func validStreamName(name string) bool { return streamNameRE.MatchString(name) }

// tenantFor resolves the request's target stream from the optional ?stream=
// selector; absence means the default stream, so single-tenant clients
// never see the registry. ok=false means the 404 has been written.
func (s *Server) tenantFor(w http.ResponseWriter, r *http.Request) (*tenant, bool) {
	name := r.URL.Query().Get("stream")
	if name == "" {
		name = defaultStream
	}
	s.closeMu.RLock()
	t := s.tenants[name]
	s.closeMu.RUnlock()
	if t == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown stream %q", name))
		return nil, false
	}
	return t, true
}

// liveTenants returns the current streams, default first and the rest
// sorted by name — the order checkpoints, stats and listings all use.
func (s *Server) liveTenants() []*tenant {
	s.closeMu.RLock()
	out := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t)
	}
	s.closeMu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name == defaultStream {
			return true
		}
		if out[j].name == defaultStream {
			return false
		}
		return out[i].name < out[j].name
	})
	return out
}

// streamSummary is the JSON shape the registry endpoints answer with.
type streamSummary struct {
	Stream     string  `json:"stream"`
	Capacity   int     `json:"capacity"`
	Weight     string  `json:"weight"`
	Shards     int     `json:"shards"`
	QueueDepth int     `json:"queue_depth"`
	HalfLife   float64 `json:"half_life,omitempty"`
	Window     uint64  `json:"window,omitempty"`
	PaneWidth  uint64  `json:"pane_width,omitempty"`
	Default    bool    `json:"default,omitempty"`
}

func summarize(t *tenant) streamSummary {
	return streamSummary{
		Stream:     t.name,
		Capacity:   t.cfg.Capacity,
		Weight:     t.cfg.WeightName,
		Shards:     t.cfg.Shards,
		QueueDepth: t.cfg.QueueDepth,
		HalfLife:   t.cfg.HalfLife,
		Window:     t.cfg.Window,
		PaneWidth:  t.cfg.PaneWidth,
		Default:    t.name == defaultStream,
	}
}

// handleStreamList (GET /v1/streams) lists every live stream.
func (s *Server) handleStreamList(w http.ResponseWriter, r *http.Request) {
	tenants := s.liveTenants()
	streams := make([]streamSummary, 0, len(tenants))
	for _, t := range tenants {
		streams = append(streams, summarize(t))
	}
	writeJSON(w, http.StatusOK, map[string]any{"streams": streams})
}

// handleStreamCreate (POST /v1/streams/{name}) creates a named stream. The
// optional JSON body is a StreamSpec; absent fields inherit the server's
// defaults. Creation is atomic with respect to deletion and shutdown: the
// engine is built outside the lock and discarded if another creator won.
func (s *Server) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validStreamName(name) {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("bad stream name %q (want 1-64 characters of [A-Za-z0-9._-])", name))
		return
	}
	var spec StreamSpec
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&spec); err != nil && !errors.Is(err, io.EOF) {
		httpError(w, http.StatusBadRequest, "bad JSON body: "+err.Error())
		return
	}
	if spec.Name != "" && spec.Name != name {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("body names stream %q but the URL names %q", spec.Name, name))
		return
	}
	spec.Name = name
	cfg, err := s.streamConfig(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	t, err := newTenant(name, cfg)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("stream %q: %v", name, err))
		return
	}
	s.closeMu.Lock()
	if s.closed.Load() {
		s.closeMu.Unlock()
		t.eng.Close()
		httpError(w, http.StatusServiceUnavailable, "server closed")
		return
	}
	if _, exists := s.tenants[name]; exists || name == defaultStream {
		s.closeMu.Unlock()
		t.eng.Close()
		httpError(w, http.StatusConflict, fmt.Sprintf("stream %q already exists", name))
		return
	}
	s.installTenantLocked(t)
	s.closeMu.Unlock()
	writeJSON(w, http.StatusCreated, summarize(t))
}

// handleStreamDelete (DELETE /v1/streams/{name}) removes a stream: it is
// unlinked under the write lock (so no new batch can be admitted), its
// queue is drained (every 202 already issued still reaches the sampler),
// and only then are the engine closed and the labeled metrics unregistered.
func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == defaultStream {
		httpError(w, http.StatusBadRequest, "the default stream cannot be deleted")
		return
	}
	s.closeMu.Lock()
	t := s.tenants[name]
	if t == nil {
		s.closeMu.Unlock()
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown stream %q", name))
		return
	}
	delete(s.tenants, name)
	t.deleted.Store(true)
	s.streams.Add(-1)
	// Unregister inside the critical section: a concurrent re-creation of
	// the same name registers under the same label set, and the registry
	// panics on duplicates — the lock orders the two.
	for _, l := range t.label {
		s.reg.Unregister(l)
	}
	s.closeMu.Unlock()
	close(t.tdone)
	<-t.loopDone // drain: every acknowledged batch reaches the sampler first
	t.eng.Close()
	t.subs.close()
	writeJSON(w, http.StatusOK, map[string]any{
		"stream":          name,
		"deleted":         true,
		"edges_processed": t.edgesProcessed.Load(),
	})
}

// installTenantLocked links a tenant into the registry, attaches its metric
// samples and starts its ingest loop. Callers hold closeMu.
func (s *Server) installTenantLocked(t *tenant) {
	s.tenants[t.name] = t
	if t.name == defaultStream {
		s.def = t
	}
	s.streams.Add(1)
	s.registerTenantMetrics(t)
	s.wg.Add(1)
	go s.ingestLoop(t)
}

package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gps/internal/core"
	"gps/internal/exact"
	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/stream"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postEdges(t *testing.T, url string, edges []graph.Edge, binary bool) *http.Response {
	t.Helper()
	var body bytes.Buffer
	contentType := "text/plain"
	if binary {
		if err := stream.WriteBinary(&body, edges); err != nil {
			t.Fatal(err)
		}
		contentType = stream.BinaryContentType
	} else {
		if err := stream.WriteEdgeList(&body, edges); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url+"/v1/ingest", contentType, &body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJSON[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func flush(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("flush: %d %s", resp.StatusCode, b)
	}
}

// TestServeEndToEndExact ingests a full graph in both wire formats and
// checks the estimate endpoint returns the exact triangle/wedge counts:
// with uniform weights and capacity above the edge count the snapshot holds
// every edge, so Algorithm 2 degenerates to exact counting.
func TestServeEndToEndExact(t *testing.T) {
	edges := gen.ErdosRenyi(150, 1200, 7)
	truth := exact.Count(graph.BuildStatic(edges))
	for _, binary := range []bool{true, false} {
		_, ts := newTestServer(t, Config{Capacity: len(edges) + 10, Seed: 5})
		resp := postEdges(t, ts.URL, edges, binary)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest status = %d", resp.StatusCode)
		}
		acc := decodeJSON[map[string]any](t, resp)
		if int(acc["accepted"].(float64)) != len(edges) {
			t.Fatalf("accepted = %v, want %d", acc["accepted"], len(edges))
		}
		flush(t, ts.URL)

		resp, err := http.Get(ts.URL + "/v1/estimate?max_stale=0s")
		if err != nil {
			t.Fatal(err)
		}
		est := decodeJSON[estimateResponse](t, resp)
		if est.Arrivals != uint64(len(edges)) || est.SampledEdges != len(edges) {
			t.Fatalf("arrivals=%d sampled=%d, want %d", est.Arrivals, est.SampledEdges, len(edges))
		}
		if est.Triangles != float64(truth.Triangles) || est.Wedges != float64(truth.Wedges) {
			t.Fatalf("binary=%v: estimate (%.0f, %.0f) != exact (%d, %d)",
				binary, est.Triangles, est.Wedges, truth.Triangles, truth.Wedges)
		}
	}
}

// TestServeSubgraphEstimate checks the generic Horvitz-Thompson query
// endpoint: with everything sampled at probability 1 a present subgraph
// estimates to 1 and an absent one to 0.
func TestServeSubgraphEstimate(t *testing.T) {
	edges := []graph.Edge{
		graph.NewEdge(1, 2), graph.NewEdge(2, 3), graph.NewEdge(1, 3),
		graph.NewEdge(3, 4),
	}
	_, ts := newTestServer(t, Config{Capacity: 100, Seed: 2})
	postEdges(t, ts.URL, edges, true).Body.Close()
	flush(t, ts.URL)

	query := func(body string) map[string]any {
		resp, err := http.Post(ts.URL+"/v1/estimate/subgraph?max_stale=0s", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("subgraph: %d %s", resp.StatusCode, b)
		}
		return decodeJSON[map[string]any](t, resp)
	}
	if got := query(`{"edges": [[1,2],[2,3],[1,3]]}`)["estimate"].(float64); got != 1 {
		t.Fatalf("present triangle estimate = %v, want 1", got)
	}
	if got := query(`{"edges": [[1,2],[2,9]]}`)["estimate"].(float64); got != 0 {
		t.Fatalf("absent subgraph estimate = %v, want 0", got)
	}

	for _, bad := range []string{`{"edges": []}`, `{"edges": [[4,4]]}`, `not json`} {
		resp, err := http.Post(ts.URL+"/v1/estimate/subgraph", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad body %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestServeBackpressure fills the bounded queue (the consumer is wedged
// behind a slow flush of a huge batch? — no: we simply use a tiny queue and
// never start draining because the batches pile up faster than one
// goroutine processes them) and checks overflow turns into 503 with
// Retry-After rather than blocking or buffering without bound.
func TestServeBackpressure(t *testing.T) {
	s, err := NewServer(Config{Capacity: 1000, Seed: 3, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the consumer: stop the ingest loop by closing done while
	// keeping the HTTP surface alive, so every enqueue stays pending.
	close(s.done)
	s.wg.Wait()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.def.eng.Close()

	edges := gen.ErdosRenyi(50, 100, 1)
	got503 := false
	for i := 0; i < 5; i++ {
		resp := postEdges(t, ts.URL, edges, true)
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusServiceUnavailable:
			got503 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Error("503 without Retry-After")
			}
		default:
			t.Fatalf("unexpected ingest status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if !got503 {
		t.Fatal("queue depth 2 never produced a 503 after 5 batches")
	}
}

// TestServePendingEdgeBound checks the volume-based backpressure: a tiny
// MaxPendingEdges rejects a batch even when the batch-count queue has room.
func TestServePendingEdgeBound(t *testing.T) {
	s, err := NewServer(Config{Capacity: 1000, Seed: 3, QueueDepth: 64, MaxPendingEdges: 50})
	if err != nil {
		t.Fatal(err)
	}
	close(s.done) // wedge the consumer so pending edges accumulate
	s.wg.Wait()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.def.eng.Close()

	resp := postEdges(t, ts.URL, gen.ErdosRenyi(50, 100, 1), true)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("100-edge batch over a 50-edge bound: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestServeBodyTooLarge checks oversized ingest bodies get 413, not 400 —
// in both wire formats, with a declared Content-Length (rejected upfront)
// and chunked (the limit trips mid-parse, usually splitting a record, so
// the 413 must win over the truncation-induced parse error).
func TestServeBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 100, Seed: 1, MaxBodyBytes: 64})
	edges := gen.ErdosRenyi(100, 500, 2)
	resp := postEdges(t, ts.URL, edges, true)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized binary body: status %d, want 413", resp.StatusCode)
	}
	for name, payload := range map[string]func() []byte{
		"text": func() []byte {
			var buf bytes.Buffer
			if err := stream.WriteEdgeList(&buf, edges); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		},
		"binary": func() []byte {
			var buf bytes.Buffer
			if err := stream.WriteBinary(&buf, edges); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		},
	} {
		// io.MultiReader hides the length, forcing chunked encoding, so the
		// server cannot reject from Content-Length alone.
		req, err := http.NewRequest("POST", ts.URL+"/v1/ingest", io.MultiReader(bytes.NewReader(payload())))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("oversized chunked %s body: status %d, want 413", name, resp.StatusCode)
		}
	}
}

// TestServeConcurrentClients runs ingestion and eight query clients in
// parallel (run under -race). Every estimate must correspond to a batch
// boundary, and arrivals must be non-decreasing per client (snapshots can
// only move forward).
func TestServeConcurrentClients(t *testing.T) {
	const batch = 200
	edges := gen.ErdosRenyi(400, 6000, 11)
	_, ts := newTestServer(t, Config{Capacity: 500, Seed: 9, Shards: 4})

	done := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var lastArrivals uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/estimate?max_stale=0s")
				if err != nil {
					t.Error(err)
					return
				}
				est := decodeJSON[estimateResponse](t, resp)
				if est.Arrivals%batch != 0 && est.Arrivals != uint64(len(edges)) {
					t.Errorf("client %d: estimate at arrivals %d is not a batch boundary", id, est.Arrivals)
					return
				}
				if est.Arrivals < lastArrivals {
					t.Errorf("client %d: arrivals went backwards: %d -> %d", id, lastArrivals, est.Arrivals)
					return
				}
				lastArrivals = est.Arrivals
			}
		}(c)
	}
	for lo := 0; lo < len(edges); lo += batch {
		hi := lo + batch
		if hi > len(edges) {
			hi = len(edges)
		}
		for {
			resp := postEdges(t, ts.URL, edges[lo:hi], true)
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusAccepted {
				break
			}
			if code != http.StatusServiceUnavailable {
				t.Fatalf("ingest status %d", code)
			}
			time.Sleep(time.Millisecond)
		}
	}
	close(done)
	wg.Wait()
	flush(t, ts.URL)
	resp, err := http.Get(ts.URL + "/v1/estimate?max_stale=0s")
	if err != nil {
		t.Fatal(err)
	}
	est := decodeJSON[estimateResponse](t, resp)
	if est.Arrivals != uint64(len(edges)) {
		t.Fatalf("final arrivals = %d, want %d", est.Arrivals, len(edges))
	}
}

// TestServeCloseProcessesAcknowledged races concurrent ingest posts
// against Close and verifies the 202 contract: every batch acknowledged
// with 202 has reached the sampler by the time Close returns — no silent
// drops (run under -race).
func TestServeCloseProcessesAcknowledged(t *testing.T) {
	edges := gen.ErdosRenyi(200, 2000, 5)
	s, err := NewServer(Config{Capacity: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const batch = 100
	var (
		wg       sync.WaitGroup
		accepted atomic.Uint64
	)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for lo := c * 500; lo < (c+1)*500; lo += batch {
				resp := postEdges(t, ts.URL, edges[lo:lo+batch], true)
				if resp.StatusCode == http.StatusAccepted {
					accepted.Add(batch)
				} else if resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("ingest status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(c)
	}
	// Close while the posters are mid-flight.
	time.Sleep(time.Millisecond)
	s.Close()
	wg.Wait()
	if got, want := s.def.edgesProcessed.Load(), accepted.Load(); got != want {
		t.Fatalf("processed %d edges but acknowledged %d — 202'd batches were dropped", got, want)
	}
	if pending := s.def.pendingEdges.Load(); pending != 0 {
		t.Fatalf("pending_edges = %d after Close, want 0", pending)
	}
}

// TestServeStalenessCache checks the snapshot-cache contract: repeated
// queries on an unchanged stream reuse one snapshot (even forced-fresh —
// the stream position proves it current), and flush invalidates the cache
// so flush-then-estimate is read-your-writes at any staleness bound.
func TestServeStalenessCache(t *testing.T) {
	edges := gen.ErdosRenyi(100, 800, 13)
	_, ts := newTestServer(t, Config{Capacity: 200, Seed: 1, MaxStaleness: time.Hour})
	postEdges(t, ts.URL, edges[:400], true).Body.Close()
	flush(t, ts.URL)

	get := func(q string) estimateResponse {
		resp, err := http.Get(ts.URL + "/v1/estimate" + q)
		if err != nil {
			t.Fatal(err)
		}
		return decodeJSON[estimateResponse](t, resp)
	}
	first := get("")
	if first.Arrivals != 400 {
		t.Fatalf("first arrivals = %d, want 400", first.Arrivals)
	}
	// Unchanged stream: both a default-bound query and a forced-fresh one
	// reuse the identical snapshot (position check makes the rebuild free).
	if cached := get(""); cached.SnapshotUnixNS != first.SnapshotUnixNS {
		t.Fatalf("cached query refreshed on idle stream: snap %d vs %d",
			cached.SnapshotUnixNS, first.SnapshotUnixNS)
	}
	if forced := get("?max_stale=0s"); forced.SnapshotUnixNS != first.SnapshotUnixNS {
		t.Fatalf("forced-fresh rebuilt an identical snapshot on idle stream: snap %d vs %d",
			forced.SnapshotUnixNS, first.SnapshotUnixNS)
	}
	// Read-your-writes: ingest + flush invalidates, so even the generous
	// default staleness bound sees the new edges.
	postEdges(t, ts.URL, edges[400:], true).Body.Close()
	flush(t, ts.URL)
	if after := get(""); after.Arrivals != uint64(len(edges)) {
		t.Fatalf("post-flush arrivals = %d, want %d (stale read after flush)", after.Arrivals, len(edges))
	}
	// Bad duration is a 400.
	resp, err := http.Get(ts.URL + "/v1/estimate?max_stale=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad max_stale: status %d, want 400", resp.StatusCode)
	}
}

// TestServeStatsAndHealth smoke-checks the observability endpoints.
func TestServeStatsAndHealth(t *testing.T) {
	edges := gen.ErdosRenyi(60, 300, 17)
	s, ts := newTestServer(t, Config{Capacity: 100, Seed: 4, WeightName: "triangle", Weight: core.TriangleWeight})
	postEdges(t, ts.URL, edges, false).Body.Close()
	flush(t, ts.URL)
	resp, err := http.Get(ts.URL + "/v1/estimate?max_stale=0s")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decodeJSON[map[string]any](t, resp)
	if stats["weight"] != "triangle" {
		t.Errorf("stats weight = %v", stats["weight"])
	}
	if int(stats["edges_processed"].(float64)) != len(edges) {
		t.Errorf("edges_processed = %v, want %d", stats["edges_processed"], len(edges))
	}
	if int(stats["snapshot_arrivals"].(float64)) != len(edges) {
		t.Errorf("snapshot_arrivals = %v, want %d", stats["snapshot_arrivals"], len(edges))
	}
	// Ring gauges: flush drained the data plane, so backlog and every shard
	// depth are zero, and the shard epochs account for every routed edge.
	if int(stats["ring_backlog"].(float64)) != 0 {
		t.Errorf("ring_backlog = %v, want 0 after flush", stats["ring_backlog"])
	}
	if int(stats["ring_capacity"].(float64)) < 1 {
		t.Errorf("ring_capacity = %v, want >= 1", stats["ring_capacity"])
	}
	if _, ok := stats["router_stalls"].(float64); !ok {
		t.Errorf("router_stalls missing or non-numeric: %v", stats["router_stalls"])
	}
	shards := int(stats["shards"].(float64))
	depths, ok := stats["ring_depths"].([]any)
	if !ok || len(depths) != shards {
		t.Fatalf("ring_depths = %v, want %d entries", stats["ring_depths"], shards)
	}
	for i, d := range depths {
		if d.(float64) != 0 {
			t.Errorf("ring_depths[%d] = %v, want 0 after flush", i, d)
		}
	}
	epochs, ok := stats["shard_epochs"].([]any)
	if !ok || len(epochs) != shards {
		t.Fatalf("shard_epochs = %v, want %d entries", stats["shard_epochs"], shards)
	}
	var routed int
	for _, e := range epochs {
		routed += int(e.(float64))
	}
	if routed != len(edges) {
		t.Errorf("shard_epochs sum = %d, want %d routed edges", routed, len(edges))
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	s.Close()
	s.Close() // idempotent
}

// TestServeRejectsBadIngest checks malformed bodies turn into 400s.
func TestServeRejectsBadIngest(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 10, Seed: 1})
	for name, body := range map[string]struct {
		contentType string
		payload     string
	}{
		"bad text":             {"text/plain", "1 notanumber\n"},
		"truncated binary":     {stream.BinaryContentType, "GPSB\x01\x05"},
		"binary with bad type": {stream.BinaryContentType, "0 1\n"},
	} {
		resp, err := http.Post(ts.URL+"/v1/ingest", body.contentType, strings.NewReader(body.payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestWeightByName covers the CLI name mapping.
func TestWeightByName(t *testing.T) {
	for _, ok := range []string{"", "uniform", "triangle", "adjacency"} {
		if _, err := WeightByName(ok); err != nil {
			t.Errorf("%q: %v", ok, err)
		}
	}
	for _, bad := range []string{"adaptive", "nope"} {
		if _, err := WeightByName(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

package serve

import (
	"fmt"
	"net/http"
	"time"

	"gps/internal/checkpoint"
	"gps/internal/fault"
	"gps/internal/obs"
)

// serveMetrics holds the per-stream serve-layer instruments that are not
// per-route: the snapshot-age-at-serve histogram (how stale the answers
// actually were, as opposed to how stale they were allowed to be) and the
// decay-overflow reject counter. Created with the tenant (so handlers never
// race a nil instrument), attached to the registry when the tenant is
// installed.
type serveMetrics struct {
	snapAge      *obs.Histogram
	decayRejects *obs.Counter
}

// routeMetrics is the per-route instrument set created at registration.
type routeMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	inFlight *obs.Gauge
	latency  *obs.Histogram
}

// Metrics returns the server's metric registry (every layer's families:
// gps_http_*, gps_serve_*, gps_engine_*, gps_core_*, gps_checkpoint_*).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// MetricsHandler returns the GET /metrics handler, for mounting on
// listeners other than the API mux (gps-serve mounts it on the pprof
// listener too).
func (s *Server) MetricsHandler() http.Handler { return s.reg.Handler() }

// route registers pattern on the API mux wrapped in the observability
// middleware: per-route request/error/in-flight counters and a latency
// histogram, an X-Request-Id response header, and (when the server was
// configured with LogRequests) one key=value log line per request. All
// recording happens in a defer, so a handler that panics — including the
// deliberate http.ErrAbortHandler of the checkpoint download — still
// counts; the middleware does not recover.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	label := obs.Label{Key: "route", Value: pattern}
	rm := &routeMetrics{
		requests: s.reg.Counter("gps_http_requests_total", "HTTP requests started, by route.", label),
		errors:   s.reg.Counter("gps_http_errors_total", "HTTP responses with status >= 400, by route.", label),
		inFlight: s.reg.Gauge("gps_http_in_flight", "Requests currently being handled, by route.", label),
		latency: s.reg.Histogram("gps_http_request_seconds",
			"Request handling latency, by route.", obs.Latency(), label),
	}
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("%s-%06d", s.reqPrefix, s.reqSeq.Add(1))
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		rm.requests.Inc()
		rm.inFlight.Add(1)
		defer func() {
			dur := time.Since(start)
			rm.inFlight.Add(-1)
			rm.latency.Observe(uint64(dur))
			status := sw.status
			if status == 0 {
				status = http.StatusOK // handler wrote nothing: net/http sends 200
			}
			if status >= 400 {
				rm.errors.Inc()
			}
			if s.logw != nil {
				fmt.Fprintf(s.logw, "request id=%s route=%q status=%d bytes=%d dur_ms=%.3f remote=%s\n",
					id, pattern, status, sw.bytes, float64(dur)/float64(time.Millisecond), r.RemoteAddr)
			}
		}()
		if fault.Enabled() {
			// Transient server-failure injection for every route, recorded
			// by the deferred accounting above like any organic failure. An
			// error rule answers 503 + Retry-After (the uniform overload
			// class clients already retry on); a panic rule propagates to
			// net/http, aborting the connection like a handler crash.
			if err := fault.Hit(fault.HTTPRequest); err != nil {
				sw.Header().Set("Retry-After", "1")
				httpError(sw, http.StatusServiceUnavailable, err.Error())
				return
			}
		}
		h(sw, r)
	})
}

// statusWriter captures the response status and body size for the
// middleware's recording and logging.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Unwrap exposes the underlying writer so http.ResponseController can reach
// its Flusher/deadline hooks through the middleware wrapper — the SSE
// subscription handler depends on it.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// registerServerMetrics attaches the families that are genuinely
// server-wide: the checkpoint file pipeline (one directory, one writer, all
// streams per file) and uptime. Everything per-stream attaches through
// registerTenantMetrics when the tenant is installed.
func (s *Server) registerServerMetrics() {
	checkpoint.RegisterMetrics(s.reg)
	s.reg.RegisterCounterFunc("gps_serve_checkpoint_files_total",
		"Checkpoint files persisted by this server.", s.checkpointsWritten.Load)
	s.reg.RegisterGaugeFunc("gps_serve_uptime_seconds", "Seconds since the server booted.",
		func() float64 { return time.Since(s.start).Seconds() })
}

// registerTenantMetrics attaches one stream's samples: the engine layer's
// families, the ingest pipeline, the snapshot cache, and estimator
// self-telemetry read from the cache's current immutable snapshot —
// scraping never touches the live samplers, so it is race-free and never
// stalls ingestion. The default stream's samples carry no label, keeping a
// single-tenant server's /metrics output identical to the pre-registry
// releases; every other stream's samples are {stream="name"} within the
// same families. Deletion removes them via Registry.Unregister on the same
// label.
func (s *Server) registerTenantMetrics(t *tenant) {
	l := t.label
	t.eng.RegisterMetrics(s.reg, l...)

	s.reg.RegisterHistogram("gps_serve_snapshot_age_seconds",
		"Age of the snapshot each estimate/subgraph response was served from.", t.met.snapAge, l...)
	s.reg.RegisterCounter("gps_serve_decay_rejected_batches_total",
		"Ingest batches rejected by the decay overflow range check.", t.met.decayRejects, l...)

	s.reg.RegisterGaugeFunc("gps_serve_queue_edges", "Decoded edges waiting in the ingest queue.",
		func() float64 { return float64(t.pendingEdges.Load()) }, l...)
	s.reg.RegisterGaugeFunc("gps_serve_queue_batches", "Batches waiting in the ingest queue.",
		func() float64 { return float64(t.pendingBatches.Load()) }, l...)
	s.reg.RegisterGaugeFunc("gps_serve_queue_capacity", "Ingest queue batch capacity (QueueDepth).",
		func() float64 { return float64(t.cfg.QueueDepth) }, l...)
	s.reg.RegisterCounterFunc("gps_serve_edges_accepted_total",
		"Edges admitted to the ingest queue (acknowledged with 202).", t.edgesAccepted.Load, l...)
	s.reg.RegisterCounterFunc("gps_serve_edges_processed_total",
		"Edges handed to the sampler (includes the restored position on boot).", t.edgesProcessed.Load, l...)
	s.reg.RegisterCounterFunc("gps_serve_batches_rejected_total",
		"Ingest requests rejected by backpressure (503).", t.batchesDropped.Load, l...)
	s.reg.RegisterCounterFunc("gps_serve_self_loops_total",
		"Self-loop records skipped by the stream readers.", t.selfLoops.Load, l...)
	s.reg.RegisterCounterFunc("gps_serve_deletion_records_total",
		"Turnstile deletion records accepted for ingest.", t.deletionRecs.Load, l...)

	s.reg.RegisterCounter("gps_serve_snapshot_cache_hits_total",
		"Queries served from the cached snapshot without a refresh.", t.snaps.met.hits, l...)
	s.reg.RegisterCounter("gps_serve_snapshot_refresh_total",
		"Snapshot cache refreshes (engine snapshot + estimate).", t.snaps.met.refreshes, l...)
	s.reg.RegisterCounter("gps_serve_snapshot_forced_fresh_total",
		"Queries demanding max_stale=0 (a fresh snapshot).", t.snaps.met.forced, l...)
	s.reg.RegisterCounter("gps_serve_snapshot_estimate_reuse_total",
		"Refreshes that reused the previous snapshot's estimates (only duplicates arrived).", t.snaps.met.estReuse, l...)
	s.reg.RegisterCounter("gps_serve_snapshot_deadline_stale_total",
		"Queries served the previous snapshot because a refresh missed the deadline.", t.snaps.met.staleServe, l...)

	// Degradation and overload protection.
	s.reg.RegisterCounterFunc("gps_serve_shed_total",
		"Requests shed by overload protection (429/503 with Retry-After).", t.shedTotal.Load, l...)
	s.reg.RegisterCounterFunc("gps_serve_degraded_queries_total",
		"Estimate/subgraph responses flagged degraded (lossy recovery or deadline fallback).", t.degradedQueries.Load, l...)
	s.reg.RegisterCounterFunc("gps_serve_duplicate_batches_total",
		"Ingest batches answered from the sequence dedup watermark without re-application.", t.duplicateBatches.Load, l...)
	s.reg.RegisterCounterFunc("gps_serve_ingest_panics_total",
		"Panics recovered by the ingest loop (the batch may be partially applied).", t.ingestPanics.Load, l...)
	s.reg.RegisterGaugeFunc("gps_serve_inflight_queries",
		"Estimate/subgraph queries currently admitted.",
		func() float64 { return float64(t.inflightQueries.Load()) }, l...)

	// Estimator self-telemetry, read from the current immutable snapshot
	// (zero until the first query takes one). The live shard samplers are
	// never touched: their counters are only safe to read at a barrier.
	snap := func(f func(*snapshot) float64) func() float64 {
		return func() float64 {
			if sn := t.snaps.current(); sn != nil {
				return f(sn)
			}
			return 0
		}
	}
	s.reg.RegisterGaugeFunc("gps_core_reservoir_capacity", "Reservoir capacity m.",
		func() float64 { return float64(t.cfg.Capacity) }, l...)
	s.reg.RegisterGaugeFunc("gps_core_reservoir_fill",
		"Sampled edges |K| in the latest snapshot.",
		snap(func(sn *snapshot) float64 { return float64(sn.est.SampledEdges) }), l...)
	s.reg.RegisterGaugeFunc("gps_core_threshold",
		"Priority threshold z* of the latest snapshot (0 until the reservoir first overflows).",
		snap(func(sn *snapshot) float64 { return sn.sampler.Threshold() }), l...)
	s.reg.RegisterCounterFunc("gps_core_arrivals_total",
		"Distinct edges processed, as of the latest snapshot.",
		func() uint64 {
			if sn := t.snaps.current(); sn != nil {
				return sn.est.Arrivals
			}
			return 0
		}, l...)
	s.reg.RegisterCounterFunc("gps_core_duplicates_total",
		"Duplicate arrivals ignored, as of the latest snapshot.",
		func() uint64 {
			if sn := t.snaps.current(); sn != nil {
				return sn.sampler.Duplicates()
			}
			return 0
		}, l...)
	s.reg.RegisterCounterFunc("gps_core_accepts_total",
		"Arrivals admitted to the reservoir, as of the latest snapshot (0 under gps_noobs builds).",
		func() uint64 {
			if sn := t.snaps.current(); sn != nil {
				return sn.sampler.Accepts()
			}
			return 0
		}, l...)
	s.reg.RegisterCounterFunc("gps_core_evicts_total",
		"Resident edges evicted by later arrivals, as of the latest snapshot (0 under gps_noobs builds).",
		func() uint64 {
			if sn := t.snaps.current(); sn != nil {
				return sn.sampler.Evicts()
			}
			return 0
		}, l...)
	// The applied/unsampled deletion split needs the samplers' verdicts: on
	// a plain stream it reads the latest snapshot; a windowed stream sums
	// its retired panes lock-cheap (the live pane's verdicts join the sums
	// at the next rotation — gps_serve_deletion_records_total is the exact
	// record count in the meantime).
	windowed := t.windowed()
	s.reg.RegisterCounterFunc("gps_core_deletions_applied_total",
		"Turnstile deletions that removed a sampled edge, as of the latest snapshot (windowed: summed over retired panes).",
		func() uint64 {
			if windowed {
				a, _ := t.eng.RetiredDeletions()
				return a
			}
			if sn := t.snaps.current(); sn != nil {
				a, _ := sn.sampler.Deletions()
				return a
			}
			return 0
		}, l...)
	s.reg.RegisterCounterFunc("gps_core_deletions_unsampled_total",
		"Turnstile deletions of unsampled edges (applied vacuously), as of the latest snapshot (windowed: summed over retired panes).",
		func() uint64 {
			if windowed {
				_, u := t.eng.RetiredDeletions()
				return u
			}
			if sn := t.snaps.current(); sn != nil {
				_, u := sn.sampler.Deletions()
				return u
			}
			return 0
		}, l...)
}

package serve

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gps/internal/fault"
	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/stream"
)

// armServeFaults arms a fault spec for the duration of the test.
func armServeFaults(t *testing.T, seed uint64, spec string) {
	t.Helper()
	rules, err := fault.ParseSpec(spec)
	if err != nil {
		t.Fatalf("fault spec %q: %v", spec, err)
	}
	fault.Arm(seed, rules)
	t.Cleanup(fault.Disarm)
	if !fault.Enabled() {
		t.Skip("fault injection compiled out (gps_nofault)")
	}
}

// postSequenced posts a batch with the at-least-once dedup headers.
func postSequenced(t *testing.T, url, source string, seq uint64, edges []graph.Edge) *http.Response {
	t.Helper()
	var body bytes.Buffer
	if err := stream.WriteEdgeList(&body, edges); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/ingest", &body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set("X-GPS-Source", source)
	req.Header.Set("X-GPS-Seq", fmtUint(seq))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func fmtUint(v uint64) string {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return string(buf[i:])
}

// waitProcessed polls /v1/stats until edges_processed reaches want.
func waitProcessed(t *testing.T, url string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		st := decodeJSON[StatsV1](t, resp)
		if st.EdgesProcessed >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("edges_processed = %d, want >= %d", st.EdgesProcessed, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeIngestDedup: a retried sequence number is acknowledged without
// re-feeding the sampler — the server half of the at-least-once contract.
func TestServeIngestDedup(t *testing.T) {
	edges := gen.ErdosRenyi(60, 400, 3)
	_, ts := newTestServer(t, Config{Capacity: 1000, Seed: 1})

	resp := postSequenced(t, ts.URL, "loader-a", 1, edges[:200])
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first seq: status %d", resp.StatusCode)
	}
	if body := decodeJSON[map[string]any](t, resp); body["duplicate"] != nil {
		t.Fatalf("first delivery flagged duplicate: %v", body)
	}
	// The retry of an acknowledged sequence applies nothing.
	resp = postSequenced(t, ts.URL, "loader-a", 1, edges[:200])
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("duplicate seq: status %d", resp.StatusCode)
	}
	if body := decodeJSON[map[string]any](t, resp); body["duplicate"] != true || body["accepted"].(float64) != 0 {
		t.Fatalf("duplicate response = %v", body)
	}
	// A different source has its own watermark.
	resp = postSequenced(t, ts.URL, "loader-b", 1, edges[200:])
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other source: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	flush(t, ts.URL)

	resp, err := http.Get(ts.URL + "/v1/estimate?max_stale=0s")
	if err != nil {
		t.Fatal(err)
	}
	est := decodeJSON[estimateResponse](t, resp)
	if est.Arrivals != uint64(len(edges)) {
		t.Fatalf("arrivals = %d, want %d (duplicate batch must not re-apply)", est.Arrivals, len(edges))
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if st := decodeJSON[StatsV1](t, resp); st.DuplicateBatches != 1 {
		t.Fatalf("duplicate_batches = %d, want 1", st.DuplicateBatches)
	}
}

// TestServeIngestSeqValidation: malformed dedup headers are client errors.
func TestServeIngestSeqValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 100, Seed: 1})
	for _, hdr := range []struct{ source, seq string }{
		{"loader", ""},     // source without seq
		{"loader", "zero"}, // non-numeric
		{"loader", "0"},    // sequence numbers start at 1
		{"loader", "-4"},   // negative
	} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/ingest", strings.NewReader("1 2\n"))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-GPS-Source", hdr.source)
		if hdr.seq != "" {
			req.Header.Set("X-GPS-Seq", hdr.seq)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("seq %q: status %d (%s), want 400", hdr.seq, resp.StatusCode, body)
		}
	}
}

// TestServeIngestAckFault simulates the lost-acknowledgement failure the
// dedup watermark exists for: the batch is committed but the 202 is
// replaced by an injected 503. The client's retry of the same sequence
// dedups instead of double-applying.
func TestServeIngestAckFault(t *testing.T) {
	edges := gen.ErdosRenyi(50, 300, 9)
	_, ts := newTestServer(t, Config{Capacity: 1000, Seed: 2})
	armServeFaults(t, 7, "serve.ingest.ack:error:times=1")

	resp := postSequenced(t, ts.URL, "loader", 1, edges)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("faulted ack: status %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("faulted ack carries no Retry-After")
	}
	// Retry as an at-least-once client would: same source, same seq.
	resp = postSequenced(t, ts.URL, "loader", 1, edges)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("retry: status %d", resp.StatusCode)
	}
	if body := decodeJSON[map[string]any](t, resp); body["duplicate"] != true {
		t.Fatalf("retry not deduplicated: %v", body)
	}
	fault.Disarm()
	flush(t, ts.URL)

	resp, err := http.Get(ts.URL + "/v1/estimate?max_stale=0s")
	if err != nil {
		t.Fatal(err)
	}
	if est := decodeJSON[estimateResponse](t, resp); est.Arrivals != uint64(len(edges)) {
		t.Fatalf("arrivals = %d, want %d (exactly-once application)", est.Arrivals, len(edges))
	}
}

// TestServeHTTPFault: the route-level fault point turns any request into a
// uniform 503 + Retry-After — the transient-failure class clients retry on.
func TestServeHTTPFault(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 100, Seed: 3})
	armServeFaults(t, 7, "serve.http:error:times=1")
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("no Retry-After on injected 503")
	}
	if !strings.Contains(string(body), "injected") {
		t.Fatalf("body %q does not surface the injected error", body)
	}
	// The rule is exhausted: the service is healthy again.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fault status %d, want 200", resp.StatusCode)
	}
}

// TestServeStreamDecodeFault: a decode-layer fault surfaces as a 400 — the
// client-error class — never a 500.
func TestServeStreamDecodeFault(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 100, Seed: 4})
	armServeFaults(t, 7, "stream.decode:error:times=1")
	resp, err := http.Post(ts.URL+"/v1/ingest", "text/plain", strings.NewReader("1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d (%s), want 400", resp.StatusCode, body)
	}
}

// TestServeEstimateDeadline: a refresh held open past EstimateDeadline
// falls back to the previous snapshot flagged degraded; with no previous
// snapshot the query sheds with 503.
func TestServeEstimateDeadline(t *testing.T) {
	edges := gen.ErdosRenyi(80, 600, 5)
	_, ts := newTestServer(t, Config{Capacity: 1000, Seed: 5, EstimateDeadline: 60 * time.Millisecond})

	// No snapshot yet + stuck refresh: the deadline sheds the query.
	armServeFaults(t, 7, "serve.snapshot:latency:delay=400ms,times=2")
	resp, err := http.Get(ts.URL + "/v1/estimate?max_stale=0s")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no-snapshot deadline: status %d (%s), want 503", resp.StatusCode, body)
	}
	fault.Disarm()

	// The stalled refresh keeps running in the background and installs its
	// snapshot when the injected delay elapses; wait for the cache to turn
	// healthy — that snapshot is the stale-fallback anchor for the next
	// phase.
	var primed estimateResponse
	primeDeadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/estimate?max_stale=0s")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			primed = decodeJSON[estimateResponse](t, resp)
			break
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if time.Now().After(primeDeadline) {
			t.Fatal("estimate never recovered after the stalled refresh")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if primed.Degraded {
		t.Fatal("healthy estimate flagged degraded")
	}
	resp = postEdges(t, ts.URL, edges, false)
	resp.Body.Close()
	waitProcessed(t, ts.URL, uint64(len(edges)))
	armServeFaults(t, 7, "serve.snapshot:latency:delay=400ms,times=1")
	start := time.Now()
	resp, err = http.Get(ts.URL + "/v1/estimate?max_stale=0s")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale fallback status = %d, want 200", resp.StatusCode)
	}
	est := decodeJSON[estimateResponse](t, resp)
	if waited := time.Since(start); waited > 300*time.Millisecond {
		t.Fatalf("deadline did not bound the wait: %v", waited)
	}
	if !est.Degraded {
		t.Fatal("stale fallback not flagged degraded")
	}
	if est.Arrivals != primed.Arrivals {
		t.Fatalf("fallback arrivals = %d, want the primed snapshot's %d", est.Arrivals, primed.Arrivals)
	}
	fault.Disarm()

	// The stalled refresh finished in the background; strict freshness works
	// again and covers the new edges.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err = http.Get(ts.URL + "/v1/estimate?max_stale=0s")
		if err != nil {
			t.Fatal(err)
		}
		est = decodeJSON[estimateResponse](t, resp)
		if est.Arrivals == uint64(len(edges)) && !est.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("estimate never recovered: arrivals=%d degraded=%v", est.Arrivals, est.Degraded)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if st := decodeJSON[StatsV1](t, resp); st.DegradedQueries == 0 {
		t.Fatal("degraded_queries counter did not move")
	}
}

// TestServeQueryShedding: more concurrent estimates than
// MaxInflightQueries are shed with 429 + Retry-After.
func TestServeQueryShedding(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 100, Seed: 6, MaxInflightQueries: 1})
	// Hold the only slot open with a stalled forced-fresh refresh.
	armServeFaults(t, 7, "serve.snapshot:latency:delay=500ms,times=1")
	first := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/estimate?max_stale=0s")
		if err != nil {
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	// Wait (via /v1/stats, which is never shed) until the slow query has
	// been admitted and occupies the only slot.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		st := decodeJSON[StatsV1](t, resp)
		if st.InflightQueries >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow query never occupied the slot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/v1/estimate?max_stale=0s")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response carries no Retry-After")
	}
	if status := <-first; status != http.StatusOK {
		t.Fatalf("slot-holding query status = %d", status)
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if st := decodeJSON[StatsV1](t, resp); st.QueriesShed == 0 {
		t.Fatal("queries_shed counter did not move")
	}
}

// TestServeIngestPanicRecovery: a panic escaping the engine's admission
// path (injected at the ring publish) is recovered by the ingest loop —
// the service keeps serving and the loss is counted, and a flush behind
// the poisoned batch still completes.
func TestServeIngestPanicRecovery(t *testing.T) {
	edges := gen.ErdosRenyi(60, 500, 11)
	_, ts := newTestServer(t, Config{Capacity: 1000, Seed: 7})
	armServeFaults(t, 7, "engine.ring.publish:panic:times=1")
	resp := postEdges(t, ts.URL, edges[:250], false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	flush(t, ts.URL) // the marker behind the dropped batch must still ack
	fault.Disarm()

	resp = postEdges(t, ts.URL, edges[250:], false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-recovery ingest status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	flush(t, ts.URL)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeJSON[StatsV1](t, resp)
	if st.IngestPanics != 1 {
		t.Fatalf("ingest_panics = %d, want 1", st.IngestPanics)
	}
	if st.PendingBatches != 0 || st.PendingEdges != 0 {
		t.Fatalf("pending counters leaked: batches=%d edges=%d", st.PendingBatches, st.PendingEdges)
	}
}

// TestServeDegradedFromEngine: a lossy shard recovery (panic with no clone
// to restore from) degrades the whole read path — shard health in stats,
// degraded=true on estimates.
func TestServeDegradedFromEngine(t *testing.T) {
	edges := gen.ErdosRenyi(60, 500, 13)
	_, ts := newTestServer(t, Config{Capacity: 1000, Seed: 8, Shards: 1})
	// Drain a first batch cleanly so the scratch rebuild has something to
	// lose (a panic on the very first span would replay it exactly).
	resp := postEdges(t, ts.URL, edges[:250], false)
	resp.Body.Close()
	flush(t, ts.URL)
	armServeFaults(t, 7, "engine.shard.drain:panic:times=1")
	resp = postEdges(t, ts.URL, edges[250:], false)
	resp.Body.Close()
	flush(t, ts.URL)
	fault.Disarm()

	resp, err := http.Get(ts.URL + "/v1/estimate?max_stale=0s")
	if err != nil {
		t.Fatal(err)
	}
	if est := decodeJSON[estimateResponse](t, resp); !est.Degraded {
		t.Fatal("estimate after lossy recovery not flagged degraded")
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeJSON[StatsV1](t, resp)
	if !st.Degraded || st.ShardRestarts != 1 || st.LostEdges == 0 {
		t.Fatalf("stats = degraded=%v restarts=%d lost=%d, want degraded with 1 restart", st.Degraded, st.ShardRestarts, st.LostEdges)
	}
	if len(st.ShardHealth) != 1 || !strings.Contains(st.ShardHealth[0].LastPanic, "engine.shard.drain") {
		t.Fatalf("shard_health = %+v", st.ShardHealth)
	}
}

// TestServeCheckpointFaultClasses: an injected persistence failure answers
// 503 + Retry-After (never 500), leaves no torn checkpoint file behind,
// and the previous checkpoint stays restorable.
func TestServeCheckpointFaultClasses(t *testing.T) {
	dir := t.TempDir()
	edges := gen.ErdosRenyi(60, 500, 17)
	_, ts := newTestServer(t, Config{Capacity: 1000, Seed: 9, CheckpointDir: dir})
	resp := postEdges(t, ts.URL, edges[:250], false)
	resp.Body.Close()

	// A good checkpoint first: the file the faulted attempt must not damage.
	resp, err := http.Post(ts.URL+"/v1/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline checkpoint status = %d", resp.StatusCode)
	}
	first := decodeJSON[map[string]any](t, resp)
	firstPath := first["path"].(string)
	firstBytes, err := os.ReadFile(firstPath)
	if err != nil {
		t.Fatal(err)
	}

	resp = postEdges(t, ts.URL, edges[250:], false)
	resp.Body.Close()
	for _, point := range []string{"checkpoint.write", "checkpoint.fsync", "checkpoint.rename"} {
		armServeFaults(t, 7, point+":error:times=1")
		resp, err = http.Post(ts.URL+"/v1/checkpoint", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s: status %d (%s), want 503", point, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s: no Retry-After", point)
		}
		fault.Disarm()

		// No torn artifacts: only completed .gpsc files and no leftovers.
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".gpsc") {
				t.Fatalf("%s left a non-checkpoint artifact: %s", point, e.Name())
			}
		}
		// The pre-fault checkpoint is byte-identical.
		got, err := os.ReadFile(firstPath)
		if err != nil {
			t.Fatalf("%s clobbered the previous checkpoint: %v", point, err)
		}
		if !bytes.Equal(got, firstBytes) {
			t.Fatalf("%s modified the previous checkpoint", point)
		}
	}

	// With faults cleared the retry lands and covers everything.
	resp, err = http.Post(ts.URL+"/v1/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	final := decodeJSON[map[string]any](t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry checkpoint failed: %v", final)
	}
	if pos := uint64(final["position"].(float64)); pos != uint64(len(edges)) {
		t.Fatalf("retried checkpoint position = %d, want %d", pos, len(edges))
	}
	if _, err := os.Stat(filepath.Join(dir, filepath.Base(final["path"].(string)))); err != nil {
		t.Fatal(err)
	}
}

package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/stream"
)

// streamURL appends the ?stream= selector ("" = default) to a path that may
// already carry a query string.
func streamURL(base, path, name string) string {
	if name == "" {
		return base + path
	}
	sep := "?"
	if strings.Contains(path, "?") {
		sep = "&"
	}
	return base + path + sep + "stream=" + name
}

// postTo posts a binary batch to one named stream.
func postTo(t *testing.T, base, name string, edges []graph.Edge) *http.Response {
	t.Helper()
	var body bytes.Buffer
	if err := stream.WriteBinary(&body, edges); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(streamURL(base, "/v1/ingest", name), stream.BinaryContentType, &body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func flushStream(t *testing.T, base, name string) {
	t.Helper()
	resp, err := http.Post(streamURL(base, "/v1/flush", name), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("flush stream %q: %d %s", name, resp.StatusCode, b)
	}
}

func estimateStream(t *testing.T, base, name, query string) estimateResponse {
	t.Helper()
	url := streamURL(base, "/v1/estimate"+query, name)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("estimate %s: %d %s", url, resp.StatusCode, b)
	}
	return decodeJSON[estimateResponse](t, resp)
}

func createStream(t *testing.T, base, name, specJSON string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/v1/streams/"+name, "application/json", strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func deleteStream(t *testing.T, base, name string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/streams/"+name, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestStreamRegistryLifecycle drives the registry end to end over HTTP:
// create, list, per-stream ingest/flush/estimate isolation, delete, 404
// after delete, and re-creation under the same name (which would panic on
// duplicate metric registration if deletion leaked labeled samples).
func TestStreamRegistryLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 1000, Seed: 3})

	resp := createStream(t, ts.URL, "alpha", `{"capacity": 500, "seed": 11}`)
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("create alpha: %d %s", resp.StatusCode, b)
	}
	sum := decodeJSON[streamSummary](t, resp)
	if sum.Stream != "alpha" || sum.Capacity != 500 || sum.Default {
		t.Fatalf("create summary: %+v", sum)
	}
	// Duplicate create conflicts; so does shadowing the default stream.
	if resp := createStream(t, ts.URL, "alpha", ""); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: %d, want 409", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := createStream(t, ts.URL, "default", ""); resp.StatusCode != http.StatusConflict {
		t.Fatalf("create default: %d, want 409", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := createStream(t, ts.URL, "bad*name", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad name create: %d, want 400", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Distinct data per stream; each stream must answer from its own edges.
	defEdges := gen.ErdosRenyi(40, 120, 1)
	alphaEdges := gen.ErdosRenyi(25, 60, 2)
	for _, r := range []*http.Response{
		postTo(t, ts.URL, "", defEdges),
		postTo(t, ts.URL, "alpha", alphaEdges),
	} {
		if r.StatusCode != http.StatusAccepted {
			b, _ := io.ReadAll(r.Body)
			t.Fatalf("ingest: %d %s", r.StatusCode, b)
		}
		r.Body.Close()
	}
	flushStream(t, ts.URL, "")
	flushStream(t, ts.URL, "alpha")
	defEst := estimateStream(t, ts.URL, "", "?max_stale=0")
	alphaEst := estimateStream(t, ts.URL, "alpha", "?max_stale=0")
	if defEst.Arrivals == alphaEst.Arrivals {
		t.Fatalf("streams share arrivals (%d): not isolated", defEst.Arrivals)
	}
	if got, want := int(alphaEst.Arrivals), distinctCount(alphaEdges); got != want {
		t.Fatalf("alpha arrivals %d, want %d distinct edges", got, want)
	}

	// Listing: default first, then alpha.
	lresp, err := http.Get(ts.URL + "/v1/streams")
	if err != nil {
		t.Fatal(err)
	}
	listing := decodeJSON[struct {
		Streams []streamSummary `json:"streams"`
	}](t, lresp)
	if len(listing.Streams) != 2 || listing.Streams[0].Stream != "default" ||
		!listing.Streams[0].Default || listing.Streams[1].Stream != "alpha" {
		t.Fatalf("listing: %+v", listing.Streams)
	}

	// Unknown stream selectors answer 404 on the data plane.
	resp = postTo(t, ts.URL, "ghost", defEdges)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ingest to unknown stream: %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// Delete alpha; its selector turns 404; default is untouched.
	dresp := deleteStream(t, ts.URL, "alpha")
	if dresp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(dresp.Body)
		t.Fatalf("delete alpha: %d %s", dresp.StatusCode, b)
	}
	del := decodeJSON[map[string]any](t, dresp)
	if del["deleted"] != true || del["edges_processed"].(float64) != float64(len(alphaEdges)) {
		t.Fatalf("delete response: %v", del)
	}
	if resp := deleteStream(t, ts.URL, "alpha"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: %d, want 404", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := deleteStream(t, ts.URL, "default"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("delete default: %d, want 400", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	resp = postTo(t, ts.URL, "alpha", alphaEdges)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ingest after delete: %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
	if est := estimateStream(t, ts.URL, "", "?max_stale=0"); est.Arrivals != defEst.Arrivals {
		t.Fatalf("default stream arrivals moved across alpha's deletion: %d != %d", est.Arrivals, defEst.Arrivals)
	}

	// Re-creation under the same name must not trip the registry's
	// duplicate-registration panic (deletion unregistered the labeled
	// samples) and starts from an empty sampler.
	if resp := createStream(t, ts.URL, "alpha", ""); resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("re-create alpha: %d %s", resp.StatusCode, b)
	} else {
		resp.Body.Close()
	}
	flushStream(t, ts.URL, "alpha")
	if est := estimateStream(t, ts.URL, "alpha", "?max_stale=0"); est.Arrivals != 0 {
		t.Fatalf("re-created stream carries %d arrivals, want 0", est.Arrivals)
	}
}

func distinctCount(edges []graph.Edge) int {
	seen := map[uint64]bool{}
	for _, e := range edges {
		seen[e.Key()] = true
	}
	return len(seen)
}

// TestStreamFairShareAdmission checks the apportioned MaxPendingEdges
// bound: with two live streams each stream's share is half the budget, so a
// tenant whose batch overflows its own share is 503'd with the pending-edge
// message while the other tenant's in-bound batch is admitted untouched.
func TestStreamFairShareAdmission(t *testing.T) {
	s, ts := newTestServer(t, Config{Capacity: 1000, Seed: 3, MaxPendingEdges: 100})
	if resp := createStream(t, ts.URL, "b", ""); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create b: %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if share := s.pendingEdgeShare(); share != 50 {
		t.Fatalf("pendingEdgeShare = %d with 2 streams over 100, want 50", share)
	}

	// A's 60-edge batch exceeds its 50-edge share: rejected on arrival,
	// before any queueing (the check runs against the post-add pending sum).
	big := gen.ErdosRenyi(60, 60, 7)
	resp := postTo(t, ts.URL, "", big)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-share batch: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	msg := decodeJSON[map[string]string](t, resp)
	if msg["error"] != "ingest queue full (pending edge bound)" {
		t.Fatalf("reject message %q", msg["error"])
	}

	// B is unaffected: its in-share batch lands and is fully processed.
	small := gen.ErdosRenyi(20, 30, 8)
	resp = postTo(t, ts.URL, "b", small)
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("in-share batch on b: %d %s", resp.StatusCode, b)
	}
	resp.Body.Close()
	flushStream(t, ts.URL, "b")
	if est := estimateStream(t, ts.URL, "b", "?max_stale=0"); est.Arrivals == 0 {
		t.Fatal("b processed nothing while a was being shed")
	}
	// And the saturating tenant's rejection left no pending-edge leak.
	if pending := s.def.pendingEdges.Load(); pending != 0 {
		t.Fatalf("default pending edges = %d after rejection, want 0", pending)
	}

	// Deleting b returns the whole budget to the survivor: the same batch
	// that was rejected now fits.
	if resp := deleteStream(t, ts.URL, "b"); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete b: %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	resp = postTo(t, ts.URL, "", big)
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("post-delete batch: %d %s (share=%d)", resp.StatusCode, b, s.pendingEdgeShare())
	}
	resp.Body.Close()
}

// TestStreamConcurrentLifecycle hammers create/ingest/query/delete from
// concurrent goroutines — the registry's locking discipline (closeMu over
// the map + flags, metrics unregistration inside the critical section) is
// exactly what -race exercises here.
func TestStreamConcurrentLifecycle(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	_, ts := newTestServer(t, Config{Capacity: 500, Seed: 3, Shards: 2})

	edges := gen.ErdosRenyi(30, 60, 5)
	const workers = 4
	const rounds = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("s%d", w%2) // contend on two names across workers
			for i := 0; i < rounds; i++ {
				switch i % 4 {
				case 0:
					resp := createStream(t, ts.URL, name, "")
					if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
						t.Errorf("create %s: %d", name, resp.StatusCode)
					}
					resp.Body.Close()
				case 1:
					resp := postTo(t, ts.URL, name, edges)
					switch resp.StatusCode {
					case http.StatusAccepted, http.StatusNotFound, http.StatusServiceUnavailable:
					default:
						t.Errorf("ingest %s: %d", name, resp.StatusCode)
					}
					resp.Body.Close()
				case 2:
					resp, err := http.Get(streamURL(ts.URL, "/v1/estimate", name))
					if err != nil {
						t.Error(err)
						continue
					}
					switch resp.StatusCode {
					case http.StatusOK, http.StatusNotFound, http.StatusServiceUnavailable:
					default:
						t.Errorf("estimate %s: %d", name, resp.StatusCode)
					}
					resp.Body.Close()
				case 3:
					resp := deleteStream(t, ts.URL, name)
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
						t.Errorf("delete %s: %d", name, resp.StatusCode)
					}
					resp.Body.Close()
				}
			}
		}(w)
	}
	// The default stream keeps serving throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			resp := postTo(t, ts.URL, "", edges)
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusServiceUnavailable {
				t.Errorf("default ingest: %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	}()
	wg.Wait()
	flushStream(t, ts.URL, "")
	if est := estimateStream(t, ts.URL, "", "?max_stale=0"); est.Arrivals == 0 {
		t.Fatal("default stream lost its data during the lifecycle storm")
	}
}

// sseEvent is one decoded /v1/subscribe frame.
type sseEvent struct {
	event string
	data  estimateResponse
}

// readSSE decodes estimate events from an open SSE body onto a channel
// until the body closes.
func readSSE(t *testing.T, body io.Reader, out chan<- sseEvent) {
	sc := bufio.NewScanner(body)
	var ev sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev.data); err != nil {
				t.Errorf("bad SSE data: %v", err)
				return
			}
		case line == "":
			if ev.event != "" {
				out <- ev
				ev = sseEvent{}
			}
		}
	}
	close(out)
}

// TestStreamSubscribeIsolation opens an SSE subscription on one stream,
// forces snapshot epochs on both it and a sibling, and checks the
// subscriber sees exactly its own stream's epochs — every one of them, in
// order, and none of the sibling's.
func TestStreamSubscribeIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 1000, Seed: 3})
	if resp := createStream(t, ts.URL, "noise", ""); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create noise: %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/v1/subscribe")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("subscribe: %d %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("subscribe content type %q", ct)
	}
	events := make(chan sseEvent, 16)
	go readSSE(t, resp.Body, events)

	// Three epochs on the default stream, interleaved with noise epochs on
	// the sibling; every epoch is forced by a max_stale=0 estimate after new
	// distinct edges.
	var wantArrivals []uint64
	next := uint32(1)
	for round := 0; round < 3; round++ {
		var batch, noise []graph.Edge
		for i := 0; i < 5; i++ {
			batch = append(batch, graph.NewEdge(graph.NodeID(next), graph.NodeID(next+1)))
			noise = append(noise, graph.NewEdge(graph.NodeID(1000+next), graph.NodeID(1000+next+1)))
			next += 2
		}
		r := postTo(t, ts.URL, "", batch)
		r.Body.Close()
		r = postTo(t, ts.URL, "noise", noise)
		r.Body.Close()
		flushStream(t, ts.URL, "")
		flushStream(t, ts.URL, "noise")
		est := estimateStream(t, ts.URL, "", "?max_stale=0")
		_ = estimateStream(t, ts.URL, "noise", "?max_stale=0")
		wantArrivals = append(wantArrivals, est.Arrivals)
	}

	for i, want := range wantArrivals {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("SSE feed closed before epoch %d", i)
			}
			if ev.event != "estimate" {
				t.Fatalf("epoch %d: event %q, want estimate", i, ev.event)
			}
			if ev.data.Arrivals != want {
				t.Fatalf("epoch %d: arrivals %d, want %d (cross-stream leak or lost epoch)", i, ev.data.Arrivals, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no SSE event for epoch %d", i)
		}
	}
	select {
	case ev, ok := <-events:
		if ok {
			t.Fatalf("unexpected extra SSE event: %+v — sibling epochs leaked", ev)
		}
	case <-time.After(100 * time.Millisecond):
	}
}

// TestMultiStreamCheckpointRestore takes a KindMulti checkpoint of three
// streams (plain default, plain named, windowed named), kills the server,
// restores a new one from the file and checks every stream comes back at
// its own position with its own configuration and estimates.
func TestMultiStreamCheckpointRestore(t *testing.T) {
	dir := t.TempDir()
	s, err := NewServer(Config{Capacity: 1000, Seed: 3, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp := createStream(t, ts.URL, "beta", `{"capacity": 300, "seed": 9}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create beta: %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := createStream(t, ts.URL, "win", `{"window": 64, "pane_width": 16, "capacity": 400}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create win: %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	defEdges := gen.ErdosRenyi(40, 120, 1)
	betaEdges := gen.ErdosRenyi(30, 80, 2)
	var winEdges []graph.Edge
	for i, e := range gen.ErdosRenyi(25, 50, 3) {
		winEdges = append(winEdges, e.At(uint64(i+1)))
	}
	for _, in := range []struct {
		name  string
		edges []graph.Edge
	}{{"", defEdges}, {"beta", betaEdges}, {"win", winEdges}} {
		resp := postTo(t, ts.URL, in.name, in.edges)
		if resp.StatusCode != http.StatusAccepted {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("ingest %q: %d %s", in.name, resp.StatusCode, b)
		}
		resp.Body.Close()
	}

	cresp, err := http.Post(ts.URL+"/v1/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cresp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(cresp.Body)
		t.Fatalf("checkpoint: %d %s", cresp.StatusCode, b)
	}
	ck := decodeJSON[map[string]any](t, cresp)
	wantPos := uint64(len(defEdges) + len(betaEdges) + len(winEdges))
	if got := uint64(ck["position"].(float64)); got != wantPos {
		t.Fatalf("checkpoint position %d, want summed %d", got, wantPos)
	}
	// A persisted ?stream= checkpoint is refused: files cover every stream.
	if resp, err := http.Post(ts.URL+"/v1/checkpoint?stream=beta", "", nil); err != nil {
		t.Fatal(err)
	} else if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("per-stream persisted checkpoint: %d, want 400", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	preDef := estimateStream(t, ts.URL, "", "?max_stale=0")
	preBeta := estimateStream(t, ts.URL, "beta", "?max_stale=0")
	preWin := estimateStream(t, ts.URL, "win", "")
	ts.Close()
	s.Close() // crash-equivalent for durability: only the checkpoint survives

	s2, err := NewServer(Config{
		Capacity: 7, Seed: 99, // deliberately wrong: per-stream restored config must win
		RestoreFrom: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Close()

	if path, pos := s2.Restored(); path == "" || pos != uint64(len(defEdges)) {
		t.Fatalf("restored path %q position %d, want default-stream position %d", path, pos, len(defEdges))
	}
	lresp, err := http.Get(ts2.URL + "/v1/streams")
	if err != nil {
		t.Fatal(err)
	}
	listing := decodeJSON[struct {
		Streams []streamSummary `json:"streams"`
	}](t, lresp)
	if len(listing.Streams) != 3 {
		t.Fatalf("restored %d streams, want 3: %+v", len(listing.Streams), listing.Streams)
	}
	byName := map[string]streamSummary{}
	for _, sum := range listing.Streams {
		byName[sum.Stream] = sum
	}
	if byName["beta"].Capacity != 300 {
		t.Fatalf("beta restored capacity %d, want 300", byName["beta"].Capacity)
	}
	if byName["win"].Window != 64 || byName["win"].PaneWidth != 16 {
		t.Fatalf("win restored geometry: %+v", byName["win"])
	}

	postDef := estimateStream(t, ts2.URL, "", "?max_stale=0")
	postBeta := estimateStream(t, ts2.URL, "beta", "?max_stale=0")
	postWin := estimateStream(t, ts2.URL, "win", "")
	for _, c := range []struct {
		name      string
		pre, post estimateResponse
	}{{"default", preDef, postDef}, {"beta", preBeta, postBeta}, {"win", preWin, postWin}} {
		if c.pre.Arrivals != c.post.Arrivals || c.pre.Triangles != c.post.Triangles ||
			c.pre.Wedges != c.post.Wedges || c.pre.SampledEdges != c.post.SampledEdges {
			t.Fatalf("stream %s changed across restore:\npre  %+v\npost %+v", c.name, c.pre, c.post)
		}
	}
}

// TestSingleStreamCheckpointFormatUnchanged: with only the default stream
// live, GET /v1/checkpoint must emit the ordinary single-stream document —
// not the KindMulti container — so pre-registry restore paths keep working
// on its output byte-identically.
func TestSingleStreamCheckpointFormatUnchanged(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 100, Seed: 3})
	resp := postTo(t, ts.URL, "", gen.ErdosRenyi(20, 40, 1))
	resp.Body.Close()
	dl, err := http.Get(ts.URL + "/v1/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(dl.Body)
	dl.Body.Close()
	if err != nil || len(blob) < 6 {
		t.Fatalf("download: %v (%d bytes)", err, len(blob))
	}
	if kind := blob[5]; kind == 0x05 {
		t.Fatal("single-stream server emitted a KindMulti container")
	}

	// With a second stream live, the container kind appears.
	if cr := createStream(t, ts.URL, "extra", ""); cr.StatusCode != http.StatusCreated {
		t.Fatalf("create extra: %d", cr.StatusCode)
	} else {
		cr.Body.Close()
	}
	dl, err = http.Get(ts.URL + "/v1/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	blob, err = io.ReadAll(dl.Body)
	dl.Body.Close()
	if err != nil || len(blob) < 6 {
		t.Fatalf("multi download: %v (%d bytes)", err, len(blob))
	}
	if kind := blob[5]; kind != 0x05 {
		t.Fatalf("two-stream server emitted kind %#x, want the KindMulti container", kind)
	}
	// And ?stream= exports one stream as an ordinary document.
	dl, err = http.Get(ts.URL + "/v1/checkpoint?stream=extra")
	if err != nil {
		t.Fatal(err)
	}
	blob, err = io.ReadAll(dl.Body)
	dl.Body.Close()
	if err != nil || len(blob) < 6 {
		t.Fatalf("per-stream download: %v (%d bytes)", err, len(blob))
	}
	if kind := blob[5]; kind == 0x05 {
		t.Fatal("per-stream export emitted the KindMulti container")
	}
}

// TestServeEngineBoundary grep-gates the Stream abstraction: outside
// tenant.go (the registry's constructor/restore file), no non-test source
// in this package may name a concrete engine shape — the serving layer
// programs against engine.Stream only.
func TestServeEngineBoundary(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	forbidden := []string{
		"engine.Parallel", "engine.Windowed",
		"engine.NewParallel", "engine.NewWindowed",
		"engine.ReadParallel", "engine.ReadWindowed",
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || name == "tenant.go" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(".", name))
		if err != nil {
			t.Fatal(err)
		}
		for _, tok := range forbidden {
			if strings.Contains(string(src), tok) {
				t.Errorf("%s references %s: the serving layer must program against engine.Stream (concrete shapes live in tenant.go)", name, tok)
			}
		}
	}
}

// Package serve turns the GPS library into a continuous sampling service:
// a stdlib-only HTTP server that ingests live edge streams and answers
// subgraph queries while the streams are still arriving — the deployment
// scenario of the paper's in-stream estimation (§4), industrialized.
//
// # Architecture
//
//	clients ─► POST /v1/ingest ─► bounded queue ─► ingest goroutine
//	                                                   │ ProcessBatch
//	                                                   ▼
//	                                         engine.Stream (per stream)
//	                                                   │ Snapshot (low pause)
//	                                                   ▼
//	clients ◄─ GET /v1/estimate ◄─ snapshot cache (staleness-bounded)
//
// The server is multi-tenant: a registry of named streams, each with its
// own engine (plain sharded, forward-decayed, or sliding-window), bounded
// ingest queue, snapshot cache and metrics. Every /v1/* endpoint takes an
// optional ?stream= selector; its absence addresses the always-present
// "default" stream, so a single-tenant deployment never sees the registry
// and its wire traffic is identical to the pre-registry releases. Streams
// are created and deleted at runtime via POST/DELETE /v1/streams/{name}
// (or declared at boot via Config.Streams / the gps-serve -streams
// manifest), and GET /v1/subscribe pushes snapshot-epoch estimate updates
// per stream as server-sent events.
//
// Ingestion is asynchronous: handlers parse the request body (binary edge
// frames or plain text), enqueue the batch on the stream's bounded queue
// and return 202; when the queue is full they return 503 — explicit
// backpressure instead of unbounded buffering. The global MaxPendingEdges
// budget is apportioned fair-share across live streams, so one saturating
// tenant is rejected alone instead of starving the rest. A single ingest
// goroutine per stream drains its queue into the sharded sampler,
// preserving arrival order.
//
// Queries never touch the live sampler. They read an immutable snapshot —
// the engine's merged sampler plus its pre-computed
// Algorithm 2 estimates — from a per-stream cache with a configurable
// staleness bound: a snapshot younger than the bound (or than the
// request's max_stale override) is served directly to any number of
// concurrent readers, and a stale one triggers exactly one refresh while
// late arrivals wait for its result. Ingestion stalls only for the
// snapshot's shard-clone, not for merging or estimation.
//
// The stream model matches the paper (§3.1): edges are undirected, unique
// and simplified. Re-arrivals of a currently sampled edge are ignored by
// the samplers; clients are responsible for not replaying evicted edges.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gps/internal/checkpoint"
	"gps/internal/core"
	"gps/internal/fault"
	"gps/internal/graph"
	"gps/internal/obs"
	"gps/internal/stream"
)

// Config parameterizes a Server.
type Config struct {
	// Capacity is the reservoir size m of the underlying sampler.
	Capacity int
	// Weight is the sampling weight function; nil means uniform. It must
	// be pure (stateless): the sharded engine calls it concurrently.
	Weight core.WeightFunc
	// WeightName is reported by /v1/stats (the function itself has no
	// useful name at runtime).
	WeightName string
	// Seed makes the whole service run deterministic for a given ingestion
	// order.
	Seed uint64
	// Shards is the engine shard count; <= 0 means GOMAXPROCS.
	Shards int
	// QueueDepth bounds the number of pending ingest batches per stream;
	// beyond it ingestion requests are rejected with 503. <= 0 means 64.
	QueueDepth int
	// MaxPendingEdges bounds the total decoded edges waiting in the queues
	// (the real memory bound — QueueDepth alone would admit QueueDepth
	// maximum-size bodies). The budget is shared fair-share across live
	// streams: each stream may hold MaxPendingEdges / streams, so one
	// saturating tenant 503s alone. <= 0 means 4M edges (~32 MiB queued).
	MaxPendingEdges int
	// MaxBodyBytes caps an ingest request body. <= 0 means 32 MiB.
	MaxBodyBytes int64
	// MaxStaleness is the default bound on snapshot age for queries;
	// 0 means every query sees a fresh snapshot. Requests may tighten or
	// relax it per call with ?max_stale=<duration>.
	MaxStaleness time.Duration
	// HalfLife enables forward-decay (time-decayed) sampling with the given
	// exponential half-life in event-time units: recent edges dominate the
	// sample and /v1/estimate targets decayed counts at the stream's event
	// horizon. Ingested edges carry event times via the GPSB v2 framing or
	// a third edge-list column; untimed edges decay by stream position.
	// 0 (the default) disables decay.
	HalfLife float64
	// Window enables sliding-window sampling: the server keeps a chain of
	// time-partitioned panes (a windowed engine) and /v1/estimate answers
	// "the trailing w event-time units, exactly" via ?window=w (w defaults
	// to Window, the queryable maximum). Windowed queries bypass the
	// snapshot cache — each one merges the in-window panes fresh — and
	// /v1/estimate/subgraph is unavailable. Mutually exclusive with
	// HalfLife. 0 (the default) disables windowing.
	Window uint64
	// PaneWidth is the window pane granularity in event-time units; panes
	// only bound retention (queries trim to the exact window edge by stored
	// event time), so coarser panes cost memory, not accuracy. 0 defaults
	// to Window. Only meaningful with Window > 0.
	PaneWidth uint64
	// EstimateDeadline bounds how long an estimate/subgraph query waits for
	// a snapshot refresh. Past the deadline the previous snapshot is served
	// with "degraded": true instead of blocking the caller — graceful
	// degradation under a slow or faulted refresh. 0 (the default) waits
	// indefinitely, preserving strict freshness.
	EstimateDeadline time.Duration
	// MaxInflightQueries bounds concurrently admitted estimate/subgraph
	// queries per stream; beyond it requests are shed with 429 +
	// Retry-After instead of queueing behind the snapshot cache. <= 0
	// disables shedding.
	MaxInflightQueries int

	// Streams declares additional named streams to create at boot — the
	// programmatic form of the gps-serve -streams manifest. Each spec's
	// zero fields inherit the fields above; the "default" stream always
	// exists and is configured by the fields above directly. When a
	// multi-stream checkpoint restore already carries one of these names,
	// the restored state wins and the spec is ignored.
	Streams []StreamSpec

	// RestoreFrom restores the sampler data plane on boot from a GPSC
	// checkpoint: a file path, or a directory whose newest *.gpsc file is
	// used. A single-stream document restores the default stream exactly as
	// before; a multi-stream container restores every stream it names. The
	// checkpoint's capacity, weight and shard count override the fields
	// above — the restored state is only meaningful under the configuration
	// it was taken with. Empty starts fresh.
	RestoreFrom string
	// CheckpointDir is where POST /v1/checkpoint and the periodic
	// checkpointer persist snapshots (atomic rename, retention-pruned).
	// Empty disables persistence; GET /v1/checkpoint still streams
	// checkpoints over HTTP.
	CheckpointDir string
	// CheckpointEvery takes a checkpoint into CheckpointDir on this period;
	// 0 disables periodic checkpoints.
	CheckpointEvery time.Duration
	// CheckpointKeep bounds how many checkpoint files retention keeps in
	// CheckpointDir; <= 0 means 3.
	CheckpointKeep int

	// LogRequests emits one key=value log line per API request (id, route,
	// status, bytes, duration, remote) to LogWriter.
	LogRequests bool
	// LogWriter receives the request log; nil means os.Stderr.
	LogWriter io.Writer
}

// Server is the live sampling service. Construct with NewServer, expose
// via Handler, stop with Close.
type Server struct {
	cfg Config
	mux *http.ServeMux

	// The stream registry. tenants maps name → tenant and is guarded by
	// closeMu together with the closed flag; def is the always-present
	// "default" stream (also in the map). streams mirrors len(tenants) for
	// the lock-free fair-share admission check.
	tenants map[string]*tenant
	def     *tenant
	streams atomic.Int64

	done chan struct{}
	wg   sync.WaitGroup

	// closeMu excludes Close and stream deletion from in-flight enqueue
	// attempts: producers hold the read side across the closed/deleted
	// check + send, so after a writer acquires the write side and flips the
	// flag, nothing new can enter the queue — which lets the ingest
	// goroutines drain their queues on shutdown and guarantees every
	// 202-acknowledged batch reaches its sampler.
	closeMu sync.RWMutex
	closed  atomic.Bool
	start   time.Time

	// Durability state. ckptMu serializes file writes and retention so a
	// manual POST /v1/checkpoint cannot interleave with the periodic
	// checkpointer's rename+prune. Checkpoint files cover every stream, so
	// the counters stay server-level.
	ckptMu             sync.Mutex
	checkpointsWritten atomic.Uint64
	lastCheckpointNS   atomic.Int64 // unix ns of the last persisted checkpoint
	lastCheckpointErr  atomic.Value // string; "" when the last attempt succeeded
	restoredFrom       string       // checkpoint path restored on boot, "" if fresh

	// Observability. reg aggregates every layer's instrument families; the
	// route middleware stamps X-Request-Id from reqPrefix (per-boot) plus
	// reqSeq and, when logw is set, writes the request log.
	reg       *obs.Registry
	reqSeq    atomic.Uint64
	reqPrefix string
	logw      io.Writer
	pprofAddr atomic.Value // string: bound pprof listener address, for /v1/stats
}

type ingestItem struct {
	edges []graph.Edge
	ack   chan struct{} // non-nil for flush markers
}

// NewServer builds the service: the stream registry (the default stream
// plus any declared or restored named streams), the per-stream ingest
// pipelines and the HTTP routes.
func NewServer(cfg Config) (*Server, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxPendingEdges <= 0 {
		cfg.MaxPendingEdges = 4 << 20
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.WeightName == "" {
		cfg.WeightName = "uniform"
	}
	if cfg.CheckpointKeep <= 0 {
		cfg.CheckpointKeep = 3
	}
	if cfg.Window > 0 {
		if cfg.HalfLife > 0 {
			return nil, errors.New("serve: -window and -half-life are mutually exclusive (both reweight time)")
		}
		if cfg.PaneWidth == 0 {
			cfg.PaneWidth = cfg.Window
		}
	} else if cfg.PaneWidth != 0 {
		return nil, errors.New("serve: PaneWidth requires Window > 0")
	}
	if cfg.CheckpointDir != "" {
		// Fail at boot, not on the first (possibly periodic and therefore
		// silent) checkpoint: a mistyped directory must not yield a server
		// that merely *looks* durable.
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
		}
		// Sweep temporaries stranded by crashes mid-checkpoint; only
		// completed files carry the .gpsc extension, so anything else from
		// the write pipeline is garbage. One server owns a checkpoint dir.
		if entries, err := os.ReadDir(cfg.CheckpointDir); err == nil {
			for _, e := range entries {
				name := e.Name()
				if e.Type().IsRegular() &&
					(strings.HasSuffix(name, ".partial") || strings.Contains(name, ".partial.tmp") ||
						strings.Contains(name, checkpoint.FileExt+".tmp")) {
					os.Remove(filepath.Join(cfg.CheckpointDir, name))
				}
			}
		}
	}
	// Build every boot-time tenant before starting anything, closing the
	// engines already constructed if a later one fails.
	var (
		boot         []*tenant
		restoredFrom string
	)
	fail := func(err error) (*Server, error) {
		for _, t := range boot {
			t.eng.Close()
		}
		return nil, err
	}
	if cfg.RestoreFrom != "" {
		path, err := checkpoint.ResolvePath(cfg.RestoreFrom)
		if err != nil {
			return nil, fmt.Errorf("serve: restore: %w", err)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("serve: restore: %w", err)
		}
		br := bufio.NewReader(f)
		kind, err := peekKind(br)
		if err == nil {
			if kind == checkpoint.KindMulti {
				boot, err = restoreMulti(br, cfg)
			} else {
				var def *tenant
				def, err = restoreSingle(br, cfg)
				if def != nil {
					boot = []*tenant{def}
				}
			}
		}
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("serve: restore %s: %w", path, err)
		}
		restoredFrom = path
	} else {
		def, err := newTenant(defaultStream, cfg)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		boot = []*tenant{def}
	}
	names := make(map[string]*tenant, len(boot))
	var def *tenant
	for _, t := range boot {
		names[t.name] = t
		if t.name == defaultStream {
			def = t
		}
	}
	if def == nil {
		return fail(fmt.Errorf("serve: restore %s: multi-stream checkpoint has no %q stream", restoredFrom, defaultStream))
	}
	s := &Server{
		tenants:      make(map[string]*tenant, len(boot)+len(cfg.Streams)),
		done:         make(chan struct{}),
		start:        time.Now(),
		restoredFrom: restoredFrom,
	}
	// EffectiveConfig reflects the default stream (after defaulting, and
	// after a restore overrode capacity, weight and shard count); the
	// server-wide fields are shared with it anyway.
	s.cfg = def.cfg
	s.cfg.Streams = cfg.Streams
	s.cfg.RestoreFrom = cfg.RestoreFrom
	for _, spec := range cfg.Streams {
		if !validStreamName(spec.Name) {
			return fail(fmt.Errorf("serve: bad stream name %q (want 1-64 characters of [A-Za-z0-9._-])", spec.Name))
		}
		if spec.Name == defaultStream {
			return fail(fmt.Errorf("serve: stream %q always exists; configure it with the top-level fields", defaultStream))
		}
		if _, dup := names[spec.Name]; dup {
			// Restored state wins over a manifest re-declaration; a
			// manifest that lists a name twice is a plain mistake.
			if restoredFrom != "" {
				continue
			}
			return fail(fmt.Errorf("serve: stream %q declared twice", spec.Name))
		}
		scfg, err := s.streamConfig(spec)
		if err != nil {
			return fail(fmt.Errorf("serve: %w", err))
		}
		t, err := newTenant(spec.Name, scfg)
		if err != nil {
			return fail(fmt.Errorf("serve: stream %q: %w", spec.Name, err))
		}
		names[spec.Name] = t
		boot = append(boot, t)
	}
	s.lastCheckpointErr.Store("")
	if cfg.LogRequests {
		s.logw = cfg.LogWriter
		if s.logw == nil {
			s.logw = os.Stderr
		}
	}
	s.reqPrefix = fmt.Sprintf("%08x", uint32(time.Now().UnixNano()))
	s.reg = obs.NewRegistry()
	s.registerServerMetrics()
	for _, t := range boot {
		s.installTenantLocked(t) // boot is single-threaded: no lock needed yet
	}
	s.mux = http.NewServeMux()
	s.route("POST /v1/ingest", s.handleIngest)
	s.route("GET /v1/estimate", s.handleEstimate)
	s.route("POST /v1/estimate/subgraph", s.handleSubgraph)
	s.route("POST /v1/flush", s.handleFlush)
	s.route("POST /v1/checkpoint", s.handleCheckpoint)
	s.route("GET /v1/checkpoint", s.handleCheckpointDownload)
	s.route("GET /v1/stats", s.handleStats)
	s.route("GET /v1/streams", s.handleStreamList)
	s.route("POST /v1/streams/{name}", s.handleStreamCreate)
	s.route("DELETE /v1/streams/{name}", s.handleStreamDelete)
	s.route("GET /v1/subscribe", s.handleSubscribe)
	s.route("GET /healthz", s.handleHealth)
	s.route("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		s.reg.Handler().ServeHTTP(w, r)
	})
	if cfg.CheckpointEvery > 0 && cfg.CheckpointDir != "" {
		s.wg.Add(1)
		go s.checkpointLoop()
	}
	return s, nil
}

// Restored reports the checkpoint the server booted from and the stream
// position the default stream carried; an empty path means a fresh start.
func (s *Server) Restored() (path string, position uint64) {
	return s.restoredFrom, s.def.restoredPosition
}

// EffectiveConfig returns the configuration the server actually runs with
// — after defaulting, and after a restore overrode capacity, weight and
// shard count with the checkpoint's values. The engine fields describe the
// default stream; named streams carry their own (see GET /v1/streams).
func (s *Server) EffectiveConfig() Config { return s.cfg }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the ingest pipelines and the underlying samplers of every
// stream. Batches already acknowledged with 202 are processed before
// shutdown completes; in-flight requests racing Close observe 503s. Close
// is idempotent.
func (s *Server) Close() {
	s.closeMu.Lock()
	already := !s.closed.CompareAndSwap(false, true)
	var tenants []*tenant
	if !already {
		for _, t := range s.tenants {
			tenants = append(tenants, t)
		}
	}
	s.closeMu.Unlock()
	if already {
		return
	}
	close(s.done)
	s.wg.Wait()
	for _, t := range tenants {
		t.eng.Close()
	}
}

// pendingEdgeShare is each stream's slice of the global MaxPendingEdges
// budget: the whole budget for a single-tenant server (identical to the
// pre-registry behavior), an equal share otherwise — so a tenant that
// saturates its share is rejected alone instead of starving the rest.
func (s *Server) pendingEdgeShare() int64 {
	n := s.streams.Load()
	if n <= 1 {
		return int64(s.cfg.MaxPendingEdges)
	}
	return int64(s.cfg.MaxPendingEdges) / n
}

// ingestLoop is the single consumer of one stream's ingest queue: it
// preserves arrival order and is the only goroutine feeding that sampler.
// On shutdown or stream deletion it drains everything still queued — all
// of it was enqueued (and acknowledged) before the flag flipped.
func (s *Server) ingestLoop(t *tenant) {
	defer s.wg.Done()
	defer close(t.loopDone)
	handle := func(it ingestItem) {
		t.pendingBatches.Add(-1)
		if len(it.edges) > 0 {
			// Recover a panic escaping admission (e.g. an injected
			// ring-publish fault): the batch may be partially applied, but
			// the loop — the only feeder of the sampler — must survive, and
			// a pending flush marker behind the batch must still be acked.
			// The stream position advances regardless so it stays an upper
			// bound on arrivals (the snapshot cache's "provably current"
			// check compares for equality, which a dropped batch only makes
			// conservative); the loss itself is visible in ingest_panics.
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						t.ingestPanics.Add(1)
					}
				}()
				if err := t.eng.ProcessBatch(it.edges); err != nil {
					// A windowed rotation failure (merge on a faulted pane)
					// loses the batch like a recovered panic would; the loop
					// survives and the loss is visible in ingest_panics.
					t.ingestPanics.Add(1)
				}
			}()
			t.pendingEdges.Add(-int64(len(it.edges)))
			t.edgesProcessed.Add(uint64(len(it.edges)))
		}
		if it.ack != nil {
			close(it.ack)
		}
	}
	drain := func() {
		for {
			select {
			case it := <-t.queue:
				handle(it)
			default:
				return
			}
		}
	}
	for {
		select {
		case <-s.done:
			drain()
			return
		case <-t.tdone:
			drain()
			return
		case it := <-t.queue:
			handle(it)
		}
	}
}

// limitTracker records whether the wrapped MaxBytesReader ever tripped its
// limit. The truncation usually cuts a record in half, so the parser
// reports a parse error before it observes the *http.MaxBytesError itself;
// the tracker lets the handler still answer 413 instead of 400.
type limitTracker struct {
	r       io.Reader
	tripped bool
}

func (t *limitTracker) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		t.tripped = true
	}
	return n, err
}

// parseBody decodes an ingest body: binary edge frames when the content
// type or magic says so, plain-text edge list otherwise. Self-loop records
// are skipped and counted per the shared reader policy (the count feeds
// the ingest response and /v1/stats). tooBig reports that the body
// exceeded MaxBodyBytes (the error is then a truncation artifact, not
// malformed client data).
func (s *Server) parseBody(r *http.Request) (edges []graph.Edge, st stream.ReadStats, tooBig bool, err error) {
	if r.ContentLength > s.cfg.MaxBodyBytes {
		return nil, st, true, fmt.Errorf("serve: body of %d bytes exceeds limit", r.ContentLength)
	}
	body := &limitTracker{r: http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)}
	if r.Header.Get("Content-Type") == stream.BinaryContentType {
		edges, st, err = stream.ReadBinaryStats(body)
	} else {
		edges, st, err = stream.ReadEdgesStats(body)
	}
	return edges, st, body.tripped, err
}

// ingestSequence parses the at-least-once dedup headers: X-GPS-Source names
// the client stream and X-GPS-Seq carries its monotonically increasing batch
// sequence number (>= 1). Absent headers mean fire-and-forget ingest.
func ingestSequence(r *http.Request) (source string, seq uint64, err error) {
	source = r.Header.Get("X-GPS-Source")
	if source == "" {
		return "", 0, nil
	}
	raw := r.Header.Get("X-GPS-Seq")
	if raw == "" {
		return "", 0, errors.New("X-GPS-Source requires an X-GPS-Seq batch sequence number")
	}
	seq, perr := strconv.ParseUint(raw, 10, 64)
	if perr != nil || seq == 0 {
		return "", 0, fmt.Errorf("bad X-GPS-Seq %q (want a positive integer)", raw)
	}
	return source, seq, nil
}

// recordSequence advances the dedup watermark for source to seq. dup reports
// that seq was already acknowledged (the batch must not be re-applied);
// otherwise rollback undoes the advance, for batches that end up rejected —
// the client will retry them with the same sequence number.
func (t *tenant) recordSequence(source string, seq uint64) (dup bool, rollback func()) {
	if source == "" {
		return false, func() {}
	}
	t.seqMu.Lock()
	defer t.seqMu.Unlock()
	last, seen := t.seqSeen[source]
	if seen && seq <= last {
		return true, nil
	}
	t.seqSeen[source] = seq
	return false, func() {
		t.seqMu.Lock()
		defer t.seqMu.Unlock()
		if cur, ok := t.seqSeen[source]; ok && cur == seq {
			if seen {
				t.seqSeen[source] = last
			} else {
				delete(t.seqSeen, source)
			}
		}
	}
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	edges, rst, tooBig, err := s.parseBody(r)
	if err != nil {
		if tooBig {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes; split the batch", s.cfg.MaxBodyBytes))
			return
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	source, seq, err := ingestSequence(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	dup, rollbackSeq := t.recordSequence(source, seq)
	if dup {
		// The batch was applied (or at least acknowledged) on a previous
		// attempt whose response the client lost: acknowledge again without
		// re-feeding the sampler — at-least-once delivery, exactly-once
		// application.
		t.duplicateBatches.Add(1)
		writeJSON(w, http.StatusAccepted, map[string]any{"accepted": 0, "duplicate": true})
		return
	}
	if len(edges) == 0 {
		// The body was fully parsed and (vacuously) admitted: its skips
		// count. Rejected or unparseable bodies never reach the counter —
		// it must track skips from accepted stream positions only.
		t.selfLoops.Add(uint64(rst.SelfLoops))
		writeJSON(w, http.StatusAccepted, map[string]any{"accepted": 0, "skipped_self_loops": rst.SelfLoops})
		return
	}
	if t.cfg.HalfLife > 0 {
		if msg := t.decayRangeCheck(edges); msg != "" {
			// Past this span the sampler's boost would overflow float64 and
			// abort the whole process; reject the batch while the error can
			// still be an HTTP response.
			t.met.decayRejects.Inc()
			rollbackSeq()
			httpError(w, http.StatusBadRequest, msg)
			return
		}
	}
	// The read lock pins the open/closed/deleted state across the check +
	// enqueue: once Close (or a stream deletion) holds the write side, no
	// further batch can be admitted, so everything acknowledged below is
	// guaranteed to be drained.
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed.Load() {
		rollbackSeq()
		httpError(w, http.StatusServiceUnavailable, "server closed")
		return
	}
	if t.deleted.Load() {
		rollbackSeq()
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown stream %q", t.name))
		return
	}
	// Count the batch before the enqueue attempt (rolling back on
	// rejection): the consumer decrements only after receiving, so stats
	// readers never observe negative pending counts, and the edge bound
	// can't be overshot by concurrent producers racing the check.
	t.pendingBatches.Add(1)
	pending := t.pendingEdges.Add(int64(len(edges)))
	reject := func(msg string) {
		t.pendingBatches.Add(-1)
		t.pendingEdges.Add(-int64(len(edges)))
		t.batchesDropped.Add(1)
		t.shedTotal.Add(1)
		rollbackSeq()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, msg)
	}
	if pending > s.pendingEdgeShare() {
		// Backpressure on queued volume: QueueDepth alone would let
		// QueueDepth maximum-size bodies sit decoded in memory.
		reject("ingest queue full (pending edge bound)")
		return
	}
	select {
	case t.queue <- ingestItem{edges: edges}:
		t.edgesAccepted.Add(uint64(len(edges)))
		t.selfLoops.Add(uint64(rst.SelfLoops))
		if dels := countDeletions(edges); dels > 0 {
			t.deletionRecs.Add(dels)
		}
		if fault.Enabled() {
			// Lost-acknowledgement window: the batch is enqueued and its
			// sequence recorded, but the 202 never reaches the client — the
			// same shape as a connection cut after commit. A sequenced
			// client retries and the dedup watermark answers "duplicate"
			// without re-applying the batch.
			if ferr := fault.Hit(fault.IngestAck); ferr != nil {
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusServiceUnavailable, ferr.Error())
				return
			}
		}
		writeJSON(w, http.StatusAccepted, map[string]any{
			"accepted":           len(edges),
			"skipped_self_loops": rst.SelfLoops,
			"queued_batches":     t.pendingBatches.Load(),
		})
	default:
		// Backpressure: the queue is full. Clients should retry with
		// delay; unbounded buffering here would just hide the overload.
		reject("ingest queue full")
	}
}

// countDeletions counts the turnstile deletion records in a parsed batch,
// for the serve-level deletion telemetry (exact regardless of whether each
// record later hits a sampled or an unsampled edge).
func countDeletions(edges []graph.Edge) uint64 {
	var n uint64
	for _, e := range edges {
		if e.Del {
			n++
		}
	}
	return n
}

// maxDecaySpanHalfLives bounds how far past the decay landmark the service
// admits events: the forward-decay boost exp(λ(t−L)) overflows float64 at
// ~1022 half-lives, which would abort the sampler mid-process. Guarding at
// 1000 turns "the server crashed" into a 400 with a margin for batches
// already in flight.
const maxDecaySpanHalfLives = 1000

// decayRangeCheck reports (as a client-facing message, "" = fine) whether a
// parsed batch could push the decayed sampler outside the representable
// span: event times are checked against the pinned landmark (or, before
// the first pin, the batch's own first event time — what the engine will
// pin) in *both* directions, since the boost overflows ~1000 half-lives
// above the landmark and underflows to a zero weight the same distance
// below; untimed edges are checked against the projected engine position
// clock. Mixing timed and untimed edges under decay is rejected outright:
// the engine would stamp the untimed rows with clock positions that are
// incommensurate with the event-time landmark, which is the same crash
// spelled differently. The stream's shape (timed vs untimed) is locked in
// on the first accepted batch.
func (t *tenant) decayRangeCheck(edges []graph.Edge) string {
	limit := uint64(maxDecaySpanHalfLives * t.cfg.HalfLife)
	timed := 0
	var firstTS, minTS, maxTS uint64
	for _, e := range edges {
		if e.TS == 0 {
			continue
		}
		if timed == 0 {
			firstTS, minTS, maxTS = e.TS, e.TS, e.TS
		} else {
			if e.TS < minTS {
				minTS = e.TS
			}
			if e.TS > maxTS {
				maxTS = e.TS
			}
		}
		timed++
	}
	if timed > 0 && timed < len(edges) {
		return "batch mixes event-timed and untimed edges; a decayed stream must carry timestamps on every edge or on none"
	}
	base, haveBase := t.eng.DecayLandmark()
	if timed > 0 {
		if !haveBase {
			base = firstTS // the engine pins the first routed edge's time
		}
		if maxTS > base && maxTS-base > limit {
			return fmt.Sprintf("event time %d is more than %d half-lives past the decay landmark %d; "+
				"restart with a larger -half-life (or a later landmark) to cover this stream",
				maxTS, maxDecaySpanHalfLives, base)
		}
		if base > minTS && base-minTS > limit {
			return fmt.Sprintf("event time %d is more than %d half-lives before the decay landmark %d; "+
				"its weight would underflow to zero — restart with a larger -half-life or an earlier landmark",
				minTS, maxDecaySpanHalfLives, base)
		}
	} else {
		// Untimed edges are stamped from the engine position clock, so the
		// landmark must itself be a clock position (≈1), not an event time
		// from a previously timed stream.
		projected := t.edgesProcessed.Load() + uint64(t.pendingEdges.Load()) + uint64(len(edges))
		if !haveBase {
			base = 1
		}
		if base > projected && base-projected > limit {
			return "untimed edges cannot follow an event-timed decayed stream (their stamped positions " +
				"would sit unrepresentably far below the landmark); keep the stream uniformly timestamped"
		}
		if projected > base && projected-base > limit {
			return fmt.Sprintf("stream position %d exceeds %d half-lives of arrival-order decay; "+
				"restart with a larger -half-life to keep sampling this stream", projected, maxDecaySpanHalfLives)
		}
	}
	// Lock the stream shape on the first batch that passes: a later switch
	// between timed and untimed is rejected before it can reach the sampler.
	mode := int32(2)
	if timed > 0 {
		mode = 1
	}
	if !t.decayMode.CompareAndSwap(0, mode) && t.decayMode.Load() != mode {
		return "stream switched between event-timed and untimed edges; a decayed server samples one shape per run"
	}
	return ""
}

var (
	errServerClosed  = errors.New("server closed")
	errStreamDeleted = errors.New("stream deleted")
)

// flushBarrier blocks until everything enqueued on t before it has reached
// the sampler — the read-your-writes primitive behind /v1/flush and the
// checkpoint handlers (a checkpoint must cover every batch acknowledged
// before it was requested). It follows the closeMu discipline of
// handleIngest: while the read lock is held, neither Close nor a stream
// deletion can flip its flag, so a marker admitted here is guaranteed to
// be consumed (shutdown and deletion both drain the queue) and the pending
// counter cannot leak.
func (s *Server) flushBarrier(ctx context.Context, t *tenant) error {
	s.closeMu.RLock()
	if s.closed.Load() {
		s.closeMu.RUnlock()
		return errServerClosed
	}
	if t.deleted.Load() {
		s.closeMu.RUnlock()
		return errStreamDeleted
	}
	ack := make(chan struct{})
	t.pendingBatches.Add(1)
	select {
	case t.queue <- ingestItem{ack: ack}:
		s.closeMu.RUnlock()
	case <-ctx.Done():
		t.pendingBatches.Add(-1)
		s.closeMu.RUnlock()
		return ctx.Err()
	}
	select {
	case <-ack:
		return nil
	case <-s.done:
		return errServerClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// flushAll runs the flush barrier on every live stream — the fence the
// all-stream checkpoint writers need. Streams deleted while iterating are
// skipped: their state is gone by design.
func (s *Server) flushAll(ctx context.Context) error {
	for _, t := range s.liveTenants() {
		if err := s.flushBarrier(ctx, t); err != nil {
			if errors.Is(err, errStreamDeleted) {
				continue
			}
			return err
		}
	}
	return nil
}

// handleFlush blocks until everything enqueued on the stream before it has
// reached the sampler, then reports the arrival count. It gives
// deterministic read-your-writes sequencing to tests and loaders.
func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	if err := s.flushBarrier(r.Context(), t); err != nil {
		httpError(w, http.StatusServiceUnavailable, flushErrMsg(err))
		return
	}
	// Drop any pre-flush snapshot so a follow-up estimate at the
	// default staleness bound sees the acknowledged writes.
	t.snaps.invalidate()
	// Arrivals is uniform across engine shapes: distinct arrivals on a
	// plain engine, the stream position (all records, counted once across
	// the pane fan-out) on a windowed one — the fence a loader sequences on.
	writeJSON(w, http.StatusOK, map[string]any{"arrivals": t.eng.Arrivals()})
}

func flushErrMsg(err error) string {
	switch {
	case errors.Is(err, errServerClosed):
		return "server closed"
	case errors.Is(err, errStreamDeleted):
		return "stream deleted"
	}
	return "canceled"
}

// writeEngineCheckpoint serializes the data plane: a single-stream server
// writes its stream's ordinary engine/window document (byte-identical to
// the pre-registry format), a multi-stream server writes the KindMulti
// container covering every stream. Returns the stream position the
// document covers (summed across streams).
func (s *Server) writeEngineCheckpoint(w io.Writer) (position uint64, err error) {
	tenants := s.liveTenants()
	if len(tenants) == 1 {
		t := tenants[0]
		return t.eng.WriteCheckpoint(w, t.cfg.WeightName)
	}
	return writeMultiCheckpoint(w, tenants)
}

// writeCheckpointFile persists one checkpoint into CheckpointDir with
// crash-safe visibility and prunes retention, returning the stream
// position the file covers (reported by the engine atomically with the
// serialized state — concurrent ingest cannot skew it). Callers have
// already drained the ingest queues. The file is first written under a
// position-less temporary name, then renamed to embed the covered
// position, so retention order, lexicographic order and stream order all
// agree.
func (s *Server) writeCheckpointFile() (path string, bytes int64, position uint64, err error) {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	tmp := filepath.Join(s.cfg.CheckpointDir, fmt.Sprintf("inflight-%019d.partial", time.Now().UnixNano()))
	bytes, err = checkpoint.WriteFileAtomic(tmp, func(w io.Writer) error {
		var werr error
		position, werr = s.writeEngineCheckpoint(w)
		return werr
	})
	if err == nil {
		name := fmt.Sprintf("ckpt-%020d-%019d%s", position, time.Now().UnixNano(), checkpoint.FileExt)
		path = filepath.Join(s.cfg.CheckpointDir, name)
		if err = os.Rename(tmp, path); err != nil {
			os.Remove(tmp)
		} else {
			// The 200 response names the final path; the rename must
			// survive power loss too, or the boot sweep would collect the
			// .partial remnant and silently discard an acknowledged
			// checkpoint.
			checkpoint.SyncDir(s.cfg.CheckpointDir)
		}
	}
	if err != nil {
		s.lastCheckpointErr.Store(err.Error())
		return "", 0, 0, err
	}
	// The checkpoint is durable from here on: a retention failure is
	// surfaced through /v1/stats but must not turn an already-persisted
	// checkpoint into a reported failure.
	s.checkpointsWritten.Add(1)
	s.lastCheckpointNS.Store(time.Now().UnixNano())
	if perr := checkpoint.Prune(s.cfg.CheckpointDir, s.cfg.CheckpointKeep); perr != nil {
		s.lastCheckpointErr.Store("retention: " + perr.Error())
	} else {
		s.lastCheckpointErr.Store("")
	}
	return path, bytes, position, nil
}

// WriteCheckpointNow drains the ingest queues and persists one checkpoint
// (covering every stream) into CheckpointDir, returning where it landed —
// the programmatic form of POST /v1/checkpoint. gps-serve calls it for the
// -checkpoint-on-shutdown final checkpoint, after the HTTP listeners have
// drained and before Close.
func (s *Server) WriteCheckpointNow(ctx context.Context) (path string, position uint64, err error) {
	if s.cfg.CheckpointDir == "" {
		return "", 0, errors.New("serve: no checkpoint directory configured")
	}
	if err := s.flushAll(ctx); err != nil {
		return "", 0, err
	}
	path, _, position, err = s.writeCheckpointFile()
	return path, position, err
}

// checkpointLoop is the periodic checkpointer: every CheckpointEvery it
// drains the queues and persists a checkpoint, so a crash loses at most
// one period of ingestion. Failures are surfaced through /v1/stats
// (last_checkpoint_error) and retried on the next tick.
func (s *Server) checkpointLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.CheckpointEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
			if err := s.flushAll(context.Background()); err != nil {
				return // only fails when the server is closing
			}
			_, _, _, _ = s.writeCheckpointFile() // error recorded for /v1/stats
		}
	}
}

// handleCheckpoint (POST /v1/checkpoint) drains the ingest queues,
// persists a checkpoint covering every stream into CheckpointDir and
// reports where it landed. Everything acknowledged with 202 before this
// request is covered by the file. Per-stream persistence would tear the
// crash-recovery story (which file wins?), so the stream selector is
// rejected here; GET /v1/checkpoint?stream= exports one stream.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("stream") != "" {
		httpError(w, http.StatusBadRequest,
			"persisted checkpoints cover every stream; drop the stream parameter (GET /v1/checkpoint?stream=... exports one)")
		return
	}
	if s.cfg.CheckpointDir == "" {
		httpError(w, http.StatusBadRequest, "no checkpoint directory configured (start with -checkpoint-dir)")
		return
	}
	start := time.Now()
	if err := s.flushAll(r.Context()); err != nil {
		httpError(w, http.StatusServiceUnavailable, flushErrMsg(err))
		return
	}
	path, n, position, err := s.writeCheckpointFile()
	if err != nil {
		// A persistence failure (disk full, I/O error) is a server-side
		// condition the client can retry, not an opaque 500: the sampler
		// state is intact and the previous checkpoint file is untouched.
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"path":        path,
		"bytes":       n,
		"position":    position,
		"duration_ms": float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// handleCheckpointDownload (GET /v1/checkpoint) streams a checkpoint of
// the current state over HTTP — the migration path: a new host can boot
// from `curl .../v1/checkpoint > state.gpsc` + `-restore state.gpsc`
// without the old host ever touching disk. With ?stream=S only that
// stream is exported, as an ordinary single-stream document a
// single-tenant server can restore directly — the per-stream migration
// path. The trailing checksum lets the receiver verify integrity end to
// end.
func (s *Server) handleCheckpointDownload(w http.ResponseWriter, r *http.Request) {
	single := r.URL.Query().Get("stream") != ""
	var t *tenant
	if single {
		var ok bool
		if t, ok = s.tenantFor(w, r); !ok {
			return
		}
		if err := s.flushBarrier(r.Context(), t); err != nil {
			httpError(w, http.StatusServiceUnavailable, flushErrMsg(err))
			return
		}
	} else if err := s.flushAll(r.Context()); err != nil {
		httpError(w, http.StatusServiceUnavailable, flushErrMsg(err))
		return
	}
	cw := &countingWriter{w: w}
	var err error
	if single {
		_, err = t.eng.WriteCheckpoint(cw, t.cfg.WeightName)
	} else {
		_, err = s.writeEngineCheckpoint(cw)
	}
	if err != nil {
		if cw.n == 0 {
			// Nothing sent yet (headers included): a proper error status is
			// still possible — e.g. the engine closed under a racing
			// shutdown. Without this, curl -f would record an empty 200
			// body as a successful migration.
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		// Mid-stream failure: abort the connection so the client sees a
		// transport error instead of a cleanly-terminated short body (the
		// trailing checksum would also expose it, but only at restore time).
		panic(http.ErrAbortHandler)
	}
}

// countingWriter defers the checkpoint download's Content-Type and implicit
// 200 until the first byte actually flows, so an immediate failure can
// still turn into an error status.
type countingWriter struct {
	w http.ResponseWriter
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.n == 0 && len(p) > 0 {
		c.w.Header().Set("Content-Type", checkpoint.ContentType)
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// maxStale resolves the effective staleness bound for a request.
func (s *Server) maxStale(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("max_stale")
	if raw == "" {
		return s.cfg.MaxStaleness, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("bad max_stale %q (want a non-negative Go duration, e.g. 250ms)", raw)
	}
	return d, nil
}

// admitQuery reserves a slot for a snapshot-reading query on one stream.
// When more than MaxInflightQueries are already running, the request is
// shed with 429 + Retry-After instead of queueing behind the snapshot
// cache — bounded latency for the admitted queries, an honest signal for
// the rest. release must be called when the query finishes; ok=false means
// the response has been written.
func (s *Server) admitQuery(w http.ResponseWriter, t *tenant) (release func(), ok bool) {
	if s.cfg.MaxInflightQueries <= 0 {
		return func() {}, true
	}
	if n := t.inflightQueries.Add(1); n > int64(s.cfg.MaxInflightQueries) {
		t.inflightQueries.Add(-1)
		t.shedTotal.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("query load shed (more than %d estimates in flight); retry shortly", s.cfg.MaxInflightQueries))
		return nil, false
	}
	return func() { t.inflightQueries.Add(-1) }, true
}

// estimateResponse is the JSON shape of /v1/estimate. With decay enabled
// the counts target the forward-decayed totals at decay_horizon (the
// stream's largest event time); the decay fields are omitted otherwise.
type estimateResponse struct {
	Triangles      float64    `json:"triangles"`
	TrianglesCI    [2]float64 `json:"triangles_ci95"`
	Wedges         float64    `json:"wedges"`
	WedgesCI       [2]float64 `json:"wedges_ci95"`
	Clustering     float64    `json:"clustering"`
	ClusteringCI   [2]float64 `json:"clustering_ci95"`
	SampledEdges   int        `json:"sampled_edges"`
	Arrivals       uint64     `json:"arrivals"`
	Threshold      float64    `json:"threshold"`
	SnapshotAgeMS  float64    `json:"snapshot_age_ms"`
	SnapshotUnixNS int64      `json:"snapshot_unix_ns"`
	// Degraded marks a best-effort answer: the engine lost edges to a lossy
	// shard recovery, or the refresh missed EstimateDeadline and this is
	// the previous snapshot.
	Degraded      bool    `json:"degraded,omitempty"`
	Decayed       bool    `json:"decayed,omitempty"`
	DecayedEdges  float64 `json:"decayed_edges,omitempty"`
	DecayHorizon  uint64  `json:"decay_horizon,omitempty"`
	DecayHalfLife float64 `json:"decay_half_life,omitempty"`
	// Windowed-mode fields: the effective window width, the event-time
	// horizon it ends at, the Horvitz-Thompson in-window edge count, and
	// how many panes were merged. Omitted on non-windowed servers.
	Window        uint64  `json:"window,omitempty"`
	WindowHorizon uint64  `json:"window_horizon,omitempty"`
	WindowEdges   float64 `json:"window_edges,omitempty"`
	WindowPanes   int     `json:"window_panes,omitempty"`
}

// estimateFrom builds the estimate response for one snapshot — shared by
// the estimate handler and the SSE subscription feed, so both emit the
// same shape for the same epoch.
func (t *tenant) estimateFrom(sn *snapshot, degraded bool) estimateResponse {
	est := sn.est
	tri, wed, cc := est.TriangleInterval(), est.WedgeInterval(), est.ClusteringInterval()
	return estimateResponse{
		Triangles:      est.Triangles,
		TrianglesCI:    [2]float64{tri.Lower, tri.Upper},
		Wedges:         est.Wedges,
		WedgesCI:       [2]float64{wed.Lower, wed.Upper},
		Clustering:     est.GlobalClustering(),
		ClusteringCI:   [2]float64{cc.Lower, cc.Upper},
		SampledEdges:   est.SampledEdges,
		Arrivals:       est.Arrivals,
		Threshold:      sn.sampler.Threshold(),
		SnapshotAgeMS:  float64(time.Since(sn.taken)) / float64(time.Millisecond),
		SnapshotUnixNS: sn.taken.UnixNano(),
		Degraded:       degraded,
		Decayed:        est.Decayed,
		DecayedEdges:   est.DecayedEdges,
		DecayHorizon:   est.DecayHorizon,
		DecayHalfLife:  t.cfg.HalfLife,
	}
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	if t.windowed() {
		s.handleWindowEstimate(w, r, t)
		return
	}
	if raw := r.URL.Query().Get("window"); raw != "" {
		httpError(w, http.StatusBadRequest,
			"window queries need a windowed server (start with -window)")
		return
	}
	stale, err := s.maxStale(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	release, ok := s.admitQuery(w, t)
	if !ok {
		return
	}
	defer release()
	snap, staleServed, err := t.snaps.get(stale, s.cfg.EstimateDeadline)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	degraded := staleServed || snap.degraded
	if degraded {
		t.degradedQueries.Add(1)
	}
	t.met.snapAge.Observe(uint64(time.Since(snap.taken)))
	writeJSON(w, http.StatusOK, t.estimateFrom(snap, degraded))
}

// handleWindowEstimate answers /v1/estimate on a windowed stream: it
// merges the panes overlapping the requested trailing window (?window=w in
// event-time units; absent or 0 means the configured maximum) and runs the
// post-stream estimators on the merged sample. There is no snapshot cache
// in this mode — every answer is freshly merged — so max_stale is accepted
// and ignored.
func (s *Server) handleWindowEstimate(w http.ResponseWriter, r *http.Request, t *tenant) {
	var window uint64
	if raw := r.URL.Query().Get("window"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil || v == 0 {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("bad window %q (want a positive integer in event-time units)", raw))
			return
		}
		if v > t.cfg.Window {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("window %d exceeds the configured maximum %d (older panes are already retired)", v, t.cfg.Window))
			return
		}
		window = v
	}
	release, ok := s.admitQuery(w, t)
	if !ok {
		return
	}
	defer release()
	taken := time.Now()
	est, err := t.eng.Estimate(window)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	t.met.snapAge.Observe(uint64(time.Since(taken)))
	tri, wed, cc := est.TriangleInterval(), est.WedgeInterval(), est.ClusteringInterval()
	writeJSON(w, http.StatusOK, estimateResponse{
		Triangles:      est.Triangles,
		TrianglesCI:    [2]float64{tri.Lower, tri.Upper},
		Wedges:         est.Wedges,
		WedgesCI:       [2]float64{wed.Lower, wed.Upper},
		Clustering:     est.GlobalClustering(),
		ClusteringCI:   [2]float64{cc.Lower, cc.Upper},
		SampledEdges:   est.SampledEdges,
		Arrivals:       est.Arrivals,
		Threshold:      est.Threshold,
		SnapshotAgeMS:  float64(time.Since(taken)) / float64(time.Millisecond),
		SnapshotUnixNS: taken.UnixNano(),
		Window:         est.Window,
		WindowHorizon:  est.Horizon,
		WindowEdges:    est.Edges,
		WindowPanes:    est.Panes,
	})
}

// subgraphRequest is the JSON body of /v1/estimate/subgraph: the edge set
// J of the queried subgraph as [u, v] pairs.
type subgraphRequest struct {
	Edges [][2]uint32 `json:"edges"`
}

func (s *Server) handleSubgraph(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	if t.windowed() {
		httpError(w, http.StatusBadRequest,
			"subgraph estimation is not available on a windowed server (no standing snapshot to evaluate against)")
		return
	}
	stale, err := s.maxStale(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	var req subgraphRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON body: "+err.Error())
		return
	}
	if len(req.Edges) == 0 {
		httpError(w, http.StatusBadRequest, "empty edge set")
		return
	}
	edges := make([]graph.Edge, 0, len(req.Edges))
	for _, p := range req.Edges {
		if p[0] == p[1] {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("self loop at node %d", p[0]))
			return
		}
		edges = append(edges, graph.NewEdge(graph.NodeID(p[0]), graph.NodeID(p[1])))
	}
	release, ok := s.admitQuery(w, t)
	if !ok {
		return
	}
	defer release()
	snap, staleServed, err := t.snaps.get(stale, s.cfg.EstimateDeadline)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	degraded := staleServed || snap.degraded
	if degraded {
		t.degradedQueries.Add(1)
	}
	t.met.snapAge.Observe(uint64(time.Since(snap.taken)))
	est := snap.sampler.SubgraphEstimate(edges...)
	variance := est * (est - 1)
	if est == 0 {
		variance = 0 // est*(est-1) is -0 here; emit canonical 0 in JSON
	}
	resp := map[string]any{
		"estimate":        est,
		"variance":        variance,
		"arrivals":        snap.est.Arrivals,
		"snapshot_age_ms": float64(time.Since(snap.taken)) / float64(time.Millisecond),
	}
	if degraded {
		resp["degraded"] = true
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		httpError(w, http.StatusServiceUnavailable, "closed")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg})
}

// WeightByName maps a CLI/config weight name to the function the service
// shards can share, delegating to core.ResolveWeight — the same mapping
// checkpoint restore uses, so every weight the service can run it can also
// restore. The stateful "adaptive" weight is rejected with a serve-specific
// reason: shards evaluate the weight concurrently.
func WeightByName(name string) (core.WeightFunc, error) {
	if name == "adaptive" {
		return nil, errors.New("serve: the stateful adaptive weight cannot be shared across shards")
	}
	w, err := core.ResolveWeight(name)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return w, nil
}

package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"gps/internal/gen"
	"gps/internal/graph"
	"gps/internal/obs"
)

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricValue finds a sample line by its exact name (labels included) and
// returns its value.
func metricValue(scrape, name string) (float64, bool) {
	for _, line := range strings.Split(scrape, "\n") {
		// Split on the LAST space: route labels carry spaces ("POST /v1/ingest").
		cut := strings.LastIndexByte(line, ' ')
		if cut < 0 || line[:cut] != name {
			continue
		}
		if v, err := strconv.ParseFloat(line[cut+1:], 64); err == nil {
			return v, true
		}
	}
	return 0, false
}

// TestServeMetricsFourLayers drives the full service — ingest, flush,
// estimate, checkpoint, one rejected request — and checks the /metrics
// exposition lints clean, covers every layer's namespace, and carries the
// activity just generated with values that agree with /v1/stats.
func TestServeMetricsFourLayers(t *testing.T) {
	edges := gen.ErdosRenyi(200, 2000, 3)
	s, ts := newTestServer(t, Config{Capacity: 512, Seed: 9, Shards: 2, CheckpointDir: t.TempDir()})

	if resp := postEdges(t, ts.URL, edges, true); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	flush(t, ts.URL)
	if resp, err := http.Get(ts.URL + "/v1/estimate?max_stale=0s"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Post(ts.URL+"/v1/checkpoint", "", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	// One guaranteed 400 so the error counter has something to count.
	if resp, err := http.Post(ts.URL+"/v1/ingest", "text/plain", strings.NewReader("not an edge\n")); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad ingest status = %d, want 400", resp.StatusCode)
		}
	}

	scrape := scrapeMetrics(t, ts.URL)
	if _, _, err := obs.CheckExposition(strings.NewReader(scrape)); err != nil {
		t.Fatalf("/metrics fails lint: %v\n%s", err, scrape)
	}
	for _, prefix := range []string{"gps_http_", "gps_serve_", "gps_engine_", "gps_core_", "gps_checkpoint_"} {
		if !strings.Contains(scrape, "\n"+prefix) && !strings.HasPrefix(scrape, prefix) {
			t.Fatalf("no %s* sample in /metrics:\n%s", prefix, scrape)
		}
	}

	value := func(name string) float64 {
		t.Helper()
		v, ok := metricValue(scrape, name)
		if !ok {
			t.Fatalf("metric %s not in scrape:\n%s", name, scrape)
		}
		return v
	}
	n := float64(len(edges))
	if got := value("gps_serve_edges_accepted_total"); got != n {
		t.Fatalf("edges_accepted = %g, want %g", got, n)
	}
	if got := value("gps_serve_edges_processed_total"); got != n {
		t.Fatalf("edges_processed = %g, want %g", got, n)
	}
	if got := value("gps_core_arrivals_total"); got != n {
		t.Fatalf("core arrivals = %g, want %g (snapshot covers the whole stream)", got, n)
	}
	if got := value("gps_core_reservoir_fill"); got != 512 {
		t.Fatalf("reservoir fill = %g, want 512 (stream overflows capacity)", got)
	}
	if got := value("gps_core_threshold"); got <= 0 {
		t.Fatalf("threshold = %g, want > 0 after overflow", got)
	}
	if obs.Enabled {
		// accepts - evicts == fill, aggregated across shards through Merge.
		if a, e := value("gps_core_accepts_total"), value("gps_core_evicts_total"); a-e != 512 {
			t.Fatalf("accepts %g - evicts %g = %g, want reservoir fill 512", a, e, a-e)
		}
	}
	if got := value("gps_engine_shards"); got != 2 {
		t.Fatalf("engine shards = %g, want 2", got)
	}
	if got := value("gps_serve_snapshot_forced_fresh_total"); got != 1 {
		t.Fatalf("forced_fresh = %g, want 1 (the max_stale=0 estimate)", got)
	}
	if got := value("gps_checkpoint_files_written_total"); got < 1 {
		t.Fatalf("checkpoint files written = %g, want >= 1", got)
	}
	if got := value(`gps_http_requests_total{route="POST /v1/ingest"}`); got != 2 {
		t.Fatalf("ingest requests = %g, want 2", got)
	}
	if got := value(`gps_http_errors_total{route="POST /v1/ingest"}`); got != 1 {
		t.Fatalf("ingest errors = %g, want 1 (the malformed body)", got)
	}
	if got := value(`gps_http_request_seconds_count{route="GET /v1/estimate"}`); got != 1 {
		t.Fatalf("estimate latency count = %g, want 1", got)
	}
	if got := value("gps_serve_snapshot_age_seconds_count"); got != 1 {
		t.Fatalf("snapshot age observations = %g, want 1 (one estimate served)", got)
	}

	// The same quantities through the JSON plane agree.
	st := decodeJSON[StatsV1](t, mustGet(t, ts.URL+"/v1/stats"))
	if st.SchemaVersion != 2 {
		t.Fatalf("schema_version = %d, want 2", st.SchemaVersion)
	}
	if float64(st.EdgesAccepted) != n || st.Shards != 2 || st.Capacity != 512 {
		t.Fatalf("stats disagree with metrics: %+v", st)
	}
	if st.PprofAddr != "" {
		t.Fatalf("pprof_addr = %q before SetPprofAddr", st.PprofAddr)
	}
	s.SetPprofAddr("127.0.0.1:4242")
	if st := decodeJSON[StatsV1](t, mustGet(t, ts.URL+"/v1/stats")); st.PprofAddr != "127.0.0.1:4242" {
		t.Fatalf("pprof_addr = %q after SetPprofAddr", st.PprofAddr)
	}
}

// TestStatsMetricsPartition pins the namespace contract: every family the
// registry serves is classified in exactly one of metricsPartition's two
// lists. Adding a metric without deciding whether /v1/stats covers it
// fails here.
func TestStatsMetricsPartition(t *testing.T) {
	configs := map[string]Config{
		"plain":    {Capacity: 64, Seed: 1, Shards: 2},
		"decayed":  {Capacity: 64, Seed: 1, Shards: 2, HalfLife: 4},
		"windowed": {Capacity: 64, Seed: 1, Shards: 2, Window: 100, PaneWidth: 25},
	}
	for mode, cfg := range configs {
		s, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		covered, only := s.metricsPartition()
		classified := make(map[string]string, len(covered)+len(only))
		for _, name := range covered {
			classified[name] = "stats-covered"
		}
		for _, name := range only {
			if prev, dup := classified[name]; dup {
				t.Fatalf("%s: %s in both namespaces (%s and metrics-only)", mode, name, prev)
			}
			classified[name] = "metrics-only"
		}
		fams := s.Metrics().Families()
		for _, name := range fams {
			if _, ok := classified[name]; !ok {
				t.Errorf("%s: family %s served but unclassified", mode, name)
			}
			delete(classified, name)
		}
		for name := range classified {
			t.Errorf("%s: %s classified but not in the registry", mode, name)
		}
		s.Close()
	}
}

// TestMetricsTypeGolden pins the full family catalog — names and types —
// against a golden file at a fixed configuration. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/serve -run TypeGolden
func TestMetricsTypeGolden(t *testing.T) {
	s, err := NewServer(Config{Capacity: 64, Seed: 1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var buf bytes.Buffer
	if err := s.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var types []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			types = append(types, line)
		}
	}
	got := strings.Join(types, "\n") + "\n"
	const golden = "testdata/metrics_types.golden"
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("metric catalog drifted from %s (UPDATE_GOLDEN=1 to accept):\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestRequestIDAndLogging checks the middleware's side channel: every
// response carries a unique X-Request-Id, and with LogRequests each request
// produces one key=value line naming that id, the route and the status.
func TestRequestIDAndLogging(t *testing.T) {
	var logBuf syncBuffer
	_, ts := newTestServer(t, Config{Capacity: 64, Seed: 1, Shards: 1, LogRequests: true, LogWriter: &logBuf})

	idPat := regexp.MustCompile(`^[0-9a-f]{8}-[0-9]{6}$`)
	ids := make(map[string]bool)
	for i := 0; i < 3; i++ {
		resp := mustGet(t, ts.URL+"/healthz")
		resp.Body.Close()
		id := resp.Header.Get("X-Request-Id")
		if !idPat.MatchString(id) {
			t.Fatalf("X-Request-Id = %q, want prefix-seq form", id)
		}
		if ids[id] {
			t.Fatalf("duplicate request id %s", id)
		}
		ids[id] = true
	}
	resp := mustGet(t, ts.URL+"/v1/estimate?max_stale=bogus")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad max_stale status = %d", resp.StatusCode)
	}

	log := logBuf.String()
	lines := strings.Split(strings.TrimSuffix(log, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d log lines, want 4:\n%s", len(lines), log)
	}
	for id := range ids {
		if !strings.Contains(log, "id="+id) {
			t.Fatalf("request %s not logged:\n%s", id, log)
		}
	}
	if !strings.Contains(log, `route="GET /healthz" status=200`) {
		t.Fatalf("healthz line malformed:\n%s", log)
	}
	if !strings.Contains(log, `route="GET /v1/estimate" status=400`) {
		t.Fatalf("estimate error line malformed:\n%s", log)
	}
}

// syncBuffer is a goroutine-safe log sink (handlers write concurrently).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestMetricsScrapeUnderLoad hammers ingest, queries and /metrics scrapes
// concurrently — the race detector's view of the scrape path — then checks
// the final scrape still lints and the ingest counters add up.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 256, Seed: 2, Shards: 2, QueueDepth: 1024})

	const producers, batches, batchEdges = 4, 40, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				base := uint64(p*batches+b) * batchEdges
				edges := make([]graph.Edge, batchEdges)
				for i := range edges {
					u := base + uint64(i)
					edges[i] = graph.NewEdge(graph.NodeID(u), graph.NodeID(u+1000000))
				}
				var body bytes.Buffer
				for _, e := range edges {
					fmt.Fprintf(&body, "%d %d\n", e.U, e.V)
				}
				resp, err := http.Post(ts.URL+"/v1/ingest", "text/plain", &body)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("ingest status = %d", resp.StatusCode)
					return
				}
			}
		}(p)
	}
	for sc := 0; sc < 2; sc++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				scrape := scrapeMetrics(t, ts.URL)
				if _, _, err := obs.CheckExposition(strings.NewReader(scrape)); err != nil {
					t.Errorf("mid-load scrape fails lint: %v", err)
					return
				}
				resp, err := http.Get(ts.URL + "/v1/estimate?max_stale=1ms")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	flush(t, ts.URL)

	scrape := scrapeMetrics(t, ts.URL)
	if _, _, err := obs.CheckExposition(strings.NewReader(scrape)); err != nil {
		t.Fatalf("final scrape fails lint: %v", err)
	}
	want := float64(producers * batches * batchEdges)
	if got, _ := metricValue(scrape, "gps_serve_edges_accepted_total"); got != want {
		t.Fatalf("edges_accepted = %g, want %g", got, want)
	}
	if got, _ := metricValue(scrape, "gps_serve_edges_processed_total"); got != want {
		t.Fatalf("edges_processed = %g, want %g", got, want)
	}
}

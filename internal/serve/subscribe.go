// Server-sent-events subscriptions: GET /v1/subscribe?stream=S pushes an
// estimate event for every snapshot epoch its stream installs — the push
// complement of polling /v1/estimate. The feed rides the snapshot cache's
// onInstall hook, so an event is emitted exactly when a query could first
// have observed the same state, and subscribers of one stream never see
// another stream's epochs.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// subEventBuffer is each subscriber's channel depth. A subscriber that
// cannot drain (slow link) loses the oldest epochs — counted, never
// blocking the snapshot install path.
const subEventBuffer = 64

// subHub fans snapshot installs out to a stream's SSE subscribers.
type subHub struct {
	mu      sync.Mutex
	subs    map[chan *snapshot]struct{}
	closed  bool
	dropped atomic.Uint64 // events lost to full subscriber buffers
}

func newSubHub() *subHub {
	return &subHub{subs: make(map[chan *snapshot]struct{})}
}

// subscribe registers a new subscriber channel; ok=false means the hub is
// closed (the stream was deleted while the request was in flight).
func (h *subHub) subscribe() (chan *snapshot, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, false
	}
	ch := make(chan *snapshot, subEventBuffer)
	h.subs[ch] = struct{}{}
	return ch, true
}

func (h *subHub) unsubscribe(ch chan *snapshot) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.subs, ch)
}

// count reports the live subscriber count, for /v1/stats.
func (h *subHub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// broadcast delivers one installed snapshot to every subscriber without
// blocking: the cache's install path must never wait on a slow reader.
func (h *subHub) broadcast(sn *snapshot) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		select {
		case ch <- sn:
		default:
			h.dropped.Add(1)
		}
	}
}

// close terminates every subscriber (they observe a nil receive) and
// refuses new ones. Called on stream deletion, after the ingest loop has
// drained.
func (h *subHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		close(ch)
	}
	h.subs = make(map[chan *snapshot]struct{})
}

// handleSubscribe (GET /v1/subscribe) streams snapshot-epoch estimate
// updates for one stream as server-sent events. The current snapshot (if
// any) is sent immediately, then one event per install. Windowed streams
// have no snapshot epochs to push — their queries merge panes per request —
// so they answer 400.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	if t.windowed() {
		httpError(w, http.StatusBadRequest,
			"subscriptions need a standing snapshot; a windowed stream merges panes per query (poll /v1/estimate)")
		return
	}
	ch, ok := t.subs.subscribe()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown stream %q", t.name))
		return
	}
	defer t.subs.unsubscribe(ch)
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	// The probe flush commits the header; a connection that cannot stream
	// has written nothing yet, so it still gets a proper error response.
	if err := rc.Flush(); err != nil {
		w.Header().Del("X-Accel-Buffering")
		w.Header().Del("Cache-Control")
		httpError(w, http.StatusNotImplemented, "streaming unsupported by this connection")
		return
	}
	// Long-lived response: lift any server-wide write deadline for this
	// connection (best effort; ignored where unsupported).
	_ = rc.SetWriteDeadline(time.Time{})
	send := func(sn *snapshot) bool {
		data, err := json.Marshal(t.estimateFrom(sn, sn.degraded))
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: estimate\ndata: %s\n\n", data); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	if sn := t.snaps.current(); sn != nil {
		if !send(sn) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case <-t.tdone:
			return
		case sn := <-ch:
			if sn == nil {
				return // hub closed: the stream was deleted
			}
			if !send(sn) {
				return
			}
		}
	}
}

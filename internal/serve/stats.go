package serve

import (
	"net/http"
	"time"

	"gps/internal/engine"
	"gps/internal/fault"
)

// StatsV1 is the typed, versioned shape of GET /v1/stats. Field names and
// presence rules are a compatibility contract: every key the endpoint has
// ever emitted keeps its name, and the conditional keys (decay, snapshot
// age, checkpoint health, restore provenance) keep their old
// present-only-when-meaningful semantics via pointers and omitempty.
// The values are read from the same counters and engine accessors the
// /metrics registry renders — the two views never disagree on sources.
//
// Schema version 2 (the multi-tenant registry): every pre-existing
// top-level field keeps describing the default stream exactly as before,
// and the new always-present "streams" array carries one entry per live
// stream — the default one included, so the per-stream shape is uniform.
type StatsV1 struct {
	SchemaVersion int `json:"schema_version"`

	// Snapshot and checkpoint machinery (engine layer).
	Snapshots            uint64  `json:"snapshots"`
	ShardsCloned         uint64  `json:"shards_cloned"`
	ShardsReused         uint64  `json:"shards_reused"`
	Checkpoints          uint64  `json:"checkpoints"`
	CheckpointShardsEnc  uint64  `json:"checkpoint_shards_enc"`
	CheckpointBlobsReuse uint64  `json:"checkpoint_blobs_reuse"`
	CheckpointsWritten   uint64  `json:"checkpoints_written"`
	SnapshotStallMS      float64 `json:"snapshot_stall_ms"`

	// Configuration the server actually runs with.
	Capacity   int    `json:"capacity"`
	Weight     string `json:"weight"`
	Shards     int    `json:"shards"`
	QueueDepth int    `json:"queue_depth"`

	// Ingest pipeline.
	PendingBatches   int64  `json:"pending_batches"`
	PendingEdges     int64  `json:"pending_edges"`
	EdgesAccepted    uint64 `json:"edges_accepted"`
	EdgesProcessed   uint64 `json:"edges_processed"`
	BatchesRejected  uint64 `json:"batches_rejected"`
	SelfLoopsSkipped uint64 `json:"self_loops_skipped"`

	// Turnstile deletions. DeletionRecords counts deletion records accepted
	// for ingest (serve-level, exact). The applied/unsampled split needs the
	// samplers' verdicts: on a plain server it is read from the latest query
	// snapshot (0 until one exists); on a windowed server it is summed over
	// the pane chain, where the deletion fan-out counts one record once per
	// retained pane.
	DeletionRecords    uint64 `json:"deletion_records"`
	DeletionsApplied   uint64 `json:"deletions_applied"`
	DeletionsUnsampled uint64 `json:"deletions_unsampled"`

	SnapshotArrivals uint64  `json:"snapshot_arrivals"`
	UptimeMS         float64 `json:"uptime_ms"`

	// Self-healing and degradation: per-shard supervisor health plus the
	// serve-layer overload/degradation counters. Degraded means at least
	// one shard lost edges to a lossy recovery — estimates remain best
	// effort until the next checkpoint restore or restart.
	Degraded         bool                 `json:"degraded"`
	ShardRestarts    uint64               `json:"shard_restarts"`
	LostEdges        uint64               `json:"lost_edges"`
	ShardHealth      []engine.ShardHealth `json:"shard_health"`
	QueriesShed      uint64               `json:"queries_shed"`
	DegradedQueries  uint64               `json:"degraded_queries"`
	DuplicateBatches uint64               `json:"duplicate_batches"`
	IngestPanics     uint64               `json:"ingest_panics"`
	InflightQueries  int64                `json:"inflight_queries"`

	// Ingest data-plane gauges: racy point-in-time reads of the per-shard
	// rings — depths/backlog move while we look, stalls is cumulative.
	RingCapacity int      `json:"ring_capacity"`
	RingDepths   []int    `json:"ring_depths"`
	RingBacklog  int      `json:"ring_backlog"`
	RouterStalls uint64   `json:"router_stalls"`
	ShardEpochs  []uint64 `json:"shard_epochs"`

	// The per-stream section, one entry per live stream (default first,
	// rest sorted by name).
	Streams []StreamStatsV1 `json:"streams"`

	// Conditional: decay configuration (present when decay is on).
	DecayHalfLife float64 `json:"decay_half_life,omitempty"`
	DecayHorizon  *uint64 `json:"decay_horizon,omitempty"`

	// Conditional: sliding-window state (present when windowing is on).
	Window        uint64  `json:"window,omitempty"`
	PaneWidth     uint64  `json:"pane_width,omitempty"`
	WindowPanes   *int    `json:"window_panes,omitempty"`
	WindowHorizon *uint64 `json:"window_horizon,omitempty"`

	// Conditional: present once a snapshot has been taken.
	SnapshotAgeMS *float64 `json:"snapshot_age_ms,omitempty"`

	// Conditional: checkpoint-file health.
	LastCheckpointError string   `json:"last_checkpoint_error,omitempty"`
	LastCheckpointAgeMS *float64 `json:"last_checkpoint_age_ms,omitempty"`

	// Conditional: restore provenance (present when booted from a checkpoint).
	RestoredFrom     string  `json:"restored_from,omitempty"`
	RestoredPosition *uint64 `json:"restored_position,omitempty"`

	// Conditional: bound pprof listener address (present when -pprof is on).
	PprofAddr string `json:"pprof_addr,omitempty"`

	// Conditional: armed fault-injection rules (present only while the
	// process runs with -faults; absent in production).
	FaultPoints []fault.PointStatus `json:"fault_points,omitempty"`
}

// StreamStatsV1 is one live stream's entry in the stats document: its
// effective configuration and its serve-layer counters (the engine-layer
// detail stays on the labeled /metrics families).
type StreamStatsV1 struct {
	Stream     string `json:"stream"`
	Default    bool   `json:"default,omitempty"`
	Capacity   int    `json:"capacity"`
	Weight     string `json:"weight"`
	Shards     int    `json:"shards"`
	QueueDepth int    `json:"queue_depth"`

	PendingBatches   int64  `json:"pending_batches"`
	PendingEdges     int64  `json:"pending_edges"`
	EdgesAccepted    uint64 `json:"edges_accepted"`
	EdgesProcessed   uint64 `json:"edges_processed"`
	BatchesRejected  uint64 `json:"batches_rejected"`
	SelfLoopsSkipped uint64 `json:"self_loops_skipped"`
	DeletionRecords  uint64 `json:"deletion_records"`

	QueriesShed      uint64 `json:"queries_shed"`
	DegradedQueries  uint64 `json:"degraded_queries"`
	DuplicateBatches uint64 `json:"duplicate_batches"`
	IngestPanics     uint64 `json:"ingest_panics"`
	InflightQueries  int64  `json:"inflight_queries"`

	// SSE subscription feed: live subscribers and events lost to full
	// subscriber buffers.
	Subscribers     int    `json:"subscribers"`
	SubscriberDrops uint64 `json:"subscriber_drops,omitempty"`

	// Conditional: the stream's time model.
	DecayHalfLife float64 `json:"decay_half_life,omitempty"`
	Window        uint64  `json:"window,omitempty"`
	PaneWidth     uint64  `json:"pane_width,omitempty"`
}

func streamStats(t *tenant) StreamStatsV1 {
	return StreamStatsV1{
		Stream:           t.name,
		Default:          t.name == defaultStream,
		Capacity:         t.cfg.Capacity,
		Weight:           t.cfg.WeightName,
		Shards:           t.cfg.Shards,
		QueueDepth:       t.cfg.QueueDepth,
		PendingBatches:   t.pendingBatches.Load(),
		PendingEdges:     t.pendingEdges.Load(),
		EdgesAccepted:    t.edgesAccepted.Load(),
		EdgesProcessed:   t.edgesProcessed.Load(),
		BatchesRejected:  t.batchesDropped.Load(),
		SelfLoopsSkipped: t.selfLoops.Load(),
		DeletionRecords:  t.deletionRecs.Load(),
		QueriesShed:      t.shedTotal.Load(),
		DegradedQueries:  t.degradedQueries.Load(),
		DuplicateBatches: t.duplicateBatches.Load(),
		IngestPanics:     t.ingestPanics.Load(),
		InflightQueries:  t.inflightQueries.Load(),
		Subscribers:      t.subs.count(),
		SubscriberDrops:  t.subs.dropped.Load(),
		DecayHalfLife:    t.cfg.HalfLife,
		Window:           t.cfg.Window,
		PaneWidth:        t.cfg.PaneWidth,
	}
}

// statsV1 assembles the /v1/stats document. The top-level fields describe
// the default stream (the pre-registry contract, unchanged); the streams
// array carries every live stream.
func (s *Server) statsV1() StatsV1 {
	def := s.def
	snapTaken, snapArrivals := def.snaps.last()
	eng := def.eng // the live pane in windowed mode; re-fetched per call
	snapshots, cloned, reused := eng.SnapshotStats()
	ckpts, encoded, blobReused := eng.CheckpointStats()
	rs := eng.RingStats()
	st := StatsV1{
		SchemaVersion:        2,
		Snapshots:            snapshots,
		ShardsCloned:         cloned,
		ShardsReused:         reused,
		Checkpoints:          ckpts,
		CheckpointShardsEnc:  encoded,
		CheckpointBlobsReuse: blobReused,
		CheckpointsWritten:   s.checkpointsWritten.Load(),
		SnapshotStallMS:      float64(eng.LastSnapshotStall()) / float64(time.Millisecond),
		Capacity:             s.cfg.Capacity,
		Weight:               s.cfg.WeightName,
		Shards:               eng.Shards(),
		QueueDepth:           s.cfg.QueueDepth,
		PendingBatches:       def.pendingBatches.Load(),
		PendingEdges:         def.pendingEdges.Load(),
		EdgesAccepted:        def.edgesAccepted.Load(),
		EdgesProcessed:       def.edgesProcessed.Load(),
		BatchesRejected:      def.batchesDropped.Load(),
		SelfLoopsSkipped:     def.selfLoops.Load(),
		SnapshotArrivals:     snapArrivals,
		UptimeMS:             float64(time.Since(s.start)) / float64(time.Millisecond),
		RingCapacity:         rs.Capacity,
		RingDepths:           rs.Depths,
		RingBacklog:          rs.Backlog,
		RouterStalls:         rs.Stalls,
		ShardEpochs:          rs.Epochs,
		QueriesShed:          def.shedTotal.Load(),
		DegradedQueries:      def.degradedQueries.Load(),
		DuplicateBatches:     def.duplicateBatches.Load(),
		IngestPanics:         def.ingestPanics.Load(),
		InflightQueries:      def.inflightQueries.Load(),
	}
	st.ShardHealth, st.Degraded = eng.Health()
	st.ShardRestarts = eng.Restarts()
	st.LostEdges = eng.LostEdges()
	st.DeletionRecords = def.deletionRecs.Load()
	if wc, windowed := eng.WindowSpec(); windowed {
		st.DeletionsApplied, st.DeletionsUnsampled = eng.Deletions()
		st.Window = wc.Window
		st.PaneWidth = wc.PaneWidth
		panes := eng.Panes()
		st.WindowPanes = &panes
		horizon := eng.Horizon()
		st.WindowHorizon = &horizon
	} else if sn := def.snaps.current(); sn != nil {
		st.DeletionsApplied, st.DeletionsUnsampled = sn.sampler.Deletions()
	}
	tenants := s.liveTenants()
	st.Streams = make([]StreamStatsV1, 0, len(tenants))
	for _, t := range tenants {
		st.Streams = append(st.Streams, streamStats(t))
	}
	if fault.Enabled() {
		// Armed fault-injection points (diagnostics for chaos runs): which
		// rules exist, how often each point was traversed and fired.
		st.FaultPoints = fault.Status()
	}
	if s.cfg.HalfLife > 0 {
		st.DecayHalfLife = s.cfg.HalfLife
		horizon := eng.DecayHorizon() // decay excludes windowing on the default stream
		st.DecayHorizon = &horizon
	}
	if !snapTaken.IsZero() {
		age := float64(time.Since(snapTaken)) / float64(time.Millisecond)
		st.SnapshotAgeMS = &age
	}
	if msg, ok := s.lastCheckpointErr.Load().(string); ok && msg != "" {
		st.LastCheckpointError = msg
	}
	if ns := s.lastCheckpointNS.Load(); ns != 0 {
		age := float64(time.Now().UnixNano()-ns) / float64(time.Millisecond)
		st.LastCheckpointAgeMS = &age
	}
	if s.restoredFrom != "" {
		st.RestoredFrom = s.restoredFrom
		pos := def.restoredPosition
		st.RestoredPosition = &pos
	}
	if addr, ok := s.pprofAddr.Load().(string); ok && addr != "" {
		st.PprofAddr = addr
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsV1())
}

// SetPprofAddr records the bound address of the auxiliary pprof/metrics
// listener so /v1/stats can report it (gps-serve calls it after binding).
func (s *Server) SetPprofAddr(addr string) { s.pprofAddr.Store(addr) }

// metricsPartition classifies every family the registry serves into
// exactly one of two namespaces: statsCovered — the quantity is also
// readable from /v1/stats (same underlying counter or accessor) — and
// metricsOnly — distributions and cache/scheduler detail /v1/stats never
// carried. A test asserts the two lists exactly partition
// Metrics().Families(), so adding a metric forces an explicit
// classification here. Families are registered per capability, so the
// lists union over the live streams' capabilities (a single default plain
// stream yields exactly the pre-registry partition).
func (s *Server) metricsPartition() (statsCovered, metricsOnly []string) {
	statsCovered = []string{
		"gps_checkpoint_files_written_total", // checkpoints_written (per-process superset)
		"gps_core_arrivals_total",            // snapshot_arrivals
		"gps_core_deletions_applied_total",   // deletions_applied
		"gps_core_deletions_unsampled_total", // deletions_unsampled
		"gps_core_reservoir_capacity",        // capacity
		"gps_serve_batches_rejected_total",   // batches_rejected
		"gps_serve_checkpoint_files_total",   // checkpoints_written
		"gps_serve_degraded_queries_total",   // degraded_queries
		"gps_serve_deletion_records_total",   // deletion_records
		"gps_serve_duplicate_batches_total",  // duplicate_batches
		"gps_serve_edges_accepted_total",     // edges_accepted
		"gps_serve_edges_processed_total",    // edges_processed
		"gps_serve_inflight_queries",         // inflight_queries
		"gps_serve_ingest_panics_total",      // ingest_panics
		"gps_serve_queue_batches",            // pending_batches
		"gps_serve_queue_capacity",           // queue_depth
		"gps_serve_queue_edges",              // pending_edges
		"gps_serve_self_loops_total",         // self_loops_skipped
		"gps_serve_shed_total",               // queries_shed
		"gps_serve_uptime_seconds",           // uptime_ms
	}
	metricsOnly = []string{
		"gps_checkpoint_file_bytes",
		"gps_checkpoint_fsync_seconds",
		"gps_core_accepts_total",
		"gps_core_duplicates_total",
		"gps_core_evicts_total",
		"gps_core_reservoir_fill",
		"gps_core_threshold",
		"gps_http_errors_total",
		"gps_http_in_flight",
		"gps_http_request_seconds",
		"gps_http_requests_total",
		"gps_serve_decay_rejected_batches_total",
		"gps_serve_snapshot_age_seconds",
		"gps_serve_snapshot_cache_hits_total",
		"gps_serve_snapshot_deadline_stale_total",
		"gps_serve_snapshot_estimate_reuse_total",
		"gps_serve_snapshot_forced_fresh_total",
		"gps_serve_snapshot_refresh_total",
	}
	anyWindow, anyPlain, anyDecay := false, false, false
	for _, t := range s.liveTenants() {
		if t.windowed() {
			anyWindow = true
		} else {
			anyPlain = true
		}
		if t.cfg.HalfLife > 0 {
			anyDecay = true
		}
	}
	if anyWindow {
		// Windowed streams register the window families instead of the
		// per-instance engine families: rotation replaces the live engine,
		// so instruments bound to one Parallel would go stale mid-run.
		statsCovered = append(statsCovered,
			"gps_window_width",      // window
			"gps_window_pane_width", // pane_width
			"gps_window_panes",      // window_panes
			"gps_window_horizon",    // window_horizon
		)
	}
	if anyPlain {
		statsCovered = append(statsCovered,
			"gps_engine_checkpoint_blobs_reused_total",   // checkpoint_blobs_reuse
			"gps_engine_checkpoint_shards_encoded_total", // checkpoint_shards_enc
			"gps_engine_checkpoints_total",               // checkpoints
			"gps_engine_ring_backlog",                    // ring_backlog
			"gps_engine_ring_capacity",                   // ring_capacity
			"gps_engine_ring_depth",                      // ring_depths
			"gps_engine_ring_stalls_total",               // router_stalls
			"gps_engine_shard_epoch",                     // shard_epochs
			"gps_engine_shards",                          // shards
			"gps_engine_snapshot_shards_cloned_total",    // shards_cloned
			"gps_engine_snapshot_shards_reused_total",    // shards_reused
			"gps_engine_snapshots_total",                 // snapshots
			"gps_engine_shard_lost_edges_total",          // lost_edges
			"gps_engine_shard_restarts_total",            // shard_restarts
			"gps_engine_shards_degraded",                 // degraded / shard_health
		)
		metricsOnly = append(metricsOnly,
			"gps_engine_barrier_wait_seconds",
			"gps_engine_checkpoint_encode_bytes",
			"gps_engine_checkpoint_encode_seconds",
			"gps_engine_drain_batch_edges",
			"gps_engine_drain_batch_seconds",
			"gps_engine_ring_parks_total",
			"gps_engine_ring_wakeups_total",
			"gps_engine_snapshot_stall_seconds", // stats has only the last stall, not the distribution
		)
	}
	if anyDecay {
		statsCovered = append(statsCovered, "gps_engine_decay_horizon") // decay_horizon
	}
	return statsCovered, metricsOnly
}
